// Package tilgc's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation, plus per-benchmark and
// ablation benches. b.N iterations re-run the experiment; reported ns/op
// measures the simulator itself, while each bench also reports the
// *simulated* metrics the paper's tables are built from (as custom
// benchmark metrics), so `go test -bench` output regenerates the paper's
// comparisons:
//
//	sim-gc-sec      simulated collector seconds per run
//	sim-client-sec  simulated mutator seconds per run
//	sim-copied-MB   megabytes copied per run
//	sim-numgc       collections per run
//
// Run everything with:
//
//	go test -bench=. -benchmem
package tilgc_test

import (
	"testing"

	"tilgc/gcsim"
	"tilgc/internal/harness"
	"tilgc/internal/workload"
)

// benchScale keeps each table bench in the seconds range while preserving
// every effect (see EXPERIMENTS.md for the scale's validation).
var benchScale = workload.Scale{Repeat: 0.01, Depth: 0.5}

// reportSim attaches the simulated measurements to the bench output.
func reportSim(b *testing.B, r *harness.RunResult) {
	b.ReportMetric(r.GC(), "sim-gc-sec")
	b.ReportMetric(r.Client(), "sim-client-sec")
	b.ReportMetric(float64(r.Stats.BytesCopied)/(1<<20), "sim-copied-MB")
	b.ReportMetric(float64(r.Stats.NumGC), "sim-numgc")
}

func runBench(b *testing.B, cfg harness.RunConfig) {
	b.Helper()
	var last *harness.RunResult
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	reportSim(b, last)
}

// ---- Table 3: semispace collector across k ----------------------------------

func BenchmarkTable3Semispace(b *testing.B) {
	for _, name := range harness.PaperOrder {
		for _, k := range harness.PaperKs {
			b.Run(benchName(name, k), func(b *testing.B) {
				runBench(b, harness.RunConfig{
					Workload: name, Scale: benchScale, Kind: harness.KindSemispace, K: k,
				})
			})
		}
	}
}

// ---- Table 4: generational collector across k --------------------------------

func BenchmarkTable4Generational(b *testing.B) {
	for _, name := range harness.PaperOrder {
		for _, k := range harness.PaperKs {
			b.Run(benchName(name, k), func(b *testing.B) {
				runBench(b, harness.RunConfig{
					Workload: name, Scale: benchScale, Kind: harness.KindGenerational, K: k,
				})
			})
		}
	}
}

// ---- Table 5: stack markers at k = 4 ------------------------------------------

func BenchmarkTable5Markers(b *testing.B) {
	for _, name := range harness.PaperOrder {
		b.Run(name+"/without", func(b *testing.B) {
			runBench(b, harness.RunConfig{
				Workload: name, Scale: benchScale, Kind: harness.KindGenerational, K: 4,
			})
		})
		b.Run(name+"/with", func(b *testing.B) {
			runBench(b, harness.RunConfig{
				Workload: name, Scale: benchScale, Kind: harness.KindGenMarkers, K: 4,
			})
		})
	}
}

// ---- Table 6: pretenuring across k ---------------------------------------------

func BenchmarkTable6Pretenure(b *testing.B) {
	for _, name := range harness.PretenureTargets {
		for _, k := range harness.PaperKs {
			b.Run(benchName(name, k), func(b *testing.B) {
				runBench(b, harness.RunConfig{
					Workload: name, Scale: benchScale,
					Kind: harness.KindGenMarkersPretenure, K: k,
				})
			})
		}
	}
}

// ---- Table 7: the four configurations at k = 4 ----------------------------------

func BenchmarkTable7Configs(b *testing.B) {
	kinds := []harness.CollectorKind{
		harness.KindSemispace, harness.KindGenerational,
		harness.KindGenMarkers, harness.KindGenMarkersPretenure,
	}
	for _, name := range harness.PaperOrder {
		for _, kind := range kinds {
			b.Run(name+"/"+kind.String(), func(b *testing.B) {
				runBench(b, harness.RunConfig{
					Workload: name, Scale: benchScale, Kind: kind, K: 4,
				})
			})
		}
	}
}

// ---- Table 2 / Figure 2: instrumentation passes -----------------------------------

func BenchmarkTable2Characteristics(b *testing.B) {
	for _, name := range harness.PaperOrder {
		b.Run(name, func(b *testing.B) {
			runBench(b, harness.RunConfig{
				Workload: name, Scale: benchScale, Kind: harness.KindGenerational,
			})
		})
	}
}

func BenchmarkFigure2Profiles(b *testing.B) {
	for _, name := range []string{"Knuth-Bendix", "Nqueen"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := harness.Run(harness.RunConfig{
					Workload: name, Scale: benchScale,
					Kind: harness.KindGenerational, Profile: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if r.Profiler.TotalAllocated() == 0 {
					b.Fatal("empty profile")
				}
			}
		})
	}
}

// ---- Extensions and ablations ------------------------------------------------------

func BenchmarkExtensionScanElision(b *testing.B) {
	for _, name := range []string{"Nqueen", "Knuth-Bendix"} {
		for _, kind := range []harness.CollectorKind{
			harness.KindGenMarkersPretenure, harness.KindGenMarkersPretenureElide,
		} {
			b.Run(name+"/"+kind.String(), func(b *testing.B) {
				runBench(b, harness.RunConfig{
					Workload: name, Scale: benchScale, Kind: kind, K: 4,
				})
			})
		}
	}
}

func BenchmarkExtensionWriteBarrier(b *testing.B) {
	for _, kind := range []harness.CollectorKind{
		harness.KindGenerational, harness.KindGenCards,
	} {
		b.Run("Peg/"+kind.String(), func(b *testing.B) {
			runBench(b, harness.RunConfig{
				Workload: "Peg", Scale: benchScale, Kind: kind, K: 4,
			})
		})
	}
}

func BenchmarkExtensionAging(b *testing.B) {
	kinds := []harness.CollectorKind{
		harness.KindGenMarkers, harness.KindGenMarkersPretenure,
		harness.KindGenAging, harness.KindGenAgingPretenure,
	}
	for _, name := range []string{"Knuth-Bendix", "Nqueen"} {
		for _, kind := range kinds {
			b.Run(name+"/"+kind.String(), func(b *testing.B) {
				runBench(b, harness.RunConfig{
					Workload: name, Scale: benchScale, Kind: kind, K: 4,
				})
			})
		}
	}
}

func BenchmarkAblationMarkerSpacing(b *testing.B) {
	for _, n := range []int{5, 25, 100} {
		b.Run(markerName(n), func(b *testing.B) {
			runBench(b, harness.RunConfig{
				Workload: "Knuth-Bendix", Scale: benchScale,
				Kind: harness.KindGenMarkers, K: 4, MarkerN: n,
			})
		})
	}
}

// ---- Parallel experiment runner -----------------------------------------------------

// table7Configs is the Table 7 run matrix (4 collector configurations ×
// all benchmarks), the densest sweep the harness runs — the natural
// stress case for the worker pool.
func table7Configs() []harness.RunConfig {
	kinds := []harness.CollectorKind{
		harness.KindSemispace, harness.KindGenerational,
		harness.KindGenMarkers, harness.KindGenMarkersPretenure,
	}
	var cfgs []harness.RunConfig
	for _, name := range harness.PaperOrder {
		for _, kind := range kinds {
			cfgs = append(cfgs, harness.RunConfig{
				Workload: name, Scale: benchScale, Kind: kind, K: 4,
			})
		}
	}
	return cfgs
}

// BenchmarkRunAllSweep measures a full Table 7 sweep through the worker
// pool at increasing parallelism; the speedup from serial to parallel is
// the whole point of the batch runner, and every variant produces
// identical simulated results.
func BenchmarkRunAllSweep(b *testing.B) {
	cfgs := table7Configs()
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"serial", 1},
		{"parallel-4", 4},
		{"parallel-maxprocs", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var last []*harness.RunResult
			for i := 0; i < b.N; i++ {
				rs, err := harness.RunAll(cfgs, harness.Options{Parallelism: bc.par})
				if err != nil {
					b.Fatal(err)
				}
				last = rs
			}
			reportSim(b, last[len(last)-1])
		})
	}
}

// ---- Raw simulator microbenchmarks ----------------------------------------------------

func BenchmarkSimulatorAllocate(b *testing.B) {
	rt := gcsim.NewRuntime(gcsim.Config{NurseryWords: 64 * 1024})
	m := rt.Mutator()
	f := m.PtrFrame("bench", 1)
	m.Call(f, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ConsInt(1, uint64(i), 1, 1)
			if i%1024 == 1023 {
				m.SetSlotNil(1) // keep the live set bounded
			}
		}
	})
}

func BenchmarkSimulatorCallReturn(b *testing.B) {
	rt := gcsim.NewRuntime(gcsim.Config{})
	m := rt.Mutator()
	f := m.PtrFrame("bench", 2)
	m.Call(f, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Call(f, func() {})
		}
	})
}

func BenchmarkSimulatorMinorGC(b *testing.B) {
	rt := gcsim.NewRuntime(gcsim.Config{NurseryWords: 8 * 1024})
	m := rt.Mutator()
	f := m.PtrFrame("bench", 1)
	m.Call(f, func() {
		// A modest live list that every minor GC promotes/scans.
		for i := 0; i < 200; i++ {
			m.ConsInt(1, uint64(i), 1, 1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.Collect(false)
		}
	})
}

func benchName(workloadName string, k float64) string {
	switch k {
	case 1.5:
		return workloadName + "/k=1.5"
	case 2.0:
		return workloadName + "/k=2.0"
	default:
		return workloadName + "/k=4.0"
	}
}

func markerName(n int) string {
	switch n {
	case 5:
		return "n=5"
	case 25:
		return "n=25"
	default:
		return "n=100"
	}
}
