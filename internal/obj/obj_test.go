package obj

import (
	"testing"
	"testing/quick"

	"tilgc/internal/mem"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		k    Kind
		n    uint64
		site SiteID
	}{
		{Record, 0, 0},
		{Record, 64, 12345},
		{PtrArray, 1000, 1},
		{RawArray, MaxArrayLen, 65535},
	}
	for _, c := range cases {
		h := PackHeader(c.k, c.n, c.site)
		if HeaderKind(h) != c.k || HeaderLen(h) != c.n || HeaderSite(h) != c.site {
			t.Errorf("round trip %v/%d/%d: got %v/%d/%d",
				c.k, c.n, c.site, HeaderKind(h), HeaderLen(h), HeaderSite(h))
		}
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, n uint32, site uint16) bool {
		k := Kind(kindRaw % 3)
		length := uint64(n) & lenMask
		h := PackHeader(k, length, SiteID(site))
		return HeaderKind(h) == k && HeaderLen(h) == length && HeaderSite(h) == SiteID(site)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForwardHeader(t *testing.T) {
	dst := mem.MakeAddr(5, 0x123456789)
	h := PackForward(dst)
	if HeaderKind(h) != Forwarded {
		t.Fatal("forward header kind wrong")
	}
	if ForwardAddr(h) != dst {
		t.Fatalf("forward addr = %v, want %v", ForwardAddr(h), dst)
	}
}

func TestSizeWords(t *testing.T) {
	if SizeWords(Record, 3) != 5 {
		t.Errorf("record size = %d", SizeWords(Record, 3))
	}
	if SizeWords(PtrArray, 3) != 4 {
		t.Errorf("ptrarray size = %d", SizeWords(PtrArray, 3))
	}
	if SizeWords(RawArray, 0) != 1 {
		t.Errorf("empty rawarray size = %d", SizeWords(RawArray, 0))
	}
}

func newTestHeap(capacity uint64) (*mem.Heap, *mem.Space) {
	h := mem.NewHeap()
	return h, h.AddSpace(capacity)
}

func TestAllocAndDecodeRecord(t *testing.T) {
	h, s := newTestHeap(100)
	a, ok := Alloc(h, s, Record, 4, 77, 0b1010)
	if !ok {
		t.Fatal("alloc failed")
	}
	o := Decode(h, a)
	if o.Kind != Record || o.Len != 4 || o.Site != 77 || o.Mask != 0b1010 {
		t.Fatalf("decode: %+v", o)
	}
	if o.SizeWords() != 6 {
		t.Errorf("size = %d", o.SizeWords())
	}
	if o.IsPtrField(0) || !o.IsPtrField(1) || o.IsPtrField(2) || !o.IsPtrField(3) {
		t.Error("pointer bitmap misdecoded")
	}
}

func TestAllocArrays(t *testing.T) {
	h, s := newTestHeap(100)
	pa, _ := Alloc(h, s, PtrArray, 3, 1, 0)
	ra, _ := Alloc(h, s, RawArray, 3, 2, 0)
	po := Decode(h, pa)
	ro := Decode(h, ra)
	for i := uint64(0); i < 3; i++ {
		if !po.IsPtrField(i) {
			t.Error("ptrarray element not a pointer")
		}
		if ro.IsPtrField(i) {
			t.Error("rawarray element is a pointer")
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	h, s := newTestHeap(5)
	if _, ok := Alloc(h, s, RawArray, 4, 0, 0); !ok {
		t.Fatal("first alloc should fit")
	}
	if _, ok := Alloc(h, s, RawArray, 4, 0, 0); ok {
		t.Fatal("second alloc should fail")
	}
}

func TestFieldAccess(t *testing.T) {
	h, s := newTestHeap(100)
	a, _ := Alloc(h, s, Record, 2, 0, 0b01)
	SetField(h, a, 0, 0xbeef)
	SetField(h, a, 1, 42)
	if Field(h, a, 0) != 0xbeef || Field(h, a, 1) != 42 {
		t.Error("field round trip failed")
	}
	// Fields start nil/zero.
	b, _ := Alloc(h, s, PtrArray, 2, 0, 0)
	if Field(h, b, 0) != 0 || Field(h, b, 1) != 0 {
		t.Error("fields not zero-initialized")
	}
}

func TestForwardingInPlace(t *testing.T) {
	h, s := newTestHeap(100)
	a, _ := Alloc(h, s, Record, 1, 9, 1)
	SetField(h, a, 0, 7)
	if IsForwarded(h, a) {
		t.Fatal("fresh object forwarded")
	}
	dst := mem.MakeAddr(2, 17)
	SetForward(h, a, dst)
	if !IsForwarded(h, a) {
		t.Fatal("SetForward did not take")
	}
	if Forwarding(h, a) != dst {
		t.Fatalf("Forwarding = %v", Forwarding(h, a))
	}
}

func TestPayloadAddr(t *testing.T) {
	h, s := newTestHeap(100)
	a, _ := Alloc(h, s, Record, 3, 0, 0)
	o := Decode(h, a)
	if o.PayloadAddr(0) != a.Add(2) {
		t.Errorf("record payload 0 at %v", o.PayloadAddr(0))
	}
	b, _ := Alloc(h, s, RawArray, 3, 0, 0)
	ob := Decode(h, b)
	if ob.PayloadAddr(2) != b.Add(3) {
		t.Errorf("rawarray payload 2 at %v", ob.PayloadAddr(2))
	}
}

func TestObjectLayoutNoOverlapProperty(t *testing.T) {
	// Allocating a sequence of random objects yields back-to-back,
	// non-overlapping footprints whose decoded headers survive intact.
	type spec struct {
		Kind uint8
		N    uint8
		Site uint16
		Mask uint64
	}
	f := func(specs []spec) bool {
		h, s := newTestHeap(1 << 14)
		var prev mem.Addr
		var prevSize uint64
		for _, sp := range specs {
			k := Kind(sp.Kind % 3)
			n := uint64(sp.N)
			if k == Record {
				n %= MaxRecordFields + 1
			}
			a, ok := Alloc(h, s, k, n, SiteID(sp.Site), sp.Mask)
			if !ok {
				return true
			}
			if prev != mem.Nil && a.Offset() != prev.Offset()+prevSize {
				return false
			}
			o := Decode(h, a)
			if o.Kind != k || o.Len != n || o.Site != SiteID(sp.Site) {
				return false
			}
			if k == Record && o.Mask != sp.Mask {
				return false
			}
			prev, prevSize = a, o.SizeWords()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Record: "record", PtrArray: "ptrarray", RawArray: "rawarray",
		Forwarded: "forwarded",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestAuxAndAgeIndependent(t *testing.T) {
	h, s := newTestHeap(20)
	a, _ := Alloc(h, s, Record, 2, 321, 0b01)
	if Aux(h, a) != 0 || Age(h, a) != 0 {
		t.Fatal("fresh marks not zero")
	}
	SetAux(h, a, 0xAB)
	SetAge(h, a, 0xCD)
	if Aux(h, a) != 0xAB || Age(h, a) != 0xCD {
		t.Fatalf("marks = %#x/%#x", Aux(h, a), Age(h, a))
	}
	// Marks must not disturb each other or the header proper.
	SetAux(h, a, 0x11)
	if Age(h, a) != 0xCD {
		t.Fatal("SetAux clobbered age")
	}
	o := Decode(h, a)
	if o.Kind != Record || o.Len != 2 || o.Site != 321 || o.Mask != 0b01 {
		t.Fatalf("marks corrupted header: %+v", o)
	}
}

func TestFieldAddr(t *testing.T) {
	h, s := newTestHeap(20)
	r, _ := Alloc(h, s, Record, 3, 1, 0)
	if FieldAddr(h, r, 2) != r.Add(4) { // header + mask + 2
		t.Fatalf("record FieldAddr = %v", FieldAddr(h, r, 2))
	}
	arr, _ := Alloc(h, s, RawArray, 3, 1, 0)
	if FieldAddr(h, arr, 2) != arr.Add(3) { // header + 2
		t.Fatalf("array FieldAddr = %v", FieldAddr(h, arr, 2))
	}
}

func TestPackHeaderPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("PackHeader(Forwarded)", func() { PackHeader(Forwarded, 1, 0) })
	assertPanics("PackHeader(too long)", func() { PackHeader(RawArray, MaxArrayLen+1, 0) })
	h, s := newTestHeap(200)
	assertPanics("Alloc(huge record)", func() {
		Alloc(h, s, Record, MaxRecordFields+1, 0, 0)
	})
}

func TestHeaderWords(t *testing.T) {
	if HeaderWords(Record) != 2 || HeaderWords(PtrArray) != 1 || HeaderWords(RawArray) != 1 {
		t.Fatal("header word counts wrong")
	}
}
