// Package obj defines the simulated object model: the layout of heap
// objects in arena memory and the header encoding the collector decodes.
//
// TIL's runtime is "nearly tag-free": integers are untagged and pointer-ness
// is recovered from type information rather than per-value tags. We keep a
// one-word header per object (the paper's runtime does too — allocation-site
// identifiers are prepended to objects for profiling) carrying the object
// kind, its length, and its allocation site. Records additionally carry a
// pointer bitmap word, standing in for the type-directed layout information
// TIL's compiler hands the collector.
//
// Layout in words:
//
//	record:    [header][ptrmask][field 0] ... [field n-1]
//	ptr array: [header][elem 0] ... [elem n-1]
//	raw array: [header][elem 0] ... [elem n-1]
//
// A forwarded object (mid-collection) has kind Forwarded and the forwarding
// address in the header's payload bits.
package obj

import (
	"fmt"

	"tilgc/internal/mem"
)

// Kind classifies a heap object.
type Kind uint8

const (
	// Record is a fixed-shape tuple whose pointer fields are named by a
	// bitmap; TIL generates these for datatypes, tuples, and closures.
	Record Kind = iota
	// PtrArray is an array whose every element is a (possibly nil) pointer.
	PtrArray
	// RawArray is an array of untraced words: unboxed ints, floats, bytes.
	RawArray
	// Forwarded marks an object that has been evacuated; the header holds
	// the forwarding address.
	Forwarded
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Record:
		return "record"
	case PtrArray:
		return "ptrarray"
	case RawArray:
		return "rawarray"
	case Forwarded:
		return "forwarded"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SiteID identifies an allocation site. Site 0 means "unattributed".
type SiteID uint16

// MaxRecordFields is the largest record arity; pointer-ness of record
// fields is a 64-bit bitmap, field i traced iff bit i is set.
const MaxRecordFields = 64

// MaxArrayLen bounds array lengths representable in the header.
const MaxArrayLen = 1<<30 - 1

// Header bit layout:
//
//	bits 0..1   kind
//	bits 2..31  length (field or element count)
//	bits 32..47 allocation site
//
// For Forwarded, bits 2..63 hold the forwarding address.
const (
	kindBits = 2
	kindMask = 1<<kindBits - 1
	lenBits  = 30
	lenMask  = 1<<lenBits - 1
	siteBits = 16
	siteMask = 1<<siteBits - 1
)

// PackHeader builds a header word for a live object.
func PackHeader(k Kind, length uint64, site SiteID) uint64 {
	if k == Forwarded {
		panic("obj: PackHeader of Forwarded; use PackForward")
	}
	if length > MaxArrayLen {
		panic(fmt.Sprintf("obj: length %d exceeds max", length))
	}
	return uint64(k) | length<<kindBits | uint64(site)<<(kindBits+lenBits)
}

// PackForward builds a forwarding header pointing at dst.
func PackForward(dst mem.Addr) uint64 {
	return uint64(Forwarded) | uint64(dst)<<kindBits
}

// HeaderKind extracts the kind from a header word.
func HeaderKind(h uint64) Kind { return Kind(h & kindMask) }

// HeaderLen extracts the length from a live header word.
func HeaderLen(h uint64) uint64 { return h >> kindBits & lenMask }

// HeaderSite extracts the allocation site from a live header word.
func HeaderSite(h uint64) SiteID { return SiteID(h >> (kindBits + lenBits) & siteMask) }

// ForwardAddr extracts the forwarding address from a Forwarded header.
func ForwardAddr(h uint64) mem.Addr { return mem.Addr(h >> kindBits) }

// Aux bits: header bits 48..55 are application-defined (mutator-visible
// object marks, e.g. the Knuth-Bendix workload's normal-form stamps).
// They travel with the object when the collector copies it and are zero
// on fresh objects.
const (
	auxShift = 48
	auxMask  = uint64(0xff) << auxShift
)

// Age bits: header bits 56..63 belong to the collector (survival counts
// for aging/tenuring policies). Like the aux byte they travel with the
// object on copy and start at zero.
const (
	ageShift = 56
	ageMask  = uint64(0xff) << ageShift
)

// Age reads the collector age byte of the live object at a.
func Age(h *mem.Heap, a mem.Addr) uint8 {
	return uint8(h.Load(a) >> ageShift)
}

// SetAge writes the collector age byte of the live object at a.
func SetAge(h *mem.Heap, a mem.Addr, v uint8) {
	hd := h.Load(a)
	h.Store(a, hd&^ageMask|uint64(v)<<ageShift)
}

// Aux reads the aux byte of the live object at a.
func Aux(h *mem.Heap, a mem.Addr) uint8 {
	return uint8(h.Load(a) >> auxShift & 0xff)
}

// SetAux writes the aux byte of the live object at a.
func SetAux(h *mem.Heap, a mem.Addr, v uint8) {
	hd := h.Load(a)
	h.Store(a, hd&^auxMask|uint64(v)<<auxShift)
}

// HeaderWords returns the number of metadata words preceding the payload.
func HeaderWords(k Kind) uint64 {
	if k == Record {
		return 2 // header + pointer bitmap
	}
	return 1
}

// SizeWords returns the total footprint in words of an object with the
// given kind and length.
func SizeWords(k Kind, length uint64) uint64 {
	return HeaderWords(k) + length
}

// Object is a decoded view of a heap object, used by collectors, the
// profiler, and debugging tools. It does not alias arena storage.
type Object struct {
	Addr mem.Addr
	Kind Kind
	Len  uint64
	Site SiteID
	Mask uint64 // pointer bitmap; meaningful for records only
}

// Decode reads the object headers at a. Decoding a forwarded object returns
// Kind == Forwarded with Addr holding the *forwarding target* in Mask-free
// form; callers normally check IsForwarded first.
func Decode(h *mem.Heap, a mem.Addr) Object {
	hd := h.Load(a)
	k := HeaderKind(hd)
	o := Object{Addr: a, Kind: k}
	if k == Forwarded {
		return o
	}
	o.Len = HeaderLen(hd)
	o.Site = HeaderSite(hd)
	if k == Record {
		o.Mask = h.Load(a.Add(1))
	}
	return o
}

// SizeWords returns the object's total footprint in words.
func (o Object) SizeWords() uint64 { return SizeWords(o.Kind, o.Len) }

// PayloadAddr returns the address of field/element i.
func (o Object) PayloadAddr(i uint64) mem.Addr {
	return o.Addr.Add(HeaderWords(o.Kind) + i)
}

// IsPtrField reports whether field/element i holds a traced pointer.
func (o Object) IsPtrField(i uint64) bool {
	switch o.Kind {
	case Record:
		return o.Mask>>i&1 == 1
	case PtrArray:
		return true
	default:
		return false
	}
}

// Alloc reserves and initializes an object in space s, returning its
// address, or false if the space lacks room. Fields start zeroed (nil).
func Alloc(h *mem.Heap, s *mem.Space, k Kind, length uint64, site SiteID, mask uint64) (mem.Addr, bool) {
	if k == Record && length > MaxRecordFields {
		panic(fmt.Sprintf("obj: record arity %d exceeds max", length))
	}
	a, ok := s.Alloc(SizeWords(k, length))
	if !ok {
		return mem.Nil, false
	}
	h.Store(a, PackHeader(k, length, site))
	if k == Record {
		h.Store(a.Add(1), mask)
	}
	return a, true
}

// IsForwarded reports whether the object at a has been evacuated.
func IsForwarded(h *mem.Heap, a mem.Addr) bool {
	return HeaderKind(h.Load(a)) == Forwarded
}

// Forwarding returns the forwarding target of the object at a.
func Forwarding(h *mem.Heap, a mem.Addr) mem.Addr {
	return ForwardAddr(h.Load(a))
}

// SetForward overwrites the header at a with a forwarding pointer to dst.
func SetForward(h *mem.Heap, a, dst mem.Addr) {
	h.Store(a, PackForward(dst))
}

// FieldAddr returns the address of field/element i of the live object at
// a, reading only the header word (the record pointer bitmap is not
// needed to locate payload words).
func FieldAddr(h *mem.Heap, a mem.Addr, i uint64) mem.Addr {
	return a.Add(HeaderWords(HeaderKind(h.Load(a))) + i)
}

// Field loads field/element i of the object at a (which must be live).
func Field(h *mem.Heap, a mem.Addr, i uint64) uint64 {
	return h.Load(FieldAddr(h, a, i))
}

// SetField stores field/element i of the object at a (which must be live).
// It performs no write barrier; the runtime layer is responsible for that.
func SetField(h *mem.Heap, a mem.Addr, i uint64, v uint64) {
	h.Store(FieldAddr(h, a, i), v)
}
