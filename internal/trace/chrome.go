package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event sink: the "JSON Array Format" understood by Perfetto
// and chrome://tracing. Each traced run becomes one thread (tid = run
// index) in a single process; collections and phases are B/E duration
// events. Timestamps are simulated cycles written into the "ts"
// microsecond field verbatim — the UI's time unit label is wrong but every
// duration ratio is exact, and the output stays byte-identical across
// runs. Counter deltas ride on the gc_end E event's args.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta emits a metadata ("M") record naming a process or thread.
func chromeMeta(name string, pid, tid int, value string) chromeEvent {
	return chromeEvent{
		Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": value},
	}
}

// WriteChrome writes the file as Chrome trace-event JSON.
func (f *File) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	if err := emit(chromeMeta("process_name", 0, 0, "gcsim")); err != nil {
		return err
	}
	for tid, d := range f.Runs {
		label := d.Label
		if label == "" {
			label = fmt.Sprintf("run %d", tid)
		}
		if err := emit(chromeMeta("thread_name", 0, tid, label)); err != nil {
			return err
		}
		openMajor := false
		for _, e := range d.Events {
			ce := chromeEvent{Pid: 0, Tid: tid, Ts: uint64(e.At())}
			switch e.Kind {
			case EvGCBegin:
				openMajor = e.Major
				ce.Ph = "B"
				ce.Name = gcSpanName(e.Major, e.Seq)
				ce.Args = map[string]any{"seq": e.Seq}
			case EvGCEnd:
				ce.Ph = "E"
				ce.Name = gcSpanName(openMajor, e.Seq)
				ce.Args = counterArgs(e.Counters)
			case EvPhaseBegin:
				ce.Ph = "B"
				ce.Name = e.Phase.String()
			case EvPhaseEnd:
				ce.Ph = "E"
				ce.Name = e.Phase.String()
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
		// Footprint timeline: one counter ("C") track per space, two
		// series each (live, committed), sampled at every gc_end. Perfetto
		// renders these as stacked area charts under the run's thread.
		for _, h := range d.Heap {
			for _, sp := range h.Spaces {
				if err := emit(chromeEvent{
					Name: "heap." + sp.Name, Ph: "C", Pid: 0, Tid: tid,
					Ts:   uint64(h.Break.Total()),
					Args: map[string]any{"live": sp.Live, "committed": sp.Committed},
				}); err != nil {
					return err
				}
			}
		}
		// Request spans as complete ("X") events: ts/dur carry the span,
		// args carry the GC share so slow requests can be attributed to
		// the pauses that landed inside them without cross-referencing.
		for _, q := range d.Reqs {
			if err := emit(chromeEvent{
				Name: fmt.Sprintf("req %d", q.ID), Ph: "X", Pid: 0, Tid: tid,
				Ts: uint64(q.Begin.Total()), Dur: uint64(q.Latency()),
				Args: map[string]any{"gc_cycles": uint64(q.GCCycles())},
			}); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func gcSpanName(major bool, seq uint64) string {
	if major {
		return fmt.Sprintf("GC %d (major)", seq)
	}
	return fmt.Sprintf("GC %d", seq)
}

// counterArgs flattens GC counters into trace-event args. Keys are listed
// explicitly (not ranged from a map) so output order is fixed; json.Marshal
// then sorts map keys, which is itself deterministic, but the explicit
// construction keeps the set documented in one place.
func counterArgs(c *GCCounters) map[string]any {
	if c == nil {
		return nil
	}
	args := map[string]any{
		"majors":         c.Majors,
		"frames_decoded": c.FramesDecoded,
		"frames_reused":  c.FramesReused,
		"markers_placed": c.MarkersPlaced,
		"roots_found":    c.RootsFound,
		"bytes_copied":   c.BytesCopied,
		"bytes_scanned":  c.BytesScanned,
		"objects_copied": c.ObjectsCopied,
		"ssb_processed":  c.SSBProcessed,
		"los_swept":      c.LOSSwept,
		"pretenured":     c.Pretenured,
	}
	// Non-moving old-generation counters appear only when set, mirroring
	// the JSONL omitempty treatment: copying-collector traces keep their
	// pre-oldgen bytes.
	if c.ObjectsMarked != 0 {
		args["objects_marked"] = c.ObjectsMarked
	}
	if c.WordsMarked != 0 {
		args["words_marked"] = c.WordsMarked
	}
	if c.WordsSwept != 0 {
		args["words_swept"] = c.WordsSwept
	}
	if c.WordsSlid != 0 {
		args["words_slid"] = c.WordsSlid
	}
	return args
}
