package trace

import (
	"fmt"
	"sort"

	"tilgc/internal/costmodel"
	"tilgc/internal/obj"
)

// Recorder collects one run's trace: span events, per-site counters, and
// the metrics registry. Collectors call the emit methods at collection and
// phase boundaries; the simulated runtime counts marker-stub fires into
// it. A nil *Recorder is valid and records nothing, so instrumentation
// sites call methods unconditionally.
//
// A Recorder is single-run, single-goroutine state, like the meter it
// reads timestamps from; the harness creates one per traced run.
type Recorder struct {
	meter *costmodel.Meter
	reg   *Registry

	events    []Event
	sites     map[obj.SiteID]*SiteCounters
	siteNames map[obj.SiteID]string

	seq       uint64
	gcOpen    bool
	phaseOpen bool
	gcBegin   costmodel.Breakdown

	finished     bool
	final        costmodel.Breakdown
	finalOverlap costmodel.Cycles

	gcCount   *Metric
	gcMajors  *Metric
	pauseHist *Metric
	stubs     *Metric

	// Adaptive-pretenuring telemetry (§9). The decision list and the
	// adapt.* counters are created lazily on first use so non-adaptive
	// runs' traces are byte-identical to pre-§9 builds.
	adapt        []AdaptDecision
	adaptProms   *Metric
	adaptDemos   *Metric
	adaptSamples *Metric

	// Footprint and request telemetry (SLO layer). Both are opt-in /
	// workload-driven: heap samples are recorded only after
	// EnableHeapSampling, request spans only when a workload wraps its
	// requests — so pre-existing traces stay byte-identical.
	heapOn bool
	heap   []HeapSample
	reqs   []RequestSpan
}

// SiteCounters aggregates one allocation site's telemetry: words allocated
// (split normal vs pretenured), words copied by collections (and the share
// copied into the tenured generation), and words that died (observed via
// the profiler's shadow tables when one is attached).
type SiteCounters struct {
	Site              obj.SiteID
	Name              string
	AllocObjects      uint64
	AllocWords        uint64
	PretenuredObjects uint64
	PretenuredWords   uint64
	CopiedWords       uint64
	TenuredWords      uint64
	DiedWords         uint64
}

// NewRecorder creates a recorder reading timestamps from meter.
func NewRecorder(meter *costmodel.Meter) *Recorder {
	r := &Recorder{
		meter: meter,
		reg:   NewRegistry(),
		sites: make(map[obj.SiteID]*SiteCounters),
	}
	r.gcCount = r.reg.Counter(MetricGCCount)
	r.gcMajors = r.reg.Counter(MetricGCMajors)
	r.pauseHist = r.reg.Histogram(MetricPauseCycles)
	r.stubs = r.reg.Counter(MetricStubReturns)
	return r
}

// SetSiteNames attaches site documentation used in site records.
func (r *Recorder) SetSiteNames(names map[obj.SiteID]string) {
	if r == nil {
		return
	}
	r.siteNames = names
}

// BeginGC opens a collection span. major reports how the collection was
// requested; a minor collection that escalates still shows major=false
// here, with the escalation visible in the end counters.
func (r *Recorder) BeginGC(major bool) {
	if r == nil {
		return
	}
	if r.gcOpen {
		panic("trace: BeginGC inside an open collection span")
	}
	r.gcOpen = true
	r.seq++
	r.gcBegin = r.meter.Snapshot()
	r.events = append(r.events, Event{Kind: EvGCBegin, Seq: r.seq, Major: major, Break: r.gcBegin})
}

// EndGC closes the current collection span with its counter deltas and
// feeds the pause histogram.
func (r *Recorder) EndGC(c GCCounters) {
	if r == nil {
		return
	}
	if !r.gcOpen || r.phaseOpen {
		panic("trace: EndGC without matching BeginGC or with an open phase")
	}
	r.gcOpen = false
	b := r.meter.Snapshot()
	// Copy into a local before taking the address: &c would make the
	// parameter itself escape, and escaping parameters are heap-allocated
	// in the prologue — i.e. on every call, including nil-recorder calls
	// from untraced runs, breaking the collectors' zero-allocation GC path.
	cc := c
	r.events = append(r.events, Event{Kind: EvGCEnd, Seq: r.seq, Break: b, Counters: &cc})
	r.gcCount.Add(1)
	r.gcMajors.Add(c.Majors)
	r.pauseHist.Observe(uint64(b.GC() - r.gcBegin.GC()))
}

// BeginPhase opens a phase span inside the current collection.
func (r *Recorder) BeginPhase(p Phase) {
	if r == nil {
		return
	}
	if !r.gcOpen || r.phaseOpen {
		panic(fmt.Sprintf("trace: BeginPhase(%v) outside a collection or inside another phase", p))
	}
	r.phaseOpen = true
	r.events = append(r.events, Event{Kind: EvPhaseBegin, Seq: r.seq, Phase: p, Break: r.meter.Snapshot()})
}

// EndPhase closes the current phase span.
func (r *Recorder) EndPhase(p Phase) {
	if r == nil {
		return
	}
	if !r.phaseOpen {
		panic(fmt.Sprintf("trace: EndPhase(%v) with no open phase", p))
	}
	r.phaseOpen = false
	r.events = append(r.events, Event{Kind: EvPhaseEnd, Seq: r.seq, Phase: p, Break: r.meter.Snapshot()})
}

// EndPhaseWorkers closes the current phase span carrying the per-worker
// cycle tallies of a parallel collection phase. Callers must have
// already credited the phase's overlap back to the meter (see
// costmodel.WorkerTally.ClosePhase), so the snapshot taken here differs
// from the phase-begin snapshot by exactly max(workers).
func (r *Recorder) EndPhaseWorkers(p Phase, workers []costmodel.Cycles) {
	if r == nil {
		return
	}
	if !r.phaseOpen {
		panic(fmt.Sprintf("trace: EndPhaseWorkers(%v) with no open phase", p))
	}
	r.phaseOpen = false
	w := make([]uint64, len(workers))
	for i, c := range workers {
		w[i] = uint64(c)
	}
	r.events = append(r.events, Event{Kind: EvPhaseEnd, Seq: r.seq, Phase: p, Break: r.meter.Snapshot(), Workers: w})
}

func (r *Recorder) site(id obj.SiteID) *SiteCounters {
	s, ok := r.sites[id]
	if !ok {
		s = &SiteCounters{Site: id, Name: r.siteNames[id]}
		r.sites[id] = s
	}
	return s
}

// AllocSite records an allocation of words words from site; pretenured
// marks the direct-to-tenured allocation path (§6).
func (r *Recorder) AllocSite(id obj.SiteID, words uint64, pretenured bool) {
	if r == nil {
		return
	}
	s := r.site(id)
	s.AllocObjects++
	s.AllocWords += words
	if pretenured {
		s.PretenuredObjects++
		s.PretenuredWords += words
		s.TenuredWords += words
	}
}

// CopySite records that a collection copied words words of site id's data;
// tenured marks copies landing in the tenured generation (promotion or
// tenured-to-tenured compaction).
func (r *Recorder) CopySite(id obj.SiteID, words uint64, tenured bool) {
	if r == nil {
		return
	}
	s := r.site(id)
	s.CopiedWords += words
	if tenured {
		s.TenuredWords += words
	}
}

// DeadSite records the death of words words of site id's data.
func (r *Recorder) DeadSite(id obj.SiteID, words uint64) {
	if r == nil {
		return
	}
	r.site(id).DiedWords += words
}

// EnableHeapSampling turns on end-of-collection footprint snapshots.
// Collectors gate their sample construction on HeapSampling, so disabled
// (and untraced) runs build nothing and the zero-allocation GC path is
// preserved.
func (r *Recorder) EnableHeapSampling() {
	if r == nil {
		return
	}
	r.heapOn = true
}

// HeapSampling reports whether the recorder wants footprint snapshots.
// Nil-safe: a nil recorder never samples.
func (r *Recorder) HeapSampling() bool {
	return r != nil && r.heapOn
}

// HeapSample records one end-of-collection footprint snapshot. Collectors
// call it inside the open collection span, immediately before EndGC, so
// the sample carries the closing collection's number and a meter snapshot
// equal to the gc_end event's.
func (r *Recorder) HeapSample(spaces []SpaceOcc) {
	if r == nil || !r.heapOn {
		return
	}
	if !r.gcOpen {
		panic("trace: HeapSample outside a collection span")
	}
	r.heap = append(r.heap, HeapSample{Seq: r.seq, Break: r.meter.Snapshot(), Spaces: spaces})
}

// Request records one served request span from its two meter snapshots.
// Workloads call it (via workload.Mutator.Request) as each request
// completes, so spans arrive in completion order.
func (r *Recorder) Request(id uint64, begin, end costmodel.Breakdown) {
	if r == nil {
		return
	}
	r.reqs = append(r.reqs, RequestSpan{ID: id, Begin: begin, End: end})
}

// CountStubReturn counts one mutator return through a stack-marker stub.
func (r *Recorder) CountStubReturn() {
	if r == nil {
		return
	}
	r.stubs.Add(1)
}

// ensureAdaptMetrics lazily materializes the adapt.* counters.
func (r *Recorder) ensureAdaptMetrics() {
	if r.adaptProms == nil {
		r.adaptProms = r.reg.Counter(MetricAdaptPromotions)
		r.adaptDemos = r.reg.Counter(MetricAdaptDemotions)
		r.adaptSamples = r.reg.Counter(MetricAdaptSamples)
	}
}

// AdaptDecision records one online pretenuring decision, stamping it with
// the current collection number and meter snapshot.
func (r *Recorder) AdaptDecision(site obj.SiteID, verb string, survivalPPM, garbagePPM, sampleWords uint64) {
	if r == nil {
		return
	}
	r.ensureAdaptMetrics()
	switch verb {
	case AdaptPromote, AdaptWarm:
		r.adaptProms.Add(1)
	case AdaptDemote:
		r.adaptDemos.Add(1)
	}
	r.adapt = append(r.adapt, AdaptDecision{
		Seq:         r.seq,
		Site:        site,
		Verb:        verb,
		SurvivalPPM: survivalPPM,
		GarbagePPM:  garbagePPM,
		SampleWords: sampleWords,
		Break:       r.meter.Snapshot(),
	})
}

// CountAdaptSamples adds n to the advisor's sample counter.
func (r *Recorder) CountAdaptSamples(n uint64) {
	if r == nil {
		return
	}
	r.ensureAdaptMetrics()
	r.adaptSamples.Add(n)
}

// Finish seals the trace with the run's final meter totals. Call once,
// after the workload completes; emitting after Finish panics.
func (r *Recorder) Finish() {
	if r == nil {
		return
	}
	if r.gcOpen || r.phaseOpen {
		panic("trace: Finish with an open span")
	}
	r.finished = true
	r.final = r.meter.Snapshot()
	r.finalOverlap = r.meter.Overlap()
}

// Metrics returns the run's metrics registry for snapshotting at any
// collection boundary.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Events returns the collected span events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Data freezes the recorder into the sink-independent run model the
// writers consume. Sites are sorted by id; metrics by name.
func (r *Recorder) Data(label string) *RunData {
	if r == nil {
		return nil
	}
	final := r.final
	overlap := r.finalOverlap
	if !r.finished {
		final = r.meter.Snapshot()
		overlap = r.meter.Overlap()
	}
	ids := make([]obj.SiteID, 0, len(r.sites))
	for id := range r.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sites := make([]SiteCounters, len(ids))
	for i, id := range ids {
		sites[i] = *r.sites[id]
	}
	return &RunData{
		Label:   label,
		Events:  r.events,
		Final:   final,
		Overlap: overlap,
		Sites:   sites,
		Metrics: r.reg.Snapshot(),
		Adapt:   r.adapt,
		Heap:    r.heap,
		Reqs:    r.reqs,
	}
}

// VerifyReconciled checks the acceptance invariant: per-phase cycle deltas
// must tile the run's collector time exactly — their sum equals both the
// sum of the collection-span deltas and the final meter's GC total. A
// violation means a collector charged GC cycles outside a phase span (or
// emitted spans that overlap), and the trace's breakdown cannot be
// trusted.
func (r *Recorder) VerifyReconciled() error {
	if r == nil {
		return nil
	}
	return r.Data("").Reconcile()
}

// RunData is one run's frozen trace: events in emission order, the final
// meter breakdown, sorted per-site counters, sorted metric snapshots, and
// — when the producing run opted in — the advisor's decisions, footprint
// samples, and request spans, each in emission order.
type RunData struct {
	Label  string
	Events []Event
	Final  costmodel.Breakdown
	// Overlap is the total collector cycles hidden by parallel workers
	// (costmodel.Meter.Overlap at the end of the run): Final counts wall
	// time, Final.Total()+Overlap is the honest sum-of-workers cost.
	// Always zero for single-worker runs, keeping their streams
	// byte-identical to pre-parallel builds.
	Overlap costmodel.Cycles
	Sites   []SiteCounters
	Metrics []Metric
	Adapt   []AdaptDecision
	Heap    []HeapSample
	Reqs    []RequestSpan
}

// Reconcile verifies the phase/meter tiling invariant on frozen data (see
// Recorder.VerifyReconciled), including the parallel-worker invariants:
// a phase_end carrying per-worker tallies must have a wall-clock GC delta
// of exactly max(workers), and the sum over all such phases of the cycles
// hidden behind the critical path (sum-max) must equal the run's Overlap.
func (d *RunData) Reconcile() error {
	var phaseGC, spanGC, workerOverlap costmodel.Cycles
	var open [4]costmodel.Breakdown // stack depth 2: gc span + phase span
	for _, e := range d.Events {
		switch e.Kind {
		case EvGCBegin:
			open[0] = e.Break
		case EvGCEnd:
			spanGC += e.Break.GC() - open[0].GC()
		case EvPhaseBegin:
			open[1] = e.Break
		case EvPhaseEnd:
			delta := e.Break.GC() - open[1].GC()
			phaseGC += delta
			if len(e.Workers) > 0 {
				var sum, max uint64
				for _, w := range e.Workers {
					sum += w
					if w > max {
						max = w
					}
				}
				if costmodel.Cycles(max) != delta {
					return fmt.Errorf("trace: collection %d %v: max worker cycles %d != phase GC delta %d",
						e.Seq, e.Phase, max, delta)
				}
				workerOverlap += costmodel.Cycles(sum - max)
			}
		}
	}
	if phaseGC != spanGC {
		return fmt.Errorf("trace: phase GC cycles %d != collection-span GC cycles %d", phaseGC, spanGC)
	}
	if spanGC != d.Final.GC() {
		return fmt.Errorf("trace: collection-span GC cycles %d != final meter GC cycles %d", spanGC, d.Final.GC())
	}
	if workerOverlap != d.Overlap {
		return fmt.Errorf("trace: per-phase worker overlap %d != run overlap %d", workerOverlap, d.Overlap)
	}
	return nil
}
