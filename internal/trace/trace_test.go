package trace

import (
	"bytes"
	"strings"
	"testing"

	"tilgc/internal/costmodel"
)

// TestNilRecorderIsSafe: every Recorder method must be callable on a nil
// receiver — instrumentation sites call unconditionally.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.SetSiteNames(nil)
	r.BeginGC(false)
	r.BeginPhase(PhaseRoots)
	r.EndPhase(PhaseRoots)
	r.EndGC(GCCounters{})
	r.AllocSite(1, 8, false)
	r.CopySite(1, 8, true)
	r.DeadSite(1, 8)
	r.CountStubReturn()
	r.Finish()
	if r.Metrics() != nil || r.Events() != nil || r.Data("x") != nil {
		t.Error("nil recorder returned non-nil accessors")
	}
	if err := r.VerifyReconciled(); err != nil {
		t.Error(err)
	}
}

// TestRecorderSpanGuards: structurally invalid span emissions panic — a
// collector bug must fail loudly, not produce an unreconcilable trace.
func TestRecorderSpanGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	m := costmodel.NewMeter()
	r := NewRecorder(m)
	mustPanic("EndGC before BeginGC", func() { r.EndGC(GCCounters{}) })
	mustPanic("BeginPhase outside GC", func() { r.BeginPhase(PhaseRoots) })
	r.BeginGC(false)
	mustPanic("nested BeginGC", func() { r.BeginGC(true) })
	r.BeginPhase(PhaseRoots)
	mustPanic("nested BeginPhase", func() { r.BeginPhase(PhaseCopy) })
	mustPanic("EndGC with open phase", func() { r.EndGC(GCCounters{}) })
	mustPanic("Finish with open span", func() { r.Finish() })
	r.EndPhase(PhaseRoots)
	r.EndGC(GCCounters{})
	r.Finish()
}

// TestRecorderPauseHistogram: GC spans feed the pause histogram with the
// GC-component delta, not wall anything.
func TestRecorderPauseHistogram(t *testing.T) {
	m := costmodel.NewMeter()
	r := NewRecorder(m)
	m.ChargeN(costmodel.Client, 1, 100) // client time does not count as pause
	r.BeginGC(false)
	r.BeginPhase(PhaseCopy)
	m.ChargeN(costmodel.GCCopy, 1, 1000)
	r.EndPhase(PhaseCopy)
	r.EndGC(GCCounters{})
	r.Finish()
	h, ok := r.Metrics().Lookup(MetricPauseCycles)
	if !ok {
		t.Fatal("pause histogram missing")
	}
	if h.Count != 1 || h.Sum != 1000 || h.Max != 1000 {
		t.Errorf("pause histogram = count %d sum %d max %d, want 1/1000/1000", h.Count, h.Sum, h.Max)
	}
	if err := r.VerifyReconciled(); err != nil {
		t.Error(err)
	}
}

// TestReconcileDetectsLeaks: a GC charge outside any phase breaks the
// tiling invariant and must be reported.
func TestReconcileDetectsLeaks(t *testing.T) {
	m := costmodel.NewMeter()
	r := NewRecorder(m)
	r.BeginGC(false)
	m.ChargeN(costmodel.GCCopy, 1, 50) // inside the GC span but outside any phase
	r.BeginPhase(PhaseCopy)
	m.ChargeN(costmodel.GCCopy, 1, 10)
	r.EndPhase(PhaseCopy)
	r.EndGC(GCCounters{})
	r.Finish()
	if err := r.VerifyReconciled(); err == nil {
		t.Error("phase-untiled GC charge went undetected")
	}

	m2 := costmodel.NewMeter()
	r2 := NewRecorder(m2)
	m2.ChargeN(costmodel.GCStack, 1, 7) // GC charge outside any collection span
	r2.Finish()
	if err := r2.VerifyReconciled(); err == nil {
		t.Error("span-untiled GC charge went undetected")
	}
}

// TestHistogramBuckets: log2 bucketing puts v in bucket bits.Len64(v).
func TestHistogramBuckets(t *testing.T) {
	var m Metric
	m.Kind = KindHistogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		m.Observe(v)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1}
	for b, n := range want {
		if b >= len(m.Buckets) || m.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d", b, bucketAt(&m, b), n)
		}
	}
	if m.Count != 9 || m.Max != 1024 {
		t.Errorf("count %d max %d, want 9/1024", m.Count, m.Max)
	}
	if q := m.Quantile(1); q < m.Max {
		t.Errorf("p100 upper bound %d below max %d", q, m.Max)
	}
}

func bucketAt(m *Metric, b int) uint64 {
	if b < len(m.Buckets) {
		return m.Buckets[b]
	}
	return 0
}

// TestRegistryKinds: kind clashes panic; snapshots are name-sorted deep
// copies.
func TestRegistryKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Gauge("a.level").Set(7)
	reg.Histogram("c.hist").Observe(5)
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	snap := reg.Snapshot()
	if len(snap) != 3 || snap[0].Name != "a.level" || snap[1].Name != "b.count" || snap[2].Name != "c.hist" {
		t.Fatalf("snapshot misordered: %+v", snap)
	}
	snap[2].Buckets[0] = 99
	if m, _ := reg.Lookup("c.hist"); len(m.Buckets) > 0 && m.Buckets[0] == 99 {
		t.Error("snapshot shares bucket storage with the registry")
	}
	reg.Gauge("b.count") // registered as counter: panics
}

// TestPhaseNames: wire names parse back to themselves and unknown names
// are rejected.
func TestPhaseNames(t *testing.T) {
	for _, p := range Phases() {
		q, ok := ParsePhase(p.String())
		if !ok || q != p {
			t.Errorf("phase %d round-trips to %d (ok=%v)", p, q, ok)
		}
	}
	if _, ok := ParsePhase("warble"); ok {
		t.Error("unknown phase name parsed")
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase has a wire name")
	}
}

// TestReadJSONLRejects: the strict reader refuses malformed streams.
func TestReadJSONLRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      `{"t":"run","run":0,"label":"x"}`,
		"bad schema":     `{"t":"header","schema":99,"clock_hz":1,"runs":0}`,
		"unknown field":  `{"t":"header","schema":1,"clock_hz":1,"runs":0,"zz":1}`,
		"unknown record": "{\"t\":\"header\",\"schema\":1,\"clock_hz\":1,\"runs\":0}\n{\"t\":\"wat\"}",
		"run order":      "{\"t\":\"header\",\"schema\":1,\"clock_hz\":1,\"runs\":1}\n{\"t\":\"run\",\"run\":3,\"label\":\"x\"}",
		"at mismatch": "{\"t\":\"header\",\"schema\":1,\"clock_hz\":1,\"runs\":1}\n" +
			"{\"t\":\"run\",\"run\":0,\"label\":\"x\"}\n" +
			"{\"t\":\"gc_begin\",\"run\":0,\"seq\":1,\"major\":false,\"at\":5,\"client\":1,\"stack\":0,\"copy\":0}",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestValidateCatchesBrokenSpans: structurally broken event streams fail
// Validate even when each line parses.
func TestValidateCatchesBrokenSpans(t *testing.T) {
	open := &RunData{Events: []Event{{Kind: EvGCBegin, Seq: 1}}}
	if err := NewFile(open).Validate(); err == nil {
		t.Error("unclosed collection span validated")
	}
	badSeq := &RunData{Events: []Event{
		{Kind: EvGCBegin, Seq: 2},
		{Kind: EvGCEnd, Seq: 2, Counters: &GCCounters{}},
	}}
	if err := NewFile(badSeq).Validate(); err == nil {
		t.Error("non-consecutive collection seq validated")
	}
	backwards := &RunData{Events: []Event{
		{Kind: EvGCBegin, Seq: 1, Break: costmodel.Breakdown{Client: 10}},
		{Kind: EvGCEnd, Seq: 1, Counters: &GCCounters{}, Break: costmodel.Breakdown{Client: 5}},
	}}
	if err := NewFile(backwards).Validate(); err == nil {
		t.Error("backwards meter snapshot validated")
	}
}

// TestWriteChromeEmpty: an empty file still renders a loadable document.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewFile().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("empty chrome trace lacks traceEvents")
	}
}
