package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"tilgc/internal/costmodel"
	"tilgc/internal/obj"
)

// JSONL sink: one record per line, schema-versioned. Record kinds, in
// stream order:
//
//	{"t":"header","schema":1,"clock_hz":150000000,"runs":N}
//	{"t":"run","run":i,"label":"Life/gen+markers k=2"}       per run, then:
//	{"t":"gc_begin","run":i,"seq":s,"major":false,"at":C,"client":..,"stack":..,"copy":..}
//	{"t":"phase_begin","run":i,"seq":s,"phase":"roots",...}
//	{"t":"phase_end",...}
//	{"t":"gc_end","run":i,"seq":s,...,"counters":{...}}
//	{"t":"run_end","run":i,"client":..,"stack":..,"copy":..}
//	{"t":"adapt","run":i,"seq":s,"site":..,"verb":"promote",...}  adaptive runs only
//	{"t":"heap","run":i,"seq":s,...,"spaces":[{"name":..,"live":..,"committed":..}]}
//	                                                         heap-sampled runs only
//	{"t":"req","run":i,"id":..,"b_client":..,...,"e_client":..,...}
//	                                                         request workloads only
//	{"t":"site","run":i,"site":..,"name":..,...}             sorted by site id
//	{"t":"metric","run":i,"name":..,"kind":..,...}           sorted by name
//
// All cycle quantities are integers of simulated cycles; "at" is always
// client+stack+copy+adapt at the event ("adapt" is omitted when zero, i.e.
// on every non-adaptive run — those streams are byte-identical to pre-§9
// builds). The stream contains no floats, no wall-clock quantities, and no
// map-ordered output, so it is byte-identical across runs and harness
// parallelism levels.

type recHeader struct {
	T       string `json:"t"`
	Schema  int    `json:"schema"`
	ClockHz uint64 `json:"clock_hz"`
	Runs    int    `json:"runs"`
}

type recRun struct {
	T     string `json:"t"`
	Run   int    `json:"run"`
	Label string `json:"label"`
}

type recEvent struct {
	T      string `json:"t"`
	Run    int    `json:"run"`
	Seq    uint64 `json:"seq"`
	Major  *bool  `json:"major,omitempty"`
	Phase  string `json:"phase,omitempty"`
	At     uint64 `json:"at"`
	Client uint64 `json:"client"`
	Stack  uint64 `json:"stack"`
	Copy   uint64 `json:"copy"`
	Adapt  uint64 `json:"adapt,omitempty"`
	// Workers appears on phase_end records of parallel collection phases
	// only (W > 1), so single-worker streams — including the golden
	// fixture — are byte-identical to pre-parallel builds.
	Workers  []uint64    `json:"workers,omitempty"`
	Counters *GCCounters `json:"counters,omitempty"`
}

type recRunEnd struct {
	T      string `json:"t"`
	Run    int    `json:"run"`
	Client uint64 `json:"client"`
	Stack  uint64 `json:"stack"`
	Copy   uint64 `json:"copy"`
	Adapt  uint64 `json:"adapt,omitempty"`
	// Overlap is the run's hidden parallel-worker cycles (see
	// RunData.Overlap); omitted when zero, i.e. on every single-worker run.
	Overlap uint64 `json:"overlap,omitempty"`
}

// recAdapt is one advisor decision. It appears only in adaptive runs'
// streams (after run_end, before site records), so non-adaptive traces —
// including the golden fixture — are byte-identical to pre-§9 builds
// without a schema bump; readers reject it only via the unknown-record
// check, which schema 1 readers predating §9 would do by design.
type recAdapt struct {
	T           string `json:"t"`
	Run         int    `json:"run"`
	Seq         uint64 `json:"seq"`
	Site        uint16 `json:"site"`
	Verb        string `json:"verb"`
	SurvivalPPM uint64 `json:"survival_ppm"`
	GarbagePPM  uint64 `json:"garbage_ppm"`
	SampleWords uint64 `json:"sample_words"`
	At          uint64 `json:"at"`
	Client      uint64 `json:"client"`
	Stack       uint64 `json:"stack"`
	Copy        uint64 `json:"copy"`
	Adapt       uint64 `json:"adapt,omitempty"`
}

// recHeap is one end-of-collection footprint sample. Like recAdapt it is
// gated — emitted only when the producing run enabled heap sampling — so
// default streams (and the golden fixture) are byte-identical to builds
// predating it.
type recHeap struct {
	T      string         `json:"t"`
	Run    int            `json:"run"`
	Seq    uint64         `json:"seq"`
	At     uint64         `json:"at"`
	Client uint64         `json:"client"`
	Stack  uint64         `json:"stack"`
	Copy   uint64         `json:"copy"`
	Adapt  uint64         `json:"adapt,omitempty"`
	Spaces []recHeapSpace `json:"spaces"`
}

type recHeapSpace struct {
	Name      string `json:"name"`
	Live      uint64 `json:"live"`
	Committed uint64 `json:"committed"`
}

// recReq is one served request span: the full meter breakdown at arrival
// (b_*) and completion (e_*). Latency and the GC share inside the request
// are deltas of the two snapshots; no derived field is stored, so the
// record cannot disagree with itself.
type recReq struct {
	T       string `json:"t"`
	Run     int    `json:"run"`
	ID      uint64 `json:"id"`
	BClient uint64 `json:"b_client"`
	BStack  uint64 `json:"b_stack"`
	BCopy   uint64 `json:"b_copy"`
	BAdapt  uint64 `json:"b_adapt,omitempty"`
	EClient uint64 `json:"e_client"`
	EStack  uint64 `json:"e_stack"`
	ECopy   uint64 `json:"e_copy"`
	EAdapt  uint64 `json:"e_adapt,omitempty"`
}

type recSite struct {
	T                 string `json:"t"`
	Run               int    `json:"run"`
	Site              uint16 `json:"site"`
	Name              string `json:"name,omitempty"`
	AllocObjects      uint64 `json:"alloc_objects"`
	AllocWords        uint64 `json:"alloc_words"`
	PretenuredObjects uint64 `json:"pretenured_objects"`
	PretenuredWords   uint64 `json:"pretenured_words"`
	CopiedWords       uint64 `json:"copied_words"`
	TenuredWords      uint64 `json:"tenured_words"`
	DiedWords         uint64 `json:"died_words"`
}

type recMetric struct {
	T       string   `json:"t"`
	Run     int      `json:"run"`
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Value   uint64   `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// eventRecName maps event kinds to wire record names.
func eventRecName(k EventKind) string {
	switch k {
	case EvGCBegin:
		return "gc_begin"
	case EvGCEnd:
		return "gc_end"
	case EvPhaseBegin:
		return "phase_begin"
	case EvPhaseEnd:
		return "phase_end"
	}
	return "unknown"
}

// File is a parsed (or about-to-be-written) trace: a schema header plus
// one RunData per traced run.
type File struct {
	Schema  int
	ClockHz uint64
	Runs    []*RunData
}

// NewFile wraps frozen run data in a current-schema file.
func NewFile(runs ...*RunData) *File {
	return &File{Schema: SchemaVersion, ClockHz: uint64(costmodel.ClockHz), Runs: runs}
}

// WriteJSONL writes the file as schema-versioned JSONL.
func (f *File) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	if err := enc.Encode(recHeader{T: "header", Schema: f.Schema, ClockHz: f.ClockHz, Runs: len(f.Runs)}); err != nil {
		return err
	}
	for i, d := range f.Runs {
		if err := enc.Encode(recRun{T: "run", Run: i, Label: d.Label}); err != nil {
			return err
		}
		for _, e := range d.Events {
			rec := recEvent{
				T:      eventRecName(e.Kind),
				Run:    i,
				Seq:    e.Seq,
				At:     uint64(e.At()),
				Client: uint64(e.Break.Client),
				Stack:  uint64(e.Break.GCStack),
				Copy:   uint64(e.Break.GCCopy),
				Adapt:  uint64(e.Break.Adapt),
			}
			switch e.Kind {
			case EvGCBegin:
				major := e.Major
				rec.Major = &major
			case EvGCEnd:
				rec.Counters = e.Counters
			case EvPhaseBegin, EvPhaseEnd:
				rec.Phase = e.Phase.String()
				rec.Workers = e.Workers
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		end := recRunEnd{T: "run_end", Run: i,
			Client: uint64(d.Final.Client), Stack: uint64(d.Final.GCStack),
			Copy: uint64(d.Final.GCCopy), Adapt: uint64(d.Final.Adapt),
			Overlap: uint64(d.Overlap)}
		if err := enc.Encode(end); err != nil {
			return err
		}
		for _, a := range d.Adapt {
			if err := enc.Encode(recAdapt{T: "adapt", Run: i, Seq: a.Seq,
				Site: uint16(a.Site), Verb: a.Verb,
				SurvivalPPM: a.SurvivalPPM, GarbagePPM: a.GarbagePPM, SampleWords: a.SampleWords,
				At:     uint64(a.Break.Total()),
				Client: uint64(a.Break.Client), Stack: uint64(a.Break.GCStack),
				Copy: uint64(a.Break.GCCopy), Adapt: uint64(a.Break.Adapt)}); err != nil {
				return err
			}
		}
		for _, h := range d.Heap {
			spaces := make([]recHeapSpace, len(h.Spaces))
			for j, sp := range h.Spaces {
				spaces[j] = recHeapSpace{Name: sp.Name, Live: sp.Live, Committed: sp.Committed}
			}
			if err := enc.Encode(recHeap{T: "heap", Run: i, Seq: h.Seq,
				At:     uint64(h.Break.Total()),
				Client: uint64(h.Break.Client), Stack: uint64(h.Break.GCStack),
				Copy: uint64(h.Break.GCCopy), Adapt: uint64(h.Break.Adapt),
				Spaces: spaces}); err != nil {
				return err
			}
		}
		for _, q := range d.Reqs {
			if err := enc.Encode(recReq{T: "req", Run: i, ID: q.ID,
				BClient: uint64(q.Begin.Client), BStack: uint64(q.Begin.GCStack),
				BCopy: uint64(q.Begin.GCCopy), BAdapt: uint64(q.Begin.Adapt),
				EClient: uint64(q.End.Client), EStack: uint64(q.End.GCStack),
				ECopy: uint64(q.End.GCCopy), EAdapt: uint64(q.End.Adapt)}); err != nil {
				return err
			}
		}
		for _, s := range d.Sites {
			if err := enc.Encode(recSite{T: "site", Run: i, Site: uint16(s.Site), Name: s.Name,
				AllocObjects: s.AllocObjects, AllocWords: s.AllocWords,
				PretenuredObjects: s.PretenuredObjects, PretenuredWords: s.PretenuredWords,
				CopiedWords: s.CopiedWords, TenuredWords: s.TenuredWords, DiedWords: s.DiedWords}); err != nil {
				return err
			}
		}
		for _, m := range d.Metrics {
			rec := recMetric{T: "metric", Run: i, Name: m.Name, Kind: m.Kind.String()}
			if m.Kind == KindHistogram {
				rec.Count, rec.Sum, rec.Max, rec.Buckets = m.Count, m.Sum, m.Max, m.Buckets
			} else {
				rec.Value = m.Value
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace, rejecting unknown record types, unknown
// fields, out-of-order run records, and schema versions this build does
// not understand. Structural soundness beyond record shape (span pairing,
// monotonic timestamps, reconciliation) is checked by Validate.
func ReadJSONL(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var f *File
	var cur *RunData
	lineNo := 0
	strict := func(line []byte, into any) error {
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		return dec.Decode(into)
	}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			T   string `json:"t"`
			Run int    `json:"run"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		if probe.T == "header" {
			if f != nil {
				return nil, fmt.Errorf("trace: line %d: duplicate header", lineNo)
			}
			var h recHeader
			if err := strict(line, &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			if h.Schema != SchemaVersion {
				return nil, fmt.Errorf("trace: line %d: schema %d, this build reads schema %d", lineNo, h.Schema, SchemaVersion)
			}
			f = &File{Schema: h.Schema, ClockHz: h.ClockHz}
			continue
		}
		if f == nil {
			return nil, fmt.Errorf("trace: line %d: %q record before header", lineNo, probe.T)
		}
		if probe.T == "run" {
			var rr recRun
			if err := strict(line, &rr); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			if rr.Run != len(f.Runs) {
				return nil, fmt.Errorf("trace: line %d: run %d out of order (expected %d)", lineNo, rr.Run, len(f.Runs))
			}
			cur = &RunData{Label: rr.Label}
			f.Runs = append(f.Runs, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("trace: line %d: %q record before any run record", lineNo, probe.T)
		}
		if probe.Run != len(f.Runs)-1 {
			return nil, fmt.Errorf("trace: line %d: %q record for run %d inside run %d", lineNo, probe.T, probe.Run, len(f.Runs)-1)
		}
		switch probe.T {
		case "gc_begin", "gc_end", "phase_begin", "phase_end":
			var re recEvent
			if err := strict(line, &re); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			ev, err := re.event(probe.T)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			cur.Events = append(cur.Events, ev)
		case "run_end":
			var re recRunEnd
			if err := strict(line, &re); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			cur.Final = costmodel.Breakdown{
				Client:  costmodel.Cycles(re.Client),
				GCStack: costmodel.Cycles(re.Stack),
				GCCopy:  costmodel.Cycles(re.Copy),
				Adapt:   costmodel.Cycles(re.Adapt),
			}
			cur.Overlap = costmodel.Cycles(re.Overlap)
		case "adapt":
			var ra recAdapt
			if err := strict(line, &ra); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			b := costmodel.Breakdown{
				Client:  costmodel.Cycles(ra.Client),
				GCStack: costmodel.Cycles(ra.Stack),
				GCCopy:  costmodel.Cycles(ra.Copy),
				Adapt:   costmodel.Cycles(ra.Adapt),
			}
			if costmodel.Cycles(ra.At) != b.Total() {
				return nil, fmt.Errorf("trace: line %d: at %d != breakdown total %d", lineNo, ra.At, b.Total())
			}
			switch ra.Verb {
			case AdaptPromote, AdaptDemote, AdaptWarm:
			default:
				return nil, fmt.Errorf("trace: line %d: unknown adapt verb %q", lineNo, ra.Verb)
			}
			cur.Adapt = append(cur.Adapt, AdaptDecision{
				Seq: ra.Seq, Site: obj.SiteID(ra.Site), Verb: ra.Verb,
				SurvivalPPM: ra.SurvivalPPM, GarbagePPM: ra.GarbagePPM,
				SampleWords: ra.SampleWords, Break: b,
			})
		case "heap":
			var rh recHeap
			if err := strict(line, &rh); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			b := costmodel.Breakdown{
				Client:  costmodel.Cycles(rh.Client),
				GCStack: costmodel.Cycles(rh.Stack),
				GCCopy:  costmodel.Cycles(rh.Copy),
				Adapt:   costmodel.Cycles(rh.Adapt),
			}
			if costmodel.Cycles(rh.At) != b.Total() {
				return nil, fmt.Errorf("trace: line %d: at %d != breakdown total %d", lineNo, rh.At, b.Total())
			}
			spaces := make([]SpaceOcc, len(rh.Spaces))
			for j, sp := range rh.Spaces {
				spaces[j] = SpaceOcc{Name: sp.Name, Live: sp.Live, Committed: sp.Committed}
			}
			cur.Heap = append(cur.Heap, HeapSample{Seq: rh.Seq, Break: b, Spaces: spaces})
		case "req":
			var rq recReq
			if err := strict(line, &rq); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			cur.Reqs = append(cur.Reqs, RequestSpan{ID: rq.ID,
				Begin: costmodel.Breakdown{
					Client:  costmodel.Cycles(rq.BClient),
					GCStack: costmodel.Cycles(rq.BStack),
					GCCopy:  costmodel.Cycles(rq.BCopy),
					Adapt:   costmodel.Cycles(rq.BAdapt),
				},
				End: costmodel.Breakdown{
					Client:  costmodel.Cycles(rq.EClient),
					GCStack: costmodel.Cycles(rq.EStack),
					GCCopy:  costmodel.Cycles(rq.ECopy),
					Adapt:   costmodel.Cycles(rq.EAdapt),
				}})
		case "site":
			var rs recSite
			if err := strict(line, &rs); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			cur.Sites = append(cur.Sites, SiteCounters{
				Site: obj.SiteID(rs.Site), Name: rs.Name,
				AllocObjects: rs.AllocObjects, AllocWords: rs.AllocWords,
				PretenuredObjects: rs.PretenuredObjects, PretenuredWords: rs.PretenuredWords,
				CopiedWords: rs.CopiedWords, TenuredWords: rs.TenuredWords, DiedWords: rs.DiedWords,
			})
		case "metric":
			var rm recMetric
			if err := strict(line, &rm); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			m := Metric{Name: rm.Name, Value: rm.Value,
				Count: rm.Count, Sum: rm.Sum, Max: rm.Max, Buckets: rm.Buckets}
			switch rm.Kind {
			case "counter":
				m.Kind = KindCounter
			case "gauge":
				m.Kind = KindGauge
			case "hist":
				m.Kind = KindHistogram
			default:
				return nil, fmt.Errorf("trace: line %d: unknown metric kind %q", lineNo, rm.Kind)
			}
			cur.Metrics = append(cur.Metrics, m)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", lineNo, probe.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		return nil, fmt.Errorf("trace: empty input (no header record)")
	}
	return f, nil
}

// event converts a wire event record back to the in-memory form.
func (re recEvent) event(t string) (Event, error) {
	b := costmodel.Breakdown{
		Client:  costmodel.Cycles(re.Client),
		GCStack: costmodel.Cycles(re.Stack),
		GCCopy:  costmodel.Cycles(re.Copy),
		Adapt:   costmodel.Cycles(re.Adapt),
	}
	if costmodel.Cycles(re.At) != b.Total() {
		return Event{}, fmt.Errorf("at %d != client+stack+copy+adapt %d", re.At, b.Total())
	}
	ev := Event{Seq: re.Seq, Break: b}
	if len(re.Workers) > 0 && t != "phase_end" {
		return Event{}, fmt.Errorf("%s record carries worker tallies", t)
	}
	switch t {
	case "gc_begin":
		ev.Kind = EvGCBegin
		if re.Major == nil {
			return Event{}, fmt.Errorf("gc_begin without major field")
		}
		ev.Major = *re.Major
	case "gc_end":
		ev.Kind = EvGCEnd
		if re.Counters == nil {
			return Event{}, fmt.Errorf("gc_end without counters")
		}
		ev.Counters = re.Counters
	case "phase_begin", "phase_end":
		if t == "phase_begin" {
			ev.Kind = EvPhaseBegin
		} else {
			ev.Kind = EvPhaseEnd
			ev.Workers = re.Workers
		}
		p, ok := ParsePhase(re.Phase)
		if !ok {
			return Event{}, fmt.Errorf("unknown phase %q", re.Phase)
		}
		ev.Phase = p
	}
	return ev, nil
}

// Validate checks every run's structural invariants: spans strictly
// nested and paired, collection sequence numbers consecutive from 1,
// meter components non-decreasing event to event, and the per-phase /
// per-span / final-meter cycle reconciliation.
func (f *File) Validate() error {
	if f.Schema != SchemaVersion {
		return fmt.Errorf("trace: schema %d, want %d", f.Schema, SchemaVersion)
	}
	for i, d := range f.Runs {
		if err := d.validate(); err != nil {
			return fmt.Errorf("run %d (%s): %w", i, d.Label, err)
		}
	}
	return nil
}

func (d *RunData) validate() error {
	var prev costmodel.Breakdown
	var seq uint64
	gcOpen, phaseOpen := false, false
	var openPhase Phase
	for i, e := range d.Events {
		if e.Break.Client < prev.Client || e.Break.GCStack < prev.GCStack ||
			e.Break.GCCopy < prev.GCCopy || e.Break.Adapt < prev.Adapt {
			return fmt.Errorf("event %d: meter snapshot went backwards", i)
		}
		prev = e.Break
		switch e.Kind {
		case EvGCBegin:
			if gcOpen {
				return fmt.Errorf("event %d: gc_begin inside an open collection", i)
			}
			if e.Seq != seq+1 {
				return fmt.Errorf("event %d: collection seq %d, want %d", i, e.Seq, seq+1)
			}
			seq = e.Seq
			gcOpen = true
		case EvGCEnd:
			if !gcOpen || phaseOpen {
				return fmt.Errorf("event %d: gc_end without open collection (or with open phase)", i)
			}
			if e.Seq != seq {
				return fmt.Errorf("event %d: gc_end seq %d, want %d", i, e.Seq, seq)
			}
			gcOpen = false
		case EvPhaseBegin:
			if !gcOpen || phaseOpen {
				return fmt.Errorf("event %d: phase_begin outside a collection or inside phase %v", i, openPhase)
			}
			phaseOpen, openPhase = true, e.Phase
		case EvPhaseEnd:
			if !phaseOpen || e.Phase != openPhase {
				return fmt.Errorf("event %d: phase_end(%v) does not match open phase", i, e.Phase)
			}
			phaseOpen = false
		}
	}
	if gcOpen || phaseOpen {
		return fmt.Errorf("trace ends with an open span")
	}
	if d.Final.Total() < prev.Total() {
		return fmt.Errorf("final meter breakdown precedes last event")
	}
	var prevHeap costmodel.Breakdown
	for i, h := range d.Heap {
		if h.Seq == 0 || h.Seq > seq {
			return fmt.Errorf("heap sample %d: collection seq %d outside 1..%d", i, h.Seq, seq)
		}
		if h.Break.Total() < prevHeap.Total() {
			return fmt.Errorf("heap sample %d: timestamp went backwards", i)
		}
		prevHeap = h.Break
		if h.Break.Total() > d.Final.Total() {
			return fmt.Errorf("heap sample %d: timestamp after final meter", i)
		}
		if len(h.Spaces) == 0 {
			return fmt.Errorf("heap sample %d: no spaces", i)
		}
		for _, sp := range h.Spaces {
			if sp.Name == "" {
				return fmt.Errorf("heap sample %d: unnamed space", i)
			}
			if sp.Live > sp.Committed {
				return fmt.Errorf("heap sample %d: space %s live %d > committed %d", i, sp.Name, sp.Live, sp.Committed)
			}
		}
	}
	var prevReq costmodel.Cycles
	for i, q := range d.Reqs {
		if q.End.Client < q.Begin.Client || q.End.GCStack < q.Begin.GCStack ||
			q.End.GCCopy < q.Begin.GCCopy || q.End.Adapt < q.Begin.Adapt {
			return fmt.Errorf("request span %d (id %d): end breakdown precedes begin", i, q.ID)
		}
		if q.Begin.Total() < prevReq {
			return fmt.Errorf("request span %d (id %d): begins before the previous span's start", i, q.ID)
		}
		prevReq = q.Begin.Total()
		if q.End.Total() > d.Final.Total() {
			return fmt.Errorf("request span %d (id %d): ends after final meter", i, q.ID)
		}
	}
	return d.Reconcile()
}
