package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"tilgc/internal/costmodel"
)

// Summary rendering shared by `gctrace summary` and `gcbench -metrics`:
// per-run phase breakdowns, marker hit rates, pause statistics, and the
// per-site tenure table, all computed from frozen RunData.

// PhaseTotals accumulates one phase's cycle deltas across all collections
// of a run.
type PhaseTotals struct {
	Phase  Phase
	Count  uint64
	Client costmodel.Cycles
	Stack  costmodel.Cycles
	Copy   costmodel.Cycles
}

// Total returns the phase's total cycles across all meter components.
func (p PhaseTotals) Total() costmodel.Cycles { return p.Client + p.Stack + p.Copy }

// Pause is one collection's pause: its sequence number, GC-component
// cycle cost, and whether it was (or escalated to) a major collection.
type Pause struct {
	Seq    uint64
	Cycles costmodel.Cycles
	Major  bool
}

// RunSummary is the derived per-run view the summary writer prints.
type RunSummary struct {
	Label  string
	GCs    uint64
	Majors uint64
	Phases []PhaseTotals // only phases that occurred, declaration order
	Pauses []Pause       // in collection order

	FramesDecoded uint64 // marker misses: full trace-table decodes
	FramesReused  uint64 // marker hits: cached frame scans reused
	MarkersPlaced uint64
	BytesCopied   uint64
	Pretenured    uint64

	Final costmodel.Breakdown
	// ReconcileErr is nil when per-phase GC cycles tile the collection
	// spans and the final meter exactly.
	ReconcileErr error
}

// MarkerHitRate returns reused/(reused+decoded), the fraction of stack
// frames whose scan was avoided by a marker, or 0 with ok=false when no
// frames were walked.
func (s *RunSummary) MarkerHitRate() (float64, bool) {
	total := s.FramesReused + s.FramesDecoded
	if total == 0 {
		return 0, false
	}
	return float64(s.FramesReused) / float64(total), true
}

// Summarize derives the per-run summary from frozen run data.
func (d *RunData) Summarize() *RunSummary {
	s := &RunSummary{Label: d.Label, Final: d.Final, ReconcileErr: d.Reconcile()}
	var phases [numPhases]PhaseTotals
	var gcBegin, phaseBegin costmodel.Breakdown
	openMajor := false
	for _, e := range d.Events {
		switch e.Kind {
		case EvGCBegin:
			gcBegin = e.Break
			openMajor = e.Major
		case EvGCEnd:
			s.GCs++
			if e.Counters != nil {
				c := e.Counters
				if c.Majors > 0 {
					openMajor = true
				}
				s.Majors += c.Majors
				s.FramesDecoded += c.FramesDecoded
				s.FramesReused += c.FramesReused
				s.MarkersPlaced += c.MarkersPlaced
				s.BytesCopied += c.BytesCopied
				s.Pretenured += c.Pretenured
			}
			s.Pauses = append(s.Pauses, Pause{Seq: e.Seq, Cycles: e.Break.GC() - gcBegin.GC(), Major: openMajor})
		case EvPhaseBegin:
			phaseBegin = e.Break
		case EvPhaseEnd:
			p := &phases[e.Phase]
			p.Phase = e.Phase
			p.Count++
			p.Client += e.Break.Client - phaseBegin.Client
			p.Stack += e.Break.GCStack - phaseBegin.GCStack
			p.Copy += e.Break.GCCopy - phaseBegin.GCCopy
		}
	}
	for i := range phases {
		if phases[i].Count > 0 {
			s.Phases = append(s.Phases, phases[i])
		}
	}
	return s
}

// Percentile returns the exact nearest-rank percentile of sorted
// (ascending) values: the element of 1-based rank ceil(ppm*n/1e6),
// clamped to [1, n]. ppm is the percentile in parts per million
// (p99.9 = 999000), keeping the computation integer-only so results are
// byte-identical across platforms. ok is false for empty input.
//
// Unlike the log2-bucket histogram quantile, which can only bound a
// percentile by its bucket's upper edge, this is the exact recorded value
// — the difference the SLO layer exists to expose.
func Percentile(sorted []uint64, ppm uint64) (v uint64, ok bool) {
	n := uint64(len(sorted))
	if n == 0 {
		return 0, false
	}
	rank := (ppm*n + 1e6 - 1) / 1e6
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1], true
}

// PauseCycles returns the run's per-collection pause costs (GC-component
// cycles) sorted ascending — the input Percentile expects.
func (s *RunSummary) PauseCycles() []uint64 {
	out := make([]uint64, len(s.Pauses))
	for i, p := range s.Pauses {
		out[i] = uint64(p.Cycles)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopPauses returns the n longest pauses, longest first; ties break toward
// the earlier collection so the ordering is total.
func (s *RunSummary) TopPauses(n int) []Pause {
	out := make([]Pause, len(s.Pauses))
	copy(out, s.Pauses)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Seq < out[j].Seq
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// WriteSummary renders a human-readable digest of every run in the file:
// collection counts, per-phase cycle breakdown, marker hit rate, the
// pause histogram with top pauses, the per-site tenure table, and the
// phase/meter reconciliation verdict.
func (f *File) WriteSummary(w io.Writer, topPauses int) error {
	bw := bufio.NewWriter(w)
	hz := float64(f.ClockHz)
	if hz == 0 {
		hz = costmodel.ClockHz
	}
	ms := func(c costmodel.Cycles) float64 { return float64(c) / hz * 1e3 }
	for i, d := range f.Runs {
		s := d.Summarize()
		label := s.Label
		if label == "" {
			label = fmt.Sprintf("run %d", i)
		}
		fmt.Fprintf(bw, "== %s ==\n", label)
		fmt.Fprintf(bw, "collections: %d (%d major)\n", s.GCs, s.Majors)
		fmt.Fprintf(bw, "cycles: client=%d gc-stack=%d gc-copy=%d total=%d (%.3f ms simulated)\n",
			s.Final.Client, s.Final.GCStack, s.Final.GCCopy, s.Final.Total(), ms(s.Final.Total()))
		if s.ReconcileErr != nil {
			fmt.Fprintf(bw, "RECONCILE FAILED: %v\n", s.ReconcileErr)
		} else {
			fmt.Fprintf(bw, "reconcile: ok (phase cycles tile gc spans and meter GC total %d)\n", s.Final.GC())
		}

		if len(s.Phases) > 0 {
			fmt.Fprintf(bw, "\nphase breakdown (cycles):\n")
			fmt.Fprintf(bw, "  %-12s %8s %14s %14s %14s %9s\n", "phase", "spans", "gc-stack", "gc-copy", "total", "% of GC")
			gcTotal := s.Final.GC()
			for _, p := range s.Phases {
				pct := 0.0
				if gcTotal > 0 {
					pct = float64(p.Stack+p.Copy) / float64(gcTotal) * 100
				}
				fmt.Fprintf(bw, "  %-12s %8d %14d %14d %14d %8.2f%%\n",
					p.Phase, p.Count, p.Stack, p.Copy, p.Total(), pct)
			}
		}

		if rate, ok := s.MarkerHitRate(); ok {
			fmt.Fprintf(bw, "\nstack markers: hit rate %.2f%% (%d frames reused, %d decoded, %d markers placed)\n",
				rate*100, s.FramesReused, s.FramesDecoded, s.MarkersPlaced)
		}

		writePauses(bw, s, d, topPauses, ms)
		writeSites(bw, d)
		if i < len(f.Runs)-1 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// WriteMetrics renders every run's metrics registry as a compact table:
// one row per metric, counters and gauges by value, histograms by
// count/sum/max/mean. Output is deterministic (registry snapshots are
// name-sorted; no wall-clock quantities appear).
func (f *File) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, d := range f.Runs {
		label := d.Label
		if label == "" {
			label = fmt.Sprintf("run %d", i)
		}
		fmt.Fprintf(bw, "== metrics: %s ==\n", label)
		for j := range d.Metrics {
			m := &d.Metrics[j]
			switch m.Kind {
			case KindHistogram:
				fmt.Fprintf(bw, "  %-22s %-8s count=%d sum=%d max=%d mean=%.1f\n",
					m.Name, m.Kind, m.Count, m.Sum, m.Max, m.Mean())
			default:
				fmt.Fprintf(bw, "  %-22s %-8s %d\n", m.Name, m.Kind, m.Value)
			}
		}
		if i < len(f.Runs)-1 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

func writePauses(bw *bufio.Writer, s *RunSummary, d *RunData, topPauses int, ms func(costmodel.Cycles) float64) {
	var hist *Metric
	for j := range d.Metrics {
		if d.Metrics[j].Name == MetricPauseCycles && d.Metrics[j].Kind == KindHistogram {
			hist = &d.Metrics[j]
		}
	}
	if len(s.Pauses) > 0 {
		// Exact nearest-rank percentiles from the per-collection Pause
		// records — not the log2-bucket upper bounds the histogram gives.
		pc := s.PauseCycles()
		p50, _ := Percentile(pc, 500000)
		p90, _ := Percentile(pc, 900000)
		p99, _ := Percentile(pc, 990000)
		p999, _ := Percentile(pc, 999000)
		fmt.Fprintf(bw, "\npause percentiles (cycles, exact): p50=%d p90=%d p99=%d p99.9=%d max=%d\n",
			p50, p90, p99, p999, pc[len(pc)-1])
	}
	if hist != nil && hist.Count > 0 {
		fmt.Fprintf(bw, "pause histogram (cycles, log2 buckets): n=%d mean=%.0f max=%d p90<=%d\n",
			hist.Count, hist.Mean(), hist.Max, hist.Quantile(0.9))
		for b, n := range hist.Buckets {
			if n == 0 {
				continue
			}
			lo := uint64(0)
			if b > 0 {
				lo = 1 << (b - 1)
			}
			fmt.Fprintf(bw, "  [%12d, %12d): %d\n", lo, uint64(1)<<b, n)
		}
	}
	if topPauses > 0 && len(s.Pauses) > 0 {
		fmt.Fprintf(bw, "\ntop pauses:\n")
		for _, p := range s.TopPauses(topPauses) {
			kind := "minor"
			if p.Major {
				kind = "major"
			}
			fmt.Fprintf(bw, "  gc #%-4d %-5s %12d cycles (%.4f ms)\n", p.Seq, kind, p.Cycles, ms(p.Cycles))
		}
	}
}

func writeSites(bw *bufio.Writer, d *RunData) {
	if len(d.Sites) == 0 {
		return
	}
	fmt.Fprintf(bw, "\nper-site telemetry (words):\n")
	fmt.Fprintf(bw, "  %-4s %-22s %10s %10s %10s %10s %10s\n",
		"site", "name", "alloc", "pretenured", "copied", "tenured", "died")
	for _, sc := range d.Sites {
		name := sc.Name
		if len(name) > 22 {
			name = name[:19] + "..."
		}
		fmt.Fprintf(bw, "  %-4d %-22s %10d %10d %10d %10d %10d\n",
			sc.Site, name, sc.AllocWords, sc.PretenuredWords, sc.CopiedWords, sc.TenuredWords, sc.DiedWords)
	}
}
