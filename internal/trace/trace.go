// Package trace is the deterministic GC telemetry layer: collectors and
// the simulated runtime emit phase spans, per-collection counters, and
// per-allocation-site statistics into a Recorder, all timestamped in
// simulated cycles from the cost model (internal/costmodel) — never the
// host clock. Because every emitted quantity is a pure function of the
// workload and the collector configuration, trace output is byte-identical
// across runs, machines, and harness parallelism levels.
//
// The layer answers the question the end-of-run aggregates cannot: where
// did the cycles go in collection #N? Each collection is a span subdivided
// into phases (setup, root enumeration, remembered-set drain, pretenured
// region scan, Cheney copy, LOS sweep), each phase carrying a full meter
// snapshot at entry and exit so per-phase client/gc-stack/gc-copy deltas
// reconcile exactly with the run's final costmodel.Meter totals.
//
// Two sink formats are provided: a schema-versioned JSONL stream (one
// event per line, see jsonl.go) and Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing (chrome.go). Both are written from the same
// in-memory RunData and are deterministic.
//
// Tracing charges nothing to the meter: a traced run measures exactly the
// same simulated times and statistics as an untraced one.
package trace

import (
	"tilgc/internal/costmodel"
	"tilgc/internal/obj"
)

// SchemaVersion is the JSONL trace-format version. Bump when record
// shapes or event semantics change incompatibly.
const SchemaVersion = 1

// Phase names one sub-interval of a collection pause. Phases tile every
// cycle a collector charges during a collection: all GC-component meter
// charges happen strictly inside some phase span, which is what makes the
// per-phase breakdown reconcile exactly with the meter.
type Phase uint8

const (
	// PhaseSetup covers the fixed collection overhead: entering the
	// collection, depth bookkeeping, and space preparation.
	PhaseSetup Phase = iota
	// PhaseRoots is root enumeration: the (possibly marker-cached) stack
	// scan, including evacuation work triggered eagerly by root
	// forwarding. Marker hit/miss counts accrue here.
	PhaseRoots
	// PhaseRemSet is the remembered-set drain: SSB entries or dirty
	// cards, plus the sticky old-to-aging set.
	PhaseRemSet
	// PhasePretenured is the pretenured-region scan (§6) plus the scan
	// of large objects allocated since the last collection.
	PhasePretenured
	// PhaseCopy is the Cheney drain to a fixpoint.
	PhaseCopy
	// PhaseSweep is the large-object-space mark-sweep (major collections).
	// Under a non-moving old generation it also covers the tenured-space
	// bitmap sweep that rebuilds the free lists.
	PhaseSweep
	// PhaseMark is the transitive-mark drain of a non-moving old
	// generation's major collection: young survivors are evacuated and
	// tenured objects get their bitmap bits set, to a fixpoint.
	PhaseMark
	// PhaseCompact is the mark-compact slide: pointer fixup plus the
	// order-preserving slide of live tenured objects toward the space base.
	PhaseCompact
	numPhases
)

// phaseNames maps phases to their wire names (stable; part of the schema).
var phaseNames = [numPhases]string{
	PhaseSetup:      "setup",
	PhaseRoots:      "roots",
	PhaseRemSet:     "remset",
	PhasePretenured: "pretenured",
	PhaseCopy:       "copy",
	PhaseSweep:      "sweep",
	PhaseMark:       "mark",
	PhaseCompact:    "compact",
}

// String returns the phase's wire name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// ParsePhase resolves a wire name back to its Phase.
func ParsePhase(s string) (Phase, bool) {
	for p, n := range phaseNames {
		if n == s {
			return Phase(p), true
		}
	}
	return 0, false
}

// Phases returns all phases in declaration order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// EventKind distinguishes the span events a Recorder collects.
type EventKind uint8

const (
	// EvGCBegin opens a collection span.
	EvGCBegin EventKind = iota
	// EvGCEnd closes a collection span; it carries the per-collection
	// counter deltas.
	EvGCEnd
	// EvPhaseBegin opens a phase span inside the current collection.
	EvPhaseBegin
	// EvPhaseEnd closes a phase span.
	EvPhaseEnd
)

// Event is one span boundary. At every boundary the full meter snapshot is
// recorded, so any interval's client/gc-stack/gc-copy deltas can be read
// directly off the two bounding events. The timestamp is Break.Total().
type Event struct {
	Kind  EventKind
	Seq   uint64 // collection number, 1-based
	Major bool   // EvGCBegin: collection was requested as a major
	Phase Phase  // phase events only
	Break costmodel.Breakdown
	// Counters is set on EvGCEnd only: the collection's stat deltas.
	Counters *GCCounters
	// Workers is set on EvPhaseEnd for parallel collection phases only
	// (W > 1): the simulated cycles each collector worker spent in the
	// phase, indexed by worker rank. The phase's wall-clock GC delta
	// equals exactly max(Workers); the hidden sum-max difference is
	// accounted in RunData.Overlap. Single-worker runs never set it, so
	// their streams are byte-identical to pre-parallel builds.
	Workers []uint64
}

// At returns the event's timestamp in simulated cycles.
func (e Event) At() costmodel.Cycles { return e.Break.Total() }

// GCCounters are the per-collection deltas of the collector statistics —
// the paper's Table 2/5 quantities, observable per collection instead of
// only end-of-run. FramesReused are marker hits (frames whose cached scan
// was reused or skipped); FramesDecoded are misses (full trace-table
// decodes). Majors is 1 when the collection was or escalated to a major.
type GCCounters struct {
	Majors        uint64 `json:"majors"`
	FramesDecoded uint64 `json:"frames_decoded"`
	FramesReused  uint64 `json:"frames_reused"`
	MarkersPlaced uint64 `json:"markers_placed"`
	RootsFound    uint64 `json:"roots_found"`
	BytesCopied   uint64 `json:"bytes_copied"`
	BytesScanned  uint64 `json:"bytes_scanned"`
	ObjectsCopied uint64 `json:"objects_copied"`
	SSBProcessed  uint64 `json:"ssb_processed"`
	LOSSwept      uint64 `json:"los_swept"`
	Pretenured    uint64 `json:"pretenured"`

	// Non-moving old-generation counters (bitmap mark-sweep/mark-compact
	// only). omitempty keeps copying-collector streams — including the
	// golden traces — byte-identical to pre-oldgen builds.
	ObjectsMarked uint64 `json:"objects_marked,omitempty"`
	WordsMarked   uint64 `json:"words_marked,omitempty"`
	WordsSwept    uint64 `json:"words_swept,omitempty"`
	WordsSlid     uint64 `json:"words_slid,omitempty"`
}

// Standard metric names the Recorder maintains. The pause histogram is
// log2-bucketed: bucket i counts pauses p with 2^(i-1) <= p < 2^i.
// The adapt.* counters are created lazily, on the first adaptive-advisor
// event: non-adaptive runs never materialize them, keeping their metric
// streams (and the golden traces) byte-identical to pre-§9 builds.
const (
	MetricGCCount         = "gc.count"
	MetricGCMajors        = "gc.majors"
	MetricPauseCycles     = "gc.pause_cycles"
	MetricStubReturns     = "rt.stub_returns"
	MetricAdaptPromotions = "adapt.promotions"
	MetricAdaptDemotions  = "adapt.demotions"
	MetricAdaptSamples    = "adapt.samples"
)

// Adapt-decision verbs (stable; part of the schema).
const (
	AdaptPromote = "promote" // site crossed the survival cutoff: pretenure it
	AdaptDemote  = "demote"  // site's tenured garbage crossed the threshold: stop
	AdaptWarm    = "warm"    // site pretenured at startup from a prior run's store
)

// AdaptDecision is one online pretenuring decision (§9): the advisor
// promoted, demoted, or warm-started a site. Seq is the collection number
// the decision fired at (0 for warm-start decisions made before the first
// collection); Break is the full meter snapshot at decision time, making
// the timestamp Break.Total() like every other trace record.
type AdaptDecision struct {
	Seq         uint64
	Site        obj.SiteID
	Verb        string
	SurvivalPPM uint64 // site survival estimate, parts per million
	GarbagePPM  uint64 // tenured-garbage fraction since promotion, ppm
	SampleWords uint64 // decayed sample mass behind the estimate
	Break       costmodel.Breakdown
}

// SpaceOcc is one heap space's occupancy at a sample point: live words
// still in use after the collection, and committed words the space holds
// from the simulated OS. Names are stable per collector ("nursery",
// "aging", "tenured", "los", "semispace").
type SpaceOcc struct {
	Name      string
	Live      uint64
	Committed uint64
}

// HeapSample is one end-of-collection footprint snapshot: per-space live
// and committed words, stamped like every other record with the full
// meter breakdown (timestamp Break.Total()) and the collection number it
// closes. Samples are emitted only when heap sampling is enabled on the
// Recorder, so default traces — including the golden fixture — carry none.
type HeapSample struct {
	Seq    uint64
	Break  costmodel.Breakdown
	Spaces []SpaceOcc
}

// RequestSpan is one served request on the simulated-cycle timeline: the
// meter breakdowns at arrival and completion. Latency is
// End.Total()-Begin.Total(); the GC share of that latency — the pause
// cycles that landed inside the request — reads directly off the same two
// snapshots as End.GC()-Begin.GC(). Spans are emitted only by workloads
// that wrap their requests (workload.Mutator.Request), so batch traces
// carry none.
type RequestSpan struct {
	ID    uint64
	Begin costmodel.Breakdown
	End   costmodel.Breakdown
}

// Latency returns the request's simulated-cycle duration.
func (s RequestSpan) Latency() costmodel.Cycles { return s.End.Total() - s.Begin.Total() }

// GCCycles returns the collector cycles that landed inside the request.
func (s RequestSpan) GCCycles() costmodel.Cycles { return s.End.GC() - s.Begin.GC() }
