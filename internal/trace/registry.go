package trace

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
)

// MetricKind classifies a registry metric.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter MetricKind = iota
	// KindGauge is a last-value-wins level.
	KindGauge
	// KindHistogram is a log2-bucketed distribution of uint64 samples.
	KindHistogram
)

// String returns the kind's wire name.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "hist"
	}
	return "unknown"
}

// Metric is one registry entry. Counters and gauges use Value; histograms
// use Count/Sum/Max/Buckets, where Buckets[i] counts observations v with
// bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 holds v == 0).
type Metric struct {
	Name    string
	Kind    MetricKind
	Value   uint64
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets []uint64
}

// Add increments a counter by n.
func (m *Metric) Add(n uint64) { m.Value += n }

// Set replaces a gauge's value.
func (m *Metric) Set(v uint64) { m.Value = v }

// Observe records one histogram sample.
func (m *Metric) Observe(v uint64) {
	b := bits.Len64(v)
	for len(m.Buckets) <= b {
		m.Buckets = append(m.Buckets, 0)
	}
	m.Buckets[b]++
	m.Count++
	m.Sum += v
	if v > m.Max {
		m.Max = v
	}
}

// Mean returns the histogram's mean sample value.
func (m *Metric) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return float64(m.Sum) / float64(m.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of a
// histogram: the exclusive upper edge of the bucket holding the q-th
// sample. Log-bucketed, so the bound is within 2x of the true value.
func (m *Metric) Quantile(q float64) uint64 {
	if m.Count == 0 {
		return 0
	}
	target := uint64(q * float64(m.Count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b, n := range m.Buckets {
		seen += n
		if seen >= target {
			if b == 0 {
				return 0
			}
			return 1 << b // exclusive upper edge of bucket b
		}
	}
	return m.Max
}

// clone returns a deep copy of the metric.
func (m *Metric) clone() Metric {
	cp := *m
	cp.Buckets = slices.Clone(m.Buckets)
	return cp
}

// Registry is a small deterministic metrics registry: named counters,
// gauges, and log-bucketed histograms, snapshotable at any collection
// boundary. Lookup order never leaks into output — snapshots are sorted
// by name.
type Registry struct {
	byName map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Metric)}
}

func (r *Registry) metric(name string, kind MetricKind) *Metric {
	m, ok := r.byName[name]
	if !ok {
		m = &Metric{Name: name, Kind: kind}
		r.byName[name] = m
		return m
	}
	if m.Kind != kind {
		panic(fmt.Sprintf("trace: metric %q registered as %v, requested as %v", name, m.Kind, kind))
	}
	return m
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Metric { return r.metric(name, KindCounter) }

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Metric { return r.metric(name, KindGauge) }

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Metric { return r.metric(name, KindHistogram) }

// Lookup returns the named metric if it exists.
func (r *Registry) Lookup(name string) (*Metric, bool) {
	m, ok := r.byName[name]
	return m, ok
}

// Snapshot returns deep copies of all metrics, sorted by name.
func (r *Registry) Snapshot() []Metric {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Metric, len(names))
	for i, n := range names {
		out[i] = r.byName[n].clone()
	}
	return out
}
