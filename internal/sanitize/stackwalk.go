package sanitize

import (
	"tilgc/internal/rt"
)

// stackRoots independently re-derives the stack root set: a two-pass walk
// over the live frames resolving POINTER, CALLEE-SAVE, and COMPUTE traces
// against the trace table, exactly as the collector's scanner does (§2.3)
// — but from the stack's frame bookkeeping rather than the stored
// return-key chain, and without touching the scanner's cache or charging
// costs. The fromspace pass treats the returned values as the ground-truth
// roots; the markers pass separately checks that the stored return-key
// chain agrees with the bookkeeping, so a corrupted chain surfaces there
// instead of cascading into bogus reachability reports here.
func stackRoots(st *rt.Stack) []uint64 {
	depth := st.FrameCount()
	if depth == 0 {
		return nil
	}
	table := st.Table()
	var roots []uint64
	var regStatus uint32
	for i := 0; i < depth; i++ {
		fi := table.Lookup(st.FrameKey(i))
		if fi == nil {
			// No layout for this frame (markers pass reports the broken
			// chain); without a layout neither its slots nor the register
			// status downstream can be derived soundly — stop here.
			return roots
		}
		base := st.FrameBase(i)
		isTop := i == depth-1
		for j := 1; j < fi.Size; j++ {
			if resolveTrace(st, fi.Slots[j], base, regStatus, isTop) {
				roots = append(roots, st.RawSlot(base+j))
			}
		}
		var newStatus uint32
		for r := 0; r < rt.NumRegs; r++ {
			live := false
			switch fi.Regs[r].Kind {
			case rt.TraceCalleeSave:
				live = regStatus>>r&1 == 1
			default:
				live = resolveTrace(st, fi.Regs[r], base, regStatus, isTop)
			}
			if live {
				newStatus |= 1 << r
			}
		}
		regStatus = newStatus
	}
	// The top frame's register contents are live; its trace info decided
	// which registers hold pointers (now encoded in regStatus).
	for r := 0; r < rt.NumRegs; r++ {
		if regStatus>>r&1 == 1 {
			roots = append(roots, st.Reg(r))
		}
	}
	return roots
}

// resolveTrace decides pointer-ness of one slot or register trace.
func resolveTrace(st *rt.Stack, tr rt.SlotTrace, base int, regStatus uint32, isTop bool) bool {
	switch tr.Kind {
	case rt.TracePointer:
		return true
	case rt.TraceNonPointer:
		return false
	case rt.TraceCalleeSave:
		return regStatus>>tr.Arg&1 == 1
	case rt.TraceCompute:
		if tr.ArgIsReg {
			if !isTop {
				// Register contents of suspended frames are not live; the
				// scanner panics on this layout, so just stay conservative.
				return false
			}
			return st.Reg(int(tr.Arg)) == rt.TypePointer
		}
		return st.RawSlot(base+int(tr.Arg)) == rt.TypePointer
	}
	return false
}
