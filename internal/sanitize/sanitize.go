// Package sanitize is the heap-integrity sanitizer: a set of invariant
// passes that independently re-derive what the collectors claim about the
// heap and report any disagreement. The passes mirror the correctness
// arguments the paper's design rests on — no from-space survivors after
// evacuation, remembered-set completeness for old-to-young edges (§2.1,
// §4), stack-marker/frame consistency (§5), and pretenured-region
// soundness (§6, §7.2) — plus structural header checks and cost-meter
// reconciliation.
//
// Use Check for an on-demand scan of any inspectable collector, or Wrap to
// decorate a collector so the passes run automatically after every
// collection (see gcbench -sanitize and harness.RunConfig.Sanitize).
// The sanitizer only reads collector state; a wrapped run produces
// bit-for-bit the same tables as an unwrapped one.
package sanitize

import (
	"fmt"
	"strings"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// Violation reports one invariant breach with enough context to locate it.
type Violation struct {
	// Pass names the invariant pass that fired (see PassNames).
	Pass string
	// Addr is the offending object or field address (Nil when the
	// violation is not tied to a heap location).
	Addr mem.Addr
	// Site is the allocation site of the object involved, when known.
	Site obj.SiteID
	// Gen locates the violation: "young", "old", "los", "stack", or ""
	// for collector-global invariants.
	Gen string
	// Msg describes the breach.
	Msg string
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", v.Pass)
	if v.Gen != "" {
		fmt.Fprintf(&b, " %s", v.Gen)
	}
	if !v.Addr.IsNil() {
		fmt.Fprintf(&b, " %v", v.Addr)
	}
	if v.Site != 0 {
		fmt.Fprintf(&b, " site=%d", v.Site)
	}
	fmt.Fprintf(&b, ": %s", v.Msg)
	return b.String()
}

// passes lists every invariant pass in execution order.
var passes = []struct {
	name string
	run  func(*checker)
}{
	{"headers", (*checker).checkHeaders},
	{"fromspace", (*checker).checkFromspace},
	{"remembered", (*checker).checkRemembered},
	{"markers", (*checker).checkMarkers},
	{"pretenure", (*checker).checkPretenure},
	{"oldbitmap", (*checker).checkOldBitmap},
	{"freelist", (*checker).checkOldFreeList},
	{"costs", (*checker).checkCosts},
	{"workers", (*checker).checkWorkers},
}

// PassNames returns the names of all invariant passes, in execution order.
func PassNames() []string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.name
	}
	return names
}

// Check runs every invariant pass against the collector's current state
// and returns the violations found (nil when the heap is clean). The
// collector must be between collections. Wrapped collectors are unwrapped
// first.
func Check(c core.Collector) []Violation {
	return CheckPasses(c, nil)
}

// CheckPasses runs the named invariant passes (nil or empty means all).
// Unknown pass names are themselves reported as violations, so a typo in a
// pass list cannot silently disable checking.
func CheckPasses(c core.Collector, names []string) []Violation {
	if w, ok := c.(*Wrapper); ok {
		c = w.Unwrap()
	}
	insp, ok := c.(core.Inspectable)
	if !ok {
		return []Violation{{Pass: "inspect",
			Msg: fmt.Sprintf("collector %T does not support inspection", c)}}
	}
	ck := newChecker(insp.Inspect())
	if len(names) == 0 {
		for _, p := range passes {
			p.run(ck)
		}
		return ck.violations
	}
	for _, name := range names {
		found := false
		for _, p := range passes {
			if p.name == name {
				p.run(ck)
				found = true
				break
			}
		}
		if !found {
			ck.violations = append(ck.violations, Violation{
				Pass: "inspect", Msg: fmt.Sprintf("unknown pass %q", name)})
		}
	}
	return ck.violations
}

// checker carries one check's state: the collector snapshot, the space
// classification as lookup sets, and the violations accumulated so far.
type checker struct {
	in         core.Inspection
	young      map[mem.SpaceID]bool
	old        map[mem.SpaceID]bool
	los        map[mem.SpaceID]bool
	violations []Violation
}

func newChecker(in core.Inspection) *checker {
	ck := &checker{
		in:    in,
		young: make(map[mem.SpaceID]bool, len(in.YoungSpaces)),
		old:   make(map[mem.SpaceID]bool, len(in.OldSpaces)),
		los:   make(map[mem.SpaceID]bool, len(in.LOSSpaces)),
	}
	for _, id := range in.YoungSpaces {
		ck.young[id] = true
	}
	for _, id := range in.OldSpaces {
		ck.old[id] = true
	}
	for _, id := range in.LOSSpaces {
		ck.los[id] = true
	}
	return ck
}

func (ck *checker) report(v Violation) {
	ck.violations = append(ck.violations, v)
}

// genOf classifies a space id for violation context.
func (ck *checker) genOf(id mem.SpaceID) string {
	switch {
	case ck.young[id]:
		return "young"
	case ck.old[id]:
		return "old"
	case ck.los[id]:
		return "los"
	}
	return ""
}

// isLive reports whether a space may legally hold live objects.
func (ck *checker) isLive(id mem.SpaceID) bool {
	return ck.young[id] || ck.old[id] || ck.los[id]
}

// eachRootStack visits every stack whose frames are live roots: the live
// threads' stacks in thread-id order when a thread set is attached, or
// just the primary stack. Dead (joined) threads' stacks are excluded —
// their frames no longer keep anything alive.
func (ck *checker) eachRootStack(fn func(threadID int, st *rt.Stack)) {
	if ck.in.Threads == nil {
		fn(0, ck.in.Stack)
		return
	}
	for _, t := range ck.in.Threads.Threads() {
		if t.Dead() {
			continue
		}
		fn(t.ID(), t.Stack())
	}
}

// walkRange decodes the objects tiling words [start, end) of space id,
// stopping early (without reporting) at a forwarded or malformed header —
// the headers pass owns reporting those, so other passes just see the
// well-formed prefix.
func (ck *checker) walkRange(id mem.SpaceID, start, end uint64) []obj.Object {
	sp := ck.in.Heap.Space(id)
	if sp == nil {
		return nil
	}
	var out []obj.Object
	off := start
	for off < end {
		a := mem.MakeAddr(id, off)
		if obj.HeaderKind(ck.in.Heap.Load(a)) == obj.Forwarded {
			return out
		}
		o := obj.Decode(ck.in.Heap, a)
		if o.Kind == obj.Record && o.Len > obj.MaxRecordFields {
			return out
		}
		size := o.SizeWords()
		if off+size > end {
			return out
		}
		out = append(out, o)
		off += size
	}
	return out
}

// walkSpace decodes every object in a linearly-allocated space.
func (ck *checker) walkSpace(id mem.SpaceID) []obj.Object {
	sp := ck.in.Heap.Space(id)
	if sp == nil {
		return nil
	}
	return ck.walkRange(id, 1, sp.Used()+1)
}
