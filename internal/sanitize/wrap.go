package sanitize

import (
	"fmt"
	"strings"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// Options configures a sanitizer wrapper.
type Options struct {
	// Passes selects which invariant passes run (nil means all).
	Passes []string
	// EveryN runs the passes after every Nth collection (default 1:
	// after every collection). Checks also run on explicit Check calls
	// regardless of EveryN.
	EveryN int
	// OnViolation receives the violations of one failed check. When nil,
	// a failed check panics with the rendered violations — the loudest
	// possible signal that a collector invariant broke mid-run.
	OnViolation func([]Violation)
}

// Wrapper decorates a Collector with automatic integrity checking: after
// any operation that completed one or more collections (Alloc may trigger
// them internally), the configured passes re-verify the heap. The wrapper
// delegates Name, Stats, and all cost-charged operations unchanged, so a
// sanitized run produces byte-identical tables to an unwrapped one.
type Wrapper struct {
	inner  core.Collector
	opts   Options
	lastGC uint64 // inner NumGC at the last check boundary
	due    uint64 // collections observed since the last automatic check
	checks uint64 // total checks performed
}

// Wrap decorates c with the sanitizer. The collector must be inspectable
// (all collectors in internal/core are); if it is not, every check reports
// a single "inspect" violation rather than silently passing.
func Wrap(c core.Collector, opts Options) *Wrapper {
	if opts.EveryN <= 0 {
		opts.EveryN = 1
	}
	return &Wrapper{inner: c, opts: opts, lastGC: c.Stats().NumGC}
}

// Unwrap returns the decorated collector.
func (w *Wrapper) Unwrap() core.Collector { return w.inner }

// Checks returns the number of integrity checks performed so far.
func (w *Wrapper) Checks() uint64 { return w.checks }

// Check runs the configured passes immediately and returns the violations
// (nil when clean) without invoking OnViolation or panicking — the
// on-demand entry point for tests and tools.
func (w *Wrapper) Check() []Violation {
	w.checks++
	return CheckPasses(w.inner, w.opts.Passes)
}

// afterOp runs the automatic check when enough collections have completed.
func (w *Wrapper) afterOp() {
	n := w.inner.Stats().NumGC
	if n == w.lastGC {
		return
	}
	w.due += n - w.lastGC
	w.lastGC = n
	if w.due < uint64(w.opts.EveryN) {
		return
	}
	w.due = 0
	w.checks++
	vs := CheckPasses(w.inner, w.opts.Passes)
	if len(vs) == 0 {
		return
	}
	if w.opts.OnViolation != nil {
		w.opts.OnViolation(vs)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sanitize: %d violation(s) in %s after GC %d:", len(vs), w.inner.Name(), n)
	for _, v := range vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	panic(b.String())
}

// Alloc implements core.Collector.
func (w *Wrapper) Alloc(k obj.Kind, length uint64, site obj.SiteID, mask uint64) mem.Addr {
	a := w.inner.Alloc(k, length, site, mask)
	w.afterOp()
	return a
}

// LoadField implements core.Collector.
func (w *Wrapper) LoadField(a mem.Addr, i uint64) uint64 {
	return w.inner.LoadField(a, i)
}

// StoreField implements core.Collector.
func (w *Wrapper) StoreField(a mem.Addr, i uint64, v uint64, isPtr bool) {
	w.inner.StoreField(a, i, v, isPtr)
}

// InitField implements core.Collector.
func (w *Wrapper) InitField(a mem.Addr, i uint64, v uint64) {
	w.inner.InitField(a, i, v)
}

// Collect implements core.Collector.
func (w *Wrapper) Collect(major bool) {
	w.inner.Collect(major)
	w.afterOp()
}

// Stats implements core.Collector.
func (w *Wrapper) Stats() *core.GCStats { return w.inner.Stats() }

// Heap implements core.Collector.
func (w *Wrapper) Heap() *mem.Heap { return w.inner.Heap() }

// Name implements core.Collector: the inner name, unchanged, so rendered
// tables are identical with and without the sanitizer.
func (w *Wrapper) Name() string { return w.inner.Name() }

// Inspect delegates to the decorated collector so Check and nested
// tooling see through the wrapper.
func (w *Wrapper) Inspect() core.Inspection {
	return w.inner.(core.Inspectable).Inspect()
}
