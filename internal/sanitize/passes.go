package sanitize

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// checkHeaders validates structural well-formedness: every live space
// holds a gap-free tiling of decodable objects, no forwarding headers
// survive outside a collection, record lengths and pointer masks are in
// range, and each large-object space holds exactly one object.
func (ck *checker) checkHeaders() {
	for _, id := range ck.in.YoungSpaces {
		ck.validateSpace(id, "young")
	}
	for _, id := range ck.in.OldSpaces {
		ck.validateSpace(id, "old")
	}
	for _, id := range ck.in.LOSSpaces {
		if n := ck.validateSpace(id, "los"); n != 1 {
			ck.report(Violation{Pass: "headers", Gen: "los",
				Addr: mem.MakeAddr(id, 1),
				Msg:  fmt.Sprintf("large-object space %d holds %d objects, want exactly 1", id, n)})
		}
	}
}

// validateSpace walks one space reporting malformed headers; it returns
// the number of objects found before stopping.
func (ck *checker) validateSpace(id mem.SpaceID, gen string) int {
	sp := ck.in.Heap.Space(id)
	if sp == nil {
		ck.report(Violation{Pass: "headers", Gen: gen,
			Msg: fmt.Sprintf("space %d is classified live but has been freed", id)})
		return 0
	}
	count := 0
	off := uint64(1)
	for off <= sp.Used() {
		a := mem.MakeAddr(id, off)
		hd := ck.in.Heap.Load(a)
		if obj.HeaderKind(hd) == obj.Forwarded {
			ck.report(Violation{Pass: "headers", Gen: gen, Addr: a,
				Msg: "forwarding header present outside a collection"})
			return count
		}
		o := obj.Decode(ck.in.Heap, a)
		if o.Kind == obj.Record {
			if o.Len > obj.MaxRecordFields {
				ck.report(Violation{Pass: "headers", Gen: gen, Addr: a, Site: o.Site,
					Msg: fmt.Sprintf("record length %d exceeds max %d", o.Len, obj.MaxRecordFields)})
				return count
			}
			if o.Len < 64 && o.Mask>>o.Len != 0 {
				ck.report(Violation{Pass: "headers", Gen: gen, Addr: a, Site: o.Site,
					Msg: fmt.Sprintf("pointer mask %#x has bits at/beyond length %d", o.Mask, o.Len)})
			}
		}
		size := o.SizeWords()
		if off+size > sp.Used()+1 {
			ck.report(Violation{Pass: "headers", Gen: gen, Addr: a, Site: o.Site,
				Msg: fmt.Sprintf("object of %d words overruns allocation frontier (offset %d, used %d)",
					size, off, sp.Used())})
			return count
		}
		count++
		off += size
	}
	return count
}

// checkFromspace verifies that everything reachable from the independently
// re-derived stack roots lies in live, allocated space with no stale
// forwarding headers — i.e. no from-space pointer survived an evacuation.
func (ck *checker) checkFromspace() {
	heap := ck.in.Heap
	seen := make(map[mem.Addr]bool)
	var queue []mem.Addr

	checkPtr := func(v uint64, gen string, from mem.Addr) {
		a := mem.Addr(v)
		if a.IsNil() {
			return
		}
		id := a.Space()
		// Lazy: this pass visits every reachable pointer on every check,
		// so the location string must only be built on a violation.
		where := func() string {
			if from.IsNil() {
				return "stack root"
			}
			return fmt.Sprintf("field %v", from)
		}
		if int(id) <= 0 || int(id) >= heap.NumSpaces() {
			ck.report(Violation{Pass: "fromspace", Gen: gen, Addr: a,
				Msg: fmt.Sprintf("%s points to unknown space %d", where(), id)})
			return
		}
		if !ck.isLive(id) {
			ck.report(Violation{Pass: "fromspace", Gen: gen, Addr: a,
				Msg: fmt.Sprintf("%s points into non-live (from-)space %d", where(), id)})
			return
		}
		sp := heap.Space(id)
		if sp == nil {
			ck.report(Violation{Pass: "fromspace", Gen: gen, Addr: a,
				Msg: fmt.Sprintf("%s points into freed space %d", where(), id)})
			return
		}
		if !sp.Contains(a) {
			ck.report(Violation{Pass: "fromspace", Gen: gen, Addr: a,
				Msg: fmt.Sprintf("%s points past space %d's allocation frontier", where(), id)})
			return
		}
		if obj.IsForwarded(heap, a) {
			ck.report(Violation{Pass: "fromspace", Gen: gen, Addr: a,
				Msg: fmt.Sprintf("%s reaches a stale forwarded object", where())})
			return
		}
		if !seen[a] {
			seen[a] = true
			queue = append(queue, a)
		}
	}

	ck.eachRootStack(func(_ int, st *rt.Stack) {
		for _, v := range stackRoots(st) {
			checkPtr(v, "stack", mem.Nil)
		}
	})
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		o := obj.Decode(heap, a)
		if o.Kind == obj.RawArray || (o.Kind == obj.Record && o.Len > obj.MaxRecordFields) {
			continue // malformed records are the headers pass's report
		}
		gen := ck.genOf(a.Space())
		for i := uint64(0); i < o.Len; i++ {
			if !o.IsPtrField(i) {
				continue
			}
			checkPtr(heap.Load(o.PayloadAddr(i)), gen, o.PayloadAddr(i))
		}
	}
}

// checkRemembered verifies remembered-set completeness for generational
// collectors: every old-to-young pointer field found by a full independent
// walk of the old generation and the LOS must be covered by the write
// barrier (SSB entry or dirty card), the sticky old-to-aging set, a fresh
// large object (scanned unconditionally at the next minor), or a
// pretenured region (ditto). An uncovered edge is an object the next minor
// collection would wrongly reclaim or fail to forward.
func (ck *checker) checkRemembered() {
	if !ck.in.Generational {
		return
	}
	heap := ck.in.Heap

	// The barrier state is the union over every thread — dead threads
	// included: their pre-join stores are still pending remembered-set
	// entries. Single-thread runs have just the collector's own SSB.
	ssbSet := make(map[mem.Addr]bool)
	if ck.in.Threads != nil && ck.in.Cards == nil {
		for _, t := range ck.in.Threads.Threads() {
			for _, fa := range t.SSB().Entries() {
				ssbSet[fa] = true
			}
		}
	} else if ck.in.SSB != nil {
		for _, fa := range ck.in.SSB.Entries() {
			ssbSet[fa] = true
		}
	}
	stickySet := make(map[mem.Addr]bool, len(ck.in.Sticky))
	for _, fa := range ck.in.Sticky {
		stickySet[fa] = true
	}
	type span struct {
		space      mem.SpaceID
		start, end uint64
	}
	var spans []span
	for _, a := range ck.in.FreshLOS {
		spans = append(spans, span{a.Space(), a.Offset(),
			a.Offset() + obj.Decode(heap, a).SizeWords()})
	}
	for _, r := range ck.in.PretenuredRegions {
		spans = append(spans, span{r.Space, r.Start, r.End})
	}
	covered := func(fa mem.Addr) bool {
		if ck.in.Cards != nil {
			if ck.in.Cards.Covers(fa) {
				return true
			}
			// A store staged in a thread's private card stage is covered:
			// the collector flushes every stage before examining cards.
			if ck.in.Threads != nil {
				for _, t := range ck.in.Threads.Threads() {
					if t.Stage().Covers(fa) {
						return true
					}
				}
			}
		}
		if ssbSet[fa] || stickySet[fa] {
			return true
		}
		for _, s := range spans {
			if fa.Space() == s.space && fa.Offset() >= s.start && fa.Offset() < s.end {
				return true
			}
		}
		return false
	}

	checkObj := func(o obj.Object, gen string) {
		if o.Kind == obj.RawArray {
			return
		}
		for i := uint64(0); i < o.Len; i++ {
			if !o.IsPtrField(i) {
				continue
			}
			fa := o.PayloadAddr(i)
			v := mem.Addr(heap.Load(fa))
			if v.IsNil() || !ck.young[v.Space()] {
				continue
			}
			if !covered(fa) {
				ck.report(Violation{Pass: "remembered", Gen: gen, Addr: fa, Site: o.Site,
					Msg: fmt.Sprintf("old-to-young edge to %v not covered by barrier, sticky set, fresh LOS, or pretenured region", v)})
			}
		}
	}
	for _, id := range ck.in.OldSpaces {
		for _, o := range ck.walkSpace(id) {
			checkObj(o, "old")
		}
	}
	for _, id := range ck.in.LOSSpaces {
		for _, o := range ck.walkSpace(id) {
			checkObj(o, "los")
		}
	}
}

// checkMarkers verifies the stack's frame chain and marker bookkeeping
// (§5): frame bases tile the slot array, every stored return key names the
// caller's layout, every marker stub has a marker-table entry holding the
// displaced key, and no stub exists when markers are disabled. Marker
// entries without a live stub are legal — raises pop marked frames without
// firing stubs, and ReuseBoundary prunes those entries lazily.
func (ck *checker) checkMarkers() {
	ck.eachRootStack(func(id int, st *rt.Stack) { ck.checkMarkersStack(id, st) })
}

// checkMarkersStack validates one thread's frame chain and markers.
func (ck *checker) checkMarkersStack(threadID int, st *rt.Stack) {
	gen := "stack"
	if threadID > 0 {
		gen = fmt.Sprintf("stack[t%d]", threadID)
	}
	table := st.Table()
	depth := st.FrameCount()
	expectedBase := 0
	for i := 0; i < depth; i++ {
		base := st.FrameBase(i)
		if base != expectedBase {
			ck.report(Violation{Pass: "markers", Gen: gen,
				Msg: fmt.Sprintf("frame %d base %d, want %d (frames do not tile the slot array)", i, base, expectedBase)})
			return
		}
		fi := table.Lookup(st.FrameKey(i))
		if fi == nil {
			ck.report(Violation{Pass: "markers", Gen: gen,
				Msg: fmt.Sprintf("frame %d has no trace-table layout (key %d)", i, st.FrameKey(i))})
			return
		}
		expectedBase = base + fi.Size

		want := rt.RetKey(0)
		if i > 0 {
			want = st.FrameKey(i - 1)
		}
		raw := rt.RetKey(st.RawSlot(base))
		if raw == rt.StubKey {
			if ck.in.MarkerN == 0 {
				ck.report(Violation{Pass: "markers", Gen: gen,
					Msg: fmt.Sprintf("frame %d carries a marker stub but stack markers are disabled", i)})
			}
			m, ok := st.MarkerAt(base)
			switch {
			case !ok:
				ck.report(Violation{Pass: "markers", Gen: gen,
					Msg: fmt.Sprintf("frame %d has a stub return key with no marker-table entry (return would panic)", i)})
			case m.OrigKey != want:
				ck.report(Violation{Pass: "markers", Gen: gen,
					Msg: fmt.Sprintf("frame %d marker displaced key %d, want caller key %d", i, m.OrigKey, want)})
			}
		} else if raw != want {
			ck.report(Violation{Pass: "markers", Gen: gen,
				Msg: fmt.Sprintf("frame %d stored return key %d, want caller key %d", i, raw, want)})
		}
	}
	if depth > 0 && st.SP() != expectedBase {
		ck.report(Violation{Pass: "markers", Gen: gen,
			Msg: fmt.Sprintf("stack pointer %d, want %d (top frame size mismatch)", st.SP(), expectedBase)})
	}
}

// checkPretenure verifies pretenured-region and LOS soundness: regions
// hold only objects from policy-tenured sites (a wrong-site object is the
// silent misclassification NG2C-style systems suffer), scan-elided sites
// really have no young references, and every LOS resident is a
// large-enough non-record.
func (ck *checker) checkPretenure() {
	heap := ck.in.Heap
	for _, r := range ck.in.PretenuredRegions {
		for _, o := range ck.walkRange(r.Space, r.Start, r.End) {
			d, ok := ck.in.Policy.Lookup(o.Site)
			if !ok {
				ck.report(Violation{Pass: "pretenure", Gen: "old", Addr: o.Addr, Site: o.Site,
					Msg: "object in pretenured region from a site the policy did not tenure"})
				continue
			}
			if !ck.in.ScanElision || !d.OnlyOldRefs || o.Kind == obj.RawArray {
				continue
			}
			// §7.2: elided sites assert they never hold young references;
			// a young pointer here would be missed by the minor scan.
			for i := uint64(0); i < o.Len; i++ {
				if !o.IsPtrField(i) {
					continue
				}
				v := mem.Addr(heap.Load(o.PayloadAddr(i)))
				if !v.IsNil() && ck.young[v.Space()] {
					ck.report(Violation{Pass: "pretenure", Gen: "old", Addr: o.PayloadAddr(i), Site: o.Site,
						Msg: fmt.Sprintf("scan-elided (OnlyOldRefs) object holds young reference %v", v)})
				}
			}
		}
	}
	for _, id := range ck.in.LOSSpaces {
		for _, o := range ck.walkSpace(id) {
			if o.Kind == obj.Record {
				ck.report(Violation{Pass: "pretenure", Gen: "los", Addr: o.Addr, Site: o.Site,
					Msg: "record object in the large-object space (only arrays are LOS-allocated)"})
			}
			if ck.in.LargeObjectWords > 0 && o.Len < ck.in.LargeObjectWords {
				ck.report(Violation{Pass: "pretenure", Gen: "los", Addr: o.Addr, Site: o.Site,
					Msg: fmt.Sprintf("LOS object of %d payload words is below the %d-word threshold", o.Len, ck.in.LargeObjectWords)})
			}
		}
	}
}

// checkCosts reconciles the cost meter and GC statistics with each other:
// totals must decompose, and the collector-side meter buckets must be at
// least the cost implied by the per-event constants times the event counts
// the stats record. The bounds are lower bounds — collections charge more
// (scan tests, SSB entries, watermark checks) — so they hold exactly when
// the accounting is wired correctly and fail when a charge or a counter is
// dropped.
func (ck *checker) checkCosts() {
	st := ck.in.Stats
	if st.BytesAllocated != st.RecordBytes+st.ArrayBytes {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("BytesAllocated %d != RecordBytes %d + ArrayBytes %d",
				st.BytesAllocated, st.RecordBytes, st.ArrayBytes)})
	}
	if st.NumMajor > st.NumGC {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("NumMajor %d exceeds NumGC %d", st.NumMajor, st.NumGC)})
	}
	if st.MaxPauseCycles > st.SumPauseCycles {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("MaxPauseCycles %d exceeds SumPauseCycles %d", st.MaxPauseCycles, st.SumPauseCycles)})
	}
	if st.BytesCopied%mem.WordSize != 0 {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("BytesCopied %d is not word-aligned", st.BytesCopied)})
	}
	if st.BytesCopied < mem.WordSize*st.ObjectsCopied {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("BytesCopied %d below minimum %d for %d copied objects",
				st.BytesCopied, mem.WordSize*st.ObjectsCopied, st.ObjectsCopied)})
	}
	if ck.in.Meter == nil {
		return
	}
	// Under parallel collection the meter's GC buckets hold wall cycles:
	// the hidden sum-minus-max worker cycles were credited out into the
	// overlap counter, so the honest total the statistics imply is bucket
	// plus overlap. Serial runs have zero overlap and the bound is exact.
	gcCopy := ck.in.Meter.Get(costmodel.GCCopy) + ck.in.Meter.Overlap()
	minCopy := costmodel.GCOverhead*costmodel.Cycles(st.NumGC) +
		costmodel.CopyObject*costmodel.Cycles(st.ObjectsCopied) +
		costmodel.CopyWord*costmodel.Cycles(st.BytesCopied/mem.WordSize) +
		costmodel.ScanWord*costmodel.Cycles(st.BytesScanned/mem.WordSize)
	if gcCopy < minCopy {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("gc-copy meter %d cycles below the %d implied by copy/scan statistics", gcCopy, minCopy)})
	}
	gcStack := ck.in.Meter.Get(costmodel.GCStack) + ck.in.Meter.Overlap()
	minStack := costmodel.FrameDecode*costmodel.Cycles(st.FramesDecoded) +
		costmodel.MarkerPlace*costmodel.Cycles(st.MarkersPlaced)
	if gcStack < minStack {
		ck.report(Violation{Pass: "costs",
			Msg: fmt.Sprintf("gc-stack meter %d cycles below the %d implied by decode/marker statistics", gcStack, minStack)})
	}
}

// checkWorkers validates the parallel-collection accounting: a serial
// collector (W <= 1) must carry no worker state at all — zero overlap,
// zero quanta, zero steals — and a parallel one must keep its counters
// mutually consistent: steals are a subset of quanta, and overlap (the
// cycles hidden by running workers concurrently) can only exist once
// quanta have been distributed.
func (ck *checker) checkWorkers() {
	st := ck.in.Stats
	overlap := costmodel.Cycles(0)
	if ck.in.Meter != nil {
		overlap = ck.in.Meter.Overlap()
	}
	if ck.in.GCWorkers <= 1 {
		if overlap != 0 {
			ck.report(Violation{Pass: "workers",
				Msg: fmt.Sprintf("serial collector carries %d overlap cycles", overlap)})
		}
		if st.ParallelQuanta != 0 || st.WorkSteals != 0 {
			ck.report(Violation{Pass: "workers",
				Msg: fmt.Sprintf("serial collector counted %d quanta / %d steals", st.ParallelQuanta, st.WorkSteals)})
		}
		return
	}
	if st.WorkSteals > st.ParallelQuanta {
		ck.report(Violation{Pass: "workers",
			Msg: fmt.Sprintf("WorkSteals %d exceeds ParallelQuanta %d", st.WorkSteals, st.ParallelQuanta)})
	}
	if overlap != 0 && st.ParallelQuanta == 0 && st.NumGC > 0 {
		ck.report(Violation{Pass: "workers",
			Msg: fmt.Sprintf("%d overlap cycles with no parallel quanta distributed", overlap)})
	}
}
