package sanitize

import (
	"fmt"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// The non-moving old generation's invariant passes. The copying old
// generation keeps no bitmap or free lists, so both passes are vacuous
// for it (Inspection.OldCollector stays OldCopy); for the mark-sweep and
// mark-compact collectors they independently re-derive the two structures
// the collectors rely on:
//
//   - oldbitmap: the mark/allocation bitmap is bit-exact against the
//     heap — every allocated word's bit set, every free (filler) word's
//     bit clear, nothing set beyond the allocation frontier — and, when
//     no mutator activity has happened since the last non-moving major
//     (OldMarksFresh), every allocated tenured object is reachable from
//     the roots: the bitmap then claims to be the traced live set, so a
//     marked-but-unreachable object is a mark the collector invented.
//
//   - freelist: the free spans are sorted, disjoint, in bounds, each
//     backed by exactly one span-sized filler object, the free-word
//     counter equals their sum, and free plus live words tile the
//     allocation frontier exactly.

// oldBitSet reads bit off-1 of the snapshot bitmap (word offset off).
func (ck *checker) oldBitSet(off uint64) bool {
	i := off - 1
	w := i >> 6
	if w >= uint64(len(ck.in.OldBitmap)) {
		return false
	}
	return ck.in.OldBitmap[w]>>(i&63)&1 == 1
}

// oldFreeStarts indexes the free spans by starting offset.
func (ck *checker) oldFreeStarts() map[uint64]uint64 {
	m := make(map[uint64]uint64, len(ck.in.OldFreeSpans))
	for _, s := range ck.in.OldFreeSpans {
		m[s.Start] = s.Size
	}
	return m
}

// checkOldBitmap verifies the mark/allocation bitmap against the heap.
func (ck *checker) checkOldBitmap() {
	if ck.in.OldCollector == core.OldCopy {
		return
	}
	id := ck.in.OldSpaces[0]
	sp := ck.in.Heap.Space(id)
	if sp == nil {
		return
	}
	used := sp.Used()
	free := ck.oldFreeStarts()

	for _, o := range ck.walkSpace(id) {
		off := o.Addr.Offset()
		size := o.SizeWords()
		if sz, isFree := free[off]; isFree && sz == size {
			for i := off; i < off+size; i++ {
				if ck.oldBitSet(i) {
					ck.report(Violation{Pass: "oldbitmap", Gen: "old", Addr: mem.MakeAddr(id, i),
						Msg: fmt.Sprintf("free span [%d,%d) has its word-%d bit set", off, off+size, i)})
					break
				}
			}
			continue
		}
		for i := off; i < off+size; i++ {
			if !ck.oldBitSet(i) {
				ck.report(Violation{Pass: "oldbitmap", Gen: "old", Addr: o.Addr, Site: o.Site,
					Msg: fmt.Sprintf("allocated object [%d,%d) has its word-%d bit clear", off, off+size, i)})
				break
			}
		}
	}

	for i := used + 1; i <= uint64(len(ck.in.OldBitmap))*64; i++ {
		if ck.oldBitSet(i) {
			ck.report(Violation{Pass: "oldbitmap", Gen: "old", Addr: mem.MakeAddr(id, i),
				Msg: fmt.Sprintf("bit set for word %d beyond the allocation frontier %d", i, used)})
			break
		}
	}

	if ck.in.OldMarksFresh {
		reach := ck.reachableOldOffsets(id)
		for _, o := range ck.walkSpace(id) {
			off := o.Addr.Offset()
			if sz, isFree := free[off]; isFree && sz == o.SizeWords() {
				continue
			}
			if !reach[off] {
				ck.report(Violation{Pass: "oldbitmap", Gen: "old", Addr: o.Addr, Site: o.Site,
					Msg: "object marked live by the fresh bitmap is unreachable from the roots"})
			}
		}
	}
}

// reachableOldOffsets re-derives reachability from the stack roots and
// returns the offsets of reached objects in the old space id. Malformed
// or forwarded objects terminate their branch silently — the headers and
// fromspace passes own reporting those.
func (ck *checker) reachableOldOffsets(id mem.SpaceID) map[uint64]bool {
	heap := ck.in.Heap
	seen := make(map[mem.Addr]bool)
	reach := make(map[uint64]bool)
	var queue []mem.Addr
	push := func(v uint64) {
		a := mem.Addr(v)
		if a.IsNil() || seen[a] {
			return
		}
		sid := a.Space()
		if int(sid) <= 0 || int(sid) >= heap.NumSpaces() || !ck.isLive(sid) {
			return
		}
		sp := heap.Space(sid)
		if sp == nil || !sp.Contains(a) || obj.IsForwarded(heap, a) {
			return
		}
		seen[a] = true
		if sid == id {
			reach[a.Offset()] = true
		}
		queue = append(queue, a)
	}
	ck.eachRootStack(func(_ int, st *rt.Stack) {
		for _, v := range stackRoots(st) {
			push(v)
		}
	})
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		o := obj.Decode(heap, a)
		if o.Kind == obj.RawArray || (o.Kind == obj.Record && o.Len > obj.MaxRecordFields) {
			continue
		}
		for i := uint64(0); i < o.Len; i++ {
			if o.IsPtrField(i) {
				push(heap.Load(o.PayloadAddr(i)))
			}
		}
	}
	return reach
}

// checkOldFreeList verifies the free lists against the heap.
func (ck *checker) checkOldFreeList() {
	if ck.in.OldCollector == core.OldCopy {
		return
	}
	id := ck.in.OldSpaces[0]
	sp := ck.in.Heap.Space(id)
	if sp == nil {
		return
	}
	used := sp.Used()

	var sum uint64
	prevEnd := uint64(1)
	for _, s := range ck.in.OldFreeSpans {
		a := mem.MakeAddr(id, s.Start)
		if s.Size == 0 {
			ck.report(Violation{Pass: "freelist", Gen: "old", Addr: a, Msg: "empty free span"})
			continue
		}
		if s.Start < prevEnd {
			ck.report(Violation{Pass: "freelist", Gen: "old", Addr: a,
				Msg: fmt.Sprintf("span [%d,%d) overlaps or precedes the span ending at %d",
					s.Start, s.Start+s.Size, prevEnd)})
		}
		if s.Start+s.Size > used+1 {
			ck.report(Violation{Pass: "freelist", Gen: "old", Addr: a,
				Msg: fmt.Sprintf("span [%d,%d) extends past the allocation frontier %d",
					s.Start, s.Start+s.Size, used)})
		} else {
			hd := ck.in.Heap.Load(a)
			if obj.HeaderKind(hd) != obj.RawArray || obj.HeaderSite(hd) != 0 ||
				obj.SizeWords(obj.RawArray, obj.HeaderLen(hd)) != s.Size {
				ck.report(Violation{Pass: "freelist", Gen: "old", Addr: a,
					Msg: fmt.Sprintf("span [%d,%d) not backed by an exact filler object",
						s.Start, s.Start+s.Size)})
			}
		}
		sum += s.Size
		prevEnd = s.Start + s.Size
	}
	if sum != ck.in.OldFreeWords {
		ck.report(Violation{Pass: "freelist", Gen: "old",
			Msg: fmt.Sprintf("free-word counter %d, free spans sum to %d", ck.in.OldFreeWords, sum)})
	}

	free := ck.oldFreeStarts()
	var live uint64
	for _, o := range ck.walkSpace(id) {
		off, size := o.Addr.Offset(), o.SizeWords()
		if sz, isFree := free[off]; isFree && sz == size {
			continue
		}
		live += size
	}
	if live+ck.in.OldFreeWords != used {
		ck.report(Violation{Pass: "freelist", Gen: "old",
			Msg: fmt.Sprintf("live %d + free %d words != allocation frontier %d",
				live, ck.in.OldFreeWords, used)})
	}
}
