package sanitize_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/sanitize"
)

// TestSanitizedRandomMutator drives each collector configuration with a
// randomized object-graph mutator under an always-on sanitizer wrapper
// (EveryN 1, panic on violation). Unlike core's shadow-graph test, which
// compares against a Go-side model, this checks the heap's *internal*
// invariants — barrier completeness, header well-formedness, marker
// bookkeeping, cost reconciliation — after every one of the hundreds of
// collections the tight budgets force.
func TestSanitizedRandomMutator(t *testing.T) {
	pol := core.NewPretenurePolicy(map[obj.SiteID]core.PretenureDecision{
		3: {}, 5: {OnlyOldRefs: false},
	})
	configs := map[string]func(e *env) core.Collector{
		"semispace": func(e *env) core.Collector {
			return core.NewSemispace(e.stack, e.meter, nil, core.SemispaceConfig{
				BudgetWords: 8192, InitialWords: 256, LargeObjectWords: 64})
		},
		"gen-tight": func(e *env) core.Collector {
			return newGen(e, core.GenConfig{BudgetWords: 12288, NurseryWords: 256})
		},
		"gen-markers": func(e *env) core.Collector {
			return newGen(e, core.GenConfig{BudgetWords: 12288, NurseryWords: 256, MarkerN: 3})
		},
		"gen-aging": func(e *env) core.Collector {
			return newGen(e, core.GenConfig{BudgetWords: 16384, NurseryWords: 256, AgingMinors: 2})
		},
		"gen-cards": func(e *env) core.Collector {
			return newGen(e, core.GenConfig{BudgetWords: 12288, NurseryWords: 256, UseCardTable: true})
		},
		"gen-pretenure": func(e *env) core.Collector {
			return newGen(e, core.GenConfig{BudgetWords: 16384, NurseryWords: 256,
				Pretenure: pol, LargeObjectWords: 64})
		},
	}
	for name, mk := range configs {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				runSanitizedMutator(t, mk, seed, 3000)
			})
		}
	}
}

func runSanitizedMutator(t *testing.T, mk func(e *env) core.Collector, seed int64, ops int) {
	const nRoots = 8
	e := newEnv(nRoots)
	w := sanitize.Wrap(mk(e), sanitize.Options{})
	rng := rand.New(rand.NewSource(seed))
	slotOf := func(r int) int { return r + 1 }

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // allocate, wiring pointer fields to current roots
			r := rng.Intn(nRoots)
			kind := obj.Kind(rng.Intn(3))
			var n, mask uint64
			switch kind {
			case obj.Record:
				n = uint64(rng.Intn(6))
				mask = uint64(rng.Intn(1 << n))
			case obj.PtrArray:
				n = uint64(rng.Intn(8))
				mask = (1 << n) - 1
			case obj.RawArray:
				n = uint64(rng.Intn(96)) // crosses the 64-word LOS threshold
			}
			site := obj.SiteID(rng.Intn(8) + 1)
			a := w.Alloc(kind, n, site, mask)
			for i := uint64(0); i < n; i++ {
				if kind != obj.RawArray && (mask>>i)&1 == 1 {
					if src := rng.Intn(nRoots); !mem.Addr(e.stack.Slot(slotOf(src))).IsNil() && rng.Intn(3) > 0 {
						w.InitField(a, i, e.stack.Slot(slotOf(src)))
						continue
					}
					w.InitField(a, i, uint64(mem.Nil))
					continue
				}
				w.InitField(a, i, rng.Uint64())
			}
			e.stack.SetSlot(slotOf(r), uint64(a))
		case 5, 6: // mutate a pointer field of a root object (through the barrier)
			r := rng.Intn(nRoots)
			a := mem.Addr(e.stack.Slot(slotOf(r)))
			if a.IsNil() {
				continue
			}
			o := obj.Decode(w.Heap(), a)
			if o.Kind == obj.RawArray || o.Len == 0 {
				continue
			}
			i := uint64(rng.Intn(int(o.Len)))
			if !o.IsPtrField(i) {
				continue
			}
			w.StoreField(a, i, e.stack.Slot(slotOf(rng.Intn(nRoots))), true)
		case 7: // mutate a raw field
			r := rng.Intn(nRoots)
			a := mem.Addr(e.stack.Slot(slotOf(r)))
			if a.IsNil() {
				continue
			}
			o := obj.Decode(w.Heap(), a)
			if o.Len == 0 {
				continue
			}
			i := uint64(rng.Intn(int(o.Len)))
			if o.IsPtrField(i) {
				continue
			}
			w.StoreField(a, i, rng.Uint64(), false)
		case 8: // drop a root
			e.stack.SetSlot(slotOf(rng.Intn(nRoots)), uint64(mem.Nil))
		case 9: // force a collection
			w.Collect(rng.Intn(4) == 0)
		}
	}
	w.Collect(true)
	if vs := w.Check(); len(vs) != 0 {
		t.Fatalf("final check: %v", vs)
	}
	if w.Checks() == 0 {
		t.Fatal("sanitizer never ran — workload too small to collect")
	}
}
