package sanitize_test

import (
	"fmt"
	"testing"

	"tilgc/internal/fuzz"
)

// TestSanitizedRandomMutator drives randomized mutator programs under an
// always-on sanitizer and the package's other oracles. The randomized
// mutator that used to live here (a hand-rolled math/rand loop) was
// extracted into internal/fuzz, whose generator is deterministic,
// seedable, and shared with the gcbench -fuzz differential fleet — so the
// sanitizer now exercises the very same op mix (deep stacks, barrier
// floods, LOS traffic, phase flips) the fuzzing fleet sweeps, and a
// failure here is a one-word reproducer (`gcbench -fuzz -fuzz-seeds N`)
// instead of an unreplayable rand stream.
//
// CheckProgram wraps every matrix collector with sanitize.Wrap (EveryN 1)
// and reports violations as FailSanitizer failures; the cross-config,
// run-twice, trace, and wrapper oracles ride along.
func TestSanitizedRandomMutator(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d/%s", seed, fuzz.ProfileOf(seed)), func(t *testing.T) {
			p := fuzz.Generate(seed)
			for _, f := range fuzz.CheckProgram(p, nil) {
				t.Errorf("%s", f)
			}
		})
	}
}
