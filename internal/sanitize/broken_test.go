package sanitize_test

import (
	"fmt"
	"strings"
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
	"tilgc/internal/sanitize"
)

// env bundles the mutator runtime a collector needs, with a root frame
// exposing pointer slots 1..nRoots.
type env struct {
	table *rt.TraceTable
	meter *costmodel.Meter
	stack *rt.Stack
}

func newEnv(nRoots int) *env {
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	slots := make([]rt.SlotTrace, nRoots+1)
	for i := 1; i <= nRoots; i++ {
		slots[i] = rt.PTR()
	}
	stack.Call(table.Register("sanitize-root", slots, nil))
	return &env{table: table, meter: meter, stack: stack}
}

func newGen(e *env, cfg core.GenConfig) core.Collector {
	if cfg.BudgetWords == 0 {
		cfg.BudgetWords = 1 << 20
	}
	if cfg.NurseryWords == 0 {
		cfg.NurseryWords = 512
	}
	return core.NewGenerational(e.stack, e.meter, nil, cfg)
}

// consList builds a list of n cons cells (record: [value, next-ptr]) with
// the head parked in root slot `slot`.
func consList(c core.Collector, e *env, slot, n int, site obj.SiteID) {
	e.stack.SetSlot(slot, uint64(mem.Nil))
	for i := 0; i < n; i++ {
		cell := c.Alloc(obj.Record, 2, site, 0b10)
		c.InitField(cell, 0, uint64(i))
		c.InitField(cell, 1, e.stack.Slot(slot))
		e.stack.SetSlot(slot, uint64(cell))
	}
}

// TestBrokenCollectors corrupts one invariant at a time — going around the
// collector's own APIs, the way a real collector bug would — and checks
// that exactly the matching sanitizer pass reports it and the other passes
// stay quiet. The quiet half is as load-bearing as the loud half: a pass
// that misfires on someone else's corruption would bury real signals.
func TestBrokenCollectors(t *testing.T) {
	cases := []struct {
		pass    string
		build   func(e *env) core.Collector
		corrupt func(t *testing.T, c core.Collector, e *env)
	}{
		{
			// A pointer-mask bit at an index >= the record length: object
			// traversal never looks there, so only the structural pass sees it.
			pass:  "headers",
			build: func(e *env) core.Collector { return newGen(e, core.GenConfig{}) },
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				a := c.Alloc(obj.Record, 2, 1, 0b01)
				c.InitField(a, 0, uint64(mem.Nil))
				e.stack.SetSlot(1, uint64(a))
				o := obj.Decode(c.Heap(), a)
				c.Heap().Store(o.PayloadAddr(0)-1, 0b100)
			},
		},
		{
			// A root pointing past a live space's allocation frontier — a
			// dangling pointer the next evacuation would copy garbage from.
			pass:  "fromspace",
			build: func(e *env) core.Collector { return newGen(e, core.GenConfig{}) },
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				a := c.Alloc(obj.Record, 2, 1, 0)
				sp := c.Heap().SpaceOf(a)
				e.stack.SetSlot(2, uint64(mem.MakeAddr(a.Space(), sp.Used()+64)))
			},
		},
		{
			// An old-to-young edge written without the barrier: both objects
			// are live and well-formed, so only remembered-set completeness
			// can notice the next minor GC would miss this edge.
			pass:  "remembered",
			build: func(e *env) core.Collector { return newGen(e, core.GenConfig{}) },
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				consList(c, e, 1, 5, 1)
				c.Collect(false) // promote the list (immediate promotion)
				young := c.Alloc(obj.Record, 1, 2, 0)
				c.InitField(young, 0, 7)
				e.stack.SetSlot(2, uint64(young))
				head := mem.Addr(e.stack.Slot(1))
				o := obj.Decode(c.Heap(), head)
				c.Heap().Store(o.PayloadAddr(1), uint64(young))
			},
		},
		{
			// An orphan marker stub in a collector that has markers disabled:
			// returning through it would panic in the stub dispatcher.
			pass:  "markers",
			build: func(e *env) core.Collector { return newGen(e, core.GenConfig{}) },
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				fi := e.table.Register("victim", make([]rt.SlotTrace, 3), nil)
				e.stack.Call(fi)
				e.stack.SetRawSlot(e.stack.FrameBase(1), uint64(rt.StubKey))
			},
		},
		{
			// A pretenured-region object whose site the policy never tenured —
			// the silent misclassification the region invariant exists to catch.
			pass: "pretenure",
			build: func(e *env) core.Collector {
				pol := core.NewPretenurePolicy(map[obj.SiteID]core.PretenureDecision{3: {}})
				return newGen(e, core.GenConfig{Pretenure: pol})
			},
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				a := c.Alloc(obj.Record, 2, 3, 0)
				c.InitField(a, 0, 1)
				c.InitField(a, 1, 2)
				e.stack.SetSlot(1, uint64(a))
				c.Heap().Store(a, obj.PackHeader(obj.Record, 2, 9))
			},
		},
		{
			// A flipped mark/allocation bit: the heap, free lists, and roots
			// are all intact, so only the bitmap cross-check can see the
			// lost mark the next sweep would turn into a reclaimed live object.
			pass: "oldbitmap",
			build: func(e *env) core.Collector {
				return newGen(e, core.GenConfig{OldCollector: core.OldMarkSweep})
			},
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				consList(c, e, 1, 20, 1)
				c.Collect(true) // tenure the list under a fresh bitmap
				head := mem.Addr(e.stack.Slot(1))
				c.(*core.Generational).FlipOldMarkBit(head.Offset())
			},
		},
		{
			// A skewed free-word counter, as a dropped span-accounting update
			// would produce: spans and heap agree with each other but not
			// with the counter, so only the free-list pass fires.
			pass: "freelist",
			build: func(e *env) core.Collector {
				return newGen(e, core.GenConfig{OldCollector: core.OldMarkSweep})
			},
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				consList(c, e, 1, 20, 1)
				c.Collect(true)
				c.(*core.Generational).SkewOldFreeWords(3)
			},
		},
		{
			// Statistics that stopped reconciling: more major collections
			// than collections, as a dropped counter increment would produce.
			pass:  "costs",
			build: func(e *env) core.Collector { return newGen(e, core.GenConfig{}) },
			corrupt: func(t *testing.T, c core.Collector, e *env) {
				consList(c, e, 1, 10, 1)
				c.Stats().NumMajor = c.Stats().NumGC + 3
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.pass, func(t *testing.T) {
			e := newEnv(8)
			c := tc.build(e)
			w := sanitize.Wrap(c, sanitize.Options{})
			if vs := w.Check(); len(vs) != 0 {
				t.Fatalf("violations before corruption: %v", vs)
			}
			tc.corrupt(t, c, e)
			vs := w.Check()
			if len(vs) == 0 {
				t.Fatalf("%s corruption went undetected", tc.pass)
			}
			for _, v := range vs {
				if v.Pass != tc.pass {
					t.Errorf("pass %q misfired on %s corruption: %s", v.Pass, tc.pass, v)
				}
			}
		})
	}
}

// TestNonmovingCollectorsClean churns the non-moving old generations
// through tenure/drop/major cycles — building free spans, reusing them,
// and sliding over them — with every pass checked after each collection.
func TestNonmovingCollectorsClean(t *testing.T) {
	for _, oc := range []core.OldCollector{core.OldMarkSweep, core.OldMarkCompact} {
		t.Run(oc.String(), func(t *testing.T) {
			e := newEnv(8)
			c := newGen(e, core.GenConfig{OldCollector: oc})
			w := sanitize.Wrap(c, sanitize.Options{}) // panics on any violation
			for round := 0; round < 4; round++ {
				consList(w, e, 1, 200, obj.SiteID(1+round))
				w.Collect(true)
				consList(w, e, 2, 50, 9)
				w.Collect(true)
				e.stack.SetSlot(1, uint64(mem.Nil))
				w.Collect(true) // slot-1 list dies tenured
				if vs := w.Check(); len(vs) != 0 {
					t.Fatalf("round %d: %v", round, vs)
				}
			}
		})
	}
}

// TestWrapperAutoCheck verifies the decorator actually runs the passes
// after operations that completed collections, and routes violations to
// the OnViolation hook.
func TestWrapperAutoCheck(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, core.GenConfig{})
	var fired [][]sanitize.Violation
	w := sanitize.Wrap(c, sanitize.Options{OnViolation: func(vs []sanitize.Violation) {
		fired = append(fired, vs)
	}})
	consList(w, e, 1, 50, 1)
	before := w.Checks()
	c.Stats().NumMajor = c.Stats().NumGC + 7 // survives the upcoming minor GC
	w.Collect(false)
	if w.Checks() == before {
		t.Fatal("Collect through the wrapper performed no check")
	}
	if len(fired) == 0 {
		t.Fatal("OnViolation not called for a corrupted collector")
	}
	for _, v := range fired[0] {
		if v.Pass != "costs" {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

// TestWrapperPanicsByDefault verifies that without an OnViolation hook a
// failed automatic check panics with the rendered violation list.
func TestWrapperPanicsByDefault(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, core.GenConfig{})
	w := sanitize.Wrap(c, sanitize.Options{})
	consList(w, e, 1, 50, 1)
	c.Stats().NumMajor = c.Stats().NumGC + 7
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic from automatic check")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "sanitize:") || !strings.Contains(msg, "costs") {
			t.Fatalf("panic message missing violation detail: %s", msg)
		}
	}()
	w.Collect(false)
}

// TestCheckOnUninspectableCollector verifies the sanitizer reports — not
// ignores — a collector it cannot see inside.
func TestCheckOnUninspectableCollector(t *testing.T) {
	vs := sanitize.Check(opaqueCollector{})
	if len(vs) != 1 || vs[0].Pass != "inspect" {
		t.Fatalf("got %v, want a single inspect violation", vs)
	}
}

// opaqueCollector implements core.Collector but not core.Inspectable.
type opaqueCollector struct{}

func (opaqueCollector) Alloc(obj.Kind, uint64, obj.SiteID, uint64) mem.Addr { return mem.Nil }
func (opaqueCollector) LoadField(mem.Addr, uint64) uint64                   { return 0 }
func (opaqueCollector) StoreField(mem.Addr, uint64, uint64, bool)           {}
func (opaqueCollector) InitField(mem.Addr, uint64, uint64)                  {}
func (opaqueCollector) Collect(bool)                                        {}
func (opaqueCollector) Stats() *core.GCStats                                { return &core.GCStats{} }
func (opaqueCollector) Heap() *mem.Heap                                     { return nil }
func (opaqueCollector) Name() string                                        { return "opaque" }
