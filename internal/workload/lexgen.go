package workload

import (
	"tilgc/internal/obj"
)

// Lexgen is a lexical-analyzer generator (Appel, Mattson, Tarditi 1989)
// processing a lexical description: the hot phase is the subset
// construction turning an NFA into a DFA. DFA state sets are sorted cons
// lists built by recursive insertion, so the stack repeatedly grows to the
// size of the set being built and unwinds again — Table 2 shows an
// average of 435.6 *new* frames per collection against an average depth
// of 714.3. The finished DFA (state sets plus transition tables) is the
// benchmark's long-lived data, which is why pretenuring also helps it
// (Table 6: 27% less GC time).
type lexgenBench struct{}

// Lexgen's allocation sites.
const (
	lexSiteSet   obj.SiteID = 600 + iota // state-set cells (search temporaries)
	lexSiteDFA                           // kept DFA state sets (long-lived)
	lexSiteState                         // DFA state records (long-lived)
	lexSiteTrans                         // transition arrays (long-lived)
	lexSiteRef                           // the mutable dstates ref cell
)

func init() { register(lexgenBench{}) }

func (lexgenBench) Name() string { return "Lexgen" }

func (lexgenBench) Description() string {
	return "A lexical-analyzer generator, processing the lexical description of Standard ML"
}

func (lexgenBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		lexSiteSet:   "state-set cons (temporary)",
		lexSiteDFA:   "kept DFA state-set cons",
		lexSiteState: "DFA state record",
		lexSiteTrans: "transition array",
		lexSiteRef:   "dstates ref cell",
	}
}

func (lexgenBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	lexNFAStates = 240
	lexSymbols   = 4
	lexMaxDFA    = 60 // DFA state cap per run
)

// lexDelta returns the NFA successor states of state s on symbol c: a
// deterministic pseudo-random pair derived from a hash, standing in for
// the regex-derived transition structure.
func lexDelta(s, c int) [2]int {
	h := uint64(s*lexSymbols+c)*2654435761 + 97
	a := int(h>>8) % lexNFAStates
	b := int(h>>24) % lexNFAStates
	return [2]int{a, b}
}

func (lexgenBench) Run(m *Mutator, scale Scale) Result {
	// main(dstates, work, cur, set, scratch)
	// insert(set, rec, scratch): recursive sorted insert
	// union(members, acc, scratch, scratch2): fold δ over a set
	// eq(a, b): set comparison.
	main := m.PtrFrame("lex_main", 5)
	insert := m.PtrFrame("lex_insert", 3)
	union := m.PtrFrame("lex_union", 4)
	eqf := m.PtrFrame("lex_eq", 2)

	// insertBody: sorted insert of value v into the set in slot 1 (no
	// duplicates), rebuilt from `site`; result via RetPtr. One frame per
	// element walked — the deep recursion of the benchmark.
	var insertBody func(site obj.SiteID, v uint64)
	insertBody = func(site obj.SiteID, v uint64) {
		if m.IsNil(1) {
			m.SetSlotNil(2)
			m.ConsInt(site, v, 2, 2)
			m.RetPtr(2)
			return
		}
		h := m.HeadInt(1)
		m.Work(1)
		switch {
		case h == v: // already present: share the existing set
			m.RetPtr(1)
		case h < v:
			m.Tail(1, 2)
			m.CallArgs(insert, []int{2}, func() { insertBody(site, v) })
			m.TakeRet(2)
			m.ConsInt(site, h, 2, 2)
			m.RetPtr(2)
		default:
			m.ConsInt(site, v, 1, 2)
			m.RetPtr(2)
		}
	}

	// eqBody: structural equality of the sorted sets in slots 1 and 2.
	var eqBody func() bool
	eqBody = func() bool {
		for !m.IsNil(1) && !m.IsNil(2) {
			if m.HeadInt(1) != m.HeadInt(2) {
				return false
			}
			m.Tail(1, 1)
			m.Tail(2, 2)
			m.Work(1)
		}
		return m.IsNil(1) && m.IsNil(2)
	}

	var check uint64
	runs := scale.Reps(100)
	for r := 0; r < runs; r++ {
		m.Call(main, func() {
			// dstates: list of DFA state records
			//   [set(ptr), transitions(ptr), id(raw)] mask 0b011.
			// The list head lives in a mutable heap ref cell (slot 1) so
			// the recursive worklist frames can reach and extend it; the
			// update goes through the write barrier like any ML ref.
			m.AllocRecord(lexSiteRef, 1, 0b1, 1)

			// Initial DFA state: the ε-closure stand-in {r mod N, 2r mod N}.
			m.SetSlotNil(4)
			m.CallArgs(insert, []int{4}, func() {
				insertBody(lexSiteDFA, uint64(r%lexNFAStates))
			})
			m.TakeRet(4)
			m.CallArgs(insert, []int{4}, func() {
				insertBody(lexSiteDFA, uint64(2*r%lexNFAStates))
			})
			m.TakeRet(4)

			// consDState pushes the state record in slot `rec` onto the
			// ref'd dstates list, clobbering slot `scratch`.
			consDState := func(rec, scratch int) {
				m.LoadField(1, 0, scratch)
				m.ConsPtr(lexSiteDFA, rec, scratch, scratch)
				m.StorePtrField(1, 0, scratch)
			}

			m.AllocRecord(lexSiteState, 3, 0b011, 3)
			m.InitPtrField(3, 0, 4)
			m.InitIntField(3, 2, 0)
			consDState(3, 4)

			numStates := 1
			transSum := uint64(0)
			// Worklist: indices of unprocessed DFA states (oldest = 0).
			work := []int{0}
			// nthState loads DFA state record #id into dst (list is
			// newest-first).
			nthState := func(id, dst int) {
				m.LoadField(1, 0, dst)
				for k := 0; k < numStates-1-id; k++ {
					m.Tail(dst, dst)
				}
				m.Head(dst, dst)
			}

			// The worklist is processed by non-tail recursion — one frame
			// per DFA state stays live until construction finishes, the
			// modest stable stack under the set-operation churn that gives
			// Lexgen its 13% marker win in the paper's Table 5.
			process := m.PtrFrame("lex_process", 5)
			var processNext func()
			processNext = func() {
				if len(work) == 0 || numStates >= lexMaxDFA {
					return
				}
				id := work[0]
				work = work[1:]
				for c := 0; c < lexSymbols; c++ {
					nthState(id, 3)
					// Build target = ∪ δ(s, c) for s in the state's set,
					// by recursive sorted insertion (temporary site).
					m.CallArgs(union, []int{3}, func() {
						m.LoadField(1, 0, 2) // the member set
						m.SetSlotNil(3)      // accumulator
						for !m.IsNil(2) {
							s := int(m.HeadInt(2))
							for _, t := range lexDelta(s, c) {
								m.CallArgs(insert, []int{3}, func() {
									insertBody(lexSiteSet, uint64(t))
								})
								m.TakeRet(3)
							}
							m.Tail(2, 2)
						}
						m.RetPtr(3)
					})
					m.TakeRet(4)

					// Look the target set up among existing DFA states.
					foundID := -1
					m.LoadField(1, 0, 5)
					scan := numStates - 1
					for !m.IsNil(5) {
						m.Head(5, 3)
						eq := false
						m.LoadField(3, 0, 3)
						m.CallArgs(eqf, []int{3, 4}, func() { eq = eqBody() })
						if eq {
							foundID = scan
							break
						}
						scan--
						m.Tail(5, 5)
					}
					if foundID < 0 {
						// New DFA state: keep a long-lived copy of the set.
						m.CallArgs(union, []int{4}, func() {
							m.SetSlot(2, m.Slot(1))
							m.SetSlotNil(3)
							for !m.IsNil(2) {
								v := m.HeadInt(2)
								m.CallArgs(insert, []int{3}, func() {
									insertBody(lexSiteDFA, v)
								})
								m.TakeRet(3)
								m.Tail(2, 2)
							}
							m.RetPtr(3)
						})
						m.TakeRet(4)
						m.AllocRecord(lexSiteState, 3, 0b011, 3)
						m.InitPtrField(3, 0, 4)
						m.InitIntField(3, 2, uint64(numStates))
						consDState(3, 5)
						foundID = numStates
						work = append(work, numStates)
						numStates++
					}
					// Record the transition on the source state.
					nthState(id, 3)
					m.LoadField(3, 1, 5)
					if m.IsNil(5) {
						m.AllocRawArray(lexSiteTrans, lexSymbols, 5)
						nthState(id, 3)
						m.StorePtrField(3, 1, 5)
					}
					m.StoreIntField(5, uint64(c), uint64(foundID)+1)
					transSum = transSum*31 + uint64(foundID)
				}
				m.CallArgs(process, []int{1}, processNext)
			}
			m.CallArgs(process, []int{1}, processNext)
			check = check*1000003 + uint64(numStates)*4096 + transSum%4096
		})
	}
	return Result{Check: check}
}
