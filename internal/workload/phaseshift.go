package workload

import (
	"tilgc/internal/obj"
)

// PhaseShift is the adaptive-pretenuring adversary (§9): a synthetic
// program whose allocation behaviour inverts partway through the run.
// Phase 1 builds a cache of node records that all survive until the phase
// boundary — from the profiler's view the node site is a textbook
// pretenuring candidate (near-100% survival). At the boundary the cache
// is discarded wholesale and phase 2 allocates from the same site at the
// same rate, but every node now dies before its round ends. An offline
// policy trained on a phase-1 profile therefore pretenures exactly the
// wrong site for phase 2, filling the tenured generation with garbage;
// the online advisor must first promote the site (phase 1 evidence) and
// then recognise the mistraining and demote it. The two-sided mistake is
// what the demotion machinery is measured against.
type phaseShiftBench struct{}

// PhaseShift's allocation sites.
const (
	psSiteNode obj.SiteID = 1200 + iota // payload records: survive phase 1, die young in phase 2
	psSiteCell                          // phase-1 cache spine (cons cells, survive phase 1)
	psSiteTmp                           // per-round temporaries (die young in both phases)
)

func init() { register(phaseShiftBench{}) }

func (phaseShiftBench) Name() string { return "PhaseShift" }

func (phaseShiftBench) Description() string {
	return "Synthetic two-phase program: a long-lived node cache built and then discarded, followed by short-lived churn from the same allocation site"
}

func (phaseShiftBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		psSiteNode: "phase-shifting node record",
		psSiteCell: "cache spine cell",
		psSiteTmp:  "round temporary",
	}
}

func (phaseShiftBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	psNodesPerRound = 32
	psNodeFields    = 8
)

func (phaseShiftBench) Run(m *Mutator, scale Scale) Result {
	// main(cache, node, cursor) → round(tmp).
	main := m.PtrFrame("ps_main", 3)
	round := m.PtrFrame("ps_round", 1)

	build := scale.Reps(800)
	churn := scale.Reps(1600)

	var check uint64
	m.Call(main, func() {
		m.SetSlotNil(1)
		// Phase 1: every node is linked into the cache and survives to the
		// phase boundary, so the node site profiles as ~100% surviving.
		for r := 0; r < build; r++ {
			for i := 0; i < psNodesPerRound; i++ {
				m.AllocRecord(psSiteNode, psNodeFields, 0, 2)
				v := uint64(r*psNodesPerRound+i)*2654435761 + 97
				m.InitIntField(2, 0, v)
				m.InitIntField(2, 1, v^0xffff)
				m.ConsPtr(psSiteCell, 2, 1, 1)
				m.Work(4)
			}
			m.CallArgs(round, nil, func() {
				m.AllocRecord(psSiteTmp, 4, 0, 1)
				m.InitIntField(1, 0, uint64(r))
				check = check*33 + m.LoadFieldInt(1, 0)
			})
		}
		// Fold the cache into the check, then discard it: the phase shift
		// throws phase 1's data structure away wholesale.
		m.SetSlot(3, m.Slot(1))
		for !m.IsNil(3) {
			m.Head(3, 2)
			check = check*31 + m.LoadFieldInt(2, 0)
			m.Tail(3, 3)
		}
		m.SetSlotNil(1)
		m.SetSlotNil(2)
		m.SetSlotNil(3)
		// Phase 2: the same site's nodes now die before the round ends.
		for r := 0; r < churn; r++ {
			for i := 0; i < psNodesPerRound; i++ {
				m.AllocRecord(psSiteNode, psNodeFields, 0, 2)
				v := uint64(r*psNodesPerRound+i)*2246822519 + 13
				m.InitIntField(2, 0, v)
				check = check*37 + m.LoadFieldInt(2, 0)
				m.SetSlotNil(2)
				m.Work(4)
			}
			m.CallArgs(round, nil, func() {
				m.AllocRecord(psSiteTmp, 4, 0, 1)
				m.InitIntField(1, 0, uint64(r))
				check = check*33 + m.LoadFieldInt(1, 0)
			})
		}
	})
	return Result{Check: check}
}
