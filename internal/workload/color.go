package workload

import (
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// Color is brute-force graph colouring: a backtracking search assigning
// one of three colours per vertex, one activation record per vertex. The
// constraint graph is a long path with extra chords, so the search runs
// at essentially full depth the whole time (Table 2: max 482 frames,
// average 469.7) while only the last few frames churn — the deep,
// slowly-unwinding stack that generational stack collection targets.
type colorBench struct{}

// Color's allocation sites.
const (
	colorSiteAssign obj.SiteID = 200 + iota // assignment trail cells (die young)
	colorSiteGraph                          // adjacency records (live for a run)
)

func init() { register(colorBench{}) }

func (colorBench) Name() string { return "Color" }

func (colorBench) Description() string {
	return "Brute-force graph coloring"
}

func (colorBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		colorSiteAssign: "assignment trail cons",
		colorSiteGraph:  "adjacency record",
	}
}

func (colorBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	colorVerts  = 478 // path length: one frame per vertex
	colorColors = 3
)

// colorChord returns the extra earlier neighbour of vertex v (besides
// v-1), or -1. Deterministic pseudo-random chords make the colouring
// non-trivial without collapsing the search.
func colorChord(v int) int {
	if v < 5 || v%7 != 0 {
		return -1
	}
	return v - 2 - (v*2654435761>>8)%3
}

func (colorBench) Run(m *Mutator, scale Scale) Result {
	// main(assign) → color(assign, newcell) per vertex.
	main := m.PtrFrame("color_main", 2)
	color := m.Frame("color_vertex", rt.PTR(), rt.PTR(), rt.NP())

	var check uint64
	runs := scale.Reps(120)
	for r := 0; r < runs; r++ {
		solutions := uint64(0)
		budget := 25000 // cap solutions per run: bounds the leaf churn
		m.Call(main, func() {
			// The assignment list holds (vertex colour) cells, newest
			// first; vertex of a cell = list position from the head.
			m.SetSlotNil(1)
			var visit func(v int)
			visit = func(v int) {
				if solutions >= uint64(budget) {
					return
				}
				if v == colorVerts {
					solutions++
					// Fold the two newest assignments into the check.
					s := m.HeadInt(1)
					m.Tail(1, 2)
					check = check*31 + s*3 + m.HeadInt(2)
					return
				}
				for c := 0; c < colorColors; c++ {
					// Conflicts: previous vertex and the chord.
					prev := -1
					if v > 0 {
						prev = int(m.HeadInt(1))
					}
					if v > 0 && prev == c {
						m.Work(1)
						continue
					}
					if ch := colorChord(v); ch >= 0 {
						// Walk back to the chord's cell: position v-1-ch.
						m.SetSlot(2, m.Slot(1))
						for i := 0; i < v-1-ch; i++ {
							m.Tail(2, 2)
						}
						m.Work(uint64(v - ch))
						if int(m.HeadInt(2)) == c {
							continue
						}
					}
					m.ConsInt(colorSiteAssign, uint64(c), 1, 2)
					m.CallArgs(color, []int{2}, func() { visit(v + 1) })
					if solutions >= uint64(budget) {
						return
					}
				}
			}
			visit(0)
		})
		check = check*1000003 + solutions
	}
	return Result{Check: check}
}
