package workload

import (
	"fmt"
	"sort"

	"tilgc/internal/obj"
)

// Workload is one of the paper's benchmark programs (Table 1).
type Workload interface {
	// Name returns the benchmark name as the paper's tables spell it.
	Name() string
	// Description matches Table 1's description column.
	Description() string
	// Run executes the program against the mutator at the given scale
	// and returns a deterministic self-check value; the value must be
	// identical under every collector configuration.
	Run(m *Mutator, scale Scale) Result
	// Sites documents the workload's allocation sites for profiles.
	Sites() map[obj.SiteID]string
	// OnlyOldSites lists allocation sites whose objects are known (by
	// the §7.2 manual dataflow analysis) to reference only data that is
	// itself pretenured or tenured; nil when the analysis was not done.
	OnlyOldSites() []obj.SiteID
}

// Result is a workload's outcome.
type Result struct {
	// Check is the deterministic self-check value.
	Check uint64
}

// Scale divides the paper's iteration counts so experiments complete in
// seconds instead of the minutes the 1998 runs took. Structural
// parameters (live-set shapes, stack depths, site structure) are not
// scaled — only repetition counts are — so allocation ratios and depth
// profiles keep the paper's shape.
type Scale struct {
	// Repeat multiplies top-level iteration counts (1.0 = paper scale).
	Repeat float64
	// Depth multiplies structural recursion depths (term sizes, string
	// lengths) for the deep-stack benchmarks. Zero means 1.0. Depth is
	// kept at 1.0 for table runs — the paper's stack-depth profile is
	// load-bearing for the §5 results — and reduced only in unit tests.
	Depth float64
}

// DefaultScale keeps each full-table experiment in the seconds range.
var DefaultScale = Scale{Repeat: 0.02}

// PaperScale runs the paper's full iteration counts.
var PaperScale = Scale{Repeat: 1.0}

// Reps scales a paper iteration count, never below 1.
func (s Scale) Reps(paperCount int) int {
	n := int(float64(paperCount) * s.Repeat)
	if n < 1 {
		return 1
	}
	return n
}

// Canon returns the scale with its documented zero-value defaults made
// explicit: a zero Depth means 1.0. Two scales that behave identically
// canonicalize to the same value, so anything keying a cache on a Scale
// (e.g. the harness calibration cache) must key on Canon().
func (s Scale) Canon() Scale {
	if s.Depth == 0 {
		s.Depth = 1.0
	}
	return s
}

// DepthOf scales a structural depth, never below min.
func (s Scale) DepthOf(paperDepth, min int) int {
	d := s.Depth
	if d == 0 {
		d = 1.0
	}
	n := int(float64(paperDepth) * d)
	if n < min {
		return min
	}
	return n
}

var registry = map[string]Workload{}

// register adds a workload at package init time.
func register(w Workload) Workload {
	if _, dup := registry[w.Name()]; dup {
		panic(fmt.Sprintf("workload: duplicate %q", w.Name()))
	}
	registry[w.Name()] = w
	return w
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return w, nil
}

// Names returns all benchmark names in the paper's table order where
// possible (alphabetical matches the paper closely).
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns all workloads in Names() order.
func All() []Workload {
	var ws []Workload
	for _, n := range Names() {
		ws = append(ws, registry[n])
	}
	return ws
}
