package workload

import (
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/rt"
)

// testScale keeps the differential tests fast.
var testScale = Scale{Repeat: 0.004}

type runOut struct {
	result Result
	stats  core.GCStats
	stack  *rt.Stack
}

func runUnder(t *testing.T, w Workload, mk func(stack *rt.Stack, meter *costmodel.Meter) core.Collector, scale Scale) runOut {
	t.Helper()
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	col := mk(stack, meter)
	m := NewMutator(col, stack, table, meter)
	res := w.Run(m, scale)
	if stack.Depth() != 0 {
		t.Fatalf("%s left %d frames on the stack", w.Name(), stack.Depth())
	}
	if stack.HandlerDepth() != 0 {
		t.Fatalf("%s left %d handlers installed", w.Name(), stack.HandlerDepth())
	}
	return runOut{result: res, stats: *col.Stats(), stack: stack}
}

func collectorConfigs() map[string]func(stack *rt.Stack, meter *costmodel.Meter) core.Collector {
	return map[string]func(stack *rt.Stack, meter *costmodel.Meter) core.Collector{
		"semispace": func(s *rt.Stack, m *costmodel.Meter) core.Collector {
			return core.NewSemispace(s, m, nil, core.SemispaceConfig{BudgetWords: 1 << 22})
		},
		"gen": func(s *rt.Stack, m *costmodel.Meter) core.Collector {
			return core.NewGenerational(s, m, nil, core.GenConfig{
				BudgetWords: 1 << 22, NurseryWords: 8 * 1024})
		},
		"gen-markers": func(s *rt.Stack, m *costmodel.Meter) core.Collector {
			return core.NewGenerational(s, m, nil, core.GenConfig{
				BudgetWords: 1 << 22, NurseryWords: 8 * 1024, MarkerN: 25})
		},
		"gen-tiny-nursery": func(s *rt.Stack, m *costmodel.Meter) core.Collector {
			return core.NewGenerational(s, m, nil, core.GenConfig{
				BudgetWords: 1 << 22, NurseryWords: 1024, MarkerN: 10})
		},
		"gen-marksweep": func(s *rt.Stack, m *costmodel.Meter) core.Collector {
			return core.NewGenerational(s, m, nil, core.GenConfig{
				BudgetWords: 1 << 22, NurseryWords: 8 * 1024,
				OldCollector: core.OldMarkSweep})
		},
		"gen-markcompact": func(s *rt.Stack, m *costmodel.Meter) core.Collector {
			return core.NewGenerational(s, m, nil, core.GenConfig{
				BudgetWords: 1 << 22, NurseryWords: 8 * 1024,
				OldCollector: core.OldMarkCompact})
		},
	}
}

// TestWorkloadsDeterministicAcrossCollectors is the central differential
// test: every benchmark must compute the same self-check under every
// collector configuration (and under repeated runs).
func TestWorkloadsDeterministicAcrossCollectors(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name(), func(t *testing.T) {
			var ref Result
			first := true
			for cname, mk := range collectorConfigs() {
				out := runUnder(t, w, mk, testScale)
				if out.stats.NumGC == 0 && cname == "gen-tiny-nursery" {
					t.Errorf("%s under %s: no collections at all — workload too small to test",
						w.Name(), cname)
				}
				if first {
					ref = out.result
					first = false
					continue
				}
				if out.result != ref {
					t.Errorf("%s under %s: check %#x, want %#x",
						w.Name(), cname, out.result.Check, ref.Check)
				}
			}
		})
	}
}

// TestWorkloadsDeterministicAcrossScales verifies runs are reproducible
// for the same scale (run twice, same collector).
func TestWorkloadsRepeatable(t *testing.T) {
	mk := collectorConfigs()["gen"]
	for _, w := range All() {
		t.Run(w.Name(), func(t *testing.T) {
			a := runUnder(t, w, mk, testScale)
			b := runUnder(t, w, mk, testScale)
			if a.result != b.result {
				t.Errorf("%s not repeatable: %#x vs %#x", w.Name(), a.result.Check, b.result.Check)
			}
			if a.stats.BytesAllocated != b.stats.BytesAllocated {
				t.Errorf("%s allocation not deterministic", w.Name())
			}
		})
	}
}

// TestWorkloadMetadata checks the descriptive interface.
func TestWorkloadMetadata(t *testing.T) {
	for _, w := range All() {
		if w.Name() == "" || w.Description() == "" {
			t.Errorf("workload with empty metadata: %+v", w)
		}
		if len(w.Sites()) == 0 {
			t.Errorf("%s documents no allocation sites", w.Name())
		}
	}
}

func TestScaleReps(t *testing.T) {
	s := Scale{Repeat: 0.01}
	if s.Reps(10000) != 100 {
		t.Errorf("Reps(10000) = %d", s.Reps(10000))
	}
	if s.Reps(10) != 1 {
		t.Errorf("Reps(10) = %d, want clamp to 1", s.Reps(10))
	}
	if PaperScale.Reps(123) != 123 {
		t.Error("PaperScale must be identity")
	}
}

func TestScaleCanon(t *testing.T) {
	// Zero Depth documents as 1.0; Canon makes the default explicit so
	// caches keyed on a Scale treat the two spellings as one.
	if got := (Scale{Repeat: 0.5}).Canon(); got != (Scale{Repeat: 0.5, Depth: 1.0}) {
		t.Errorf("Canon zero depth = %+v", got)
	}
	if got := (Scale{Repeat: 0.5, Depth: 0.3}).Canon(); got != (Scale{Repeat: 0.5, Depth: 0.3}) {
		t.Errorf("Canon explicit depth = %+v", got)
	}
	// Canon must agree with DepthOf's interpretation of the zero value.
	z, o := Scale{Repeat: 1}, Scale{Repeat: 1, Depth: 1.0}
	if z.DepthOf(40, 1) != o.DepthOf(40, 1) {
		t.Error("zero and unit depth scale structural depths differently")
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, err := Get("Nqueen"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload lookup succeeded")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All mismatch")
	}
}
