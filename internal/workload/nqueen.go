package workload

import (
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// Nqueen solves the N-queens problem for n = 10 by backtracking over
// placement lists. The search's trail cells die almost immediately, but
// every completed placement is copied onto a solutions list that lives to
// the end of the run — producing the strongly bimodal heap profile of
// Figure 2, where four sites account for 99% of all copied bytes. The
// paper's §7.2 dataflow analysis shows the solution cells reference only
// other pretenured cells, enabling scan elision.
type nqueenBench struct{}

// Nqueen's allocation sites.
const (
	nqSiteTrail   obj.SiteID = 800 + iota // placement trail cells (die young)
	nqSiteSolCell                         // copied solution cells (long-lived)
	nqSiteSolList                         // solutions list spine (long-lived)
	nqSiteRunBox                          // per-run result box (long-lived)
)

func init() { register(nqueenBench{}) }

func (nqueenBench) Name() string { return "Nqueen" }

func (nqueenBench) Description() string {
	return "The N-queens problem for n=10"
}

func (nqueenBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		nqSiteTrail:   "placement trail cons",
		nqSiteSolCell: "solution copy cons",
		nqSiteSolList: "solutions list cons",
		nqSiteRunBox:  "run result box",
	}
}

// OnlyOldSites: a solution cell's tail is always another solution cell (or
// nil), and the solutions-list spine points only at solution cells and
// spine cells — the manual dataflow result of §7.2.
func (nqueenBench) OnlyOldSites() []obj.SiteID {
	return []obj.SiteID{nqSiteSolCell, nqSiteSolList, nqSiteRunBox}
}

const nqN = 10

func (nqueenBench) Run(m *Mutator, scale Scale) Result {
	// main(sols, keep) → solve(placed, sols, newcell, scratch) recursive
	//   → safe(placed) → copySol(placed, acc, scratch).
	main := m.PtrFrame("nq_main", 2)
	solve := m.Frame("nq_solve", rt.PTR(), rt.PTR(), rt.PTR(), rt.PTR(), rt.NP())
	safe := m.Frame("nq_safe", rt.PTR(), rt.NP(), rt.NP())
	copySol := m.Frame("nq_copy", rt.PTR(), rt.PTR(), rt.PTR())

	var solutions uint64
	var check uint64

	// solveBody: slot1 = placed list (row encoded implicitly by length),
	// slot2 = solutions list. Returns updated solutions list via RetPtr.
	var solveBody func(row int)
	solveBody = func(row int) {
		if row == nqN {
			// Copy the placement onto the long-lived solutions list.
			m.CallArgs(copySol, []int{1}, func() {
				m.SetSlotNil(2)
				for !m.IsNil(1) {
					m.ConsInt(nqSiteSolCell, m.HeadInt(1), 2, 2)
					m.Tail(1, 1)
				}
				m.RetPtr(2)
			})
			m.TakeRet(3)
			m.ConsPtr(nqSiteSolList, 3, 2, 2)
			solutions++
			m.RetPtr(2)
			return
		}
		for col := 0; col < nqN; col++ {
			ok := false
			m.CallArgs(safe, []int{1}, func() {
				dist := uint64(1)
				good := true
				for !m.IsNil(1) {
					c := m.HeadInt(1)
					m.Work(3)
					if c == uint64(col) || c+dist == uint64(col) ||
						c == uint64(col)+dist {
						good = false
						break
					}
					dist++
					m.Tail(1, 1)
				}
				ok = good
			})
			if !ok {
				continue
			}
			m.ConsInt(nqSiteTrail, uint64(col), 1, 3)
			m.CallArgs(solve, []int{3, 2}, func() { solveBody(row + 1) })
			m.TakeRet(2)
		}
		m.RetPtr(2)
	}

	m.Call(main, func() {
		runs := scale.Reps(300)
		for r := 0; r < runs; r++ {
			solutions = 0
			m.SetSlotNil(1) // fresh solutions list each run
			m.Call(solve, func() {
				m.SetSlotNil(1)
				m.SetSlotNil(2)
				solveBody(0)
			})
			m.TakeRet(1)
			// Tally: number of solutions and a positional checksum.
			count := m.ListLen(1, 2)
			var sum uint64
			m.SetSlot(2, m.Slot(1))
			for !m.IsNil(2) {
				m.Head(2, 2) // descend into first solution only
				break
			}
			for !m.IsNil(2) {
				sum = sum*31 + m.HeadInt(2)
				m.Tail(2, 2)
			}
			check = check*1000003 + count*1000 + sum%1000
			// Box the run result; the box (and through it the solutions)
			// stays live until the next run completes.
			m.AllocRecord(nqSiteRunBox, 2, 0b01, 2)
			m.InitPtrField(2, 0, 1)
			m.InitIntField(2, 1, count)
		}
	})
	_ = solutions
	return Result{Check: check}
}
