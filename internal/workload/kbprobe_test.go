package workload

import (
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/rt"
)

func TestKBAssocRewriteProbe(t *testing.T) {
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	col := core.NewGenerational(stack, meter, nil, core.GenConfig{
		BudgetWords: 1 << 22, NurseryWords: 8 * 1024,
	})
	m := NewMutator(col, stack, table, meter)
	e := &kbEngine{m: m}
	e.norm = m.PtrFrame("kb_norm", 6)
	e.match = m.PtrFrame("kb_match", 5)
	e.subst = m.PtrFrame("kb_subst", 4)
	e.unify = m.PtrFrame("kb_unify", 5)
	e.eq = m.PtrFrame("kb_eq", 4)
	e.walk = m.PtrFrame("kb_walk", 3)
	e.epoch = 1
	main := m.PtrFrame("kb_main", 8)

	m.Call(main, func() {
		// Build assoc rule: (x·y)·z → x·(y·z), rules list in slot 1.
		m.SetSlotNil(1)
		x, y, z := uint64(kbVarBase), uint64(kbVarBase+1), uint64(kbVarBase+2)
		e.mkLeaf(kbSiteTerm, kbVar, x, 3)
		e.mkLeaf(kbSiteTerm, kbVar, y, 4)
		e.mkMul(kbSiteTerm, 3, 4, 5)
		e.mkLeaf(kbSiteTerm, kbVar, z, 6)
		e.mkMul(kbSiteTerm, 5, 6, 5) // (x·y)·z
		e.mkLeaf(kbSiteTerm, kbVar, y, 4)
		e.mkLeaf(kbSiteTerm, kbVar, z, 6)
		e.mkMul(kbSiteTerm, 4, 6, 6)
		e.mkMul(kbSiteTerm, 3, 6, 6) // x·(y·z)
		m.AllocRecord(kbSiteRule, 2, 0b11, 8)
		m.InitPtrField(8, 0, 5)
		m.InitPtrField(8, 1, 6)
		m.ConsPtr(kbSiteRule, 8, 1, 1)

		// Term: (a·b)·a
		e.mkLeaf(kbSiteTerm, kbConst, kbA, 3)
		e.mkLeaf(kbSiteTerm, kbConst, kbB, 4)
		e.mkMul(kbSiteTerm, 3, 4, 5)
		e.mkLeaf(kbSiteTerm, kbConst, kbA, 4)
		e.mkMul(kbSiteTerm, 5, 4, 3)

		e.budget = 100
		e.budgetRaise = false
		m.CallArgs(e.norm, []int{3, 1}, func() { e.normBody() })
		m.TakeRet(3)

		// Expect a·(b·a): root MUL with left leaf a.
		if e.tag(3) != kbMul {
			t.Fatalf("root tag = %d", e.tag(3))
		}
		m.LoadField(3, 1, 4)
		if e.tag(4) != kbConst || m.LoadFieldInt(4, 1) != kbA {
			t.Fatalf("assoc rewrite did not fire: left tag=%d", e.tag(4))
		}
		if e.budget == 100 {
			t.Fatal("no budget consumed")
		}
	})
}
