package workload

import (
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// Peg solves a peg-jumping game — the 15-hole triangular solitaire — by
// exhaustive search over a *mutable* board of pointer cells. Every move
// and undo rewrites board fields through the write barrier, so the
// sequential store buffer accumulates entries four orders of magnitude
// faster than in any other benchmark (Table 2: 2,974,688 pointer
// updates), making root processing the dominant GC cost (§4). The board
// layout follows the Prolog-to-ML translation style: pegs are heap
// records, holes are nil.
type pegBench struct{}

// Peg's allocation sites.
const (
	pegSiteBoard obj.SiteID = 900 + iota // the board array (long-lived)
	pegSitePeg                           // peg records
	pegSiteMove                          // move-trail cells (die young)
)

func init() { register(pegBench{}) }

func (pegBench) Name() string { return "Peg" }

func (pegBench) Description() string {
	return "Solving a peg-jumping game, using the output of a Prolog to ML translator"
}

func (pegBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		pegSiteBoard: "board pointer array",
		pegSitePeg:   "peg record",
		pegSiteMove:  "move trail cons",
	}
}

func (pegBench) OnlyOldSites() []obj.SiteID { return nil }

// pegMoves lists every (from, over, to) jump on the 15-hole triangle:
//
//	    0
//	   1 2
//	  3 4 5
//	 6 7 8 9
//	10 11 12 13 14
var pegMoves = [][3]uint64{
	{0, 1, 3}, {0, 2, 5}, {1, 3, 6}, {1, 4, 8}, {2, 4, 7}, {2, 5, 9},
	{3, 1, 0}, {3, 4, 5}, {3, 6, 10}, {3, 7, 12}, {4, 7, 11}, {4, 8, 13},
	{5, 2, 0}, {5, 4, 3}, {5, 8, 12}, {5, 9, 14}, {6, 3, 1}, {6, 7, 8},
	{7, 4, 2}, {7, 8, 9}, {8, 4, 1}, {8, 7, 6}, {9, 5, 2}, {9, 8, 7},
	{10, 6, 3}, {10, 11, 12}, {11, 7, 4}, {11, 12, 13}, {12, 7, 3},
	{12, 8, 5}, {12, 11, 10}, {12, 13, 14}, {13, 8, 4}, {13, 12, 11},
	{14, 9, 5}, {14, 13, 12},
}

func (pegBench) Run(m *Mutator, scale Scale) Result {
	// main(board, scratch) → jump(board, trail, scratch) per move.
	main := m.PtrFrame("peg_main", 2)
	jump := m.Frame("peg_jump", rt.PTR(), rt.PTR(), rt.PTR(), rt.NP())

	var check uint64
	runs := scale.Reps(12)
	budget := scale.Reps(2000000) // search-tree nodes per run
	for r := 0; r < runs; r++ {
		hole := r % 15
		wins := uint64(0)
		nodes := 0
		m.Call(main, func() {
			// Fresh board: 15 pointer cells, pegs everywhere but `hole`.
			m.AllocPtrArray(pegSiteBoard, 15, 1)
			for i := 0; i < 15; i++ {
				if i == hole {
					continue
				}
				m.AllocRecord(pegSitePeg, 1, 0, 2)
				m.InitIntField(2, 0, uint64(i))
				m.StorePtrField(1, uint64(i), 2)
			}
			var search func(pegs int)
			search = func(pegs int) {
				nodes++
				if nodes > budget {
					return
				}
				if pegs == 1 {
					wins++
					return
				}
				for _, mv := range pegMoves {
					from, over, to := mv[0], mv[1], mv[2]
					// Legal: peg at from and over, hole at to.
					if m.LoadFieldInt(1, from) == 0 ||
						m.LoadFieldInt(1, over) == 0 ||
						m.LoadFieldInt(1, to) != 0 {
						m.Work(3)
						continue
					}
					m.CallArgs(jump, []int{1, 2}, func() {
						// Do the move: three barriered pointer updates.
						m.LoadField(1, from, 3) // the moving peg
						m.StorePtrField(1, uint64(to), 3)
						m.SetSlotNil(3)
						m.StorePtrField(1, from, 3) // from := hole
						m.StorePtrField(1, over, 3) // over := hole (captured)
						// Record the move on the trail (dies young).
						m.ConsInt(pegSiteMove, from*256+to, 2, 2)
						search(pegs - 1)
						// Undo: three more barriered updates.
						m.LoadField(1, uint64(to), 3)
						m.StorePtrField(1, from, 3)
						m.SetSlotNil(3)
						m.StorePtrField(1, uint64(to), 3)
						m.AllocRecord(pegSitePeg, 1, 0, 3) // captured peg reborn
						m.InitIntField(3, 0, over)
						m.StorePtrField(1, over, 3)
					})
					if nodes > budget {
						return
					}
				}
			}
			m.SetSlotNil(2)
			search(14)
		})
		check = check*1000003 + wins + uint64(nodes%1000)
	}
	return Result{Check: check}
}
