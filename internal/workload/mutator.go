// Package workload implements the paper's eleven SML benchmark programs
// (Table 1) as real algorithms running against the simulated runtime: all
// heap data lives in the arena heap, every call pushes a simulated
// activation record described by a trace table, and every allocation may
// trigger a collection that moves objects.
//
// Because collections move objects, a simulated pointer held in a Go
// local is stale after any allocation. Workload code therefore obeys the
// same discipline compiled code does: live pointers are kept in simulated
// stack slots (or registers) across allocation points and re-read
// afterwards. The Mutator API is deliberately slot-oriented to make this
// discipline natural.
package workload

import (
	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
	"tilgc/internal/trace"
)

// Mutator bundles the collector and the simulated runtime into the
// interface benchmark programs are written against.
type Mutator struct {
	Col   core.Collector
	Stack *rt.Stack
	Table *rt.TraceTable
	Meter *costmodel.Meter
	// Rec, when the harness attaches one, receives the request spans that
	// server workloads emit via Request. Nil for untraced runs (and for
	// batch workloads, which never call Request).
	Rec *trace.Recorder
	// Threads, when the harness attaches a thread set, lets workloads
	// schedule work across simulated mutator threads (SetThread); thread 0
	// wraps Stack. Nil is the single-thread run — workloads must not
	// change behaviour in that case, so T=1 stays byte-identical.
	Threads *rt.ThreadSet
}

// NewMutator creates a mutator over the given collector and runtime.
func NewMutator(col core.Collector, stack *rt.Stack, table *rt.TraceTable, meter *costmodel.Meter) *Mutator {
	return &Mutator{Col: col, Stack: stack, Table: table, Meter: meter}
}

// NumThreads returns the number of simulated mutator threads (1 when no
// thread set is attached).
func (m *Mutator) NumThreads() int {
	if m.Threads == nil {
		return 1
	}
	return m.Threads.Len()
}

// SetThread switches execution to the given thread: subsequent frame,
// slot, and register operations act on that thread's stack, and pointer
// stores route through its barrier state. The switch itself charges
// nothing — the scheduler is part of the simulation harness, not the
// measured program.
func (m *Mutator) SetThread(id int) {
	m.Stack = m.Threads.SetCurrent(id).Stack()
}

// Frame registers a frame layout whose slots beyond slot 0 are described
// by traces built with rt.PTR, rt.NP, rt.SAVE, rt.COMPSLOT, rt.COMPREG.
func (m *Mutator) Frame(name string, slots ...rt.SlotTrace) *rt.FrameInfo {
	full := append([]rt.SlotTrace{rt.NP()}, slots...)
	return m.Table.Register(name, full, nil)
}

// FrameRegs registers a frame layout with explicit register traces.
func (m *Mutator) FrameRegs(name string, regs []rt.SlotTrace, slots ...rt.SlotTrace) *rt.FrameInfo {
	full := append([]rt.SlotTrace{rt.NP()}, slots...)
	return m.Table.Register(name, full, regs)
}

// PtrFrame registers a frame with n pointer slots (slots 1..n).
func (m *Mutator) PtrFrame(name string, n int) *rt.FrameInfo {
	slots := make([]rt.SlotTrace, n)
	for i := range slots {
		slots[i] = rt.PTR()
	}
	return m.Frame(name, slots...)
}

// simException is the panic value used to unwind Go frames in step with a
// simulated raised exception.
type simException struct{}

// Call pushes a simulated frame for fi, runs body, and pops the frame.
// If body raises a simulated exception the simulated frame has already
// been unwound by Raise, so the pop is skipped (the panic propagates to
// the enclosing TryCatch).
func (m *Mutator) Call(fi *rt.FrameInfo, body func()) {
	m.Stack.Call(fi)
	body()
	m.Stack.Return()
}

// CallArgs pushes a frame for fi, copies the values of the caller's slots
// named by srcSlots into the callee's slots 1..len(srcSlots), runs body,
// and pops the frame. The copy is atomic with respect to collection (no
// allocation can intervene), mirroring argument registers being spilled
// into the fresh frame by the prologue.
func (m *Mutator) CallArgs(fi *rt.FrameInfo, srcSlots []int, body func()) {
	vals := make([]uint64, len(srcSlots))
	for i, s := range srcSlots {
		vals[i] = m.Stack.Slot(s)
	}
	m.Stack.Call(fi)
	for i, v := range vals {
		m.Stack.SetSlot(i+1, v)
	}
	body()
	m.Stack.Return()
}

// RetPtr places the pointer in the current frame's slot `slot` into the
// return register (register 0). The caller must TakeRet immediately after
// the call returns: the return register is untraced, which is sound only
// because no allocation can occur between RetPtr and TakeRet.
func (m *Mutator) RetPtr(slot int) { m.Stack.SetReg(0, m.Slot(slot)) }

// RetInt places a raw value in the return register.
func (m *Mutator) RetInt(v uint64) { m.Stack.SetReg(0, v) }

// TakeRet moves the return register into slot dst of the current frame.
func (m *Mutator) TakeRet(dst int) { m.Stack.SetSlot(dst, m.Stack.Reg(0)) }

// TakeRetInt reads the return register as a raw value.
func (m *Mutator) TakeRetInt() uint64 { return m.Stack.Reg(0) }

// TryCatch installs an exception handler owned by the current simulated
// frame, runs body, and on a raised exception runs handler with the
// simulated stack already unwound back to this frame.
func (m *Mutator) TryCatch(body func(), handler func()) {
	m.Stack.PushHandler()
	caught := func() (caught bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(simException); ok {
					caught = true
					return
				}
				panic(r)
			}
		}()
		body()
		return false
	}()
	if caught {
		handler()
	} else {
		m.Stack.PopHandler()
	}
}

// Raise raises a simulated exception: the simulated stack unwinds to the
// most recent handler, and the Go stack unwinds to the matching TryCatch.
func (m *Mutator) Raise() {
	m.Stack.Raise()
	panic(simException{})
}

// Slot reads slot i of the current frame.
func (m *Mutator) Slot(i int) uint64 { return m.Stack.Slot(i) }

// SetSlot writes slot i of the current frame.
func (m *Mutator) SetSlot(i int, v uint64) { m.Stack.SetSlot(i, v) }

// SlotAddr reads slot i as a simulated pointer.
func (m *Mutator) SlotAddr(i int) mem.Addr { return mem.Addr(m.Stack.Slot(i)) }

// SetSlotNil clears pointer slot i.
func (m *Mutator) SetSlotNil(i int) { m.Stack.SetSlot(i, uint64(mem.Nil)) }

// Work charges n units of abstract mutator computation (arithmetic,
// comparisons — everything that is neither memory traffic nor calls).
func (m *Mutator) Work(n uint64) {
	m.Meter.ChargeN(costmodel.Client, costmodel.ClientWork, n)
}

// Request brackets one served request: the meter is snapshotted before
// and after body and the pair is recorded as a request span, so the
// request's simulated-cycle latency — and the share of it spent inside
// collections that landed mid-request — reads directly off the trace.
// With no recorder attached body simply runs; the request costs exactly
// the same cycles either way.
func (m *Mutator) Request(id uint64, body func()) {
	if m.Rec == nil {
		body()
		return
	}
	begin := m.Meter.Snapshot()
	body()
	m.Rec.Request(id, begin, m.Meter.Snapshot())
}

// Aux reads the aux mark byte of the object in slot objSlot (application-
// defined header bits that travel with the object when it is copied).
func (m *Mutator) Aux(objSlot int) uint8 {
	m.Meter.Charge(costmodel.Client, costmodel.MutatorLoad)
	return obj.Aux(m.Col.Heap(), m.SlotAddr(objSlot))
}

// SetAux writes the aux mark byte of the object in slot objSlot.
func (m *Mutator) SetAux(objSlot int, v uint8) {
	m.Meter.Charge(costmodel.Client, costmodel.MutatorStore)
	obj.SetAux(m.Col.Heap(), m.SlotAddr(objSlot), v)
}

// ---- Allocation ------------------------------------------------------------

// AllocRecord allocates a record of n fields with the given pointer mask
// into slot dst. Fields start nil/zero.
func (m *Mutator) AllocRecord(site obj.SiteID, n uint64, mask uint64, dst int) {
	a := m.Col.Alloc(obj.Record, n, site, mask)
	m.Stack.SetSlot(dst, uint64(a))
}

// AllocPtrArray allocates an all-pointer array of n elements into slot dst.
func (m *Mutator) AllocPtrArray(site obj.SiteID, n uint64, dst int) {
	a := m.Col.Alloc(obj.PtrArray, n, site, 0)
	m.Stack.SetSlot(dst, uint64(a))
}

// AllocRawArray allocates an untraced array of n words into slot dst.
func (m *Mutator) AllocRawArray(site obj.SiteID, n uint64, dst int) {
	a := m.Col.Alloc(obj.RawArray, n, site, 0)
	m.Stack.SetSlot(dst, uint64(a))
}

// ---- Field access (slot-oriented) -------------------------------------------

// LoadField loads field idx of the object in slot objSlot into slot dst.
func (m *Mutator) LoadField(objSlot int, idx uint64, dst int) {
	v := m.Col.LoadField(m.SlotAddr(objSlot), idx)
	m.Stack.SetSlot(dst, v)
}

// LoadFieldInt returns field idx of the object in slot objSlot as a raw
// value (safe for non-pointer fields only: the value is consumed
// immediately, not held across an allocation).
func (m *Mutator) LoadFieldInt(objSlot int, idx uint64) uint64 {
	return m.Col.LoadField(m.SlotAddr(objSlot), idx)
}

// StorePtrField stores the pointer in slot srcSlot into field idx of the
// object in slot objSlot, through the write barrier.
func (m *Mutator) StorePtrField(objSlot int, idx uint64, srcSlot int) {
	m.Col.StoreField(m.SlotAddr(objSlot), idx, m.Slot(srcSlot), true)
}

// StoreIntField stores a raw value into field idx of the object in slot
// objSlot (no barrier).
func (m *Mutator) StoreIntField(objSlot int, idx uint64, v uint64) {
	m.Col.StoreField(m.SlotAddr(objSlot), idx, v, false)
}

// InitPtrField initializes field idx of the just-allocated object in slot
// objSlot from slot srcSlot (initializing store: no barrier).
func (m *Mutator) InitPtrField(objSlot int, idx uint64, srcSlot int) {
	m.Col.InitField(m.SlotAddr(objSlot), idx, m.Slot(srcSlot))
}

// InitIntField initializes field idx of the just-allocated object in slot
// objSlot with a raw value.
func (m *Mutator) InitIntField(objSlot int, idx uint64, v uint64) {
	m.Col.InitField(m.SlotAddr(objSlot), idx, v)
}

// ---- List idioms -------------------------------------------------------------
//
// ML list cells are two-field records: [head, tail]. ConsInt builds a cell
// with an unboxed integer head (mask 0b10); ConsPtr builds a cell with a
// pointer head (mask 0b11).

// ConsInt allocates a cons cell with integer head val and tail from slot
// tailSlot, leaving the cell in slot dst. dst may equal tailSlot.
func (m *Mutator) ConsInt(site obj.SiteID, val uint64, tailSlot, dst int) {
	a := m.Col.Alloc(obj.Record, 2, site, 0b10)
	m.Col.InitField(a, 0, val)
	m.Col.InitField(a, 1, m.Slot(tailSlot))
	m.Stack.SetSlot(dst, uint64(a))
}

// ConsPtr allocates a cons cell with pointer head from headSlot and tail
// from tailSlot, leaving the cell in slot dst.
func (m *Mutator) ConsPtr(site obj.SiteID, headSlot, tailSlot, dst int) {
	a := m.Col.Alloc(obj.Record, 2, site, 0b11)
	m.Col.InitField(a, 0, m.Slot(headSlot))
	m.Col.InitField(a, 1, m.Slot(tailSlot))
	m.Stack.SetSlot(dst, uint64(a))
}

// Head loads the head of the list in slot listSlot into slot dst.
func (m *Mutator) Head(listSlot, dst int) { m.LoadField(listSlot, 0, dst) }

// HeadInt returns the integer head of the list in slot listSlot.
func (m *Mutator) HeadInt(listSlot int) uint64 { return m.LoadFieldInt(listSlot, 0) }

// Tail advances slot listSlot to the tail of its list (in place when dst
// == listSlot).
func (m *Mutator) Tail(listSlot, dst int) { m.LoadField(listSlot, 1, dst) }

// IsNil reports whether pointer slot i is the empty list.
func (m *Mutator) IsNil(i int) bool { return m.SlotAddr(i).IsNil() }

// ListLen walks the list in slot listSlot (using scratch as a cursor) and
// returns its length.
func (m *Mutator) ListLen(listSlot, scratch int) uint64 {
	m.Stack.SetSlot(scratch, m.Slot(listSlot))
	var n uint64
	for !m.IsNil(scratch) {
		n++
		m.Tail(scratch, scratch)
	}
	return n
}
