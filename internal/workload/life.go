package workload

import (
	"tilgc/internal/obj"
)

// Life is the game of Life implemented using lists (Reade 1989): the set
// of live cells is a sorted list of packed coordinates; each generation
// builds the multiset of neighbours, sorts it by insertion, and derives
// survivors and births from run lengths. Allocation is torrential, the
// live set is tiny, and all list processing is tail-recursive, so the
// stack stays shallow — the anti-Knuth-Bendix.
type lifeBench struct{}

// Life's allocation sites.
const (
	lifeSiteCell obj.SiteID = 700 + iota // generation cell lists
	lifeSiteNbr                          // neighbour multiset cells
	lifeSiteSort                         // insertion-sort cells
)

func init() { register(lifeBench{}) }

func (lifeBench) Name() string { return "Life" }

func (lifeBench) Description() string {
	return "The game of Life implemented using lists"
}

func (lifeBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		lifeSiteCell: "generation cell cons",
		lifeSiteNbr:  "neighbour multiset cons",
		lifeSiteSort: "insertion sort cons",
	}
}

func (lifeBench) OnlyOldSites() []obj.SiteID { return nil }

// Coordinates are packed x*4096+y with a +2048 bias so the pattern can
// roam negative coordinates.
func lifePack(x, y int) uint64 { return uint64((x+2048)*4096 + (y + 2048)) }

func (lifeBench) Run(m *Mutator, scale Scale) Result {
	// main(gen, next, scratch) → neighbours(gen, acc, scratch)
	//   → insert(list, scratch) → evolve(sorted, gen, out, scratch, scratch2).
	main := m.PtrFrame("life_main", 3)
	nbrs := m.PtrFrame("life_neighbours", 3)
	insert := m.PtrFrame("life_insert", 3)
	evolve := m.PtrFrame("life_evolve", 5)

	var check uint64
	m.Call(main, func() {
		// Initial pattern: a glider plus a blinker plus an R-pentomino
		// fragment — enough population to keep each generation busy.
		m.SetSlotNil(1)
		seed := [][2]int{
			{0, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}, // glider
			{10, 10}, {10, 11}, {10, 12}, // blinker
			{20, 5}, {20, 6}, {21, 4}, {21, 5}, {22, 5}, // R-pentomino
		}
		packed := make([]uint64, len(seed))
		for i, c := range seed {
			packed[i] = lifePack(c[0], c[1])
		}
		// Cons in descending order so the initial generation list is
		// sorted ascending (membership walks rely on it).
		for i := 0; i < len(packed); i++ {
			for j := i + 1; j < len(packed); j++ {
				if packed[j] > packed[i] {
					packed[i], packed[j] = packed[j], packed[i]
				}
			}
		}
		for _, v := range packed {
			m.ConsInt(lifeSiteCell, v, 1, 1)
		}

		gens := scale.Reps(800)
		for g := 0; g < gens; g++ {
			// Neighbour multiset of the current generation.
			m.CallArgs(nbrs, []int{1}, func() {
				m.SetSlotNil(2)
				m.SetSlot(3, m.Slot(1))
				for !m.IsNil(3) {
					xy := m.HeadInt(3)
					x, y := int(xy/4096)-2048, int(xy%4096)-2048
					for dx := -1; dx <= 1; dx++ {
						for dy := -1; dy <= 1; dy++ {
							if dx == 0 && dy == 0 {
								continue
							}
							m.ConsInt(lifeSiteNbr, lifePack(x+dx, y+dy), 2, 2)
						}
					}
					m.Tail(3, 3)
				}
				// Insertion sort into a fresh sorted list (the allocation
				// storm of Reade's formulation).
				m.CallArgs(insert, []int{2}, func() {
					m.SetSlotNil(2)
					for !m.IsNil(1) {
						v := m.HeadInt(1)
						// Rebuild the sorted list with v inserted: walk
						// the prefix into slot 3 reversed, then cons back.
						m.SetSlotNil(3)
						for !m.IsNil(2) && m.HeadInt(2) < v {
							m.ConsInt(lifeSiteSort, m.HeadInt(2), 3, 3)
							m.Tail(2, 2)
						}
						m.ConsInt(lifeSiteSort, v, 2, 2)
						for !m.IsNil(3) {
							m.ConsInt(lifeSiteSort, m.HeadInt(3), 2, 2)
							m.Tail(3, 3)
						}
						m.Tail(1, 1)
						m.Work(4)
					}
					m.RetPtr(2)
				})
				m.TakeRet(2)
				m.RetPtr(2)
			})
			m.TakeRet(2)

			// Derive the next generation from neighbour-run lengths.
			m.CallArgs(evolve, []int{2, 1}, func() {
				m.SetSlotNil(3) // output
				for !m.IsNil(1) {
					v := m.HeadInt(1)
					run := uint64(0)
					for !m.IsNil(1) && m.HeadInt(1) == v {
						run++
						m.Tail(1, 1)
					}
					alive := false
					if run == 2 || run == 3 {
						// Is v currently alive? Walk the sorted gen list.
						m.SetSlot(4, m.Slot(2))
						for !m.IsNil(4) && m.HeadInt(4) < v {
							m.Tail(4, 4)
						}
						member := !m.IsNil(4) && m.HeadInt(4) == v
						alive = run == 3 || member
					}
					if alive {
						m.ConsInt(lifeSiteCell, v, 3, 3)
					}
					m.Work(2)
				}
				// Output built in descending order; reverse to keep the
				// generation sorted ascending.
				m.SetSlotNil(4)
				for !m.IsNil(3) {
					m.ConsInt(lifeSiteCell, m.HeadInt(3), 4, 4)
					m.Tail(3, 3)
				}
				m.RetPtr(4)
			})
			m.TakeRet(1)
			check = check*16777619 ^ m.ListLen(1, 3)
		}
	})
	return Result{Check: check}
}
