package workload

import (
	"math"

	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// FFT multiplies polynomials via the fast Fourier transform. Its heap
// behaviour is the inverse of the list benchmarks: nearly everything is
// large unboxed floating-point arrays (which TIL keeps unboxed and our
// runtime places in the mark-sweep large-object space), records are
// negligible, and the stack never exceeds a handful of frames. GC is a
// vanishing fraction of run time (§4: 0.2%).
type fftBench struct{}

// FFT's allocation sites.
const (
	fftSiteCoeff obj.SiteID = 300 + iota // coefficient arrays
	fftSiteWork                          // transform work arrays
	fftSiteBox                           // result summary record
)

func init() { register(fftBench{}) }

func (fftBench) Name() string { return "FFT" }

func (fftBench) Description() string {
	return "Fast Fourier transform, multiplying polynomials up to degree 65,536"
}

func (fftBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		fftSiteCoeff: "polynomial coefficient array",
		fftSiteWork:  "FFT work array (re/im)",
		fftSiteBox:   "result summary",
	}
}

func (fftBench) OnlyOldSites() []obj.SiteID { return nil }

// fft runs an in-place iterative Cooley-Tukey transform over the float64
// bit patterns stored in the re/im arrays held in slots reSlot and imSlot.
func fftTransform(m *Mutator, reSlot, imSlot int, n uint64, invert bool) {
	getF := func(slot int, i uint64) float64 {
		return math.Float64frombits(m.LoadFieldInt(slot, i))
	}
	setF := func(slot int, i uint64, v float64) {
		m.StoreIntField(slot, i, math.Float64bits(v))
	}
	// Bit reversal permutation.
	for i, j := uint64(1), uint64(0); i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			ri, rj := getF(reSlot, i), getF(reSlot, j)
			setF(reSlot, i, rj)
			setF(reSlot, j, ri)
			ii, ij := getF(imSlot, i), getF(imSlot, j)
			setF(imSlot, i, ij)
			setF(imSlot, j, ii)
		}
		m.Work(2)
	}
	for length := uint64(2); length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if invert {
			ang = -ang
		}
		wr, wi := math.Cos(ang), math.Sin(ang)
		for i := uint64(0); i < n; i += length {
			cwr, cwi := 1.0, 0.0
			for j := uint64(0); j < length/2; j++ {
				ur, ui := getF(reSlot, i+j), getF(imSlot, i+j)
				vr := getF(reSlot, i+j+length/2)*cwr - getF(imSlot, i+j+length/2)*cwi
				vi := getF(reSlot, i+j+length/2)*cwi + getF(imSlot, i+j+length/2)*cwr
				setF(reSlot, i+j, ur+vr)
				setF(imSlot, i+j, ui+vi)
				setF(reSlot, i+j+length/2, ur-vr)
				setF(imSlot, i+j+length/2, ui-vi)
				cwr, cwi = cwr*wr-cwi*wi, cwr*wi+cwi*wr
				m.Work(10)
			}
		}
	}
	if invert {
		for i := uint64(0); i < n; i++ {
			setF(reSlot, i, getF(reSlot, i)/float64(n))
			setF(imSlot, i, getF(imSlot, i)/float64(n))
		}
	}
}

func (fftBench) Run(m *Mutator, scale Scale) Result {
	// main(a, b, scratch) → multiply(a, b, re1, im1, re2, im2).
	main := m.PtrFrame("fft_main", 3)
	mult := m.Frame("fft_multiply",
		rt.PTR(), rt.PTR(), rt.PTR(), rt.PTR(), rt.PTR(), rt.PTR())

	var check uint64
	m.Call(main, func() {
		rounds := scale.Reps(200)
		for round := 0; round < rounds; round++ {
			// Polynomial degree doubles across the paper's sweep; we
			// cycle sizes 512..4096 so every round exercises the LOS.
			deg := uint64(512) << (round % 4)
			n := 2 * deg

			// Deterministic input polynomials.
			m.AllocRawArray(fftSiteCoeff, deg, 1)
			m.AllocRawArray(fftSiteCoeff, deg, 2)
			for i := uint64(0); i < deg; i++ {
				m.StoreIntField(1, i, math.Float64bits(float64((i*7+uint64(round))%13)-6))
				m.StoreIntField(2, i, math.Float64bits(float64((i*11+uint64(round))%17)-8))
			}

			m.CallArgs(mult, []int{1, 2}, func() {
				m.AllocRawArray(fftSiteWork, n, 3)
				m.AllocRawArray(fftSiteWork, n, 4)
				m.AllocRawArray(fftSiteWork, n, 5)
				m.AllocRawArray(fftSiteWork, n, 6)
				for i := uint64(0); i < deg; i++ {
					m.StoreIntField(3, i, m.LoadFieldInt(1, i))
					m.StoreIntField(5, i, m.LoadFieldInt(2, i))
				}
				fftTransform(m, 3, 4, n, false)
				fftTransform(m, 5, 6, n, false)
				// Pointwise product into (re1, im1).
				for i := uint64(0); i < n; i++ {
					ar := math.Float64frombits(m.LoadFieldInt(3, i))
					ai := math.Float64frombits(m.LoadFieldInt(4, i))
					br := math.Float64frombits(m.LoadFieldInt(5, i))
					bi := math.Float64frombits(m.LoadFieldInt(6, i))
					m.StoreIntField(3, i, math.Float64bits(ar*br-ai*bi))
					m.StoreIntField(4, i, math.Float64bits(ar*bi+ai*br))
					m.Work(6)
				}
				fftTransform(m, 3, 4, n, true)
				// Fold rounded product coefficients into the return value.
				var sum uint64
				for i := uint64(0); i < n; i++ {
					c := math.Round(math.Float64frombits(m.LoadFieldInt(3, i)))
					sum = sum*31 + uint64(int64(c)+1<<20)
				}
				m.RetInt(sum)
			})
			check ^= m.TakeRetInt() + uint64(round)
		}
	})
	return Result{Check: check}
}
