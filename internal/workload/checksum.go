package workload

import (
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// Checksum is the Foxnet checksum fragment (Biagioni et al. 1994): 16KB
// buffers are created and checksummed using iterators, 10,000 times.
// Allocation is dominated by the small iterator records the functional
// iteration style creates per chunk; the live set is a single buffer; the
// stack stays four frames deep. Under a generational collector its GC
// cost is almost entirely per-collection overhead (§4).
type checksumBench struct{}

// Checksum's allocation sites.
const (
	csSiteBuffer obj.SiteID = 100 + iota
	csSiteIter
)

func init() { register(checksumBench{}) }

func (checksumBench) Name() string { return "Checksum" }

func (checksumBench) Description() string {
	return "Checksum fragment from the Foxnet; 16KB buffers are created and " +
		"checksummed using iterators 10,000 times"
}

func (checksumBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		csSiteBuffer: "checksum buffer",
		csSiteIter:   "iterator state record",
	}
}

func (checksumBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	csBufferWords = 2048 // 16KB
	csChunkWords  = 4    // iterator step: one 32-byte chunk
)

func (checksumBench) Run(m *Mutator, scale Scale) Result {
	// Frames: main(buf, sum) → checksum(buf, acc, iter) → step(iter, acc).
	main := m.Frame("cs_main", rt.PTR(), rt.NP())
	sum := m.Frame("cs_checksum", rt.PTR(), rt.NP(), rt.PTR())
	step := m.Frame("cs_step", rt.PTR(), rt.NP())

	var check uint64
	m.Call(main, func() {
		iters := scale.Reps(10000)
		for it := 0; it < iters; it++ {
			// A fresh "possibly unaligned" buffer each time.
			m.AllocRawArray(csSiteBuffer, csBufferWords, 1)
			for j := uint64(0); j < csBufferWords; j++ {
				m.StoreIntField(1, j, uint64(it)*2654435761+j*2246822519)
			}
			m.CallArgs(sum, []int{1}, func() {
				m.SetSlot(2, 0)
				// Functional iteration: an iterator record per chunk.
				for off := uint64(0); off < csBufferWords; off += csChunkWords {
					m.AllocRecord(csSiteIter, 2, 0b01, 3)
					m.InitPtrField(3, 0, 1)
					m.InitIntField(3, 1, off)
					m.CallArgs(step, []int{3}, func() {
						// One iterator step: fold the chunk into the sum.
						pos := m.LoadFieldInt(1, 1)
						m.Head(1, 1) // the buffer
						var s uint64
						for k := uint64(0); k < csChunkWords; k++ {
							s += m.LoadFieldInt(1, pos+k)
							m.Work(2)
						}
						m.RetInt(s)
					})
					s := m.TakeRetInt()
					m.SetSlot(2, (m.Slot(2)+s)&0xffffffff+((m.Slot(2)+s)>>32))
				}
				m.RetInt(m.Slot(2))
			})
			check ^= m.TakeRetInt() + uint64(it)
		}
	})
	return Result{Check: check}
}
