package workload

import (
	"tilgc/internal/obj"
)

// serverBench is the request/response server family feeding the SLO
// layer: a deterministic arrival schedule of request bursts against
// long-lived session and cache tables, with per-request allocation graphs
// that die when the request completes. Each request is bracketed by
// Mutator.Request, so a traced run records every request's simulated-cycle
// latency and the pause cycles that landed inside it — the data the
// internal/slo report attributes tail latency from.
//
// Five traffic mixes are registered:
//
//   - ServerSteady: a steady drip of small bursts. Sessions and cache
//     entries live for the whole run, so the session/cache sites are
//     textbook pretenuring candidates and request scratch is textbook
//     die-young data.
//   - ServerBurst: the same total request count arriving in 8x larger
//     bursts with 8x longer idle gaps — the fan-in adversary. Bursts
//     pile allocation into short intervals, so pauses cluster inside
//     bursts and the max-pause-density windows move with them.
//   - ServerChurn: the cache-churn adversary. Every few requests the
//     addressed cache entry is evicted and replaced, so the cache site's
//     early ~100% survival mistrains an offline profile: pretenured
//     replacements become tenured garbage, the same trap PhaseShift
//     springs on the adaptive advisor — but under request traffic.
//   - ServerDrip: the drip-leak adversary. Every few requests the
//     addressed session retains one more cell on a per-session list that
//     survives to the end of the run, so the tenured generation grows
//     monotonically under request traffic — the live set the copying old
//     generation must re-copy at every major, and the footprint the
//     non-moving collectors hold in place.
//   - ServerDripChurn: drip-leak and cache-churn together — the
//     fragmentation adversary. Leaked cells (immortal) and churned cache
//     entries (tenured garbage) allocate interleaved, so the old
//     generation develops exactly the live/dead interleaving that
//     mark-sweep free lists must coalesce and reuse and mark-compact
//     must slide across.
type serverBench struct {
	name   string
	desc   string
	burst  int // requests served back-to-back per arrival
	bursts int // paper-scale number of arrivals (scaled by Repeat)
	gap    int // idle mutator work between arrivals, per burst slot
	churn  int // replace the addressed cache entry every Nth request (0 = never)
	leak   int // retain a cell on the addressed session every Nth request (0 = never)
}

// Server family allocation sites.
const (
	svSiteTable   obj.SiteID = 1300 + iota // session/cache backbone arrays (live whole run)
	svSiteSession                          // session records (live whole run)
	svSiteCache                            // cache entries (whole-run under steady; churned by the adversary)
	svSiteReq                              // per-request scratch record (dies with the request)
	svSiteResp                             // response list cells (die with the request)
	svSiteLeak                             // drip-leaked session cells (live to end of run)
)

func init() {
	register(serverBench{
		name:   "ServerSteady",
		desc:   "Request/response server, steady traffic: small bursts against long-lived session and cache tables, per-request garbage",
		burst:  4,
		bursts: 6000,
		gap:    2000,
	})
	register(serverBench{
		name:   "ServerBurst",
		desc:   "Request/response server, bursty fan-in: the steady mix's request count arriving in 8x larger bursts with matching idle gaps",
		burst:  32,
		bursts: 750,
		gap:    16000,
	})
	register(serverBench{
		name:   "ServerChurn",
		desc:   "Request/response server with a cache-churn adversary: steady traffic that evicts and replaces cache entries, mistraining survival profiles",
		burst:  4,
		bursts: 6000,
		gap:    2000,
		churn:  8,
	})
	register(serverBench{
		name:   "ServerDrip",
		desc:   "Request/response server with a drip-leak adversary: steady traffic whose sessions retain one more cell every few requests, growing the tenured live set monotonically",
		burst:  4,
		bursts: 6000,
		gap:    2000,
		leak:   4,
	})
	register(serverBench{
		name:   "ServerDripChurn",
		desc:   "Request/response server with drip-leak and cache-churn combined: immortal leaked cells interleave with churned tenured garbage, fragmenting a non-moving old generation",
		burst:  4,
		bursts: 6000,
		gap:    2000,
		churn:  8,
		leak:   4,
	})
}

func (s serverBench) Name() string        { return s.name }
func (s serverBench) Description() string { return s.desc }

func (serverBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		svSiteTable:   "session/cache table",
		svSiteSession: "session record",
		svSiteCache:   "cache entry",
		svSiteReq:     "request scratch",
		svSiteResp:    "response cell",
		svSiteLeak:    "leaked session cell",
	}
}

func (serverBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	svSessions      = 192 // session table entries
	svCacheEntries  = 96  // cache table entries
	svSessionFields = 8
	svCacheFields   = 16
	svRespCells     = 24 // response list length per request
)

func (s serverBench) Run(m *Mutator, scale Scale) Result {
	// main(sessions, cache, obj, cursor) and req(sessions, cache, session,
	// cacheEntry, scratch, resp).
	main := m.PtrFrame("sv_main", 4)
	req := m.PtrFrame("sv_req", 6)

	bursts := scale.Reps(s.bursts)
	nt := m.NumThreads()

	var check uint64
	m.Call(main, func() {
		// Long-lived state: the session table and cache, populated before
		// traffic starts. Both backbones and every entry survive to the end
		// of the run (cache entries survive until churned).
		m.AllocPtrArray(svSiteTable, svSessions, 1)
		// Under the drip-leak adversary, session field 2 is a pointer: the
		// head of the per-session leaked-cell list. The mask is gated so the
		// non-leaking mixes allocate the exact all-int session records they
		// always have (their traces stay byte-identical).
		var sessionMask uint64
		if s.leak != 0 {
			sessionMask = 1 << 2
		}
		for i := 0; i < svSessions; i++ {
			m.AllocRecord(svSiteSession, svSessionFields, sessionMask, 3)
			m.InitIntField(3, 0, 0)                          // request counter
			m.InitIntField(3, 1, uint64(i)*2654435761+12289) // session key
			m.StorePtrField(1, uint64(i), 3)
		}
		m.AllocPtrArray(svSiteTable, svCacheEntries, 2)
		for i := 0; i < svCacheEntries; i++ {
			m.AllocRecord(svSiteCache, svCacheFields, 0, 3)
			m.InitIntField(3, 0, uint64(i)*40503+7)
			m.StorePtrField(2, uint64(i), 3)
		}
		m.SetSlotNil(3)

		// With a thread set attached, every worker thread gets a
		// persistent base frame holding the shared session and cache
		// tables, so CallArgs can copy them into request frames on any
		// thread. The table pointers are read on thread 0 and written
		// before any allocation can intervene, so they cannot go stale;
		// from then on each thread's base frame is a root the collector
		// keeps forwarded.
		if nt > 1 {
			sess, cache := m.Slot(1), m.Slot(2)
			for k := 1; k < nt; k++ {
				m.SetThread(k)
				m.Stack.Call(main)
				m.SetSlot(1, sess)
				m.SetSlot(2, cache)
			}
			m.SetThread(0)
		}

		// The arrival schedule: bursts of back-to-back requests separated
		// by idle mutator work. The schedule is a pure function of the mix
		// parameters and the scale, so request ids, arrival cycles, and
		// therefore the whole latency distribution are deterministic.
		// With threads, request r is served on thread r mod T (round
		// robin) and the idle gap runs on thread 0; the cooperative
		// scheduler runs each request to completion, so the request
		// stream — and therefore the digest — is the same at every T.
		var id uint64
		for b := 0; b < bursts; b++ {
			for r := 0; r < s.burst; r++ {
				rid := id
				id++
				if nt > 1 {
					m.SetThread(int(rid % uint64(nt)))
				}
				m.Request(rid, func() {
					m.CallArgs(req, []int{1, 2}, func() {
						check = check*33 + s.serve(m, rid)
					})
				})
			}
			if nt > 1 {
				m.SetThread(0)
			}
			m.Work(uint64(s.gap) * uint64(s.burst))
		}

		// Tear the worker threads down: pop each base frame, then join —
		// joined threads' stacks stop being root sources, but their
		// barrier state still drains at the next collection.
		if nt > 1 {
			for k := 1; k < nt; k++ {
				m.SetThread(k)
				m.Stack.Return()
			}
			m.SetThread(0)
			for k := 1; k < nt; k++ {
				m.Threads.Join(k)
			}
		}

		// Fold the surviving session counters into the self-check: the
		// long-lived state must have seen every request exactly once. Under
		// the drip-leak adversary the retained per-session lists fold in
		// too, so every leaked cell must have survived with its value — the
		// differential check across old-generation collectors.
		for i := 0; i < svSessions; i++ {
			m.LoadField(1, uint64(i), 3)
			check = check*31 + m.LoadFieldInt(3, 0)
			if s.leak != 0 {
				for m.LoadField(3, 2, 4); !m.IsNil(4); m.Tail(4, 4) {
					check = check*7 + m.HeadInt(4)
				}
			}
		}
		m.SetSlotNil(3)
	})
	return Result{Check: check}
}

// serve handles one request inside the req frame: slots 1..2 hold the
// session and cache tables, 3..6 are scratch. The returned value is the
// request's deterministic digest.
func (s serverBench) serve(m *Mutator, id uint64) uint64 {
	// Per-request scratch record: dies when the request completes.
	m.AllocRecord(svSiteReq, 8, 0, 5)
	m.InitIntField(5, 0, id*2246822519+101)

	// Touch the addressed session: bump its request counter.
	sIdx := (id*2654435761 + 11) % svSessions
	m.LoadField(1, sIdx, 3)
	hits := m.LoadFieldInt(3, 0) + 1
	m.StoreIntField(3, 0, hits)
	digest := m.LoadFieldInt(3, 1) ^ hits

	// Cache lookup; the churn adversary replaces the addressed entry
	// every Nth request, turning the previous entry into garbage wherever
	// it was placed.
	cIdx := (id*2246822519 + 5) % svCacheEntries
	if s.churn != 0 && id%uint64(s.churn) == uint64(s.churn)-1 {
		m.AllocRecord(svSiteCache, svCacheFields, 0, 4)
		m.InitIntField(4, 0, id*40503+7)
		m.StorePtrField(2, cIdx, 4)
	}
	m.LoadField(2, cIdx, 4)
	digest = digest*17 + m.LoadFieldInt(4, 0)

	// Drip-leak adversary: retain one more cell on the addressed session's
	// list (field 2). The cell is young at allocation and immortal in
	// practice — a steady drip of promotions interleaved with whatever
	// else the mix tenures.
	if s.leak != 0 && id%uint64(s.leak) == uint64(s.leak)-1 {
		m.LoadField(3, 2, 6)
		m.ConsInt(svSiteLeak, id*2654435761+13, 6, 6)
		m.StorePtrField(3, 2, 6)
	}

	// Build the response: a fresh list of cells folded into the digest and
	// dropped — the per-request garbage the nursery exists for.
	m.SetSlotNil(6)
	for i := 0; i < svRespCells; i++ {
		m.ConsInt(svSiteResp, digest+uint64(i)*97, 6, 6)
		m.Work(2)
	}
	for !m.IsNil(6) {
		digest = digest*13 + m.HeadInt(6)
		m.Tail(6, 6)
	}
	m.SetSlotNil(3)
	m.SetSlotNil(4)
	m.SetSlotNil(5)
	return digest
}
