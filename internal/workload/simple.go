package workload

import (
	"math"

	"tilgc/internal/obj"
)

// Simple is the spherical fluid-dynamics kernel (Ekanadham and Arvind
// 1987): a structured grid updated sweep by sweep. Each sweep allocates a
// fresh set of grid rows (unboxed float arrays that survive until the
// following sweep — reliably old by the time a nursery fills) and a storm
// of per-cell temporary records that die instantly. The row site's near-
// 100% survival is what makes Simple one of the four benchmarks
// pretenuring helps (Table 6: 44% less copying, 12% less GC time).
type simpleBench struct{}

// Simple's allocation sites.
const (
	simpleSiteRow  obj.SiteID = 1100 + iota // grid row arrays (survive a sweep)
	simpleSiteGrid                          // grid spine (pointer array)
	simpleSiteTmp                           // per-cell temporaries (die young)
)

func init() { register(simpleBench{}) }

func (simpleBench) Name() string { return "Simple" }

func (simpleBench) Description() string {
	return "A spherical fluid-dynamics program, run for 4 iterations with grid size of 200"
}

func (simpleBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		simpleSiteRow:  "grid row array",
		simpleSiteGrid: "grid spine",
		simpleSiteTmp:  "cell temporary record",
	}
}

// OnlyOldSites: the grid spine references only row arrays allocated in
// the same sweep from the row site.
func (simpleBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	simpleRows = 96
	simpleCols = 96
)

func (simpleBench) Run(m *Mutator, scale Scale) Result {
	// main(grid, next, row) → sweep(old, new, rowOld, rowNew, rowUp, rowDn, tmp)
	//   → cell(tmp).
	main := m.PtrFrame("simple_main", 3)
	sweep := m.PtrFrame("simple_sweep", 7)
	cell := m.PtrFrame("simple_cell", 1)

	getF := func(slot int, i uint64) float64 {
		return math.Float64frombits(m.LoadFieldInt(slot, i))
	}

	var check uint64
	m.Call(main, func() {
		// Initial grid: spine of row arrays with a radial pressure bump.
		m.AllocPtrArray(simpleSiteGrid, simpleRows, 1)
		for r := 0; r < simpleRows; r++ {
			m.AllocRawArray(simpleSiteRow, simpleCols, 3)
			for c := 0; c < simpleCols; c++ {
				d := float64((r-48)*(r-48)+(c-48)*(c-48)) / 300
				m.StoreIntField(3, uint64(c), math.Float64bits(math.Exp(-d)))
			}
			m.StorePtrField(1, uint64(r), 3)
		}

		sweeps := scale.Reps(600) // the paper's 4 iterations × 50 sub-sweeps
		for s := 0; s < sweeps; s++ {
			m.CallArgs(sweep, []int{1}, func() {
				// Fresh spine for the new state.
				m.AllocPtrArray(simpleSiteGrid, simpleRows, 2)
				for r := 0; r < simpleRows; r++ {
					m.LoadField(1, uint64(r), 3) // old row
					up := r - 1
					if up < 0 {
						up = simpleRows - 1
					}
					dn := (r + 1) % simpleRows
					m.LoadField(1, uint64(up), 5)
					m.LoadField(1, uint64(dn), 6)
					m.AllocRawArray(simpleSiteRow, simpleCols, 4) // new row
					for c := 0; c < simpleCols; c++ {
						lc := c - 1
						if lc < 0 {
							lc = simpleCols - 1
						}
						rc := (c + 1) % simpleCols
						// Per-cell temporary record: the functional style
						// boxes the stencil neighbourhood before combining.
						m.CallArgs(cell, nil, func() {
							m.AllocRecord(simpleSiteTmp, 5, 0, 1)
							m.InitIntField(1, 0, math.Float64bits(0.0))
						})
						v := 0.2 * (getF(3, uint64(c)) + getF(3, uint64(lc)) +
							getF(3, uint64(rc)) + getF(5, uint64(c)) + getF(6, uint64(c)))
						m.StoreIntField(4, uint64(c), math.Float64bits(v))
						m.Work(8)
					}
					m.StorePtrField(2, uint64(r), 4)
				}
				m.RetPtr(2)
			})
			m.TakeRet(1)
			// Fold a probe value into the check (quantized to be exact).
			m.LoadField(1, 48, 3)
			probe := getF(3, 48)
			check = check*31 + uint64(int64(probe*1e9))
		}
	})
	return Result{Check: check}
}
