package workload

import (
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

func newTestMutator(t *testing.T) *Mutator {
	t.Helper()
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	col := core.NewGenerational(stack, meter, nil, core.GenConfig{
		BudgetWords: 1 << 20, NurseryWords: 512,
	})
	return NewMutator(col, stack, table, meter)
}

func TestMutatorCallArgsCopiesValues(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 3)
	m.Call(f, func() {
		m.SetSlot(1, 0xa)
		m.SetSlot(2, 0xb)
		m.CallArgs(f, []int{2, 1}, func() {
			if m.Slot(1) != 0xb || m.Slot(2) != 0xa {
				t.Fatal("args not copied in order")
			}
			if m.Slot(3) != 0 {
				t.Fatal("extra slot not zeroed")
			}
		})
		if m.Slot(1) != 0xa {
			t.Fatal("caller slots disturbed")
		}
	})
}

func TestMutatorRetPtrTakeRet(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 2)
	m.Call(f, func() {
		m.AllocRecord(1, 1, 0, 1)
		m.InitIntField(1, 0, 77)
		m.Call(f, func() {
			m.AllocRecord(1, 1, 0, 1)
			m.InitIntField(1, 0, 88)
			m.RetPtr(1)
		})
		m.TakeRet(2)
		if m.LoadFieldInt(2, 0) != 88 {
			t.Fatal("returned pointer wrong")
		}
		if m.LoadFieldInt(1, 0) != 77 {
			t.Fatal("own slot disturbed")
		}
	})
}

func TestMutatorRetIntTakeRetInt(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 1)
	m.Call(f, func() {
		m.Call(f, func() { m.RetInt(12345) })
		if m.TakeRetInt() != 12345 {
			t.Fatal("int return lost")
		}
	})
}

func TestMutatorTryCatchNested(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 1)
	order := ""
	m.Call(f, func() {
		m.TryCatch(func() {
			m.TryCatch(func() {
				m.Call(f, func() { m.Raise() })
				order += "x" // unreachable
			}, func() {
				order += "inner"
				m.Raise() // re-raise to the outer handler
			})
			order += "y" // unreachable
		}, func() {
			order += "+outer"
		})
	})
	if order != "inner+outer" {
		t.Fatalf("handler order = %q", order)
	}
	if m.Stack.Depth() != 0 || m.Stack.HandlerDepth() != 0 {
		t.Fatalf("stack state corrupted after nested raise: depth=%d handlers=%d",
			m.Stack.Depth(), m.Stack.HandlerDepth())
	}
}

func TestMutatorTryCatchNormalExitPopsHandler(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 1)
	m.Call(f, func() {
		m.TryCatch(func() {}, func() { t.Fatal("handler ran without raise") })
		if m.Stack.HandlerDepth() != 0 {
			t.Fatal("handler leaked")
		}
	})
}

func TestMutatorConsListHelpers(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 3)
	m.Call(f, func() {
		m.SetSlotNil(1)
		for i := uint64(1); i <= 5; i++ {
			m.ConsInt(9, i, 1, 1)
		}
		if n := m.ListLen(1, 2); n != 5 {
			t.Fatalf("ListLen = %d", n)
		}
		if m.HeadInt(1) != 5 {
			t.Fatal("head wrong")
		}
		m.Tail(1, 2)
		if m.HeadInt(2) != 4 {
			t.Fatal("tail wrong")
		}
		// ConsPtr shares structure.
		m.ConsPtr(9, 2, 1, 3)
		m.Head(3, 3)
		if m.HeadInt(3) != 4 {
			t.Fatal("ConsPtr head wrong")
		}
	})
}

func TestMutatorFieldHelpersBarrier(t *testing.T) {
	m := newTestMutator(t)
	g := m.Col.(*core.Generational)
	f := m.PtrFrame("f", 3)
	m.Call(f, func() {
		m.AllocRecord(1, 2, 0b01, 1)
		m.AllocRecord(1, 1, 0, 2)
		before := g.PointerUpdates()
		m.StorePtrField(1, 0, 2) // barriered
		if g.PointerUpdates() != before+1 {
			t.Fatal("pointer store not barriered")
		}
		m.StoreIntField(1, 1, 42) // not barriered
		if g.PointerUpdates() != before+1 {
			t.Fatal("int store barriered")
		}
		m.InitPtrField(1, 0, 2) // initializing: not barriered
		if g.PointerUpdates() != before+1 {
			t.Fatal("init store barriered")
		}
		if m.LoadFieldInt(1, 1) != 42 {
			t.Fatal("field value lost")
		}
		m.LoadField(1, 0, 3)
		if m.SlotAddr(3) != m.SlotAddr(2) {
			t.Fatal("pointer field load wrong")
		}
	})
}

func TestMutatorAuxRoundTrip(t *testing.T) {
	m := newTestMutator(t)
	f := m.PtrFrame("f", 1)
	m.Call(f, func() {
		m.AllocRecord(1, 2, 0, 1)
		if m.Aux(1) != 0 {
			t.Fatal("fresh object aux not zero")
		}
		m.SetAux(1, 201)
		if m.Aux(1) != 201 {
			t.Fatal("aux round trip failed")
		}
		// Aux must survive a collection (it lives in the copied header).
		m.Col.Collect(false)
		if m.Aux(1) != 201 {
			t.Fatal("aux lost in collection")
		}
		// And must not corrupt the object.
		o := obj.Decode(m.Col.Heap(), m.SlotAddr(1))
		if o.Kind != obj.Record || o.Len != 2 || o.Site != 1 {
			t.Fatalf("aux write corrupted header: %+v", o)
		}
	})
}

func TestMutatorWorkCharges(t *testing.T) {
	m := newTestMutator(t)
	before := m.Meter.Get(costmodel.Client)
	m.Work(100)
	if m.Meter.Get(costmodel.Client) != before+100*costmodel.ClientWork {
		t.Fatal("Work charged wrong amount")
	}
}

func TestMutatorFrameRegs(t *testing.T) {
	m := newTestMutator(t)
	regs := make([]rt.SlotTrace, rt.NumRegs)
	regs[2] = rt.PTR()
	f := m.FrameRegs("f", regs, rt.PTR())
	m.Call(f, func() {
		m.AllocRecord(1, 1, 0, 1)
		m.InitIntField(1, 0, 5)
		m.Stack.SetReg(2, m.Slot(1))
		m.Col.Collect(false)
		if mem.Addr(m.Stack.Reg(2)) != m.SlotAddr(1) {
			t.Fatal("register root not forwarded with slot")
		}
	})
}
