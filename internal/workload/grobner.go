package workload

import (
	"tilgc/internal/obj"
)

// Grobner computes a (degree-truncated) Gröbner basis of a set of
// bivariate polynomials over F_32003 with Buchberger's algorithm.
// Polynomials are sorted term lists; the recursive merge in polynomial
// addition gives the moderately deep, frequently-unwinding stack of
// Table 2 (max 106 frames, average 16.5), and the growing basis is the
// benchmark's modest long-lived data.
type grobnerBench struct{}

// Grobner's allocation sites.
const (
	grobSiteTerm  obj.SiteID = 400 + iota // arithmetic result terms (mostly die)
	grobSiteBasis                         // basis spine + kept polynomials
	grobSitePair                          // S-polynomial temporaries
)

func init() { register(grobnerBench{}) }

func (grobnerBench) Name() string { return "Grobner" }

func (grobnerBench) Description() string {
	return "Compute Grobner basis of a set of polynomials up to degree 7"
}

func (grobnerBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		grobSiteTerm:  "polynomial term cons",
		grobSiteBasis: "basis list cons",
		grobSitePair:  "s-polynomial term cons",
	}
}

func (grobnerBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	grobP      = 32003 // coefficient field
	grobMaxDeg = 14    // degree truncation bound
)

// Exponent packing: graded lexicographic order falls out of integer
// comparison on (e1+e2)<<16 | e1.
func grobPack(e1, e2 uint64) uint64 { return (e1+e2)<<16 | e1 }
func grobE1(p uint64) uint64        { return p & 0xffff }
func grobE2(p uint64) uint64        { return (p >> 16) - (p & 0xffff) }

// Term records are [exp(raw), coeff(raw), next(ptr)]: mask 0b100.
const grobTermMask = 0b100

func grobDivides(a, b uint64) bool {
	return grobE1(a) <= grobE1(b) && grobE2(a) <= grobE2(b)
}

func grobModInv(a uint64) uint64 {
	// Fermat: a^(p-2) mod p.
	r, e, b := uint64(1), uint64(grobP-2), a%grobP
	for e > 0 {
		if e&1 == 1 {
			r = r * b % grobP
		}
		b = b * b % grobP
		e >>= 1
	}
	return r
}

func (grobnerBench) Run(m *Mutator, scale Scale) Result {
	// Frames: every polynomial routine gets pointer slots for its term
	// cursors; add is recursive (one frame per merged term).
	main := m.PtrFrame("grob_main", 4)
	add := m.PtrFrame("grob_add", 4)     // p, q, rec-result, scratch
	scl := m.PtrFrame("grob_scale", 3)   // p, rec-result, scratch
	spair := m.PtrFrame("grob_spoly", 6) // f, g, t1, t2, r, scratch
	reduce := m.PtrFrame("grob_reduce", 6)

	// newTerm allocates a term [exp, coeff, tailSlot] into dst.
	newTerm := func(site obj.SiteID, exp, coeff uint64, tailSlot, dst int) {
		a := m.Col.Alloc(obj.Record, 3, site, grobTermMask)
		m.Col.InitField(a, 0, exp)
		m.Col.InitField(a, 1, coeff%grobP)
		m.Col.InitField(a, 2, m.Slot(tailSlot))
		m.SetSlot(dst, uint64(a))
	}

	// addBody merges the polynomials in slots 1 and 2 (descending
	// exponent order), returning the sum via RetPtr. Recursive.
	var addBody func(site obj.SiteID)
	addBody = func(site obj.SiteID) {
		if m.IsNil(1) {
			m.RetPtr(2)
			return
		}
		if m.IsNil(2) {
			m.RetPtr(1)
			return
		}
		ep := m.LoadFieldInt(1, 0)
		eq := m.LoadFieldInt(2, 0)
		m.Work(2)
		switch {
		case ep > eq:
			m.LoadField(1, 2, 3) // p.tail
			m.CallArgs(add, []int{3, 2}, func() { addBody(site) })
			m.TakeRet(3)
			newTerm(site, ep, m.LoadFieldInt(1, 1), 3, 3)
			m.RetPtr(3)
		case eq > ep:
			m.LoadField(2, 2, 3)
			m.CallArgs(add, []int{1, 3}, func() { addBody(site) })
			m.TakeRet(3)
			newTerm(site, eq, m.LoadFieldInt(2, 1), 3, 3)
			m.RetPtr(3)
		default:
			c := (m.LoadFieldInt(1, 1) + m.LoadFieldInt(2, 1)) % grobP
			m.LoadField(1, 2, 3)
			m.LoadField(2, 2, 4)
			m.CallArgs(add, []int{3, 4}, func() { addBody(site) })
			m.TakeRet(3)
			if c != 0 {
				newTerm(site, ep, c, 3, 3)
			}
			m.RetPtr(3)
		}
	}

	// scaleBody multiplies the polynomial in slot 1 by monomial
	// (expDelta, coeff), truncating terms above the degree bound.
	var scaleBody func(site obj.SiteID, expDelta, coeff uint64)
	scaleBody = func(site obj.SiteID, expDelta, coeff uint64) {
		if m.IsNil(1) {
			m.RetPtr(1)
			return
		}
		m.LoadField(1, 2, 2)
		m.CallArgs(scl, []int{2}, func() { scaleBody(site, expDelta, coeff) })
		m.TakeRet(2)
		e := m.LoadFieldInt(1, 0) + expDelta
		if (e >> 16) > grobMaxDeg { // total degree exceeds the bound
			m.RetPtr(2)
			return
		}
		newTerm(site, e, m.LoadFieldInt(1, 1)*coeff, 2, 2)
		m.RetPtr(2)
	}

	var check uint64
	runs := scale.Reps(120)
	for r := 0; r < runs; r++ {
		m.Call(main, func() {
			// Input system (coefficients vary per run to vary the work):
			//   f1 = x^3 y - 2 x y^2 + c
			//   f2 = x^2 y^2 - y^3 + x
			//   f3 = x^4 - x y + c
			c0 := uint64(r%7 + 2)
			build := func(terms [][2]uint64, dst int) {
				m.SetSlotNil(dst)
				for i := len(terms) - 1; i >= 0; i-- {
					newTerm(grobSiteBasis, terms[i][0], terms[i][1], dst, dst)
				}
			}
			build([][2]uint64{{grobPack(3, 1), 1}, {grobPack(1, 2), grobP - 2}, {grobPack(0, 0), c0}}, 1)
			// Basis list: cons of polynomials (slot 2), newest first.
			m.SetSlotNil(2)
			m.ConsPtr(grobSiteBasis, 1, 2, 2)
			build([][2]uint64{{grobPack(2, 2), 1}, {grobPack(0, 3), grobP - 1}, {grobPack(1, 0), 1}}, 1)
			m.ConsPtr(grobSiteBasis, 1, 2, 2)
			build([][2]uint64{{grobPack(4, 0), 1}, {grobPack(1, 1), grobP - 1}, {grobPack(0, 0), c0}}, 1)
			m.ConsPtr(grobSiteBasis, 1, 2, 2)

			basisLen := 3
			// Buchberger: process index pairs (i, j), i < j.
			type pair struct{ i, j int }
			var pairs []pair
			for i := 0; i < basisLen; i++ {
				for j := i + 1; j < basisLen; j++ {
					pairs = append(pairs, pair{i, j})
				}
			}
			// nth loads basis element idx (0 = newest) into dst.
			nth := func(idx, dst int) {
				m.SetSlot(dst, m.Slot(2))
				for k := 0; k < idx; k++ {
					m.Tail(dst, dst)
				}
				m.Head(dst, dst)
			}
			processed := 0
			for len(pairs) > 0 && basisLen < 24 && processed < 200 {
				pr := pairs[0]
				pairs = pairs[1:]
				processed++
				// Positions are "from oldest": translate.
				nth(basisLen-1-pr.i, 3)
				nth(basisLen-1-pr.j, 4)

				// S-polynomial of slots 3 and 4 into slot 1.
				m.CallArgs(spair, []int{3, 4}, func() {
					ef := m.LoadFieldInt(1, 0)
					eg := m.LoadFieldInt(2, 0)
					cf := m.LoadFieldInt(1, 1)
					cg := m.LoadFieldInt(2, 1)
					l1, l2 := grobE1(ef), grobE1(eg)
					m1, m2 := grobE2(ef), grobE2(eg)
					lcm := grobPack(max(l1, l2), max(m1, m2))
					// sp = f·(lcm/lt(f))·cg − g·(lcm/lt(g))·cf
					m.SetSlot(3, m.Slot(1))
					m.CallArgs(scl, []int{3}, func() {
						scaleBody(grobSitePair, lcm-ef, cg)
					})
					m.TakeRet(3)
					m.SetSlot(4, m.Slot(2))
					m.CallArgs(scl, []int{4}, func() {
						scaleBody(grobSitePair, lcm-eg, (grobP-1)*cf%grobP)
					})
					m.TakeRet(4)
					m.CallArgs(add, []int{3, 4}, func() { addBody(grobSitePair) })
					m.TakeRet(5)
					m.RetPtr(5)
				})
				m.TakeRet(1)

				// Reduce slot 1 against the basis (top-reduction loop).
				m.CallArgs(reduce, []int{1, 2}, func() {
					for steps := 0; steps < 120 && !m.IsNil(1); steps++ {
						lead := m.LoadFieldInt(1, 0)
						lc := m.LoadFieldInt(1, 1)
						// Find a basis polynomial whose lead divides ours.
						m.SetSlot(3, m.Slot(2))
						found := false
						for !m.IsNil(3) {
							m.Head(3, 4)
							if grobDivides(m.LoadFieldInt(4, 0), lead) {
								found = true
								break
							}
							m.Tail(3, 3)
							m.Work(2)
						}
						if !found {
							break
						}
						// p := p − g·(lt(p)/lt(g)).
						fl := m.LoadFieldInt(4, 0)
						fc := m.LoadFieldInt(4, 1)
						factor := lc * grobModInv(fc) % grobP
						m.CallArgs(scl, []int{4}, func() {
							scaleBody(grobSiteTerm, lead-fl, (grobP-1)*factor%grobP)
						})
						m.TakeRet(4)
						m.CallArgs(add, []int{1, 4}, func() { addBody(grobSiteTerm) })
						m.TakeRet(1)
					}
					m.RetPtr(1)
				})
				m.TakeRet(1)

				if !m.IsNil(1) {
					// New basis element: normalizing the lead coefficient
					// to 1 also rebuilds every term from the long-lived
					// basis site (the kept copy).
					lc := m.LoadFieldInt(1, 1)
					m.CallArgs(scl, []int{1}, func() {
						scaleBody(grobSiteBasis, 0, grobModInv(lc))
					})
					m.TakeRet(1)
					m.ConsPtr(grobSiteBasis, 1, 2, 2)
					for i := 0; i < basisLen; i++ {
						pairs = append(pairs, pair{i, basisLen})
					}
					basisLen++
				}
			}
			// Check: basis size and lead exponents.
			var sum uint64
			m.SetSlot(3, m.Slot(2))
			for !m.IsNil(3) {
				m.Head(3, 4)
				sum = sum*131 + m.LoadFieldInt(4, 0)
				m.Tail(3, 3)
			}
			check = check*1000003 + uint64(basisLen)*65536 + sum%65536
		})
	}
	return Result{Check: check}
}
