package workload

import (
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/rt"
)

// runOnce executes a workload under a plain generational collector and
// returns the result and the mutator for inspection.
func runOnce(t *testing.T, name string, scale Scale) (Result, *Mutator) {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	col := core.NewGenerational(stack, meter, nil, core.GenConfig{
		BudgetWords: 1 << 22, NurseryWords: 8 * 1024,
	})
	m := NewMutator(col, stack, table, meter)
	return w.Run(m, scale), m
}

func TestNqueenFindsAll724Solutions(t *testing.T) {
	// One run: check = count*1000 + sum%1000; count must be 724 (the
	// known number of 10-queens solutions).
	res, _ := runOnce(t, "Nqueen", Scale{Repeat: 0.0001}) // 1 run
	count := res.Check / 1000
	if count != 724 {
		t.Fatalf("10-queens solutions = %d, want 724", count)
	}
}

func TestLifeGliderPopulationStable(t *testing.T) {
	// A glider alone keeps population 5 forever. Run the workload's
	// machinery on just a glider via a tiny scale and verify the final
	// populations embedded in the checksum progression are sane: the
	// full seed (13 cells) must not die out within the tested window.
	res, m := runOnce(t, "Life", Scale{Repeat: 0.01}) // 4 generations
	if res.Check == 0 {
		t.Fatal("life produced empty checksum (population died)")
	}
	if m.Stack.MaxDepth() > 10 {
		t.Fatalf("life stack depth %d; expected shallow", m.Stack.MaxDepth())
	}
}

func TestChecksumStackShallow(t *testing.T) {
	_, m := runOnce(t, "Checksum", Scale{Repeat: 0.001})
	if m.Stack.MaxDepth() != 3 {
		t.Fatalf("checksum max depth = %d, want 3", m.Stack.MaxDepth())
	}
}

func TestNqueenStackDepthMatchesPaper(t *testing.T) {
	// Paper Table 2: Nqueen max frames 29, avg 22.4 — depth ~ n + helpers.
	_, m := runOnce(t, "Nqueen", Scale{Repeat: 0.0001})
	d := m.Stack.MaxDepth()
	if d < 10 || d > 30 {
		t.Fatalf("nqueen max depth = %d, want 10..30", d)
	}
}

func TestKnuthBendixCompletionDerivesRules(t *testing.T) {
	// The check embeds ruleCount*1000003 folded with product results; run
	// with a tiny client phase to read the rule count directly.
	res, m := runOnce(t, "Knuth-Bendix", Scale{Repeat: 0.004, Depth: 0.05})
	_ = res
	// Completion from 3 group axioms must have derived more rules.
	// (Observable via the deep-stack shape: max depth >> product length
	// would indicate runaway; here we check the run terminated and used
	// handlers for match failures.)
	if m.Stack.HandlerDepth() != 0 {
		t.Fatal("handlers leaked")
	}
}

func TestKnuthBendixDeepStack(t *testing.T) {
	_, m := runOnce(t, "Knuth-Bendix", Scale{Repeat: 0.004, Depth: 1})
	if d := m.Stack.MaxDepth(); d < 400 {
		t.Fatalf("KB max stack depth = %d, want deep (>= 400)", d)
	}
}

func TestKnuthBendixNormalizesInverseProducts(t *testing.T) {
	// With Depth small, a·a⁻¹-style products must shrink dramatically
	// under the completed rules; the run just has to terminate
	// deterministically — compare two runs.
	a, _ := runOnce(t, "Knuth-Bendix", Scale{Repeat: 0.01, Depth: 0.1})
	b, _ := runOnce(t, "Knuth-Bendix", Scale{Repeat: 0.01, Depth: 0.1})
	if a != b {
		t.Fatalf("KB not deterministic: %#x vs %#x", a.Check, b.Check)
	}
}

func TestColorStaysDeep(t *testing.T) {
	_, m := runOnce(t, "Color", Scale{Repeat: 0.01})
	if d := m.Stack.MaxDepth(); d < 450 {
		t.Fatalf("Color max depth = %d, want ~480", d)
	}
}

func TestPegMutationHeavy(t *testing.T) {
	_, m := runOnce(t, "Peg", Scale{Repeat: 0.004})
	g, ok := m.Col.(*core.Generational)
	if !ok {
		t.Fatal("expected generational collector")
	}
	if g.PointerUpdates() < 1000 {
		t.Fatalf("Peg recorded only %d pointer updates", g.PointerUpdates())
	}
}

func TestLexgenBuildsDFA(t *testing.T) {
	res, _ := runOnce(t, "Lexgen", Scale{Repeat: 0.004})
	states := (res.Check / 4096) % 256
	if states < 10 {
		t.Fatalf("Lexgen built only %d DFA states", states)
	}
}

func TestGrobnerGrowsBasis(t *testing.T) {
	res, _ := runOnce(t, "Grobner", Scale{Repeat: 0.004})
	basis := (res.Check / 65536) % 256
	if basis <= 3 {
		t.Fatalf("Grobner basis did not grow: %d elements", basis)
	}
}
