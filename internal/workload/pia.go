package workload

import (
	"math"

	"tilgc/internal/obj"
)

// PIA is the Perspective Inversion Algorithm (Waugh, McAndrew, Michaelson
// 1990): deciding the location of an object in a perspective video image.
// Each video frame allocates transformation matrices and point arrays
// that stay live for a short window of frames and then die — data that
// survives into the tenured generation and promptly becomes garbage
// there. This is the allocation behaviour §4 singles out as hostile to
// generational collection: at small k the collector majors constantly
// (GC time 71s at k=1.5 versus 4.2s at k=4).
type piaBench struct{}

// PIA's allocation sites.
const (
	piaSitePoints obj.SiteID = 1000 + iota // point coordinate arrays
	piaSiteMatrix                          // 4x4 transform matrices
	piaSiteFrame                           // per-frame result record
	piaSiteWindow                          // sliding window spine
	piaSiteScan                            // scanline temporaries
)

func init() { register(piaBench{}) }

func (piaBench) Name() string { return "PIA" }

func (piaBench) Description() string {
	return "The Perspective Inversion Algorithm deciding the location of an " +
		"object in a perspective video image"
}

func (piaBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		piaSitePoints: "point coordinate array",
		piaSiteMatrix: "transform matrix",
		piaSiteFrame:  "frame result record",
		piaSiteWindow: "sliding window cons",
		piaSiteScan:   "scanline temporary",
	}
}

func (piaBench) OnlyOldSites() []obj.SiteID { return nil }

const (
	piaWindow = 8   // frames kept live (then tenured garbage)
	piaPoints = 640 // points per video frame
	piaDepth  = 110 // recursive scanline pass depth
)

func (piaBench) Run(m *Mutator, scale Scale) Result {
	// main(window, frame, scratch) → frameFn(pts, mat, res, scratch)
	//   → scan(pts, tmp) recursive per scanline.
	main := m.PtrFrame("pia_main", 3)
	frameFn := m.PtrFrame("pia_frame", 4)
	scan := m.PtrFrame("pia_scan", 2)

	getF := func(slot int, i uint64) float64 {
		return math.Float64frombits(m.LoadFieldInt(slot, i))
	}

	var check uint64
	m.Call(main, func() {
		m.SetSlotNil(1) // the sliding window
		frames := scale.Reps(4000)
		for f := 0; f < frames; f++ {
			m.CallArgs(frameFn, nil, func() {
				// Observed points for this video frame.
				m.AllocRawArray(piaSitePoints, piaPoints*2, 1)
				for i := uint64(0); i < piaPoints; i++ {
					x := float64(i%32) - 16
					y := float64(i/32) - 10
					z := 40.0 + float64((i*7+uint64(f))%9)
					m.StoreIntField(1, 2*i, math.Float64bits(x/z))
					m.StoreIntField(1, 2*i+1, math.Float64bits(y/z))
				}
				// Candidate inverse-perspective transform.
				m.AllocRawArray(piaSiteMatrix, 16, 2)
				ang := float64(f%360) * math.Pi / 180
				c, s := math.Cos(ang), math.Sin(ang)
				for i, v := range [16]float64{
					c, -s, 0, 0, s, c, 0, 0, 0, 0, 1, 40, 0, 0, 0, 1,
				} {
					m.StoreIntField(2, uint64(i), math.Float64bits(v))
				}
				// Recursive scanline refinement: one activation record
				// per scanline pass (the paper's 120-frame average depth).
				var residual float64
				var descend func(d int)
				descend = func(d int) {
					if d == piaDepth {
						return
					}
					m.CallArgs(scan, []int{1}, func() {
						m.AllocRecord(piaSiteScan, 3, 0b01, 2)
						m.InitPtrField(2, 0, 1)
						m.InitIntField(2, 1, uint64(d))
						i := uint64(d*5) % piaPoints
						u := getF(1, 2*i)
						v := getF(1, 2*i+1)
						residual += math.Abs(u*c + v*s)
						m.Work(12)
						descend(d + 1)
					})
				}
				descend(0)
				// Frame result: matrix + fitted residual.
				m.AllocRecord(piaSiteFrame, 3, 0b011, 3)
				m.InitPtrField(3, 0, 1)
				m.InitPtrField(3, 1, 2)
				m.InitIntField(3, 2, math.Float64bits(residual))
				m.RetPtr(3)
			})
			m.TakeRet(2)
			// Slide the window: keep the last piaWindow frame results.
			m.ConsPtr(piaSiteWindow, 2, 1, 1)
			m.SetSlot(3, m.Slot(1))
			for i := 0; i < piaWindow-1 && !m.IsNil(3); i++ {
				m.Tail(3, 3)
			}
			if !m.IsNil(3) {
				m.SetSlotNil(2)
				m.StorePtrField(3, 1, 2) // truncate: older frames die
			}
			// Fold the newest residual into the check.
			m.Head(1, 3)
			check = check*31 + m.LoadFieldInt(3, 2)%1000003
		}
	})
	return Result{Check: check}
}
