package workload

import (
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/rt"
)

// The shape tests guard the Table 2 characteristics the paper's results
// rest on. If a workload refactor drifts away from the paper's profile,
// these fail before the experiment tables silently change shape.

type shapeOut struct {
	stats   core.GCStats
	updates uint64
}

func measureShape(t *testing.T, name string, scale Scale) shapeOut {
	t.Helper()
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	col := core.NewGenerational(stack, meter, nil, core.GenConfig{
		BudgetWords: 1 << 22, NurseryWords: 8 * 1024,
	})
	m := NewMutator(col, stack, table, meter)
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(m, scale)
	return shapeOut{stats: *col.Stats(), updates: col.PointerUpdates()}
}

func TestShapeDeepStacksUnwindRarely(t *testing.T) {
	// Paper Table 2: for KB and Color, new frames per GC are ~10% of the
	// average depth ("most deep stacks unwind very infrequently").
	for _, name := range []string{"Knuth-Bendix", "Color"} {
		s := measureShape(t, name, Scale{Repeat: 0.004, Depth: 0.6})
		if s.stats.NumGC < 5 {
			t.Fatalf("%s: too few GCs (%d) to measure churn", name, s.stats.NumGC)
		}
		avg := s.stats.AvgDepthAtGC()
		churn := s.stats.AvgNewFrames()
		if churn > avg/3 {
			t.Errorf("%s: churn %0.1f of avg depth %0.1f exceeds 1/3 — deep stack no longer stable",
				name, churn, avg)
		}
		if avg < 100 {
			t.Errorf("%s: avg depth %0.1f — no longer a deep-stack benchmark", name, avg)
		}
	}
}

func TestShapeShallowBenchmarksStayShallow(t *testing.T) {
	// Checksum, FFT, Life must not grow deep stacks (Table 2: 4-6 avg).
	for _, name := range []string{"Checksum", "FFT", "Life"} {
		s := measureShape(t, name, Scale{Repeat: 0.002})
		if s.stats.MaxDepthAtGC > 12 {
			t.Errorf("%s: max depth at GC = %d, expected shallow", name, s.stats.MaxDepthAtGC)
		}
	}
}

func TestShapePegMutationDominates(t *testing.T) {
	// Peg's pointer-update count must dwarf every other benchmark's
	// (Table 2: four orders of magnitude).
	peg := measureShape(t, "Peg", Scale{Repeat: 0.004})
	if peg.updates < 1000 {
		t.Fatalf("Peg updates = %d; mutation storm gone", peg.updates)
	}
	for _, name := range []string{"Knuth-Bendix", "Life", "Nqueen", "Checksum"} {
		o := measureShape(t, name, Scale{Repeat: 0.004, Depth: 0.3})
		if o.updates*100 > peg.updates {
			t.Errorf("%s updates %d within 100x of Peg's %d", name, o.updates, peg.updates)
		}
	}
}

func TestShapeArrayVsRecordMix(t *testing.T) {
	// FFT is array-dominated; Life and KB are record-dominated (Table 2).
	fft := measureShape(t, "FFT", Scale{Repeat: 0.002})
	if fft.stats.ArrayBytes < 10*fft.stats.RecordBytes {
		t.Errorf("FFT records %d vs arrays %d — should be array-dominated",
			fft.stats.RecordBytes, fft.stats.ArrayBytes)
	}
	for _, name := range []string{"Life", "Knuth-Bendix", "Color"} {
		s := measureShape(t, name, Scale{Repeat: 0.002, Depth: 0.3})
		if s.stats.RecordBytes < 10*s.stats.ArrayBytes {
			t.Errorf("%s records %d vs arrays %d — should be record-dominated",
				name, s.stats.RecordBytes, s.stats.ArrayBytes)
		}
	}
}

func TestShapePIAUsesWindowedLifetimes(t *testing.T) {
	// PIA's live set must stay bounded (the sliding window) while
	// allocation grows — the tenured-dies-fast behaviour of §4.
	small := measureShape(t, "PIA", Scale{Repeat: 0.005})
	large := measureShape(t, "PIA", Scale{Repeat: 0.02})
	if large.stats.BytesAllocated < 3*small.stats.BytesAllocated {
		t.Fatalf("PIA allocation did not scale: %d vs %d",
			large.stats.BytesAllocated, small.stats.BytesAllocated)
	}
	if large.stats.MaxLiveBytes > 3*small.stats.MaxLiveBytes+1<<16 {
		t.Errorf("PIA live set grew with run length: %d vs %d — window broken",
			large.stats.MaxLiveBytes, small.stats.MaxLiveBytes)
	}
}
