package workload

import (
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// KnuthBendix is an implementation of the Knuth-Bendix completion
// algorithm running on group axioms, followed by normalization of long
// generator products with the completed system. Terms are heap records;
// matching, substitution, unification, critical-pair extraction, and
// innermost normalization are all recursive, so normalizing a deep
// left-associated product keeps thousands of activation records live
// across many collections — the paper's flagship deep-stack benchmark
// (Table 2: max 4234 frames, average 1336.5, but only 116.9 new frames
// per collection; Table 5: stack scanning is 76% of GC cost, cut 67.5%
// by stack markers). The accumulated rule set and retained normal forms
// are the long-lived data that make pretenuring effective (Table 6: 71%
// less copying). Match and unification failures raise simulated ML
// exceptions, exercising the §5 watermark machinery.
type kbBench struct{}

// Knuth-Bendix's allocation sites.
const (
	kbSiteTerm  obj.SiteID = 500 + iota // rewriting temporaries (die young)
	kbSiteSubst                         // substitution bindings (die young)
	kbSiteKeep                          // kept rule/normal-form terms (long-lived)
	kbSiteRule                          // rule records and rule-list spine (long-lived)
	kbSiteProd                          // product construction cells
)

func init() { register(kbBench{}) }

func (kbBench) Name() string { return "Knuth-Bendix" }

func (kbBench) Description() string {
	return "An implementation of the Knuth-Bendix completion algorithm"
}

func (kbBench) Sites() map[obj.SiteID]string {
	return map[obj.SiteID]string{
		kbSiteTerm:  "rewrite temporary term",
		kbSiteSubst: "substitution binding",
		kbSiteKeep:  "kept term (rules, normal forms)",
		kbSiteRule:  "rule record / list spine",
		kbSiteProd:  "product construction",
	}
}

// OnlyOldSites: kept terms reference only kept terms (rules are deep-
// copied on acceptance), mirroring the paper's manual analysis for
// pretenured data that needs no region scan.
func (kbBench) OnlyOldSites() []obj.SiteID {
	return []obj.SiteID{kbSiteKeep, kbSiteRule}
}

// Term tags.
const (
	kbConst uint64 = iota // [tag, id]           no pointer fields
	kbVar                 // [tag, id]           no pointer fields
	kbInv                 // [tag, child]        mask 0b10
	kbMul                 // [tag, left, right]  mask 0b110
)

// Constant ids; variables use ids ≥ kbVarBase.
const (
	kbE       = 0 // group identity
	kbA       = 1
	kbB       = 2
	kbVarBase = 1000
)

// kbEngine carries the registered frames and the recursive bodies.
type kbEngine struct {
	m *Mutator

	norm, match, subst, unify, eq, walk, cp *rt.FrameInfo

	budget      int  // rewrite steps left for the current normalization
	budgetRaise bool // raise (instead of stopping) when exhausted

	// epoch stamps terms known to be in normal form with respect to the
	// current rule set (via the object aux byte); adding a rule bumps the
	// epoch, invalidating all stamps. Real term-rewriting systems memoize
	// normal forms the same way.
	epoch uint8
}

func (e *kbEngine) tag(slot int) uint64 { return e.m.LoadFieldInt(slot, 0) }

// Term constructors (dst must differ from the source slots only when the
// helper says so).

func (e *kbEngine) mkLeaf(site obj.SiteID, tg, id uint64, dst int) {
	e.m.AllocRecord(site, 2, 0, dst)
	e.m.InitIntField(dst, 0, tg)
	e.m.InitIntField(dst, 1, id)
}

func (e *kbEngine) mkInv(site obj.SiteID, child, dst int) {
	a := e.m.Col.Alloc(obj.Record, 2, site, 0b10)
	e.m.Col.InitField(a, 0, kbInv)
	e.m.Col.InitField(a, 1, e.m.Slot(child))
	e.m.SetSlot(dst, uint64(a))
}

func (e *kbEngine) mkMul(site obj.SiteID, l, r, dst int) {
	a := e.m.Col.Alloc(obj.Record, 3, site, 0b110)
	e.m.Col.InitField(a, 0, kbMul)
	e.m.Col.InitField(a, 1, e.m.Slot(l))
	e.m.Col.InitField(a, 2, e.m.Slot(r))
	e.m.SetSlot(dst, uint64(a))
}

// ---- Structural equality ----------------------------------------------------

// eqBody compares the terms in slots 1 and 2 (frame: a, b, ca, cb).
func (e *kbEngine) eqBody(out *bool) {
	m := e.m
	ta, tb := e.tag(1), e.tag(2)
	m.Work(2)
	if ta != tb {
		*out = false
		return
	}
	switch ta {
	case kbConst, kbVar:
		*out = m.LoadFieldInt(1, 1) == m.LoadFieldInt(2, 1)
	case kbInv:
		m.LoadField(1, 1, 3)
		m.LoadField(2, 1, 4)
		m.CallArgs(e.eq, []int{3, 4}, func() { e.eqBody(out) })
	case kbMul:
		m.LoadField(1, 1, 3)
		m.LoadField(2, 1, 4)
		sub := false
		m.CallArgs(e.eq, []int{3, 4}, func() { e.eqBody(&sub) })
		if !sub {
			*out = false
			return
		}
		m.LoadField(1, 2, 3)
		m.LoadField(2, 2, 4)
		m.CallArgs(e.eq, []int{3, 4}, func() { e.eqBody(out) })
	}
}

func (e *kbEngine) eqTerms(aSlot, bSlot int) bool {
	out := false
	e.m.CallArgs(e.eq, []int{aSlot, bSlot}, func() { e.eqBody(&out) })
	return out
}

// ---- Matching ----------------------------------------------------------------
//
// matchBody matches the pattern in slot 1 against the term in slot 2 under
// the substitution in slot 3 (assoc list of [varid, term, next]); it
// RAISES on mismatch (exception Match) and returns the extended
// substitution via RetPtr. Frame slots: pat, term, σ, s4, s5.

func (e *kbEngine) matchBody() {
	m := e.m
	m.Work(2)
	switch e.tag(1) {
	case kbVar:
		id := m.LoadFieldInt(1, 1)
		// Look id up in σ.
		m.SetSlot(4, m.Slot(3))
		for !m.IsNil(4) {
			if m.LoadFieldInt(4, 0) == id {
				m.LoadField(4, 1, 4)
				if !e.eqTerms(4, 2) {
					m.Raise()
				}
				m.RetPtr(3)
				return
			}
			m.LoadField(4, 2, 4)
		}
		// Unbound: extend σ.
		a := m.Col.Alloc(obj.Record, 3, kbSiteSubst, 0b110)
		m.Col.InitField(a, 0, id)
		m.Col.InitField(a, 1, m.Slot(2))
		m.Col.InitField(a, 2, m.Slot(3))
		m.SetSlot(3, uint64(a))
		m.RetPtr(3)
	case kbConst:
		if e.tag(2) != kbConst || m.LoadFieldInt(1, 1) != m.LoadFieldInt(2, 1) {
			m.Raise()
		}
		m.RetPtr(3)
	case kbInv:
		if e.tag(2) != kbInv {
			m.Raise()
		}
		m.LoadField(1, 1, 4)
		m.LoadField(2, 1, 5)
		m.CallArgs(e.match, []int{4, 5, 3}, func() { e.matchBody() })
		m.TakeRet(3)
		m.RetPtr(3)
	case kbMul:
		if e.tag(2) != kbMul {
			m.Raise()
		}
		m.LoadField(1, 1, 4)
		m.LoadField(2, 1, 5)
		m.CallArgs(e.match, []int{4, 5, 3}, func() { e.matchBody() })
		m.TakeRet(3)
		m.LoadField(1, 2, 4)
		m.LoadField(2, 2, 5)
		m.CallArgs(e.match, []int{4, 5, 3}, func() { e.matchBody() })
		m.TakeRet(3)
		m.RetPtr(3)
	}
}

// ---- Substitution ------------------------------------------------------------
//
// substBody instantiates the term in slot 1 under σ in slot 2, building at
// `site`, returning via RetPtr. Frame slots: t, σ, l, r.
//
// deep selects how variable bindings are applied. A substitution produced
// by *matching* binds rule variables to literal subterms of the rewritten
// term and must be applied shallowly (the bindings may themselves contain
// variables of the term, which are NOT in σ's domain conceptually — deep
// application would capture them). A substitution produced by
// *unification* is triangular — bindings can contain variables bound
// elsewhere in σ — and must be applied to a fixpoint; the occurs check
// guarantees termination.

func (e *kbEngine) substBody(site obj.SiteID, deep bool) {
	m := e.m
	m.Work(1)
	switch e.tag(1) {
	case kbConst:
		m.RetPtr(1)
	case kbVar:
		id := m.LoadFieldInt(1, 1)
		m.SetSlot(3, m.Slot(2))
		for !m.IsNil(3) {
			if m.LoadFieldInt(3, 0) == id {
				m.LoadField(3, 1, 3)
				if deep {
					m.CallArgs(e.subst, []int{3, 2}, func() { e.substBody(site, true) })
					m.TakeRet(3)
				}
				m.RetPtr(3)
				return
			}
			m.LoadField(3, 2, 3)
		}
		m.RetPtr(1) // unbound variables stay
	case kbInv:
		m.LoadField(1, 1, 3)
		m.CallArgs(e.subst, []int{3, 2}, func() { e.substBody(site, deep) })
		m.TakeRet(3)
		e.mkInv(site, 3, 3)
		m.RetPtr(3)
	case kbMul:
		m.LoadField(1, 1, 3)
		m.CallArgs(e.subst, []int{3, 2}, func() { e.substBody(site, deep) })
		m.TakeRet(3)
		m.LoadField(1, 2, 4)
		m.CallArgs(e.subst, []int{4, 2}, func() { e.substBody(site, deep) })
		m.TakeRet(4)
		e.mkMul(site, 3, 4, 3)
		m.RetPtr(3)
	}
}

// ---- Copying, renaming, measuring ---------------------------------------------

// copyBody deep-copies the term in slot 1 at `site`, adding varDelta to
// variable ids. Frame slots: t, l, r.
func (e *kbEngine) copyBody(site obj.SiteID, varDelta uint64) {
	m := e.m
	switch e.tag(1) {
	case kbConst:
		e.mkLeaf(site, kbConst, m.LoadFieldInt(1, 1), 2)
		m.RetPtr(2)
	case kbVar:
		e.mkLeaf(site, kbVar, m.LoadFieldInt(1, 1)+varDelta, 2)
		m.RetPtr(2)
	case kbInv:
		m.LoadField(1, 1, 2)
		m.CallArgs(e.walk, []int{2}, func() { e.copyBody(site, varDelta) })
		m.TakeRet(2)
		e.mkInv(site, 2, 2)
		m.RetPtr(2)
	case kbMul:
		m.LoadField(1, 1, 2)
		m.CallArgs(e.walk, []int{2}, func() { e.copyBody(site, varDelta) })
		m.TakeRet(2)
		m.LoadField(1, 2, 3)
		m.CallArgs(e.walk, []int{3}, func() { e.copyBody(site, varDelta) })
		m.TakeRet(3)
		e.mkMul(site, 2, 3, 2)
		m.RetPtr(2)
	}
}

// measure computes (weight, leftSpineDepth, varMask) of the term in the
// given slot of the CURRENT frame, walking with simulated frames.
func (e *kbEngine) measure(slot int) (weight, spine int, vars uint64) {
	m := e.m
	var body func(depth int)
	body = func(depth int) {
		weight++
		m.Work(1)
		switch e.tag(1) {
		case kbVar:
			vars |= 1 << (m.LoadFieldInt(1, 1) - kbVarBase)
			if depth+1 > spine {
				spine = depth + 1
			}
		case kbConst:
			if depth+1 > spine {
				spine = depth + 1
			}
		case kbInv:
			m.LoadField(1, 1, 2)
			m.CallArgs(e.walk, []int{2}, func() { body(depth) })
		case kbMul:
			m.LoadField(1, 1, 2)
			m.CallArgs(e.walk, []int{2}, func() { body(depth + 1) })
			m.LoadField(1, 2, 2)
			m.CallArgs(e.walk, []int{2}, func() { body(depth) })
		}
	}
	m.CallArgs(e.walk, []int{slot}, func() { body(0) })
	return weight, spine, vars
}

// ---- Unification ---------------------------------------------------------------
//
// unifyBody unifies slots 1 and 2 under σ in slot 3, raising on clash or
// occurs-check failure; returns σ' via RetPtr. Frame: s, t, σ, s4, s5.

func (e *kbEngine) deref(slot, sigmaSlot int) {
	m := e.m
	for e.tag(slot) == kbVar {
		id := m.LoadFieldInt(slot, 1)
		found := false
		m.SetSlot(5, m.Slot(sigmaSlot))
		for !m.IsNil(5) {
			if m.LoadFieldInt(5, 0) == id {
				m.LoadField(5, 1, slot)
				found = true
				break
			}
			m.LoadField(5, 2, 5)
		}
		if !found {
			return
		}
	}
}

// occurs reports whether variable id occurs in the term in `slot`
// (after derefing through σ in sigmaSlot).
func (e *kbEngine) occurs(id uint64, slot, sigmaSlot int) bool {
	m := e.m
	out := false
	var body func()
	body = func() {
		e.deref(1, 2)
		switch e.tag(1) {
		case kbVar:
			if m.LoadFieldInt(1, 1) == id {
				out = true
			}
		case kbInv:
			m.LoadField(1, 1, 3)
			m.CallArgs(e.unify, []int{3, 2}, body)
		case kbMul:
			if !out {
				m.LoadField(1, 1, 3)
				m.CallArgs(e.unify, []int{3, 2}, body)
			}
			if !out {
				m.LoadField(1, 2, 3)
				m.CallArgs(e.unify, []int{3, 2}, body)
			}
		}
	}
	m.CallArgs(e.unify, []int{slot, sigmaSlot}, body)
	return out
}

func (e *kbEngine) unifyBody() {
	m := e.m
	m.Work(2)
	e.deref(1, 3)
	e.deref(2, 3)
	bind := func(varSlot, termSlot int) {
		id := m.LoadFieldInt(varSlot, 1)
		if e.tag(termSlot) == kbVar && m.LoadFieldInt(termSlot, 1) == id {
			m.RetPtr(3)
			return
		}
		if e.occurs(id, termSlot, 3) {
			m.Raise()
		}
		a := m.Col.Alloc(obj.Record, 3, kbSiteSubst, 0b110)
		m.Col.InitField(a, 0, id)
		m.Col.InitField(a, 1, m.Slot(termSlot))
		m.Col.InitField(a, 2, m.Slot(3))
		m.SetSlot(3, uint64(a))
		m.RetPtr(3)
	}
	ts, tt := e.tag(1), e.tag(2)
	switch {
	case ts == kbVar:
		bind(1, 2)
	case tt == kbVar:
		bind(2, 1)
	case ts != tt:
		m.Raise()
	case ts == kbConst:
		if m.LoadFieldInt(1, 1) != m.LoadFieldInt(2, 1) {
			m.Raise()
		}
		m.RetPtr(3)
	case ts == kbInv:
		m.LoadField(1, 1, 4)
		m.LoadField(2, 1, 5)
		m.CallArgs(e.unify, []int{4, 5, 3}, func() { e.unifyBody() })
		m.TakeRet(3)
		m.RetPtr(3)
	default: // MUL
		m.LoadField(1, 1, 4)
		m.LoadField(2, 1, 5)
		m.CallArgs(e.unify, []int{4, 5, 3}, func() { e.unifyBody() })
		m.TakeRet(3)
		m.LoadField(1, 2, 4)
		m.LoadField(2, 2, 5)
		m.CallArgs(e.unify, []int{4, 5, 3}, func() { e.unifyBody() })
		m.TakeRet(3)
		m.RetPtr(3)
	}
}

// ---- Normalization ---------------------------------------------------------------
//
// normBody normalizes the term in slot 1 with the rules in slot 2
// (innermost), returning via RetPtr. Frame: t, rules, l, r, σ, cursor.
// Rewriting is budgeted: when the budget runs out the engine either stops
// rewriting (budgetRaise=false) or raises a resource exception caught at
// the product level — the deep unwind past stack markers of §5.

func (e *kbEngine) normBody() {
	m := e.m
	// Memoized: terms stamped with the current epoch are already normal.
	if m.Aux(1) == e.epoch {
		m.RetPtr(1)
		return
	}
	switch e.tag(1) {
	case kbConst, kbVar:
		m.SetAux(1, e.epoch)
		m.RetPtr(1)
		return
	case kbInv:
		m.LoadField(1, 1, 3)
		m.CallArgs(e.norm, []int{3, 2}, func() { e.normBody() })
		m.TakeRet(3)
		e.mkInv(kbSiteTerm, 3, 1)
	case kbMul:
		m.LoadField(1, 1, 3)
		m.CallArgs(e.norm, []int{3, 2}, func() { e.normBody() })
		m.TakeRet(3)
		m.LoadField(1, 2, 4)
		m.CallArgs(e.norm, []int{4, 2}, func() { e.normBody() })
		m.TakeRet(4)
		e.mkMul(kbSiteTerm, 3, 4, 1)
	}
	// Root rewriting: children are now normal; try each rule at the root.
	if e.budget <= 0 {
		if e.budgetRaise {
			m.Raise()
		}
		m.RetPtr(1) // budget-starved: NOT stamped (may not be normal)
		return
	}
	rewritten := false
	m.SetSlot(6, m.Slot(2)) // rule-list cursor
	for !m.IsNil(6) {
		m.Head(6, 3) // rule record [lhs, rhs]
		// Cheap root-shape prefilter (rule indexing by top symbol, as
		// real implementations do) so the exception path only fires on
		// genuine deep mismatches.
		m.LoadField(3, 0, 4) // lhs
		if !e.shapeMatches(4, 1) {
			m.Tail(6, 6)
			continue
		}
		matched := false
		m.TryCatch(func() {
			m.SetSlotNil(5)
			m.CallArgs(e.match, []int{4, 1, 5}, func() { e.matchBody() })
			m.TakeRet(5) // sigma
			matched = true
		}, func() {
			matched = false
		})
		if matched {
			e.budget--
			m.LoadField(3, 1, 4) // rhs
			m.CallArgs(e.subst, []int{4, 5}, func() { e.substBody(kbSiteTerm, false) })
			m.TakeRet(1)
			rewritten = true
			break
		}
		m.Tail(6, 6)
	}
	if rewritten {
		// The rewrite may expose further redexes below the root.
		m.CallArgs(e.norm, []int{1, 2}, func() { e.normBody() })
		m.TakeRet(1)
	} else {
		m.SetAux(1, e.epoch)
	}
	m.RetPtr(1)
}

// shapeMatches is the O(1) rule prefilter: the pattern's root (and, for a
// MUL pattern, its children's) constructor classes must be compatible
// with the term's before a full match is attempted.
func (e *kbEngine) shapeMatches(patSlot, termSlot int) bool {
	m := e.m
	m.Work(2)
	pt := e.tag(patSlot)
	if pt == kbVar {
		return true
	}
	tt := e.tag(termSlot)
	if pt != tt {
		return false
	}
	if pt == kbConst {
		return m.LoadFieldInt(patSlot, 1) == m.LoadFieldInt(termSlot, 1)
	}
	if pt != kbMul {
		return true
	}
	// Compare the left children's constructor classes.
	pl := m.LoadFieldInt(patSlot, 1)  // address of pattern left child
	tl := m.LoadFieldInt(termSlot, 1) // address of term left child
	plTag := m.Col.LoadField(mem.Addr(pl), 0)
	tlTag := m.Col.LoadField(mem.Addr(tl), 0)
	if plTag == kbVar {
		return true
	}
	return plTag == tlTag
}

// ---- Critical pairs ----------------------------------------------------------

// subtermAt stores the k-th non-variable subterm (preorder) of the term
// in srcSlot into the box record in boxSlot, reporting whether such a
// position exists. The box keeps the extracted pointer GC-safe.
func (e *kbEngine) subtermAt(srcSlot, boxSlot int, k int) bool {
	m := e.m
	cnt := 0
	found := false
	var body func()
	body = func() { // walk frame: t, box, child
		if found || e.tag(1) == kbVar {
			m.Work(1)
			return
		}
		if cnt == k {
			cnt++
			found = true
			m.StorePtrField(2, 0, 1)
			return
		}
		cnt++
		switch e.tag(1) {
		case kbInv:
			m.LoadField(1, 1, 3)
			m.CallArgs(e.walk, []int{3, 2}, body)
		case kbMul:
			m.LoadField(1, 1, 3)
			m.CallArgs(e.walk, []int{3, 2}, body)
			if !found {
				m.LoadField(1, 2, 3)
				m.CallArgs(e.walk, []int{3, 2}, body)
			}
		}
	}
	m.CallArgs(e.walk, []int{srcSlot, boxSlot}, body)
	return found
}

// replaceAt rebuilds the term in slot 1 with its k-th non-variable
// subterm (preorder) replaced by the term in slot 2, returning via
// RetPtr. Frame: t, repl, l, r. The Go counter threads the position.
func (e *kbEngine) replaceAt(cnt *int, k int) {
	m := e.m
	if e.tag(1) != kbVar {
		if *cnt == k {
			*cnt++
			m.RetPtr(2)
			return
		}
		*cnt++
	}
	switch e.tag(1) {
	case kbVar, kbConst:
		m.RetPtr(1)
	case kbInv:
		m.LoadField(1, 1, 3)
		m.CallArgs(e.subst, []int{3, 2}, func() { e.replaceAt(cnt, k) })
		m.TakeRet(3)
		e.mkInv(kbSiteTerm, 3, 3)
		m.RetPtr(3)
	case kbMul:
		m.LoadField(1, 1, 3)
		m.CallArgs(e.subst, []int{3, 2}, func() { e.replaceAt(cnt, k) })
		m.TakeRet(3)
		m.LoadField(1, 2, 4)
		m.CallArgs(e.subst, []int{4, 2}, func() { e.replaceAt(cnt, k) })
		m.TakeRet(4)
		e.mkMul(kbSiteTerm, 3, 4, 3)
		m.RetPtr(3)
	}
}

// ---- The benchmark driver -----------------------------------------------------

func (kbBench) Run(m *Mutator, scale Scale) Result {
	e := &kbEngine{m: m}
	// Frame layouts (slot 0 is always the return key).
	e.norm = m.PtrFrame("kb_norm", 6)
	e.match = m.PtrFrame("kb_match", 5)
	e.subst = m.PtrFrame("kb_subst", 4)
	e.unify = m.PtrFrame("kb_unify", 5)
	e.eq = m.PtrFrame("kb_eq", 4)
	e.walk = m.PtrFrame("kb_walk", 3)
	e.cp = m.PtrFrame("kb_cp", 8)
	e.epoch = 1
	main := m.PtrFrame("kb_main", 8)

	var check uint64
	m.Call(main, func() {
		// main slots: 1=rules, 2=results, 3..8 scratch.
		m.SetSlotNil(1)
		ruleCount := 0

		// addRule keeps deep copies of the terms in lhsSlot/rhsSlot and
		// conses a rule record onto the rules list.
		addRule := func(lhsSlot, rhsSlot int) {
			m.CallArgs(e.walk, []int{lhsSlot}, func() { e.copyBody(kbSiteKeep, 0) })
			m.TakeRet(lhsSlot)
			m.CallArgs(e.walk, []int{rhsSlot}, func() { e.copyBody(kbSiteKeep, 0) })
			m.TakeRet(rhsSlot)
			m.AllocRecord(kbSiteRule, 2, 0b11, 8)
			m.InitPtrField(8, 0, lhsSlot)
			m.InitPtrField(8, 1, rhsSlot)
			m.ConsPtr(kbSiteRule, 8, 1, 1)
			ruleCount++
			e.epoch++
			if e.epoch == 0 {
				e.epoch = 1
			}
		}

		// mkVar/mkConst into a slot.
		leaf := func(tg, id uint64, dst int) { e.mkLeaf(kbSiteTerm, tg, id, dst) }

		// Group axioms:
		//   A1: (x·y)·z → x·(y·z)
		//   A2: e·x → x
		//   A3: x⁻¹·x → e
		x, y, z := uint64(kbVarBase), uint64(kbVarBase+1), uint64(kbVarBase+2)
		leaf(kbVar, x, 3)
		leaf(kbVar, y, 4)
		e.mkMul(kbSiteTerm, 3, 4, 5) // x·y
		leaf(kbVar, z, 6)
		e.mkMul(kbSiteTerm, 5, 6, 5) // (x·y)·z
		leaf(kbVar, y, 4)
		leaf(kbVar, z, 6)
		e.mkMul(kbSiteTerm, 4, 6, 6) // y·z
		e.mkMul(kbSiteTerm, 3, 6, 6) // x·(y·z)
		addRule(5, 6)

		leaf(kbConst, kbE, 3)
		leaf(kbVar, x, 4)
		e.mkMul(kbSiteTerm, 3, 4, 5) // e·x
		leaf(kbVar, x, 6)
		addRule(5, 6)

		leaf(kbVar, x, 3)
		e.mkInv(kbSiteTerm, 3, 4) // x⁻¹
		e.mkMul(kbSiteTerm, 4, 3, 5)
		leaf(kbConst, kbE, 6)
		addRule(5, 6)

		// nthRule loads rule record #i (0 = oldest) into dst.
		nthRule := func(i, dst int) {
			m.SetSlot(dst, m.Slot(1))
			for k := 0; k < ruleCount-1-i; k++ {
				m.Tail(dst, dst)
			}
			m.Head(dst, dst)
		}

		// ---- Completion ---------------------------------------------------
		const maxRules = 14
		type pairIdx struct{ i, j int }
		var queue []pairIdx
		for i := 0; i < ruleCount; i++ {
			for j := 0; j <= i; j++ {
				queue = append(queue, pairIdx{i, j})
				if i != j {
					queue = append(queue, pairIdx{j, i})
				}
			}
		}
		processed := 0
		for len(queue) > 0 && ruleCount < maxRules && processed < 80 {
			pq := queue[0]
			queue = queue[1:]
			processed++
			// Superpose rule j (renamed apart) into rule i at every
			// non-variable position of lhs_i.
			for k := 0; ; k++ {
				if pq.i == pq.j && k == 0 {
					continue // trivial root overlap of a rule with itself
				}
				nthRule(pq.i, 3)
				m.LoadField(3, 0, 4) // lhs_i
				// Box for the extracted subterm.
				m.AllocRecord(kbSiteTerm, 1, 0b1, 5)
				if !e.subtermAt(4, 5, k) {
					break
				}
				nthRule(pq.j, 6)
				m.LoadField(6, 0, 7) // lhs_j
				m.CallArgs(e.walk, []int{7}, func() { e.copyBody(kbSiteTerm, 16) })
				m.TakeRet(7) // lhs_j renamed apart

				unified := false
				m.TryCatch(func() {
					m.LoadField(5, 0, 5) // the subterm out of its box
					m.SetSlotNil(8)
					m.CallArgs(e.unify, []int{5, 7, 8}, func() { e.unifyBody() })
					m.TakeRet(8) // σ
					unified = true
				}, func() {})
				if !unified {
					continue
				}

				// cpL = (lhs_i[k ← rhs_j'])σ ; cpR = (rhs_i)σ.
				nthRule(pq.j, 6)
				m.LoadField(6, 1, 7)
				m.CallArgs(e.walk, []int{7}, func() { e.copyBody(kbSiteTerm, 16) })
				m.TakeRet(7) // rhs_j renamed
				cnt := 0
				m.CallArgs(e.subst, []int{4, 7}, func() { e.replaceAt(&cnt, k) })
				m.TakeRet(5)
				m.CallArgs(e.subst, []int{5, 8}, func() { e.substBody(kbSiteTerm, true) })
				m.TakeRet(5) // cpL
				nthRule(pq.i, 3)
				m.LoadField(3, 1, 4)
				m.CallArgs(e.subst, []int{4, 8}, func() { e.substBody(kbSiteTerm, true) })
				m.TakeRet(4) // cpR

				// Normalize both sides with the current rules.
				e.budget, e.budgetRaise = 4000, false
				m.CallArgs(e.norm, []int{5, 1}, func() { e.normBody() })
				m.TakeRet(5)
				e.budget = 4000
				m.CallArgs(e.norm, []int{4, 1}, func() { e.normBody() })
				m.TakeRet(4)
				if e.eqTerms(5, 4) {
					continue // joinable: nothing to learn
				}
				// Orient by (weight, left-spine depth); require the rhs
				// variables to occur in the lhs.
				w1, s1, v1 := e.measure(5)
				w2, s2, v2 := e.measure(4)
				lhsSlot, rhsSlot := 5, 4
				lv, rv := v1, v2
				switch {
				case w1 > w2 || (w1 == w2 && s1 > s2):
				case w2 > w1 || (w1 == w2 && s2 > s1):
					lhsSlot, rhsSlot = 4, 5
					lv, rv = v2, v1
				default:
					continue // unorientable
				}
				if rv&^lv != 0 || e.tag(lhsSlot) == kbVar {
					continue
				}
				old := ruleCount
				addRule(lhsSlot, rhsSlot)
				for i := 0; i < old; i++ {
					queue = append(queue, pairIdx{i, old}, pairIdx{old, i})
				}
				queue = append(queue, pairIdx{old, old})
				if ruleCount >= maxRules {
					break
				}
			}
		}
		check = uint64(ruleCount) * 1000003

		// ---- Client phase ---------------------------------------------------
		//
		// Normalize a long list of generator products with the completed
		// system. The list is processed by the classic non-tail map —
		// map f (h::t) = f h :: map f t — so one activation record per
		// pending product stays on the stack until the entire map
		// finishes: the deep, rarely-unwinding stack of Table 2. The
		// rewriting churn for each product happens on top of that stable
		// prefix. If the rewrite budget runs out mid-map, a resource
		// exception unwinds the whole recursion (the §5 watermark case)
		// and the map restarts with a fresh budget; normal-form stamps
		// make the recomputation cheap.
		m.SetSlotNil(2) // retained normal forms
		nProducts := scale.DepthOf(500, 16)
		const prodLen = 24

		// Build the product list (left-associated combs) in slot 2 of a
		// builder frame, then move it to main slot 3.
		m.SetSlotNil(3)
		for p := nProducts - 1; p >= 0; p-- {
			atom := func(k int, dst int) {
				switch (k*7 + p) % 4 {
				case 0:
					leaf(kbConst, kbA, dst)
				case 1:
					leaf(kbConst, kbB, dst)
				case 2:
					leaf(kbConst, kbA, dst)
					e.mkInv(kbSiteProd, dst, dst)
				default:
					leaf(kbConst, kbB, dst)
					e.mkInv(kbSiteProd, dst, dst)
				}
			}
			atom(0, 4)
			for k := 1; k < prodLen; k++ {
				atom(k, 5)
				e.mkMul(kbSiteProd, 4, 5, 4)
			}
			m.ConsPtr(kbSiteProd, 4, 3, 3)
		}

		// mapNorm: frame slots 1=list, 2=rules, 3=normal form, 4=mapped tail.
		mapFrame := m.PtrFrame("kb_map", 4)
		var mapNorm func()
		mapNorm = func() {
			if m.IsNil(1) {
				m.RetPtr(1)
				return
			}
			m.Head(1, 3)
			m.CallArgs(e.norm, []int{3, 2}, func() { e.normBody() })
			m.TakeRet(3)
			// Keep a long-lived copy of the normal form.
			m.CallArgs(e.walk, []int{3}, func() { e.copyBody(kbSiteKeep, 0) })
			m.TakeRet(3)
			m.Tail(1, 4)
			m.CallArgs(mapFrame, []int{4, 2}, mapNorm)
			m.TakeRet(4)
			m.ConsPtr(kbSiteRule, 3, 4, 4)
			m.RetPtr(4)
		}

		perProduct := prodLen*prodLen/2 + 64
		// First attempt is deliberately starved so the resource exception
		// fires about 70% of the way through, jumping past every stack
		// marker in the map recursion; the retry completes.
		for attempt := 0; ; attempt++ {
			if attempt == 0 {
				e.budget = nProducts * perProduct * 7 / 10
				e.budgetRaise = true
			} else {
				e.budget = 4 * nProducts * perProduct
				e.budgetRaise = false
			}
			done := false
			m.TryCatch(func() {
				m.CallArgs(mapFrame, []int{3, 1}, mapNorm)
				m.TakeRet(2)
				done = true
			}, func() {
				check = check*31 + 7 // observed one resource exception
			})
			if done {
				break
			}
		}

		// Fold the normal forms into the check.
		m.SetSlot(4, m.Slot(2))
		for !m.IsNil(4) {
			m.Head(4, 5)
			w, s, _ := e.measure(5)
			check = check*31 + uint64(w)*64 + uint64(s)
			m.Tail(4, 4)
		}
	})
	return Result{Check: check}
}
