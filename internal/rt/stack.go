package rt

import (
	"fmt"
	"math"
	"sort"

	"tilgc/internal/costmodel"
	"tilgc/internal/trace"
)

// Marker records one stack marker: a frame whose stored return key has been
// replaced by StubKey so that its return is observed by the runtime.
type Marker struct {
	Base    int    // slot index of the marked frame's slot 0
	Index   int    // frame index (0 = initial frame) at placement time
	OrigKey RetKey // the displaced return key
}

// Stack is the simulated mutator stack: a flat slot array holding
// activation records, plus the register file, exception-handler chain, and
// the stack-marker bookkeeping of §5.
type Stack struct {
	table  *TraceTable
	meter  *costmodel.Meter
	tracer *trace.Recorder // optional telemetry; nil-safe

	slots   []uint64
	sp      int // next free slot
	frames  []frameRec
	curKey  RetKey     // key of the currently-executing function (top frame layout)
	curInfo *FrameInfo // cached layout for curKey (hot path of slot checks)

	regs [NumRegs]uint64

	handlers []int // frame indices owning active exception handlers

	// Stack-marker state (generational stack collection).
	markers   map[int]Marker // keyed by frame base
	raiseMark int            // M: min frame count reached by raises since last GC

	// Statistics for Table 2.
	maxDepth    int
	framePushes uint64
}

type frameRec struct {
	base   int
	key    RetKey
	serial uint64 // push counter value when this frame was pushed
}

// NewStack creates an empty stack. The meter is charged for all
// mutator-side operations.
func NewStack(table *TraceTable, meter *costmodel.Meter) *Stack {
	return &Stack{
		table:     table,
		meter:     meter,
		slots:     make([]uint64, 0, 1024),
		markers:   make(map[int]Marker),
		raiseMark: math.MaxInt,
	}
}

// SetTracer attaches a telemetry recorder; stub-return fires are counted
// into it. A nil recorder detaches.
func (s *Stack) SetTracer(tr *trace.Recorder) { s.tracer = tr }

// Depth returns the current number of frames.
func (s *Stack) Depth() int { return len(s.frames) }

// MaxDepth returns the deepest frame count observed.
func (s *Stack) MaxDepth() int { return s.maxDepth }

// FramePushes returns the total number of frames ever pushed.
func (s *Stack) FramePushes() uint64 { return s.framePushes }

// CurrentKey returns the key of the currently-executing function's layout.
func (s *Stack) CurrentKey() RetKey { return s.curKey }

// Table returns the trace table frames are described by.
func (s *Stack) Table() *TraceTable { return s.table }

// Call pushes an activation record for fi. Slot 0 receives the caller's
// key (the simulated return address); remaining slots are zeroed, standing
// in for the prologue's slot initialization.
func (s *Stack) Call(fi *FrameInfo) {
	base := s.sp
	need := base + fi.Size
	for cap(s.slots) < need {
		s.slots = append(s.slots[:cap(s.slots)], 0)
	}
	s.slots = s.slots[:need]
	s.slots[base] = uint64(s.curKey)
	for i := base + 1; i < need; i++ {
		s.slots[i] = 0
	}
	s.sp = need
	s.frames = append(s.frames, frameRec{base: base, key: fi.Key, serial: s.framePushes})
	s.curKey = fi.Key
	s.curInfo = fi
	s.framePushes++
	if len(s.frames) > s.maxDepth {
		s.maxDepth = len(s.frames)
	}
	s.meter.Charge(costmodel.Client, costmodel.CallFrame)
}

// Return pops the top activation record. If the frame was marked, control
// passes through the stub: the original return key is restored from the
// marker table, the marker is retired, and the extra stub cost is charged.
func (s *Stack) Return() {
	if len(s.frames) == 0 {
		panic("rt: Return with empty stack")
	}
	f := s.frames[len(s.frames)-1]
	raw := RetKey(s.slots[f.base])
	if raw == StubKey {
		m, ok := s.markers[f.base]
		if !ok {
			panic("rt: stub return with no marker entry")
		}
		delete(s.markers, f.base)
		raw = m.OrigKey
		s.meter.Charge(costmodel.Client, costmodel.StubReturn)
		s.tracer.CountStubReturn()
	} else {
		s.meter.Charge(costmodel.Client, costmodel.ReturnFrame)
	}
	s.sp = f.base
	s.slots = s.slots[:s.sp]
	s.frames = s.frames[:len(s.frames)-1]
	s.curKey = raw
	s.curInfo = s.table.Lookup(raw)
	// Dangling handlers in the popped frame are the workload's bug; the
	// handler chain is validated on PushHandler/Raise instead of here to
	// keep Return on the fast path.
}

// PushHandler installs an exception handler owned by the current frame.
func (s *Stack) PushHandler() {
	if len(s.frames) == 0 {
		panic("rt: PushHandler with empty stack")
	}
	s.handlers = append(s.handlers, len(s.frames)-1)
	s.meter.Charge(costmodel.Client, costmodel.MutatorStore)
}

// PopHandler removes the most recent handler (normal, non-raising exit of
// its scope).
func (s *Stack) PopHandler() {
	if len(s.handlers) == 0 {
		panic("rt: PopHandler with no handler")
	}
	s.handlers = s.handlers[:len(s.handlers)-1]
	s.meter.Charge(costmodel.Client, costmodel.MutatorLoad)
}

// Raise unwinds to the most recent handler, popping every frame above the
// handler's frame *without* executing returns — marked frames in between
// are jumped past, which is exactly why the watermark M exists (§5). The
// handler is consumed.
func (s *Stack) Raise() {
	if len(s.handlers) == 0 {
		panic("rt: Raise with no handler")
	}
	hf := s.handlers[len(s.handlers)-1]
	s.handlers = s.handlers[:len(s.handlers)-1]
	keep := hf + 1
	if keep > len(s.frames) {
		panic("rt: handler frame above stack top")
	}
	s.frames = s.frames[:keep]
	top := s.frames[keep-1]
	fi := s.table.Lookup(top.key)
	s.sp = top.base + fi.Size
	s.slots = s.slots[:s.sp]
	s.curKey = top.key
	s.curInfo = fi
	if keep < s.raiseMark {
		s.raiseMark = keep
	}
	s.meter.Charge(costmodel.Client, costmodel.RaiseHandler)
}

// HandlerDepth returns the number of active handlers.
func (s *Stack) HandlerDepth() int { return len(s.handlers) }

// Slot returns slot i of the top frame.
func (s *Stack) Slot(i int) uint64 {
	f := s.topFrame()
	s.checkSlot(f, i)
	s.meter.Charge(costmodel.Client, costmodel.MutatorLoad)
	return s.slots[f.base+i]
}

// SetSlot writes slot i of the top frame. Slot 0 (the return key) is not
// writable by the mutator.
func (s *Stack) SetSlot(i int, v uint64) {
	f := s.topFrame()
	s.checkSlot(f, i)
	if i == 0 {
		panic("rt: mutator write to return-key slot")
	}
	s.meter.Charge(costmodel.Client, costmodel.MutatorStore)
	s.slots[f.base+i] = v
}

// Reg returns register r.
func (s *Stack) Reg(r int) uint64 {
	return s.regs[r]
}

// SetReg writes register r.
func (s *Stack) SetReg(r int, v uint64) {
	s.regs[r] = v
}

func (s *Stack) topFrame() frameRec {
	if len(s.frames) == 0 {
		panic("rt: slot access with empty stack")
	}
	return s.frames[len(s.frames)-1]
}

func (s *Stack) checkSlot(f frameRec, i int) {
	fi := s.curInfo
	if i < 0 || i >= fi.Size {
		panic(fmt.Sprintf("rt: slot %d out of range for frame %q (size %d)", i, fi.Name, fi.Size))
	}
}

// ---- Collector-side access ------------------------------------------------
//
// The methods below are used by the collectors in internal/core. They give
// raw access to frames, slots and marker bookkeeping; all cost charging for
// their use is done by the collector, which knows whether work is a decode
// or a cached reuse.

// FrameCount returns the number of frames (collector view).
func (s *Stack) FrameCount() int { return len(s.frames) }

// FrameBase returns the base slot index of frame i (0 = initial frame).
func (s *Stack) FrameBase(i int) int { return s.frames[i].base }

// FrameKey returns the layout key of frame i.
func (s *Stack) FrameKey(i int) RetKey { return s.frames[i].key }

// FrameSerial returns the push-counter value recorded when frame i was
// pushed; collectors use it to count frames that are new since the
// previous collection (Table 2's "New Frames in Stack").
func (s *Stack) FrameSerial(i int) uint64 { return s.frames[i].serial }

// SP returns the current stack-pointer (next free slot index).
func (s *Stack) SP() int { return s.sp }

// RawSlot reads absolute stack slot idx without mutator cost.
func (s *Stack) RawSlot(idx int) uint64 { return s.slots[idx] }

// SetRawSlot writes absolute stack slot idx without mutator cost. The
// collector uses this to forward root pointers after copying.
func (s *Stack) SetRawSlot(idx int, v uint64) { s.slots[idx] = v }

// StoredRetKey returns the return key stored in frame i's slot 0, seeing
// through an installed marker stub.
func (s *Stack) StoredRetKey(i int) RetKey {
	raw := RetKey(s.slots[s.frames[i].base])
	if raw == StubKey {
		return s.markers[s.frames[i].base].OrigKey
	}
	return raw
}

// PlaceMarker installs a stack marker on frame i: the stored return key is
// replaced by StubKey and remembered. Placing a marker on an
// already-marked frame is a no-op.
func (s *Stack) PlaceMarker(i int) bool {
	f := s.frames[i]
	if RetKey(s.slots[f.base]) == StubKey {
		return false
	}
	s.markers[f.base] = Marker{Base: f.base, Index: i, OrigKey: RetKey(s.slots[f.base])}
	s.slots[f.base] = uint64(StubKey)
	return true
}

// ReuseBoundary computes and returns the index B of the shallowest
// surviving marker not jumped past by a raise. Frames 0..B-1 are
// guaranteed unchanged since the markers were placed: popping any of them
// would have fired the marker at B first. Frame B itself may have been
// mutated while briefly on top of the stack (slot writes do not fire
// markers), so collectors reuse cached scan results only for frames
// strictly below B. It also
// prunes marker-table entries invalidated by raises (entries for frames
// that were popped without firing their stub). Returns -1 when nothing can
// be reused. ResetEpoch must be called after the collection to start the
// next observation window.
func (s *Stack) ReuseBoundary() int {
	best := -1
	for base, m := range s.markers {
		if m.Index >= s.raiseMark || m.Index >= len(s.frames) ||
			s.frames[m.Index].base != m.Base || RetKey(s.slots[m.Base]) != StubKey {
			// Jumped past by a raise (or otherwise gone): the stub slot no
			// longer exists. Drop the stale entry.
			delete(s.markers, base)
			continue
		}
		if m.Index > best {
			best = m.Index
		}
	}
	return best
}

// ResetEpoch starts a new marker observation window (called by the
// collector at the end of each stack scan).
func (s *Stack) ResetEpoch() {
	s.raiseMark = math.MaxInt
}

// MarkerCount returns the number of live marker-table entries.
func (s *Stack) MarkerCount() int { return len(s.markers) }

// Markers returns the marker-table entries in ascending base order.
// Entries may be stale (their frame popped by a raise without firing the
// stub); ReuseBoundary prunes those lazily. Used by integrity checkers.
func (s *Stack) Markers() []Marker {
	out := make([]Marker, 0, len(s.markers))
	for _, m := range s.markers {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// MarkerAt returns the marker entry for the given frame base, if any.
func (s *Stack) MarkerAt(base int) (Marker, bool) {
	m, ok := s.markers[base]
	return m, ok
}

// RaiseMark returns the watermark M (min frame count reached by raises in
// the current epoch), or math.MaxInt if no raise occurred.
func (s *Stack) RaiseMark() int { return s.raiseMark }
