package rt

import (
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
)

// TestSSBEntriesIsSnapshot is the regression test for the Entries aliasing
// bug: Entries used to return the internal slice, and because Drain
// truncates in place and Record appends into the same backing array, a
// snapshot held across a Drain/Record cycle silently mutated under the
// holder — exactly the access pattern of the sanitizer's remembered-set
// pass, which walks the buffer while the collector drains and refills it.
func TestSSBEntriesIsSnapshot(t *testing.T) {
	b := NewSSB(costmodel.NewMeter())
	b.Record(mem.Addr(0x100))
	b.Record(mem.Addr(0x108))

	snap := b.Entries()
	b.Drain()
	b.Record(mem.Addr(0x999))

	if len(snap) != 2 || snap[0] != 0x100 || snap[1] != 0x108 {
		t.Fatalf("snapshot mutated across Drain/Record: %v", snap)
	}

	// Appending to a snapshot must not write into the live buffer either.
	snap2 := b.Entries()
	_ = append(snap2, mem.Addr(0xdead))
	b.Record(mem.Addr(0xaaa))
	got := b.Entries()
	if len(got) != 2 || got[0] != 0x999 || got[1] != 0xaaa {
		t.Fatalf("buffer corrupted by snapshot append: %v", got)
	}

	if b.TotalRecorded() != 4 {
		t.Fatalf("TotalRecorded = %d, want 4", b.TotalRecorded())
	}
}

// TestSSBDrainTo: the collector's drain path must visit every entry in
// record order (duplicates included — the Peg overhead), then empty the
// buffer so the next mutator epoch starts fresh.
func TestSSBDrainTo(t *testing.T) {
	b := NewSSB(costmodel.NewMeter())
	want := []mem.Addr{0x100, 0x108, 0x100, 0x200}
	for _, a := range want {
		b.Record(a)
	}
	var got []mem.Addr
	b.DrainTo(func(a mem.Addr) { got = append(got, a) })
	if len(got) != len(want) {
		t.Fatalf("DrainTo visited %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v (record order)", i, got[i], want[i])
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len after DrainTo = %d, want 0", b.Len())
	}
	b.Record(0x300)
	if b.Len() != 1 || b.TotalRecorded() != 5 {
		t.Fatalf("post-drain Record: Len=%d Total=%d", b.Len(), b.TotalRecorded())
	}
}

// TestSSBDrainToDoesNotAllocate pins the whole point of DrainTo over
// Entries: once the buffer's backing array has grown, a record/drain cycle
// performs no Go allocations regardless of entry count.
func TestSSBDrainToDoesNotAllocate(t *testing.T) {
	b := NewSSB(costmodel.NewMeter())
	cycle := func() {
		for i := 0; i < 64; i++ {
			b.Record(mem.Addr(0x1000 + 8*i))
		}
		b.DrainTo(func(mem.Addr) {})
	}
	cycle() // grow the backing array
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("record/drain cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestSSBDrainToReentrancy: DrainTo iterates the live buffer in place, so
// its callback must not touch the buffer. The contract used to be a doc
// comment only; a callback that Recorded (appending into the slice being
// walked) or Drained (truncating it mid-iteration) silently corrupted the
// barrier. Now every re-entrant path panics.
func TestSSBDrainToReentrancy(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s during DrainTo did not panic", name)
			}
		}()
		f()
	}

	mk := func() *SSB {
		b := NewSSB(costmodel.NewMeter())
		b.Record(0x100)
		b.Record(0x108)
		return b
	}

	b := mk()
	mustPanic("Record", func() { b.DrainTo(func(mem.Addr) { b.Record(0x200) }) })
	b = mk()
	mustPanic("Drain", func() { b.DrainTo(func(mem.Addr) { b.Drain() }) })
	b = mk()
	mustPanic("DrainTo", func() { b.DrainTo(func(mem.Addr) { b.DrainTo(func(mem.Addr) {}) }) })

	// The guard resets after a panic unwinds, so the barrier remains usable
	// (the collector's own recover/teardown path must not be wedged).
	b = mk()
	func() {
		defer func() { recover() }()
		b.DrainTo(func(mem.Addr) { b.Record(0x300) })
	}()
	b.Record(0x400)
	b.DrainTo(func(mem.Addr) {})
	if b.Len() != 0 {
		t.Fatalf("buffer not drained after guard reset: Len=%d", b.Len())
	}
}

// TestCardTableCardsOrder pins Cards()'s ascending-address contract under
// duplicate and out-of-order Records: the collector scans cards in exactly
// this order, so map-iteration order leaking through here would change
// copy order, space layout, and cost accounting between runs.
func TestCardTableCardsOrder(t *testing.T) {
	c := NewCardTable(costmodel.NewMeter(), 3)
	// Out of order, with duplicates both exact (0x500 twice) and via
	// distinct addresses on one card (0x100 and 0x104 share card 0x20).
	for _, a := range []mem.Addr{0x500, 0x100, 0x500, 0x104, 0x40, 0x18} {
		c.Record(a)
	}
	got := c.Cards()
	want := []uint64{0x18 >> 3, 0x40 >> 3, 0x100 >> 3, 0x500 >> 3}
	if len(got) != len(want) {
		t.Fatalf("Cards() = %#x, want %#x (duplicates collapsed)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("card %d = %#x, want %#x (ascending address order)", i, got[i], want[i])
		}
	}
	if c.TotalRecorded() != 6 {
		t.Fatalf("TotalRecorded = %d, want 6 (every Record counts, even duplicates)", c.TotalRecorded())
	}
	// Determinism under re-query: the same dirty set renders identically.
	again := c.Cards()
	for i := range want {
		if again[i] != got[i] {
			t.Fatalf("second Cards() call differs at %d: %#x vs %#x", i, again[i], got[i])
		}
	}
}

// TestCardTableAppendCards: AppendCards must sort the appended suffix into
// ascending order, leave any existing prefix untouched, and allocate
// nothing when the destination buffer has capacity.
func TestCardTableAppendCards(t *testing.T) {
	c := NewCardTable(costmodel.NewMeter(), 3) // 8-word cards
	for _, a := range []mem.Addr{0x500, 0x10, 0x308, 0x18, 0x700} {
		c.Record(a)
	}
	want := []uint64{0x10 >> 3, 0x18 >> 3, 0x308 >> 3, 0x500 >> 3, 0x700 >> 3}

	got := c.AppendCards(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendCards(nil) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("card %d = %#x, want %#x (sorted order)", i, got[i], want[i])
		}
	}

	// A sentinel prefix survives, and the suffix is sorted independently.
	buf := append(make([]uint64, 0, 16), ^uint64(0))
	buf = c.AppendCards(buf)
	if buf[0] != ^uint64(0) {
		t.Fatalf("prefix overwritten: %#x", buf[0])
	}
	for i := range want {
		if buf[1+i] != want[i] {
			t.Fatalf("suffix card %d = %#x, want %#x", i, buf[1+i], want[i])
		}
	}

	// Steady state: reuse of a grown buffer across drain cycles is
	// allocation-free.
	c.Drain()
	var pool []uint64
	cycle := func() {
		for i := 0; i < 32; i++ {
			c.Record(mem.Addr(0x2000 + 64*i))
		}
		pool = c.AppendCards(pool[:0])
		c.Drain()
	}
	cycle()
	if allocs := testing.AllocsPerRun(20, cycle); allocs != 0 {
		t.Fatalf("card record/drain cycle allocates %.1f objects, want 0", allocs)
	}
}
