package rt

import (
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
)

// TestSSBEntriesIsSnapshot is the regression test for the Entries aliasing
// bug: Entries used to return the internal slice, and because Drain
// truncates in place and Record appends into the same backing array, a
// snapshot held across a Drain/Record cycle silently mutated under the
// holder — exactly the access pattern of the sanitizer's remembered-set
// pass, which walks the buffer while the collector drains and refills it.
func TestSSBEntriesIsSnapshot(t *testing.T) {
	b := NewSSB(costmodel.NewMeter())
	b.Record(mem.Addr(0x100))
	b.Record(mem.Addr(0x108))

	snap := b.Entries()
	b.Drain()
	b.Record(mem.Addr(0x999))

	if len(snap) != 2 || snap[0] != 0x100 || snap[1] != 0x108 {
		t.Fatalf("snapshot mutated across Drain/Record: %v", snap)
	}

	// Appending to a snapshot must not write into the live buffer either.
	snap2 := b.Entries()
	_ = append(snap2, mem.Addr(0xdead))
	b.Record(mem.Addr(0xaaa))
	got := b.Entries()
	if len(got) != 2 || got[0] != 0x999 || got[1] != 0xaaa {
		t.Fatalf("buffer corrupted by snapshot append: %v", got)
	}

	if b.TotalRecorded() != 4 {
		t.Fatalf("TotalRecorded = %d, want 4", b.TotalRecorded())
	}
}
