package rt

import (
	"math"
	"math/rand"
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
)

func newTestEnv() (*TraceTable, *costmodel.Meter, *Stack) {
	tt := NewTraceTable()
	m := costmodel.NewMeter()
	return tt, m, NewStack(tt, m)
}

func simpleFrame(tt *TraceTable, name string, size int) *FrameInfo {
	slots := make([]SlotTrace, size)
	return tt.Register(name, slots, nil)
}

func TestTraceTableRegisterLookup(t *testing.T) {
	tt := NewTraceTable()
	a := tt.Register("f", []SlotTrace{NP(), PTR(), NP()}, nil)
	b := tt.Register("g", []SlotTrace{NP(), SAVE(3)}, nil)
	if a.Key == b.Key {
		t.Fatal("duplicate keys")
	}
	if tt.Lookup(a.Key) != a || tt.Lookup(b.Key) != b {
		t.Fatal("lookup mismatch")
	}
	if tt.Lookup(0) != nil {
		t.Fatal("sentinel lookup not nil")
	}
	if tt.Len() != 2 {
		t.Fatalf("Len = %d", tt.Len())
	}
	if a.Slots[0].Kind != TraceNonPointer {
		t.Error("slot 0 trace not forced to non-pointer")
	}
}

func TestTraceKindStrings(t *testing.T) {
	want := map[TraceKind]string{
		TraceNonPointer: "NON-POINTER",
		TracePointer:    "POINTER",
		TraceCalleeSave: "CALLEE-SAVE",
		TraceCompute:    "COMPUTE",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
}

func TestCallReturnBasics(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 4)
	g := simpleFrame(tt, "g", 3)

	s.Call(f)
	if s.Depth() != 1 || s.CurrentKey() != f.Key {
		t.Fatalf("after call f: depth=%d key=%d", s.Depth(), s.CurrentKey())
	}
	if s.StoredRetKey(0) != 0 {
		t.Fatal("initial frame should store sentinel ret key")
	}
	s.Call(g)
	if s.Depth() != 2 || s.CurrentKey() != g.Key {
		t.Fatal("after call g")
	}
	if s.StoredRetKey(1) != f.Key {
		t.Fatal("g's frame should store f's key")
	}
	s.Return()
	if s.Depth() != 1 || s.CurrentKey() != f.Key {
		t.Fatal("after return from g")
	}
	s.Return()
	if s.Depth() != 0 || s.CurrentKey() != 0 {
		t.Fatal("after return from f")
	}
}

func TestSlotAccess(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 4)
	g := simpleFrame(tt, "g", 2)
	s.Call(f)
	s.SetSlot(1, 111)
	s.SetSlot(3, 333)
	s.Call(g)
	s.SetSlot(1, 999)
	if s.Slot(1) != 999 {
		t.Fatal("inner slot wrong")
	}
	s.Return()
	if s.Slot(1) != 111 || s.Slot(3) != 333 {
		t.Fatal("outer slots disturbed")
	}
}

func TestSlotsZeroedOnPush(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 3)
	s.Call(f)
	s.SetSlot(1, 42)
	s.SetSlot(2, 43)
	s.Return()
	s.Call(f)
	if s.Slot(1) != 0 || s.Slot(2) != 0 {
		t.Fatal("reused frame slots not zeroed")
	}
}

func TestSlotBoundsPanic(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	s.Call(f)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot access did not panic")
		}
	}()
	s.Slot(2)
}

func TestSetSlotZeroPanics(t *testing.T) {
	tt, _, s := newTestEnv()
	s.Call(simpleFrame(tt, "f", 2))
	defer func() {
		if recover() == nil {
			t.Fatal("write to return-key slot did not panic")
		}
	}()
	s.SetSlot(0, 1)
}

func TestRegisters(t *testing.T) {
	_, _, s := newTestEnv()
	s.SetReg(5, 77)
	if s.Reg(5) != 77 || s.Reg(4) != 0 {
		t.Fatal("register file broken")
	}
}

func TestHandlersAndRaise(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 3)
	g := simpleFrame(tt, "g", 3)
	s.Call(f)
	s.SetSlot(1, 10)
	s.PushHandler()
	for i := 0; i < 5; i++ {
		s.Call(g)
	}
	if s.Depth() != 6 {
		t.Fatal("setup depth")
	}
	s.Raise()
	if s.Depth() != 1 || s.CurrentKey() != f.Key {
		t.Fatalf("after raise: depth=%d", s.Depth())
	}
	if s.Slot(1) != 10 {
		t.Fatal("handler frame slots lost")
	}
	if s.HandlerDepth() != 0 {
		t.Fatal("handler not consumed")
	}
	if s.RaiseMark() != 1 {
		t.Fatalf("raise mark = %d", s.RaiseMark())
	}
}

func TestRaiseToCurrentFrame(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	s.Call(f)
	s.PushHandler()
	s.Raise()
	if s.Depth() != 1 || s.CurrentKey() != f.Key {
		t.Fatal("raise-to-self broke the stack")
	}
}

func TestPopHandler(t *testing.T) {
	tt, _, s := newTestEnv()
	s.Call(simpleFrame(tt, "f", 2))
	s.PushHandler()
	s.PushHandler()
	s.PopHandler()
	if s.HandlerDepth() != 1 {
		t.Fatal("pop handler count")
	}
}

func TestMarkerFiresOnReturn(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 3)
	for i := 0; i < 4; i++ {
		s.Call(f)
	}
	if !s.PlaceMarker(2) {
		t.Fatal("PlaceMarker failed")
	}
	if s.PlaceMarker(2) {
		t.Fatal("double marker placement should be a no-op")
	}
	if s.MarkerCount() != 1 {
		t.Fatal("marker count")
	}
	// StoredRetKey sees through the stub.
	if s.StoredRetKey(2) != f.Key {
		t.Fatal("StoredRetKey does not see through stub")
	}
	s.Return() // frame 3
	if s.MarkerCount() != 1 {
		t.Fatal("marker fired early")
	}
	s.Return() // frame 2: fires the marker
	if s.MarkerCount() != 0 {
		t.Fatal("marker did not fire")
	}
	if s.CurrentKey() != f.Key || s.Depth() != 2 {
		t.Fatal("stub return did not restore control correctly")
	}
}

func TestReuseBoundaryShallowestSurvivingMarker(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	for i := 0; i < 10; i++ {
		s.Call(f)
	}
	s.PlaceMarker(2)
	s.PlaceMarker(5)
	s.PlaceMarker(8)
	if b := s.ReuseBoundary(); b != 8 {
		t.Fatalf("boundary = %d, want 8", b)
	}
	// Pop frames 9 and 8: marker at 8 fires.
	s.Return()
	s.Return()
	if b := s.ReuseBoundary(); b != 5 {
		t.Fatalf("boundary after firing = %d, want 5", b)
	}
}

func TestReuseBoundaryRaiseInvalidatesMarkers(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	s.Call(f)
	s.PushHandler() // handler at frame 0
	for i := 0; i < 9; i++ {
		s.Call(f)
	}
	s.PlaceMarker(4)
	s.PlaceMarker(7)
	s.ResetEpoch()
	// Raise jumps past both markers without firing their stubs.
	s.Raise()
	if s.Depth() != 1 {
		t.Fatal("raise depth")
	}
	// Regrow the stack past the old marker positions.
	for i := 0; i < 9; i++ {
		s.Call(f)
	}
	if b := s.ReuseBoundary(); b != -1 {
		t.Fatalf("boundary = %d, want -1 (markers jumped past)", b)
	}
	if s.MarkerCount() != 0 {
		t.Fatal("stale marker entries not pruned")
	}
}

func TestReuseBoundaryRaiseBelowMarkerKeepsDeeperMarker(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	for i := 0; i < 3; i++ {
		s.Call(f)
	}
	s.PushHandler() // handler at frame 2
	for i := 0; i < 7; i++ {
		s.Call(f)
	}
	s.PlaceMarker(1)
	s.PlaceMarker(6)
	s.ResetEpoch()
	s.Raise() // unwinds to frame 2: marker at 6 jumped past, marker at 1 safe
	if b := s.ReuseBoundary(); b != 1 {
		t.Fatalf("boundary = %d, want 1", b)
	}
}

func TestResetEpochClearsRaiseMark(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	s.Call(f)
	s.PushHandler()
	s.Call(f)
	s.Raise()
	if s.RaiseMark() == math.MaxInt {
		t.Fatal("raise mark not recorded")
	}
	s.ResetEpoch()
	if s.RaiseMark() != math.MaxInt {
		t.Fatal("epoch reset did not clear raise mark")
	}
}

func TestFrameStats(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	for i := 0; i < 5; i++ {
		s.Call(f)
	}
	s.Return()
	s.Return()
	s.Call(f)
	if s.MaxDepth() != 5 {
		t.Fatalf("MaxDepth = %d", s.MaxDepth())
	}
	if s.FramePushes() != 6 {
		t.Fatalf("FramePushes = %d", s.FramePushes())
	}
}

func TestMeterChargedByMutatorOps(t *testing.T) {
	tt, m, s := newTestEnv()
	f := simpleFrame(tt, "f", 2)
	before := m.Get(costmodel.Client)
	s.Call(f)
	s.SetSlot(1, 1)
	_ = s.Slot(1)
	s.Return()
	if m.Get(costmodel.Client) == before {
		t.Fatal("mutator ops charged nothing")
	}
	if m.GC() != 0 {
		t.Fatal("mutator ops charged GC time")
	}
}

func TestSSB(t *testing.T) {
	m := costmodel.NewMeter()
	b := NewSSB(m)
	a1 := mem.MakeAddr(1, 10)
	b.Record(a1)
	b.Record(a1) // duplicates kept
	b.Record(mem.MakeAddr(1, 20))
	if b.Len() != 3 || b.TotalRecorded() != 3 {
		t.Fatalf("len=%d total=%d", b.Len(), b.TotalRecorded())
	}
	if b.Entries()[0] != a1 || b.Entries()[1] != a1 {
		t.Fatal("duplicate entries not preserved")
	}
	b.Drain()
	if b.Len() != 0 || b.TotalRecorded() != 3 {
		t.Fatal("drain semantics wrong")
	}
	if m.Get(costmodel.Client) != 3*costmodel.WriteBarrier {
		t.Fatal("barrier cost not charged")
	}
}

func TestCardTable(t *testing.T) {
	m := costmodel.NewMeter()
	c := NewCardTable(m, 7) // 128-word cards
	if c.CardWords() != 128 {
		t.Fatalf("CardWords = %d", c.CardWords())
	}
	base := mem.MakeAddr(1, 1000)
	for i := uint64(0); i < 100; i++ {
		c.Record(base.Add(i % 10)) // hammer one card
	}
	if c.DirtyCards() != 1 {
		t.Fatalf("DirtyCards = %d, want 1 (dedup)", c.DirtyCards())
	}
	if c.TotalRecorded() != 100 {
		t.Fatal("total recorded")
	}
	c.Record(base.Add(500))
	if c.DirtyCards() != 2 {
		t.Fatal("second card not dirtied")
	}
	if len(c.Cards()) != 2 {
		t.Fatal("Cards() length")
	}
	c.Drain()
	if c.DirtyCards() != 0 {
		t.Fatal("drain did not clear cards")
	}
}

// TestCardTableCardsSorted dirties many cards in scattered order and
// requires Cards() to come back ascending: the collector scans cards in
// this order, so map iteration order here would make copy order and cost
// accounting vary run to run.
func TestCardTableCardsSorted(t *testing.T) {
	c := NewCardTable(costmodel.NewMeter(), 4) // 16-word cards
	for _, off := range []uint64{9000, 16, 4096, 0, 100000, 512, 48, 7777} {
		c.Record(mem.MakeAddr(1, off))
	}
	ids := c.Cards()
	if len(ids) != c.DirtyCards() {
		t.Fatalf("Cards() returned %d ids for %d dirty cards", len(ids), c.DirtyCards())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("Cards() not sorted ascending: %v", ids)
		}
	}
}

// TestStackInvariantsRandomWalk drives a long random sequence of calls,
// returns, handler pushes and raises, checking structural invariants at
// every step.
func TestStackInvariantsRandomWalk(t *testing.T) {
	tt, _, s := newTestEnv()
	var infos []*FrameInfo
	for i := 0; i < 8; i++ {
		infos = append(infos, simpleFrame(tt, "f", 2+i%5))
	}
	rng := rand.New(rand.NewSource(12345))

	for step := 0; step < 50000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || s.Depth() == 0: // call
			s.Call(infos[rng.Intn(len(infos))])
		case op < 8: // return (first discard handlers owned by the top frame)
			for handlerOnTop(s) {
				s.PopHandler()
			}
			if s.Depth() > 0 {
				s.Return()
			}
		case op == 8:
			s.PushHandler()

		default:
			if s.HandlerDepth() > 0 {
				s.Raise()

			}
		}
		// Invariants: frame chain keys decode consistently.
		if s.Depth() > 0 {
			fi := tt.Lookup(s.CurrentKey())
			if fi == nil {
				t.Fatal("current key unregistered")
			}
			base := s.FrameBase(s.Depth() - 1)
			if base+fi.Size != stackSP(s) {
				t.Fatalf("step %d: sp mismatch: base=%d size=%d sp=%d",
					step, base, fi.Size, stackSP(s))
			}
			for i := 1; i < s.Depth(); i++ {
				if s.StoredRetKey(i) != s.FrameKey(i-1) {
					t.Fatalf("step %d: frame %d ret key chain broken", step, i)
				}
			}
			if s.StoredRetKey(0) != 0 {
				t.Fatal("initial frame sentinel lost")
			}
		}
	}
}

func handlerOnTop(s *Stack) bool {
	return s.HandlerDepth() > 0 && s.Depth() > 0 &&
		s.handlers[len(s.handlers)-1] == s.Depth()-1
}

func stackSP(s *Stack) int { return s.sp }

func TestCollectorViewAccessors(t *testing.T) {
	tt, _, s := newTestEnv()
	f := simpleFrame(tt, "f", 3)
	if s.Table() != tt {
		t.Fatal("Table accessor wrong")
	}
	s.Call(f)
	s.Call(f)
	if s.FrameCount() != 2 {
		t.Fatalf("FrameCount = %d", s.FrameCount())
	}
	if s.FrameSerial(0) != 0 || s.FrameSerial(1) != 1 {
		t.Fatal("frame serials wrong")
	}
	if s.SP() != 6 {
		t.Fatalf("SP = %d", s.SP())
	}
	s.SetRawSlot(4, 99)
	if s.RawSlot(4) != 99 {
		t.Fatal("raw slot round trip failed")
	}
	if s.Slot(1) != 99 { // slot 1 of the top frame == absolute slot 4
		t.Fatal("raw slot does not alias frame slot")
	}
}

func TestTraceConstructors(t *testing.T) {
	if tr := COMPSLOT(3); tr.Kind != TraceCompute || tr.Arg != 3 || tr.ArgIsReg {
		t.Fatalf("COMPSLOT = %+v", tr)
	}
	if tr := COMPREG(5); tr.Kind != TraceCompute || tr.Arg != 5 || !tr.ArgIsReg {
		t.Fatalf("COMPREG = %+v", tr)
	}
	if tr := SAVE(7); tr.Kind != TraceCalleeSave || tr.Arg != 7 {
		t.Fatalf("SAVE = %+v", tr)
	}
}

func TestRuntimePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	tt, _, s := newTestEnv()
	fi := simpleFrame(tt, "f", 2)
	assertPanics("Return on empty", func() { s.Return() })
	assertPanics("PushHandler on empty", func() { s.PushHandler() })
	assertPanics("PopHandler with none", func() {
		s.Call(fi)
		s.PopHandler()
	})
	tt2, _, s2 := newTestEnv()
	_ = tt2
	assertPanics("Raise with no handler", func() {
		s2.Raise()
	})
	tt3, _, s3 := newTestEnv()
	assertPanics("slot access on empty stack", func() {
		_ = s3.Slot(1)
	})
	_ = tt3
	assertPanics("register empty frame size", func() {
		tt.Register("bad", nil, nil)
	})
	assertPanics("register wrong reg count", func() {
		tt.Register("bad", make([]SlotTrace, 2), make([]SlotTrace, 3))
	})
	assertPanics("lookup unregistered", func() {
		tt.Lookup(RetKey(4000))
	})
}

func TestCardBounds(t *testing.T) {
	c := NewCardTable(costmodel.NewMeter(), 7)
	start, n := c.CardBounds(3)
	if start != mem.Addr(3<<7) || n != 128 {
		t.Fatalf("CardBounds = %v, %d", start, n)
	}
}
