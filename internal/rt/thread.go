package rt

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
)

// Thread is one simulated mutator thread: its own stack — and therefore
// its own frames, registers, handlers, and stack markers — plus the
// write-barrier state the collector assigns it when it is attached: a
// private sequential store buffer, or a private dirty-card staging area
// over the shared card table. Threads are cooperative and deterministic:
// exactly one runs at a time, and the scheduler (the workload or the
// fuzz interpreter) switches between them at explicit points, so a
// single-thread program is the T=1 special case with byte-identical
// traces.
type Thread struct {
	id    int
	stack *Stack
	dead  bool

	ssb   *SSB       // set by an SSB-barrier collector
	stage *CardStage // set by a card-barrier collector
}

// ID returns the thread's id (0 is the primary thread).
func (t *Thread) ID() int { return t.id }

// Stack returns the thread's stack.
func (t *Thread) Stack() *Stack { return t.stack }

// Dead reports whether the thread has been joined. A dead thread's stack
// is no longer a root source, but its barrier state is still drained at
// the next collection: stores it made before joining are real pointer
// updates.
func (t *Thread) Dead() bool { return t.dead }

// SSB returns the thread's store buffer (nil unless an SSB-barrier
// collector attached one).
func (t *Thread) SSB() *SSB { return t.ssb }

// SetSSB assigns the thread's store buffer.
func (t *Thread) SetSSB(b *SSB) { t.ssb = b }

// Stage returns the thread's card staging area (nil unless a card-barrier
// collector attached one).
func (t *Thread) Stage() *CardStage { return t.stage }

// SetStage assigns the thread's card staging area.
func (t *Thread) SetStage(s *CardStage) { t.stage = s }

// ThreadSet owns the simulated threads of one run. It is created around
// the primary stack (thread 0); collectors attach to it to equip each
// thread with barrier state and to learn of later spawns.
type ThreadSet struct {
	meter   *costmodel.Meter
	table   *TraceTable
	threads []*Thread
	cur     *Thread
	onSpawn func(*Thread)
}

// NewThreadSet wraps the primary stack as thread 0 of a new set. Spawned
// threads get fresh stacks over the same trace table and meter.
func NewThreadSet(primary *Stack, meter *costmodel.Meter) *ThreadSet {
	t0 := &Thread{id: 0, stack: primary}
	return &ThreadSet{meter: meter, table: primary.Table(), threads: []*Thread{t0}, cur: t0}
}

// OnSpawn registers the collector's hook for equipping newly spawned
// threads with barrier state. It fires for future spawns only; the
// caller equips the already-existing threads itself (Threads).
func (ts *ThreadSet) OnSpawn(fn func(*Thread)) { ts.onSpawn = fn }

// Spawn creates a new live thread with an empty stack and makes it known
// to the attached collector. The new thread is NOT made current. The
// primary stack's telemetry recorder carries over so stub returns on
// spawned threads are counted like everyone else's.
func (ts *ThreadSet) Spawn() *Thread {
	st := NewStack(ts.table, ts.meter)
	st.tracer = ts.threads[0].stack.tracer
	t := &Thread{id: len(ts.threads), stack: st}
	ts.threads = append(ts.threads, t)
	if ts.onSpawn != nil {
		ts.onSpawn(t)
	}
	return t
}

// Len returns the number of threads ever created (including dead ones).
func (ts *ThreadSet) Len() int { return len(ts.threads) }

// LiveCount returns the number of threads not yet joined.
func (ts *ThreadSet) LiveCount() int {
	n := 0
	for _, t := range ts.threads {
		if !t.dead {
			n++
		}
	}
	return n
}

// Thread returns the thread with the given id.
func (ts *ThreadSet) Thread(id int) *Thread {
	if id < 0 || id >= len(ts.threads) {
		panic(fmt.Sprintf("rt: no thread %d (have %d)", id, len(ts.threads)))
	}
	return ts.threads[id]
}

// Threads returns all threads in id order, dead ones included. Callers
// scanning roots skip the dead; callers draining barriers do not.
func (ts *ThreadSet) Threads() []*Thread { return ts.threads }

// Current returns the running thread.
func (ts *ThreadSet) Current() *Thread { return ts.cur }

// SetCurrent switches execution to the thread with the given id.
// Switching to a dead thread panics: the scheduler owns liveness.
func (ts *ThreadSet) SetCurrent(id int) *Thread {
	t := ts.Thread(id)
	if t.dead {
		panic(fmt.Sprintf("rt: switch to joined thread %d", id))
	}
	ts.cur = t
	return t
}

// Join marks the thread with the given id dead. The primary thread and
// the current thread cannot be joined — the scheduler must switch away
// first — so there is always a live thread to run on.
func (ts *ThreadSet) Join(id int) {
	t := ts.Thread(id)
	if id == 0 {
		panic("rt: join of the primary thread")
	}
	if t == ts.cur {
		panic(fmt.Sprintf("rt: thread %d joining itself", id))
	}
	t.dead = true
}

// CardStage is a thread's private dirty-card staging area: pointer
// stores dirty the stage instead of the shared CardTable, and the
// collector flushes every stage into the table at the start of each
// collection. Staging keeps the mutator-side barrier thread-local while
// the card table itself stays shared; because Flush is a set-union and
// CardTable.Cards sorts, the flush order of stages (and of cards within
// a stage) cannot affect any observable state.
type CardStage struct {
	table *CardTable
	dirty map[uint64]struct{}
}

// NewCardStage creates an empty staging area over the shared table.
func NewCardStage(table *CardTable) *CardStage {
	return &CardStage{table: table, dirty: make(map[uint64]struct{})}
}

// Record stages the card containing addr, charging exactly what a direct
// CardTable.Record would: the store's barrier cost is the same whether
// or not it is staged, and the table's lifetime update count covers all
// threads.
func (s *CardStage) Record(addr mem.Addr) {
	s.dirty[uint64(addr)>>s.table.cardShift] = struct{}{}
	s.table.total++
	s.table.meter.Charge(costmodel.Client, costmodel.WriteBarrier)
}

// Staged returns the number of staged dirty cards.
func (s *CardStage) Staged() int { return len(s.dirty) }

// Covers reports whether the card containing addr is staged here (the
// per-thread analogue of CardTable.Covers, for integrity checkers).
func (s *CardStage) Covers(addr mem.Addr) bool {
	_, ok := s.dirty[uint64(addr)>>s.table.cardShift]
	return ok
}

// Flush merges the staged cards into the shared table and empties the
// stage. Charges nothing: the stores were charged at Record time.
func (s *CardStage) Flush() {
	for id := range s.dirty {
		s.table.dirty[id] = struct{}{}
	}
	clear(s.dirty)
}
