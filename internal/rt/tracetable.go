// Package rt simulates the TIL runtime structures the collectors operate
// on: the mutator stack of activation records described by trace tables,
// the general-purpose register file with callee-save discipline, the
// exception-handler chain, the sequential store buffer write barrier, and
// the stack-marker table used by generational stack collection.
//
// Fidelity notes (how this mirrors the paper's §2.3):
//
//   - A frame's slot 0 holds the return "address" — a key describing the
//     *caller's* frame layout, exactly as a real return address indexes the
//     trace table for the frame it returns into. The currently-executing
//     function's key describes the top frame.
//   - Slots and registers carry one of four traces: POINTER, NON-POINTER,
//     CALLEE-SAVE (value saved from a caller's register, pointer-ness
//     inherited), or COMPUTE (pointer-ness resolved at scan time from a
//     runtime type value living in another slot or register).
//   - Because of callee-save traces, frames cannot be decoded in isolation;
//     the collector's scan is two-pass (see internal/core/stackscan.go).
package rt

import "fmt"

// RetKey is a simulated return address: a key into the trace table that
// identifies a frame layout. Key 0 is the sentinel for "no caller" (the
// initial frame); StubKey marks a frame whose return goes through the
// generational-stack-collection stub.
type RetKey uint32

// StubKey is the distinguished return key installed by stack markers.
const StubKey RetKey = 0xFFFFFFFF

// NumRegs is the number of simulated general-purpose registers visible to
// the collector. The Alpha has 32; the TIL register allocator exposes a
// subset as roots. Sixteen keeps per-frame register traces realistic
// without inflating table sizes.
const NumRegs = 16

// TraceKind classifies how the collector should treat a slot or register.
type TraceKind uint8

const (
	// TraceNonPointer marks an untraced value (unboxed int, float, ...).
	TraceNonPointer TraceKind = iota
	// TracePointer marks a statically-known pointer.
	TracePointer
	// TraceCalleeSave marks a slot holding the saved value of a caller's
	// register (Arg = register number), or a register preserved unchanged
	// from the caller. Pointer-ness is inherited from the caller's state.
	TraceCalleeSave
	// TraceCompute marks a value whose pointer-ness the compiler could not
	// determine statically; it is computed at scan time from a runtime
	// type residing in slot Arg (ArgIsReg=false) or register Arg
	// (ArgIsReg=true) of the same frame.
	TraceCompute
)

// String returns the trace-kind name as it appears in the paper's Figure 1.
func (k TraceKind) String() string {
	switch k {
	case TraceNonPointer:
		return "NON-POINTER"
	case TracePointer:
		return "POINTER"
	case TraceCalleeSave:
		return "CALLEE-SAVE"
	case TraceCompute:
		return "COMPUTE"
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// SlotTrace describes one stack slot or register in a trace-table entry.
type SlotTrace struct {
	Kind     TraceKind
	Arg      uint8 // register number (CalleeSave) or slot/register index (Compute)
	ArgIsReg bool  // for Compute: whether Arg names a register rather than a slot
}

// Convenience constructors for building frame layouts.

// NP is a non-pointer slot trace.
func NP() SlotTrace { return SlotTrace{Kind: TraceNonPointer} }

// PTR is a statically-known pointer slot trace.
func PTR() SlotTrace { return SlotTrace{Kind: TracePointer} }

// SAVE marks a slot/register as holding caller register reg's value.
func SAVE(reg uint8) SlotTrace { return SlotTrace{Kind: TraceCalleeSave, Arg: reg} }

// COMPSLOT marks a slot whose pointer-ness comes from the runtime type in
// slot idx of the same frame.
func COMPSLOT(idx uint8) SlotTrace { return SlotTrace{Kind: TraceCompute, Arg: idx} }

// COMPREG marks a slot whose pointer-ness comes from the runtime type in
// register reg.
func COMPREG(reg uint8) SlotTrace { return SlotTrace{Kind: TraceCompute, Arg: reg, ArgIsReg: true} }

// TypePointer and TypeNonPointer are the runtime "type" values consulted
// when resolving COMPUTE traces, standing in for TIL's runtime type
// representations passed to polymorphic code.
const (
	TypeNonPointer uint64 = 0
	TypePointer    uint64 = 1
)

// FrameInfo is one trace-table entry: the layout of a frame, keyed by
// return address. Slot 0 is always the stored return key and is never
// traced directly.
type FrameInfo struct {
	Key   RetKey
	Name  string      // function name, for diagnostics and profiles
	Size  int         // total slots, including slot 0
	Slots []SlotTrace // len == Size; Slots[0] is ignored
	Regs  []SlotTrace // len == NumRegs; register state at call points
}

// TraceTable is the registry of frame layouts, indexed by return key.
// Keys are dense and assigned at registration, mirroring the compile-time
// construction of the table.
type TraceTable struct {
	infos []*FrameInfo // index = key; entry 0 is nil (sentinel)
}

// NewTraceTable creates an empty trace table.
func NewTraceTable() *TraceTable {
	return &TraceTable{infos: make([]*FrameInfo, 1, 64)}
}

// Register adds a frame layout and returns its entry. The slot-0 trace is
// forced to non-pointer (it holds the return key). A nil regs slice means
// "all registers dead at call points" (all non-pointer).
func (t *TraceTable) Register(name string, slots []SlotTrace, regs []SlotTrace) *FrameInfo {
	if len(slots) == 0 {
		panic("rt: frame must have at least the return-key slot")
	}
	if regs == nil {
		regs = make([]SlotTrace, NumRegs)
	}
	if len(regs) != NumRegs {
		panic(fmt.Sprintf("rt: frame %q has %d register traces, want %d", name, len(regs), NumRegs))
	}
	slots = append([]SlotTrace(nil), slots...)
	slots[0] = NP()
	fi := &FrameInfo{
		Key:   RetKey(len(t.infos)),
		Name:  name,
		Size:  len(slots),
		Slots: slots,
		Regs:  append([]SlotTrace(nil), regs...),
	}
	if fi.Key >= StubKey {
		panic("rt: trace table full")
	}
	t.infos = append(t.infos, fi)
	return fi
}

// Lookup returns the frame layout for a return key, or nil for the
// initial-frame sentinel.
func (t *TraceTable) Lookup(k RetKey) *FrameInfo {
	if k == 0 {
		return nil
	}
	if int(k) >= len(t.infos) {
		panic(fmt.Sprintf("rt: lookup of unregistered key %d", k))
	}
	return t.infos[k]
}

// Len returns the number of registered entries.
func (t *TraceTable) Len() int { return len(t.infos) - 1 }
