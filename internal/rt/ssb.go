package rt

import (
	"slices"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
)

// SSB is the sequential store buffer write barrier (Appel 1989): the
// mutator appends the address of every updated heap pointer field, and the
// collector drains the buffer at each collection to find old-to-young
// references. Duplicate entries are recorded — a site mutated repeatedly
// appears repeatedly, which is exactly the overhead that makes the Peg
// benchmark's root processing expensive (§4) and motivates the
// card-marking alternative.
type SSB struct {
	meter    *costmodel.Meter
	entries  []mem.Addr
	total    uint64 // lifetime count, for Table 2's "Number of Pointer Updates"
	draining bool   // re-entrancy guard: see DrainTo
}

// NewSSB creates an empty store buffer charging barrier costs to meter.
func NewSSB(meter *costmodel.Meter) *SSB {
	return &SSB{meter: meter}
}

// Record logs a pointer update to the heap field at addr. Called by the
// mutator on every pointer store; charges the write-barrier cost.
func (b *SSB) Record(addr mem.Addr) {
	if b.draining {
		panic("rt: SSB.Record during DrainTo — the drain iterates the live buffer, so a recorded entry would be appended to (or dropped from) the very slice being walked")
	}
	b.entries = append(b.entries, addr)
	b.total++
	b.meter.Charge(costmodel.Client, costmodel.WriteBarrier)
}

// Entries returns a copy of the buffered field addresses since the last
// Drain. The collector owns cost accounting for processing them. A copy is
// returned because Drain reuses the backing array: a caller holding the
// internal slice across a Drain/Record cycle would observe the buffer
// mutating under it (and a caller appending would corrupt the barrier).
// Inspection-time use only (the sanitizer snapshots the buffer); the
// collector's per-GC drain is DrainTo, which does not allocate.
func (b *SSB) Entries() []mem.Addr {
	return slices.Clone(b.entries)
}

// DrainTo invokes fn on every buffered entry in record order, then empties
// the buffer. Unlike Entries it does not copy: the mutator is stopped
// while the collector drains, so no Record can run concurrently, and fn
// must not call Record, Drain, or DrainTo itself — the buffer is being
// iterated in place, so re-entry would walk a slice mutating under it.
// That contract is enforced: re-entrant calls panic rather than silently
// corrupting the barrier. This is the minor-GC path — draining allocates
// nothing on the Go heap no matter how many updates the mutator buffered.
func (b *SSB) DrainTo(fn func(mem.Addr)) {
	if b.draining {
		panic("rt: SSB.DrainTo re-entered from its own callback")
	}
	b.draining = true
	defer func() { b.draining = false }()
	for _, fa := range b.entries {
		fn(fa)
	}
	b.entries = b.entries[:0]
}

// Drain empties the buffer (after the collector has processed it).
func (b *SSB) Drain() {
	if b.draining {
		panic("rt: SSB.Drain during DrainTo — the drain's own iteration owns the buffer")
	}
	b.entries = b.entries[:0]
}

// Len returns the number of buffered entries.
func (b *SSB) Len() int { return len(b.entries) }

// TotalRecorded returns the lifetime number of recorded pointer updates.
func (b *SSB) TotalRecorded() uint64 { return b.total }

// CardTable is the card-marking write barrier the paper points to
// (Sobalvarro 1988) as the fix for Peg's SSB blow-up: the heap is divided
// into fixed-size cards and a pointer store dirties its card bit instead of
// appending an entry, so repeated mutation of the same object costs one
// dirty card rather than millions of buffer entries. Implemented here as
// the §4 ablation (see the gcbench "-table barrier" experiment).
type CardTable struct {
	meter     *costmodel.Meter
	cardShift uint // log2 words per card
	dirty     map[uint64]struct{}
	total     uint64
}

// NewCardTable creates a card table with 2^cardShift words per card.
func NewCardTable(meter *costmodel.Meter, cardShift uint) *CardTable {
	return &CardTable{meter: meter, cardShift: cardShift, dirty: make(map[uint64]struct{})}
}

// Record dirties the card containing addr.
func (c *CardTable) Record(addr mem.Addr) {
	c.dirty[uint64(addr)>>c.cardShift] = struct{}{}
	c.total++
	c.meter.Charge(costmodel.Client, costmodel.WriteBarrier)
}

// DirtyCards returns the number of dirty cards.
func (c *CardTable) DirtyCards() int { return len(c.dirty) }

// CardWords returns the number of words covered by one card.
func (c *CardTable) CardWords() uint64 { return 1 << c.cardShift }

// CardBounds returns the first word address and word count of card id
// within its space.
func (c *CardTable) CardBounds(id uint64) (mem.Addr, uint64) {
	return mem.Addr(id << c.cardShift), 1 << c.cardShift
}

// Covers reports whether the card containing addr is dirty.
func (c *CardTable) Covers(addr mem.Addr) bool {
	_, ok := c.dirty[uint64(addr)>>c.cardShift]
	return ok
}

// Cards returns the dirty card ids in ascending address order. The order
// is load-bearing: the collector scans cards directly in this order, so
// it determines copy order, space layout, and cost accounting — returning
// map iteration order here would violate DESIGN.md's bit-for-bit
// reproducibility guarantee.
func (c *CardTable) Cards() []uint64 {
	return c.AppendCards(nil)
}

// AppendCards appends the dirty card ids in ascending address order to
// dst and returns the extended slice. Collectors pass a buffer retained
// across collections so the per-GC card walk allocates nothing once the
// buffer has grown to the working-set size.
func (c *CardTable) AppendCards(dst []uint64) []uint64 {
	start := len(dst)
	for id := range c.dirty {
		dst = append(dst, id)
	}
	slices.Sort(dst[start:])
	return dst
}

// Drain clears all dirty cards.
func (c *CardTable) Drain() {
	clear(c.dirty)
}

// TotalRecorded returns the lifetime number of recorded pointer updates.
func (c *CardTable) TotalRecorded() uint64 { return c.total }
