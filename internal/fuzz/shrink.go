package fuzz

// Minimize reduces a failing program while preserving pred (the failure
// predicate). It is ddmin-style: chunk-deletion passes with halving
// chunk sizes, followed by per-op operand simplification. The result
// is 1-minimal with respect to the attempted reductions or as far as
// maxEvals allowed, whichever comes first.
//
// Determinism: candidate order is a pure function of the input program,
// so the same failing program always minimizes to the same reproducer.
// Termination: every accepted candidate strictly shrinks the program
// (fewer ops) or strictly simplifies an operand toward zero, and every
// candidate costs one pred evaluation, so the loop is doubly bounded —
// structurally, and by maxEvals (<=0 means DefaultMinimizeEvals).
//
// pred must hold for p itself; if it does not, p is returned unchanged
// with evals 1.
func Minimize(p *Program, pred func(*Program) bool, maxEvals int) (*Program, int) {
	if maxEvals <= 0 {
		maxEvals = DefaultMinimizeEvals
	}
	evals := 0
	try := func(cand *Program) bool {
		if evals >= maxEvals {
			return false
		}
		evals++
		return pred(cand)
	}

	cur := &Program{Seed: p.Seed, Ops: append([]Op(nil), p.Ops...)}
	if !try(cur) {
		return cur, evals
	}

	// Phase 1: chunk deletion. Remove [i, i+chunk) runs of ops, halving
	// the chunk size whenever a full sweep at the current size removes
	// nothing more.
	for chunk := len(cur.Ops) / 2; chunk >= 1; chunk /= 2 {
		for {
			removed := false
			for i := 0; i+chunk <= len(cur.Ops) && evals < maxEvals; {
				cand := &Program{Seed: cur.Seed,
					Ops: append(append([]Op(nil), cur.Ops[:i]...), cur.Ops[i+chunk:]...)}
				if try(cand) {
					cur = cand
					removed = true
					// Do not advance i: the next chunk has shifted in.
				} else {
					i++
				}
			}
			if !removed || evals >= maxEvals {
				break
			}
		}
		if evals >= maxEvals {
			break
		}
	}

	// Phase 2: operand simplification. For each surviving op, try
	// zeroing each operand (V, then C, then B, then A); a zeroed
	// operand is the simplest spelling of "this value does not matter".
	for i := 0; i < len(cur.Ops) && evals < maxEvals; i++ {
		simplify := func(apply func(*Op)) {
			op := cur.Ops[i]
			apply(&op)
			if op == cur.Ops[i] {
				return // already simplest
			}
			cand := &Program{Seed: cur.Seed, Ops: append([]Op(nil), cur.Ops...)}
			cand.Ops[i] = op
			if try(cand) {
				cur = cand
			}
		}
		simplify(func(o *Op) { o.V = 0 })
		simplify(func(o *Op) { o.C = 0 })
		simplify(func(o *Op) { o.B = 0 })
		simplify(func(o *Op) { o.A = 0 })
	}
	return cur, evals
}

// DefaultMinimizeEvals bounds predicate evaluations during Minimize
// when the caller does not. Each evaluation re-runs the program across
// the configs the predicate consults, so this is the real cost knob.
const DefaultMinimizeEvals = 2000

// FailurePredicate builds a Minimize predicate that preserves fail's
// (config, kind) signature. The predicate runs the candidate against
// the failing configuration — plus the matrix baseline when the failure
// is relative (divergence) — and accepts any candidate reproducing the
// same kind of failure in the same configuration.
func FailurePredicate(fail Failure, cfgs []Config) func(*Program) bool {
	if cfgs == nil {
		cfgs = Matrix()
	}
	var subset []Config
	for i, cfg := range cfgs {
		if cfg.Name == fail.Config {
			if fail.Kind == FailDivergence && i != 0 {
				subset = []Config{cfgs[0], cfg}
			} else {
				subset = []Config{cfg}
			}
			break
		}
	}
	if subset == nil {
		// Unknown config (e.g. a +refkernels failure): fall back to the
		// full matrix and match on kind alone.
		return func(p *Program) bool {
			for _, f := range CheckProgram(p, cfgs) {
				if f.Kind == fail.Kind {
					return true
				}
			}
			return false
		}
	}
	return func(p *Program) bool {
		for _, f := range CheckProgram(p, subset) {
			if f.Kind == fail.Kind && f.Config == fail.Config {
				return true
			}
		}
		return false
	}
}
