package fuzz

import (
	"tilgc/internal/core"
	"tilgc/internal/obj"
)

// Matrix constants. Tight budgets make collections frequent: a 256-word
// nursery turns a few hundred ops into dozens of minor collections, and
// a LOS threshold of 64 words sits inside the generated array-length
// range so the same program exercises both small-array and LOS paths.
const (
	nurseryWords     = 256
	largeObjectWords = 64
	budgetSlackWords = 8192
	fuzzMarkerN      = 3
	fuzzAgingMinors  = 2
)

// PretenureSites is the site subset the ±pretenure matrix entries
// allocate directly into the tenured generation.
var PretenureSites = []obj.SiteID{3, 5}

// Config is one collector configuration in the differential matrix.
type Config struct {
	// Name labels the configuration in failures and reports.
	Name string
	// Semispace selects the semispace baseline instead of the
	// generational collector.
	Semispace bool
	// MarkerN enables generational stack collection with this spacing.
	MarkerN int
	// Cards replaces the SSB with card marking.
	Cards bool
	// AgingMinors delays promotion through an aging space.
	AgingMinors int
	// Pretenure statically pretenures PretenureSites.
	Pretenure bool
	// Adapt attaches the online pretenuring advisor.
	Adapt bool
	// Workers enables the deterministic parallel copying phases with
	// this worker count (0 or 1 is serial). Parallelism is accounting-
	// only, so the divergence oracle proves every client-visible result
	// is worker-count-invariant, and run-twice pins the sharded trace.
	Workers int
	// Old selects the old-generation collector (copy, marksweep, or
	// markcompact). The three produce different GC-side costs and heap
	// layouts but identical client-visible results, so the divergence
	// oracle holds across them. Ignored for semispace entries.
	Old core.OldCollector

	// wrap, when non-nil, decorates the freshly-built collector before
	// the program runs. It exists for the broken-collector injection
	// tests, which prove the oracles catch seeded corruption end-to-end.
	wrap func(core.Collector) core.Collector
}

// Matrix returns the standard differential matrix. The first entry is
// the baseline every other configuration's client-visible results are
// compared against. Scan elision is deliberately absent: its OnlyOldRefs
// contract is an assertion about the workload, which arbitrary generated
// programs do not honor.
func Matrix() []Config {
	return []Config{
		{Name: "semispace", Semispace: true},
		{Name: "semispace+markers", Semispace: true, MarkerN: fuzzMarkerN},
		{Name: "gen"},
		{Name: "gen+markers", MarkerN: fuzzMarkerN},
		{Name: "gen+cards", Cards: true},
		{Name: "gen+pretenure", Pretenure: true},
		{Name: "gen+aging", AgingMinors: fuzzAgingMinors},
		{Name: "gen+aging+cards", AgingMinors: fuzzAgingMinors, Cards: true},
		{Name: "gen+adapt", Adapt: true},
		{Name: "gen+markers+adapt", MarkerN: fuzzMarkerN, Adapt: true},
		{Name: "semispace+w4", Semispace: true, Workers: 4},
		{Name: "gen+w4", Workers: 4},
		{Name: "gen+markers+w2", MarkerN: fuzzMarkerN, Workers: 2},
		{Name: "gen+marksweep", Old: core.OldMarkSweep},
		{Name: "gen+marksweep+pretenure", Old: core.OldMarkSweep, Pretenure: true},
		{Name: "gen+marksweep+markers", Old: core.OldMarkSweep, MarkerN: fuzzMarkerN},
		{Name: "gen+marksweep+adapt", Old: core.OldMarkSweep, Adapt: true},
		{Name: "gen+marksweep+w4", Old: core.OldMarkSweep, Workers: 4},
		{Name: "gen+markcompact", Old: core.OldMarkCompact},
		{Name: "gen+markcompact+pretenure", Old: core.OldMarkCompact, Pretenure: true},
		{Name: "gen+markcompact+w2", Old: core.OldMarkCompact, Workers: 2},
	}
}

// siteNames labels the fuzz allocation sites for profiler and trace
// output (identical across configs so trace bytes stay comparable).
var siteNames = func() map[obj.SiteID]string {
	m := make(map[obj.SiteID]string, NumSites)
	names := [NumSites]string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < NumSites; i++ {
		m[obj.SiteID(i+1)] = names[i]
	}
	return m
}()

// budgetFor sizes a program's memory budget: live data can never exceed
// what the program allocates, so twice that plus slack keeps every
// configuration inside its budget while staying tight enough to force
// frequent collections via the small nursery.
func budgetFor(p *Program) uint64 {
	return 2*p.AllocWords() + budgetSlackWords
}

// pretenurePolicy builds the static policy for ±pretenure entries.
func pretenurePolicy() *core.PretenurePolicy {
	sites := make(map[obj.SiteID]core.PretenureDecision, len(PretenureSites))
	for _, s := range PretenureSites {
		sites[s] = core.PretenureDecision{}
	}
	return core.NewPretenurePolicy(sites)
}
