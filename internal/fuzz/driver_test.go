package fuzz

import (
	"bytes"
	"testing"
)

// TestRunSeedsSerialParallelIdentical: the report — verbose per-seed
// lines included — is byte-identical at every parallelism level. This is
// the property the CI fuzz job byte-compares through the CLI; here it is
// pinned at the package boundary where the worker pool lives.
func TestRunSeedsSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed matrix sweep")
	}
	run := func(par int) *bytes.Buffer {
		rep := RunSeeds(Options{From: 0, To: 6, Parallelism: par})
		var buf bytes.Buffer
		rep.Render(&buf, true)
		return &buf
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("serial and parallel reports differ:\n--- serial ---\n%s--- parallel ---\n%s",
			serial, parallel)
	}
	if serial.Len() == 0 {
		t.Fatal("verbose report is empty")
	}
}

// TestRunSeedsProgressAndOrder: results assemble in seed order whatever
// the completion order, the progress callback sees every seed exactly
// once, and a clean sweep reports zero failures.
func TestRunSeedsProgressAndOrder(t *testing.T) {
	var calls int
	lastDone := 0
	rep := RunSeeds(Options{
		From: 10, To: 14, Parallelism: 2, SkipRefKernels: true,
		Progress: func(done, total, failures int) {
			calls++
			if total != 4 {
				t.Errorf("progress total = %d, want 4", total)
			}
			if done != lastDone+1 {
				t.Errorf("progress done jumped %d -> %d", lastDone, done)
			}
			lastDone = done
			if failures != 0 {
				t.Errorf("clean sweep reported %d failures mid-run", failures)
			}
		},
	})
	if calls != 4 {
		t.Fatalf("progress called %d times, want 4", calls)
	}
	for i, sr := range rep.Results {
		if sr.Seed != uint64(10+i) {
			t.Fatalf("result %d is seed %d, want %d (seed order)", i, sr.Seed, 10+i)
		}
		if sr.Profile != ProfileOf(sr.Seed) {
			t.Fatalf("seed %d labeled profile %v, want %v", sr.Seed, sr.Profile, ProfileOf(sr.Seed))
		}
	}
	if rep.FailureCount() != 0 {
		t.Fatalf("clean seed range failed: %+v", rep)
	}
}

// TestRunSeedsMinimizesFailures: a sweep over a divergent matrix entry
// minimizes its failing seeds up to the cap, and every minimized program
// still reproduces its failure.
//
// The standard matrix has no known failures to shrink, so the divergence
// is injected: CheckSeed runs the standard matrix internally, which this
// test cannot reach — instead it exercises the Minimize plumbing directly
// through the driver's own path on a failing Failure.
func TestRunSeedsMinimizesFailures(t *testing.T) {
	cfgs := divergentMatrix()
	p := Generate(0)
	fails := CheckProgram(p, cfgs)
	if len(fails) == 0 {
		t.Fatal("divergent matrix produced no failures")
	}
	pred := FailurePredicate(fails[0], cfgs)
	min, evals := Minimize(p, pred, 200)
	if !pred(min) {
		t.Fatal("minimized program lost the divergence")
	}
	if len(min.Ops) >= len(p.Ops) {
		t.Fatalf("minimization did not shrink: %d -> %d ops", len(p.Ops), len(min.Ops))
	}
	if evals > 200 {
		t.Fatalf("minimization overran its budget: %d evals", evals)
	}
}

// TestReportRenderDeterministic: rendering is a pure function of the
// report value.
func TestReportRenderDeterministic(t *testing.T) {
	rep := &Report{
		From: 3, To: 5,
		Results: []SeedResult{
			{Seed: 3, Profile: ProfileOf(3), FP: 0xabc, Checksum: 0xdef},
			{Seed: 4, Profile: ProfileOf(4), Failures: []Failure{
				{Seed: 4, Config: "gen", Kind: FailDivergence, Detail: "fingerprint mismatch"},
			}},
		},
		RefFailures: []Failure{{Seed: 3, Config: "semispace+refkernels", Kind: FailCrash, Detail: "boom"}},
		Minimized: []Minimized{{
			Failure: Failure{Seed: 4, Config: "gen", Kind: FailDivergence},
			Program: &Program{Ops: []Op{{Kind: OpCollect}}},
			Evals:   17,
		}},
	}
	var a, b bytes.Buffer
	rep.Render(&a, true)
	rep.Render(&b, true)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same report differ")
	}
	if rep.FailureCount() != 2 {
		t.Fatalf("FailureCount = %d, want 2 (one seed failure + one ref failure)", rep.FailureCount())
	}
	for _, want := range []string{"seed 3", "FAIL seed 4 [gen]", "refkernels", "minimized seed 4", "2 failure(s)"} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Errorf("render missing %q:\n%s", want, a.String())
		}
	}
}
