package fuzz

import (
	"fmt"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// interp executes a program against one collector instance. Its
// semantics consult only collector-independent state — root nil-ness
// and object kind/arity/mask, never address values — so the same
// program makes the same client-visible decisions under every
// configuration in the matrix.
type interp struct {
	col   core.Collector
	stack *rt.Stack // the current thread's stack
	meter *costmodel.Meter
	fi    *rt.FrameInfo

	depth    int   // current thread's simulated frames (>= 1: the base frame stays)
	handlers []int // mirror of the current thread's handler chain: owning frame depth

	// threads is nil for programs without thread ops, which therefore run
	// the exact single-thread code paths. states holds each suspended
	// thread's interpreter state by id (the current thread's entry is
	// stale while it runs); curID names the running thread.
	threads *rt.ThreadSet
	states  []threadState
	curID   int

	checksum uint64
}

// threadState is the interpreter state of one suspended thread: its
// simulated call depth and its handler-chain mirror. The stack itself
// lives in the rt.Thread.
type threadState struct {
	depth    int
	handlers []int
}

// newInterp builds the runtime for one run: fresh trace table, stack,
// and the uniform all-pointer fuzz frame, with the base frame pushed.
// threads is non-nil only for programs with thread ops; the caller has
// already attached it to the collector.
func newInterp(col core.Collector, stack *rt.Stack, table *rt.TraceTable, meter *costmodel.Meter, threads *rt.ThreadSet) *interp {
	slots := make([]rt.SlotTrace, NumRoots+1)
	slots[0] = rt.NP()
	for i := 1; i <= NumRoots; i++ {
		slots[i] = rt.PTR()
	}
	fi := table.Register("fuzz", slots, nil)
	in := &interp{col: col, stack: stack, meter: meter, fi: fi, threads: threads, checksum: fnvOffset}
	stack.Call(fi)
	in.depth = 1
	if threads != nil {
		in.states = []threadState{{depth: 1}}
	}
	return in
}

// switchTo suspends the current thread's interpreter state and resumes
// thread id's. The caller has checked the target is live and different.
func (in *interp) switchTo(id int) {
	in.states[in.curID] = threadState{depth: in.depth, handlers: in.handlers}
	t := in.threads.SetCurrent(id)
	in.curID = id
	in.stack = t.Stack()
	in.depth = in.states[id].depth
	in.handlers = in.states[id].handlers
}

// fold mixes a value into the running client checksum (FNV-1a over
// 64-bit lanes).
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func (in *interp) fold(v uint64) {
	in.checksum = (in.checksum ^ v) * fnvPrime
}

// rootAddr reads root slot s of the current frame as a pointer.
func (in *interp) rootAddr(s int) mem.Addr { return mem.Addr(in.stack.Slot(s)) }

// decodeRoot decodes the object in root slot s, or ok=false when nil.
func (in *interp) decodeRoot(s int) (obj.Object, bool) {
	a := in.rootAddr(s)
	if a.IsNil() {
		return obj.Object{}, false
	}
	return obj.Decode(in.col.Heap(), a), true
}

// pickPtrField returns a pointer field index of o at-or-after start
// (wrapping), or ok=false when o has none.
func pickPtrField(o obj.Object, start uint64) (uint64, bool) {
	if o.Len == 0 {
		return 0, false
	}
	switch o.Kind {
	case obj.PtrArray:
		return start % o.Len, true
	case obj.Record:
		for k := uint64(0); k < o.Len; k++ {
			i := (start + k) % o.Len
			if o.Mask>>i&1 == 1 {
				return i, true
			}
		}
	}
	return 0, false
}

// pickRawField returns a non-pointer field index of o at-or-after start
// (wrapping), or ok=false when o has none.
func pickRawField(o obj.Object, start uint64) (uint64, bool) {
	if o.Len == 0 {
		return 0, false
	}
	switch o.Kind {
	case obj.RawArray:
		return start % o.Len, true
	case obj.Record:
		for k := uint64(0); k < o.Len; k++ {
			i := (start + k) % o.Len
			if o.Mask>>i&1 == 0 {
				return i, true
			}
		}
	}
	return 0, false
}

// run executes every op in order.
func (in *interp) run(p *Program) {
	for _, op := range p.Ops {
		in.step(op)
	}
}

// step executes one op. Every path is total.
func (in *interp) step(op Op) {
	switch op.Kind {
	case OpAllocRecord:
		in.allocRecord(op)
	case OpAllocPtrArray:
		in.allocPtrArray(op)
	case OpAllocRawArray:
		in.allocRawArray(op)
	case OpStorePtr:
		o, ok := in.decodeRoot(root(op.A))
		if !ok {
			return
		}
		i, ok := pickPtrField(o, uint64(op.B))
		if !ok {
			return
		}
		in.col.StoreField(o.Addr, i, in.stack.Slot(root(op.C)), true)
	case OpStoreInt:
		o, ok := in.decodeRoot(root(op.A))
		if !ok {
			return
		}
		i, ok := pickRawField(o, uint64(op.B))
		if !ok {
			return
		}
		in.col.StoreField(o.Addr, i, mix64(op.V), false)
	case OpLoadPtr:
		o, ok := in.decodeRoot(root(op.A))
		if !ok {
			return
		}
		i, ok := pickPtrField(o, uint64(op.B))
		if !ok {
			return
		}
		v := in.col.LoadField(o.Addr, i)
		in.stack.SetSlot(root(op.C), v)
		if mem.Addr(v).IsNil() {
			in.fold(1)
		} else {
			in.fold(2)
		}
	case OpLoadInt:
		o, ok := in.decodeRoot(root(op.A))
		if !ok {
			return
		}
		i, ok := pickRawField(o, uint64(op.B))
		if !ok {
			return
		}
		in.fold(in.col.LoadField(o.Addr, i))
	case OpDrop:
		in.stack.SetSlot(root(op.A), uint64(mem.Nil))
	case OpDup:
		in.stack.SetSlot(root(op.B), in.stack.Slot(root(op.A)))
	case OpCollect:
		in.col.Collect(op.V&1 == 1)
	case OpCall:
		if in.depth >= MaxCallDepth {
			return
		}
		var vals [NumRoots]uint64
		for i := 0; i < NumRoots; i++ {
			vals[i] = in.stack.Slot(i + 1)
		}
		in.stack.Call(in.fi)
		in.depth++
		for i, v := range vals {
			in.stack.SetSlot(i+1, v)
		}
	case OpReturn:
		if in.depth <= 1 {
			return
		}
		// Handlers owned by the returning frame end with it.
		for len(in.handlers) > 0 && in.handlers[len(in.handlers)-1] == in.depth-1 {
			in.stack.PopHandler()
			in.handlers = in.handlers[:len(in.handlers)-1]
		}
		// Pass root A back through the (untraced) return register; no
		// allocation intervenes, so the pointer cannot go stale.
		in.stack.SetReg(0, in.stack.Slot(root(op.A)))
		in.stack.Return()
		in.depth--
		in.stack.SetSlot(root(op.B), in.stack.Reg(0))
		in.stack.SetReg(0, 0)
	case OpPushHandler:
		in.stack.PushHandler()
		in.handlers = append(in.handlers, in.depth-1)
	case OpRaise:
		if len(in.handlers) == 0 {
			return
		}
		hf := in.handlers[len(in.handlers)-1]
		in.handlers = in.handlers[:len(in.handlers)-1]
		in.stack.Raise()
		in.depth = hf + 1
	case OpSetAux:
		a := in.rootAddr(root(op.A))
		if a.IsNil() {
			return
		}
		in.meter.Charge(costmodel.Client, costmodel.MutatorStore)
		obj.SetAux(in.col.Heap(), a, uint8(op.V))
	case OpGetAux:
		a := in.rootAddr(root(op.A))
		if a.IsNil() {
			return
		}
		in.meter.Charge(costmodel.Client, costmodel.MutatorLoad)
		in.fold(uint64(obj.Aux(in.col.Heap(), a)))
	case OpWalk:
		in.walk(op)
	case OpWork:
		in.meter.ChargeN(costmodel.Client, costmodel.ClientWork, op.V%997)
	case OpSpawn:
		if in.threads == nil || in.threads.Len() >= MaxThreads {
			return
		}
		// Read the spawner's roots before creating the thread; no
		// allocation intervenes before they are written into the new base
		// frame, so the pointers cannot go stale.
		var vals [NumRoots]uint64
		for i := 0; i < NumRoots; i++ {
			vals[i] = in.stack.Slot(i + 1)
		}
		t := in.threads.Spawn()
		st := t.Stack()
		st.Call(in.fi)
		for i, v := range vals {
			st.SetSlot(i+1, v)
		}
		in.states = append(in.states, threadState{depth: 1})
		in.fold(0x5a00 | uint64(t.ID()))
	case OpSwitch:
		if in.threads == nil {
			return
		}
		id := int(op.A) % in.threads.Len()
		t := in.threads.Thread(id)
		if t.Dead() || id == in.curID {
			return
		}
		in.switchTo(id)
		in.fold(0x5c00 | uint64(id))
	case OpJoin:
		if in.threads == nil {
			return
		}
		id := int(op.A) % in.threads.Len()
		if id == 0 || id == in.curID || in.threads.Thread(id).Dead() {
			return
		}
		in.threads.Join(id)
		in.fold(0x5d00 | uint64(id))
	}
}

// allocRecord allocates a record and initializes every field: pointer
// fields from the roots, raw fields from values derived from V.
func (in *interp) allocRecord(op Op) {
	length := op.recordLen()
	// Only mask bits under the arity matter; masking keeps the
	// fingerprint's mask fold identical across ops that differ only in
	// dead bits.
	var mask uint64
	if length > 0 {
		mask = mix64(op.V) & (1<<length - 1)
	}
	a := in.col.Alloc(obj.Record, length, op.site(), mask)
	// Roots may have moved during the allocation; re-read them now.
	for i := uint64(0); i < length; i++ {
		if mask>>i&1 == 1 {
			src := root(uint16(mix64(op.V+i) & 0xffff))
			in.col.InitField(a, i, in.stack.Slot(src))
		} else {
			in.col.InitField(a, i, mix64(op.V^(i+1)))
		}
	}
	in.stack.SetSlot(root(op.A), uint64(a))
}

// allocPtrArray allocates an all-pointer array, wiring a few elements
// to the roots.
func (in *interp) allocPtrArray(op Op) {
	length := op.arrayLen()
	a := in.col.Alloc(obj.PtrArray, length, op.site(), 0)
	step := 1 + mix64(op.V)%7
	for i := uint64(0); i < length; i += step {
		src := root(uint16(mix64(op.V+i) & 0xffff))
		in.col.InitField(a, i, in.stack.Slot(src))
	}
	in.stack.SetSlot(root(op.A), uint64(a))
}

// allocRawArray allocates an untraced array with derived contents.
func (in *interp) allocRawArray(op Op) {
	length := op.arrayLen()
	a := in.col.Alloc(obj.RawArray, length, op.site(), 0)
	for i := uint64(0); i < length; i++ {
		in.col.InitField(a, i, mix64(op.V^i))
	}
	in.stack.SetSlot(root(op.A), uint64(a))
}

// walk follows first-pointer-field links from root A, folding each
// visited object's shape into the checksum. Field loads cannot
// allocate, so the cursor may live in a Go local.
func (in *interp) walk(op Op) {
	a := in.rootAddr(root(op.A))
	steps := uint64(0)
	for !a.IsNil() && steps < MaxWalkSteps {
		o := obj.Decode(in.col.Heap(), a)
		in.fold(uint64(o.Kind)<<32 | o.Len)
		steps++
		i, ok := pickPtrField(o, uint64(op.B))
		if !ok {
			break
		}
		a = mem.Addr(in.col.LoadField(o.Addr, i))
	}
	in.fold(steps)
}

// ---- Client-visible heap fingerprint ----------------------------------------

// rootStacks lists the stacks whose slots are client-visible roots: the
// primary stack alone for thread-free programs, otherwise every live
// thread's stack in thread-id order (a joined thread's stack stops
// being a root source, so its private garbage is legitimately dead).
func rootStacks(primary *rt.Stack, ts *rt.ThreadSet) []*rt.Stack {
	if ts == nil {
		return []*rt.Stack{primary}
	}
	var out []*rt.Stack
	for _, t := range ts.Threads() {
		if !t.Dead() {
			out = append(out, t.Stack())
		}
	}
	return out
}

// fingerprint hashes the client-visible heap: a BFS over the object
// graph from every root slot of every frame of every given stack,
// visiting objects in first-discovery order and naming them by
// canonical id. The hash covers graph shape (which canonical object
// each pointer field names), object kind/arity/site/mask, aux bytes,
// and raw field values — and deliberately excludes addresses, space
// ids, and the collector-owned age byte, which legitimately differ
// across configurations.
func fingerprint(col core.Collector, stacks []*rt.Stack) uint64 {
	type queued struct{ a mem.Addr }
	h := col.Heap()
	ids := make(map[mem.Addr]uint64)
	var queue []queued
	hash := uint64(fnvOffset)
	fold := func(v uint64) { hash = (hash ^ v) * fnvPrime }
	visit := func(a mem.Addr) uint64 {
		if a.IsNil() {
			return 0 // canonical nil
		}
		if id, ok := ids[a]; ok {
			return id
		}
		id := uint64(len(ids) + 1)
		ids[a] = id
		queue = append(queue, queued{a})
		return id
	}

	// Roots in (stack, frame, slot) order. Every fuzz frame has the same
	// layout: slot 0 is the return key, slots 1..NumRoots are pointers.
	for _, stack := range stacks {
		for f := 0; f < stack.FrameCount(); f++ {
			base := stack.FrameBase(f)
			for s := 1; s <= NumRoots; s++ {
				fold(visit(mem.Addr(stack.RawSlot(base + s))))
			}
		}
	}

	for len(queue) > 0 {
		a := queue[0].a
		queue = queue[1:]
		o := obj.Decode(h, a)
		fold(uint64(o.Kind))
		fold(o.Len)
		fold(uint64(o.Site))
		fold(o.Mask)
		fold(uint64(obj.Aux(h, a)))
		for i := uint64(0); i < o.Len; i++ {
			v := obj.Field(h, a, i)
			if o.IsPtrField(i) {
				fold(visit(mem.Addr(v)))
			} else {
				fold(v)
			}
		}
	}
	fold(uint64(len(ids)))
	return hash
}

// FormatFailureDetail is a tiny helper shared by oracle messages.
func fmtHash(h uint64) string { return fmt.Sprintf("%016x", h) }
