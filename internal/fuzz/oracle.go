package fuzz

import (
	"bytes"
	"fmt"

	"tilgc/internal/adapt"
	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
	"tilgc/internal/rt"
	"tilgc/internal/sanitize"
	"tilgc/internal/trace"
)

// FailKind classifies an oracle failure.
type FailKind string

const (
	// FailCrash is a panic (in the collector, runtime, or interpreter).
	FailCrash FailKind = "crash"
	// FailSanitizer is a heap-integrity violation from internal/sanitize.
	FailSanitizer FailKind = "sanitizer"
	// FailTrace is a trace reconcile or validation error.
	FailTrace FailKind = "trace"
	// FailRunTwice is a same-config re-run that produced different
	// results (fingerprint, checksum, stats, or trace bytes).
	FailRunTwice FailKind = "run-twice"
	// FailWrapper is a sanitized+traced run that differed client-visibly
	// from a plain run of the same configuration.
	FailWrapper FailKind = "wrapper"
	// FailDivergence is a cross-config client-visible difference.
	FailDivergence FailKind = "divergence"
)

// Failure is one oracle violation, addressable by (seed, config, kind).
type Failure struct {
	Seed   uint64
	Config string
	Kind   FailKind
	Detail string
}

// String renders the failure for reports.
func (f Failure) String() string {
	return fmt.Sprintf("seed %d [%s] %s: %s", f.Seed, f.Config, f.Kind, f.Detail)
}

// runOutput carries everything one execution exposes to the oracles.
type runOutput struct {
	fp       uint64
	checksum uint64
	stats    core.GCStats
	traceRaw []byte
	sanViol  []string
	panicked any   // recovered panic value, nil when clean
	traceErr error // VerifyReconciled / Validate error
}

// execute runs the program once under cfg. traced attaches the
// recorder (and captures trace JSONL bytes); sanitized wraps the
// collector with every invariant pass after every collection,
// collecting violations instead of panicking.
func execute(p *Program, cfg Config, traced, sanitized bool) (out runOutput) {
	defer func() {
		if r := recover(); r != nil {
			out.panicked = r
		}
	}()

	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)

	// The profiler feeds the adaptive advisor, so adapt configs need it
	// even untraced; it observes without charging the meter, so its
	// presence never perturbs client-visible results.
	var profiler *prof.Profiler
	var profHook core.Profiler
	if traced || cfg.Adapt {
		profiler = prof.New(siteNames)
		profHook = profiler
	}
	var rec *trace.Recorder
	if traced {
		rec = trace.NewRecorder(meter)
		rec.SetSiteNames(siteNames)
		stack.SetTracer(rec)
		profiler.SetDeathSink(func(site obj.SiteID, b uint64) {
			rec.DeadSite(site, b/mem.WordSize)
		})
	}
	var engine *adapt.Engine
	if cfg.Adapt {
		// Small mass thresholds so decisions actually flip inside a few
		// hundred ops' worth of allocation.
		engine = adapt.New(meter, rec, adapt.Params{
			MinSampleWords: 64,
			MinOldWords:    64,
			CooldownEpochs: 2,
		})
		profiler.SetObserver(engine)
	}

	budget := budgetFor(p)
	var col core.Collector
	var attachThreads func(*rt.ThreadSet)
	if cfg.Semispace {
		s := core.NewSemispace(stack, meter, profHook, core.SemispaceConfig{
			BudgetWords:      budget,
			LargeObjectWords: largeObjectWords,
			MarkerN:          cfg.MarkerN,
			InitialWords:     nurseryWords * 4,
			Workers:          cfg.Workers,
			Trace:            rec,
		})
		col, attachThreads = s, s.AttachThreads
	} else {
		gcfg := core.GenConfig{
			BudgetWords:      budget,
			NurseryWords:     nurseryWords,
			LargeObjectWords: largeObjectWords,
			MarkerN:          cfg.MarkerN,
			AgingMinors:      cfg.AgingMinors,
			UseCardTable:     cfg.Cards,
			Workers:          cfg.Workers,
			OldCollector:     cfg.Old,
			Trace:            rec,
		}
		if cfg.Pretenure {
			gcfg.Pretenure = pretenurePolicy()
		}
		if engine != nil {
			gcfg.Advisor = engine
		}
		g := core.NewGenerational(stack, meter, profHook, gcfg)
		col, attachThreads = g, g.AttachThreads
	}
	// Programs that touch the thread machine get a ThreadSet, attached
	// before any allocation so the collector routes barriers and root
	// scans through it from the first collection; thread-free programs
	// keep the exact single-thread code paths.
	var threads *rt.ThreadSet
	if p.HasThreadOps() {
		threads = rt.NewThreadSet(stack, meter)
		attachThreads(threads)
	}
	if cfg.wrap != nil {
		col = cfg.wrap(col)
	}
	if sanitized {
		col = sanitize.Wrap(col, sanitize.Options{
			OnViolation: func(vs []sanitize.Violation) {
				for _, v := range vs {
					out.sanViol = append(out.sanViol, v.String())
				}
			},
		})
	}

	in := newInterp(col, stack, table, meter, threads)
	in.run(p)

	if profiler != nil {
		profiler.Finalize()
	}
	if engine != nil {
		engine.Seal()
	}
	out.fp = fingerprint(col, rootStacks(stack, threads))
	out.checksum = in.checksum
	out.stats = *col.Stats()
	if rec != nil {
		rec.Finish()
		if err := rec.VerifyReconciled(); err != nil {
			out.traceErr = err
			return out
		}
		f := trace.NewFile(rec.Data(cfg.Name))
		var buf bytes.Buffer
		if err := f.WriteJSONL(&buf); err != nil {
			out.traceErr = err
			return out
		}
		if err := f.Validate(); err != nil {
			out.traceErr = err
			return out
		}
		out.traceRaw = buf.Bytes()
	}
	return out
}

// checkConfig runs every per-config oracle for one matrix entry and
// returns (failures, primary output). The primary output is only
// meaningful when the run did not crash.
func checkConfig(p *Program, cfg Config) ([]Failure, runOutput) {
	fail := func(kind FailKind, format string, args ...any) Failure {
		return Failure{Seed: p.Seed, Config: cfg.Name, Kind: kind,
			Detail: fmt.Sprintf(format, args...)}
	}
	var fails []Failure

	out := execute(p, cfg, true, true)
	if out.panicked != nil {
		return append(fails, fail(FailCrash, "%v", out.panicked)), out
	}
	if len(out.sanViol) > 0 {
		f := fail(FailSanitizer, "%d violation(s): %s", len(out.sanViol), out.sanViol[0])
		fails = append(fails, f)
	}
	if out.traceErr != nil {
		fails = append(fails, fail(FailTrace, "%v", out.traceErr))
	}

	// Run-twice byte-identity under the identical configuration.
	out2 := execute(p, cfg, true, true)
	switch {
	case out2.panicked != nil:
		fails = append(fails, fail(FailRunTwice, "second run panicked: %v", out2.panicked))
	case out2.fp != out.fp:
		fails = append(fails, fail(FailRunTwice, "fingerprint %s vs %s", fmtHash(out.fp), fmtHash(out2.fp)))
	case out2.checksum != out.checksum:
		fails = append(fails, fail(FailRunTwice, "checksum %s vs %s", fmtHash(out.checksum), fmtHash(out2.checksum)))
	case out2.stats != out.stats:
		fails = append(fails, fail(FailRunTwice, "GC stats differ: %+v vs %+v", out.stats, out2.stats))
	case !bytes.Equal(out2.traceRaw, out.traceRaw):
		fails = append(fails, fail(FailRunTwice, "trace JSONL bytes differ"))
	}

	// Wrapper transparency: sanitizer + recorder must not perturb the
	// client-visible outcome.
	plain := execute(p, cfg, false, false)
	switch {
	case plain.panicked != nil:
		fails = append(fails, fail(FailWrapper, "plain run panicked: %v", plain.panicked))
	case plain.fp != out.fp:
		fails = append(fails, fail(FailWrapper, "plain fingerprint %s vs wrapped %s", fmtHash(plain.fp), fmtHash(out.fp)))
	case plain.checksum != out.checksum:
		fails = append(fails, fail(FailWrapper, "plain checksum %s vs wrapped %s", fmtHash(plain.checksum), fmtHash(out.checksum)))
	}

	return fails, out
}

// CheckProgram runs the program across cfgs (nil means the standard
// Matrix) and returns every oracle failure. The first configuration is
// the cross-config baseline.
func CheckProgram(p *Program, cfgs []Config) []Failure {
	if cfgs == nil {
		cfgs = Matrix()
	}
	var fails []Failure
	haveBase := false
	var baseOut runOutput
	var baseName string
	for _, cfg := range cfgs {
		cfgFails, out := checkConfig(p, cfg)
		fails = append(fails, cfgFails...)
		crashed := false
		for _, f := range cfgFails {
			if f.Kind == FailCrash {
				crashed = true
			}
		}
		if crashed {
			continue
		}
		if !haveBase {
			haveBase, baseOut, baseName = true, out, cfg.Name
			continue
		}
		if out.fp != baseOut.fp {
			fails = append(fails, Failure{Seed: p.Seed, Config: cfg.Name, Kind: FailDivergence,
				Detail: fmt.Sprintf("fingerprint %s, baseline %s has %s",
					fmtHash(out.fp), baseName, fmtHash(baseOut.fp))})
		} else if out.checksum != baseOut.checksum {
			fails = append(fails, Failure{Seed: p.Seed, Config: cfg.Name, Kind: FailDivergence,
				Detail: fmt.Sprintf("checksum %s, baseline %s has %s",
					fmtHash(out.checksum), baseName, fmtHash(baseOut.checksum))})
		}
	}
	return fails
}

// SeedResult summarizes one seed's differential check.
type SeedResult struct {
	Seed     uint64
	Profile  Profile
	FP       uint64 // baseline-config fingerprint
	Checksum uint64 // baseline-config client checksum
	Failures []Failure
}

// CheckSeed generates the seed's program and checks it across the
// standard matrix, also capturing the baseline outputs so a later
// reference-kernel pass can compare against them.
func CheckSeed(seed uint64) SeedResult {
	p := Generate(seed)
	res := SeedResult{Seed: seed, Profile: ProfileOf(seed)}
	cfgs := Matrix()
	res.Failures = CheckProgram(p, cfgs)
	base := execute(p, cfgs[0], false, false)
	if base.panicked == nil {
		res.FP = base.fp
		res.Checksum = base.checksum
	}
	return res
}

// CheckRefKernels re-runs the seed's program under cfg with whatever
// kernel implementation is globally selected (see
// core.SetReferenceKernels) and compares the client-visible outcome
// against the expected baseline values. The caller owns the global
// kernel flip; this function just runs and compares.
func CheckRefKernels(seed uint64, cfg Config, wantFP, wantSum uint64) []Failure {
	p := Generate(seed)
	out := execute(p, cfg, false, false)
	name := cfg.Name + "+refkernels"
	switch {
	case out.panicked != nil:
		return []Failure{{Seed: seed, Config: name, Kind: FailCrash,
			Detail: fmt.Sprintf("%v", out.panicked)}}
	case out.fp != wantFP:
		return []Failure{{Seed: seed, Config: name, Kind: FailDivergence,
			Detail: fmt.Sprintf("fingerprint %s, opt kernels had %s", fmtHash(out.fp), fmtHash(wantFP))}}
	case out.checksum != wantSum:
		return []Failure{{Seed: seed, Config: name, Kind: FailDivergence,
			Detail: fmt.Sprintf("checksum %s, opt kernels had %s", fmtHash(out.checksum), fmtHash(wantSum))}}
	}
	return nil
}
