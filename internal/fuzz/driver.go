package fuzz

import (
	"fmt"
	"io"
	"sync"

	"tilgc/internal/core"
	"tilgc/internal/harness"
)

// Options configures a seed sweep.
type Options struct {
	// From and To bound the seed range [From, To).
	From, To uint64
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallelism int
	// Minimize shrinks the first failing program of each failing seed
	// (up to MinimizeCap seeds) to a small reproducer.
	Minimize bool
	// MinimizeCap bounds how many failing seeds are minimized per sweep
	// (default 5); minimization re-runs the program thousands of times.
	MinimizeCap int
	// SkipRefKernels skips the reference-kernel pass. The pass flips a
	// process-global kernel seam, so it must not run concurrently with
	// any other collector activity in the process; the driver sequences
	// it correctly, but embedders that run collectors on other
	// goroutines can opt out.
	SkipRefKernels bool
	// Progress, when non-nil, receives (seeds done, total, failures so
	// far) after each seed completes. Calls are serialized but arrive in
	// completion order.
	Progress func(done, total, failures int)
}

// Minimized pairs a failure with its shrunken reproducer.
type Minimized struct {
	Failure Failure
	Program *Program
	Evals   int
}

// Report is the outcome of a sweep. All slices are in seed order,
// whatever the parallelism, so a rendered report is byte-identical at
// every parallelism level.
type Report struct {
	From, To    uint64
	Results     []SeedResult
	RefFailures []Failure
	Minimized   []Minimized
}

// FailureCount returns the total failures, including ref-kernel ones.
func (r *Report) FailureCount() int {
	n := len(r.RefFailures)
	for _, sr := range r.Results {
		n += len(sr.Failures)
	}
	return n
}

// refConfigs returns the matrix subset re-run under reference kernels:
// the Cheney baseline, the marker-heavy generational entry, and the two
// non-moving old generations, which together cover every copy/scan,
// sweep, and compact kernel seam.
func refConfigs() []Config {
	return []Config{
		{Name: "semispace", Semispace: true},
		{Name: "gen+markers", MarkerN: fuzzMarkerN},
		{Name: "gen+marksweep+pretenure", Old: core.OldMarkSweep, Pretenure: true},
		{Name: "gen+markcompact", Old: core.OldMarkCompact},
	}
}

// RunSeeds sweeps the seed range across the full collector matrix.
//
// The sweep is two passes. Pass one fans seeds over a worker pool, each
// seed running the whole matrix (plus run-twice, sanitizer, trace, and
// wrapper oracles) under the optimized kernels. Pass two flips the
// process-global kernel seam to the reference kernels — legal only
// while no collector is running, which is exactly the boundary between
// passes — and re-runs each seed under the ref subset, comparing
// client-visible results against pass one's baselines. Results assemble
// in seed order, so the report is deterministic at any parallelism.
func RunSeeds(opts Options) *Report {
	if opts.To < opts.From {
		opts.To = opts.From
	}
	n := int(opts.To - opts.From)
	rep := &Report{From: opts.From, To: opts.To, Results: make([]SeedResult, n)}

	// Progress arrives in completion order; the mutex serializes the
	// callback, and results still assemble in seed order regardless.
	var progMu sync.Mutex
	var done, failSeen int
	progress := func(failures int) {
		if opts.Progress == nil {
			return
		}
		progMu.Lock()
		defer progMu.Unlock()
		done++
		failSeen += failures
		opts.Progress(done, n, failSeen)
	}

	harness.ParallelEach(n, opts.Parallelism, func(i int) {
		rep.Results[i] = CheckSeed(opts.From + uint64(i))
		progress(len(rep.Results[i].Failures))
	})

	if !opts.SkipRefKernels {
		// All pass-one collectors have returned; the global seam may
		// flip. Every worker in pass two sees reference kernels.
		core.SetReferenceKernels(true)
		refFails := make([][]Failure, n)
		harness.ParallelEach(n, opts.Parallelism, func(i int) {
			sr := rep.Results[i]
			if len(sr.Failures) > 0 {
				return // already failing; keep the signal clean
			}
			for _, cfg := range refConfigs() {
				refFails[i] = append(refFails[i], CheckRefKernels(sr.Seed, cfg, sr.FP, sr.Checksum)...)
			}
		})
		core.SetReferenceKernels(false)
		for _, fs := range refFails {
			rep.RefFailures = append(rep.RefFailures, fs...)
		}
	}

	if opts.Minimize {
		limit := opts.MinimizeCap
		if limit <= 0 {
			limit = 5
		}
		for _, sr := range rep.Results {
			if len(sr.Failures) == 0 || len(rep.Minimized) >= limit {
				continue
			}
			fail := sr.Failures[0]
			pred := FailurePredicate(fail, nil)
			min, evals := Minimize(Generate(sr.Seed), pred, 0)
			rep.Minimized = append(rep.Minimized, Minimized{Failure: fail, Program: min, Evals: evals})
		}
	}
	return rep
}

// Render writes the report as deterministic text. verbose includes one
// line per seed (the CI serial-vs-parallel byte-compare uses this);
// otherwise only failures and the summary appear.
func (r *Report) Render(w io.Writer, verbose bool) {
	for _, sr := range r.Results {
		if verbose {
			status := "ok"
			if len(sr.Failures) > 0 {
				status = fmt.Sprintf("FAIL(%d)", len(sr.Failures))
			}
			fmt.Fprintf(w, "seed %d %s fp=%s sum=%s %s\n",
				sr.Seed, sr.Profile, fmtHash(sr.FP), fmtHash(sr.Checksum), status)
		}
		for _, f := range sr.Failures {
			fmt.Fprintf(w, "FAIL %s\n", f)
		}
	}
	for _, f := range r.RefFailures {
		fmt.Fprintf(w, "FAIL %s\n", f)
	}
	for _, m := range r.Minimized {
		fmt.Fprintf(w, "minimized seed %d (%s/%s) to %d ops in %d evals\n",
			m.Failure.Seed, m.Failure.Config, m.Failure.Kind, len(m.Program.Ops), m.Evals)
	}
	fmt.Fprintf(w, "fuzz: %d seeds [%d,%d), %d failure(s)\n",
		len(r.Results), r.From, r.To, r.FailureCount())
}
