package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusEntry is one committed reproducer: a minimized program plus the
// file it came from.
type CorpusEntry struct {
	Name    string // file base name, e.g. "seed-42-divergence.prog"
	Program *Program
}

// CorpusExt is the corpus file extension.
const CorpusExt = ".prog"

// LoadCorpus reads every *.prog file under dir, sorted by name so
// replay order is deterministic. A missing directory is an empty
// corpus, not an error.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fuzz: corpus: %w", err)
	}
	var out []CorpusEntry
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), CorpusExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus: %w", err)
		}
		p, err := ParseString(string(data))
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus %s: %w", e.Name(), err)
		}
		out = append(out, CorpusEntry{Name: e.Name(), Program: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// WriteCorpusFile writes a minimized reproducer to dir in the corpus
// format, prefixed with a comment describing the failure it pinned.
// The file name is derived from the seed and failure kind.
func WriteCorpusFile(dir string, p *Program, fail Failure) (string, error) {
	name := fmt.Sprintf("seed-%d-%s%s", fail.Seed, fail.Kind, CorpusExt)
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", fail.String())
	b.WriteString(p.Format())
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("fuzz: corpus: %w", err)
	}
	return path, nil
}
