package fuzz

import (
	"reflect"
	"testing"
)

// markerPred is a cheap synthetic failure predicate: the "bug" reproduces
// whenever the program still contains a collect op with an odd V. It
// lets the shrinker's contract be tested without running collectors.
func markerPred(p *Program) bool {
	for _, op := range p.Ops {
		if op.Kind == OpCollect && op.V&1 == 1 {
			return true
		}
	}
	return false
}

// TestMinimizeShrinksToCore: from a full generated program, the marker
// predicate minimizes to exactly the ops that carry it — one collect op —
// with its irrelevant operands zeroed by the simplification phase.
func TestMinimizeShrinksToCore(t *testing.T) {
	var p *Program
	for seed := uint64(0); ; seed++ {
		p = Generate(seed)
		if markerPred(p) {
			break
		}
	}
	min, evals := Minimize(p, markerPred, 0)
	if !markerPred(min) {
		t.Fatal("minimized program no longer satisfies the predicate")
	}
	if len(min.Ops) != 1 {
		t.Fatalf("minimized to %d ops, want 1 (a lone odd collect)", len(min.Ops))
	}
	op := min.Ops[0]
	if op.Kind != OpCollect || op.V&1 != 1 {
		t.Fatalf("surviving op %+v is not an odd collect", op)
	}
	// Operand simplification drives dead operands to their simplest
	// spelling: A/B/C to zero, V to the smallest value keeping V odd —
	// zeroing V is always attempted and must have been rejected.
	if op.A != 0 || op.B != 0 || op.C != 0 {
		t.Fatalf("dead operands not simplified: %+v", op)
	}
	if evals <= 0 || evals > DefaultMinimizeEvals {
		t.Fatalf("evals = %d, want within (0, %d]", evals, DefaultMinimizeEvals)
	}
	if min.Seed != p.Seed {
		t.Fatalf("minimized program lost its seed: %d vs %d", min.Seed, p.Seed)
	}
}

// TestMinimizeDeterministic: the same failing program always minimizes to
// the same reproducer with the same evaluation count.
func TestMinimizeDeterministic(t *testing.T) {
	var p *Program
	for seed := uint64(0); ; seed++ {
		p = Generate(seed)
		if markerPred(p) {
			break
		}
	}
	m1, e1 := Minimize(p, markerPred, 0)
	m2, e2 := Minimize(p, markerPred, 0)
	if !reflect.DeepEqual(m1, m2) || e1 != e2 {
		t.Fatalf("two minimizations diverged: %d vs %d ops, %d vs %d evals",
			len(m1.Ops), len(m2.Ops), e1, e2)
	}
}

// TestMinimizeRespectsEvalBudget: maxEvals is a hard cap, and whatever
// comes back under a tight budget still satisfies the predicate.
func TestMinimizeRespectsEvalBudget(t *testing.T) {
	p := &Program{Ops: make([]Op, 64)}
	for i := range p.Ops {
		p.Ops[i] = Op{Kind: OpWork, V: uint64(i)}
	}
	p.Ops[50] = Op{Kind: OpCollect, A: 9, B: 9, C: 9, V: 3}

	for _, budget := range []int{1, 2, 5, 17} {
		calls := 0
		counting := func(q *Program) bool { calls++; return markerPred(q) }
		min, evals := Minimize(p, counting, budget)
		if calls != evals {
			t.Fatalf("budget %d: reported %d evals, predicate ran %d times", budget, evals, calls)
		}
		if evals > budget {
			t.Fatalf("budget %d: used %d evaluations", budget, evals)
		}
		if !markerPred(min) {
			t.Fatalf("budget %d: result lost the failure", budget)
		}
		if len(min.Ops) > len(p.Ops) {
			t.Fatalf("budget %d: result grew from %d to %d ops", budget, len(p.Ops), len(min.Ops))
		}
	}
}

// TestMinimizeNonFailingInput: when the predicate does not hold for the
// input, Minimize hands it back untouched after the single guard check.
func TestMinimizeNonFailingInput(t *testing.T) {
	p := &Program{Seed: 5, Ops: []Op{{Kind: OpWork, V: 2}}}
	min, evals := Minimize(p, markerPred, 0)
	if evals != 1 {
		t.Fatalf("evals = %d, want 1 (the guard check)", evals)
	}
	if !reflect.DeepEqual(min, p) {
		t.Fatalf("non-failing input was modified: %+v", min)
	}
}

// TestMinimizeMonotonic: every accepted step shrinks or simplifies, so
// the result is never larger than the input and predicate evaluations
// are bounded by the default even for the permissive always-true
// predicate (the worst case for a shrinker loop).
func TestMinimizeMonotonic(t *testing.T) {
	p := Generate(11)
	min, evals := Minimize(p, func(*Program) bool { return true }, 0)
	if len(min.Ops) != 0 {
		t.Fatalf("always-true predicate left %d ops, want 0", len(min.Ops))
	}
	if evals > DefaultMinimizeEvals {
		t.Fatalf("evals = %d, exceeded the default budget", evals)
	}
}

// TestFailurePredicateSubset: a divergence failure's predicate consults
// only the baseline and the failing config, and it reproduces the
// injected divergence on the original program (the precondition Minimize
// requires). The broken-collector machinery lives in broken_test.go;
// here a site-remapping wrapper provides a cheap, deterministic
// divergence.
func TestFailurePredicateSubset(t *testing.T) {
	cfgs := divergentMatrix()
	p := Generate(0) // every generated program allocates (root prologue)
	fails := CheckProgram(p, cfgs)
	var div *Failure
	for i := range fails {
		if fails[i].Kind == FailDivergence {
			div = &fails[i]
			break
		}
	}
	if div == nil {
		t.Fatalf("site-remap config produced no divergence; failures: %v", fails)
	}
	pred := FailurePredicate(*div, cfgs)
	if !pred(p) {
		t.Fatal("failure predicate does not hold for the original failing program")
	}
	if pred(&Program{Seed: p.Seed}) {
		t.Fatal("failure predicate holds for the empty program")
	}
}
