package fuzz

import (
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// Broken-collector injection suite: each test seeds a specific corruption
// into an otherwise-correct collector through the matrix's wrap hook and
// asserts that the oracle designed for that corruption class fires. This
// is the end-to-end proof that a clean sweep means something — if a
// seeded bug of each class slips past every oracle, a real one would too.
//
// The one oracle kind without a wrapper-level injection is FailTrace: the
// recorder reconciles against the cost meter, which a Collector-interface
// wrapper cannot reach. internal/trace's own validation tests cover that
// oracle's teeth.

// broken delegates the full Collector surface plus Inspect, so the
// sanitizer can still see through an injected wrapper to the real heap
// (otherwise every check would fail on "not inspectable" rather than on
// the corruption under test).
type broken struct{ core.Collector }

func (b broken) Inspect() core.Inspection {
	return b.Collector.(core.Inspectable).Inspect()
}

// siteRemap mutates every allocation's site id: client-visible (the
// fingerprint folds sites), collector-legal (the heap stays perfectly
// consistent), and quiet (no crash, no invariant broken) — exactly the
// class of bug only differential comparison can catch.
type siteRemap struct{ broken }

func (s siteRemap) Alloc(k obj.Kind, length uint64, site obj.SiteID, mask uint64) mem.Addr {
	return s.Collector.Alloc(k, length, site%NumSites+1, mask)
}

// dropBarrier routes pointer stores around the write barrier: the store
// itself lands (the heap word changes) but no SSB entry or card is
// recorded, so an old-to-young reference goes unremembered — the classic
// lost-update barrier bug the sanitizer's remembered-set pass exists for.
type dropBarrier struct{ broken }

func (d dropBarrier) StoreField(a mem.Addr, i uint64, v uint64, isPtr bool) {
	if isPtr {
		d.Collector.InitField(a, i, v)
		return
	}
	d.Collector.StoreField(a, i, v, false)
}

// panicOnCollect wedges the collector on its nth explicit collection.
type panicOnCollect struct {
	broken
	left *int
}

func (p panicOnCollect) Collect(major bool) {
	*p.left--
	if *p.left <= 0 {
		panic("injected: collector wedged")
	}
	p.Collector.Collect(major)
}

// genCfg returns a plain generational matrix entry decorated by wrap.
func genCfg(name string, wrap func(core.Collector) core.Collector) Config {
	return Config{Name: name, wrap: wrap}
}

// divergentMatrix pairs the clean semispace baseline with a site-remapped
// generational collector (shared with the shrinker tests).
func divergentMatrix() []Config {
	return []Config{
		{Name: "semispace", Semispace: true},
		genCfg("gen", func(c core.Collector) core.Collector { return siteRemap{broken{c}} }),
	}
}

// kindsOf collects the failure kinds present in fails.
func kindsOf(fails []Failure) map[FailKind]int {
	m := make(map[FailKind]int)
	for _, f := range fails {
		m[f.Kind]++
	}
	return m
}

// testSeeds is the fixed seed set the injection tests run over; a small
// set still covers several generation profiles (here barrier, barrier,
// and los) and every member trips each injected defect. Adding a
// profile remaps every seed's program (ProfileOf's modulus changes), so
// this set is re-picked when the profile list grows.
var testSeeds = []uint64{0, 2, 3}

// TestInjectionControl: the identity wrap changes nothing — the broken
// delegation shell itself must not trip any oracle, or every other test
// in this file would be measuring the shell.
func TestInjectionControl(t *testing.T) {
	cfgs := []Config{
		{Name: "semispace", Semispace: true},
		genCfg("gen", func(c core.Collector) core.Collector { return broken{c} }),
	}
	for _, seed := range testSeeds {
		if fails := CheckProgram(Generate(seed), cfgs); len(fails) != 0 {
			t.Fatalf("seed %d: identity wrapper tripped oracles: %v", seed, fails)
		}
	}
}

// TestInjectedDivergence: a silent client-visible corruption (site remap)
// must surface as FailDivergence against the baseline — and as nothing
// louder, since the corrupted collector is internally consistent.
func TestInjectedDivergence(t *testing.T) {
	for _, seed := range testSeeds {
		fails := CheckProgram(Generate(seed), divergentMatrix())
		kinds := kindsOf(fails)
		if kinds[FailDivergence] == 0 {
			t.Fatalf("seed %d: site remap produced no divergence; kinds: %v", seed, kinds)
		}
		for k := range kinds {
			if k != FailDivergence {
				t.Fatalf("seed %d: site remap tripped %s, want divergence only: %v", seed, k, fails)
			}
		}
	}
}

// TestInjectedBarrierDrop: a write-barrier bypass must be caught by the
// sanitizer's invariant passes (remembered-set completeness or the
// stale-pointer checks downstream of the lost entry).
func TestInjectedBarrierDrop(t *testing.T) {
	cfg := genCfg("gen", func(c core.Collector) core.Collector { return dropBarrier{broken{c}} })
	caught := false
	for _, seed := range testSeeds {
		kinds := kindsOf(CheckProgram(Generate(seed), []Config{cfg}))
		// A lost remembered-set entry surfaces as a sanitizer violation
		// when the heap is checked, or as a crash if the collector chases
		// the stale reference first. Both are loud; neither is silence.
		if kinds[FailSanitizer] > 0 {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("barrier bypass never produced a sanitizer violation over seeds %v", testSeeds)
	}
}

// TestInjectedCrash: a collector panic is contained by the harness and
// reported as FailCrash rather than taking down the sweep.
func TestInjectedCrash(t *testing.T) {
	for _, seed := range testSeeds {
		n := 2
		cfg := genCfg("gen", func(c core.Collector) core.Collector {
			return panicOnCollect{broken{c}, &n}
		})
		kinds := kindsOf(CheckProgram(Generate(seed), []Config{cfg}))
		if kinds[FailCrash] == 0 {
			t.Fatalf("seed %d: injected panic not reported as a crash; kinds: %v", seed, kinds)
		}
	}
}

// TestInjectedRunTwice: nondeterminism across identical runs — corruption
// present in the second construction of the collector but not the first —
// must surface as FailRunTwice.
func TestInjectedRunTwice(t *testing.T) {
	seed := testSeeds[0]
	construction := 0
	cfg := genCfg("gen", func(c core.Collector) core.Collector {
		construction++
		if construction == 2 {
			return siteRemap{broken{c}}
		}
		return broken{c}
	})
	kinds := kindsOf(CheckProgram(Generate(seed), []Config{cfg}))
	if kinds[FailRunTwice] == 0 {
		t.Fatalf("second-run-only corruption not reported as run-twice; kinds: %v", kinds)
	}
}

// TestInjectedWrapperDivergence: corruption present only in the plain
// (unsanitized, untraced) run must surface as FailWrapper — the oracle
// that keeps the sanitizer and recorder honest about transparency.
func TestInjectedWrapperDivergence(t *testing.T) {
	seed := testSeeds[0]
	construction := 0
	cfg := genCfg("gen", func(c core.Collector) core.Collector {
		construction++
		if construction == 3 { // checkConfig's third build is the plain run
			return siteRemap{broken{c}}
		}
		return broken{c}
	})
	kinds := kindsOf(CheckProgram(Generate(seed), []Config{cfg}))
	if kinds[FailWrapper] == 0 {
		t.Fatalf("plain-run-only corruption not reported as wrapper divergence; kinds: %v", kinds)
	}
}
