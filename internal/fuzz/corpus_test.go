package fuzz

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCorpusReplays runs every committed corpus program across the full
// collector matrix: each is a pin — a program that once mattered (a
// feature-pair stress or a minimized reproducer) and must stay clean
// forever. It also guards against corpus rot: a pin that no longer
// triggers any collection exercises nothing, so each program must still
// collect under the generational baseline.
func TestCorpusReplays(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("committed corpus has %d programs, want >= 3", len(entries))
	}
	for _, e := range entries {
		t.Run(e.Name, func(t *testing.T) {
			if fails := CheckProgram(e.Program, nil); len(fails) != 0 {
				for _, f := range fails {
					t.Errorf("%s", f)
				}
			}
			out := execute(e.Program, Config{Name: "gen"}, false, false)
			if out.panicked != nil {
				t.Fatalf("gen replay panicked: %v", out.panicked)
			}
			if out.stats.NumGC == 0 {
				t.Fatal("corpus program no longer triggers any collection — it pins nothing")
			}
		})
	}
}

// TestCorpusNamesDocumentIntent: committed entries follow the naming
// conventions the tooling writes and the docs describe — either a
// feature-pair pin ("pair-*") or a minimized failure ("seed-N-kind").
func TestCorpusNamesDocumentIntent(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name, "pair-") && !strings.HasPrefix(e.Name, "seed-") {
			t.Errorf("corpus file %q matches neither pair-* nor seed-*", e.Name)
		}
		if !strings.HasSuffix(e.Name, CorpusExt) {
			t.Errorf("corpus file %q lacks the %s extension", e.Name, CorpusExt)
		}
	}
}

// TestWriteLoadCorpusRoundTrip: a minimized reproducer written by the
// sweep tooling reloads as the identical program, named by its failure,
// alongside the rest of the directory in sorted order.
func TestWriteLoadCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fail := Failure{Seed: 42, Config: "gen+markers", Kind: FailDivergence, Detail: "fingerprint mismatch"}
	p := &Program{Seed: 42, Ops: []Op{
		{Kind: OpAllocRecord, A: 0, B: 1, C: 3, V: 9},
		{Kind: OpCollect, V: 1},
	}}
	path, err := WriteCorpusFile(dir, p, fail)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "seed-42-divergence.prog" {
		t.Fatalf("corpus file named %q", filepath.Base(path))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# seed 42 [gen+markers] divergence") {
		t.Fatalf("corpus file does not lead with its failure comment:\n%s", data)
	}

	// A non-corpus file is ignored; a second reproducer sorts after.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a program"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCorpusFile(dir, p, Failure{Seed: 7, Config: "gen", Kind: FailCrash}); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	if entries[0].Name != "seed-42-divergence.prog" || entries[1].Name != "seed-7-crash.prog" {
		t.Fatalf("entries out of sorted order: %s, %s", entries[0].Name, entries[1].Name)
	}
	if !reflect.DeepEqual(entries[0].Program, p) {
		t.Fatal("reloaded program differs from the written one")
	}

	// Missing directory: empty corpus, not an error.
	if got, err := LoadCorpus(filepath.Join(dir, "absent")); err != nil || got != nil {
		t.Fatalf("missing dir: got %v, %v; want nil, nil", got, err)
	}
	// A malformed .prog file is a hard error — silently skipping a
	// reproducer would un-pin a regression.
	if err := os.WriteFile(filepath.Join(dir, "zz-bad.prog"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("corrupt corpus file loaded without error")
	}
}
