package fuzz

// rng is a splitmix64 generator (Steele, Lea, Flood 2014): a tiny,
// stdlib-free PRNG whose entire state is one word, so a program is a pure
// function of its 64-bit seed on every platform. The fuzz package sits
// inside the gclint detrand fence, which bans math/rand outright — the
// whole point of the fleet is that seed N is the same program on every
// machine, forever.
type rng struct{ state uint64 }

// newRNG seeds a generator. Seed 0 is valid (splitmix64 has no weak
// seeds; the additive constant separates successive states).
func newRNG(seed uint64) *rng { return &rng{state: seed} }

// mix64 is the splitmix64 output function, also used standalone to derive
// deterministic per-field values from op payloads.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next returns the next 64-bit value.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool {
	return r.intn(den) < num
}
