package fuzz

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic: a program is a pure function of its seed —
// the whole design rests on a failing seed being a complete bug report.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Fatal("distinct seeds generated identical programs")
	}
}

// TestGenerateBounds: op counts stay inside [minOps, minOps+spanOps) plus
// the root prologue, and the prologue fills every root with a record.
func TestGenerateBounds(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := Generate(seed)
		n := len(p.Ops) - NumRoots
		if n < minOps || n >= minOps+spanOps {
			t.Fatalf("seed %d: %d body ops outside [%d,%d)", seed, n, minOps, minOps+spanOps)
		}
		for i := 0; i < NumRoots; i++ {
			op := p.Ops[i]
			if op.Kind != OpAllocRecord {
				t.Fatalf("seed %d: prologue op %d is %v, want alloc-record", seed, i, op.Kind)
			}
			if got := root(op.A); got != i+1 {
				t.Fatalf("seed %d: prologue op %d targets root %d, want %d", seed, i, got, i+1)
			}
			if op.recordLen() == 0 {
				t.Fatalf("seed %d: prologue op %d allocates an empty record", seed, i)
			}
		}
		if p.AllocWords() == 0 {
			t.Fatalf("seed %d: program allocates nothing", seed)
		}
	}
}

// TestProfileCoverage: the seed-to-profile mapping reaches every stress
// profile within a small seed window, so any contiguous sweep exercises
// every feature pairing.
func TestProfileCoverage(t *testing.T) {
	seen := make(map[Profile]bool)
	for seed := uint64(0); seed < 64; seed++ {
		p := ProfileOf(seed)
		if p < 0 || p >= numProfiles {
			t.Fatalf("seed %d: profile %d out of range", seed, p)
		}
		seen[p] = true
	}
	if len(seen) != int(numProfiles) {
		t.Fatalf("seeds 0..63 covered %d/%d profiles: %v", len(seen), numProfiles, seen)
	}
}

// TestPhaseFlipSites: the phase-flip profile must use sites 1..3 in the
// first half and 4..6 in the second — the site-population flip is what
// trains then mistrains the adaptive advisor.
func TestPhaseFlipSites(t *testing.T) {
	var seed uint64
	for ; ProfileOf(seed) != ProfilePhaseFlip; seed++ {
	}
	p := Generate(seed)
	body := p.Ops[NumRoots:]
	half := len(body) / 2
	for i, op := range body {
		switch op.Kind {
		case OpAllocRecord, OpAllocPtrArray, OpAllocRawArray:
			s := op.site()
			if i < half && s > NumSites/2 {
				t.Fatalf("seed %d: first-half op %d allocates at site %d, want 1..%d", seed, i, s, NumSites/2)
			}
			if i >= half && s <= NumSites/2 {
				t.Fatalf("seed %d: second-half op %d allocates at site %d, want %d..%d",
					seed, i, s, NumSites/2+1, NumSites)
			}
		}
	}
}

// TestFormatRoundTrip: the corpus text format preserves programs exactly
// — a committed reproducer must replay the very ops that failed.
func TestFormatRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p := Generate(seed)
		back, err := ParseString(p.Format())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("seed %d: format round-trip changed the program", seed)
		}
	}
}

// TestParseRejects: malformed corpus files fail with line-positioned
// errors instead of decoding to a silently different program.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"no header":   "seed 1\nwork 0 0 0 0\n",
		"bad header":  "tilgc-fuzz-program v99\nseed 1\n",
		"unknown op":  formatHeader + "\nseed 1\nteleport 0 0 0 0\n",
		"bad arity":   formatHeader + "\nseed 1\nwork 0 0 0\n",
		"bad operand": formatHeader + "\nseed 1\nwork x 0 0 0\n",
		"bad seed":    formatHeader + "\nseed zebra\n",
		"empty":       "",
	}
	for name, in := range cases {
		if _, err := ParseString(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Comments and blank lines are fine anywhere.
	p, err := ParseString("# pinned reproducer\n" + formatHeader + "\n\nseed 7\n# body\nwork 1 2 3 4\n")
	if err != nil {
		t.Fatalf("commented program rejected: %v", err)
	}
	if p.Seed != 7 || len(p.Ops) != 1 || p.Ops[0].Kind != OpWork {
		t.Fatalf("commented program misparsed: %+v", p)
	}
}

// TestExecuteDeterministic is the direct unit form of the run-twice
// oracle: two plain executions of the same program under the same config
// agree on fingerprint, checksum, and stats.
func TestExecuteDeterministic(t *testing.T) {
	p := Generate(3)
	for _, cfg := range []Config{{Name: "semispace", Semispace: true}, {Name: "gen+markers", MarkerN: fuzzMarkerN}} {
		a := execute(p, cfg, false, false)
		b := execute(p, cfg, false, false)
		if a.panicked != nil || b.panicked != nil {
			t.Fatalf("%s: panicked: %v / %v", cfg.Name, a.panicked, b.panicked)
		}
		if a.fp != b.fp || a.checksum != b.checksum || a.stats != b.stats {
			t.Fatalf("%s: two executions disagree: fp %s/%s sum %s/%s",
				cfg.Name, fmtHash(a.fp), fmtHash(b.fp), fmtHash(a.checksum), fmtHash(b.checksum))
		}
	}
}
