package fuzz

import (
	"testing"
)

// threadProgram is a hand-written program that exercises the whole
// thread machine: spawns up to the cap's neighborhood, cross-thread
// heap traffic through shared roots, barriered stores on non-primary
// threads, collections triggered from every thread, and joins that
// leave barrier records behind.
func threadProgram() *Program {
	return &Program{Ops: []Op{
		// Prologue: fill the roots so field ops have targets.
		{Kind: OpAllocRecord, A: 0, B: 0, C: 4, V: 101},
		{Kind: OpAllocRecord, A: 1, B: 1, C: 5, V: 202},
		{Kind: OpAllocRecord, A: 2, B: 2, C: 3, V: 303},
		{Kind: OpAllocRecord, A: 3, B: 3, C: 6, V: 404},
		{Kind: OpAllocRecord, A: 4, B: 4, C: 4, V: 505},
		{Kind: OpAllocRecord, A: 5, B: 5, C: 5, V: 606},
		{Kind: OpAllocRecord, A: 6, B: 0, C: 2, V: 707},
		{Kind: OpAllocRecord, A: 7, B: 1, C: 3, V: 808},

		{Kind: OpSpawn},
		{Kind: OpSpawn}, // threads 1 and 2, roots seeded from thread 0
		{Kind: OpSwitch, A: 1},
		{Kind: OpAllocPtrArray, A: 2, B: 2, C: 79, V: 909}, // thread 1 private
		{Kind: OpStorePtr, A: 2, B: 0, C: 4},               // barriered store on thread 1
		{Kind: OpCollect},
		{Kind: OpSwitch, A: 2},
		{Kind: OpAllocRawArray, A: 3, B: 3, C: 99, V: 1010},
		{Kind: OpSetAux, A: 3, V: 77},
		{Kind: OpStorePtr, A: 1, B: 1, C: 3},
		{Kind: OpSwitch, A: 0},
		{Kind: OpStorePtr, A: 1, B: 2, C: 2},
		{Kind: OpCollect, V: 1}, // major
		{Kind: OpJoin, A: 1},    // thread 1 dies holding private data
		{Kind: OpAllocPtrArray, A: 4, B: 4, C: 69, V: 1111},
		{Kind: OpWalk, A: 1},
		{Kind: OpCollect},
		{Kind: OpJoin, A: 2},
		{Kind: OpCollect, V: 1},
	}}
}

// TestThreadProgramMatrixClean runs the hand-written thread program
// through every oracle across the full matrix — the same bar every
// generated thread program has to clear.
func TestThreadProgramMatrixClean(t *testing.T) {
	p := threadProgram()
	if !p.HasThreadOps() {
		t.Fatal("thread program reports no thread ops")
	}
	for _, f := range CheckProgram(p, nil) {
		t.Errorf("%s", f)
	}
}

// TestDeadThreadStackStopsBeingRoots: joining a thread removes its stack
// from the root set, so data reachable only from the joined thread's
// frames becomes garbage — the fingerprint of a run that joins must
// differ from the identical run that does not.
func TestDeadThreadStackStopsBeingRoots(t *testing.T) {
	base := []Op{
		{Kind: OpAllocRecord, A: 0, B: 0, C: 4, V: 11},
		{Kind: OpSpawn},
		{Kind: OpSwitch, A: 1},
		// Replace the inherited alias with a thread-1-private array.
		{Kind: OpAllocRawArray, A: 1, B: 1, C: 49, V: 22},
		{Kind: OpSwitch, A: 0},
	}
	joined := &Program{Ops: append(append([]Op{}, base...),
		Op{Kind: OpJoin, A: 1}, Op{Kind: OpCollect, V: 1})}
	kept := &Program{Ops: append(append([]Op{}, base...),
		Op{Kind: OpCollect, V: 1})}

	cfg := Config{Name: "gen"}
	a := execute(joined, cfg, false, false)
	b := execute(kept, cfg, false, false)
	if a.panicked != nil || b.panicked != nil {
		t.Fatalf("panicked: %v / %v", a.panicked, b.panicked)
	}
	if a.fp == b.fp {
		t.Fatalf("fingerprint %s ignores the joined thread's dropped roots", fmtHash(a.fp))
	}
}

// TestThreadProfileGeneratesThreadOps: the threads profile exists in the
// seed-to-profile mapping and its programs actually drive the thread
// machine, so sweeps exercise spawns/switches/joins without hand-written
// cases.
func TestThreadProfileGeneratesThreadOps(t *testing.T) {
	var seed uint64
	for ; ProfileOf(seed) != ProfileThreads; seed++ {
	}
	p := Generate(seed)
	if !p.HasThreadOps() {
		t.Fatalf("seed %d (threads profile) generated no thread ops", seed)
	}
	var spawns int
	for _, op := range p.Ops {
		if op.Kind == OpSpawn {
			spawns++
		}
	}
	if spawns == 0 {
		t.Fatalf("seed %d (threads profile) never spawns", seed)
	}
	out := execute(p, Config{Name: "gen+markers", MarkerN: fuzzMarkerN}, false, false)
	if out.panicked != nil {
		t.Fatalf("threads-profile seed %d panicked: %v", seed, out.panicked)
	}
	if out.stats.NumGC == 0 {
		t.Fatalf("threads-profile seed %d never collected", seed)
	}
}

// TestSpawnCapIsTotal: a program of nothing but spawns stays inside
// MaxThreads and remains clean — the cap is a no-op, not a crash.
func TestSpawnCapIsTotal(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: OpAllocRecord, A: 0, B: 0, C: 3, V: 1}}}
	for i := 0; i < 2*MaxThreads; i++ {
		p.Ops = append(p.Ops, Op{Kind: OpSpawn})
	}
	p.Ops = append(p.Ops, Op{Kind: OpCollect, V: 1})
	out := execute(p, Config{Name: "gen"}, false, false)
	if out.panicked != nil {
		t.Fatalf("spawn flood panicked: %v", out.panicked)
	}
}
