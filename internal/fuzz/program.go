// Package fuzz is the differential fuzzing fleet: a deterministic,
// seedable generator of mutator programs that are executed across the
// full collector matrix (semispace, generational ±markers, ±cards,
// ±aging, ±pretenure, ±adapt, opt vs reference kernels, ±sanitize) and
// checked against a set of client-observational oracles:
//
//   - cross-config equivalence: the client-visible heap (reachable
//     object graph shapes, raw field values, aux bytes) and the running
//     client checksum are identical under every collector configuration;
//   - run-twice byte-identity: re-running the same program under the
//     same configuration reproduces the fingerprint, the checksum, the
//     GC statistics, and the trace JSONL bytes exactly;
//   - sanitizer-clean: every invariant pass of internal/sanitize holds
//     after every collection;
//   - trace soundness: the recorder reconciles against the cost meter
//     and the emitted trace file validates;
//   - wrapper transparency: a sanitized+traced run is client-identical
//     to a plain run.
//
// Programs are pure functions of a 64-bit seed (splitmix64; the package
// sits inside the gclint detrand fence, so math/rand and wall-clock are
// banned), which makes every failure a one-word reproducer. A ddmin
// shrinker reduces failing programs, and minimized reproducers live in
// corpus/ where they replay as ordinary go test cases.
package fuzz

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"tilgc/internal/obj"
)

// Interpreter limits. These are part of the program semantics: changing
// them changes what committed corpus programs do, so they are fixed.
const (
	// NumRoots is the number of pointer slots per fuzz frame (slots
	// 1..NumRoots; slot 0 is the return key).
	NumRoots = 8
	// MaxRecordLen bounds record arity in generated programs.
	MaxRecordLen = 6
	// MaxArrayLen bounds array lengths. It deliberately straddles the
	// matrix's LOS threshold (LargeObjectWords, 64 words) so the same
	// program exercises both small-array and LOS paths.
	MaxArrayLen = 120
	// MaxCallDepth bounds the simulated call depth.
	MaxCallDepth = 40
	// NumSites is the number of allocation sites programs draw from
	// (sites 1..NumSites). The pretenuring matrix entries pretenure a
	// fixed subset of them.
	NumSites = 6
	// MaxWalkSteps bounds an OpWalk traversal.
	MaxWalkSteps = 64
	// MaxThreads bounds the simulated thread set a program may spawn
	// (thread 0, the primary, counts toward the cap).
	MaxThreads = 8
)

// OpKind enumerates the operations of the fuzz program machine.
type OpKind uint8

const (
	// OpAllocRecord allocates a record: dst root A, site from B, arity
	// from C, pointer mask and field initialization derived from V.
	OpAllocRecord OpKind = iota
	// OpAllocPtrArray allocates an all-pointer array into root A (site
	// B, length from C); elements are initialized from the roots.
	OpAllocPtrArray
	// OpAllocRawArray allocates an untraced array into root A (site B,
	// length from C); elements are initialized from V.
	OpAllocRawArray
	// OpStorePtr stores root C into a pointer field (from B) of the
	// object in root A, through the write barrier.
	OpStorePtr
	// OpStoreInt stores a value derived from V into a non-pointer field
	// (from B) of the object in root A.
	OpStoreInt
	// OpLoadPtr loads a pointer field (from B) of the object in root A
	// into root C, folding the loaded pointer's nil-ness into the
	// checksum.
	OpLoadPtr
	// OpLoadInt loads a non-pointer field (from B) of the object in
	// root A and folds the value into the checksum.
	OpLoadInt
	// OpDrop clears root A.
	OpDrop
	// OpDup copies root A into root B.
	OpDup
	// OpCollect forces a collection (major when V is odd).
	OpCollect
	// OpCall pushes a new frame, passing every root along.
	OpCall
	// OpReturn pops the current frame, passing root A back to the
	// caller's root B (no-op in the base frame).
	OpReturn
	// OpPushHandler installs an exception handler on the current frame.
	OpPushHandler
	// OpRaise raises to the most recent handler (no-op without one).
	OpRaise
	// OpSetAux writes aux byte V to the object in root A.
	OpSetAux
	// OpGetAux folds the aux byte of the object in root A into the
	// checksum.
	OpGetAux
	// OpWalk walks the pointer chain from root A (first pointer field,
	// bounded by MaxWalkSteps), folding shapes and length into the
	// checksum.
	OpWalk
	// OpWork charges abstract mutator computation derived from V.
	OpWork
	// OpSpawn spawns a new mutator thread (no-op at the MaxThreads cap),
	// seeding its base frame with the current thread's roots. The new
	// thread is not made current.
	OpSpawn
	// OpSwitch switches execution to thread A mod the threads ever
	// created (no-op when the target is dead or already current).
	OpSwitch
	// OpJoin joins thread A mod the threads ever created (no-op on the
	// primary thread, the current thread, or an already-dead thread). A
	// joined thread's stack stops being a root source; its barrier state
	// still drains at the next collection.
	OpJoin

	numOpKinds
)

// opNames maps each OpKind to its corpus-file spelling.
var opNames = [numOpKinds]string{
	"alloc-record", "alloc-ptrarray", "alloc-rawarray",
	"store-ptr", "store-int", "load-ptr", "load-int",
	"drop", "dup", "collect",
	"call", "return", "push-handler", "raise",
	"set-aux", "get-aux", "walk", "work",
	"spawn", "switch", "join",
}

// String returns the corpus-file spelling of the op kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one instruction. Every op is total: operands out of range are
// reduced modulo the relevant limit, and ops that need a live object
// are no-ops when their root is nil. Semantics depend only on
// collector-independent state (nil-ness, object kind/arity/mask), never
// on address values, so a program behaves identically under every
// configuration.
type Op struct {
	Kind    OpKind
	A, B, C uint16
	V       uint64
}

// Program is a deterministic mutator program. Seed records the
// generator seed it came from (zero for hand-written programs).
type Program struct {
	Seed uint64
	Ops  []Op
}

// recordLen returns the record arity encoded by an alloc-record op.
func (o Op) recordLen() uint64 { return uint64(o.C) % (MaxRecordLen + 1) }

// arrayLen returns the array length encoded by an array alloc op.
func (o Op) arrayLen() uint64 { return 1 + uint64(o.C)%MaxArrayLen }

// site returns the allocation site encoded by an alloc op.
func (o Op) site() obj.SiteID { return obj.SiteID(1 + o.B%NumSites) }

// root reduces a raw operand to a root slot index (1..NumRoots).
func root(x uint16) int { return 1 + int(x)%NumRoots }

// HasThreadOps reports whether the program ever touches the thread
// machine. The interpreter builds a ThreadSet only for programs that do,
// so thread-free programs run the exact single-thread code paths.
func (p *Program) HasThreadOps() bool {
	for _, op := range p.Ops {
		switch op.Kind {
		case OpSpawn, OpSwitch, OpJoin:
			return true
		}
	}
	return false
}

// AllocWords returns the total words (headers included) the program
// allocates, an upper bound on its live data used to size matrix
// budgets.
func (p *Program) AllocWords() uint64 {
	var total uint64
	for _, op := range p.Ops {
		switch op.Kind {
		case OpAllocRecord:
			total += obj.SizeWords(obj.Record, op.recordLen())
		case OpAllocPtrArray:
			total += obj.SizeWords(obj.PtrArray, op.arrayLen())
		case OpAllocRawArray:
			total += obj.SizeWords(obj.RawArray, op.arrayLen())
		}
	}
	return total
}

// ---- Corpus text format -----------------------------------------------------

// formatHeader is the first line of every corpus file.
const formatHeader = "tilgc-fuzz-program v1"

// Format renders the program in the corpus text format: a header line,
// a seed line, then one op per line as "kind A B C V". Lines beginning
// with '#' are comments.
func (p *Program) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", formatHeader)
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	for _, op := range p.Ops {
		fmt.Fprintf(&b, "%s %d %d %d %d\n", op.Kind, op.A, op.B, op.C, op.V)
	}
	return b.String()
}

// Parse reads a program in the corpus text format.
func Parse(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	sawHeader := false
	p := &Program{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !sawHeader {
			if text != formatHeader {
				return nil, fmt.Errorf("fuzz: line %d: want header %q, got %q", line, formatHeader, text)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "seed" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("fuzz: line %d: malformed seed line", line)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &p.Seed); err != nil {
				return nil, fmt.Errorf("fuzz: line %d: bad seed: %v", line, err)
			}
			continue
		}
		if len(fields) != 5 {
			return nil, fmt.Errorf("fuzz: line %d: want 'kind A B C V', got %q", line, text)
		}
		kind, ok := opKindByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("fuzz: line %d: unknown op %q", line, fields[0])
		}
		var a, b, c uint16
		var v uint64
		if _, err := fmt.Sscanf(fields[1]+" "+fields[2]+" "+fields[3]+" "+fields[4],
			"%d %d %d %d", &a, &b, &c, &v); err != nil {
			return nil, fmt.Errorf("fuzz: line %d: bad operands: %v", line, err)
		}
		p.Ops = append(p.Ops, Op{Kind: kind, A: a, B: b, C: c, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fuzz: %v", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("fuzz: missing %q header", formatHeader)
	}
	return p, nil
}

// ParseString parses a program from a corpus-format string.
func ParseString(s string) (*Program, error) {
	return Parse(strings.NewReader(s))
}

// opKindByName resolves a corpus-file op spelling.
func opKindByName(name string) (OpKind, bool) {
	for i, n := range opNames {
		if n == name {
			return OpKind(i), true
		}
	}
	return 0, false
}
