package fuzz

// Profile names a generation profile: a weighting of the op set that
// stresses one feature pairing from the paper's design space.
type Profile int

const (
	// ProfileStacks stresses deep stacks × markers × stub returns ×
	// exception raises (generational stack collection, §5).
	ProfileStacks Profile = iota
	// ProfileBarrier stresses SSB floods and card drains: many barriered
	// old-to-young stores between frequent minor collections (§4).
	ProfileBarrier
	// ProfileLOS stresses the large-object space × pretenuring: array
	// lengths straddling the LOS threshold, aux-byte traffic, and
	// cross-region stores (§6).
	ProfileLOS
	// ProfilePhaseFlip stresses adaptive promote/demote: the program's
	// site usage flips mid-run, PhaseShift-style, so warm sites go cold
	// while cold sites go hot (§9 mistrain demotion).
	ProfilePhaseFlip
	// ProfileServer stresses the request-server shape the SLO layer
	// measures: bursts of allocation with retention stored into the root
	// tables (sessions that survive), separated by idle work-only gaps —
	// pauses cluster inside bursts, scratch dies between them.
	ProfileServer
	// ProfileMixed draws every op uniformly.
	ProfileMixed
	// ProfileThreads stresses the simulated thread set: spawns, switches,
	// and joins interleaved with cross-thread heap traffic, so every
	// thread's private barrier state and stack roots get exercised — and
	// joined threads leave barrier records behind that must still drain.
	ProfileThreads
	// ProfileFrag stresses old-generation fragmentation: allocations
	// interleave the pretenured sites with nursery sites and LOS arrays,
	// and heavy dropping between forced collections punches interleaved
	// holes — free-list reuse for the mark-sweep old generation, long
	// slides for mark-compact, and dead-run coalescing for both.
	ProfileFrag

	numProfiles
)

// String names the profile.
func (p Profile) String() string {
	switch p {
	case ProfileStacks:
		return "stacks"
	case ProfileBarrier:
		return "barrier"
	case ProfileLOS:
		return "los"
	case ProfilePhaseFlip:
		return "phase-flip"
	case ProfileServer:
		return "server"
	case ProfileMixed:
		return "mixed"
	case ProfileThreads:
		return "threads"
	case ProfileFrag:
		return "frag"
	}
	return "profile?"
}

// ProfileOf returns the generation profile seed selects.
func ProfileOf(seed uint64) Profile {
	return Profile(mix64(seed^0x9e0f17e5) % uint64(numProfiles))
}

const (
	minOps  = 150
	spanOps = 450 // ops range over [minOps, minOps+spanOps)
)

// Generate derives a program from a seed. The mapping is pure: the same
// seed yields the same program on every platform, forever — a failing
// seed is a complete bug report.
func Generate(seed uint64) *Program {
	r := newRNG(mix64(seed))
	profile := ProfileOf(seed)
	n := minOps + r.intn(spanOps)
	p := &Program{Seed: seed, Ops: make([]Op, 0, n+NumRoots)}

	// Prologue: populate the roots so early field ops have targets.
	for i := 0; i < NumRoots; i++ {
		p.Ops = append(p.Ops, Op{
			Kind: OpAllocRecord,
			A:    uint16(i), // root() maps this to slot i+1
			B:    uint16(r.intn(NumSites)),
			C:    uint16(1 + r.intn(MaxRecordLen)),
			V:    r.next(),
		})
	}

	for i := 0; i < n; i++ {
		op := Op{
			A: uint16(r.next() & 0xffff),
			B: uint16(r.next() & 0xffff),
			C: uint16(r.next() & 0xffff),
			V: r.next(),
		}
		op.Kind = pickKind(r, profile)
		if profile == ProfilePhaseFlip {
			// Flip the site population at half-run: sites 1..3 first,
			// then 4..6, so the adaptive advisor trains on a regime that
			// stops being true.
			if i < n/2 {
				op.B = uint16(op.B % (NumSites / 2))
			} else {
				op.B = uint16(NumSites/2 + op.B%(NumSites-NumSites/2))
			}
		}
		if profile == ProfileFrag && i%2 == 0 {
			// Alternate allocations onto the pretenured sites (3 and 5,
			// i.e. B = 2 or 4) so the ±pretenure entries lay every other
			// object straight into the old generation; the profile's heavy
			// drop weight then punches interleaved holes there.
			op.B = uint16(2 + 2*(op.B&1))
		}
		if profile == ProfileServer {
			// Request cadence: three burst stretches, then an idle gap of
			// pure mutator work — the server workloads' arrival schedule in
			// grammar form. Burst ops bias their site to the low half, so
			// retention concentrates where an advisor would train.
			if (i/40)%4 == 3 {
				op.Kind = OpWork
			} else {
				op.B = uint16(op.B % (NumSites / 2))
			}
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// weighted is one entry of a profile's op-weight table.
type weighted struct {
	kind   OpKind
	weight int
}

// profileWeights gives each profile's op mix. Weights are relative.
var profileWeights = [numProfiles][]weighted{
	ProfileStacks: {
		{OpCall, 18}, {OpReturn, 14}, {OpPushHandler, 6}, {OpRaise, 4},
		{OpAllocRecord, 14}, {OpAllocPtrArray, 3},
		{OpStorePtr, 6}, {OpLoadPtr, 4}, {OpLoadInt, 3},
		{OpDrop, 4}, {OpDup, 4}, {OpCollect, 4}, {OpWalk, 2}, {OpWork, 4},
	},
	ProfileBarrier: {
		{OpAllocRecord, 16}, {OpAllocPtrArray, 6},
		{OpStorePtr, 28}, {OpStoreInt, 6},
		{OpLoadPtr, 5}, {OpLoadInt, 4},
		{OpDrop, 6}, {OpDup, 5}, {OpCollect, 8},
		{OpCall, 2}, {OpReturn, 2}, {OpWalk, 3}, {OpWork, 2},
	},
	ProfileLOS: {
		{OpAllocPtrArray, 14}, {OpAllocRawArray, 14}, {OpAllocRecord, 8},
		{OpStorePtr, 8}, {OpStoreInt, 8}, {OpLoadInt, 6}, {OpLoadPtr, 4},
		{OpSetAux, 6}, {OpGetAux, 5},
		{OpDrop, 6}, {OpDup, 3}, {OpCollect, 6}, {OpWalk, 3}, {OpWork, 2},
	},
	ProfilePhaseFlip: {
		{OpAllocRecord, 24}, {OpAllocPtrArray, 6}, {OpAllocRawArray, 4},
		{OpStorePtr, 8}, {OpStoreInt, 4}, {OpLoadInt, 4},
		{OpDrop, 12}, {OpDup, 4}, {OpCollect, 10},
		{OpCall, 2}, {OpReturn, 2}, {OpWalk, 2}, {OpWork, 2},
	},
	ProfileServer: {
		{OpAllocRecord, 20}, {OpAllocPtrArray, 5},
		{OpStorePtr, 12}, {OpStoreInt, 4},
		{OpLoadPtr, 5}, {OpLoadInt, 4},
		{OpCall, 6}, {OpReturn, 5},
		{OpDrop, 9}, {OpDup, 3}, {OpCollect, 5}, {OpWalk, 2}, {OpWork, 10},
	},
	ProfileMixed: {
		{OpAllocRecord, 10}, {OpAllocPtrArray, 6}, {OpAllocRawArray, 5},
		{OpStorePtr, 8}, {OpStoreInt, 5}, {OpLoadPtr, 5}, {OpLoadInt, 5},
		{OpDrop, 5}, {OpDup, 5}, {OpCollect, 5},
		{OpCall, 6}, {OpReturn, 5}, {OpPushHandler, 3}, {OpRaise, 2},
		{OpSetAux, 3}, {OpGetAux, 3}, {OpWalk, 4}, {OpWork, 3},
		{OpSpawn, 2}, {OpSwitch, 3}, {OpJoin, 1},
	},
	ProfileThreads: {
		{OpSpawn, 6}, {OpSwitch, 16}, {OpJoin, 3},
		{OpAllocRecord, 14}, {OpAllocPtrArray, 4},
		{OpStorePtr, 10}, {OpStoreInt, 3}, {OpLoadPtr, 5}, {OpLoadInt, 3},
		{OpCall, 5}, {OpReturn, 4}, {OpPushHandler, 2}, {OpRaise, 2},
		{OpDrop, 5}, {OpDup, 4}, {OpCollect, 6}, {OpWalk, 3}, {OpWork, 4},
	},
	ProfileFrag: {
		{OpAllocRecord, 16}, {OpAllocPtrArray, 9}, {OpAllocRawArray, 12},
		{OpStorePtr, 8}, {OpStoreInt, 4}, {OpLoadPtr, 3}, {OpLoadInt, 3},
		{OpSetAux, 2}, {OpGetAux, 2},
		{OpDrop, 14}, {OpDup, 3}, {OpCollect, 10},
		{OpCall, 2}, {OpReturn, 2}, {OpWalk, 2}, {OpWork, 2},
	},
}

// profileTotals caches each profile's weight sum.
var profileTotals = func() [numProfiles]int {
	var totals [numProfiles]int
	for i, ws := range profileWeights {
		for _, w := range ws {
			totals[i] += w.weight
		}
	}
	return totals
}()

// pickKind draws an op kind from the profile's weight table.
func pickKind(r *rng, p Profile) OpKind {
	x := r.intn(profileTotals[p])
	for _, w := range profileWeights[p] {
		x -= w.weight
		if x < 0 {
			return w.kind
		}
	}
	return OpWork // unreachable
}
