// Package prof implements the heap profiler of §6: it classifies objects
// by allocation site and records, per site, the bytes and objects
// allocated, the fraction surviving their first collection (old%), the
// average age at death, and the bytes copied over all collections — the
// data from which Figure 2's reports and the pretenuring policy are built.
//
// The paper's profiler works by prepending a site identifier to each
// object and scanning the allocation area after each collection to find
// dead objects; ours shadows every live object in per-space tables updated
// on the collector's move/condemn callbacks, which observes exactly the
// same events. Profiled runs are slower (the paper reports 50-200%
// overhead; the shadow tables cost about that here too).
package prof

import (
	"slices"
	"sort"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// objRec tracks one live object.
type objRec struct {
	site       obj.SiteID
	sizeBytes  uint64
	birth      uint64 // allocation clock (total bytes allocated) at birth
	survived   bool   // has survived at least one collection
	pretenured bool   // was allocated directly into the tenured generation
}

// DeathClass tells an Observer where an object was in its generational
// life when it died.
type DeathClass uint8

const (
	// DeathYoung: died without ever being copied or pretenured — nursery
	// garbage, the cheap case generational collection is built around.
	DeathYoung DeathClass = iota
	// DeathOld: survived at least one collection (was copied) and died in
	// the old generation.
	DeathOld
	// DeathPretenured: was allocated directly into the tenured generation
	// and died there — the tenured garbage a mistrained pretenuring
	// decision produces.
	DeathPretenured
)

// Observer receives the online per-site lifetime event stream the adaptive
// pretenuring engine (internal/adapt) consumes: allocations (with the
// pretenured bit), first-collection survivals (with age at survival, in
// bytes of allocation), classified deaths, and collection boundaries.
// Events fire in the profiler's deterministic order (deaths in sorted
// address order). A nil observer costs one branch per event.
type Observer interface {
	ObserveAlloc(site obj.SiteID, words uint64, pretenured bool)
	ObserveSurvive(site obj.SiteID, words uint64, ageBytes uint64)
	ObserveDeath(site obj.SiteID, words uint64, class DeathClass)
	ObserveGCEnd()
}

// SiteStats aggregates one allocation site.
type SiteStats struct {
	Site          obj.SiteID
	Name          string
	AllocBytes    uint64
	AllocCount    uint64
	CopiedBytes   uint64
	SurvivedFirst uint64 // objects that survived their first collection
	Deaths        uint64
	SumDeathAgeKB float64 // sum over deaths of (bytes allocated during lifetime)/1024
}

// OldPct returns the percentage of objects surviving their first
// collection.
func (s *SiteStats) OldPct() float64 {
	if s.AllocCount == 0 {
		return 0
	}
	return 100 * float64(s.SurvivedFirst) / float64(s.AllocCount)
}

// AvgAgeKB returns the average age at death in kilobytes of allocation.
func (s *SiteStats) AvgAgeKB() float64 {
	if s.Deaths == 0 {
		return 0
	}
	return s.SumDeathAgeKB / float64(s.Deaths)
}

// CopyRatio returns copied size / allocated size for the site.
func (s *SiteStats) CopyRatio() float64 {
	if s.AllocBytes == 0 {
		return 0
	}
	return float64(s.CopiedBytes) / float64(s.AllocBytes)
}

// Profiler implements core.Profiler.
type Profiler struct {
	sites     map[obj.SiteID]*SiteStats
	siteNames map[obj.SiteID]string
	live      map[mem.SpaceID]map[uint64]*objRec // space → offset → record
	clock     uint64                             // total bytes allocated

	// pendingMoves buffers OnMove destinations within one collection so
	// that OnSpaceCondemned of the source space doesn't double-process.
	// movedAt indexes the buffer by current destination so an object moved
	// twice in one collection — promoted into the tenured space and then
	// slid by mark-compact — re-targets its pending record instead of
	// leaving it homed at the stale pre-slide address.
	moved   []movedRec
	movedAt map[mem.Addr]int

	// deathSink, when set, receives every recorded death. Deaths fire in
	// sorted address order (see OnSpaceCondemned), so the callback
	// sequence is deterministic.
	deathSink func(site obj.SiteID, bytes uint64)

	// observer, when set, receives the online lifetime event stream (§9).
	observer Observer
}

type movedRec struct {
	to  mem.Addr
	rec *objRec
}

// New creates an empty profiler. siteNames is optional documentation for
// report rendering (may be nil).
func New(siteNames map[obj.SiteID]string) *Profiler {
	return &Profiler{
		sites:     make(map[obj.SiteID]*SiteStats),
		siteNames: siteNames,
		live:      make(map[mem.SpaceID]map[uint64]*objRec),
		movedAt:   make(map[mem.Addr]int),
	}
}

func (p *Profiler) site(id obj.SiteID) *SiteStats {
	s, ok := p.sites[id]
	if !ok {
		s = &SiteStats{Site: id, Name: p.siteNames[id]}
		p.sites[id] = s
	}
	return s
}

func (p *Profiler) spaceTable(id mem.SpaceID) map[uint64]*objRec {
	t, ok := p.live[id]
	if !ok {
		t = make(map[uint64]*objRec)
		p.live[id] = t
	}
	return t
}

// OnAlloc implements core.Profiler.
func (p *Profiler) OnAlloc(addr mem.Addr, site obj.SiteID, k obj.Kind, words uint64, pretenured bool) {
	bytes := words * mem.WordSize
	s := p.site(site)
	s.AllocBytes += bytes
	s.AllocCount++
	p.clock += bytes
	p.spaceTable(addr.Space())[addr.Offset()] = &objRec{
		site: site, sizeBytes: bytes, birth: p.clock, pretenured: pretenured,
	}
	if p.observer != nil {
		p.observer.ObserveAlloc(site, words, pretenured)
	}
}

// OnMove implements core.Profiler: the object moved (promotion or tenured
// copy); it survived and its bytes were copied.
func (p *Profiler) OnMove(from, to mem.Addr) {
	var rec *objRec
	if i, ok := p.movedAt[from]; ok {
		// Second move within one collection: the record is already pending
		// at from; re-target it rather than mis-homing it at OnGCEnd.
		rec = p.moved[i].rec
		p.moved[i].to = to
		delete(p.movedAt, from)
		p.movedAt[to] = i
	} else {
		t := p.spaceTable(from.Space())
		r, ok := t[from.Offset()]
		if !ok {
			return // object predates profiling
		}
		rec = r
		delete(t, from.Offset())
		p.movedAt[to] = len(p.moved)
		p.moved = append(p.moved, movedRec{to: to, rec: rec})
	}
	s := p.site(rec.site)
	s.CopiedBytes += rec.sizeBytes
	if !rec.survived {
		rec.survived = true
		s.SurvivedFirst++
		if p.observer != nil && !rec.pretenured {
			p.observer.ObserveSurvive(rec.site, rec.sizeBytes/mem.WordSize, p.clock-rec.birth)
		}
	}
}

// OnSpaceCondemned implements core.Profiler: records still tabled in the
// space did not move out — they are dead. Deaths are recorded in ascending
// offset order: recordDeath accumulates a float age sum, and float addition
// is not associative, so map iteration order would make profile output
// depend on the run's hash seeds.
func (p *Profiler) OnSpaceCondemned(id mem.SpaceID) {
	t, ok := p.live[id]
	if !ok {
		return
	}
	for _, off := range sortedOffsets(t) {
		p.recordDeath(t[off])
	}
	delete(p.live, id)
}

// sortedOffsets returns the live-table keys in ascending order.
func sortedOffsets(t map[uint64]*objRec) []uint64 {
	offs := make([]uint64, 0, len(t))
	for off := range t {
		offs = append(offs, off)
	}
	slices.Sort(offs)
	return offs
}

// OnLOSDead implements core.Profiler.
func (p *Profiler) OnLOSDead(addr mem.Addr) {
	t := p.spaceTable(addr.Space())
	rec, ok := t[addr.Offset()]
	if !ok {
		return
	}
	delete(t, addr.Offset())
	p.recordDeath(rec)
}

// OnGCEnd implements core.Profiler: re-home objects moved this cycle.
// Large objects that survived a sweep count as survivors of their first
// collection too.
func (p *Profiler) OnGCEnd() {
	for _, m := range p.moved {
		p.spaceTable(m.to.Space())[m.to.Offset()] = m.rec
	}
	p.moved = p.moved[:0]
	clear(p.movedAt)
	if p.observer != nil {
		p.observer.ObserveGCEnd()
	}
}

func (p *Profiler) recordDeath(rec *objRec) {
	s := p.site(rec.site)
	s.Deaths++
	s.SumDeathAgeKB += float64(p.clock-rec.birth) / 1024
	if p.deathSink != nil {
		p.deathSink(rec.site, rec.sizeBytes)
	}
	if p.observer != nil {
		class := DeathYoung
		switch {
		case rec.pretenured:
			class = DeathPretenured
		case rec.survived:
			class = DeathOld
		}
		p.observer.ObserveDeath(rec.site, rec.sizeBytes/mem.WordSize, class)
	}
}

// SetDeathSink registers a callback invoked on every object death with the
// site and the object's size in bytes. Used by the trace layer to build
// per-site died-words counters without coupling this package to it.
func (p *Profiler) SetDeathSink(fn func(site obj.SiteID, bytes uint64)) {
	p.deathSink = fn
}

// SetObserver registers the online lifetime-event observer (the adaptive
// pretenuring engine). Call before the run starts; events already emitted
// are not replayed.
func (p *Profiler) SetObserver(o Observer) {
	p.observer = o
}

// Finalize treats every object still live as dying at the end of the run,
// charging its age, as the paper's end-of-run profile accounting does.
// Call once, after the workload completes. Spaces and offsets are visited
// in ascending order for the same float-summation reason as
// OnSpaceCondemned.
func (p *Profiler) Finalize() {
	ids := make([]mem.SpaceID, 0, len(p.live))
	for id := range p.live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		t := p.live[id]
		for _, off := range sortedOffsets(t) {
			p.recordDeath(t[off])
		}
	}
	p.live = make(map[mem.SpaceID]map[uint64]*objRec)
}

// Clock returns total bytes allocated so far.
func (p *Profiler) Clock() uint64 { return p.clock }

// TotalCopied returns the bytes copied across all sites.
func (p *Profiler) TotalCopied() uint64 {
	var n uint64
	for _, s := range p.sites {
		n += s.CopiedBytes
	}
	return n
}

// TotalAllocated returns the bytes allocated across all sites.
func (p *Profiler) TotalAllocated() uint64 {
	var n uint64
	for _, s := range p.sites {
		n += s.AllocBytes
	}
	return n
}

// Sites returns per-site statistics sorted by descending allocation.
func (p *Profiler) Sites() []*SiteStats {
	out := make([]*SiteStats, 0, len(p.sites))
	for _, s := range p.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AllocBytes != out[j].AllocBytes {
			return out[i].AllocBytes > out[j].AllocBytes
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// Policy derives a pretenuring policy from the profile using the paper's
// rule: pretenure every site whose old% is at least cutoffPct (the paper
// uses 80). Sites with fewer than minObjects allocations are ignored as
// noise.
func (p *Profiler) Policy(cutoffPct float64, minObjects uint64) *core.PretenurePolicy {
	sites := make(map[obj.SiteID]core.PretenureDecision)
	for id, s := range p.sites {
		if s.AllocCount >= minObjects && s.OldPct() >= cutoffPct {
			sites[id] = core.PretenureDecision{}
		}
	}
	return core.NewPretenurePolicy(sites)
}

// CutoffSummary reports, for a given old% cutoff, the share of all copied
// bytes and of all allocated bytes contributed by the targeted sites —
// the two numbers printed at the foot of Figure 2's reports.
func (p *Profiler) CutoffSummary(cutoffPct float64) (copiedPct, allocPct float64) {
	var copied, alloc, tc, ta uint64
	for _, s := range p.sites {
		tc += s.CopiedBytes
		ta += s.AllocBytes
		if s.OldPct() >= cutoffPct {
			copied += s.CopiedBytes
			alloc += s.AllocBytes
		}
	}
	if tc > 0 {
		copiedPct = 100 * float64(copied) / float64(tc)
	}
	if ta > 0 {
		allocPct = 100 * float64(alloc) / float64(ta)
	}
	return copiedPct, allocPct
}
