package prof

import (
	"strings"
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

func TestSiteStatsMath(t *testing.T) {
	s := SiteStats{AllocBytes: 1000, AllocCount: 10, CopiedBytes: 500,
		SurvivedFirst: 4, Deaths: 5, SumDeathAgeKB: 50}
	if s.OldPct() != 40 {
		t.Errorf("OldPct = %g", s.OldPct())
	}
	if s.AvgAgeKB() != 10 {
		t.Errorf("AvgAgeKB = %g", s.AvgAgeKB())
	}
	if s.CopyRatio() != 0.5 {
		t.Errorf("CopyRatio = %g", s.CopyRatio())
	}
	var zero SiteStats
	if zero.OldPct() != 0 || zero.AvgAgeKB() != 0 || zero.CopyRatio() != 0 {
		t.Error("zero-stats accessors must return 0")
	}
}

func TestProfilerAllocMoveDeath(t *testing.T) {
	p := New(nil)
	a := mem.MakeAddr(1, 10)
	b := mem.MakeAddr(1, 20)
	p.OnAlloc(a, 5, obj.Record, 4, false)  // 32 bytes
	p.OnAlloc(b, 5, obj.Record, 2, false)  // 16 bytes
	p.OnMove(a, mem.MakeAddr(2, 1)) // a survives, copied
	p.OnSpaceCondemned(1)           // b dies
	p.OnGCEnd()

	s := p.sites[5]
	if s.AllocBytes != 48 || s.AllocCount != 2 {
		t.Fatalf("alloc stats: %+v", s)
	}
	if s.CopiedBytes != 32 || s.SurvivedFirst != 1 {
		t.Fatalf("copy stats: %+v", s)
	}
	if s.Deaths != 1 {
		t.Fatalf("death stats: %+v", s)
	}
	if s.OldPct() != 50 {
		t.Fatalf("OldPct = %g", s.OldPct())
	}

	// Second move of the same object: more copying, but SurvivedFirst
	// stays (first survival already counted).
	p.OnMove(mem.MakeAddr(2, 1), mem.MakeAddr(3, 1))
	p.OnGCEnd()
	if s.CopiedBytes != 64 || s.SurvivedFirst != 1 {
		t.Fatalf("second copy stats: %+v", s)
	}
}

func TestProfilerAgeAccounting(t *testing.T) {
	p := New(nil)
	a := mem.MakeAddr(1, 1)
	p.OnAlloc(a, 1, obj.Record, 128, false) // 1KB; clock now 1KB
	// 9KB more allocation from another site.
	p.OnAlloc(mem.MakeAddr(1, 200), 2, obj.RawArray, 128*9, false)
	p.OnSpaceCondemned(1) // both die; a's age = 9KB, other's age = 0
	s := p.sites[1]
	if s.Deaths != 1 || s.AvgAgeKB() != 9 {
		t.Fatalf("age: deaths=%d avg=%g", s.Deaths, s.AvgAgeKB())
	}
	if p.sites[2].AvgAgeKB() != 0 {
		t.Fatalf("fresh object age = %g", p.sites[2].AvgAgeKB())
	}
}

func TestProfilerFinalize(t *testing.T) {
	p := New(nil)
	p.OnAlloc(mem.MakeAddr(1, 1), 1, obj.Record, 10, false)
	p.Finalize()
	if p.sites[1].Deaths != 1 {
		t.Fatal("finalize did not record survivor death")
	}
	// Idempotent.
	p.Finalize()
	if p.sites[1].Deaths != 1 {
		t.Fatal("finalize double-counted")
	}
}

func TestPolicyCutoff(t *testing.T) {
	p := New(nil)
	// Site 1: 10 objects, all survive. Site 2: 10 objects, none survive.
	// Site 3: only 2 objects (below min), all survive.
	for i := 0; i < 10; i++ {
		a := mem.MakeAddr(1, uint64(1+i*10))
		p.OnAlloc(a, 1, obj.Record, 2, false)
		p.OnMove(a, mem.MakeAddr(2, uint64(1+i*10)))
		p.OnGCEnd()
	}
	for i := 0; i < 10; i++ {
		p.OnAlloc(mem.MakeAddr(3, uint64(1+i*10)), 2, obj.Record, 2, false)
	}
	p.OnSpaceCondemned(3)
	for i := 0; i < 2; i++ {
		a := mem.MakeAddr(4, uint64(1+i*10))
		p.OnAlloc(a, 3, obj.Record, 2, false)
		p.OnMove(a, mem.MakeAddr(5, uint64(1+i*10)))
		p.OnGCEnd()
	}
	pol := p.Policy(80, 5)
	if _, ok := pol.Lookup(1); !ok {
		t.Error("high-survival site not pretenured")
	}
	if _, ok := pol.Lookup(2); ok {
		t.Error("zero-survival site pretenured")
	}
	if _, ok := pol.Lookup(3); ok {
		t.Error("low-count site pretenured despite minObjects")
	}
	if pol.Len() != 1 {
		t.Errorf("policy has %d sites", pol.Len())
	}
}

func TestCutoffSummary(t *testing.T) {
	p := New(nil)
	p.sites[1] = &SiteStats{Site: 1, AllocBytes: 100, AllocCount: 10,
		SurvivedFirst: 10, CopiedBytes: 900}
	p.sites[2] = &SiteStats{Site: 2, AllocBytes: 900, AllocCount: 90,
		SurvivedFirst: 0, CopiedBytes: 100}
	copied, alloc := p.CutoffSummary(80)
	if copied != 90 || alloc != 10 {
		t.Fatalf("summary = %g%% copied, %g%% allocated", copied, alloc)
	}
}

func TestWriteReportFormat(t *testing.T) {
	p := New(map[obj.SiteID]string{7: "cons"})
	for i := 0; i < 100; i++ {
		a := mem.MakeAddr(1, uint64(1+i*4))
		p.OnAlloc(a, 7, obj.Record, 4, false)
		p.OnMove(a, mem.MakeAddr(2, uint64(1+i*4)))
		p.OnGCEnd()
	}
	var sb strings.Builder
	p.WriteReport(&sb, DefaultReportOptions("TestBench"))
	out := sb.String()
	for _, want := range []string{
		"TestBench", "heap profile end", "cutoff of 80%",
		"targeted sites comprise", "<--",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestProfilerDrivesPretenuringEndToEnd runs a real collector with the
// profiler attached, derives a policy, and re-runs with pretenuring: the
// long-lived site must be selected and copying must drop.
func TestProfilerDrivesPretenuringEndToEnd(t *testing.T) {
	const liveSite, dieSite = 11, 12
	run := func(prof core.Profiler, pol *core.PretenurePolicy) (*core.Generational, *Profiler) {
		table := rt.NewTraceTable()
		meter := costmodel.NewMeter()
		stack := rt.NewStack(table, meter)
		slots := []rt.SlotTrace{rt.NP(), rt.PTR()}
		fi := table.Register("root", slots, nil)
		stack.Call(fi)
		c := core.NewGenerational(stack, meter, prof, core.GenConfig{
			BudgetWords: 1 << 20, NurseryWords: 512, Pretenure: pol,
		})
		// Long-lived list from liveSite, garbage from dieSite.
		stack.SetSlot(1, uint64(mem.Nil))
		for i := 0; i < 3000; i++ {
			cell := c.Alloc(obj.Record, 2, liveSite, 0b10)
			c.InitField(cell, 1, stack.Slot(1))
			stack.SetSlot(1, uint64(cell))
			c.Alloc(obj.Record, 2, dieSite, 0)
			c.Alloc(obj.Record, 2, dieSite, 0)
		}
		c.Collect(false)
		pp, _ := prof.(*Profiler)
		return c, pp
	}

	profiler := New(nil)
	_, pp := run(profiler, nil)
	pp.Finalize()
	if pp.sites[liveSite].OldPct() < 80 {
		t.Fatalf("live site old%% = %g", pp.sites[liveSite].OldPct())
	}
	if pp.sites[dieSite].OldPct() > 20 {
		t.Fatalf("dying site old%% = %g", pp.sites[dieSite].OldPct())
	}
	pol := pp.Policy(80, 10)
	if _, ok := pol.Lookup(liveSite); !ok {
		t.Fatal("policy missed the long-lived site")
	}

	base, _ := run(nil, nil)
	pre, _ := run(nil, pol)
	if pre.Stats().BytesCopied*2 > base.Stats().BytesCopied {
		t.Fatalf("profile-driven pretenuring did not cut copying: %d vs %d",
			pre.Stats().BytesCopied, base.Stats().BytesCopied)
	}
}

func TestOnLOSDeadAndClock(t *testing.T) {
	p := New(nil)
	a := mem.MakeAddr(9, 1)
	p.OnAlloc(a, 4, obj.RawArray, 100, false)
	if p.Clock() != 800 {
		t.Fatalf("Clock = %d", p.Clock())
	}
	p.OnLOSDead(a)
	if p.sites[4].Deaths != 1 {
		t.Fatal("LOS death not recorded")
	}
	// Unknown address: no-op.
	p.OnLOSDead(mem.MakeAddr(9, 500))
	if p.sites[4].Deaths != 1 {
		t.Fatal("phantom death recorded")
	}
	// Condemning a space with no table is a no-op.
	p.OnSpaceCondemned(77)
}

func TestSitesSortedByAllocation(t *testing.T) {
	p := New(nil)
	p.OnAlloc(mem.MakeAddr(1, 1), 5, obj.Record, 10, false)
	p.OnAlloc(mem.MakeAddr(1, 50), 6, obj.Record, 100, false)
	p.OnAlloc(mem.MakeAddr(1, 200), 7, obj.Record, 100, false)
	sites := p.Sites()
	if len(sites) != 3 {
		t.Fatalf("Sites len = %d", len(sites))
	}
	if sites[0].AllocBytes < sites[1].AllocBytes {
		t.Fatal("not sorted by allocation")
	}
	// Equal allocations tie-break by site id.
	if sites[0].Site != 6 || sites[1].Site != 7 {
		t.Fatalf("tie break wrong: %d, %d", sites[0].Site, sites[1].Site)
	}
}

func TestMoveOfUntrackedObject(t *testing.T) {
	p := New(nil)
	// Moving an object the profiler never saw must be ignored.
	p.OnMove(mem.MakeAddr(1, 7), mem.MakeAddr(2, 7))
	p.OnGCEnd()
	if len(p.sites) != 0 {
		t.Fatal("phantom site created")
	}
}

// TestDeathOnlySiteInReport: a site with deaths but zero recorded
// allocations (its stats were seeded from another run, or its objects
// predate profiling) contributes 0% to the allocation and copy shares, so
// the report's percentage filter would silently drop it — yet its garbage
// is exactly what a mistrain report needs to surface. It must render,
// without dividing by zero.
func TestDeathOnlySiteInReport(t *testing.T) {
	p := New(map[obj.SiteID]string{42: "seeded sink"})
	// A normal site so the report has nonzero totals.
	for i := 0; i < 100; i++ {
		p.OnAlloc(mem.MakeAddr(1, uint64(1+i*4)), 7, obj.Record, 4, false)
	}
	// The death-only site, seeded directly as a warm-started run would.
	p.sites[42] = &SiteStats{Site: 42, Name: "seeded sink", Deaths: 3, SumDeathAgeKB: 1.5}

	s := p.sites[42]
	if got := s.OldPct(); got != 0 {
		t.Errorf("OldPct = %g, want 0", got)
	}
	if got := s.CopyRatio(); got != 0 {
		t.Errorf("CopyRatio = %g, want 0", got)
	}
	if got := s.AvgAgeKB(); got != 0.5 {
		t.Errorf("AvgAgeKB = %g, want 0.5", got)
	}

	var sb strings.Builder
	p.WriteReport(&sb, DefaultReportOptions("DeathOnly"))
	out := sb.String()
	if !strings.Contains(out, "42") {
		t.Fatalf("death-only site vanished from the report:\n%s", out)
	}
	for _, bad := range []string{"NaN", "Inf", "nan", "inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("report contains %s:\n%s", bad, out)
		}
	}
}
