package prof

import (
	"fmt"
	"io"
)

// ReportOptions controls Figure 2 report rendering.
type ReportOptions struct {
	// MinAllocPct and MinCopyPct filter the table to sites contributing
	// at least this share of allocation or of copying — the paper shows
	// "only entries with alloc % > 1.00 or with copy % > 1.00".
	MinAllocPct float64
	MinCopyPct  float64
	// CutoffPct is the old% pretenuring cutoff summarized at the foot of
	// the report (the paper uses 80%).
	CutoffPct float64
	// Title heads the report (the benchmark name).
	Title string
}

// DefaultReportOptions mirrors the paper's Figure 2 settings.
func DefaultReportOptions(title string) ReportOptions {
	return ReportOptions{MinAllocPct: 1.0, MinCopyPct: 1.0, CutoffPct: 80, Title: title}
}

// WriteReport renders the heap profile in the format of the paper's
// Figure 2: one row per significant allocation site with alloc%, alloc
// size/count, old%, average age, copied size/%, and copied/alloc ratio,
// plus the cutoff summary.
func (p *Profiler) WriteReport(w io.Writer, opts ReportOptions) {
	totalAlloc := p.TotalAllocated()
	totalCopied := p.TotalCopied()
	pct := func(part, whole uint64) float64 {
		if whole == 0 {
			return 0
		}
		return 100 * float64(part) / float64(whole)
	}

	fmt.Fprintf(w, "======================== %s ========================\n", opts.Title)
	fmt.Fprintf(w, "%6s %7s %12s %10s %7s %8s %10s %7s %12s\n",
		"site", "alloc", "alloc", "alloc", "", "avg", "copied", "copied", "copied size/")
	fmt.Fprintf(w, "%6s %7s %12s %10s %7s %8s %10s %7s %12s\n",
		"", "%", "size", "count", "% old", "age", "size", "%", "alloc size")
	fmt.Fprintln(w, "------------------------------------------------------------------------------------------")

	sites := p.Sites()
	shown := 0
	for _, s := range sites {
		allocPct := pct(s.AllocBytes, totalAlloc)
		copyPct := pct(s.CopiedBytes, totalCopied)
		// A site with deaths but no recorded allocations (its objects
		// predate profiling, or its stats were seeded from another run)
		// contributes 0% to both shares and would silently vanish under
		// the percentage filter; its garbage is exactly what the report
		// exists to surface, so it is always shown.
		deathOnly := s.AllocCount == 0 && s.Deaths > 0
		if !deathOnly && allocPct <= opts.MinAllocPct && copyPct <= opts.MinCopyPct {
			continue
		}
		shown++
		marker := ""
		if s.OldPct() >= opts.CutoffPct {
			marker = " <--"
		}
		fmt.Fprintf(w, "%6d %6.2f%% %12d %10d %7.2f %8.1f %10d %6.2f %11.2f%s\n",
			s.Site, allocPct, s.AllocBytes, s.AllocCount, s.OldPct(),
			s.AvgAgeKB(), s.CopiedBytes, copyPct, s.CopyRatio(), marker)
	}
	fmt.Fprintln(w, "--------------- heap profile end : short ---------------")
	fmt.Fprintf(w, "Showing only entries with alloc %% > %.2f\n", opts.MinAllocPct)
	fmt.Fprintf(w, "                  or with copy %% > %.2f\n", opts.MinCopyPct)
	fmt.Fprintf(w, "%d of %d entries displayed.\n", shown, len(sites))
	copiedPct, allocPct := p.CutoffSummary(opts.CutoffPct)
	fmt.Fprintf(w, "Using a (%% old) cutoff of %.0f%%,\n", opts.CutoffPct)
	fmt.Fprintf(w, "targeted sites comprise %.2f%% copied and %.2f%% allocated.\n",
		copiedPct, allocPct)
}
