package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detflow upgrades detrand from call-site banning to interprocedural
// taint tracking. Detrand bans nondeterminism sources *inside* the fence;
// detflow catches host-derived values produced *outside* the fence and
// laundered across the boundary — through locals, arithmetic,
// conversions, helper functions, and struct fields — into fence-package
// sinks (trace events, collector operations, profile records,
// fingerprints).
//
// Two taint kinds are tracked:
//
//   - host: wall-clock, scheduler, and randomness reads (the detrand
//     source set);
//   - map-order: values derived from ranging over a Go map. Passing such
//     a value through a sort function (the maporder sort sinks) launders
//     the order dependence, so objects that are sorted anywhere in the
//     function are exempt — the maporder analyzer polices sort placement.
//
// Propagation is interprocedural via per-function summaries (does the
// return carry intrinsic taint; does parameter taint reach the return;
// does parameter taint reach a fence sink), iterated to a module-wide
// fixpoint, plus a flow-insensitive global tainted-struct-field set that
// catches laundering through fields of intermediate structs. Sinks are
// reported only in non-fence packages: inside the fence, sources
// themselves are detrand findings, and fence-internal dataflow is the
// packages' own business.
//
// The analysis is deliberately conservative about what it cannot see:
// calls through function values propagate argument taint, interface
// calls to fence-declared methods count as fence sinks, and `make`/`new`
// with a tainted size do not taint the contents (a pool sized by
// GOMAXPROCS is fine; what flows through it is still tracked).
var Detflow = &Analyzer{
	Name:      "detflow",
	Doc:       "taint-tracks host-clock/scheduler/randomness and map-order values into fence-package sinks",
	RunModule: runDetflow,
}

// taintMask is a bitset of taint kinds.
type taintMask uint8

const (
	taintHost     taintMask = 1 << iota // wall clock, scheduler, randomness
	taintMapOrder                       // map iteration order
	taintAll      = taintHost | taintMapOrder
)

// taintDesc renders a mask for diagnostics.
func taintDesc(m taintMask) string {
	switch {
	case m&taintHost != 0 && m&taintMapOrder != 0:
		return "the host clock/scheduler/randomness and map iteration order"
	case m&taintHost != 0:
		return "the host clock, scheduler, or randomness"
	default:
		return "map iteration order"
	}
}

// isHostSource matches the detrand source set (time.Now, math/rand,
// runtime.GOMAXPROCS, ...) as taint origins.
func isHostSource(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	members, ok := detrandBanned[fn.Pkg().Path()]
	if !ok {
		return false
	}
	return members == nil || members[fn.Name()]
}

// isFenceField reports whether the struct field is declared in a fence
// package.
func isFenceField(v *types.Var) bool {
	return v != nil && v.IsField() && v.Pkg() != nil && inDetFence(v.Pkg().Path())
}

// dfSummary is the per-function taint summary.
type dfSummary struct {
	ret       taintMask // return taint with all parameters clean
	retParam  bool      // parameter taint propagates to the return value
	sinkParam bool      // parameter taint reaches a fence sink inside
}

// dfDecl is one analyzable function declaration.
type dfDecl struct {
	pkg *Package
	fd  *ast.FuncDecl
	fn  *types.Func
}

func runDetflow(pass *Pass) {
	summaries := make(map[*types.Func]*dfSummary)
	var decls []dfDecl
	for _, p := range pass.All {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				decls = append(decls, dfDecl{pkg: p, fd: fd, fn: fn})
				summaries[fn] = &dfSummary{}
			}
		}
	}
	fields := make(map[*types.Var]taintMask)

	// Module-wide fixpoint over summaries and the global field-taint set.
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, d := range decls {
			clean := newDFAnalysis(d, summaries, fields, false, nil)
			clean.analyze()
			param := newDFAnalysis(d, summaries, fields, true, nil)
			param.analyze()
			s := summaries[d.fn]
			if clean.ret&^s.ret != 0 {
				s.ret |= clean.ret
				changed = true
			}
			if clean.fieldsChanged {
				changed = true
			}
			if !s.retParam && param.ret&^clean.ret != 0 {
				s.retParam = true
				changed = true
			}
			if !s.sinkParam && param.sinkHit && !clean.sinkHit {
				s.sinkParam = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting pass: sinks in non-fence target packages only.
	for _, d := range decls {
		if !d.pkg.Target || inDetFence(d.pkg.Path) {
			continue
		}
		rep := newDFAnalysis(d, summaries, fields, false, pass)
		rep.analyze()
	}
}

// dfAnalysis is one intra-procedural taint analysis of a function body.
type dfAnalysis struct {
	pkg       *Package
	info      *types.Info
	fd        *ast.FuncDecl
	summaries map[*types.Func]*dfSummary
	fields    map[*types.Var]taintMask
	paramMode bool  // parameters start fully tainted (for summaries)
	pass      *Pass // non-nil: report sinks as diagnostics

	vars          map[types.Object]taintMask
	sorted        map[types.Object]bool // objects passed to a sort sink in this function
	ret           taintMask
	sinkHit       bool
	changed       bool // local propagation progress
	fieldsChanged bool
}

func newDFAnalysis(d dfDecl, summaries map[*types.Func]*dfSummary, fields map[*types.Var]taintMask, paramMode bool, pass *Pass) *dfAnalysis {
	return &dfAnalysis{
		pkg: d.pkg, info: d.pkg.Info, fd: d.fd,
		summaries: summaries, fields: fields, paramMode: paramMode, pass: pass,
		vars: make(map[types.Object]taintMask), sorted: make(map[types.Object]bool),
	}
}

// analyze runs propagation to a local fixpoint, then scans for sinks
// (reporting them when pass is set).
func (a *dfAnalysis) analyze() {
	if a.paramMode {
		for _, fl := range []*ast.FieldList{a.fd.Recv, a.fd.Type.Params} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					if obj := a.info.Defs[name]; obj != nil {
						a.vars[obj] = taintAll
					}
				}
			}
		}
	}
	a.collectSorted()
	for i := 0; i < 16; i++ {
		a.changed = false
		a.propagate(a.fd.Body, false)
		if !a.changed {
			break
		}
	}
	a.scanSinks()
}

// collectSorted records objects passed to a sort function anywhere in the
// body: sorting launders map-iteration order (maporder polices that the
// sort is placed correctly).
func (a *dfAnalysis) collectSorted() {
	ast.Inspect(a.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := a.info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		fns, ok := sortSinks[pn.Imported().Path()]
		if !ok || !fns[sel.Sel.Name] {
			return true
		}
		arg := call.Args[0]
		if u, isAddr := arg.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			arg = u.X
		}
		if obj := rootObject(a.info, arg); obj != nil {
			a.sorted[obj] = true
		}
		return true
	})
}

// propagate walks statements once, merging taint into variables, fields,
// and the return summary. inLit marks function-literal bodies, whose
// return statements do not belong to the enclosing declaration.
func (a *dfAnalysis) propagate(n ast.Node, inLit bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.FuncLit:
			a.propagate(s.Body, true)
			return false
		case *ast.AssignStmt:
			a.assign(s)
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t taintMask
					if len(vs.Values) == len(vs.Names) {
						t = a.exprTaint(vs.Values[i])
					} else if len(vs.Values) == 1 {
						t = a.exprTaint(vs.Values[0])
					}
					a.mergeIdent(name, t)
				}
			}
		case *ast.RangeStmt:
			t := a.exprTaint(s.X)
			if xt := a.info.Types[s.X].Type; xt != nil {
				if _, isMap := xt.Underlying().(*types.Map); isMap {
					t |= taintMapOrder
				}
			}
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if e != nil {
					a.mergeLhs(e, t)
				}
			}
		case *ast.SendStmt:
			a.mergeLhs(s.Chan, a.exprTaint(s.Value))
		case *ast.ReturnStmt:
			if !inLit {
				for _, r := range s.Results {
					a.mergeRet(a.exprTaint(r))
				}
			}
		}
		return true
	})
}

// assign merges right-hand taint into left-hand destinations.
func (a *dfAnalysis) assign(s *ast.AssignStmt) {
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 { // x, y := f()
		t := a.exprTaint(s.Rhs[0])
		for _, l := range s.Lhs {
			a.mergeLhs(l, t)
		}
		return
	}
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		t := a.exprTaint(s.Rhs[i])
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			t |= a.exprTaint(l) // compound assignment reads before writing
		}
		a.mergeLhs(l, t)
	}
}

// mergeLhs merges taint into an assignment destination: identifiers take
// it directly, field writes taint the field globally, element and
// indirect writes taint the container.
func (a *dfAnalysis) mergeLhs(l ast.Expr, t taintMask) {
	switch v := ast.Unparen(l).(type) {
	case *ast.Ident:
		a.mergeIdent(v, t)
	case *ast.SelectorExpr:
		if fv, ok := a.info.Uses[v.Sel].(*types.Var); ok && fv.IsField() {
			if t != 0 && !a.paramMode {
				if t&^a.fields[fv] != 0 {
					a.fields[fv] |= t
					a.fieldsChanged = true
					a.changed = true
				}
			}
			return
		}
		a.mergeLhs(v.X, t)
	case *ast.IndexExpr:
		// Inserting into a map launders map-order taint: a map is an
		// unordered container, so populating it in any iteration order
		// yields the identical map (the `for k, v := range m { cp[k] = v }`
		// copy idiom is deterministic). Host taint still flows through.
		if xt := a.info.Types[v.X].Type; xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				t &^= taintMapOrder
			}
		}
		a.mergeLhs(v.X, t)
	case *ast.StarExpr:
		a.mergeLhs(v.X, t)
	}
}

// mergeIdent merges taint into the identifier's object.
func (a *dfAnalysis) mergeIdent(id *ast.Ident, t taintMask) {
	obj := a.info.Defs[id]
	if obj == nil {
		obj = a.info.Uses[id]
	}
	a.mergeObj(obj, t)
}

func (a *dfAnalysis) mergeObj(obj types.Object, t taintMask) {
	if obj == nil || t == 0 {
		return
	}
	if a.sorted[obj] {
		t &^= taintMapOrder
	}
	if t&^a.vars[obj] != 0 {
		a.vars[obj] |= t
		a.changed = true
	}
}

func (a *dfAnalysis) mergeRet(t taintMask) {
	if t&^a.ret != 0 {
		a.ret |= t
		a.changed = true
	}
}

// exprTaint computes the taint mask of an expression under the current
// variable/field state.
func (a *dfAnalysis) exprTaint(e ast.Expr) taintMask {
	switch v := e.(type) {
	case *ast.Ident:
		obj := a.info.Uses[v]
		if obj == nil {
			obj = a.info.Defs[v]
		}
		if obj == nil {
			return 0
		}
		return a.vars[obj]
	case *ast.SelectorExpr:
		if fv, ok := a.info.Uses[v.Sel].(*types.Var); ok && fv.IsField() {
			return a.fields[fv] | a.exprTaint(v.X)
		}
		if obj := a.info.Uses[v.Sel]; obj != nil {
			if _, isSel := a.info.Selections[v]; !isSel {
				return a.vars[obj] // package-qualified name
			}
		}
		return a.exprTaint(v.X) // method value: receiver taint
	case *ast.CallExpr:
		return a.callTaint(v)
	case *ast.BinaryExpr:
		return a.exprTaint(v.X) | a.exprTaint(v.Y)
	case *ast.UnaryExpr:
		return a.exprTaint(v.X) // includes channel receive
	case *ast.ParenExpr:
		return a.exprTaint(v.X)
	case *ast.StarExpr:
		return a.exprTaint(v.X)
	case *ast.IndexExpr:
		// Element of a tainted container. A tainted *index* into a clean
		// container selects clean data; order sensitivity of the
		// selection is maporder's domain.
		return a.exprTaint(v.X)
	case *ast.IndexListExpr:
		return a.exprTaint(v.X)
	case *ast.SliceExpr:
		return a.exprTaint(v.X)
	case *ast.TypeAssertExpr:
		return a.exprTaint(v.X)
	case *ast.CompositeLit:
		var t taintMask
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= a.exprTaint(kv.Value)
			} else {
				t |= a.exprTaint(el)
			}
		}
		return t
	}
	return 0
}

// callTaint computes the taint of a call result: sources introduce host
// taint, module functions apply their summaries, and unknown callees
// (stdlib, function values) conservatively launder argument and receiver
// taint through to the result. make/new are exempt: a tainted capacity
// does not taint the contents.
func (a *dfAnalysis) callTaint(call *ast.CallExpr) taintMask {
	var args taintMask
	for _, arg := range call.Args {
		args |= a.exprTaint(arg)
	}
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, isSel := a.info.Selections[sel]; isSel {
			args |= a.exprTaint(sel.X) // method receiver
		}
	}
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		return args // conversion
	}
	callee := staticCallee(a.info, call)
	if callee == nil {
		if id, ok := fun.(*ast.Ident); ok {
			if b, ok := a.info.Uses[id].(*types.Builtin); ok && (b.Name() == "make" || b.Name() == "new") {
				return 0
			}
		}
		return args
	}
	if isHostSource(callee) {
		return args | taintHost
	}
	if s, ok := a.summaries[callee]; ok {
		t := s.ret
		if s.retParam {
			t |= args
		}
		return t
	}
	return args
}

// isFenceSink reports whether passing tainted data to the function
// crosses the determinism fence: fence-declared functions and methods
// (including interface methods), plus module functions whose summary says
// parameter taint reaches a fence sink inside.
func (a *dfAnalysis) isFenceSink(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if inDetFence(fn.Pkg().Path()) {
		return true
	}
	s, ok := a.summaries[fn]
	return ok && s.sinkParam
}

// scanSinks walks the body once after propagation and records (or
// reports) every tainted value crossing into the fence: call arguments,
// stores into fence-declared struct fields, and fence-type composite
// literals.
func (a *dfAnalysis) scanSinks() {
	ast.Inspect(a.fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			callee := staticCallee(a.info, v)
			if !a.isFenceSink(callee) {
				return true
			}
			for _, arg := range v.Args {
				if t := a.exprTaint(arg); t != 0 {
					a.sinkHit = true
					if a.pass != nil {
						a.pass.Reportf(arg.Pos(), "value derived from %s flows into the determinism fence (argument to %s.%s)",
							taintDesc(t), pathBase(callee.Pkg().Path()), callee.Name())
					}
				}
			}
		case *ast.AssignStmt:
			for i, l := range v.Lhs {
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fv, ok := a.info.Uses[sel.Sel].(*types.Var)
				if !ok || !isFenceField(fv) {
					continue
				}
				var t taintMask
				if len(v.Lhs) > 1 && len(v.Rhs) == 1 {
					t = a.exprTaint(v.Rhs[0])
				} else if i < len(v.Rhs) {
					t = a.exprTaint(v.Rhs[i])
				}
				if t != 0 {
					a.sinkHit = true
					if a.pass != nil {
						a.pass.Reportf(v.Pos(), "value derived from %s stored into field %s declared in deterministic package %s",
							taintDesc(t), fv.Name(), fv.Pkg().Path())
					}
				}
			}
		case *ast.CompositeLit:
			if !a.isFenceStructLit(v) {
				return true
			}
			for _, el := range v.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if t := a.exprTaint(val); t != 0 {
					a.sinkHit = true
					if a.pass != nil {
						a.pass.Reportf(val.Pos(), "value derived from %s in a composite literal of a deterministic-package type",
							taintDesc(t))
					}
				}
			}
		}
		return true
	})
}

// isFenceStructLit reports whether the composite literal builds a named
// struct type declared in a fence package.
func (a *dfAnalysis) isFenceStructLit(lit *ast.CompositeLit) bool {
	t := a.info.Types[lit].Type
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || !inDetFence(n.Obj().Pkg().Path()) {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}
