package lint

import (
	"go/ast"
	"go/types"
)

// Costcharge proves cost-model coverage statically: every exported
// operation of the collector packages (internal/core, internal/rt) that
// touches simulated heap state — transitively reaching the mem primitives
// that read, write, allocate, or reshape storage — must also transitively
// reach a costmodel charge ((*Meter).Charge / ChargeN), or carry a
// justified //gc:nocharge annotation. An operation that moves simulated
// memory without charging cycles silently skews every reported table.
//
// This is the static dual of trace Reconcile: Reconcile proves the
// charges that happened tile the phase spans exactly; costcharge proves
// no exported mutator/collector entry point can touch state without
// charging at all. Accessors that only inspect geometry (Contains, Used,
// Stats, ...) never reach the primitives and pass untouched.
//
// //gc:nocharge is honored in internal/core and internal/rt only —
// outside the collector packages the annotation itself is a finding.
var Costcharge = &Analyzer{
	Name:      "costcharge",
	Doc:       "proves exported collector operations that touch heap state reach a costmodel charge",
	RunModule: runCostcharge,
}

// heapStateMethods lists the mem methods that constitute "touching
// simulated heap state": word access plus space allocation/reshaping.
// A flat list, not a map — maporder flagged the obvious map version of
// this table (the analyzer suite runs over its own package too).
var heapStateMethods = []struct{ recv, name string }{
	{"Heap", "Load"}, {"Heap", "Store"}, {"Heap", "Copy"}, {"Heap", "Words"},
	{"Heap", "AddSpace"}, {"Heap", "ReplaceSpace"}, {"Heap", "GrowSpace"}, {"Heap", "FreeSpace"},
	{"Space", "Alloc"}, {"Space", "AllocUnzeroed"}, {"Space", "Reset"},
}

// isHeapState matches the mem primitives that touch simulated heap state.
func isHeapState(fn *types.Func) bool {
	for _, m := range heapStateMethods {
		if funcIs(fn, "internal/mem", m.recv, m.name) {
			return true
		}
	}
	return false
}

// isCharge matches the cost-meter charge entry points.
func isCharge(fn *types.Func) bool {
	return funcIs(fn, "internal/costmodel", "Meter", "Charge") ||
		funcIs(fn, "internal/costmodel", "Meter", "ChargeN")
}

// inChargeScope reports whether costcharge analyzes (and honors
// //gc:nocharge in) the package.
func inChargeScope(path string) bool {
	return pkgPathHasSuffix(path, "internal/core") || pkgPathHasSuffix(path, "internal/rt")
}

func runCostcharge(pass *Pass) {
	g := pass.CallGraph()
	annos := pass.Annotations("nocharge")
	for _, p := range pass.Targets {
		if !inChargeScope(p.Path) {
			// An annotation outside the collector packages excuses nothing.
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					fn, _ := p.Info.Defs[fd.Name].(*types.Func)
					if a := annos[fn]; fn != nil && a != nil && a.Reason != "" {
						pass.Reportf(fd.Pos(), "//gc:nocharge outside internal/core and internal/rt: the uncharged-operation allowlist is confined to the collector packages")
					}
				}
			}
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				checkChargeFunc(pass, g, fd, fn, annos[fn])
			}
		}
	}
}

// checkChargeFunc applies the charge-coverage rule to one exported
// operation.
func checkChargeFunc(pass *Pass, g *CallGraph, fd *ast.FuncDecl, fn *types.Func, anno *Annotation) {
	if !exportedOperation(fd) {
		if anno != nil && anno.Reason != "" {
			pass.Reportf(fd.Pos(), "stale //gc:nocharge: %s is not an exported operation", fn.Name())
		}
		return
	}
	switch {
	case !g.Reaches(fn, isHeapState):
		if anno != nil && anno.Reason != "" {
			pass.Reportf(fd.Pos(), "stale //gc:nocharge: %s touches no simulated heap state", fn.Name())
		}
	case g.Reaches(fn, isCharge):
		if anno != nil && anno.Reason != "" {
			pass.Reportf(fd.Pos(), "stale //gc:nocharge: %s already reaches a costmodel charge", fn.Name())
		}
	case anno != nil && anno.Reason != "":
		anno.MarkUsed()
	default:
		pass.Reportf(fd.Pos(), "exported operation %s touches simulated heap state but never reaches a costmodel charge; deliberate free operations need //gc:nocharge <why>", fn.Name())
	}
}

// exportedOperation reports whether the declaration is an exported
// function or an exported method on an exported receiver type.
func exportedOperation(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	return ast.IsExported(recvDeclTypeName(fd.Recv.List[0].Type))
}

// recvDeclTypeName extracts the receiver type name from its declaration
// syntax (dereferencing pointers and generic instantiations).
func recvDeclTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
