package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Barriercheck proves write-barrier completeness statically: any function
// that writes words into heap storage through the mem/obj primitives
// (Heap.Store/Copy/Words, Space.Raw, obj.SetField/SetForward/SetAge/
// SetAux) must either reach the write-barrier API ((*rt.SSB).Record or
// (*rt.CardTable).Record) through the static call graph, or carry a
// justified //gc:nobarrier annotation. The annotation allowlist is
// confined to internal/core — the collector kernels are the only code
// allowed to store unbarriered (their copies are scanned before the
// mutator resumes); anywhere else the annotation itself is a finding.
//
// This is the static dual of the sanitizer's remembered-set completeness
// pass: the sanitizer checks the stores that happened, this checks every
// store site that could happen. The analysis is function-granular and
// path-insensitive — a function that both stores and records is assumed
// barriered — so it complements, not replaces, the runtime check.
//
// The mem and obj packages themselves are exempt: they define the
// primitives and cannot be phrased in terms of them.
var Barriercheck = &Analyzer{
	Name:      "barriercheck",
	Doc:       "flags raw heap stores that cannot reach the write barrier (SSB/card Record)",
	RunModule: runBarriercheck,
}

// isHeapStore matches the primitive operations that can write a pointer
// word into heap storage (or hand out mutable raw windows onto it).
// obj.SetAge and obj.SetAux are deliberately absent: they rewrite header
// mark bits (collector age, application aux byte) that carry no pointer
// payload, so they can never create a remembered-set entry the barrier
// would have to record.
func isHeapStore(fn *types.Func) bool {
	switch {
	case funcIs(fn, "internal/mem", "Heap", "Store"),
		funcIs(fn, "internal/mem", "Heap", "Copy"),
		funcIs(fn, "internal/mem", "Heap", "Words"),
		funcIs(fn, "internal/mem", "Space", "Raw"),
		funcIs(fn, "internal/obj", "", "SetField"),
		funcIs(fn, "internal/obj", "", "SetForward"):
		return true
	}
	return false
}

// isBarrierRecord matches the write-barrier entry points.
func isBarrierRecord(fn *types.Func) bool {
	return funcIs(fn, "internal/rt", "SSB", "Record") ||
		funcIs(fn, "internal/rt", "CardTable", "Record")
}

func runBarriercheck(pass *Pass) {
	g := pass.CallGraph()
	annos := pass.Annotations("nobarrier")
	for _, p := range pass.Targets {
		// The primitive layer defines the store operations.
		if pkgPathHasSuffix(p.Path, "internal/mem") || pkgPathHasSuffix(p.Path, "internal/obj") {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				checkBarrierFunc(pass, g, p, fd, fn, annos[fn])
			}
		}
	}
}

// checkBarrierFunc applies the barrier-completeness rule to one function
// declaration (function literals inside it count as its own stores).
func checkBarrierFunc(pass *Pass, g *CallGraph, p *Package, fd *ast.FuncDecl, fn *types.Func, anno *Annotation) {
	stores := directStoreCalls(p, fd)
	switch {
	case len(stores) == 0:
		if anno != nil && anno.Reason != "" {
			pass.Reportf(fd.Pos(), "stale //gc:nobarrier: %s performs no raw heap store", fn.Name())
		}
	case g.Reaches(fn, isBarrierRecord):
		if anno != nil && anno.Reason != "" {
			pass.Reportf(fd.Pos(), "stale //gc:nobarrier: %s already reaches the write barrier", fn.Name())
		}
	case anno != nil && anno.Reason != "":
		if !pkgPathHasSuffix(p.Path, "internal/core") {
			pass.Reportf(fd.Pos(), "//gc:nobarrier outside internal/core: the unbarriered-store allowlist is confined to the collector kernels")
			break
		}
		anno.MarkUsed()
	default:
		for _, pos := range stores {
			pass.Reportf(pos, "raw heap store in %s without a reachable write barrier (SSB/card Record); collector-internal stores need //gc:nobarrier <why>", fn.Name())
		}
	}
}

// directStoreCalls returns the positions of direct heap-store primitive
// calls in the function body.
func directStoreCalls(p *Package, fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isHeapStore(staticCallee(p.Info, call)) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}
