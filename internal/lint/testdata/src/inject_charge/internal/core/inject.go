// Package core is a broken-injection fixture on a collector-suffixed
// import path: it contains exactly one defect, an exported operation that
// reshapes heap state without charging, and the injection test asserts
// that costcharge — and only costcharge — fires on it.
package core

import "tilgc/internal/lint/testdata/src/internal/mem"

// Pool is an exported type so Grab counts as an exported operation.
type Pool struct{ heap *mem.Heap }

// Grab grows the heap without ever reaching a costmodel charge.
func (p *Pool) Grab(n uint64) {
	p.heap.AddSpace(n)
}
