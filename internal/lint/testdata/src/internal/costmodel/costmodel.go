// Package costmodel is a gclint fixture stand-in for the real
// internal/costmodel: costcharge matches (*Meter).Charge and ChargeN by
// package-path suffix, receiver, and name.
package costmodel

// Component attributes charged cycles to an accounting bucket.
type Component int

// Fixture accounting buckets.
const (
	Client Component = iota
	GCCopy
)

// Op is one charged operation kind.
type Op int

// Fixture operation kinds.
const (
	MutatorLoad Op = iota
	MutatorStore
	ScanWord
)

// Meter accumulates simulated cycles.
type Meter struct{ cycles uint64 }

// Charge adds one operation's cycles.
func (m *Meter) Charge(c Component, op Op) { m.cycles++ }

// ChargeN adds n operations' cycles in one call.
func (m *Meter) ChargeN(c Component, op Op, n uint64) { m.cycles += n }

// Cycles returns the accumulated total.
func (m *Meter) Cycles() uint64 { return m.cycles }
