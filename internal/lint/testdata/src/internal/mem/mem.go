// Package mem is a gclint fixture stand-in for the real internal/mem.
// The analyzers match the heap primitives by package-path suffix,
// receiver, and method name, so this package only needs the same shapes:
// Addr with checked Add, Space with Alloc/Raw, Heap with the word-access
// and space-reshaping methods. Its import path ends in internal/mem,
// which also exempts it from barriercheck (the primitive layer defines
// the store operations) and keeps it inside the determinism fence.
package mem

// SpaceID identifies one arena.
type SpaceID uint32

// Addr is a simulated heap address: space id in the high bits, word
// offset in the low bits.
type Addr uint64

const offBits = 40

// MakeAddr builds an address from a space id and word offset.
func MakeAddr(s SpaceID, off uint64) Addr { return Addr(uint64(s)<<offBits | off) }

// Add is the checked address bump (the fixture version skips the
// overflow check; only the shape matters to the analyzers).
func (a Addr) Add(n uint64) Addr { return Addr(uint64(a) + n) }

// IsNil reports whether the address is the nil sentinel.
func (a Addr) IsNil() bool { return a == 0 }

// Space returns the arena id.
func (a Addr) Space() SpaceID { return SpaceID(uint64(a) >> offBits) }

// Offset returns the word offset inside the arena.
func (a Addr) Offset() uint64 { return uint64(a) & (1<<offBits - 1) }

// Space is one contiguous word arena.
type Space struct {
	id    SpaceID
	words []uint64
	used  uint64
}

// ID returns the arena id.
func (s *Space) ID() SpaceID { return s.id }

// Raw exposes the arena's backing words (kernel-seam access).
func (s *Space) Raw() []uint64 { return s.words }

// Alloc bumps the allocation pointer by n words.
func (s *Space) Alloc(n uint64) (uint64, bool) {
	if s.used+n > uint64(len(s.words)) {
		return 0, false
	}
	off := s.used
	s.used += n
	return off, true
}

// Reset empties the arena.
func (s *Space) Reset() { s.used = 0 }

// Heap is a set of arenas addressed by Addr.
type Heap struct {
	spaces []*Space
}

// NewHeap creates an empty heap.
func NewHeap() *Heap { return &Heap{} }

// AddSpace creates a new arena of capWords words.
func (h *Heap) AddSpace(capWords uint64) *Space {
	s := &Space{id: SpaceID(len(h.spaces) + 1), words: make([]uint64, capWords)}
	h.spaces = append(h.spaces, s)
	return s
}

func (h *Heap) space(id SpaceID) *Space { return h.spaces[int(id)-1] }

// Load reads the word at a.
func (h *Heap) Load(a Addr) uint64 { return h.space(a.Space()).words[a.Offset()] }

// Store writes the word at a.
func (h *Heap) Store(a Addr, v uint64) { h.space(a.Space()).words[a.Offset()] = v }

// Copy moves n words from src to dst.
func (h *Heap) Copy(dst, src Addr, n uint64) {
	for i := uint64(0); i < n; i++ {
		h.Store(dst.Add(i), h.Load(src.Add(i)))
	}
}
