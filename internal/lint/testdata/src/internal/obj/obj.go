// Package obj is a gclint fixture stand-in for the real internal/obj:
// the raw header codecs and the field/forwarding store helpers the
// analyzers match by name. Like the real package, it is exempt from
// barriercheck (it defines the store primitives) and its codecs are what
// seamcheck confines to kernels*.go files elsewhere.
package obj

import "tilgc/internal/lint/testdata/src/internal/mem"

const headerWords = 1

// PackHeader encodes a kind and length into a header word.
func PackHeader(kind, length uint64) uint64 { return kind<<56 | length }

// PackForward encodes a forwarding pointer into a header word.
func PackForward(to mem.Addr) uint64 { return uint64(to) | 1<<63 }

// HeaderKind decodes the kind bits of a header word.
func HeaderKind(w uint64) uint64 { return w >> 56 }

// HeaderLen decodes the length bits of a header word.
func HeaderLen(w uint64) uint64 { return w & (1<<56 - 1) }

// ForwardAddr decodes the target of a forwarding header word.
func ForwardAddr(w uint64) mem.Addr { return mem.Addr(w &^ (1 << 63)) }

// SetField writes field i of the object at a.
func SetField(h *mem.Heap, a mem.Addr, i uint64, v uint64) {
	h.Store(a.Add(headerWords+i), v)
}

// SetForward installs a forwarding pointer in the object's header.
func SetForward(h *mem.Heap, a, to mem.Addr) { h.Store(a, PackForward(to)) }
