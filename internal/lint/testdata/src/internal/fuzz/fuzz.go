// Package fuzz is a gclint test fixture whose import path ends in
// internal/fuzz, placing it inside the detrand determinism fence: the
// differential fuzzer's contract is that a seed alone replays the exact
// program and failure, so an unseeded randomness source or wall-clock
// read in the generator or sweep driver would make every reported seed
// unreplayable.
package fuzz

import (
	"math/rand" // want: import of math/rand
	"time"
)

// Op is a stand-in mutator operation.
type Op struct {
	Kind int
	V    uint64
}

// MutateFree perturbs a program with host randomness instead of the
// seeded splitmix generator.
func MutateFree(ops []Op) {
	if len(ops) == 0 {
		return
	}
	ops[rand.Intn(len(ops))].V++
}

// StampReport timestamps a sweep report from the wall clock, which would
// break serial-vs-parallel byte-identity of rendered reports.
func StampReport() uint64 {
	return uint64(time.Now().UnixNano()) // want: time.Now
}

// Mix64 is clean: the deterministic splitmix64 finalizer the real
// generator derives everything from.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
