// Package slo is a gclint test fixture whose import path ends in
// internal/slo, placing it inside the detrand determinism fence: an SLO
// report is a pure function of a frozen trace, so wall-clock, scheduler,
// and randomness reads are banned.
package slo

import (
	"math/rand" // want: import of math/rand
	"runtime"
	"time"
)

// Report is a stand-in SLO report.
type Report struct {
	MMUppm []uint64
}

// Sample jitters a percentile with host randomness.
func Sample(sorted []uint64) uint64 {
	return sorted[rand.Intn(len(sorted))]
}

// Deadline stamps a report field from the wall clock instead of the
// simulated-cycle timeline.
func Deadline() uint64 {
	return uint64(time.Now().UnixNano()) // want: time.Now
}

// Elapsed measures computation with a wall-clock delta.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want: time.Since
}

// Workers sizes the window sweep from a scheduler-dependent value.
func Workers() int {
	return runtime.GOMAXPROCS(0) // want: runtime.GOMAXPROCS
}

// Percentile is clean: integer nearest-rank on sorted cycles is
// deterministic.
func Percentile(sorted []uint64, ppm uint64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (ppm*uint64(len(sorted)) + 1e6 - 1) / 1e6
	if rank < 1 {
		rank = 1
	}
	if rank > uint64(len(sorted)) {
		rank = uint64(len(sorted))
	}
	return sorted[rank-1]
}
