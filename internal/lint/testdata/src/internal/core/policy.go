// policy.go exercises seamcheck: this file does not match kernels*.go,
// so raw-word access here is outside the kernel seam and must be
// reported. peekRaw carries //gc:nobarrier because Space.Raw is also a
// barriercheck store sink — the annotation isolates the seamcheck
// finding under test.

package core

import (
	"tilgc/internal/lint/testdata/src/internal/mem"
	"tilgc/internal/lint/testdata/src/internal/obj"
)

// inspectHeader decodes a header word with a raw codec in policy code.
func inspectHeader(h *mem.Heap, a mem.Addr) uint64 {
	w := h.Load(a)
	return obj.HeaderLen(w) // want: raw header codec obj.HeaderLen
}

// peekRaw takes a raw arena window in policy code.
//
//gc:nobarrier fixture isolates the seamcheck finding; the raw window is read-only here
func peekRaw(s *mem.Space) uint64 {
	words := s.Raw() // want: Space.Raw outside the kernel seam
	return words[0]
}

// bumpAddr computes an address without the checked Add.
func bumpAddr(a mem.Addr) mem.Addr {
	return a + 8 // want: unchecked Addr arithmetic
}

// checkedAdd stays on the checked interface: clean.
func checkedAdd(a mem.Addr) mem.Addr {
	return a.Add(8)
}

// quietArith carries a justified suppression: no surviving diagnostic.
func quietArith(a mem.Addr) mem.Addr {
	//lint:ignore seamcheck fixture exercising justified suppression
	return a * 2
}
