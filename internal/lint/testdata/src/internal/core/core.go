// Package core is a gclint test fixture whose import path ends in
// internal/core, placing it inside the detrand determinism fence.
package core

import (
	"math/rand" // want: import of math/rand
	"runtime"
	"time"
)

// Jitter draws host randomness inside the deterministic core.
func Jitter() int { return rand.Int() }

// Stamp reads the wall clock inside the deterministic core.
func Stamp() time.Time {
	return time.Now() // want: time.Now
}

// Pause is clean: constructing and comparing durations is deterministic.
func Pause(d time.Duration) bool { return d > time.Millisecond }

// Workers reads a scheduler-dependent value inside the deterministic core.
func Workers() int {
	return runtime.GOMAXPROCS(0) // want: runtime.GOMAXPROCS
}
