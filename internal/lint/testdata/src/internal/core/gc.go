// gc.go exercises barriercheck and costcharge inside the collector
// package (this fixture's import path ends in internal/core, so both the
// //gc:nobarrier and //gc:nocharge allowlists are honored here).
// Barrier cases use unexported functions so costcharge (which only
// examines exported operations) stays out of the way, and costcharge
// cases use Load/AddSpace (which are not barrier store sinks).

package core

import (
	"tilgc/internal/lint/testdata/src/internal/costmodel"
	"tilgc/internal/lint/testdata/src/internal/mem"
	"tilgc/internal/lint/testdata/src/internal/rt"
)

// rawInit stores a word with no barrier anywhere in reach.
func rawInit(h *mem.Heap, a mem.Addr) {
	h.Store(a, 1) // want: raw heap store in rawInit
}

// barrieredStore records the stored-to location in the SSB: clean.
func barrieredStore(h *mem.Heap, s *rt.SSB, a mem.Addr, v uint64) {
	h.Store(a, v)
	s.Record(a)
}

// storeThroughHelper reaches the barrier through a helper call: clean.
func storeThroughHelper(h *mem.Heap, s *rt.SSB, a mem.Addr) {
	h.Store(a, 7)
	noteBarrier(s, a)
}

func noteBarrier(s *rt.SSB, a mem.Addr) { s.Record(a) }

// fixtureEvacuate is an annotated copy kernel: the justified annotation
// suppresses the finding and is counted as used.
//
//gc:nobarrier fixture copy kernel: the destination span is scanned in full before the mutator resumes
func fixtureEvacuate(h *mem.Heap, dst, src mem.Addr) {
	h.Copy(dst, src, 4)
}

// tidy no longer stores anything; its leftover annotation is stale.
//
//gc:nobarrier leftover justification from a deleted store
func tidy() {} // want: stale //gc:nobarrier

// Collector is an exported collector type for the costcharge cases.
type Collector struct {
	heap  *mem.Heap
	meter *costmodel.Meter
}

// Peek reads simulated heap state without charging anything.
func (c *Collector) Peek(a mem.Addr) uint64 { // want: exported operation Peek touches simulated heap state
	return c.heap.Load(a)
}

// Load charges the mutator before touching state: clean.
func (c *Collector) Load(a mem.Addr) uint64 {
	c.meter.Charge(costmodel.Client, costmodel.MutatorLoad)
	return c.heap.Load(a)
}

// Grow is a deliberate free operation: the justified annotation
// suppresses the finding and is counted as used.
//
//gc:nocharge fixture setup path: arena growth happens outside the measured run
func (c *Collector) Grow(n uint64) {
	c.heap.AddSpace(n)
}

// Shrink charges for its work; its leftover annotation is stale.
//
//gc:nocharge leftover justification from an uncharged past
func (c *Collector) Shrink(n uint64) { // want: stale //gc:nocharge
	c.meter.ChargeN(costmodel.GCCopy, costmodel.ScanWord, n)
	c.heap.AddSpace(n)
}

// NumSpaces inspects geometry only and never reaches a state primitive:
// clean without any annotation.
func (c *Collector) NumSpaces() int { return 0 }
