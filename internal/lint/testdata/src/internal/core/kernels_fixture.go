// kernels_fixture.go matches the kernels*.go seam pattern: the same raw
// accesses that policy.go gets flagged for are clean here. Space.Raw is
// still a barriercheck store sink, so the kernel carries the same
// justified //gc:nobarrier a real kernel would.

package core

import (
	"tilgc/internal/lint/testdata/src/internal/mem"
	"tilgc/internal/lint/testdata/src/internal/obj"
)

// kernelScan reads headers through the raw arena window with unchecked
// address math — the whole point of the kernel seam.
//
//gc:nobarrier fixture scan kernel: the raw window belongs to a space the scan itself owns
func kernelScan(s *mem.Space, base mem.Addr) uint64 {
	words := s.Raw()
	next := base + 1
	_ = next
	return obj.HeaderLen(words[0])
}
