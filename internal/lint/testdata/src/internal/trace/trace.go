// Package trace is a gclint test fixture whose import path ends in
// internal/trace, placing it inside the detrand determinism fence: trace
// timestamps and event ordering must never come from the host.
package trace

import (
	"math/rand/v2" // want: import of math/rand/v2
	"runtime"
	"time"
)

// Event is a stand-in trace event.
type Event struct {
	At   uint64
	Name string
}

// Shuffle perturbs event order with host randomness.
func Shuffle(ev []Event) {
	rand.Shuffle(len(ev), func(i, j int) { ev[i], ev[j] = ev[j], ev[i] })
}

// Stamp timestamps an event from the wall clock instead of the cost model.
func Stamp(e *Event) {
	e.At = uint64(time.Now().UnixNano()) // want: time.Now
}

// Age computes a wall-clock delta inside the trace layer.
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want: time.Since
}

// Shards sizes trace buffers from a scheduler-dependent value.
func Shards() int {
	return runtime.NumCPU() // want: runtime.NumCPU
}

// Emit records one cycle-stamped sample (a detflow fence sink: this
// package's import path ends in internal/trace).
func Emit(at uint64) { _ = at }

// Record appends a completed event (a detflow fence sink).
func Record(e Event) { _ = e }

// Bucket is clean: pure arithmetic on recorded cycles is deterministic.
func Bucket(cycles uint64) int {
	b := 0
	for cycles > 0 {
		cycles >>= 1
		b++
	}
	return b
}
