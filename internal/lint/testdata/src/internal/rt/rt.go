// Package rt is a gclint fixture stand-in for the real internal/rt:
// barriercheck matches (*SSB).Record and (*CardTable).Record as the
// write-barrier entry points by package-path suffix, receiver, and name.
package rt

import "tilgc/internal/lint/testdata/src/internal/mem"

// SSB is a sequential store buffer recording barriered store locations.
type SSB struct{ buf []mem.Addr }

// Record notes a pointer store at field address a.
func (s *SSB) Record(a mem.Addr) { s.buf = append(s.buf, a) }

// Drain returns and clears the recorded addresses.
func (s *SSB) Drain() []mem.Addr {
	out := s.buf
	s.buf = nil
	return out
}

// CardTable is a card-marking remembered set.
type CardTable struct{ cards []byte }

// Record marks the card covering field address a.
func (c *CardTable) Record(a mem.Addr) {
	i := int(a.Offset() / 512)
	if i < len(c.cards) {
		c.cards[i] = 1
	}
}
