// Package adapt is a gclint test fixture whose import path ends in
// internal/adapt, placing it inside the detrand determinism fence: the
// advisor's promotion and demotion decisions steer allocation placement,
// so host randomness or wall-clock reads here would silently change heap
// layout, GC counts, and the cross-run profile store.
package adapt

import (
	"math/rand" // want: import of math/rand
	"time"
)

// Site is a stand-in advisor site record.
type Site struct {
	SurvWords uint64
	DeadWords uint64
	DecidedAt uint64
}

// Jitter perturbs the promotion threshold with host randomness.
func Jitter(cutoffPPM uint64) uint64 {
	return cutoffPPM + uint64(rand.Intn(1000))
}

// StampDecision timestamps a decision from the wall clock instead of the
// cost meter's cycle count.
func StampDecision(s *Site) {
	s.DecidedAt = uint64(time.Now().UnixNano()) // want: time.Now
}

// SurvivalPPM is clean: pure integer arithmetic on observed words.
func SurvivalPPM(s Site) uint64 {
	total := s.SurvWords + s.DeadWords
	if total == 0 {
		return 0
	}
	return s.SurvWords * 1_000_000 / total
}
