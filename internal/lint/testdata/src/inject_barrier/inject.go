// Package injectbarrier is a broken-injection fixture: it contains
// exactly one defect, an unbarriered heap store, and the injection test
// asserts that barriercheck — and only barriercheck — fires on it.
package injectbarrier

import "tilgc/internal/lint/testdata/src/internal/mem"

// Clobber writes a pointer word with no barrier in reach.
func Clobber(h *mem.Heap, a mem.Addr, v uint64) {
	h.Store(a, v)
}
