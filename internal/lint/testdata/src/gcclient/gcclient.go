// Package gcclient is a gclint fixture for the annotation confinement
// rules: it is outside internal/core and internal/rt, so //gc:nobarrier
// and //gc:nocharge excuse nothing here — the annotations themselves are
// findings.
package gcclient

import (
	"tilgc/internal/lint/testdata/src/internal/mem"
	"tilgc/internal/lint/testdata/src/internal/rt"
)

// sneaky claims a kernel exemption from mutator-side code: the
// annotation is confined to internal/core and is reported instead of
// honored.
//
//gc:nobarrier mutator code may not claim a kernel exemption
func sneaky(h *mem.Heap, a mem.Addr) { // want: //gc:nobarrier outside internal/core
	h.Store(a, 1)
}

// rawStore is a plain unbarriered store outside the collector.
func rawStore(h *mem.Heap, a mem.Addr) {
	h.Store(a, 2) // want: raw heap store in rawStore
}

// Setup claims an uncharged-operation exemption outside the collector
// packages: reported, not honored.
//
//gc:nocharge setup code may not claim the collector exemption
func Setup(h *mem.Heap) { // want: //gc:nocharge outside internal/core and internal/rt
	h.AddSpace(64)
}

// barriered records its store: clean anywhere.
func barriered(h *mem.Heap, s *rt.SSB, a mem.Addr, v uint64) {
	h.Store(a, v)
	s.Record(a)
}
