// Package detclient is a gclint fixture for detflow: it sits outside the
// determinism fence and launders host-derived and map-order values toward
// the fixture trace package (whose import path ends in internal/trace,
// placing it inside the fence) through locals, helpers, struct fields,
// and composite literals.
package detclient

import (
	"slices"
	"time"

	"tilgc/internal/lint/testdata/src/internal/trace"
)

// hostStamp launders a wall-clock read through a helper return value.
func hostStamp() uint64 { return uint64(time.Now().UnixNano()) }

// Direct passes a host-clock read straight across the fence.
func Direct() {
	trace.Emit(uint64(time.Now().UnixNano())) // want: argument to trace.Emit
}

// Arithmetic launders the clock through locals and arithmetic.
func Arithmetic() {
	t := time.Now().UnixNano()
	u := uint64(t)*2 + 1
	trace.Emit(u) // want: argument to trace.Emit
}

// ViaHelper launders the clock through hostStamp's summary.
func ViaHelper() {
	trace.Emit(hostStamp()) // want: argument to trace.Emit
}

// carrier is a non-fence struct used to launder taint through a field.
type carrier struct{ at uint64 }

// StoreAndForward parks a host-derived value in a struct field.
func StoreAndForward(c *carrier) {
	c.at = hostStamp()
}

// Replay reads the parked value back out in a different function and
// crosses the fence with it.
func Replay(c *carrier) {
	trace.Emit(c.at) // want: argument to trace.Emit
}

// relay is a non-fence helper whose parameter reaches a fence sink, so
// calling it with tainted data is itself a fence crossing.
func relay(v uint64) { trace.Emit(v) }

// Laundered crosses the fence through relay's summary.
func Laundered() {
	relay(hostStamp()) // want: argument to detclient.relay
}

// Build taints a fence-package composite literal and then hands it over.
func Build() {
	e := trace.Event{
		At: hostStamp(), // want: in a composite literal of a deterministic-package type
	}
	trace.Record(e) // want: argument to trace.Record
}

// Stamp writes a host-derived value into a fence-declared field.
func Stamp(e *trace.Event) {
	e.At = hostStamp() // want: stored into field At
}

// UnsortedKeys sends map-order-dependent data across the fence (and the
// unsorted append is maporder's finding on its own line).
func UnsortedKeys(m map[uint64]uint64) {
	var keys []uint64
	for k := range m {
		keys = append(keys, k) // want: append to keys
	}
	trace.Emit(keys[0]) // want: map iteration order
}

// SortedKeys launders map order through a sort: clean for both analyzers.
func SortedKeys(m map[uint64]uint64) {
	var keys []uint64
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	trace.Emit(keys[0])
}

// Allowed carries a justified suppression: no surviving diagnostic.
func Allowed() {
	//lint:ignore detflow fixture exercising justified suppression
	trace.Emit(uint64(time.Now().UnixNano()))
}

// Clean passes pure cycle arithmetic across the fence: no taint.
func Clean(cycles uint64) {
	trace.Emit(cycles * 3)
}
