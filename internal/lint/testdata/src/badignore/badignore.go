// Package badignore is a gclint test fixture: both suppressions below are
// malformed (unknown analyzer; missing justification) and must each be
// reported rather than honored.
package badignore

//lint:ignore nosuchanalyzer this analyzer does not exist
func Unknown() {}

//lint:ignore maporder
func Unjustified() {}

//lint:ignore maporder nothing in reach ranges over a map // want: stale //lint:ignore
func Stale() {}
