// Package maporder is a gclint test fixture: each construct annotated
// with a "want:" comment must produce a maporder diagnostic on that line,
// and every other construct must stay clean.
package maporder

import "sort"

// Sink is an effectful consumer used to exercise the call checks.
type Sink struct{ n int }

// Flush is an effectful method.
func (s *Sink) Flush() { s.n++ }

func process(v float64) { _ = v }

func score(v float64) int { return int(v) }

// FloatSum accumulates floats in map order.
func FloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want: float accumulation
	}
	return sum
}

// IntSum is clean: integer addition is associative and commutative.
func IntSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// FirstMatch returns in map order.
func FirstMatch(m map[string]int) string {
	for k, v := range m {
		if v > 0 {
			return k // want: return inside range over map
		}
	}
	return ""
}

// Concat builds a string in map order.
func Concat(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v // want: string concatenation
	}
	return s
}

// ConcatAssign builds a string in map order via plain assignment.
func ConcatAssign(m map[string]string) string {
	var s string
	for _, v := range m {
		s = s + v // want: string concatenation
	}
	return s
}

// CollectUnsorted appends in map order and never sorts.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: append to keys
	}
	return keys
}

// CollectSorted appends in map order but sorts before returning: clean.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectTailSorted appends to a passed-in buffer and sorts the appended
// suffix: clean — appends always land at the tail, so sorting keys[start:]
// launders their order.
func CollectTailSorted(m map[string]int, keys []string) []string {
	start := len(keys)
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys[start:])
	return keys
}

// KeyedWrites copies through keyed assignments: clean at any order.
func KeyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// EffectfulCall hands loop values to an effectful callee in map order.
func EffectfulCall(m map[string]float64) {
	for _, v := range m {
		process(v) // want: callee observes map order
	}
}

// MethodCall invokes an effectful method on the loop value in map order.
func MethodCall(m map[string]*Sink) {
	for _, s := range m {
		s.Flush() // want: callee observes map order
	}
}

// ValueCall uses a call result in value position: clean.
func ValueCall(m map[string]float64) {
	for _, v := range m {
		_ = score(v)
	}
}

// DeleteByKey removes entries by key: order-insensitive, clean.
func DeleteByKey(m, dead map[string]int) {
	for k := range dead {
		delete(m, k)
	}
}

// SendAll streams entries in map order.
func SendAll(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want: channel send
	}
}

// SuppressedSum carries a justified suppression: no surviving diagnostic.
func SuppressedSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:ignore maporder fixture exercising justified suppression
		sum += v
	}
	return sum
}

// Reduce takes a max over the map: plain assignment of a non-string, clean.
func Reduce(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
