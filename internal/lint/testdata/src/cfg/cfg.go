// Package cfg is a gclint test fixture for the cfgread analyzer.
package cfg

// TuningConfig is an exported Config struct, so its exported fields must
// all be read somewhere.
type TuningConfig struct {
	ReadField   int // read in Use: clean
	DeadField   int // want: TuningConfig.DeadField is never read
	WrittenOnly int // want: TuningConfig.WrittenOnly is never read
	Bumped      int // compound-assigned in Bump, which reads it: clean
	unexported  int // not exported: out of scope
}

// settings is unexported, so its fields are out of scope.
type settings struct {
	Ignored int
}

// Knobs is exported but not named *Config, so out of scope.
type Knobs struct {
	AlsoIgnored int
}

// Use reads ReadField.
func Use(c TuningConfig) int { return c.ReadField + c.unexported }

// Set only stores into WrittenOnly, which does not count as a read.
func Set(c *TuningConfig) { c.WrittenOnly = 1 }

// Bump compound-assigns Bumped, which reads before writing.
func Bump(c *TuningConfig) { c.Bumped += 1 }

var _ = settings{}
var _ = Knobs{}
