// Package injectdetflow is a broken-injection fixture: it contains
// exactly one defect, a wall-clock read crossing the determinism fence,
// and the injection test asserts that detflow — and only detflow — fires
// on it.
package injectdetflow

import (
	"time"

	"tilgc/internal/lint/testdata/src/internal/trace"
)

// Leak stamps a trace sample from the host clock.
func Leak() {
	trace.Emit(uint64(time.Now().UnixNano()))
}
