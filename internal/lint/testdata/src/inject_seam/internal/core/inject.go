// Package core is a broken-injection fixture on a collector-suffixed
// import path: it contains exactly one defect, unchecked Addr arithmetic
// outside a kernels*.go file, and the injection test asserts that
// seamcheck — and only seamcheck — fires on it.
package core

import "tilgc/internal/lint/testdata/src/internal/mem"

// shift bumps an address without the checked Add.
func shift(a mem.Addr) mem.Addr {
	return a + 1
}
