package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags range-over-map loops whose bodies are sensitive to
// iteration order. Go randomizes map iteration, so any order-dependent
// consumption of a ranged map is a nondeterminism bug in this repo, where
// every rendered table must be bit-for-bit reproducible. The analyzer
// flags loop bodies that:
//
//   - return or send on a channel (first match wins, so order matters);
//   - accumulate floats with += or -= (float addition is not associative —
//     the exact bug fixed in prof.OnSpaceCondemned);
//   - build strings by concatenation;
//   - call a function for effect (statement position) with a loop
//     variable as an argument — the callee observes values in map order;
//   - append to a slice declared outside the loop without sorting it
//     afterwards in the same function.
//
// Order-insensitive patterns — keyed writes into another map, integer
// accumulation, max/min reductions, calls whose result feeds a value
// position — pass untouched.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flags order-sensitive iteration over Go maps",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkMapRanges(pass, fn.Body)
			return true
		})
	}
}

// checkMapRanges finds range-over-map statements in body (including ones
// nested in inner loops and closures) and reports order-sensitive uses.
// fnScope is the innermost enclosing function body, used to look for
// post-loop sorts.
func checkMapRanges(pass *Pass, fnScope *ast.BlockStmt) {
	ast.Inspect(fnScope, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkMapRanges(pass, fl.Body)
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Pkg.Info.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		reportSensitiveUses(pass, rs, fnScope)
		return true
	})
}

// loopVars collects the objects bound by the range statement's key and
// value variables.
func loopVars(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if o := pass.Pkg.Info.Defs[id]; o != nil {
			vars[o] = true
		} else if o := pass.Pkg.Info.Uses[id]; o != nil { // `k, v = range m` with existing vars
			vars[o] = true
		}
	}
	return vars
}

// usesAny reports whether expr references any of the given objects.
func usesAny(pass *Pass, expr ast.Node, vars map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := pass.Pkg.Info.Uses[id]; o != nil && vars[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportSensitiveUses walks the loop body of one range-over-map statement
// and reports each order-sensitive construct.
func reportSensitiveUses(pass *Pass, rs *ast.RangeStmt, fnScope *ast.BlockStmt) {
	info := pass.Pkg.Info
	vars := loopVars(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			pass.Reportf(s.Pos(), "return inside range over map: result depends on iteration order")
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside range over map: delivery order depends on iteration order")
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && callIsOrderSensitive(pass, call, vars) {
				pass.Reportf(s.Pos(), "call with loop variable inside range over map: callee observes map order")
			}
		case *ast.AssignStmt:
			reportSensitiveAssign(pass, s, rs, vars, fnScope, info)
		}
		return true
	})
}

// reportSensitiveAssign reports order-sensitive assignment forms inside a
// range-over-map body.
func reportSensitiveAssign(pass *Pass, s *ast.AssignStmt, rs *ast.RangeStmt,
	vars map[types.Object]bool, fnScope *ast.BlockStmt, info *types.Info) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		t := info.Types[s.Lhs[0]].Type
		if t == nil {
			return
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return
		}
		switch {
		case b.Info()&types.IsFloat != 0:
			pass.Reportf(s.Pos(), "float accumulation inside range over map: float addition is not associative, sum depends on iteration order")
		case s.Tok == token.ADD_ASSIGN && b.Info()&types.IsString != 0:
			pass.Reportf(s.Pos(), "string concatenation inside range over map: result depends on iteration order")
		}
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range s.Lhs {
			if i >= len(s.Rhs) {
				break
			}
			// s = s + v style string building.
			if isStringSelfConcat(info, lhs, s.Rhs[i]) {
				pass.Reportf(s.Pos(), "string concatenation inside range over map: result depends on iteration order")
				continue
			}
			// x = append(x, ...) into a slice that outlives the loop.
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && isAppend(info, call) {
				obj := rootObject(info, lhs)
				if obj == nil || vars[obj] || declaredWithin(obj, rs) {
					continue
				}
				if !sortedAfter(pass, obj, rs, fnScope) {
					pass.Reportf(s.Pos(), "append to %s inside range over map without a later sort: element order depends on iteration order", obj.Name())
				}
			}
		}
	}
}

// callIsOrderSensitive reports whether a statement-position call passes a
// loop variable to an effectful callee. Builtins delete/len/cap/print and
// type conversions are exempt: delete-by-key is order-insensitive and the
// others are pure.
func callIsOrderSensitive(pass *Pass, call *ast.CallExpr, vars map[types.Object]bool) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if o := pass.Pkg.Info.Uses[id]; o != nil {
			if _, isBuiltin := o.(*types.Builtin); isBuiltin {
				return false
			}
			if _, isType := o.(*types.TypeName); isType {
				return false
			}
		}
	}
	for _, arg := range call.Args {
		if usesAny(pass, arg, vars) {
			return true
		}
	}
	// A method call on a loop variable (v.Flush()) is just as effectful.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && usesAny(pass, sel.X, vars) {
		return true
	}
	return false
}

// isStringSelfConcat matches `s = s + expr` (or `s = expr + s`) on strings.
func isStringSelfConcat(info *types.Info, lhs, rhs ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	t := info.Types[lhs].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	lobj := rootObject(info, lhs)
	return lobj != nil && (rootObject(info, bin.X) == lobj || rootObject(info, bin.Y) == lobj)
}

// isAppend matches a call to the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves an lvalue-ish expression to its base identifier's
// object: x, x[i], x[i:j], x.f, *x, &x all resolve to x. Slice expressions
// matter for the sort sinks: appends land in the suffix, so sorting
// x[start:] launders the appended region's order just like sorting x.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortSinks is the set of sorting functions that launder append order.
var sortSinks = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a sort function after the
// range statement, anywhere later in the enclosing function body.
func sortedAfter(pass *Pass, obj types.Object, rs *ast.RangeStmt, fnScope *ast.BlockStmt) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fnScope, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return !found
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return !found
		}
		fns, ok := sortSinks[pn.Imported().Path()]
		if !ok || !fns[sel.Sel.Name] {
			return !found
		}
		arg := call.Args[0]
		if u, isAddr := arg.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			arg = u.X
		}
		if rootObject(info, arg) == obj {
			found = true
		}
		return !found
	})
	return found
}
