package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked module package.
type Package struct {
	Path   string
	Dir    string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
	Target bool // named by the load patterns (vs. pulled in as a dependency)
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
}

// goList runs `go list -json` in dir and decodes the package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	return pkgs, nil
}

// Load enumerates the packages matching patterns (with `go list`, so build
// constraints and file lists match the real build), parses and type-checks
// every module package in the dependency closure, and returns them sorted
// by import path. Packages matching the patterns directly are marked
// Target; module-local dependencies are loaded too (module analyzers see
// the whole program) but not marked. Standard-library dependencies are
// type-checked from source by the stdlib importer and do not appear in the
// result.
func Load(dir string, patterns []string) ([]*Package, error) {
	deps, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	direct, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool, len(direct))
	for _, p := range direct {
		targets[p.ImportPath] = true
	}

	l := &loader{
		fset:   token.NewFileSet(),
		listed: make(map[string]listedPkg, len(deps)),
		loaded: make(map[string]*Package),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	for _, p := range deps {
		l.listed[p.ImportPath] = p
	}

	var out []*Package
	for _, p := range deps {
		if p.Standard {
			continue
		}
		lp, err := l.load(p.ImportPath)
		if err != nil {
			return nil, err
		}
		lp.Target = targets[p.ImportPath]
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// loader type-checks module packages, resolving module imports recursively
// and delegating standard-library imports to the source importer. All
// packages share one FileSet so diagnostic positions are uniform.
type loader struct {
	fset   *token.FileSet
	std    types.Importer
	listed map[string]listedPkg
	loaded map[string]*Package
}

// Import implements types.Importer for the type-checker.
func (l *loader) Import(path string) (*types.Package, error) {
	p, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("import %q not in go list -deps output", path)
	}
	if p.Standard {
		return l.std.Import(path)
	}
	lp, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return lp.Types, nil
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if lp, ok := l.loaded[path]; ok {
		return lp, nil
	}
	p, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("package %q not in go list -deps output", path)
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	lp := &Package{Path: path, Dir: p.Dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = lp
	return lp, nil
}
