package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tilgc/internal/lint"
)

// fixturePatterns are the testdata packages the analyzer tests load. They
// sit under testdata/ so ./... wildcards (the CI gclint invocation, go
// build, go vet) never see them.
var fixturePatterns = []string{
	"./testdata/src/maporder",
	"./testdata/src/internal/core",
	"./testdata/src/internal/trace",
	"./testdata/src/internal/adapt",
	"./testdata/src/internal/fuzz",
	"./testdata/src/cfg",
}

// expectation is one "// want: <substring>" annotation in a fixture.
type expectation struct {
	file string // base name
	line int
	want string
	hit  bool
}

// collectWants parses the want annotations out of a fixture file.
func collectWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		_, after, ok := strings.Cut(line, "// want: ")
		if !ok {
			continue
		}
		wants = append(wants, &expectation{
			file: filepath.Base(path),
			line: i + 1,
			want: strings.TrimSpace(after),
		})
	}
	return wants
}

// TestAnalyzersOnFixtures runs the full pipeline — go list, parse,
// type-check, analyze, suppress — over the fixture packages and checks the
// diagnostics exactly match the "want:" annotations.
func TestAnalyzersOnFixtures(t *testing.T) {
	var wants []*expectation
	for _, pat := range fixturePatterns {
		dir := filepath.FromSlash(strings.TrimPrefix(pat, "./"))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				wants = append(wants, collectWants(t, filepath.Join(dir, e.Name()))...)
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want annotations found in fixtures")
	}

	diags, err := lint.Run(".", fixturePatterns, lint.Default())
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line &&
				strings.Contains(d.Message, w.want) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.want)
		}
	}
}

// TestMalformedIgnores checks that suppressions naming an unknown analyzer
// or lacking a justification are reported, not honored.
func TestMalformedIgnores(t *testing.T) {
	diags, err := lint.Run(".", []string{"./testdata/src/badignore"}, lint.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-ignore reports:\n%s", len(diags), renderAll(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed //lint:ignore") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestDiagnosticsSorted checks the position ordering contract on the
// combined fixture run.
func TestDiagnosticsSorted(t *testing.T) {
	diags, err := lint.Run(".", fixturePatterns, lint.Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ka := fmt.Sprintf("%s:%08d:%08d:%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Analyzer)
		kb := fmt.Sprintf("%s:%08d:%08d:%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Analyzer)
		if ka > kb {
			t.Errorf("diagnostics out of order:\n  %s\n  %s", a, b)
		}
	}
}

// TestModuleIsClean is the acceptance gate in test form: the real module
// must produce zero gclint findings. Skipped with -short because it
// type-checks the whole module.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint run")
	}
	diags, err := lint.Run(".", []string{"tilgc/..."}, lint.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("gclint findings on the module:\n%s", renderAll(diags))
	}
}

func renderAll(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
