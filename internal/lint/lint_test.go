package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tilgc/internal/lint"
)

// fixturePatterns are the testdata packages the analyzer tests load. They
// sit under testdata/ so ./... wildcards (the CI gclint invocation, go
// build, go vet) never see them. The internal/mem, internal/obj,
// internal/costmodel, and internal/rt entries are support packages the
// analyzers match primitives in; they must stay finding-free.
var fixturePatterns = []string{
	"./testdata/src/maporder",
	"./testdata/src/internal/core",
	"./testdata/src/internal/trace",
	"./testdata/src/internal/adapt",
	"./testdata/src/internal/fuzz",
	"./testdata/src/internal/slo",
	"./testdata/src/internal/mem",
	"./testdata/src/internal/obj",
	"./testdata/src/internal/costmodel",
	"./testdata/src/internal/rt",
	"./testdata/src/cfg",
	"./testdata/src/detclient",
	"./testdata/src/gcclient",
}

// fixtureResult loads and analyzes the fixture packages exactly once for
// all tests in the file (the go list + srcimporter load dominates test
// wall time).
var fixtureResult = sync.OnceValues(func() (*lint.Result, error) {
	return lint.Run(".", fixturePatterns, lint.Default())
})

// expectation is one "// want: <substring>" annotation in a fixture.
type expectation struct {
	file string // base name
	line int
	want string
	hit  bool
}

// collectWants parses the want annotations out of a fixture file.
func collectWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		_, after, ok := strings.Cut(line, "// want: ")
		if !ok {
			continue
		}
		wants = append(wants, &expectation{
			file: filepath.Base(path),
			line: i + 1,
			want: strings.TrimSpace(after),
		})
	}
	return wants
}

// TestAnalyzersOnFixtures runs the full pipeline — go list, parse,
// type-check, analyze, suppress — over the fixture packages and checks the
// diagnostics exactly match the "want:" annotations.
func TestAnalyzersOnFixtures(t *testing.T) {
	var wants []*expectation
	for _, pat := range fixturePatterns {
		dir := filepath.FromSlash(strings.TrimPrefix(pat, "./"))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				wants = append(wants, collectWants(t, filepath.Join(dir, e.Name()))...)
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want annotations found in fixtures")
	}

	res, err := fixtureResult()
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range res.Diagnostics {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line &&
				strings.Contains(d.Message, w.want) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.want)
		}
	}
}

// TestIgnoreHygiene checks that suppressions naming an unknown analyzer
// or lacking a justification are reported rather than honored, and that a
// well-formed suppression with nothing to suppress is reported as stale.
func TestIgnoreHygiene(t *testing.T) {
	res, err := lint.Run(".", []string{"./testdata/src/badignore"}, lint.Default())
	if err != nil {
		t.Fatal(err)
	}
	var malformed, stale int
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "malformed //lint:ignore"):
			malformed++
		case d.Analyzer == "lint" && strings.Contains(d.Message, "stale //lint:ignore"):
			stale++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if malformed != 2 || stale != 1 {
		t.Errorf("got %d malformed + %d stale ignore reports, want 2 + 1:\n%s",
			malformed, stale, renderAll(res.Diagnostics))
	}
}

// TestDiagnosticsSorted checks the position ordering contract on the
// combined fixture run.
func TestDiagnosticsSorted(t *testing.T) {
	res, err := fixtureResult()
	if err != nil {
		t.Fatal(err)
	}
	diags := res.Diagnostics
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ka := fmt.Sprintf("%s:%08d:%08d:%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Analyzer)
		kb := fmt.Sprintf("%s:%08d:%08d:%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Analyzer)
		if ka > kb {
			t.Errorf("diagnostics out of order:\n  %s\n  %s", a, b)
		}
	}
}

// TestSuppressionInventory checks the -ignores data: the fixture run must
// report every justified suppression with the right kind and use state.
func TestSuppressionInventory(t *testing.T) {
	res, err := fixtureResult()
	if err != nil {
		t.Fatal(err)
	}
	// (file base name, kind, analyzer, used) tuples that must appear.
	wants := []struct {
		file     string
		kind     string
		analyzer string
		used     bool
	}{
		{"maporder.go", "lint:ignore", "maporder", true},
		{"policy.go", "lint:ignore", "seamcheck", true},
		{"detclient.go", "lint:ignore", "detflow", true},
		{"gc.go", "gc:nobarrier", "barriercheck", true},  // fixtureEvacuate
		{"gc.go", "gc:nobarrier", "barriercheck", false}, // tidy (stale)
		{"gc.go", "gc:nocharge", "costcharge", true},     // Grow
		{"gc.go", "gc:nocharge", "costcharge", false},    // Shrink (stale)
		{"policy.go", "gc:nobarrier", "barriercheck", true},
		{"kernels_fixture.go", "gc:nobarrier", "barriercheck", true},
		{"gcclient.go", "gc:nobarrier", "barriercheck", false},
		{"gcclient.go", "gc:nocharge", "costcharge", false},
	}
	for _, w := range wants {
		found := false
		for _, s := range res.Suppressions {
			if filepath.Base(s.Pos.Filename) == w.file && s.Kind == w.kind &&
				s.Analyzer == w.analyzer && s.Used == w.used {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("suppression inventory missing %s %s (%s, used=%v)", w.file, w.kind, w.analyzer, w.used)
		}
	}
	for i := 1; i < len(res.Suppressions); i++ {
		a, b := res.Suppressions[i-1], res.Suppressions[i]
		ka := fmt.Sprintf("%s:%08d", a.Pos.Filename, a.Pos.Line)
		kb := fmt.Sprintf("%s:%08d", b.Pos.Filename, b.Pos.Line)
		if ka > kb {
			t.Errorf("suppressions out of order:\n  %s\n  %s", a, b)
		}
	}
}

// TestInjections loads one deliberately broken package per new analyzer
// and asserts that exactly that analyzer fires — a mutation test for the
// checkers themselves, so a refactor cannot quietly blunt one of them.
func TestInjections(t *testing.T) {
	cases := []struct {
		pattern  string
		analyzer string
	}{
		{"./testdata/src/inject_barrier", "barriercheck"},
		{"./testdata/src/inject_charge/internal/core", "costcharge"},
		{"./testdata/src/inject_seam/internal/core", "seamcheck"},
		{"./testdata/src/inject_detflow", "detflow"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			res, err := lint.Run(".", []string{tc.pattern}, lint.Default())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Diagnostics) == 0 {
				t.Fatalf("injected defect in %s produced no findings", tc.pattern)
			}
			for _, d := range res.Diagnostics {
				if d.Analyzer != tc.analyzer {
					t.Errorf("injected defect tripped %s, want only %s: %s", d.Analyzer, tc.analyzer, d)
				}
			}
		})
	}
}

// moduleResult loads and analyzes the whole module once for the module
// tests below.
var moduleResult = sync.OnceValues(func() (*moduleRun, error) {
	pkgs, err := lint.Load(".", []string{"tilgc/..."})
	if err != nil {
		return nil, err
	}
	return &moduleRun{pkgs: pkgs, res: lint.Analyze(pkgs, lint.Default())}, nil
})

type moduleRun struct {
	pkgs []*lint.Package
	res  *lint.Result
}

// TestModuleIsClean is the acceptance gate in test form: the real module
// must produce zero gclint findings. Skipped with -short because it
// type-checks the whole module.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint run")
	}
	m, err := moduleResult()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.res.Diagnostics) != 0 {
		t.Errorf("gclint findings on the module:\n%s", renderAll(m.res.Diagnostics))
	}
}

// TestScannedPackageSet pins the analyzer scope: the packages the paper's
// determinism and accounting invariants live in must be in the module
// sweep, so a build-layout change cannot silently drop one from CI.
func TestScannedPackageSet(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint run")
	}
	m, err := moduleResult()
	if err != nil {
		t.Fatal(err)
	}
	targets := make(map[string]bool)
	for _, p := range m.pkgs {
		if p.Target {
			targets[p.Path] = true
		}
	}
	for _, path := range []string{
		"tilgc/internal/core", "tilgc/internal/rt", "tilgc/internal/mem",
		"tilgc/internal/obj", "tilgc/internal/costmodel", "tilgc/internal/prof",
		"tilgc/internal/trace", "tilgc/internal/adapt", "tilgc/internal/fuzz",
		"tilgc/internal/slo", "tilgc/internal/harness", "tilgc/internal/sanitize",
		"tilgc/internal/lint",
		"tilgc/cmd/gcbench", "tilgc/cmd/gclint", "tilgc/gcsim",
	} {
		if !targets[path] {
			t.Errorf("module sweep no longer covers %s", path)
		}
	}
	for path := range targets {
		if strings.Contains(path, "testdata") {
			t.Errorf("module sweep leaked into testdata: %s", path)
		}
	}
}

// TestFenceCoverage checks every declared fence suffix still matches at
// least one real module package — a rename would otherwise silently
// shrink the determinism fence.
func TestFenceCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint run")
	}
	m, err := moduleResult()
	if err != nil {
		t.Fatal(err)
	}
	fences := lint.FencePackages()
	for _, want := range []string{"internal/adapt", "internal/trace", "internal/fuzz", "internal/slo"} {
		found := false
		for _, f := range fences {
			if f == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fence list no longer includes %s", want)
		}
	}
	for _, suffix := range fences {
		matched := false
		for _, p := range m.pkgs {
			if p.Target && (p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix)) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("fence suffix %q matches no module package", suffix)
		}
	}
}

func renderAll(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
