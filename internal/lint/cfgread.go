package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Cfgread flags exported fields of exported *Config structs that no code
// in the module ever reads. A config field that is only ever written (or
// never mentioned at all) is silently-ignored configuration: the caller
// sets it, nothing happens, and no error is raised — the failure mode
// behind the pretenuring-cutoff bug where a sweep "varied" a knob the
// collector never looked at. Writes don't count as uses; composite-literal
// keys don't count as uses; a field must flow into behavior somewhere.
//
// This is a whole-module analyzer: the field is declared in one package
// and legitimately read in another, so per-package use counts would be
// meaningless.
var Cfgread = &Analyzer{
	Name:      "cfgread",
	Doc:       "flags exported Config fields that are never read anywhere in the module",
	RunModule: runCfgread,
}

func runCfgread(pass *Pass) {
	type fieldDecl struct {
		pos    token.Pos
		pkg    *Package
		owner  string
		sorted int // order of discovery, for stable reporting
	}
	fields := make(map[*types.Var]*fieldDecl)
	order := 0

	// Pass 1: collect exported fields of exported ...Config structs.
	for _, p := range pass.All {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() || !strings.HasSuffix(ts.Name.Name, "Config") {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					if len(fld.Names) == 0 {
						continue // embedded field
					}
					for _, name := range fld.Names {
						if !name.IsExported() {
							continue
						}
						v, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						fields[v] = &fieldDecl{pos: name.Pos(), pkg: p, owner: ts.Name.Name, sorted: order}
						order++
					}
				}
				return true
			})
		}
	}
	if len(fields) == 0 {
		return
	}

	// Pass 2: find reads. A read is any selector use of the field object
	// that is not purely a store target (lhs of a plain = assignment).
	read := make(map[*types.Var]bool)
	for _, p := range pass.All {
		for _, f := range p.Files {
			storeTargets := collectStoreTargets(f)
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v, ok := p.Info.Uses[sel.Sel].(*types.Var)
				if !ok {
					return true
				}
				if _, tracked := fields[v]; !tracked {
					return true
				}
				if !storeTargets[sel] {
					read[v] = true
				}
				return true
			})
		}
	}

	type finding struct {
		decl *fieldDecl
		name string
	}
	var findings []finding
	for v, d := range fields {
		if !read[v] {
			findings = append(findings, finding{d, v.Name()})
		}
	}
	// Report in declaration order; Analyze re-sorts by position anyway,
	// but deterministic report order keeps map iteration out of the path.
	sort.Slice(findings, func(i, j int) bool { return findings[i].decl.sorted < findings[j].decl.sorted })
	for _, f := range findings {
		fpass := *pass
		fpass.Pkg = f.decl.pkg
		fpass.Reportf(f.decl.pos, "%s.%s is never read: configuration set here is silently ignored", f.decl.owner, f.name)
	}
}

// collectStoreTargets returns the selector expressions that appear only as
// the target of a plain assignment (x.F = v). Compound assignments
// (x.F += v) read before writing and are excluded.
func collectStoreTargets(f *ast.File) map[*ast.SelectorExpr]bool {
	targets := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				targets[sel] = true
			}
		}
		return true
	})
	return targets
}
