package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CallGraph is a static over-approximation of the module's call
// structure: every function declared in a loaded module package, with the
// statically resolvable callees of its body (direct calls, concrete
// method calls, package-qualified calls; function literals are attributed
// to the enclosing declaration). Calls through interfaces or function
// values resolve to the interface method / nothing, so reachability
// queries are conservative: an edge that cannot be proven is absent.
type CallGraph struct {
	nodes map[*types.Func]*callNode
}

type callNode struct {
	decl    *ast.FuncDecl
	pkg     *Package
	callees []*types.Func // deduplicated, in source order
}

// buildCallGraph constructs the call graph over the loaded packages.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*callNode)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &callNode{decl: fd, pkg: p}
				seen := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(p.Info, call); callee != nil && !seen[callee] {
						seen[callee] = true
						node.callees = append(node.callees, callee)
					}
					return true
				})
				g.nodes[fn] = node
			}
		}
	}
	return g
}

// staticCallee resolves the target of a call expression to a function
// object, or nil for calls through function values, conversions, and
// builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok { // generic instantiation f[T](...)
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// Reaches reports whether any static call path out of fn hits a function
// matching sink. fn itself is not tested; module functions expand through
// their bodies, everything else is a leaf.
func (g *CallGraph) Reaches(fn *types.Func, sink func(*types.Func) bool) bool {
	visited := map[*types.Func]bool{fn: true}
	work := []*types.Func{fn}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		node := g.nodes[cur]
		if node == nil {
			continue
		}
		for _, callee := range node.callees {
			if sink(callee) {
				return true
			}
			if !visited[callee] {
				visited[callee] = true
				work = append(work, callee)
			}
		}
	}
	return false
}

// pkgPathHasSuffix reports whether a package path ends in suffix at a
// path-element boundary, so "internal/core" matches both the real package
// and the fixture packages under testdata/src.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// funcIs matches a function object against a package-path suffix, a
// receiver type name ("" for plain functions; pointer receivers are
// dereferenced), and a function name.
func funcIs(fn *types.Func, suffix, recv, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || !pkgPathHasSuffix(fn.Pkg().Path(), suffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	r := sig.Recv()
	if recv == "" {
		return r == nil
	}
	return r != nil && recvTypeName(r.Type()) == recv
}

// recvTypeName returns the named type behind a (possibly pointer)
// receiver type, or "".
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
