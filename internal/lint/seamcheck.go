package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Seamcheck confines raw-word heap access to the kernel seam. The PR-4
// optimized/reference kernel split lives in kernels*.go files inside
// internal/core; only those files may bypass the checked heap interface:
//
//   - (*mem.Space).Raw — direct word-slice access to an arena;
//   - the obj raw header codecs (PackHeader, PackForward, HeaderKind,
//     HeaderLen, HeaderSite, ForwardAddr) — decoding a header word
//     outside the codec invariants;
//   - arithmetic on mem.Addr values — bypassing the overflow-checked
//     Addr.Add (conversions like mem.Addr(x) and uint64(a) are fine, and
//     comparisons are order queries, not address computation).
//
// Policy code (allocation routing, barrier drains, collection
// scheduling) in internal/core and internal/rt must stay on the checked
// Heap/obj.Decode interface so the reference kernels remain a faithful
// oracle: a raw access in policy code would be exercised identically by
// both kernel sets and escape the equivalence tests.
var Seamcheck = &Analyzer{
	Name: "seamcheck",
	Doc:  "confines raw-word access (Space.Raw, header codecs, Addr arithmetic) to kernels*.go",
	Run:  runSeamcheck,
}

// rawCodecNames are the obj package's raw header encode/decode helpers.
var rawCodecNames = map[string]bool{
	"PackHeader": true, "PackForward": true, "HeaderKind": true,
	"HeaderLen": true, "HeaderSite": true, "ForwardAddr": true,
}

// addrArithOps are the binary operators that compute with an address
// (comparisons excluded).
var addrArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.SHL_ASSIGN: true,
	token.SHR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

func runSeamcheck(pass *Pass) {
	if !inChargeScope(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		base := filepath.Base(pass.Pkg.Fset.Position(f.Pos()).Filename)
		if ok, _ := filepath.Match("kernels*.go", base); ok {
			continue // inside the seam
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				fn := staticCallee(info, e)
				if funcIs(fn, "internal/mem", "Space", "Raw") {
					pass.Reportf(e.Pos(), "Space.Raw outside the kernel seam (kernels*.go): policy code must use the checked Heap interface")
				} else if fn != nil && fn.Pkg() != nil &&
					pkgPathHasSuffix(fn.Pkg().Path(), "internal/obj") && rawCodecNames[fn.Name()] {
					pass.Reportf(e.Pos(), "raw header codec obj.%s outside the kernel seam (kernels*.go): policy code must use obj.Decode", fn.Name())
				}
			case *ast.BinaryExpr:
				if addrArithOps[e.Op] && (isMemAddr(info, e.X) || isMemAddr(info, e.Y)) {
					pass.Reportf(e.Pos(), "unchecked Addr arithmetic outside the kernel seam (kernels*.go): use the overflow-checked Addr.Add")
				}
			case *ast.AssignStmt:
				if addrArithOps[e.Tok] && len(e.Lhs) == 1 && isMemAddr(info, e.Lhs[0]) {
					pass.Reportf(e.Pos(), "unchecked Addr arithmetic outside the kernel seam (kernels*.go): use the overflow-checked Addr.Add")
				}
			case *ast.IncDecStmt:
				if isMemAddr(info, e.X) {
					pass.Reportf(e.Pos(), "unchecked Addr arithmetic outside the kernel seam (kernels*.go): use the overflow-checked Addr.Add")
				}
			}
			return true
		})
	}
}

// isMemAddr reports whether the expression's type is mem.Addr.
func isMemAddr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Addr" && pkgPathHasSuffix(n.Obj().Pkg().Path(), "internal/mem")
}
