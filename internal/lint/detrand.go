package lint

import (
	"go/ast"
	"strings"
)

// detPackages are the package-path suffixes where the simulation must be
// fully deterministic: the collector core and everything it depends on.
// The harness and workload layers sit outside the fence — the harness
// legitimately reads GOMAXPROCS for its worker pool, and that choice
// cannot leak into results (RunAll assembles in input order).
var detPackages = []string{
	"internal/core",
	"internal/rt",
	"internal/mem",
	"internal/obj",
	"internal/costmodel",
	"internal/prof",
	// The trace layer's whole contract is byte-identical output: every
	// timestamp is a costmodel cycle count, so a wall-clock or scheduler
	// read here would corrupt trace determinism silently.
	"internal/trace",
	// The adaptive advisor's promotion/demotion decisions feed back into
	// allocation placement, so any nondeterminism here changes heap layout,
	// GC counts, and the cross-run profile store.
	"internal/adapt",
	// The differential fuzzer's whole value is replayability: a seed must
	// regenerate the exact program and the exact failure, and serial and
	// parallel sweeps must render byte-identical reports. Host randomness
	// or clock reads in the generator, interpreter, or driver would turn
	// every reported seed into an unreplayable one-off.
	"internal/fuzz",
	// The SLO layer is a pure function of a frozen trace: percentiles,
	// MMU/AMU curves, and report bytes must be identical across runs,
	// machines, and parallelism levels. A clock read here would smuggle
	// wall time into a report whose schema promises simulated cycles only.
	"internal/slo",
}

// detrandBanned maps package path -> banned member names. An empty set
// bans the import entirely.
var detrandBanned = map[string]map[string]bool{
	"math/rand":    nil,
	"math/rand/v2": nil,
	"runtime":      {"GOMAXPROCS": true, "NumCPU": true},
	"time":         {"Now": true, "Since": true, "Until": true},
}

// Detrand flags nondeterminism sources inside the deterministic core of
// the simulator: unseeded randomness, wall-clock reads, and
// scheduler-dependent values. Every quantity the core reports must be a
// pure function of the workload and configuration — simulated time comes
// from the cost model (costmodel.Cycles), never from the host clock.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "bans randomness, wall-clock, and scheduler reads in deterministic packages",
	Run:  runDetrand,
}

func runDetrand(pass *Pass) {
	if !inDetFence(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if members, banned := detrandBanned[path]; banned && members == nil {
				pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: results must not depend on randomness", path, pass.Pkg.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, member, ok := resolvePkgMember(pass, sel)
			if !ok {
				return true
			}
			if members := detrandBanned[pkgPath]; members != nil && members[member] {
				pass.Reportf(sel.Pos(), "%s.%s in deterministic package %s: simulated results must not depend on the host clock or scheduler",
					pathBase(pkgPath), member, pass.Pkg.Path)
			}
			return true
		})
	}
}

// inDetFence reports whether path is one of the deterministic packages.
func inDetFence(path string) bool {
	for _, suffix := range detPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// resolvePkgMember resolves pkg.Member selector expressions via type info,
// so aliased imports and shadowed identifiers are handled correctly.
func resolvePkgMember(pass *Pass, sel *ast.SelectorExpr) (pkgPath, member string, ok bool) {
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	// Only package-level selections (time.Now), not field/method accesses.
	if _, isSelection := pass.Pkg.Info.Selections[sel]; isSelection {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
