// Package lint is a small, dependency-free static-analysis framework plus
// the repo-specific analyzers behind cmd/gclint. It mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) but is
// built entirely on the standard library's go/ast, go/parser, and
// go/types, because this module deliberately carries no external
// dependencies: packages are enumerated with `go list -json`, module
// packages are type-checked here, and standard-library imports are
// resolved through the stdlib source importer.
//
// The analyzers encode this repository's determinism contract (see
// DESIGN.md): every rendered table must be bit-for-bit reproducible, so
// map iteration order, wall-clock reads, scheduler-dependent values, and
// silently-ignored configuration are all bug classes worth catching
// mechanically — each has already produced a real bug here (the
// CardTable.Cards() map-order scan, the unread PretenureCutoff field).
//
// Findings can be suppressed with an inline comment on the same line or
// the line above, naming the analyzer and justifying the suppression:
//
//	//lint:ignore maporder accumulation is commutative integer addition
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check. Exactly one of Run (invoked once per
// target package) or RunModule (invoked once with every loaded module
// package, for whole-program properties) should be set.
type Analyzer struct {
	Name string
	Doc  string
	// Run analyzes one target package.
	Run func(*Pass)
	// RunModule analyzes the whole module at once.
	RunModule func(*Pass)
}

// Pass carries the state for one analyzer invocation and collects its
// diagnostics. For per-package analyzers Pkg is the package under
// analysis; for module analyzers Pkg is nil and All holds every loaded
// module package (targets and their module-local dependencies alike).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	All      []*Package
	Targets  []*Package // the packages named by the load patterns

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	var fset = p.fset()
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) fset() *token.FileSet {
	if p.Pkg != nil {
		return p.Pkg.Fset
	}
	return p.All[0].Fset
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Default returns the analyzers gclint runs.
func Default() []*Analyzer {
	return []*Analyzer{Maporder, Detrand, Cfgread}
}

// Run loads the packages matching patterns (resolved relative to dir, a
// directory inside the module) and applies the analyzers to them,
// returning surviving diagnostics sorted by position. //lint:ignore
// comments suppress matching diagnostics; a suppression that names no
// analyzer or gives no justification is itself reported.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return Analyze(pkgs, analyzers), nil
}

// Analyze applies the analyzers to already-loaded packages.
func Analyze(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var targets []*Package
	for _, p := range pkgs {
		if p.Target {
			targets = append(targets, p)
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, p := range targets {
				a.Run(&Pass{Analyzer: a, Pkg: p, All: pkgs, Targets: targets, diags: &diags})
			}
		case a.RunModule != nil:
			a.RunModule(&Pass{Analyzer: a, All: pkgs, Targets: targets, diags: &diags})
		}
	}
	diags = applyIgnores(targets, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreKey locates a suppressible diagnostic.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// applyIgnores drops diagnostics covered by a well-formed //lint:ignore
// comment on the same line or the line immediately above, and reports
// malformed suppressions.
func applyIgnores(targets []*Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores := make(map[ignoreKey]bool)
	for _, p := range targets {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					if !known[name] || strings.TrimSpace(reason) == "" {
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "lint",
							Message: "malformed //lint:ignore: want \"//lint:ignore <analyzer> <justification>\""})
						continue
					}
					end := p.Fset.Position(c.End())
					for line := pos.Line; line <= end.Line+1; line++ {
						ignores[ignoreKey{pos.Filename, line, name}] = true
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
