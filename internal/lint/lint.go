// Package lint is a small, dependency-free static-analysis framework plus
// the repo-specific analyzers behind cmd/gclint. It mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) but is
// built entirely on the standard library's go/ast, go/parser, and
// go/types, because this module deliberately carries no external
// dependencies: packages are enumerated with `go list -json`, module
// packages are type-checked here, and standard-library imports are
// resolved through the stdlib source importer.
//
// The analyzers encode this repository's determinism and GC-invariant
// contracts (see DESIGN.md): every rendered table must be bit-for-bit
// reproducible, every pointer store into heap storage must pass through
// the write barrier, every simulated operation must be charged to the
// cost meter, and raw-word access is confined to the kernel seam. Each
// rule has a runtime counterpart (the sanitizer, trace Reconcile, the
// run-twice oracle); the analyzers prove the same invariants over all
// code paths instead of the executed one.
//
// Findings can be suppressed with an inline comment on the same line or
// the line above, naming the analyzer and justifying the suppression:
//
//	//lint:ignore maporder accumulation is commutative integer addition
//
// A suppression that no longer suppresses anything is itself reported
// (stale allowlists rot silently otherwise). Collector-internal code can
// opt whole functions out of barriercheck / costcharge with a justified
// function annotation in the doc comment:
//
//	//gc:nobarrier to-space is fully scanned before the mutator resumes
//	//gc:nocharge construction happens outside the measured run
//
// Both annotations are honored only inside the collector packages (see
// the analyzer docs); elsewhere the annotation itself is a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one static check. Exactly one of Run (invoked once per
// target package) or RunModule (invoked once with every loaded module
// package, for whole-program properties) should be set.
type Analyzer struct {
	Name string
	Doc  string
	// Run analyzes one target package.
	Run func(*Pass)
	// RunModule analyzes the whole module at once.
	RunModule func(*Pass)
}

// Pass carries the state for one analyzer invocation and collects its
// diagnostics. For per-package analyzers Pkg is the package under
// analysis; for module analyzers Pkg is nil and All holds every loaded
// module package (targets and their module-local dependencies alike).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	All      []*Package
	Targets  []*Package // the packages named by the load patterns

	shared *sharedFacts
	diags  *[]Diagnostic
}

// sharedFacts caches analysis state that is expensive to build and
// identical for every analyzer in one Analyze call: the module call graph
// and the //gc: function annotations. Each is built at most once per load
// no matter how many analyzers ask for it.
type sharedFacts struct {
	pkgs    []*Package
	cgOnce  sync.Once
	cg      *CallGraph
	annOnce sync.Once
	annos   []*Annotation
}

// CallGraph returns the static call graph over every loaded module
// package, built once per Analyze call and shared across analyzers.
func (p *Pass) CallGraph() *CallGraph {
	p.shared.cgOnce.Do(func() { p.shared.cg = buildCallGraph(p.shared.pkgs) })
	return p.shared.cg
}

// Annotations returns every //gc:<kind> function annotation in the loaded
// packages (collected once per Analyze call), keyed by annotated function.
func (p *Pass) Annotations(kind string) map[*types.Func]*Annotation {
	p.shared.annOnce.Do(func() { p.shared.annos = collectAnnotations(p.shared.pkgs) })
	out := make(map[*types.Func]*Annotation)
	for _, a := range p.shared.annos {
		if a.Kind == kind {
			out[a.Fn] = a
		}
	}
	return out
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	var fset = p.fset()
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) fset() *token.FileSet {
	if p.Pkg != nil {
		return p.Pkg.Fset
	}
	return p.All[0].Fset
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Suppression is one active suppression — a //lint:ignore comment or a
// //gc: function annotation — reported by `gclint -ignores` so allowlists
// stay auditable.
type Suppression struct {
	Pos      token.Position
	Kind     string // "lint:ignore", "gc:nobarrier", or "gc:nocharge"
	Analyzer string // the analyzer it suppresses
	Reason   string
	Used     bool // suppressed at least one finding this run
}

// String renders the suppression for the -ignores report.
func (s Suppression) String() string {
	state := "unused"
	if s.Used {
		state = "used"
	}
	return fmt.Sprintf("%s: [%s] %s: %s (%s)", s.Pos, s.Kind, s.Analyzer, s.Reason, state)
}

// Result is the outcome of one analysis run.
type Result struct {
	Diagnostics  []Diagnostic
	Suppressions []Suppression // every active suppression in the targets, sorted by position
}

// Annotation is one //gc:<kind> function annotation, parsed from the
// function's doc comment. Analyzers that honor a kind mark the annotation
// used; an annotation that excuses nothing is reported as stale by its
// owning analyzer.
type Annotation struct {
	Kind   string // "nobarrier" or "nocharge"
	Reason string
	Fn     *types.Func
	Decl   *ast.FuncDecl
	Pkg    *Package
	Pos    token.Pos // the annotation comment

	used bool
}

// MarkUsed records that the annotation suppressed a finding.
func (a *Annotation) MarkUsed() { a.used = true }

// annotationKinds are the recognized //gc: annotation kinds; anything
// else after //gc: is reported as malformed so typos cannot silently
// disable a check.
var annotationKinds = map[string]bool{"nobarrier": true, "nocharge": true}

// collectAnnotations parses //gc:<kind> <reason> annotations out of
// function doc comments across all loaded packages.
func collectAnnotations(pkgs []*Package) []*Annotation {
	var out []*Annotation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text, ok := strings.CutPrefix(c.Text, "//gc:")
					if !ok {
						continue
					}
					kind, reason, _ := strings.Cut(text, " ")
					fn, _ := p.Info.Defs[fd.Name].(*types.Func)
					if fn == nil {
						continue
					}
					out = append(out, &Annotation{
						Kind:   kind,
						Reason: strings.TrimSpace(reason),
						Fn:     fn,
						Decl:   fd,
						Pkg:    p,
						Pos:    c.Pos(),
					})
				}
			}
		}
	}
	return out
}

// Default returns the analyzers gclint runs: the three determinism
// analyzers from v1 plus the four whole-module GC-invariant analyzers.
func Default() []*Analyzer {
	return []*Analyzer{Maporder, Detrand, Cfgread, Barriercheck, Costcharge, Seamcheck, Detflow}
}

// FencePackages returns the package-path suffixes inside the determinism
// fence (shared by detrand and detflow), for scope-audit tests.
func FencePackages() []string {
	return append([]string(nil), detPackages...)
}

// Run loads the packages matching patterns (resolved relative to dir, a
// directory inside the module) and applies the analyzers to them. Each
// package is parsed and type-checked exactly once no matter how many
// analyzers run; module-level facts (call graph, annotations) are also
// built once and shared.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return Analyze(pkgs, analyzers), nil
}

// Analyze applies the analyzers to already-loaded packages, returning
// surviving diagnostics sorted by position plus the suppression
// inventory. //lint:ignore comments suppress matching diagnostics; a
// suppression that names no analyzer, gives no justification, or
// suppresses nothing is itself reported.
func Analyze(pkgs []*Package, analyzers []*Analyzer) *Result {
	var targets []*Package
	for _, p := range pkgs {
		if p.Target {
			targets = append(targets, p)
		}
	}
	shared := &sharedFacts{pkgs: pkgs}
	var diags []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, p := range targets {
				a.Run(&Pass{Analyzer: a, Pkg: p, All: pkgs, Targets: targets, shared: shared, diags: &diags})
			}
		case a.RunModule != nil:
			a.RunModule(&Pass{Analyzer: a, All: pkgs, Targets: targets, shared: shared, diags: &diags})
		}
	}
	diags = reportMalformedAnnotations(shared, targets, diags)
	diags, ignores := applyIgnores(targets, analyzers, diags)
	suppressions := collectSuppressions(shared, targets, ignores)
	sortDiagnostics(diags)
	return &Result{Diagnostics: diags, Suppressions: suppressions}
}

// sortDiagnostics orders diagnostics by filename, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// reportMalformedAnnotations flags //gc: annotations with an unknown kind
// or a missing justification, in target packages. (Scope rules — where a
// well-formed annotation is honored — belong to the owning analyzers.)
func reportMalformedAnnotations(shared *sharedFacts, targets []*Package, diags []Diagnostic) []Diagnostic {
	shared.annOnce.Do(func() { shared.annos = collectAnnotations(shared.pkgs) })
	inTargets := make(map[*Package]bool, len(targets))
	for _, p := range targets {
		inTargets[p] = true
	}
	for _, a := range shared.annos {
		if !inTargets[a.Pkg] {
			continue
		}
		if !annotationKinds[a.Kind] || a.Reason == "" {
			diags = append(diags, Diagnostic{
				Pos:      a.Pkg.Fset.Position(a.Pos),
				Analyzer: "lint",
				Message:  "malformed //gc: annotation: want \"//gc:nobarrier <justification>\" or \"//gc:nocharge <justification>\"",
			})
		}
	}
	return diags
}

// ignoreDirective is one well-formed //lint:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	endLine  int // last source line the suppression covers
	analyzer string
	reason   string
	used     bool
}

// applyIgnores drops diagnostics covered by a well-formed //lint:ignore
// comment on the same line or the line immediately above, reports
// malformed suppressions, and reports well-formed suppressions that
// suppressed nothing (stale allowlist entries).
func applyIgnores(targets []*Package, analyzers []*Analyzer, diags []Diagnostic) ([]Diagnostic, []*ignoreDirective) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var directives []*ignoreDirective
	for _, p := range targets {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					name, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					if !known[name] || strings.TrimSpace(reason) == "" {
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "lint",
							Message: "malformed //lint:ignore: want \"//lint:ignore <analyzer> <justification>\""})
						continue
					}
					end := p.Fset.Position(c.End())
					directives = append(directives, &ignoreDirective{
						pos: pos, endLine: end.Line + 1, analyzer: name, reason: strings.TrimSpace(reason),
					})
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.analyzer == d.Analyzer && dir.pos.Filename == d.Pos.Filename &&
				d.Pos.Line >= dir.pos.Line && d.Pos.Line <= dir.endLine {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		if !dir.used {
			kept = append(kept, Diagnostic{Pos: dir.pos, Analyzer: "lint",
				Message: fmt.Sprintf("stale //lint:ignore: no %s finding here to suppress", dir.analyzer)})
		}
	}
	return kept, directives
}

// collectSuppressions assembles the suppression inventory for the
// -ignores report: every well-formed //lint:ignore directive and every
// //gc: annotation in the target packages, sorted by position.
func collectSuppressions(shared *sharedFacts, targets []*Package, ignores []*ignoreDirective) []Suppression {
	var out []Suppression
	for _, dir := range ignores {
		out = append(out, Suppression{
			Pos: dir.pos, Kind: "lint:ignore", Analyzer: dir.analyzer,
			Reason: dir.reason, Used: dir.used,
		})
	}
	inTargets := make(map[*Package]bool, len(targets))
	for _, p := range targets {
		inTargets[p] = true
	}
	owner := map[string]string{"nobarrier": "barriercheck", "nocharge": "costcharge"}
	for _, a := range shared.annos {
		if !inTargets[a.Pkg] || !annotationKinds[a.Kind] || a.Reason == "" {
			continue
		}
		out = append(out, Suppression{
			Pos: a.Pkg.Fset.Position(a.Pos), Kind: "gc:" + a.Kind, Analyzer: owner[a.Kind],
			Reason: a.Reason, Used: a.used,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
