package core

import (
	"testing"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// TestSemispaceEmergencyGrowth drives the budget-overrun edge of
// allocSlow end to end: a live set above the semispace's budget share
// leaves the post-collection space limping with minimal headroom, so an
// allocation larger than that headroom must take the emergency-growth
// path — recorded in GCStats.EmergencyGrows — and still succeed with the
// heap intact.
func TestSemispaceEmergencyGrowth(t *testing.T) {
	e := newEnv(4)
	c := newSemi(e, 1024) // share = 512 words; the list below outgrows it
	consList(t, c, e, 1, 300, 7)
	if got := c.Stats().EmergencyGrows; got != 0 {
		t.Fatalf("small allocations took the emergency path %d times; the edge test is vacuous", got)
	}
	a := c.Alloc(obj.RawArray, 100, 8, 0) // > the limping 64-word headroom
	e.stack.SetSlot(2, uint64(a))
	if got := c.Stats().EmergencyGrows; got != 1 {
		t.Fatalf("EmergencyGrows = %d, want 1", got)
	}
	checkConsList(t, c, e, 1, 300)
	o := obj.Decode(c.Heap(), mem.Addr(e.stack.Slot(2)))
	if o.Kind != obj.RawArray || o.Len != 100 {
		t.Fatalf("emergency-grown array decoded as %v/%d", o.Kind, o.Len)
	}
	// The grown heap keeps working: collect again and re-verify.
	c.Collect(true)
	checkConsList(t, c, e, 1, 300)
}

// TestSemispaceGrowthFailureFields unit-tests the panic value the
// emergency path would raise if growth itself could not satisfy the
// request: a mem.GrowthError carrying the space id, used words, and
// requested words — the same typed shape as mem.GrowSpace's below-used
// failure, so handlers inspect fields instead of parsing messages.
func TestSemispaceGrowthFailureFields(t *testing.T) {
	h := mem.NewHeap()
	sp := h.AddSpace(64)
	if _, ok := sp.Alloc(40); !ok {
		t.Fatal("seed allocation failed")
	}
	ge := semispaceGrowthFailure(sp, 1000)
	if ge.Space != sp.ID() || ge.Used != 40 || ge.Requested != 1000 {
		t.Errorf("GrowthError{Space: %d, Used: %d, Requested: %d}, want {%d, 40, 1000}",
			ge.Space, ge.Used, ge.Requested, sp.ID())
	}
	if ge.Op == "" {
		t.Error("GrowthError.Op is empty")
	}
	var _ error = ge // the panic value implements error
}
