package core

import (
	"sort"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// PretenureDecision describes how the collector treats one allocation site
// selected for pretenuring.
type PretenureDecision struct {
	// OnlyOldRefs asserts (from dataflow analysis, §7.2) that objects
	// from this site only ever reference pretenured or tenured data, so
	// the post-allocation region scan can skip them entirely — the
	// optimization that cut Nqueen's remaining GC time by a further 80%.
	OnlyOldRefs bool
}

// PretenurePolicy maps allocation sites to pretenuring decisions. Sites
// absent from the policy allocate normally (in the nursery). Policies are
// built from heap profiles (internal/prof) using the paper's old% cutoff.
type PretenurePolicy struct {
	sites map[obj.SiteID]PretenureDecision
}

// NewPretenurePolicy builds a policy from explicit per-site decisions.
func NewPretenurePolicy(sites map[obj.SiteID]PretenureDecision) *PretenurePolicy {
	cp := make(map[obj.SiteID]PretenureDecision, len(sites))
	for k, v := range sites {
		cp[k] = v
	}
	return &PretenurePolicy{sites: cp}
}

// Lookup returns the decision for a site and whether the site is
// pretenured at all.
func (p *PretenurePolicy) Lookup(site obj.SiteID) (PretenureDecision, bool) {
	if p == nil {
		return PretenureDecision{}, false
	}
	d, ok := p.sites[site]
	return d, ok
}

// Len returns the number of pretenured sites.
func (p *PretenurePolicy) Len() int {
	if p == nil {
		return 0
	}
	return len(p.sites)
}

// Sites returns the pretenured site ids in ascending order.
func (p *PretenurePolicy) Sites() []obj.SiteID {
	if p == nil {
		return nil
	}
	ids := make([]obj.SiteID, 0, len(p.sites))
	for id := range p.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// mergePolicies returns the union of two policies (either may be nil).
// When only one is non-nil it is returned as-is; the merged copy is only
// built when both contribute, so the common static-only and advisor-only
// configurations pay nothing.
func mergePolicies(a, b *PretenurePolicy) *PretenurePolicy {
	if b.Len() == 0 {
		return a
	}
	if a.Len() == 0 {
		return b
	}
	m := make(map[obj.SiteID]PretenureDecision, a.Len()+b.Len())
	for k, v := range a.sites {
		m[k] = v
	}
	for k, v := range b.sites {
		m[k] = v
	}
	return &PretenurePolicy{sites: m}
}

// region is a contiguous range of tenured words allocated into directly
// (pretenured objects) since the last minor collection. The collector
// "remember[s] the area of the older generation that has been directly
// allocated into and scan[s] this region ... on the next collection" (§6).
type region struct {
	space mem.SpaceID
	start uint64 // first word offset
	end   uint64 // one past the last word offset
}

// regionSet accumulates pretenured-allocation regions, coalescing
// adjacent allocations so a run of pretenured objects is one region.
type regionSet struct {
	regions []region
}

// add records words [start, start+size) of space as pretenured-allocated.
func (rs *regionSet) add(space mem.SpaceID, start, size uint64) {
	if n := len(rs.regions); n > 0 {
		last := &rs.regions[n-1]
		if last.space == space && last.end == start {
			last.end += size
			return
		}
	}
	rs.regions = append(rs.regions, region{space: space, start: start, end: start + size})
}

// clear drops all regions (after the minor collection scanned them).
func (rs *regionSet) clear() { rs.regions = rs.regions[:0] }

// words returns the total words covered.
func (rs *regionSet) words() uint64 {
	var n uint64
	for _, r := range rs.regions {
		n += r.end - r.start
	}
	return n
}
