package core

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/trace"
)

// evacuator implements Cheney's algorithm over the simulated heap: objects
// in condemned spaces are copied to the to-space, a forwarding header is
// installed at the old address, and the to-space is scanned as an implicit
// breadth-first queue. Large objects (which live in the mark-sweep LOS and
// are never copied) are marked and queued for field scanning instead.
type evacuator struct {
	heap  *mem.Heap
	meter *costmodel.Meter
	stats *GCStats
	prof  Profiler // may be nil

	condemned map[mem.SpaceID]struct{}
	to        *mem.Space
	los       *LOS // may be nil

	// route, when set, picks the destination space per object (the aging
	// collector sends young survivors to the aging space and old enough
	// ones to the tenured space). nil routes everything to `to`.
	route func(o obj.Object) *mem.Space
	// postCopy, when set, runs after each evacuation (e.g. to bump the
	// copied object's age byte).
	postCopy func(dst mem.Addr, o obj.Object)
	// isYoung+sticky, when set, record old-space fields left pointing at
	// still-young objects: without immediate promotion such fields must
	// be re-examined at every minor collection until their targets
	// tenure, so the collector keeps them in a sticky remembered set.
	isYoung func(mem.SpaceID) bool
	sticky  *[]mem.Addr
	// tr receives per-site copy telemetry (nil-safe); tenured classifies
	// destination spaces as tenured for the promotion counters.
	tr      *trace.Recorder
	tenured func(mem.SpaceID) bool

	scans    []spaceScan // Cheney frontiers, one per destination space
	losQueue []mem.Addr  // marked large objects awaiting field scan
}

// spaceScan tracks the Cheney scan frontier within one destination space.
type spaceScan struct {
	space *mem.Space
	next  uint64
}

// newEvacuator prepares an evacuation of the condemned spaces into to.
// Pre-existing objects in to (allocated before this collection) are not
// rescanned; scanning starts at the current allocation frontier.
func newEvacuator(heap *mem.Heap, meter *costmodel.Meter, stats *GCStats, prof Profiler,
	condemned []mem.SpaceID, to *mem.Space, los *LOS) *evacuator {
	c := make(map[mem.SpaceID]struct{}, len(condemned))
	for _, id := range condemned {
		c[id] = struct{}{}
	}
	return &evacuator{
		heap:      heap,
		meter:     meter,
		stats:     stats,
		prof:      prof,
		condemned: c,
		to:        to,
		los:       los,
		scans:     []spaceScan{{space: to, next: to.Used() + 1}},
	}
}

// addDest registers an additional destination space for routing; objects
// copied into it are Cheney-scanned like the primary to-space.
func (e *evacuator) addDest(s *mem.Space) {
	e.scans = append(e.scans, spaceScan{space: s, next: s.Used() + 1})
}

// forward treats v as a pointer value and returns its post-collection
// value: the forwarding address for condemned objects (evacuating on first
// visit), v itself for nil and for pointers outside the condemned spaces.
// Pointers into the LOS mark their target live.
func (e *evacuator) forward(v uint64) uint64 {
	a := mem.Addr(v)
	if a.IsNil() {
		return v
	}
	id := a.Space()
	if _, ok := e.condemned[id]; ok {
		return uint64(e.evacuate(a))
	}
	if e.los != nil && e.los.Contains(id) {
		if e.los.Mark(a) {
			e.losQueue = append(e.losQueue, a)
		}
	}
	return v
}

// evacuate copies the object at a into the to-space (or returns the
// existing forwarding address).
func (e *evacuator) evacuate(a mem.Addr) mem.Addr {
	if obj.IsForwarded(e.heap, a) {
		return obj.Forwarding(e.heap, a)
	}
	o := obj.Decode(e.heap, a)
	size := o.SizeWords()
	target := e.to
	if e.route != nil {
		target = e.route(o)
	}
	dst, ok := target.Alloc(size)
	if !ok {
		panic(fmt.Sprintf("core: to-space %d overflow evacuating %d words (used %d / cap %d)",
			target.ID(), size, target.Used(), target.Capacity()))
	}
	e.heap.Copy(dst, a, size)
	obj.SetForward(e.heap, a, dst)
	e.meter.Charge(costmodel.GCCopy, costmodel.CopyObject)
	e.meter.ChargeN(costmodel.GCCopy, costmodel.CopyWord, size)
	e.stats.BytesCopied += size * mem.WordSize
	e.stats.ObjectsCopied++
	e.tr.CopySite(o.Site, size, e.tenured != nil && e.tenured(dst.Space()))
	if e.postCopy != nil {
		e.postCopy(dst, o)
	}
	if e.prof != nil {
		e.prof.OnMove(a, dst)
	}
	return dst
}

// drain runs the Cheney scan to a fixpoint: every gray object copied into
// the to-space since the evacuator was created (and every marked large
// object) has its pointer fields forwarded, possibly evacuating more
// objects.
func (e *evacuator) drain() {
	for {
		progressed := false
		for i := range e.scans {
			s := &e.scans[i]
			for s.next <= s.space.Used() {
				a := mem.MakeAddr(s.space.ID(), s.next)
				e.scanObject(a)
				s.next += obj.Decode(e.heap, a).SizeWords()
				progressed = true
			}
		}
		for len(e.losQueue) > 0 {
			a := e.losQueue[len(e.losQueue)-1]
			e.losQueue = e.losQueue[:len(e.losQueue)-1]
			e.scanObject(a)
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// scanObject forwards every pointer field of the live object at a.
func (e *evacuator) scanObject(a mem.Addr) {
	o := obj.Decode(e.heap, a)
	e.meter.ChargeN(costmodel.GCCopy, costmodel.ScanWord, o.SizeWords())
	switch o.Kind {
	case obj.RawArray:
		return
	case obj.PtrArray:
		for i := uint64(0); i < o.Len; i++ {
			e.forwardField(o.PayloadAddr(i))
		}
	case obj.Record:
		mask := o.Mask
		for i := uint64(0); mask != 0; i++ {
			if mask&1 == 1 {
				e.forwardField(o.PayloadAddr(i))
			}
			mask >>= 1
		}
	default:
		panic(fmt.Sprintf("core: scanning %v object at %v", o.Kind, a))
	}
}

// forwardField rewrites the pointer stored at field address fa.
func (e *evacuator) forwardField(fa mem.Addr) {
	v := e.heap.Load(fa)
	nv := e.forward(v)
	if nv != v {
		e.heap.Store(fa, nv)
	}
	if e.isYoung != nil && nv != 0 &&
		!e.isYoung(fa.Space()) && e.isYoung(mem.Addr(nv).Space()) {
		*e.sticky = append(*e.sticky, fa)
	}
}
