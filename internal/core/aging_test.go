package core

import (
	"fmt"
	"testing"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

func TestAgingDelaysPromotion(t *testing.T) {
	e := newEnv(2)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512, AgingMinors: 2})
	a := c.Alloc(obj.Record, 1, 1, 0)
	c.InitField(a, 0, 55)
	e.stack.SetSlot(1, uint64(a))

	where := func() string {
		id := mem.Addr(e.stack.Slot(1)).Space()
		switch {
		case id == c.nursery.ID():
			return "nursery"
		case id == c.agA || id == c.agB:
			return "aging"
		case id == c.ten.ID():
			return "tenured"
		}
		return "?"
	}
	if where() != "nursery" {
		t.Fatalf("fresh object in %s", where())
	}
	c.Collect(false)
	if where() != "aging" {
		t.Fatalf("after 1 minor: %s, want aging", where())
	}
	c.Collect(false)
	if where() != "aging" {
		t.Fatalf("after 2 minors: %s, want aging (threshold 2)", where())
	}
	c.Collect(false)
	if where() != "tenured" {
		t.Fatalf("after 3 minors: %s, want tenured", where())
	}
	if got := c.LoadField(mem.Addr(e.stack.Slot(1)), 0); got != 55 {
		t.Fatalf("contents lost: %d", got)
	}
}

func TestAgingObjectDiesInAgingSpace(t *testing.T) {
	e := newEnv(2)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512, AgingMinors: 3})
	// Objects that die after one survival never reach the tenured space:
	// the whole point of non-immediate promotion.
	tenuredBefore := c.ten.Used()
	for round := 0; round < 50; round++ {
		a := c.Alloc(obj.Record, 2, 1, 0)
		e.stack.SetSlot(1, uint64(a))
		c.Collect(false) // survives into aging
		e.stack.SetSlot(1, uint64(mem.Nil))
		c.Collect(false) // dies in aging
	}
	if c.ten.Used() != tenuredBefore {
		t.Fatalf("briefly-surviving objects polluted the tenured space: %d words",
			c.ten.Used()-tenuredBefore)
	}
}

func TestAgingStickyRememberedSet(t *testing.T) {
	// An old object pointing at an aging object must keep it alive across
	// SEVERAL minors (the target moves within the aging space each time).
	e := newEnv(2)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512, AgingMinors: 3})
	// Make an old (tenured) holder.
	holder := c.Alloc(obj.Record, 1, 1, 0b1)
	e.stack.SetSlot(1, uint64(holder))
	for i := 0; i < 5; i++ {
		c.Collect(false)
	}
	if mem.Addr(e.stack.Slot(1)).Space() != c.ten.ID() {
		t.Fatal("holder not tenured")
	}
	// Young target, reachable only through the holder.
	young := c.Alloc(obj.Record, 1, 2, 0)
	c.InitField(young, 0, 777)
	c.StoreField(mem.Addr(e.stack.Slot(1)), 0, uint64(young), true)
	// Several minors: the target ages through the aging space while only
	// the sticky set keeps the holder's field current.
	for i := 0; i < 5; i++ {
		c.Collect(false)
		holder := mem.Addr(e.stack.Slot(1))
		target := mem.Addr(c.LoadField(holder, 0))
		if target.IsNil() {
			t.Fatalf("minor %d: target lost", i)
		}
		if got := c.LoadField(target, 0); got != 777 {
			t.Fatalf("minor %d: target corrupted: %d", i, got)
		}
	}
	// By now the target must have tenured and left the sticky set.
	target := mem.Addr(c.LoadField(mem.Addr(e.stack.Slot(1)), 0))
	if c.isYoung(target.Space()) {
		t.Fatal("target never tenured")
	}
	if len(c.sticky) != 0 {
		t.Fatalf("sticky set not drained: %d entries", len(c.sticky))
	}
}

func TestAgingShadowGraph(t *testing.T) {
	configs := map[string]func(e *testEnv) Collector{
		"gen-aging1": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, AgingMinors: 1})
		},
		"gen-aging3-markers": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, AgingMinors: 3, MarkerN: 4})
		},
		"gen-aging2-pretenure": func(e *testEnv) Collector {
			pol := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{3: {}, 5: {}})
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, AgingMinors: 2, Pretenure: pol})
		},
		"gen-aging2-tight": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 16384, NurseryWords: 256, AgingMinors: 2})
		},
	}
	for name, mk := range configs {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				runShadow(t, name, mk, seed, 4000)
			})
		}
	}
}

func TestAgingDeepStackWithMarkers(t *testing.T) {
	e := newEnv(2)
	c := newGen(e, GenConfig{
		BudgetWords: 1 << 21, NurseryWords: 512, AgingMinors: 2, MarkerN: 5,
	})
	fi := ptrFrame(e)
	deepEnv(t, c, e, fi, 300)
	for i := 0; i < 12; i++ {
		for j := 0; j < 100; j++ {
			c.Alloc(obj.Record, 2, 2, 0)
		}
		c.Collect(false)
	}
	c.Collect(true)
	c.Collect(false)
	checkDeep(t, c, e, 300)
	// With aging, minor scans revisit cached roots (no outright skips),
	// but frames are still not re-decoded.
	if c.Stats().FramesReused == 0 {
		t.Fatal("marker cache unused under aging")
	}
}

// TestAgingAmplifiesPretenuringWin verifies the §7.2 prediction: "since
// objects that are tenured are copied several times before being promoted,
// pretenuring in such systems is likely to yield an even greater benefit".
func TestAgingAmplifiesPretenuringWin(t *testing.T) {
	// A site whose objects all live to the end of the run.
	run := func(aging int, policy *PretenurePolicy) uint64 {
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 512,
			AgingMinors: aging, Pretenure: policy,
		})
		consList(t, c, e, 1, 6000, 42)
		c.Collect(false)
		checkConsList(t, c, e, 1, 6000)
		return c.Stats().BytesCopied
	}
	pol := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{42: {}})
	immediateBase := run(0, nil)
	immediatePre := run(0, pol)
	agingBase := run(3, nil)
	agingPre := run(3, pol)

	savedImmediate := immediateBase - immediatePre
	savedAging := agingBase - agingPre
	if agingBase <= immediateBase {
		t.Fatalf("aging should copy MORE without pretenuring: %d vs %d",
			agingBase, immediateBase)
	}
	if savedAging <= savedImmediate {
		t.Fatalf("§7.2 prediction failed: pretenuring saved %d under aging vs %d under immediate promotion",
			savedAging, savedImmediate)
	}
	t.Logf("copied: immediate %d→%d, aging %d→%d (saving %d vs %d)",
		immediateBase, immediatePre, agingBase, agingPre, savedImmediate, savedAging)
}
