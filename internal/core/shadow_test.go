package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// The shadow-graph test drives every collector configuration with the same
// randomized mutator and checks, operation by operation and at the end,
// that the simulated heap is isomorphic to a Go-side shadow model. This is
// the strongest correctness check in the suite: any evacuation, barrier,
// marker, or pretenuring bug shows up as a divergence.

type shadowNode struct {
	kind obj.Kind
	site obj.SiteID
	raw  []uint64      // raw field values (non-pointer fields)
	ptrs []*shadowNode // pointer fields (nil allowed); indices align with mask
	mask uint64
	n    uint64
}

type shadowState struct {
	roots []*shadowNode // mirrors root frame slots 1..len(roots)
}

func runShadow(t *testing.T, name string, mkCollector func(e *testEnv) Collector, seed int64, ops int) {
	t.Helper()
	const nRoots = 8
	e := newEnv(nRoots)
	c := mkCollector(e)
	sh := &shadowState{roots: make([]*shadowNode, nRoots)}
	rng := rand.New(rand.NewSource(seed))

	slotOf := func(r int) int { return r + 1 }

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // allocate a new object referencing current roots
			r := rng.Intn(nRoots)
			kind := obj.Kind(rng.Intn(3))
			var n uint64
			var mask uint64
			switch kind {
			case obj.Record:
				n = uint64(rng.Intn(6))
				mask = uint64(rng.Intn(1 << n))
			case obj.PtrArray:
				n = uint64(rng.Intn(8))
				mask = (1 << n) - 1
			case obj.RawArray:
				n = uint64(rng.Intn(16))
			}
			site := obj.SiteID(rng.Intn(8) + 1)
			a := c.Alloc(kind, n, site, mask)
			node := &shadowNode{kind: kind, site: site, mask: mask, n: n,
				raw: make([]uint64, n), ptrs: make([]*shadowNode, n)}
			for i := uint64(0); i < n; i++ {
				if kind != obj.RawArray && (mask>>i)&1 == 1 {
					src := rng.Intn(nRoots)
					if sh.roots[src] != nil && rng.Intn(3) > 0 {
						c.InitField(a, i, e.stack.Slot(slotOf(src)))
						node.ptrs[i] = sh.roots[src]
					}
				} else {
					v := rng.Uint64()
					c.InitField(a, i, v)
					node.raw[i] = v
				}
			}
			e.stack.SetSlot(slotOf(r), uint64(a))
			sh.roots[r] = node
		case 5, 6: // mutate a pointer field of a root object
			r := rng.Intn(nRoots)
			node := sh.roots[r]
			if node == nil || node.kind == obj.RawArray || node.n == 0 {
				continue
			}
			i := uint64(rng.Intn(int(node.n)))
			if (node.mask>>i)&1 != 1 {
				continue
			}
			src := rng.Intn(nRoots)
			a := mem.Addr(e.stack.Slot(slotOf(r)))
			if sh.roots[src] == nil {
				c.StoreField(a, i, uint64(mem.Nil), true)
				node.ptrs[i] = nil
			} else {
				c.StoreField(a, i, e.stack.Slot(slotOf(src)), true)
				node.ptrs[i] = sh.roots[src]
			}
		case 7: // mutate a raw field
			r := rng.Intn(nRoots)
			node := sh.roots[r]
			if node == nil || node.n == 0 {
				continue
			}
			i := uint64(rng.Intn(int(node.n)))
			if node.kind != obj.RawArray && (node.mask>>i)&1 == 1 {
				continue
			}
			v := rng.Uint64()
			a := mem.Addr(e.stack.Slot(slotOf(r)))
			c.StoreField(a, i, v, false)
			node.raw[i] = v
		case 8: // drop a root
			r := rng.Intn(nRoots)
			e.stack.SetSlot(slotOf(r), uint64(mem.Nil))
			sh.roots[r] = nil
		case 9: // force a collection
			c.Collect(rng.Intn(4) == 0)
		}
		if op%251 == 0 {
			checkShadow(t, name, c, e, sh, nRoots)
		}
	}
	c.Collect(true)
	checkShadow(t, name, c, e, sh, nRoots)
}

// checkShadow verifies the simulated graph reachable from the root slots is
// isomorphic to the shadow graph, with identical kinds, sizes, sites, raw
// values, and sharing structure.
func checkShadow(t *testing.T, name string, c Collector, e *testEnv, sh *shadowState, nRoots int) {
	t.Helper()
	seen := map[mem.Addr]*shadowNode{}
	var walk func(a mem.Addr, node *shadowNode, path string)
	walk = func(a mem.Addr, node *shadowNode, path string) {
		if node == nil {
			if !a.IsNil() {
				t.Fatalf("%s: %s: shadow nil but heap has %v", name, path, a)
			}
			return
		}
		if a.IsNil() {
			t.Fatalf("%s: %s: heap nil but shadow has node", name, path)
		}
		if prev, ok := seen[a]; ok {
			if prev != node {
				t.Fatalf("%s: %s: sharing mismatch at %v", name, path, a)
			}
			return
		}
		seen[a] = node
		o := obj.Decode(c.Heap(), a)
		if o.Kind != node.kind || o.Len != node.n || o.Site != node.site {
			t.Fatalf("%s: %s: object %v is %v/%d/site%d, want %v/%d/site%d",
				name, path, a, o.Kind, o.Len, o.Site, node.kind, node.n, node.site)
		}
		if o.Kind == obj.Record && o.Mask != node.mask {
			t.Fatalf("%s: %s: mask %#x want %#x", name, path, o.Mask, node.mask)
		}
		for i := uint64(0); i < o.Len; i++ {
			v := c.Heap().Load(o.PayloadAddr(i))
			if o.IsPtrField(i) {
				walk(mem.Addr(v), node.ptrs[i], fmt.Sprintf("%s.%d", path, i))
			} else if v != node.raw[i] {
				t.Fatalf("%s: %s.%d: raw %#x want %#x", name, path, i, v, node.raw[i])
			}
		}
	}
	for r := 0; r < nRoots; r++ {
		walk(mem.Addr(e.stack.Slot(r+1)), sh.roots[r], fmt.Sprintf("root%d", r))
	}
}

func shadowConfigs() map[string]func(e *testEnv) Collector {
	pol := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{3: {}, 5: {}})
	return map[string]func(e *testEnv) Collector{
		"semispace": func(e *testEnv) Collector {
			return NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
				BudgetWords: 1 << 20, InitialWords: 512})
		},
		"semispace-tight": func(e *testEnv) Collector {
			return NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
				BudgetWords: 8192, InitialWords: 256})
		},
		"gen": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512})
		},
		"gen-tight": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 12288, NurseryWords: 256})
		},
		"gen-markers": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, MarkerN: 3})
		},
		"gen-pretenure": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, Pretenure: pol})
		},
		"gen-full": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, MarkerN: 4, Pretenure: pol})
		},
		"gen-cards": func(e *testEnv) Collector {
			return NewGenerational(e.stack, e.meter, nil, GenConfig{
				BudgetWords: 1 << 20, NurseryWords: 512, UseCardTable: true})
		},
	}
}

func TestShadowGraphAllConfigs(t *testing.T) {
	for name, mk := range shadowConfigs() {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				runShadow(t, name, mk, seed, 4000)
			})
		}
	}
}

// TestShadowGraphDeepStack interleaves graph operations with deep call
// chains so that collections occur at a variety of stack depths, with the
// frames themselves holding live references.
func TestShadowGraphDeepStack(t *testing.T) {
	for name, mk := range shadowConfigs() {
		t.Run(name, func(t *testing.T) {
			e := newEnv(4)
			c := mk(e)
			fi := ptrFrame(e)
			rng := rand.New(rand.NewSource(99))
			// Build a persistent list in root slot 1 while recursing.
			e.stack.SetSlot(1, uint64(mem.Nil))
			total := 0
			var recurse func(depth int)
			recurse = func(depth int) {
				e.stack.Call(fi)
				defer e.stack.Return()
				p := c.Alloc(obj.Record, 2, 1, 0b10)
				c.InitField(p, 0, uint64(depth))
				e.stack.SetSlot(1, uint64(p))
				for i := 0; i < 3; i++ {
					c.Alloc(obj.Record, 2, 2, 0) // garbage
				}
				if depth < 120 && rng.Intn(10) > 0 {
					recurse(depth + 1)
				}
				// After deeper calls (and possible GCs), our slot must
				// still point at our record.
				q := mem.Addr(e.stack.Slot(1))
				if got := c.LoadField(q, 0); got != uint64(depth) {
					t.Fatalf("depth %d: frame pointee = %d", depth, got)
				}
				total++
			}
			for round := 0; round < 30; round++ {
				recurse(0)
			}
			if total == 0 {
				t.Fatal("no recursion happened")
			}
		})
	}
}
