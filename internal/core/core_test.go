package core

import (
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// testEnv bundles a stack with a root frame exposing nRoots pointer slots
// (slots 1..nRoots) for tests to park object references in.
type testEnv struct {
	table *rt.TraceTable
	meter *costmodel.Meter
	stack *rt.Stack
	root  *rt.FrameInfo
}

func newEnv(nRoots int) *testEnv {
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	slots := make([]rt.SlotTrace, nRoots+1)
	for i := 1; i <= nRoots; i++ {
		slots[i] = rt.PTR()
	}
	root := table.Register("testroot", slots, nil)
	stack.Call(root)
	return &testEnv{table: table, meter: meter, stack: stack, root: root}
}

// dummyFrame registers an all-non-pointer frame layout of the given size.
func (e *testEnv) dummyFrame(size int) *rt.FrameInfo {
	return e.table.Register("dummy", make([]rt.SlotTrace, size), nil)
}

// consList builds a list of n cons cells (record: [value, next]) in c,
// keeping the head in root slot `slot` at all times so collections mid-build
// are safe. Values are n-1 down to 0 from head to tail.
func consList(t testing.TB, c Collector, e *testEnv, slot int, n int, site obj.SiteID) {
	t.Helper()
	e.stack.SetSlot(slot, uint64(mem.Nil))
	for i := 0; i < n; i++ {
		cell := c.Alloc(obj.Record, 2, site, 0b10) // field 0 value, field 1 next-ptr
		c.InitField(cell, 0, uint64(i))
		c.InitField(cell, 1, e.stack.Slot(slot))
		e.stack.SetSlot(slot, uint64(cell))
	}
}

// checkConsList verifies the list rooted at slot contains n cells with
// values n-1..0.
func checkConsList(t testing.TB, c Collector, e *testEnv, slot int, n int) {
	t.Helper()
	a := mem.Addr(e.stack.Slot(slot))
	for i := n - 1; i >= 0; i-- {
		if a.IsNil() {
			t.Fatalf("list ended early at value %d", i)
		}
		o := obj.Decode(c.Heap(), a)
		if o.Kind != obj.Record || o.Len != 2 {
			t.Fatalf("cell %d decoded as %v/%d", i, o.Kind, o.Len)
		}
		if got := c.LoadField(a, 0); got != uint64(i) {
			t.Fatalf("cell value = %d, want %d", got, i)
		}
		a = mem.Addr(c.LoadField(a, 1))
	}
	if !a.IsNil() {
		t.Fatal("list longer than expected")
	}
}

func newSemi(e *testEnv, budget uint64) *Semispace {
	return NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
		BudgetWords: budget, InitialWords: 256,
	})
}

func newGen(e *testEnv, cfg GenConfig) *Generational {
	return NewGenerational(e.stack, e.meter, nil, cfg)
}

func TestSemispaceListSurvivesCollections(t *testing.T) {
	e := newEnv(4)
	c := newSemi(e, 1<<20)
	consList(t, c, e, 1, 500, 7)
	before := c.Stats().NumGC
	c.Collect(true)
	c.Collect(true)
	if c.Stats().NumGC != before+2 {
		t.Fatal("forced collections not counted")
	}
	checkConsList(t, c, e, 1, 500)
}

func TestSemispaceReclaimsGarbage(t *testing.T) {
	e := newEnv(2)
	c := newSemi(e, 1<<20)
	consList(t, c, e, 1, 1000, 1)
	e.stack.SetSlot(1, uint64(mem.Nil)) // drop the list
	c.Collect(true)
	live := c.heap.Space(c.cur.ID()).Used()
	if live != 0 {
		t.Fatalf("garbage not reclaimed: %d live words", live)
	}
}

func TestSemispaceGCTriggeredByExhaustion(t *testing.T) {
	e := newEnv(2)
	c := NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
		BudgetWords: 4096, InitialWords: 512,
	})
	// Allocate garbage far beyond the budget; collections must keep it fit.
	for i := 0; i < 2000; i++ {
		c.Alloc(obj.Record, 2, 1, 0)
	}
	if c.Stats().NumGC == 0 {
		t.Fatal("no collection despite exhaustion")
	}
	if c.Stats().BytesAllocated != 2000*4*mem.WordSize {
		t.Fatalf("BytesAllocated = %d", c.Stats().BytesAllocated)
	}
}

func TestSemispaceSharedStructurePreserved(t *testing.T) {
	e := newEnv(4)
	c := newSemi(e, 1<<20)
	// Two roots pointing at the same record; after GC they must still
	// point at one object (no duplication).
	a := c.Alloc(obj.Record, 1, 1, 0)
	c.InitField(a, 0, 99)
	e.stack.SetSlot(1, uint64(a))
	e.stack.SetSlot(2, uint64(a))
	c.Collect(true)
	v1, v2 := e.stack.Slot(1), e.stack.Slot(2)
	if v1 != v2 {
		t.Fatal("shared object was duplicated during copy")
	}
	if c.LoadField(mem.Addr(v1), 0) != 99 {
		t.Fatal("contents lost")
	}
}

func TestSemispaceCycleSurvives(t *testing.T) {
	e := newEnv(2)
	c := newSemi(e, 1<<20)
	a := c.Alloc(obj.Record, 1, 1, 0b1)
	e.stack.SetSlot(1, uint64(a))
	b := c.Alloc(obj.Record, 1, 1, 0b1)
	c.InitField(b, 0, e.stack.Slot(1))
	a = mem.Addr(e.stack.Slot(1))
	c.StoreField(a, 0, uint64(b), true)
	c.Collect(true)
	a = mem.Addr(e.stack.Slot(1))
	bAddr := mem.Addr(c.LoadField(a, 0))
	if mem.Addr(c.LoadField(bAddr, 0)) != a {
		t.Fatal("cycle broken by collection")
	}
}

func TestGenerationalPromotionAndMinorGC(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512})
	consList(t, c, e, 1, 2000, 3) // far exceeds the nursery: many minor GCs
	if c.Stats().NumGC == 0 {
		t.Fatal("no minor collections")
	}
	checkConsList(t, c, e, 1, 2000)
	// After one more minor collection the whole list is out of the nursery.
	c.Collect(false)
	checkConsList(t, c, e, 1, 2000)
	head := mem.Addr(e.stack.Slot(1))
	if head.Space() == c.nursery.ID() {
		t.Fatal("live list head still in nursery after collections")
	}
}

func TestGenerationalWriteBarrierOldToYoung(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512})
	// Build an old object (survives a minor GC)...
	oldObj := c.Alloc(obj.Record, 1, 1, 0b1)
	e.stack.SetSlot(1, uint64(oldObj))
	c.Collect(false)
	oldObj = mem.Addr(e.stack.Slot(1))
	if oldObj.Space() == c.nursery.ID() {
		t.Fatal("object not promoted")
	}
	// ...then point it at a young object and drop all stack references.
	young := c.Alloc(obj.Record, 1, 2, 0)
	c.InitField(young, 0, 4242)
	c.StoreField(oldObj, 0, uint64(young), true)
	c.Collect(false)
	// The young object is reachable only through the old one.
	oldObj = mem.Addr(e.stack.Slot(1))
	got := mem.Addr(c.LoadField(oldObj, 0))
	if got.IsNil() || got.Space() == c.nursery.ID() {
		t.Fatalf("young target not promoted via remembered set: %v", got)
	}
	if c.LoadField(got, 0) != 4242 {
		t.Fatal("young target corrupted")
	}
}

func TestGenerationalWriteBarrierWithoutBarrierWouldDangle(t *testing.T) {
	// Meta-test of the test above: verify the SSB is what saves the young
	// object (the collector processed at least one SSB entry).
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512})
	oldObj := c.Alloc(obj.Record, 1, 1, 0b1)
	e.stack.SetSlot(1, uint64(oldObj))
	c.Collect(false)
	oldObj = mem.Addr(e.stack.Slot(1))
	young := c.Alloc(obj.Record, 1, 2, 0)
	c.StoreField(oldObj, 0, uint64(young), true)
	c.Collect(false)
	if c.Stats().SSBProcessed == 0 {
		t.Fatal("SSB never processed")
	}
}

func TestGenerationalMajorGCReclaimsTenuredGarbage(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 64 * 1024, NurseryWords: 512})
	// Repeatedly build lists that survive one minor GC then die: tenured
	// garbage accumulates until a major collection reclaims it.
	for round := 0; round < 200; round++ {
		consList(t, c, e, 1, 100, 5)
		c.Collect(false) // promote
		e.stack.SetSlot(1, uint64(mem.Nil))
	}
	if c.Stats().NumMajor == 0 {
		t.Fatal("no major collection despite tenured garbage pressure")
	}
	// Everything is dead; after one more major the tenured space is empty.
	c.Collect(true)
	if used := c.ten.Used(); used != 0 {
		t.Fatalf("tenured garbage survives: %d words", used)
	}
}

func TestGenerationalMajorPreservesDeepStructure(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512})
	consList(t, c, e, 1, 3000, 9)
	c.Collect(false)
	c.Collect(true) // major: copies the promoted list between tenured spaces
	c.Collect(true)
	checkConsList(t, c, e, 1, 3000)
}

func TestLargeObjectsBypassNursery(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512, LargeObjectWords: 64})
	big := c.Alloc(obj.RawArray, 128, 1, 0)
	if !c.los.Contains(big.Space()) {
		t.Fatal("large array not in LOS")
	}
	c.InitField(big, 100, 0xabc)
	e.stack.SetSlot(1, uint64(big))
	c.Collect(false)
	c.Collect(true)
	// LOS objects never move.
	if mem.Addr(e.stack.Slot(1)) != big {
		t.Fatal("large object moved")
	}
	if c.LoadField(big, 100) != 0xabc {
		t.Fatal("large object corrupted")
	}
}

func TestLOSSweepFreesDeadLargeObjects(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512, LargeObjectWords: 64})
	dead := c.Alloc(obj.RawArray, 128, 1, 0)
	live := c.Alloc(obj.RawArray, 128, 1, 0)
	e.stack.SetSlot(1, uint64(live))
	_ = dead
	c.Collect(true)
	if c.los.Count() != 1 {
		t.Fatalf("LOS count = %d, want 1", c.los.Count())
	}
	if c.Stats().LOSSwept != 1 {
		t.Fatalf("LOSSwept = %d", c.Stats().LOSSwept)
	}
	// Access to the freed arena must fault.
	defer func() {
		if recover() == nil {
			t.Fatal("dangling LOS access did not fault")
		}
	}()
	c.Heap().Load(dead)
}

func TestFreshLOSPointerArrayKeepsYoungTargets(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512, LargeObjectWords: 64})
	small := c.Alloc(obj.Record, 1, 2, 0)
	c.InitField(small, 0, 777)
	e.stack.SetSlot(1, uint64(small))
	big := c.Alloc(obj.PtrArray, 100, 1, 0)
	c.InitField(big, 3, e.stack.Slot(1)) // init store: no barrier
	e.stack.SetSlot(2, uint64(big))
	e.stack.SetSlot(1, uint64(mem.Nil)) // young object now only reachable via the LOS array
	c.Collect(false)
	big = mem.Addr(e.stack.Slot(2))
	target := mem.Addr(c.LoadField(big, 3))
	if target.IsNil() || target.Space() == c.nursery.ID() {
		t.Fatal("young object referenced by fresh LOS array was lost")
	}
	if c.LoadField(target, 0) != 777 {
		t.Fatal("target corrupted")
	}
}

func TestCalleeSaveSlotResolution(t *testing.T) {
	// Frame g saves caller register 3 into slot 1. When the caller's
	// register 3 is a pointer, the saved slot is a root; when not, not.
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	fRegs := make([]rt.SlotTrace, rt.NumRegs)
	fRegs[3] = rt.PTR() // f keeps a pointer in r3 at call points
	f := table.Register("f", []rt.SlotTrace{rt.NP(), rt.PTR()}, fRegs)
	gRegs := make([]rt.SlotTrace, rt.NumRegs)
	gRegs[3] = rt.SAVE(3) // g preserves r3
	g := table.Register("g", []rt.SlotTrace{rt.NP(), rt.SAVE(3)}, gRegs)

	stack.Call(f)
	var stats GCStats
	c := NewSemispace(stack, meter, nil, SemispaceConfig{BudgetWords: 1 << 20, InitialWords: 256})
	_ = stats

	p := c.Alloc(obj.Record, 1, 1, 0)
	c.InitField(p, 0, 31337)
	stack.SetSlot(1, uint64(p))
	stack.SetReg(3, uint64(p))
	stack.Call(g)
	stack.SetSlot(1, uint64(p)) // "spill" r3 into g's callee-save slot

	c.Collect(true)
	// Both the saved slot and the register must have been forwarded
	// to the same new address.
	saved := mem.Addr(stack.Slot(1))
	reg := mem.Addr(stack.Reg(3))
	if saved != reg {
		t.Fatalf("callee-save slot %v and register %v diverged", saved, reg)
	}
	if c.LoadField(saved, 0) != 31337 {
		t.Fatal("callee-saved pointer target corrupted")
	}
}

func TestComputeTraceResolution(t *testing.T) {
	// Slot 2's pointer-ness is computed from the runtime type in slot 1.
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	f := table.Register("poly", []rt.SlotTrace{rt.NP(), rt.NP(), rt.COMPSLOT(1)}, nil)
	stack.Call(f)
	c := NewSemispace(stack, meter, nil, SemispaceConfig{BudgetWords: 1 << 20, InitialWords: 256})

	p := c.Alloc(obj.Record, 1, 1, 0)
	c.InitField(p, 0, 55)
	stack.SetSlot(1, rt.TypePointer)
	stack.SetSlot(2, uint64(p))
	c.Collect(true)
	if got := c.LoadField(mem.Addr(stack.Slot(2)), 0); got != 55 {
		t.Fatalf("COMPUTE-traced root not forwarded: field = %d", got)
	}

	// Now flip the type to non-pointer: the slot must be left alone even
	// though it holds a stale-looking value.
	stack.SetSlot(1, rt.TypeNonPointer)
	stack.SetSlot(2, 0xdead0001)
	c.Collect(true)
	if stack.Slot(2) != 0xdead0001 {
		t.Fatal("non-pointer COMPUTE slot was modified")
	}
}

func TestRegisterRootsForwarded(t *testing.T) {
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	regs := make([]rt.SlotTrace, rt.NumRegs)
	regs[0] = rt.PTR()
	f := table.Register("f", []rt.SlotTrace{rt.NP(), rt.PTR()}, regs)
	stack.Call(f)
	c := NewSemispace(stack, meter, nil, SemispaceConfig{BudgetWords: 1 << 20, InitialWords: 256})
	p := c.Alloc(obj.Record, 1, 1, 0)
	c.InitField(p, 0, 11)
	stack.SetSlot(1, uint64(p))
	stack.SetReg(0, uint64(p))
	c.Collect(true)
	if stack.Reg(0) != stack.Slot(1) {
		t.Fatal("register root not forwarded in step with slot root")
	}
}

func TestPauseAccounting(t *testing.T) {
	e := newEnv(2)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 512})
	consList(t, c, e, 1, 3000, 1)
	c.Collect(true)
	s := c.Stats()
	if s.MaxPauseCycles == 0 || s.SumPauseCycles == 0 {
		t.Fatal("no pauses recorded")
	}
	if s.MaxPauseCycles > s.SumPauseCycles {
		t.Fatal("max pause exceeds sum")
	}
	if avg := s.AvgPauseCycles(); avg <= 0 || avg > float64(s.MaxPauseCycles) {
		t.Fatalf("avg pause %g out of range", avg)
	}
	// A minor that escalates to major counts as ONE pause event.
	if s.SumPauseCycles > uint64(e.meter.GC()) {
		t.Fatal("pause sum exceeds total GC time (double counting)")
	}
}

func TestMarkersReducePauseTimes(t *testing.T) {
	run := func(markerN int) uint64 {
		e := newEnv(2)
		c := newGen(e, GenConfig{BudgetWords: 1 << 22, NurseryWords: 512, MarkerN: markerN})
		fi := ptrFrame(e)
		deepEnv(t, c, e, fi, 1500)
		for i := 0; i < 20; i++ {
			for j := 0; j < 200; j++ {
				c.Alloc(obj.Record, 2, 2, 0)
			}
			c.Collect(false)
		}
		checkDeep(t, c, e, 1500)
		// Ignore the first scan (cold cache): compare steady-state via avg.
		return uint64(c.Stats().AvgPauseCycles())
	}
	base := run(0)
	marked := run(25)
	if marked*2 > base {
		t.Fatalf("markers did not halve steady-state pauses: %d vs %d", marked, base)
	}
}
