package core

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// This file is the wall-clock kernel sweep behind `gcbench -bench`: a
// collector-stress mutator (no simulated client computation beyond what
// feeds the heap) run across every collector configuration with a
// distinct kernel path. Full paper workloads spend most of their wall
// clock simulating the mutator, so kernel changes barely move them; this
// sweep keeps the collectors hot — bursts of live allocation, write
// barriers into old arrays, LOS traffic, and frequent minor and major
// collections — so the ref/opt ratio measures the copy/scan kernels
// themselves. It is deliberately the same shape as the kernel-equivalence
// test workload, scaled up to a measurable duration.

// KernelSweepFacts are the deterministic outputs of one sweep: a checksum
// folding every surviving list cell plus the aggregate collector
// statistics and simulated collector cycles across all configurations.
// They are a pure function of the sweep definition, identical under the
// optimized and reference kernels, and machine-independent — the bench
// baseline compares them exactly.
type KernelSweepFacts struct {
	Configs     int
	Check       uint64
	NumGC       uint64
	BytesCopied uint64
	GCCycles    uint64
}

// kernelSweepCollectors is the configuration matrix: every collector
// variant with a distinct kernel path.
func kernelSweepCollectors() []func(stack *rt.Stack, meter *costmodel.Meter) Collector {
	gen := func(cfg GenConfig) func(stack *rt.Stack, meter *costmodel.Meter) Collector {
		return func(stack *rt.Stack, meter *costmodel.Meter) Collector {
			return NewGenerational(stack, meter, nil, cfg)
		}
	}
	pol := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{
		12: {},
		50: {OnlyOldRefs: true},
	})
	budget, nursery := uint64(1<<20), uint64(16*1024)
	return []func(stack *rt.Stack, meter *costmodel.Meter) Collector{
		func(stack *rt.Stack, meter *costmodel.Meter) Collector {
			return NewSemispace(stack, meter, nil, SemispaceConfig{
				BudgetWords: budget, InitialWords: 64 * 1024,
			})
		},
		gen(GenConfig{BudgetWords: budget, NurseryWords: nursery}),
		gen(GenConfig{BudgetWords: budget, NurseryWords: nursery, UseCardTable: true}),
		gen(GenConfig{BudgetWords: budget, NurseryWords: nursery, MarkerN: 5}),
		gen(GenConfig{BudgetWords: budget, NurseryWords: nursery, AgingMinors: 2}),
		gen(GenConfig{
			BudgetWords: budget, NurseryWords: nursery, MarkerN: 5,
			Pretenure: pol, ScanElision: true,
		}),
	}
}

// fnv1a folds v into the running FNV-1a hash h.
func fnv1a(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// RunKernelSweep drives the kernel-stress mutator through every sweep
// configuration and returns the folded deterministic facts. Respects the
// active kernel mode (SetReferenceKernels).
func RunKernelSweep() KernelSweepFacts {
	const offsetBasis = 14695981039346656037
	facts := KernelSweepFacts{Check: offsetBasis}
	for _, mk := range kernelSweepCollectors() {
		facts.Configs++
		table := rt.NewTraceTable()
		meter := costmodel.NewMeter()
		stack := rt.NewStack(table, meter)
		slots := []rt.SlotTrace{{}, rt.PTR(), rt.PTR(), rt.PTR()}
		stack.Call(table.Register("kernelbench", slots, nil))
		c := mk(stack, meter)
		runKernelStress(c, stack)

		// Fold the surviving list: cell count and every stored value.
		n := uint64(0)
		for a := mem.Addr(stack.Slot(1)); !a.IsNil(); a = mem.Addr(c.LoadField(a, 1)) {
			n++
			facts.Check = fnv1a(facts.Check, c.LoadField(a, 0))
		}
		facts.Check = fnv1a(facts.Check, n)
		st := c.Stats()
		facts.NumGC += st.NumGC
		facts.BytesCopied += st.BytesCopied
		facts.GCCycles += uint64(meter.Snapshot().GC())
		facts.Check = fnv1a(facts.Check, st.ObjectsCopied)
		facts.Check = fnv1a(facts.Check, st.SSBProcessed)
	}
	return facts
}

// runKernelStress is the mutator program: long-lived cons bursts, write
// barriers into an old pointer array, LOS raw/pointer arrays, nursery
// churn, and repeated minor and major collections each round. The live
// list is built once per round but re-copied by every subsequent major
// (and, for the semispace collector, every collection), so the wall
// clock concentrates in the copy/scan kernels rather than in building
// the heap.
func runKernelStress(c Collector, stack *rt.Stack) {
	const rounds = 8
	stack.SetSlot(1, uint64(mem.Nil))
	for round := 0; round < rounds; round++ {
		for i := 0; i < 1000; i++ {
			cell := c.Alloc(obj.Record, 2, obj.SiteID(10+round%6), 0b10)
			c.InitField(cell, 0, uint64(round*10000+i))
			c.InitField(cell, 1, stack.Slot(1))
			stack.SetSlot(1, uint64(cell))
		}
		// Pointer-free record from the OnlyOldRefs site (scan elision).
		c.InitField(c.Alloc(obj.Record, 4, 50, 0), 0, uint64(round))

		// An old pointer array reachable across collections.
		arr := c.Alloc(obj.PtrArray, 64, 20, 0)
		stack.SetSlot(2, uint64(arr))
		c.Collect(false)

		// Large raw and pointer arrays through the mark-sweep LOS; the
		// pointer array references the list so LOS scanning has work. The
		// previous round's arrays die.
		big := c.Alloc(obj.RawArray, 4096, 30, 0)
		c.InitField(big, 0, 42)
		lp := c.Alloc(obj.PtrArray, 2000, 31, 0)
		c.StoreField(lp, 0, stack.Slot(1), true)
		stack.SetSlot(3, uint64(lp))

		// Barrier-mutate-and-collect inner rounds: each stores young
		// pointers into the old array (SSB or card traffic), churns the
		// nursery a little, and collects — three minors re-scanning the
		// remembered set, then a major re-copying the whole live list.
		for k := 0; k < 4; k++ {
			for i := 0; i < 64; i++ {
				young := c.Alloc(obj.Record, 2, 21, 0)
				c.InitField(young, 0, uint64(i))
				c.StoreField(mem.Addr(stack.Slot(2)), uint64(i), uint64(young), true)
			}
			for i := 0; i < 200; i++ {
				c.Alloc(obj.Record, 3, 40, 0b110)
			}
			c.Collect(k == 3)
		}
	}
	// Self-check: the full list must have survived every collection.
	n, head := 0, mem.Addr(stack.Slot(1))
	for a := head; !a.IsNil(); a = mem.Addr(c.LoadField(a, 1)) {
		n++
	}
	if n != rounds*1000 {
		panic(fmt.Sprintf("core: kernel sweep list has %d cells, want %d", n, rounds*1000))
	}
}
