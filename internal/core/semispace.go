package core

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
	"tilgc/internal/trace"
)

// SemispaceConfig parameterizes the baseline semispace collector.
type SemispaceConfig struct {
	// BudgetWords is the total memory the collector may use (the paper's
	// k·Min, with Min = twice the maximum live data). Both semispaces
	// plus the large-object space must fit within it.
	BudgetWords uint64
	// TargetLiveness is the resize target r; after a collection with
	// observed liveness r' the semispace is resized by r'/r, clamped to
	// the budget. The paper uses r = 0.10.
	TargetLiveness float64
	// LargeObjectWords is the LOS threshold: array allocations of at
	// least this many payload words go to the mark-sweep space.
	LargeObjectWords uint64
	// MarkerN enables generational stack collection with a marker every
	// n frames (§7.1 notes the technique applies to non-generational
	// collectors too). Zero disables it — the paper's baseline.
	MarkerN int
	// InitialWords sizes the first semispace; zero picks a small default.
	InitialWords uint64
	// Workers > 1 enables the deterministic parallel copying phases (see
	// GenConfig.Workers): identical serial work order, cycles sharded
	// over W simulated workers. Zero or 1 is the serial collector.
	Workers int
	// Trace, when non-nil, receives phase spans and per-site telemetry.
	// Tracing charges nothing to the meter.
	Trace *trace.Recorder
}

func (c *SemispaceConfig) setDefaults() {
	if c.TargetLiveness == 0 {
		c.TargetLiveness = 0.10
	}
	if c.LargeObjectWords == 0 {
		c.LargeObjectWords = 1024 // 8KB
	}
	if c.InitialWords == 0 {
		c.InitialWords = 16 * 1024
	}
	if c.BudgetWords == 0 {
		c.BudgetWords = 64 << 20 // effectively unconstrained
	}
}

// Semispace is the Fenichel-Yochelson two-space copying collector using
// Cheney's scan, with the paper's liveness-ratio resize policy (§2.1).
type Semispace struct {
	cfg   SemispaceConfig
	heap  *mem.Heap
	stack *rt.Stack
	meter *costmodel.Meter
	prof  Profiler
	tr    *trace.Recorder

	scanner *StackScanner
	los     *LOS
	idA     mem.SpaceID
	idB     mem.SpaceID
	cur     *mem.Space // allocation space
	ev      evacuator  // pooled across collections (see evacuator.begin)
	// tally shards parallel-phase cycles over simulated workers (nil for
	// W <= 1; see costmodel.WorkerTally).
	tally *costmodel.WorkerTally
	// threads, when non-nil, is the simulated mutator thread set: every
	// live thread's stack is a root source with its own scanner. The
	// semispace collector has no write barrier, so threads carry no
	// barrier state here. Nil is the single-thread collector.
	threads   *rt.ThreadSet
	tscanners []*StackScanner // per-thread scanners, indexed by thread id
	stats     GCStats
}

// NewSemispace creates a semispace collector over its own fresh heap.
//
//gc:nocharge construction builds the heap before the simulated clock starts; the paper's cost model charges mutator and GC work, not arena setup
func NewSemispace(stack *rt.Stack, meter *costmodel.Meter, prof Profiler, cfg SemispaceConfig) *Semispace {
	cfg.setDefaults()
	heap := mem.NewHeap()
	c := &Semispace{cfg: cfg, heap: heap, stack: stack, meter: meter, prof: prof, tr: cfg.Trace}
	c.scanner = NewStackScanner(stack, meter, &c.stats, cfg.MarkerN)
	c.los = NewLOS(heap, meter, &c.stats)
	if cfg.InitialWords > cfg.BudgetWords/2 {
		cfg.InitialWords = max(cfg.BudgetWords/2, 512)
		c.cfg = cfg
	}
	a := heap.AddSpace(cfg.InitialWords)
	b := heap.AddSpace(0)
	c.idA, c.idB = a.ID(), b.ID()
	c.cur = a
	if cfg.Workers > 1 {
		c.tally = costmodel.NewWorkerTally(meter, cfg.Workers)
		c.scanner.SetTally(c.tally)
	}
	return c
}

// AttachThreads connects the simulated thread set: root scanning covers
// every live thread's stack. Must be called before the first collection;
// thread 0 must wrap the collector's primary stack. No barrier state is
// attached — the semispace collector has no write barrier.
func (c *Semispace) AttachThreads(ts *rt.ThreadSet) {
	if c.stats.NumGC > 0 {
		panic("core: AttachThreads after a collection")
	}
	if ts.Thread(0).Stack() != c.stack {
		panic("core: thread 0 does not own the collector's stack")
	}
	c.threads = ts
}

// threadScanner returns (creating on first use) the stack scanner for one
// thread; thread 0 reuses the primary scanner.
func (c *Semispace) threadScanner(t *rt.Thread) *StackScanner {
	id := t.ID()
	for len(c.tscanners) <= id {
		c.tscanners = append(c.tscanners, nil)
	}
	if c.tscanners[id] == nil {
		if t.Stack() == c.stack {
			c.tscanners[id] = c.scanner
		} else {
			sc := NewStackScanner(t.Stack(), c.meter, &c.stats, c.cfg.MarkerN)
			sc.SetTally(c.tally)
			c.tscanners[id] = sc
		}
	}
	return c.tscanners[id]
}

// noteCollection runs the per-collection scanner bookkeeping over every
// live thread.
func (c *Semispace) noteCollection() {
	if c.threads == nil {
		c.scanner.NoteCollection()
		return
	}
	for _, t := range c.threads.Threads() {
		if t.Dead() {
			continue
		}
		c.threadScanner(t).NoteCollection()
	}
}

// scanRoots scans every live thread's stack in thread-id order (just the
// primary stack when no thread set is attached).
func (c *Semispace) scanRoots(ev *evacuator) {
	if c.threads == nil {
		c.scanner.Scan(false, func(loc RootLoc) { c.forwardRootOn(ev, c.stack, loc) })
		return
	}
	for _, t := range c.threads.Threads() {
		if t.Dead() {
			continue
		}
		st := t.Stack()
		c.threadScanner(t).Scan(false, func(loc RootLoc) { c.forwardRootOn(ev, st, loc) })
	}
}

// Name implements Collector.
func (c *Semispace) Name() string {
	n := "semispace"
	if c.cfg.MarkerN > 0 {
		n += "+markers"
	}
	if c.cfg.Workers > 1 {
		n += fmt.Sprintf("+gcw%d", c.cfg.Workers)
	}
	return n
}

// chargeOverhead charges the fixed per-collection overhead, split across
// the simulated workers when there is more than one (see
// Generational.chargeOverhead).
func (c *Semispace) chargeOverhead() {
	if c.tally == nil {
		c.meter.Charge(costmodel.GCCopy, costmodel.GCOverhead)
		return
	}
	c.tally.ChargeSplit(costmodel.GCCopy, costmodel.GCOverhead)
}

// endParallelPhase closes a worker-distributed phase (see
// Generational.endParallelPhase).
func (c *Semispace) endParallelPhase(p trace.Phase) {
	if c.tally == nil {
		c.tr.EndPhase(p)
		return
	}
	workers := c.tally.ClosePhase()
	c.tr.EndPhaseWorkers(p, workers)
}

// Heap implements Collector.
func (c *Semispace) Heap() *mem.Heap { return c.heap }

// Stats implements Collector.
func (c *Semispace) Stats() *GCStats { return &c.stats }

// Alloc implements Collector. The common case — a small object into a
// space with room — runs straight through the bump allocation: records can
// never be large, so they skip the LOS threshold compare entirely, and the
// collect-and-retry sequence is kept out of line.
func (c *Semispace) Alloc(k obj.Kind, length uint64, site obj.SiteID, mask uint64) mem.Addr {
	size := obj.SizeWords(k, length)
	c.chargeAlloc(k, size)
	if k != obj.Record && length >= c.cfg.LargeObjectWords {
		return c.allocLarge(k, length, site, mask, size)
	}
	a, ok := obj.Alloc(c.heap, c.cur, k, length, site, mask)
	if !ok {
		a = c.allocSlow(k, length, site, mask, size)
	}
	c.tr.AllocSite(site, size, false)
	if c.prof != nil {
		c.prof.OnAlloc(a, site, k, size, false)
	}
	return a
}

// allocLarge is the LOS allocation path, collecting first when the
// large-object share of the budget is exhausted.
func (c *Semispace) allocLarge(k obj.Kind, length uint64, site obj.SiteID, mask uint64, size uint64) mem.Addr {
	if c.los.UsedWords()+size > c.losLimit() {
		c.Collect(true)
	}
	a := c.los.Alloc(k, length, site, mask)
	c.tr.AllocSite(site, size, false)
	if c.prof != nil {
		c.prof.OnAlloc(a, site, k, size, false)
	}
	return a
}

// allocSlow collects and retries the bump allocation, growing past the
// budget as a last resort.
func (c *Semispace) allocSlow(k obj.Kind, length uint64, site obj.SiteID, mask uint64, size uint64) mem.Addr {
	c.Collect(true)
	a, ok := obj.Alloc(c.heap, c.cur, k, length, site, mask)
	if !ok {
		// The live set genuinely exceeds the budget share (Min is
		// measured by calibration and can be slightly low). Grow past
		// the budget rather than dying; the overflow is recorded.
		c.stats.EmergencyGrows++
		c.cur = c.heap.GrowSpace(c.cur.ID(), c.cur.Capacity()+size+1024)
		a, ok = obj.Alloc(c.heap, c.cur, k, length, site, mask)
		if !ok {
			panic(semispaceGrowthFailure(c.cur, size))
		}
	}
	return a
}

// semispaceGrowthFailure builds the panic value for an emergency growth
// that still could not satisfy a size-word allocation, reporting the
// space id, used words, and requested words — the same fields, in the
// same shape, as mem.GrowSpace's below-used failure.
func semispaceGrowthFailure(sp *mem.Space, size uint64) mem.GrowthError {
	return mem.GrowthError{Op: "semispace emergency growth failed", Space: sp.ID(), Used: sp.Used(), Requested: size}
}

func (c *Semispace) chargeAlloc(k obj.Kind, size uint64) {
	c.meter.Charge(costmodel.Client, costmodel.AllocObject)
	c.meter.ChargeN(costmodel.Client, costmodel.AllocWord, size)
	c.stats.BytesAllocated += size * mem.WordSize
	c.stats.ObjectsAllocated++
	if k == obj.Record {
		c.stats.RecordBytes += size * mem.WordSize
	} else {
		c.stats.ArrayBytes += size * mem.WordSize
	}
}

// losLimit is the large-object share of the budget: up to half the total
// (the semispace sizing adapts to the live LOS share after each sweep).
func (c *Semispace) losLimit() uint64 {
	return c.cfg.BudgetWords / 2
}

// LoadField implements Collector.
func (c *Semispace) LoadField(a mem.Addr, i uint64) uint64 {
	c.meter.Charge(costmodel.Client, costmodel.MutatorLoad)
	return obj.Field(c.heap, a, i)
}

// StoreField implements Collector. The semispace collector has no write
// barrier; isPtr is accepted for interface compatibility.
//
//gc:nobarrier the semispace collector evacuates the entire heap at every GC; there is no remembered set for a barrier to maintain
func (c *Semispace) StoreField(a mem.Addr, i uint64, v uint64, isPtr bool) {
	c.meter.Charge(costmodel.Client, costmodel.MutatorStore)
	obj.SetField(c.heap, a, i, v)
}

// InitField implements Collector.
//
//gc:nobarrier the semispace collector evacuates the entire heap at every GC; there is no remembered set for a barrier to maintain
func (c *Semispace) InitField(a mem.Addr, i uint64, v uint64) {
	c.meter.Charge(costmodel.Client, costmodel.MutatorStore)
	obj.SetField(c.heap, a, i, v)
}

// Collect implements Collector: a full copying collection with Cheney's
// algorithm, followed by the r'/r resize.
func (c *Semispace) Collect(bool) {
	c.tr.BeginGC(false)
	statsBefore := c.stats
	pauseStart := c.meter.GC()
	defer func() {
		pause := uint64(c.meter.GC() - pauseStart)
		c.stats.SumPauseCycles += pause
		if pause > c.stats.MaxPauseCycles {
			c.stats.MaxPauseCycles = pause
		}
		if c.tally != nil {
			c.stats.ParallelQuanta = c.tally.Quanta()
			c.stats.WorkSteals = c.tally.Steals()
		}
		c.sampleHeap()
		c.tr.EndGC(gcCounters(&statsBefore, &c.stats))
	}()
	c.stats.NumGC++
	c.tr.BeginPhase(trace.PhaseSetup)
	c.chargeOverhead()
	c.noteCollection()
	c.los.ClearMarks()

	fromID, toID := c.idA, c.idB
	if c.cur.ID() != fromID {
		fromID, toID = toID, fromID
	}
	// The survivors cannot exceed what was allocated in from-space.
	to := c.heap.ReplaceSpace(toID, c.cur.Used())
	ev := &c.ev
	if refKernels {
		ev = new(evacuator)
	}
	condemned := [1]mem.SpaceID{fromID}
	ev.begin(c.heap, c.meter, &c.stats, c.prof, condemned[:], to, c.los)
	ev.tr = c.tr
	ev.tally = c.tally
	c.endParallelPhase(trace.PhaseSetup)

	// With workers, the root scan shards per frame: each frame's quantum
	// covers its decode, root visits, and the evacuations they trigger
	// (the scanner brackets them — see StackScanner.SetTally).
	c.tr.BeginPhase(trace.PhaseRoots)
	c.scanRoots(ev)
	c.endParallelPhase(trace.PhaseRoots)
	c.tr.BeginPhase(trace.PhaseCopy)
	ev.drain()
	c.endParallelPhase(trace.PhaseCopy)
	c.tr.BeginPhase(trace.PhaseSweep)
	c.los.Sweep(c.prof)
	c.tr.EndPhase(trace.PhaseSweep)
	c.los.TakeFresh()
	if c.prof != nil {
		c.prof.OnSpaceCondemned(fromID)
		c.prof.OnGCEnd()
	}

	live := to.Used()
	liveBytes := (live + c.los.UsedWords()) * mem.WordSize
	if liveBytes > c.stats.MaxLiveBytes {
		c.stats.MaxLiveBytes = liveBytes
	}

	// Resize: newSize = oldSize · r'/r = live/r, clamped to [live·1.25,
	// budget share]. Live data in the mark-sweep large-object space counts
	// toward the liveness ratio — the space budget is shared.
	oldCap := c.heap.Space(fromID).Capacity()
	rPrime := float64(live+c.los.UsedWords()) / float64(max(oldCap, 1))
	newSize := uint64(float64(oldCap) * rPrime / c.cfg.TargetLiveness)
	minSize := live + live/4 + 256
	maxSize := c.semispaceShare()
	if newSize < minSize {
		newSize = minSize
	}
	if newSize > maxSize {
		newSize = maxSize
	}
	if newSize < live+64 {
		newSize = live + 64 // budget exhausted; keep limping with minimum headroom
	}
	c.cur = c.heap.GrowSpace(toID, newSize)
	c.heap.ReplaceSpace(fromID, 0)
}

// semispaceShare returns the budget available to each semispace.
func (c *Semispace) semispaceShare() uint64 {
	losWords := c.los.UsedWords()
	if 2*losWords >= c.cfg.BudgetWords {
		return 512
	}
	return (c.cfg.BudgetWords - losWords) / 2
}

// forwardRootOn forwards the pointer stored at a root location of one
// thread's stack.
func (c *Semispace) forwardRootOn(ev *evacuator, st *rt.Stack, loc RootLoc) {
	c.stats.RootsFound++
	if loc.IsReg {
		v := st.Reg(loc.Index)
		if nv := ev.forward(v); nv != v {
			st.SetReg(loc.Index, nv)
		}
		return
	}
	v := st.RawSlot(loc.Index)
	if nv := ev.forward(v); nv != v {
		st.SetRawSlot(loc.Index, nv)
	}
}
