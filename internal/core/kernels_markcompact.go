package core

import (
	"fmt"
	"math/bits"
	"sort"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// The sliding compaction of the non-moving mark-compact old generation
// (GenConfig.OldCollector == OldMarkCompact). After the mark phase has
// rebuilt the bitmap, compaction runs three passes over the tenured
// space:
//
//	A (plan)  — derive the run table: maximal live runs with their slide
//	            destinations (dense repacking in allocation order), and
//	            account each dead object's reclamation.
//	B (fixup) — rewrite every pointer to a tenured object through the run
//	            table, before anything moves: captured stack roots, live
//	            tenured objects' fields, live large objects' fields.
//	C (slide) — move each run's objects down; runs already in place cost
//	            nothing.
//
// As with the sweep, the optimized and reference kernels produce
// identical charges, quanta, profiler events, and heap mutations; the
// optimized kernels discover runs and object boundaries from the bitmap
// and raw headers, the reference kernels decode every object through the
// checked interface.

// rootFixEntry is one stack-root location captured during the root scan
// of a compacting major: it held (after forwarding) a pointer into the
// tenured space, so pass B must revisit it once slide destinations are
// known.
type rootFixEntry struct {
	st  *rt.Stack
	loc RootLoc
}

// compactRun is one maximal run of live tenured objects: words
// [src, src+size) slide to [dst, dst+size), dst <= src.
type compactRun struct {
	src  uint64
	dst  uint64
	size uint64
}

// remapOldOffset returns the post-slide offset of a marked tenured word.
// Every tenured pointer reachable at fixup time targets a marked object,
// so a miss is collector corruption, not a legal state.
func remapOldOffset(runs []compactRun, off uint64) uint64 {
	i := sort.Search(len(runs), func(i int) bool { return runs[i].src+runs[i].size > off })
	if i == len(runs) || off < runs[i].src {
		panic(fmt.Sprintf("core: compaction fixup of unmarked tenured offset %d", off))
	}
	return runs[i].dst + (off - runs[i].src)
}

// compactOld slides the marked tenured objects toward the space base.
func (c *Generational) compactOld() {
	var runs []compactRun
	if refKernels {
		runs = c.refCompactPlan()
	} else {
		runs = c.compactPlanOpt()
	}
	c.compactFixRoots(runs)
	if refKernels {
		c.refCompactFixHeap(runs)
	} else {
		c.compactFixHeapOpt(runs)
	}
	c.compactFixLOS(runs)
	var live uint64
	if refKernels {
		live = c.refCompactSlide(runs)
	} else {
		live = c.compactSlideOpt(runs)
	}
	c.compactFinish(live)
}

// compactDead accounts one dead tenured object discovered by the plan
// walk: the per-object sweep charge and the profiler death. Unlike the
// mark-sweep collector nothing is "returned to free lists" — the slide
// reclaims by repacking — so WordsSwept stays untouched.
func (c *Generational) compactDead(off uint64) {
	c.beginQ()
	c.meter.Charge(costmodel.GCCopy, costmodel.SweepObject)
	if c.prof != nil {
		c.prof.OnLOSDead(mem.MakeAddr(c.old.id, off))
	}
	c.endQ()
}

// compactPlanOpt is the optimized pass A: live runs come straight off
// the bitmap (one trailing-zeros stride per run, no header decodes);
// only dead objects are decoded, from raw header reads.
//
//gc:nobarrier plan walk only reads raw headers of dead objects; it stores nothing
func (c *Generational) compactPlanOpt() []compactRun {
	os := c.old
	sp := c.heap.Space(os.id)
	used := sp.Used()
	os.ensureBitmap(used)
	c.sweepOldStripes(used)
	w := sp.Raw()
	var runs []compactRun
	newOff := uint64(1)
	off := uint64(1)
	for off <= used {
		if os.bitSet(off) {
			end := os.nextClearOffset(off, used)
			runs = append(runs, compactRun{src: off, dst: newOff, size: end - off})
			newOff += end - off
			off = end
			continue
		}
		hd := w[off]
		size := obj.SizeWords(obj.HeaderKind(hd), obj.HeaderLen(hd))
		c.compactDead(off)
		off += size
	}
	return runs
}

// refCompactPlan is the reference pass A: every object is decoded and
// stepped over; adjacent live objects coalesce into the same runs the
// bitmap stride finds.
func (c *Generational) refCompactPlan() []compactRun {
	os := c.old
	sp := c.heap.Space(os.id)
	used := sp.Used()
	os.ensureBitmap(used)
	c.sweepOldStripes(used)
	var runs []compactRun
	newOff := uint64(1)
	off := uint64(1)
	for off <= used {
		size := obj.Decode(c.heap, mem.MakeAddr(os.id, off)).SizeWords()
		if os.bitSet(off) {
			if n := len(runs); n > 0 && runs[n-1].src+runs[n-1].size == off {
				runs[n-1].size += size
			} else {
				runs = append(runs, compactRun{src: off, dst: newOff, size: size})
			}
			newOff += size
			off += size
			continue
		}
		c.compactDead(off)
		off += size
	}
	return runs
}

// compactFixRoots rewrites the stack-root locations captured during the
// root scan (shared by both kernel sets — root access goes through the
// runtime stack, not the heap). One quantum and one pointer test per
// captured location.
func (c *Generational) compactFixRoots(runs []compactRun) {
	os := c.old
	for _, rf := range c.rootFix {
		c.beginQ()
		c.meter.Charge(costmodel.GCCopy, costmodel.ScanPtrTest)
		if rf.loc.IsReg {
			v := rf.st.Reg(rf.loc.Index)
			if a := mem.Addr(v); !a.IsNil() && a.Space() == os.id {
				rf.st.SetReg(rf.loc.Index, uint64(mem.MakeAddr(os.id, remapOldOffset(runs, a.Offset()))))
			}
		} else {
			v := rf.st.RawSlot(rf.loc.Index)
			if a := mem.Addr(v); !a.IsNil() && a.Space() == os.id {
				rf.st.SetRawSlot(rf.loc.Index, uint64(mem.MakeAddr(os.id, remapOldOffset(runs, a.Offset()))))
			}
		}
		c.endQ()
	}
	c.rootFix = c.rootFix[:0]
}

// compactFixHeapOpt is the optimized pass B over the tenured space: raw
// header and mask reads locate the pointer fields of every live object
// (one quantum per object, one pointer test per field examined).
//
//gc:nobarrier compaction fixup rewrites collector-discovered pointers while the world is stopped; every rewrite targets the same live object at its post-slide address
func (c *Generational) compactFixHeapOpt(runs []compactRun) {
	os := c.old
	w := c.heap.Space(os.id).Raw()
	for _, r := range runs {
		for off := r.src; off < r.src+r.size; {
			hd := w[off]
			k := obj.HeaderKind(hd)
			length := obj.HeaderLen(hd)
			c.beginQ()
			switch k {
			case obj.PtrArray:
				base := off + 1
				for i := uint64(0); i < length; i++ {
					c.meter.Charge(costmodel.GCCopy, costmodel.ScanPtrTest)
					c.remapWordRaw(runs, w, base+i)
				}
			case obj.Record:
				base := off + 2
				for m := w[off+1]; m != 0; m &= m - 1 {
					c.meter.Charge(costmodel.GCCopy, costmodel.ScanPtrTest)
					c.remapWordRaw(runs, w, base+uint64(bits.TrailingZeros64(m)))
				}
			}
			c.endQ()
			off += obj.SizeWords(k, length)
		}
	}
}

// remapWordRaw rewrites one raw word in place when it is a pointer into
// the tenured space.
func (c *Generational) remapWordRaw(runs []compactRun, w []uint64, off uint64) {
	if a := mem.Addr(w[off]); !a.IsNil() && a.Space() == c.old.id {
		w[off] = uint64(mem.MakeAddr(c.old.id, remapOldOffset(runs, a.Offset())))
	}
}

// refCompactFixHeap is the reference pass B: checked decodes, checked
// loads and stores, identical charge and quantum stream.
//
//gc:nobarrier reference compaction fixup: same stop-the-world pointer rewrites as the optimized pass
func (c *Generational) refCompactFixHeap(runs []compactRun) {
	os := c.old
	for _, r := range runs {
		for off := r.src; off < r.src+r.size; {
			o := obj.Decode(c.heap, mem.MakeAddr(os.id, off))
			c.beginQ()
			if o.Kind != obj.RawArray {
				for i := uint64(0); i < o.Len; i++ {
					if !o.IsPtrField(i) {
						continue
					}
					c.meter.Charge(costmodel.GCCopy, costmodel.ScanPtrTest)
					fa := o.PayloadAddr(i)
					if a := mem.Addr(c.heap.Load(fa)); !a.IsNil() && a.Space() == os.id {
						c.heap.Store(fa, uint64(mem.MakeAddr(os.id, remapOldOffset(runs, a.Offset()))))
					}
				}
			}
			c.endQ()
			off += o.SizeWords()
		}
	}
}

// compactFixLOS rewrites tenured pointers held by live (marked) large
// objects, in ascending space-id order. Shared by both kernel sets: the
// LOS is sparse, so the checked per-object walk is the natural shape for
// both, and sharing keeps the streams identical by construction.
//
//gc:nobarrier compaction fixup of large-object fields while the world is stopped; rewrites retarget the same live tenured objects
func (c *Generational) compactFixLOS(runs []compactRun) {
	os := c.old
	for _, id := range c.los.SpaceIDs() {
		a, ok := c.los.ObjectIn(id)
		if !ok || !c.los.Marked(a) {
			continue
		}
		o := obj.Decode(c.heap, a)
		c.beginQ()
		if o.Kind != obj.RawArray {
			for i := uint64(0); i < o.Len; i++ {
				if !o.IsPtrField(i) {
					continue
				}
				c.meter.Charge(costmodel.GCCopy, costmodel.ScanPtrTest)
				fa := o.PayloadAddr(i)
				if aa := mem.Addr(c.heap.Load(fa)); !aa.IsNil() && aa.Space() == os.id {
					c.heap.Store(fa, uint64(mem.MakeAddr(os.id, remapOldOffset(runs, aa.Offset()))))
				}
			}
		}
		c.endQ()
	}
}

// compactSlideOpt is the optimized pass C: bulk word copies on the raw
// space, per object (dst < src within a moving run, and runs slide in
// ascending order, so every source is intact when read). Runs already at
// their destination are skipped outright — the common case for the
// long-lived prefix, and the reason sliding preserves allocation order
// cheaply.
//
//gc:nobarrier the slide moves whole live objects downward while the world is stopped; pass B already rewrote every pointer to its destination
func (c *Generational) compactSlideOpt(runs []compactRun) uint64 {
	os := c.old
	w := c.heap.Space(os.id).Raw()
	var live uint64
	for _, r := range runs {
		live += r.size
		if r.dst == r.src {
			continue
		}
		src, dst := r.src, r.dst
		for src < r.src+r.size {
			hd := w[src]
			size := obj.SizeWords(obj.HeaderKind(hd), obj.HeaderLen(hd))
			c.beginQ()
			c.meter.ChargeN(costmodel.GCCopy, costmodel.SlideWordTest, size)
			c.stats.WordsSlid += size
			copy(w[dst:dst+size], w[src:src+size])
			if c.prof != nil {
				c.prof.OnMove(mem.MakeAddr(os.id, src), mem.MakeAddr(os.id, dst))
			}
			c.endQ()
			src += size
			dst += size
		}
	}
	return live
}

// refCompactSlide is the reference pass C: checked decodes and
// heap-level copies, identical charges, word movement, and profiler
// moves.
//
//gc:nobarrier reference slide: same stop-the-world object moves as the optimized pass
func (c *Generational) refCompactSlide(runs []compactRun) uint64 {
	os := c.old
	var live uint64
	for _, r := range runs {
		live += r.size
		if r.dst == r.src {
			continue
		}
		src, dst := r.src, r.dst
		for src < r.src+r.size {
			srcA := mem.MakeAddr(os.id, src)
			size := obj.Decode(c.heap, srcA).SizeWords()
			c.beginQ()
			c.meter.ChargeN(costmodel.GCCopy, costmodel.SlideWordTest, size)
			c.stats.WordsSlid += size
			dstA := mem.MakeAddr(os.id, dst)
			c.heap.Copy(dstA, srcA, size)
			if c.prof != nil {
				c.prof.OnMove(srcA, dstA)
			}
			c.endQ()
			src += size
			dst += size
		}
	}
	return live
}

// compactFinish re-establishes the space and bitmap after the slide:
// live words occupy [1, live], the allocation frontier drops back to the
// live boundary (Reset keeps the dirty high-water mark, so the abandoned
// tail is lazily re-zeroed by future bump allocations), the bitmap
// becomes the dense allocation reading, and the free lists — always
// empty under mark-compact — are reset for form's sake.
func (c *Generational) compactFinish(live uint64) {
	os := c.old
	sp := c.heap.Space(os.id)
	sp.Reset()
	if live > 0 {
		if _, ok := sp.AllocUnzeroed(live); !ok {
			panic("core: tenured space cannot re-admit its own live data after compaction")
		}
	}
	os.resetFree()
	os.clearBitmap()
	if live > 0 {
		os.setRange(1, live)
	}
}
