package core

import (
	"fmt"
	"math/bits"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/trace"
)

// evacuator implements Cheney's algorithm over the simulated heap: objects
// in condemned spaces are copied to the to-space, a forwarding header is
// installed at the old address, and the to-space is scanned as an implicit
// breadth-first queue. Large objects (which live in the mark-sweep LOS and
// are never copied) are marked and queued for field scanning instead.
//
// Collectors keep one evacuator value alive across collections and rearm
// it with begin() each cycle, so the scan frontiers and LOS queue are
// pooled: a steady-state minor collection allocates nothing on the Go
// heap. (Under SetReferenceKernels the collectors construct a fresh
// evacuator per collection instead, the pre-optimization behaviour.)
type evacuator struct {
	heap  *mem.Heap
	meter *costmodel.Meter
	stats *GCStats
	prof  Profiler // may be nil

	// condemned is the set of spaces being collected — at most three
	// (nursery, tenured from-space, aging from-space), so membership is a
	// linear compare over a small array rather than a map probe on every
	// forwarded pointer.
	condemned  [3]mem.SpaceID
	ncondemned int
	// condemnedMap is only populated under the reference kernels: the
	// pre-pooling evacuator kept the condemned set in a map and paid a
	// hash probe on every forwarded pointer.
	condemnedMap map[mem.SpaceID]struct{}

	to  *mem.Space
	los *LOS // may be nil

	// route, when set, picks the destination space per object (the aging
	// collector sends young survivors to the aging space and old enough
	// ones to the tenured space). nil routes everything to `to`.
	route func(o obj.Object) *mem.Space
	// postCopy, when set, runs after each evacuation (e.g. to bump the
	// copied object's age byte).
	postCopy func(dst mem.Addr, o obj.Object)
	// isYoung+sticky, when set, record old-space fields left pointing at
	// still-young objects: without immediate promotion such fields must
	// be re-examined at every minor collection until their targets
	// tenure, so the collector keeps them in a sticky remembered set.
	isYoung func(mem.SpaceID) bool
	sticky  *[]mem.Addr
	// tr receives per-site copy telemetry (nil-safe); tenuredID classifies
	// one destination space as tenured for the promotion counters (space
	// id 0 — the reserved nil space — means none, the semispace case).
	tr        *trace.Recorder
	tenuredID mem.SpaceID
	// tally, when non-nil (W > 1), brackets each Cheney drain step as one
	// work quantum for the simulated parallel workers. The work itself
	// still executes in the canonical serial order — only the cycle
	// accounting is sharded — so heap images are byte-identical at every
	// worker count.
	tally *costmodel.WorkerTally

	// old, when non-nil, is the non-moving tenured space's side state:
	// evacuations into it prefer its free lists over the bump frontier,
	// and every copy into it sets the destination's allocation bits. With
	// oldMark also set (non-moving majors only), pointers into it mark
	// their target in place instead of evacuating — the mark phase of
	// mark-sweep and mark-compact.
	old     *oldSpace
	oldMark bool
	// oldFromID, when non-zero, is the tenured from-space of a copying
	// major: evacuations out of it accumulate GCStats.OldBytesCopied, the
	// copy traffic the non-moving collectors eliminate.
	oldFromID mem.SpaceID

	scans    []spaceScan // Cheney frontiers, one per destination space
	losQueue []mem.Addr  // marked large objects awaiting field scan
}

// spaceScan tracks the Cheney scan frontier within one destination space.
type spaceScan struct {
	space *mem.Space
	next  uint64
}

// begin rearms the evacuator for an evacuation of the condemned spaces
// into to, reusing the pooled frontier and LOS-queue storage. Pre-existing
// objects in to (allocated before this collection) are not rescanned;
// scanning starts at the current allocation frontier.
func (e *evacuator) begin(heap *mem.Heap, meter *costmodel.Meter, stats *GCStats, prof Profiler,
	condemned []mem.SpaceID, to *mem.Space, los *LOS) {
	if len(condemned) > len(e.condemned) {
		panic(fmt.Sprintf("core: %d condemned spaces exceed the evacuator's capacity", len(condemned)))
	}
	scans := append(e.scans[:0], spaceScan{space: to, next: to.Used() + 1})
	*e = evacuator{
		heap:     heap,
		meter:    meter,
		stats:    stats,
		prof:     prof,
		to:       to,
		los:      los,
		scans:    scans,
		losQueue: e.losQueue[:0],
	}
	e.ncondemned = copy(e.condemned[:], condemned)
	if refKernels {
		m := make(map[mem.SpaceID]struct{}, len(condemned))
		for _, id := range condemned {
			m[id] = struct{}{}
		}
		e.condemnedMap = m
	}
}

// addDest registers an additional destination space for routing; objects
// copied into it are Cheney-scanned like the primary to-space.
func (e *evacuator) addDest(s *mem.Space) {
	e.scans = append(e.scans, spaceScan{space: s, next: s.Used() + 1})
}

// beginQ/endQ bracket one unit of parallel-phase work; no-ops with a nil
// tally (the single-worker case).
func (e *evacuator) beginQ() {
	if e.tally != nil {
		e.tally.BeginQuantum()
	}
}

func (e *evacuator) endQ() {
	if e.tally != nil {
		e.tally.EndQuantum()
	}
}

// isCondemned reports whether space id is being collected this cycle.
func (e *evacuator) isCondemned(id mem.SpaceID) bool {
	for i := 0; i < e.ncondemned; i++ {
		if e.condemned[i] == id {
			return true
		}
	}
	return false
}

// forward treats v as a pointer value and returns its post-collection
// value: the forwarding address for condemned objects (evacuating on first
// visit), v itself for nil and for pointers outside the condemned spaces.
// Pointers into the LOS mark their target live.
func (e *evacuator) forward(v uint64) uint64 {
	a := mem.Addr(v)
	if a.IsNil() {
		return v
	}
	id := a.Space()
	if e.condemnedMap != nil { // reference kernels: the pre-pooling map probe
		if _, ok := e.condemnedMap[id]; ok {
			return uint64(e.evacuate(a))
		}
	} else if e.isCondemned(id) {
		return uint64(e.evacuate(a))
	}
	if e.old != nil && id == e.old.id {
		// Non-moving tenured target: never condemned. During a non-moving
		// major (oldMark) the pointer marks its target in place and grays
		// it on first visit — the losQueue doubles as the mark stack, so
		// the drain scans marked tenured objects exactly like marked large
		// objects. Minor collections fall through with the pointer intact,
		// just as the copying collector leaves tenured pointers alone.
		if e.oldMark {
			e.markOld(a)
		}
		return v
	}
	if e.los != nil && e.los.Contains(id) {
		if e.los.Mark(a) {
			e.losQueue = append(e.losQueue, a)
		}
	}
	return v
}

// evacuate copies the object at a into the to-space (or returns the
// existing forwarding address). The header is read once from the source
// arena — the forwarding check, the decode, and the forwarding-pointer
// install all work on that one word — and the payload moves as a single
// bulk copy into an unzeroed destination span (the span is fully
// overwritten, so pre-zeroing it as Alloc does would touch every word
// twice). The meter takes one batched per-word charge — never a
// word-at-a-time loop. The reference kernels keep the load-per-helper,
// zero-then-copy behaviour.
//
//gc:nobarrier Cheney copy kernel: stores land in to-space, which is scanned in full before the mutator resumes
func (e *evacuator) evacuate(a mem.Addr) mem.Addr {
	if refKernels {
		return e.refEvacuate(a)
	}
	src := e.heap.Space(a.Space()).Raw()
	off := a.Offset()
	hd := src[off]
	if obj.HeaderKind(hd) == obj.Forwarded {
		return obj.ForwardAddr(hd)
	}
	o := obj.Object{Addr: a, Kind: obj.HeaderKind(hd), Len: obj.HeaderLen(hd), Site: obj.HeaderSite(hd)}
	if o.Kind == obj.Record {
		o.Mask = src[off+1]
	}
	size := o.SizeWords()
	target := e.to
	if e.route != nil {
		target = e.route(o)
	}
	if e.old != nil && target.ID() == e.old.id {
		if fa := e.old.alloc(size); !fa.IsNil() {
			// Promotion into a reclaimed free-list span. The destination is
			// below the Cheney frontier, so the copy grays itself onto the
			// losQueue instead of being picked up by the frontier scan.
			copy(target.Raw()[fa.Offset():fa.Offset()+size], src[off:off+size])
			claimForward(src, off, fa)
			e.finishCopy(fa, o, size)
			e.losQueue = append(e.losQueue, fa)
			return fa
		}
	}
	dst, ok := target.AllocUnzeroed(size)
	if !ok {
		panic(fmt.Sprintf("core: to-space %d overflow evacuating %d words (used %d / cap %d)",
			target.ID(), size, target.Used(), target.Capacity()))
	}
	copy(target.Raw()[dst.Offset():dst.Offset()+size], src[off:off+size])
	claimForward(src, off, dst)
	e.finishCopy(dst, o, size)
	return dst
}

// markOld marks the tenured object at a in place: the mark-bitmap test,
// the range set and gray push on first visit. Shared by the optimized
// and reference kernels (like finishCopy) so both mark phases charge and
// mutate identically. The caller's quantum brackets the charge.
func (e *evacuator) markOld(a mem.Addr) {
	e.meter.Charge(costmodel.GCCopy, costmodel.MarkTest)
	off := a.Offset()
	if e.old.bitSet(off) {
		return
	}
	size := obj.Decode(e.heap, a).SizeWords()
	e.old.setRange(off, size)
	e.stats.ObjectsMarked++
	e.stats.WordsMarked += size
	e.losQueue = append(e.losQueue, a)
}

// claimForward installs the forwarding pointer in the object's header
// word. It is the parallel copy's claim-arbitration point: conceptually
// every worker that reaches the object races a CAS on this word, the
// lowest destination address wins, and ties are resolved by worker rank.
// Because the simulator executes the canonical serial work order, the
// single claim issued here is exactly the arbitrated winner, which is
// what makes the copied heap image byte-identical at every worker count
// (the reference kernel's obj.SetForward honors the same contract).
func claimForward(src []uint64, off uint64, dst mem.Addr) {
	src[off] = obj.PackForward(dst)
}

// finishCopy issues the metering, statistics, telemetry, and policy
// callbacks for one completed evacuation — shared by the optimized and
// reference copy kernels so both observe identical costs.
func (e *evacuator) finishCopy(dst mem.Addr, o obj.Object, size uint64) {
	e.meter.Charge(costmodel.GCCopy, costmodel.CopyObject)
	e.meter.ChargeN(costmodel.GCCopy, costmodel.CopyWord, size)
	e.stats.BytesCopied += size * mem.WordSize
	e.stats.ObjectsCopied++
	if e.old != nil && dst.Space() == e.old.id {
		// Non-moving tenured destination: bump-promoted spans set their
		// allocation bits here (free-list promotions already did, in alloc).
		e.old.setRange(dst.Offset(), size)
	}
	if e.oldFromID != 0 && o.Addr.Space() == e.oldFromID {
		e.stats.OldBytesCopied += size * mem.WordSize
	}
	e.tr.CopySite(o.Site, size, dst.Space() == e.tenuredID)
	if e.postCopy != nil {
		e.postCopy(dst, o)
	}
	if e.prof != nil {
		e.prof.OnMove(o.Addr, dst)
	}
}

// drain runs the Cheney scan to a fixpoint: every gray object copied into
// the to-space since the evacuator was rearmed (and every marked large
// object) has its pointer fields forwarded, possibly evacuating more
// objects. Each gray object is decoded exactly once — the decoded view
// both drives the field scan and advances the frontier.
func (e *evacuator) drain() {
	if refKernels {
		e.refDrain()
		return
	}
	for {
		progressed := false
		for i := range e.scans {
			s := &e.scans[i]
			for s.next <= s.space.Used() {
				s.next += e.scanAt(s.space, s.next)
				progressed = true
			}
		}
		for len(e.losQueue) > 0 {
			a := e.losQueue[len(e.losQueue)-1]
			e.losQueue = e.losQueue[:len(e.losQueue)-1]
			e.scanDecoded(obj.Decode(e.heap, a))
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// scanAt forwards every pointer field of the live object at offset off in
// sp and returns the object's footprint in words. It is the frontier-scan
// kernel: header, mask, and fields are all read and rewritten through the
// space's raw arena, so the inner loop performs no per-word space lookup
// and no Addr arithmetic.
//
// Quantum granularity is one pointer field, not one object: a field
// forward can evacuate its target, and a single wide array (the server
// workloads' session tables) would otherwise pull hundreds of
// evacuations into one indivisible quantum and pin the whole subgraph's
// copy cost on one worker. Field-level quanta are the simulated
// equivalent of the array-splitting real parallel scavengers do — large
// objects enter the shared frontier as chunks, not as a unit.
//
//gc:nobarrier frontier-scan kernel: it rewrites to-space fields during the stop-the-world scan that the barrier invariant is defined against
func (e *evacuator) scanAt(sp *mem.Space, off uint64) uint64 {
	words := sp.Raw()
	hd := words[off]
	k := obj.HeaderKind(hd)
	length := obj.HeaderLen(hd)
	size := obj.SizeWords(k, length)
	e.beginQ()
	e.meter.ChargeN(costmodel.GCCopy, costmodel.ScanWord, size)
	e.endQ()
	switch k {
	case obj.RawArray:
	case obj.PtrArray:
		base := off + 1
		for i := uint64(0); i < length; i++ {
			e.beginQ()
			e.forwardWord(words, sp.ID(), base+i)
			e.endQ()
		}
	case obj.Record:
		base := off + 2
		for mask := words[off+1]; mask != 0; mask &= mask - 1 {
			e.beginQ()
			e.forwardWord(words, sp.ID(), base+uint64(bits.TrailingZeros64(mask)))
			e.endQ()
		}
	default:
		panic(fmt.Sprintf("core: scanning %v object at %v", k, mem.MakeAddr(sp.ID(), off)))
	}
	return size
}

// forwardWord rewrites the pointer stored at words[off] of space sid —
// forwardField minus the Heap.Load/Store space lookups.
func (e *evacuator) forwardWord(words []uint64, sid mem.SpaceID, off uint64) {
	v := words[off]
	nv := e.forward(v)
	if nv != v {
		words[off] = nv
	}
	if e.isYoung != nil && nv != 0 &&
		!e.isYoung(sid) && e.isYoung(mem.Addr(nv).Space()) {
		*e.sticky = append(*e.sticky, mem.MakeAddr(sid, off))
	}
}

// scanObject forwards every pointer field of the live object at a.
func (e *evacuator) scanObject(a mem.Addr) {
	e.scanDecoded(obj.Decode(e.heap, a))
}

// scanDecoded forwards every pointer field of the decoded live object.
// Record fields walk the pointer bitmap with a trailing-zeros scan, so the
// cost is proportional to the number of pointer fields, not the arity.
// Quanta are per field, matching scanAt (large objects in particular are
// chunked across workers, not scanned as one unit).
func (e *evacuator) scanDecoded(o obj.Object) {
	e.beginQ()
	e.meter.ChargeN(costmodel.GCCopy, costmodel.ScanWord, o.SizeWords())
	e.endQ()
	switch o.Kind {
	case obj.RawArray:
		return
	case obj.PtrArray:
		for i := uint64(0); i < o.Len; i++ {
			e.beginQ()
			e.forwardField(o.PayloadAddr(i))
			e.endQ()
		}
	case obj.Record:
		for mask := o.Mask; mask != 0; mask &= mask - 1 {
			e.beginQ()
			e.forwardField(o.PayloadAddr(uint64(bits.TrailingZeros64(mask))))
			e.endQ()
		}
	default:
		panic(fmt.Sprintf("core: scanning %v object at %v", o.Kind, o.Addr))
	}
}

// forwardField rewrites the pointer stored at field address fa.
//
//gc:nobarrier collector-internal pointer rewrite during evacuation; the slot's owner is either a root or an object the scan will cover
func (e *evacuator) forwardField(fa mem.Addr) {
	v := e.heap.Load(fa)
	nv := e.forward(v)
	if nv != v {
		e.heap.Store(fa, nv)
	}
	if e.isYoung != nil && nv != 0 &&
		!e.isYoung(fa.Space()) && e.isYoung(mem.Addr(nv).Space()) {
		*e.sticky = append(*e.sticky, fa)
	}
}
