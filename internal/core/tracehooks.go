package core

import "tilgc/internal/trace"

// gcCounters derives one collection's trace counter deltas from the stats
// snapshot taken when the collection span opened. A minor collection that
// escalates to a major keeps its span open across the escalation, so the
// deltas cover both.
func gcCounters(before, after *GCStats) trace.GCCounters {
	return trace.GCCounters{
		Majors:        after.NumMajor - before.NumMajor,
		FramesDecoded: after.FramesDecoded - before.FramesDecoded,
		FramesReused:  after.FramesReused - before.FramesReused,
		MarkersPlaced: after.MarkersPlaced - before.MarkersPlaced,
		RootsFound:    after.RootsFound - before.RootsFound,
		BytesCopied:   after.BytesCopied - before.BytesCopied,
		BytesScanned:  after.BytesScanned - before.BytesScanned,
		ObjectsCopied: after.ObjectsCopied - before.ObjectsCopied,
		SSBProcessed:  after.SSBProcessed - before.SSBProcessed,
		LOSSwept:      after.LOSSwept - before.LOSSwept,
		Pretenured:    after.Pretenured - before.Pretenured,
	}
}
