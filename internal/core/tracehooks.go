package core

import "tilgc/internal/trace"

// gcCounters derives one collection's trace counter deltas from the stats
// snapshot taken when the collection span opened. A minor collection that
// escalates to a major keeps its span open across the escalation, so the
// deltas cover both.
func gcCounters(before, after *GCStats) trace.GCCounters {
	return trace.GCCounters{
		Majors:        after.NumMajor - before.NumMajor,
		FramesDecoded: after.FramesDecoded - before.FramesDecoded,
		FramesReused:  after.FramesReused - before.FramesReused,
		MarkersPlaced: after.MarkersPlaced - before.MarkersPlaced,
		RootsFound:    after.RootsFound - before.RootsFound,
		BytesCopied:   after.BytesCopied - before.BytesCopied,
		BytesScanned:  after.BytesScanned - before.BytesScanned,
		ObjectsCopied: after.ObjectsCopied - before.ObjectsCopied,
		SSBProcessed:  after.SSBProcessed - before.SSBProcessed,
		LOSSwept:      after.LOSSwept - before.LOSSwept,
		Pretenured:    after.Pretenured - before.Pretenured,
		ObjectsMarked: after.ObjectsMarked - before.ObjectsMarked,
		WordsMarked:   after.WordsMarked - before.WordsMarked,
		WordsSwept:    after.WordsSwept - before.WordsSwept,
		WordsSlid:     after.WordsSlid - before.WordsSlid,
	}
}

// sampleHeap records the generational heap's end-of-collection footprint:
// per-space live and committed words. Guarded on HeapSampling so runs
// that did not opt in (including every untraced run) build nothing —
// preserving the zero-allocation GC path.
func (c *Generational) sampleHeap() {
	if !c.tr.HeapSampling() {
		return
	}
	spaces := make([]trace.SpaceOcc, 0, 4)
	spaces = append(spaces, trace.SpaceOcc{Name: "nursery", Live: c.nursery.Used(), Committed: c.nursery.Capacity()})
	if c.aging != nil {
		spaces = append(spaces, trace.SpaceOcc{Name: "aging", Live: c.aging.Used(), Committed: c.aging.Capacity()})
	}
	spaces = append(spaces,
		// Occupancy, not the raw frontier: under the non-moving collectors
		// free-list words inside the frontier are reusable, not live
		// (tenLive == Used under the copying old generation).
		trace.SpaceOcc{Name: "tenured", Live: c.tenLive(), Committed: c.ten.Capacity()},
		// The LOS commits exactly the words its live objects occupy (one
		// simulated mapping per object), so live == committed.
		trace.SpaceOcc{Name: "los", Live: c.los.UsedWords(), Committed: c.los.UsedWords()})
	c.tr.HeapSample(spaces)
}

// sampleHeap records the semispace heap's end-of-collection footprint.
func (c *Semispace) sampleHeap() {
	if !c.tr.HeapSampling() {
		return
	}
	c.tr.HeapSample([]trace.SpaceOcc{
		{Name: "semispace", Live: c.cur.Used(), Committed: c.cur.Capacity()},
		{Name: "los", Live: c.los.UsedWords(), Committed: c.los.UsedWords()},
	})
}
