package core

// OldCollector selects the algorithm managing the tenured generation.
// The copying collector (the paper's, and the default) evacuates tenured
// survivors between two semispaces at every major collection; the two
// non-moving alternatives keep tenured objects in place under a per-word
// mark bitmap — mark-sweep returns dead runs to size-segregated free
// lists, mark-compact slides the live objects toward the space base in
// allocation order. All three produce byte-identical client results
// (fingerprints, checksums, request latencies in client cycles); they
// differ only in GC-side cost, pause shape, and heap footprint.
type OldCollector uint8

const (
	// OldCopy is the paper's copying old generation (the default).
	OldCopy OldCollector = iota
	// OldMarkSweep manages the tenured space with a mark bitmap and
	// size-segregated free lists: major collections mark in place and
	// sweep dead runs into the free lists; promotion and pretenured
	// allocation are satisfied from the free lists before bumping.
	OldMarkSweep
	// OldMarkCompact marks like OldMarkSweep but then slides live tenured
	// objects toward the space base (preserving allocation order),
	// leaving a contiguous heap and a pure bump allocator.
	OldMarkCompact
)

// String returns the collector's configuration name.
func (oc OldCollector) String() string {
	switch oc {
	case OldMarkSweep:
		return "marksweep"
	case OldMarkCompact:
		return "markcompact"
	}
	return "copy"
}

// ParseOldCollector resolves a configuration name back to its value.
func ParseOldCollector(s string) (OldCollector, bool) {
	switch s {
	case "", "copy":
		return OldCopy, true
	case "marksweep":
		return OldMarkSweep, true
	case "markcompact":
		return OldMarkCompact, true
	}
	return OldCopy, false
}

// tenLive returns the tenured generation's occupied words: the allocation
// frontier minus the free-list words inside it. Identical to ten.Used()
// under the copying old generation, which keeps no free lists — so every
// threshold derived from it (major triggers, resizing, MaxLiveBytes) is
// unchanged for the default configuration.
func (c *Generational) tenLive() uint64 {
	if c.old == nil {
		return c.ten.Used()
	}
	return c.ten.Used() - c.old.freeWords
}

// noteOldMutation clears the marks-fresh flag: once the mutator has
// allocated into or stored over the heap — or any collection has begun
// (see Collect: minors promote without re-tracing the old generation,
// and stack-root writes are invisible to the collector, so by collection
// time reachability may have shrunk below the bitmap) — the mark bitmap
// no longer coincides with the reachable set, and the sanitizer's
// mark-subset-of-reachable check stands down until the next non-moving
// major rebuilds the bitmap.
func (c *Generational) noteOldMutation() {
	if c.old != nil {
		c.old.marksFresh = false
	}
}

// FlipOldMarkBit flips the mark/allocation bit of the tenured word at
// offset off. Fault-injection hook for the sanitizer's broken-collector
// tests — it corrupts the bitmap the way a lost or spurious mark would,
// without touching the heap or the free lists. No production caller.
func (c *Generational) FlipOldMarkBit(off uint64) {
	if c.old == nil {
		panic("core: FlipOldMarkBit on a copying old generation")
	}
	c.old.flipBit(off)
}

// SkewOldFreeWords adds delta to the old generation's free-word counter
// without touching the free lists, the way a dropped span-accounting
// update would. Fault-injection hook for the sanitizer's broken-collector
// tests; no production caller.
func (c *Generational) SkewOldFreeWords(delta uint64) {
	if c.old == nil {
		panic("core: SkewOldFreeWords on a copying old generation")
	}
	c.old.freeWords += delta
}
