package core

import "tilgc/internal/mem"

// refKernels selects the reference (pre-optimization) implementations of
// the collector hot paths: the first-draft copy/scan kernels, per-GC
// evacuator allocation, the cloning store-buffer drain, and eager arena
// zeroing. The reference and optimized paths are observationally
// identical — same simulated cycles, traces, stats, and heap images; the
// kernel-equivalence tests in kernel_equiv_test.go enforce this — so the
// flag exists only so benchmarks can measure what the optimized kernels
// buy on the same machine (gcbench -bench reports the ref/opt ratio).
//
// The flag is process-global and read on collector hot paths without
// synchronization: set it only while no collector is running (benchmarks
// and tests toggle it between serial runs).
var refKernels bool

// SetReferenceKernels switches every subsequently-running collector
// between the optimized (false, default) and reference (true) hot-path
// implementations. See refKernels for the contract.
func SetReferenceKernels(on bool) {
	refKernels = on
	mem.SetEagerZeroing(on)
}

// ReferenceKernels reports the current kernel mode.
func ReferenceKernels() bool { return refKernels }
