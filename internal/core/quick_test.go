package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// TestQuickListSurvivesAnyCollectionSchedule: for any random interleaving
// of allocations and forced minor/major collections, a linked list rooted
// in a stack slot keeps its exact contents.
func TestQuickListSurvivesAnyCollectionSchedule(t *testing.T) {
	f := func(ops []uint8, nurseryShift uint8) bool {
		e := newEnv(2)
		nursery := uint64(256) << (nurseryShift % 4)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 20, NurseryWords: nursery,
		})
		var want []uint64
		for _, op := range ops {
			switch op % 8 {
			case 7:
				c.Collect(op%16 < 8)
			default:
				v := uint64(op) * 2654435761
				cell := c.Alloc(obj.Record, 2, 1, 0b10)
				c.InitField(cell, 0, v)
				c.InitField(cell, 1, e.stack.Slot(1))
				e.stack.SetSlot(1, uint64(cell))
				want = append(want, v)
			}
		}
		a := mem.Addr(e.stack.Slot(1))
		for i := len(want) - 1; i >= 0; i-- {
			if a.IsNil() || c.LoadField(a, 0) != want[i] {
				return false
			}
			a = mem.Addr(c.LoadField(a, 1))
		}
		return a.IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMarkerBoundaryNeverExceedsStableFrames: for any random
// call/return/raise trace, the reuse boundary never names a frame that
// was popped since the markers were placed.
func TestQuickMarkerBoundaryNeverExceedsStableFrames(t *testing.T) {
	f := func(trace []uint8, markerN uint8) bool {
		n := int(markerN%9) + 2
		table := rt.NewTraceTable()
		meter := costmodel.NewMeter()
		stack := rt.NewStack(table, meter)
		fi := table.Register("f", make([]rt.SlotTrace, 3), nil)
		var stats GCStats
		sc := NewStackScanner(stack, meter, &stats, n)

		// minSince[i] is the minimum depth reached since the last scan,
		// the ground truth for which frames are untouched.
		minDepth := 0
		for i := 0; i < 30; i++ {
			stack.Call(fi)
		}
		sc.Scan(true, func(RootLoc) {})
		sc.NoteCollection()
		minDepth = stack.Depth()

		for _, op := range trace {
			switch op % 4 {
			case 0, 1:
				stack.Call(fi)
			case 2:
				if stack.Depth() > 1 {
					stack.Return()
				}
			case 3:
				if stack.Depth() > 3 {
					stack.PushHandler()
					stack.Call(fi)
					stack.Call(fi)
					stack.Raise()
				}
			}
			if stack.Depth() < minDepth {
				minDepth = stack.Depth()
			}
		}
		b := stack.ReuseBoundary()
		// Frames 0..b-1 must be untouched: they are untouched iff the
		// stack never dipped to depth <= b-1... i.e. minDepth > b-1.
		return b <= minDepth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickScanEquivalence: for any random stack shape, a marker-enabled
// scanner (after arbitrary churn) reports the same root set as a fresh
// full scan.
func TestQuickScanEquivalence(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		table := rt.NewTraceTable()
		meter := costmodel.NewMeter()
		stack := rt.NewStack(table, meter)
		layouts := []*rt.FrameInfo{
			table.Register("a", []rt.SlotTrace{rt.NP(), rt.PTR()}, nil),
			table.Register("b", []rt.SlotTrace{rt.NP(), rt.PTR(), rt.NP(), rt.PTR()}, nil),
			table.Register("c", []rt.SlotTrace{rt.NP(), rt.NP(), rt.COMPSLOT(1)}, nil),
		}
		var stats GCStats
		marked := NewStackScanner(stack, meter, &stats, 4)

		push := func() {
			fi := layouts[rng.Intn(len(layouts))]
			stack.Call(fi)
			for s := 1; s < fi.Size; s++ {
				switch fi.Slots[s].Kind {
				case rt.TracePointer:
					stack.SetSlot(s, uint64(mem.MakeAddr(1, uint64(rng.Intn(100)+1))))
				case rt.TraceNonPointer:
					if fi.Slots[s+0].Kind == rt.TraceNonPointer && s == 1 && fi.Name == "c" {
						stack.SetSlot(s, uint64(rng.Intn(2))) // runtime type
					}
				}
			}
			// Fill COMPUTE slots with plausible pointers.
			for s := 1; s < fi.Size; s++ {
				if fi.Slots[s].Kind == rt.TraceCompute {
					stack.SetSlot(s, uint64(mem.MakeAddr(1, uint64(rng.Intn(100)+1))))
				}
			}
		}
		for i := 0; i < 20; i++ {
			push()
		}
		for step := 0; step < int(steps); step++ {
			// Alternate scans and churn.
			if step%3 == 0 {
				marked.Scan(step%2 == 0, func(RootLoc) {})
			}
			if rng.Intn(2) == 0 && stack.Depth() > 1 {
				stack.Return()
			} else {
				push()
			}
		}
		got := map[RootLoc]bool{}
		marked.Scan(false, func(l RootLoc) { got[l] = true })
		want := map[RootLoc]bool{}
		fresh := NewStackScanner(stack, meter, &stats, 0)
		fresh.Scan(false, func(l RootLoc) { want[l] = true })
		if len(got) != len(want) {
			return false
		}
		for l := range want {
			if !got[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickPretenurePreservesSemantics: any random site subset chosen for
// pretenuring leaves a list workload's contents untouched.
func TestQuickPretenurePreservesSemantics(t *testing.T) {
	f := func(siteMask uint8, ops []uint8) bool {
		sites := map[obj.SiteID]PretenureDecision{}
		for s := 0; s < 8; s++ {
			if siteMask>>s&1 == 1 {
				sites[obj.SiteID(s+1)] = PretenureDecision{}
			}
		}
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 20, NurseryWords: 512,
			Pretenure: NewPretenurePolicy(sites),
		})
		var want []uint64
		for i, op := range ops {
			site := obj.SiteID(op%8 + 1)
			v := uint64(i)*31 + uint64(op)
			cell := c.Alloc(obj.Record, 2, site, 0b10)
			c.InitField(cell, 0, v)
			c.InitField(cell, 1, e.stack.Slot(1))
			e.stack.SetSlot(1, uint64(cell))
			want = append(want, v)
			if op%13 == 0 {
				c.Collect(op%2 == 0)
			}
		}
		a := mem.Addr(e.stack.Slot(1))
		for i := len(want) - 1; i >= 0; i-- {
			if a.IsNil() || c.LoadField(a, 0) != want[i] {
				return false
			}
			a = mem.Addr(c.LoadField(a, 1))
		}
		return a.IsNil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickSSBOrderIndependence: random mutation patterns never lose a
// young object reachable only through an old one, regardless of how many
// duplicate SSB entries pile up.
func TestQuickSSBOrderIndependence(t *testing.T) {
	f := func(writes []uint8) bool {
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 20, NurseryWords: 512,
		})
		// An old array of 8 pointer fields.
		arr := c.Alloc(obj.PtrArray, 8, 1, 0)
		e.stack.SetSlot(1, uint64(arr))
		c.Collect(false)
		arr = mem.Addr(e.stack.Slot(1))

		want := map[uint64]uint64{} // field -> expected payload
		for i, w := range writes {
			field := uint64(w % 8)
			young := c.Alloc(obj.Record, 1, 2, 0)
			c.InitField(young, 0, uint64(i)+1000)
			arr = mem.Addr(e.stack.Slot(1))
			c.StoreField(arr, field, uint64(young), true)
			want[field] = uint64(i) + 1000
			if w%11 == 0 {
				c.Collect(false)
			}
		}
		c.Collect(false)
		arr = mem.Addr(e.stack.Slot(1))
		for field, v := range want {
			p := mem.Addr(c.LoadField(arr, field))
			if p.IsNil() || c.LoadField(p, 0) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSemispaceWithMarkers exercises the §7.1 note that generational
// stack collection also applies to non-generational collectors.
func TestSemispaceWithMarkers(t *testing.T) {
	e := newEnv(2)
	c := NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
		BudgetWords: 1 << 20, InitialWords: 512, MarkerN: 5,
	})
	if c.Name() != "semispace+markers" {
		t.Fatalf("name = %q", c.Name())
	}
	fi := ptrFrame(e)
	deepEnv(t, c, e, fi, 100)
	for i := 0; i < 8; i++ {
		c.Collect(true)
	}
	checkDeep(t, c, e, 100)
	if c.Stats().FramesReused == 0 {
		t.Fatal("semispace collector reused no frames despite markers")
	}
}
