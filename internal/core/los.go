package core

import (
	"slices"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// LOS is the large-object space: big arrays are not allocated in the
// nursery and promoted, but "reside in a region managed by a mark-sweep
// algorithm" (§2.1). Each large object occupies its own arena space, so
// objects are never moved and freeing returns the arena wholesale; marks
// are kept in a side set and cleared at each sweep.
type LOS struct {
	heap  *mem.Heap
	meter *costmodel.Meter
	stats *GCStats

	spaces map[mem.SpaceID]mem.Addr // large-object space id → object address
	marked map[mem.Addr]struct{}
	used   uint64 // total live words
	fresh  []mem.Addr
}

// NewLOS creates an empty large-object space.
func NewLOS(heap *mem.Heap, meter *costmodel.Meter, stats *GCStats) *LOS {
	return &LOS{
		heap:   heap,
		meter:  meter,
		stats:  stats,
		spaces: make(map[mem.SpaceID]mem.Addr),
		marked: make(map[mem.Addr]struct{}),
	}
}

// Alloc allocates a large object in its own arena.
//
//gc:nocharge the collector Alloc entry points charge the allocation before routing large objects here; charging again would double-count the words
func (l *LOS) Alloc(k obj.Kind, length uint64, site obj.SiteID, mask uint64) mem.Addr {
	size := obj.SizeWords(k, length)
	s := l.heap.AddSpace(size)
	a, ok := obj.Alloc(l.heap, s, k, length, site, mask)
	if !ok {
		panic("core: LOS arena sizing bug")
	}
	l.spaces[s.ID()] = a
	l.used += size
	l.fresh = append(l.fresh, a)
	return a
}

// Contains reports whether space id holds a large object.
func (l *LOS) Contains(id mem.SpaceID) bool {
	_, ok := l.spaces[id]
	return ok
}

// Mark marks the large object at a live, reporting whether this is the
// first mark this cycle (the caller then queues the object for scanning).
func (l *LOS) Mark(a mem.Addr) bool {
	if _, ok := l.marked[a]; ok {
		return false
	}
	l.marked[a] = struct{}{}
	return true
}

// Marked reports whether the large object at a is marked this cycle.
// Meaningful between a major collection's trace and its sweep — the
// mark-compact fixup uses it to visit only live large objects.
func (l *LOS) Marked(a mem.Addr) bool {
	_, ok := l.marked[a]
	return ok
}

// UsedWords returns the total words held by live large objects.
func (l *LOS) UsedWords() uint64 { return l.used }

// Count returns the number of live large objects.
func (l *LOS) Count() int { return len(l.spaces) }

// Fresh returns the large objects allocated since the last TakeFresh call.
// A minor collection scans them for nursery references (their initializing
// stores are not write-barriered).
func (l *LOS) Fresh() []mem.Addr { return l.fresh }

// TakeFresh clears the fresh list (after the minor collection scanned it).
func (l *LOS) TakeFresh() {
	l.fresh = l.fresh[:0]
}

// ClearMarks resets all mark bits. A major collection clears marks before
// tracing so that marks set by intervening minor collections (which mark
// for scan-deduplication, not for liveness) cannot keep dead objects
// alive through the sweep.
func (l *LOS) ClearMarks() {
	clear(l.marked)
}

// SpaceIDs returns the ids of all live large-object spaces in ascending
// order (the order large objects were allocated).
func (l *LOS) SpaceIDs() []mem.SpaceID {
	ids := make([]mem.SpaceID, 0, len(l.spaces))
	for id := range l.spaces {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// ObjectIn returns the address of the large object occupying space id.
func (l *LOS) ObjectIn(id mem.SpaceID) (mem.Addr, bool) {
	a, ok := l.spaces[id]
	return a, ok
}

// Sweep frees every unmarked large object and clears all marks. Called at
// the end of a major collection, after the trace has marked the live set.
// Spaces are visited in ascending id order so the profiler's OnLOSDead
// callbacks (which accumulate float age sums) fire in a deterministic
// sequence — map iteration order here would be a reproducibility hazard.
func (l *LOS) Sweep(prof Profiler) {
	l.SweepWith(prof, nil, nil)
}

// SweepWith is Sweep with optional per-object quantum hooks: when the
// sweep runs inside a phase closed with per-worker tallies (the
// non-moving majors' sweep phase), each object's examination must be
// bracketed as one work quantum so the phase reconciles under W > 1.
// Nil hooks reproduce Sweep exactly.
func (l *LOS) SweepWith(prof Profiler, beginQ, endQ func()) {
	for _, id := range l.SpaceIDs() {
		a := l.spaces[id]
		if beginQ != nil {
			beginQ()
		}
		l.meter.Charge(costmodel.GCCopy, costmodel.SweepObject)
		if _, ok := l.marked[a]; ok {
			if endQ != nil {
				endQ()
			}
			continue
		}
		size := obj.Decode(l.heap, a).SizeWords()
		l.used -= size
		if prof != nil {
			prof.OnLOSDead(a)
		}
		l.heap.FreeSpace(id)
		delete(l.spaces, id)
		l.stats.LOSSwept++
		if endQ != nil {
			endQ()
		}
	}
	clear(l.marked)
	// Objects allocated this cycle that were swept are gone; drop any
	// stale fresh entries.
	kept := l.fresh[:0]
	for _, a := range l.fresh {
		if _, ok := l.spaces[a.Space()]; ok {
			kept = append(kept, a)
		}
	}
	l.fresh = kept
}
