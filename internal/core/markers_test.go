package core

import (
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// deepEnv builds a stack with `depth` frames each holding one pointer slot
// referencing a private record, on top of the test root frame.
func deepEnv(t *testing.T, c Collector, e *testEnv, fi *rt.FrameInfo, depth int) {
	t.Helper()
	for i := 0; i < depth; i++ {
		e.stack.Call(fi)
		p := c.Alloc(obj.Record, 1, 1, 0)
		c.InitField(p, 0, uint64(1000+i))
		e.stack.SetSlot(1, uint64(p))
	}
}

// checkDeep verifies every deep frame's pointee survived, unwinding as it
// goes.
func checkDeep(t *testing.T, c Collector, e *testEnv, depth int) {
	t.Helper()
	for i := depth - 1; i >= 0; i-- {
		a := mem.Addr(e.stack.Slot(1))
		if got := c.LoadField(a, 0); got != uint64(1000+i) {
			t.Fatalf("frame %d pointee = %d, want %d", i, got, 1000+i)
		}
		e.stack.Return()
	}
}

func ptrFrame(e *testEnv) *rt.FrameInfo {
	return e.table.Register("deep", []rt.SlotTrace{rt.NP(), rt.PTR()}, nil)
}

func TestMarkersPreserveDeepRoots(t *testing.T) {
	e := newEnv(2)
	c := NewGenerational(e.stack, e.meter, nil, GenConfig{
		BudgetWords: 1 << 20, NurseryWords: 512, MarkerN: 5,
	})
	fi := ptrFrame(e)
	deepEnv(t, c, e, fi, 200)
	// Several collections with the deep stack in place.
	for i := 0; i < 10; i++ {
		c.Collect(false)
	}
	c.Collect(true)
	c.Collect(false)
	checkDeep(t, c, e, 200)
}

func TestMarkersReduceFrameDecodes(t *testing.T) {
	run := func(markerN int) (decoded, reused uint64) {
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 512, MarkerN: markerN,
		})
		fi := ptrFrame(e)
		deepEnv(t, c, e, fi, 500)
		for i := 0; i < 50; i++ {
			// Churn allocations at constant depth: repeated minor GCs.
			for j := 0; j < 200; j++ {
				c.Alloc(obj.Record, 2, 2, 0)
			}
			c.Collect(false)
		}
		checkDeep(t, c, e, 500)
		return c.Stats().FramesDecoded, c.Stats().FramesReused
	}
	decodedOff, reusedOff := run(0)
	decodedOn, reusedOn := run(25)
	if reusedOff != 0 {
		t.Fatalf("baseline reused %d frames", reusedOff)
	}
	if reusedOn == 0 {
		t.Fatal("markers reused nothing")
	}
	if decodedOn*5 > decodedOff {
		t.Fatalf("markers barely reduced decodes: %d vs %d", decodedOn, decodedOff)
	}
}

func TestMarkersReduceGCStackCost(t *testing.T) {
	run := func(markerN int) costmodel.Cycles {
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 512, MarkerN: markerN,
		})
		fi := ptrFrame(e)
		deepEnv(t, c, e, fi, 1000)
		for i := 0; i < 30; i++ {
			for j := 0; j < 200; j++ {
				c.Alloc(obj.Record, 2, 2, 0)
			}
			c.Collect(false)
		}
		checkDeep(t, c, e, 1000)
		return e.meter.Get(costmodel.GCStack)
	}
	off := run(0)
	on := run(25)
	if on*2 > off {
		t.Fatalf("GC-stack cost not halved: with=%d without=%d", on, off)
	}
}

func TestMarkersSameRootsAsFullScan(t *testing.T) {
	// Differential test: a scan with marker reuse must produce exactly the
	// same set of root locations as a fresh full scan of the same stack.
	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	fi := table.Register("f", []rt.SlotTrace{rt.NP(), rt.PTR(), rt.NP()}, nil)
	for i := 0; i < 100; i++ {
		stack.Call(fi)
		stack.SetSlot(1, uint64(mem.MakeAddr(1, uint64(i+1))))
	}
	var stats GCStats
	collect := func(sc *StackScanner, minor bool) map[RootLoc]bool {
		got := map[RootLoc]bool{}
		sc.Scan(minor, func(l RootLoc) { got[l] = true })
		return got
	}
	marked := NewStackScanner(stack, meter, &stats, 10)
	full := NewStackScanner(stack, meter, &stats, 0)
	first := collect(marked, false)
	// Pop a few frames (fires a marker), push some new ones, then compare
	// a major (cached-roots) scan against a fresh full scan.
	for i := 0; i < 15; i++ {
		stack.Return()
	}
	for i := 0; i < 7; i++ {
		stack.Call(fi)
		stack.SetSlot(1, uint64(mem.MakeAddr(1, uint64(500+i))))
	}
	second := collect(marked, false)
	reference := collect(full, false)
	if len(first) == 0 || len(second) != len(reference) {
		t.Fatalf("root counts: first=%d second=%d reference=%d", len(first), len(second), len(reference))
	}
	for l := range reference {
		if !second[l] {
			t.Fatalf("marker scan missed root %+v", l)
		}
	}
}

func TestMarkerScanAfterRaise(t *testing.T) {
	// An exception jumping past markers must not let the collector reuse
	// stale frames.
	e := newEnv(2)
	c := NewGenerational(e.stack, e.meter, nil, GenConfig{
		BudgetWords: 1 << 20, NurseryWords: 512, MarkerN: 5,
	})
	fi := ptrFrame(e)
	deepEnv(t, c, e, fi, 50)
	c.Collect(false) // places markers
	e.stack.PushHandler()
	deepEnv(t, c, e, fi, 50)
	e.stack.Raise() // unwind 50 frames past markers without firing stubs
	// Regrow with different pointees.
	deepEnv(t, c, e, fi, 60)
	for i := 0; i < 5; i++ {
		c.Collect(false)
	}
	c.Collect(true)
	checkDeep(t, c, e, 60)
	checkDeep(t, c, e, 50)
}

func TestPretenuredAllocationGoesTenured(t *testing.T) {
	e := newEnv(2)
	policy := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{
		42: {},
	})
	c := NewGenerational(e.stack, e.meter, nil, GenConfig{
		BudgetWords: 1 << 20, NurseryWords: 512, Pretenure: policy,
	})
	a := c.Alloc(obj.Record, 2, 42, 0)
	if a.Space() == c.nursery.ID() {
		t.Fatal("pretenured site allocated in nursery")
	}
	b := c.Alloc(obj.Record, 2, 7, 0)
	if b.Space() != c.nursery.ID() {
		t.Fatal("normal site not allocated in nursery")
	}
	if c.Stats().Pretenured != 1 {
		t.Fatalf("Pretenured = %d", c.Stats().Pretenured)
	}
}

func TestPretenuredRegionScanFindsYoungRefs(t *testing.T) {
	e := newEnv(2)
	policy := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{42: {}})
	c := NewGenerational(e.stack, e.meter, nil, GenConfig{
		BudgetWords: 1 << 20, NurseryWords: 512, Pretenure: policy,
	})
	young := c.Alloc(obj.Record, 1, 1, 0)
	c.InitField(young, 0, 808)
	e.stack.SetSlot(1, uint64(young))
	oldObj := c.Alloc(obj.Record, 1, 42, 0b1) // pretenured, points young
	c.InitField(oldObj, 0, e.stack.Slot(1))
	e.stack.SetSlot(2, uint64(oldObj))
	e.stack.SetSlot(1, uint64(mem.Nil)) // young now reachable only via pretenured obj
	c.Collect(false)
	oldObj = mem.Addr(e.stack.Slot(2))
	target := mem.Addr(c.LoadField(oldObj, 0))
	if target.IsNil() || target.Space() == c.nursery.ID() {
		t.Fatal("young object referenced by pretenured object lost")
	}
	if c.LoadField(target, 0) != 808 {
		t.Fatal("target corrupted")
	}
	if c.Stats().BytesScanned == 0 {
		t.Fatal("pretenured region was not scanned")
	}
}

func TestPretenuringReducesCopying(t *testing.T) {
	// A site whose objects all live to the end of the run: with
	// pretenuring they are never copied by minor collections.
	run := func(policy *PretenurePolicy) uint64 {
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 512, Pretenure: policy,
		})
		consList(t, c, e, 1, 5000, 42) // long-lived list from site 42
		c.Collect(false)
		checkConsList(t, c, e, 1, 5000)
		return c.Stats().BytesCopied
	}
	baseline := run(nil)
	pretenured := run(NewPretenurePolicy(map[obj.SiteID]PretenureDecision{42: {}}))
	if pretenured*4 > baseline {
		t.Fatalf("pretenuring barely reduced copying: %d vs %d", pretenured, baseline)
	}
}

func TestScanElisionSkipsOnlyOldSites(t *testing.T) {
	run := func(elide bool) uint64 {
		e := newEnv(2)
		policy := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{
			42: {OnlyOldRefs: true},
		})
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 1024,
			Pretenure: policy, ScanElision: elide,
		})
		// Pretenured chain that references only other pretenured objects.
		e.stack.SetSlot(1, uint64(mem.Nil))
		for i := 0; i < 3000; i++ {
			cell := c.Alloc(obj.Record, 2, 42, 0b10)
			c.InitField(cell, 0, uint64(i))
			c.InitField(cell, 1, e.stack.Slot(1))
			e.stack.SetSlot(1, uint64(cell))
		}
		c.Collect(false)
		// Structure must be intact either way.
		a := mem.Addr(e.stack.Slot(1))
		for i := 2999; i >= 0; i-- {
			if c.LoadField(a, 0) != uint64(i) {
				t.Fatalf("cell %d corrupted", i)
			}
			a = mem.Addr(c.LoadField(a, 1))
		}
		return c.Stats().BytesScanned
	}
	scanned := run(false)
	elided := run(true)
	if elided >= scanned {
		t.Fatalf("elision did not reduce scanning: %d vs %d", elided, scanned)
	}
	if elided != 0 {
		t.Fatalf("fully-elidable region still scanned %d bytes", elided)
	}
}

func TestCardTableBarrierKeepsYoungAlive(t *testing.T) {
	e := newEnv(4)
	c := NewGenerational(e.stack, e.meter, nil, GenConfig{
		BudgetWords: 1 << 20, NurseryWords: 512, UseCardTable: true,
	})
	oldObj := c.Alloc(obj.Record, 1, 1, 0b1)
	e.stack.SetSlot(1, uint64(oldObj))
	c.Collect(false)
	oldObj = mem.Addr(e.stack.Slot(1))
	young := c.Alloc(obj.Record, 1, 2, 0)
	c.InitField(young, 0, 515)
	c.StoreField(oldObj, 0, uint64(young), true)
	c.Collect(false)
	oldObj = mem.Addr(e.stack.Slot(1))
	target := mem.Addr(c.LoadField(oldObj, 0))
	if target.IsNil() || target.Space() == c.nursery.ID() {
		t.Fatal("card table lost young target")
	}
	if c.LoadField(target, 0) != 515 {
		t.Fatal("target corrupted")
	}
}

func TestCardTableCheaperThanSSBUnderHeavyMutation(t *testing.T) {
	run := func(cards bool) costmodel.Cycles {
		e := newEnv(4)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 1024, UseCardTable: cards,
		})
		oldObj := c.Alloc(obj.Record, 2, 1, 0b11)
		e.stack.SetSlot(1, uint64(oldObj))
		c.Collect(false)
		// Hammer the same two fields, Peg-style, between collections.
		for round := 0; round < 20; round++ {
			oldObj = mem.Addr(e.stack.Slot(1))
			for i := 0; i < 20000; i++ {
				c.StoreField(oldObj, uint64(i%2), uint64(mem.Nil), true)
			}
			c.Collect(false)
		}
		return e.meter.GC()
	}
	ssb := run(false)
	cards := run(true)
	if cards*2 > ssb {
		t.Fatalf("card marking not much cheaper under heavy mutation: cards=%d ssb=%d", cards, ssb)
	}
}

func TestExponentialMarkerPolicy(t *testing.T) {
	// The §7.1 "more dynamic policy": for a deep stack with churn near the
	// top, the exponential ladder needs only O(log depth) installed
	// markers (fewer stub returns on eventual unwind) while matching the
	// fixed policy's reuse. Build the deep stack without intervening
	// collections so both policies start from one placement epoch.
	run := func(policy MarkerPolicy) (live int, reused uint64, cost costmodel.Cycles) {
		e := newEnv(2)
		c := NewGenerational(e.stack, e.meter, nil, GenConfig{
			BudgetWords: 1 << 22, NurseryWords: 8 * 1024,
			MarkerN: 25, MarkerPolicy: policy,
		})
		fi := ptrFrame(e)
		shared := c.Alloc(obj.Record, 1, 1, 0)
		c.InitField(shared, 0, 9)
		e.stack.SetSlot(1, uint64(shared))
		for i := 0; i < 800; i++ {
			e.stack.Call(fi)
			e.stack.SetSlot(1, e.stack.RawSlot(e.stack.FrameBase(e.stack.FrameCount()-2)+1))
		}
		if c.Stats().NumGC != 0 {
			t.Fatal("setup collected; adjust nursery")
		}
		for round := 0; round < 40; round++ {
			for j := 0; j < 5; j++ {
				e.stack.Return()
			}
			for j := 0; j < 5; j++ {
				e.stack.Call(fi)
				e.stack.SetSlot(1, e.stack.RawSlot(e.stack.FrameBase(e.stack.FrameCount()-2)+1))
			}
			for k := 0; k < 2100; k++ {
				c.Alloc(obj.Record, 2, 2, 0)
			}
			c.Collect(false)
		}
		live = e.stack.MarkerCount()
		// The shared record must have survived in every frame.
		for i := 0; i < 800; i++ {
			a := mem.Addr(e.stack.Slot(1))
			if c.LoadField(a, 0) != 9 {
				t.Fatalf("frame %d pointee corrupted", i)
			}
			e.stack.Return()
		}
		return live, c.Stats().FramesReused, e.meter.Get(costmodel.GCStack)
	}
	fl, fr, fs := run(MarkerFixed)
	el, er, es := run(MarkerExponential)
	if fr == 0 || er == 0 {
		t.Fatalf("no reuse: fixed=%d exp=%d", fr, er)
	}
	if el*2 > fl {
		t.Fatalf("exponential keeps too many live markers: %d vs fixed %d", el, fl)
	}
	if es > fs*3/2 {
		t.Fatalf("exponential much slower: %d vs %d", es, fs)
	}
	t.Logf("fixed: live=%d reused=%d stack=%d; exp: live=%d reused=%d stack=%d",
		fl, fr, fs, el, er, es)
}
