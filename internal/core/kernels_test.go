package core

import (
	"slices"
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// driveKernelWorkload runs a fixed mutator program against c exercising
// every kernel path: record and array allocation, LOS bypass, pointer
// mutation through the write barrier, minor and major collections, and
// death of large objects.
func driveKernelWorkload(t testing.TB, c Collector, e *testEnv) {
	e.stack.SetSlot(1, uint64(mem.Nil))
	for round := 0; round < 6; round++ {
		// A burst of long-lived cons cells (site varies per round so a
		// pretenure policy can select a subset).
		for i := 0; i < 300; i++ {
			cell := c.Alloc(obj.Record, 2, obj.SiteID(10+round), 0b10)
			c.InitField(cell, 0, uint64(round*1000+i))
			c.InitField(cell, 1, e.stack.Slot(1))
			e.stack.SetSlot(1, uint64(cell))
		}
		// A pointer-free record from the OnlyOldRefs site (scan elision).
		c.InitField(c.Alloc(obj.Record, 4, 50, 0), 0, uint64(round))

		// An old pointer array mutated to reference young cells: the write
		// barrier's remembered set must drag them across the collection.
		arr := c.Alloc(obj.PtrArray, 16, 20, 0)
		e.stack.SetSlot(2, uint64(arr))
		c.Collect(false)
		for i := 0; i < 16; i++ {
			young := c.Alloc(obj.Record, 2, 21, 0)
			c.InitField(young, 0, uint64(i))
			c.StoreField(mem.Addr(e.stack.Slot(2)), uint64(i), uint64(young), true)
		}

		// Large raw and pointer arrays through the mark-sweep LOS; the
		// pointer array references the list so LOS scanning has work.
		big := c.Alloc(obj.RawArray, 2048, 30, 0)
		c.InitField(big, 0, 42)
		lp := c.Alloc(obj.PtrArray, 1500, 31, 0)
		c.StoreField(lp, 0, e.stack.Slot(1), true)
		e.stack.SetSlot(3, uint64(lp)) // previous round's array dies

		// Nursery churn.
		for i := 0; i < 800; i++ {
			c.Alloc(obj.Record, 3, 40, 0b110)
		}
		if round%2 == 1 {
			c.Collect(true)
		}
	}
	// The list must have survived intact: 1800 cells, head value 5299.
	n, head := 0, mem.Addr(e.stack.Slot(1))
	for a := head; !a.IsNil(); a = mem.Addr(c.LoadField(a, 1)) {
		n++
	}
	if n != 6*300 {
		t.Fatalf("list has %d cells, want %d", n, 6*300)
	}
	if v := c.LoadField(head, 0); v != 5299 {
		t.Fatalf("head value = %d, want 5299", v)
	}
}

// heapImage flattens every space of c's heap — ids, sizes, and all
// allocated words — into one comparable word stream.
func heapImage(c Collector) []uint64 {
	h := c.Heap()
	var img []uint64
	for id := 1; id < h.NumSpaces(); id++ {
		sid := mem.SpaceID(id)
		sp := h.Space(sid)
		img = append(img, uint64(id))
		if sp == nil {
			img = append(img, ^uint64(0))
			continue
		}
		img = append(img, sp.Used(), sp.Capacity())
		if sp.Used() > 0 {
			img = append(img, h.Words(mem.MakeAddr(sid, 1), sp.Used())...)
		}
	}
	return img
}

// kernelConfigs is the mini-sweep matrix for the equivalence test: every
// collector configuration with a distinct kernel path.
func kernelConfigs() []struct {
	name string
	make func(e *testEnv) Collector
} {
	gen := func(cfg GenConfig) func(e *testEnv) Collector {
		return func(e *testEnv) Collector { return NewGenerational(e.stack, e.meter, nil, cfg) }
	}
	pol := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{
		12: {},
		50: {OnlyOldRefs: true},
	})
	return []struct {
		name string
		make func(e *testEnv) Collector
	}{
		{"semispace", func(e *testEnv) Collector {
			return NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
				BudgetWords: 64 * 1024, InitialWords: 2 * 1024,
			})
		}},
		{"generational", gen(GenConfig{BudgetWords: 64 * 1024, NurseryWords: 4 * 1024})},
		{"gen+cards", gen(GenConfig{BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, UseCardTable: true})},
		{"gen+markers", gen(GenConfig{BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, MarkerN: 5})},
		{"gen+aging", gen(GenConfig{BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, AgingMinors: 2})},
		{"gen+pretenure+elide", gen(GenConfig{
			BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, MarkerN: 5,
			Pretenure: pol, ScanElision: true,
		})},
		{"gen+marksweep", gen(GenConfig{
			BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, OldCollector: OldMarkSweep,
		})},
		{"gen+markcompact", gen(GenConfig{
			BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, OldCollector: OldMarkCompact,
		})},
		{"gen+marksweep+pretenure", gen(GenConfig{
			BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, MarkerN: 5,
			OldCollector: OldMarkSweep, Pretenure: pol,
		})},
		{"gen+markcompact+aging", gen(GenConfig{
			BudgetWords: 64 * 1024, NurseryWords: 4 * 1024,
			OldCollector: OldMarkCompact, AgingMinors: 2,
		})},
		{"gen+markcompact+cards", gen(GenConfig{
			BudgetWords: 64 * 1024, NurseryWords: 4 * 1024,
			OldCollector: OldMarkCompact, UseCardTable: true,
		})},
	}
}

// TestKernelEquivalence proves the optimized copy/scan kernels
// observationally identical to the reference kernels: the same mutator
// program must leave byte-identical heap images and identical GC stats and
// simulated cycle counts under both, across the whole configuration
// mini-sweep.
func TestKernelEquivalence(t *testing.T) {
	for _, kc := range kernelConfigs() {
		t.Run(kc.name, func(t *testing.T) {
			run := func(ref bool) ([]uint64, GCStats, costmodel.Breakdown) {
				SetReferenceKernels(ref)
				defer SetReferenceKernels(false)
				e := newEnv(4)
				c := kc.make(e)
				driveKernelWorkload(t, c, e)
				c.Collect(true)
				return heapImage(c), *c.Stats(), e.meter.Snapshot()
			}
			optImg, optStats, optTimes := run(false)
			refImg, refStats, refTimes := run(true)
			if optStats != refStats {
				t.Errorf("GC stats diverge:\n opt %+v\n ref %+v", optStats, refStats)
			}
			if optTimes != refTimes {
				t.Errorf("cycle counts diverge:\n opt %+v\n ref %+v", optTimes, refTimes)
			}
			if !slices.Equal(optImg, refImg) {
				i := 0
				for i < len(optImg) && i < len(refImg) && optImg[i] == refImg[i] {
					i++
				}
				t.Errorf("heap images diverge at word %d (opt len %d, ref len %d)",
					i, len(optImg), len(refImg))
			}
		})
	}
}

// fillNurseryGarbage allocates dead records filling most of a 4K-word
// nursery (800 cells × 4 words) without triggering an implicit collection.
func fillNurseryGarbage(c Collector) {
	for i := 0; i < 800; i++ {
		c.Alloc(obj.Record, 2, 40, 0b01)
	}
}

// TestMinorGCSteadyStateAllocsZero pins the tentpole's zero-allocation
// property: once the pooled buffers have grown to the working-set size, a
// steady-state minor collection performs no Go heap allocations at all.
func TestMinorGCSteadyStateAllocsZero(t *testing.T) {
	e := newEnv(2)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 4 * 1024})
	consList(t, c, e, 1, 100, 1)
	for i := 0; i < 5; i++ { // warm up pools and the tenured arena
		fillNurseryGarbage(c)
		c.Collect(false)
	}
	allocs := testing.AllocsPerRun(10, func() {
		fillNurseryGarbage(c)
		c.Collect(false)
	})
	if allocs != 0 {
		t.Fatalf("steady-state minor GC allocates %.1f objects/run, want 0", allocs)
	}
}

// TestMinorGCSteadyStateAllocsZeroWithBarrier is the same property with a
// populated remembered set: SSB draining must not allocate either.
func TestMinorGCSteadyStateAllocsZeroWithBarrier(t *testing.T) {
	e := newEnv(2)
	c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 4 * 1024})
	arr := c.Alloc(obj.PtrArray, 16, 20, 0)
	e.stack.SetSlot(1, uint64(arr))
	c.Collect(false) // tenure the array
	mutate := func() {
		for i := 0; i < 16; i++ {
			y := c.Alloc(obj.Record, 2, 21, 0)
			c.StoreField(mem.Addr(e.stack.Slot(1)), uint64(i), uint64(y), true)
		}
		for i := 0; i < 700; i++ {
			c.Alloc(obj.Record, 2, 40, 0)
		}
	}
	for i := 0; i < 5; i++ {
		mutate()
		c.Collect(false)
	}
	allocs := testing.AllocsPerRun(10, func() {
		mutate()
		c.Collect(false)
	})
	if allocs != 0 {
		t.Fatalf("steady-state minor GC with barrier allocates %.1f objects/run, want 0", allocs)
	}
}

// benchKernels runs fn under both kernel implementations as sub-benchmarks.
func benchKernels(b *testing.B, fn func(b *testing.B)) {
	b.Run("opt", fn)
	b.Run("ref", func(b *testing.B) {
		SetReferenceKernels(true)
		defer SetReferenceKernels(false)
		fn(b)
	})
}

// BenchmarkEvacuate measures the bulk-copy path: every iteration is a full
// semispace collection copying a 2000-cell live list.
func BenchmarkEvacuate(b *testing.B) {
	benchKernels(b, func(b *testing.B) {
		e := newEnv(2)
		c := NewSemispace(e.stack, e.meter, nil, SemispaceConfig{
			BudgetWords: 1 << 20, InitialWords: 32 * 1024,
		})
		consList(b, c, e, 1, 2000, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Collect(true)
		}
	})
}

// BenchmarkScanObject measures the field-scan kernel alone on a sparse
// 64-field record (no evacuation: nothing is condemned).
func BenchmarkScanObject(b *testing.B) {
	benchKernels(b, func(b *testing.B) {
		heap := mem.NewHeap()
		sp := heap.AddSpace(1024)
		a, ok := obj.Alloc(heap, sp, obj.Record, 64, 1, 0x8000_0401_0040_0011)
		if !ok {
			b.Fatal("alloc failed")
		}
		var stats GCStats
		var ev evacuator
		ev.begin(heap, costmodel.NewMeter(), &stats, nil, nil, sp, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.scanObject(a)
		}
	})
}

// BenchmarkKernelSweep measures the full kernel-stress sweep behind
// `gcbench -bench` (one iteration = every configuration).
func BenchmarkKernelSweep(b *testing.B) {
	benchKernels(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RunKernelSweep()
		}
	})
}

// BenchmarkMinorGC measures a steady-state minor collection: a mostly-dead
// nursery over a small tenured live set, the simulator's hottest loop.
func BenchmarkMinorGC(b *testing.B) {
	benchKernels(b, func(b *testing.B) {
		e := newEnv(2)
		c := newGen(e, GenConfig{BudgetWords: 1 << 20, NurseryWords: 4 * 1024})
		consList(b, c, e, 1, 100, 1)
		for i := 0; i < 3; i++ {
			fillNurseryGarbage(c)
			c.Collect(false)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fillNurseryGarbage(c)
			c.Collect(false)
		}
	})
}
