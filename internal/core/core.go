// Package core implements the paper's collectors: the semispace baseline
// (Fenichel-Yochelson with Cheney's algorithm), the two-generation
// collector with immediate promotion and a sequential-store-buffer write
// barrier, generational stack collection via stack markers (§5), and
// profile-driven pretenuring with the §7.2 scan-elision extension.
//
// All collectors operate on the simulated arena heap (internal/mem), the
// simulated object model (internal/obj), and the simulated mutator runtime
// (internal/rt), charging deterministic costs (internal/costmodel) so that
// the paper's tables reproduce exactly.
package core

import (
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// Collector is the mutator-facing interface every collector implements.
// Allocation may trigger a collection; after any Alloc call, simulated
// pointers previously copied out of stack slots or registers into Go
// locals are stale and must be re-read — exactly the discipline compiled
// code obeys.
type Collector interface {
	// Alloc allocates an object and returns its address. For records,
	// mask names the pointer fields. Panics when the configured memory
	// budget cannot accommodate the live data.
	Alloc(k obj.Kind, length uint64, site obj.SiteID, mask uint64) mem.Addr

	// LoadField reads field i of the object at a, charging mutator cost.
	LoadField(a mem.Addr, i uint64) uint64

	// StoreField writes field i of the object at a. isPtr must be true
	// when v is a pointer value; pointer stores pass through the write
	// barrier on collectors that have one. Initializing stores into
	// just-allocated objects should use InitField instead.
	StoreField(a mem.Addr, i uint64, v uint64, isPtr bool)

	// InitField writes field i of a freshly allocated object, bypassing
	// the write barrier (initializing stores are not "pointer updates").
	InitField(a mem.Addr, i uint64, v uint64)

	// Collect forces a collection; major selects a full collection on
	// generational collectors and is ignored by the semispace collector.
	Collect(major bool)

	// Stats returns the collector's accumulated statistics.
	Stats() *GCStats

	// Heap returns the underlying simulated heap (read-only use).
	Heap() *mem.Heap

	// Name returns the configuration name for reports.
	Name() string
}

// GCStats accumulates the measurements the paper's tables report.
type GCStats struct {
	NumGC    uint64 // total collections (minor + major for generational)
	NumMajor uint64 // major collections only

	BytesCopied   uint64 // bytes copied during all collections
	BytesScanned  uint64 // bytes examined without copying (pretenured regions, SSB)
	ObjectsCopied uint64

	BytesAllocated   uint64 // total allocation (Table 2 "Total Alloc")
	RecordBytes      uint64 // Table 2 "Records Alloc"
	ArrayBytes       uint64 // Table 2 "Arrays Alloc" (pointer + raw arrays)
	ObjectsAllocated uint64

	MaxLiveBytes uint64 // max live data observed after a collection

	FramesDecoded uint64 // frames fully decoded via the trace table
	FramesReused  uint64 // frames skipped/reused thanks to stack markers
	RootsFound    uint64
	MarkersPlaced uint64

	DepthSum     uint64 // stack depth summed over collections (avg = DepthSum/NumGC)
	MaxDepthAtGC uint64 // deepest stack seen at a collection
	NewFrames    uint64 // frames pushed since the previous collection, summed

	EmergencyGrows uint64 // budget overruns forced by a live set above Min

	// Pause accounting (§9 motivates caching stack scans for incremental
	// collectors precisely because the root scan is an atomic pause).
	MaxPauseCycles uint64 // longest single collection, in cycles
	SumPauseCycles uint64 // total collection cycles (avg = Sum/NumGC)

	SSBProcessed uint64 // store-buffer entries examined by the collector
	LOSSwept     uint64 // large objects freed by mark-sweep
	Pretenured   uint64 // objects allocated directly into the old generation

	// Non-moving old-generation accounting (bitmap mark-sweep and
	// mark-compact only; zero under the copying old generation).
	ObjectsMarked uint64 // tenured objects marked in place (not copied)
	WordsMarked   uint64 // words of tenured objects marked in place
	WordsSwept    uint64 // dead tenured words returned to the free lists
	WordsSlid     uint64 // live tenured words moved by the compaction slide

	// OldBytesCopied is the share of BytesCopied that evacuated the old
	// generation's from-space during copying major collections. The
	// non-moving collectors drive it to zero — the quantity the oldgen
	// experiment reports (in-place marking and sliding are counted by the
	// fields above, never here).
	OldBytesCopied uint64

	// Parallel-collection accounting (W > 1 only; zero otherwise).
	ParallelQuanta uint64 // work quanta distributed across simulated workers
	WorkSteals     uint64 // quanta claimed by a different worker than the previous one
}

// AvgPauseCycles returns the mean collection pause in cycles.
func (s *GCStats) AvgPauseCycles() float64 {
	if s.NumGC == 0 {
		return 0
	}
	return float64(s.SumPauseCycles) / float64(s.NumGC)
}

// AvgDepthAtGC returns the mean stack depth at collection time.
func (s *GCStats) AvgDepthAtGC() float64 {
	if s.NumGC == 0 {
		return 0
	}
	return float64(s.DepthSum) / float64(s.NumGC)
}

// AvgNewFrames returns the mean number of frames per collection that were
// not present at the previous collection (Table 2 "New Frames in Stack").
func (s *GCStats) AvgNewFrames() float64 {
	if s.NumGC == 0 {
		return 0
	}
	return float64(s.NewFrames) / float64(s.NumGC)
}

// Profiler receives heap-lifetime events from the collectors. The heap
// profiler in internal/prof implements it; collectors accept a nil
// Profiler when profiling is off.
type Profiler interface {
	// OnAlloc records an allocation of words words at addr from site.
	// pretenured marks the direct-to-tenured allocation path (§6), whether
	// chosen by a static policy or by the online advisor (§9).
	OnAlloc(addr mem.Addr, site obj.SiteID, k obj.Kind, words uint64, pretenured bool)
	// OnMove records that the object at from was copied to to.
	OnMove(from, to mem.Addr)
	// OnSpaceCondemned declares that every tracked object still recorded
	// in space id (i.e. not moved out during this collection) has died.
	OnSpaceCondemned(id mem.SpaceID)
	// OnLOSDead records the death of the non-moving object at addr — a
	// large object freed by the LOS sweep, or a tenured object reclaimed
	// in place by the non-moving old-generation collectors.
	OnLOSDead(addr mem.Addr)
	// OnGCEnd marks the end of a collection cycle.
	OnGCEnd()
}

// SiteAdvisor is the allocation-path hook for online adaptive pretenuring
// (§9): the generational collector consults it on every small-object
// allocation (when configured) and sends the site to the tenured
// generation on a true answer. Implementations must be deterministic
// functions of the simulated event stream — the advisor in internal/adapt
// charges its probe cost to the meter's Adapt component itself.
type SiteAdvisor interface {
	ShouldPretenure(site obj.SiteID) bool
}

// RootLoc identifies a location holding a root pointer: either an absolute
// stack-slot index or a register number. The collector reads the location,
// forwards the pointer, and writes it back.
type RootLoc struct {
	IsReg bool
	Index int
}
