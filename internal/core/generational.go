package core

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
	"tilgc/internal/trace"
)

// GenConfig parameterizes the two-generation collector of §2.1 and its
// optional extensions: generational stack collection (MarkerN) and
// profile-driven pretenuring (Pretenure, ScanElision).
type GenConfig struct {
	// BudgetWords is the total memory allowance (k·Min).
	BudgetWords uint64
	// NurseryWords sizes the first generation. Following Tarditi-Diwan,
	// the nursery is never larger than the secondary cache: 512KB =
	// 65536 words. Benchmarks sometimes use a smaller nursery.
	NurseryWords uint64
	// TargetTenuredLiveness drives tenured-generation resizing after a
	// major collection; the paper uses 0.3.
	TargetTenuredLiveness float64
	// LargeObjectWords is the LOS threshold for array allocations.
	LargeObjectWords uint64
	// MarkerN enables generational stack collection with a marker every
	// n frames. Zero disables it. The paper uses n = 25.
	MarkerN int
	// MarkerPolicy selects fixed-interval (the paper's) or exponential
	// marker placement (§7.1's "more dynamic policy").
	MarkerPolicy MarkerPolicy
	// AgingMinors switches off the paper's immediate-promotion policy:
	// nursery survivors are copied to an aging space and promoted to the
	// tenured generation only after surviving this many further minor
	// collections. §7.2 predicts pretenuring pays off even more under
	// such schemes because tenured-bound objects are copied several times
	// before promotion. Zero (default) is the paper's configuration.
	AgingMinors int
	// Pretenure, when non-nil, allocates the selected sites directly
	// into the tenured generation (§6).
	Pretenure *PretenurePolicy
	// Advisor, when non-nil, is consulted on every small-object allocation
	// whose site the static policy did not select: a true answer sends the
	// allocation to the tenured generation (§9 online adaptive
	// pretenuring). The advisor may change its answers between
	// collections (promotion and demotion).
	Advisor SiteAdvisor
	// ScanElision enables the §7.2 extension: pretenured objects whose
	// site is flagged OnlyOldRefs are exempted from the region scan.
	ScanElision bool
	// UseCardTable replaces the sequential store buffer with card
	// marking (the §4 remedy for Peg's mutation-heavy behaviour).
	UseCardTable bool
	// CardShift is log2 words per card when UseCardTable is set.
	CardShift uint
	// DeferMajor bounds individual pauses: when a minor collection pushes
	// the tenured generation over its threshold, the major collection is
	// deferred to the next GC trigger instead of running inside the same
	// pause. The mutator runs between the two pauses, so a latency window
	// never has to absorb a minor and a full collection back to back. The
	// same collections happen with the same work — only the pause
	// boundaries move. Default false is the in-pause escalation the
	// original traces pin.
	DeferMajor bool
	// OldCollector selects the tenured-generation algorithm: the paper's
	// copying collector (zero value, the default), bitmap mark-sweep, or
	// sliding mark-compact. Client-observable results are byte-identical
	// across all three; GC cost, pause shape, and footprint differ (see
	// gcbench -experiment oldgen).
	OldCollector OldCollector
	// Workers > 1 enables the deterministic parallel copying phases: the
	// collection executes the identical serial work order (heap images
	// are byte-identical at every W), but parallel-phase cycles are
	// distributed over W simulated workers, so pause wall time is the
	// critical path (max of workers) while the hidden sum-max cycles are
	// accounted in the meter's overlap counter. Zero or 1 is the serial
	// collector, byte-identical to pre-parallel builds.
	Workers int
	// Trace, when non-nil, receives phase spans and per-site telemetry.
	// Tracing charges nothing to the meter.
	Trace *trace.Recorder
}

func (c *GenConfig) setDefaults() {
	if c.NurseryWords == 0 {
		c.NurseryWords = 64 * 1024 // 512KB
	}
	if c.TargetTenuredLiveness == 0 {
		c.TargetTenuredLiveness = 0.3
	}
	if c.LargeObjectWords == 0 {
		c.LargeObjectWords = 1024
	}
	if c.BudgetWords == 0 {
		c.BudgetWords = 64 << 20
	}
	if c.CardShift == 0 {
		c.CardShift = 7 // 128-word (1KB) cards
	}
}

// Generational is the two-generation copying collector: new objects are
// bump-allocated in the nursery; every minor collection promotes all
// survivors to the tenured generation immediately; the tenured generation
// is itself collected by copying between two spaces when it exceeds its
// budget-derived threshold. Old-to-young pointers created by mutation are
// tracked by a sequential store buffer (or optionally a card table).
type Generational struct {
	cfg   GenConfig
	heap  *mem.Heap
	stack *rt.Stack
	meter *costmodel.Meter
	prof  Profiler
	tr    *trace.Recorder

	scanner *StackScanner
	los     *LOS
	ssb     *rt.SSB
	cards   *rt.CardTable

	nursery *mem.Space
	idA     mem.SpaceID
	idB     mem.SpaceID
	ten     *mem.Space // current tenured allocation space
	tenCap  uint64     // logical tenured threshold T (triggers major GC)

	// old is the non-moving tenured side state (mark/allocation bitmap and
	// free lists); nil under the copying old generation. When set, the
	// tenured space is permanently idA — it is never flipped or replaced.
	old *oldSpace
	// compactCapture and rootFix support the mark-compact root fixup:
	// during a compacting major's root scan every location left holding a
	// tenured pointer is captured, then revisited after slide destinations
	// are known (the slide is the only time tenured objects move without
	// forwarding headers).
	compactCapture bool
	rootFix        []rootFixEntry

	// Aging spaces (only when cfg.AgingMinors > 0): survivors shuttle
	// between the pair until old enough to tenure.
	agA, agB mem.SpaceID
	aging    *mem.Space // current aging from-space (nil when disabled)

	pretenured regionSet
	// sticky remembers old-space field addresses still pointing into the
	// aging space; re-examined at every minor until the targets tenure.
	// Empty when AgingMinors == 0 (immediate promotion needs none).
	// stickySpare is the drained previous-cycle buffer, kept so the two
	// can ping-pong without reallocating every minor collection.
	sticky      []mem.Addr
	stickySpare []mem.Addr
	inGC        bool
	// pendingMajor is set when DeferMajor postpones an over-threshold
	// major; the next Collect call of either flavor runs it.
	pendingMajor bool

	// pretenureOn caches Pretenure.Len() > 0 so the allocation fast path
	// skips the per-site policy probe entirely when no site is selected.
	pretenureOn bool

	// advPolicy accumulates every site the advisor has ever sent to the
	// tenured generation. Demotion does not remove entries: a region
	// allocated before the demotion legitimately holds the site's objects
	// until the next minor scan clears it, so the integrity checker's
	// policy view (Inspect) must keep naming it.
	advPolicy *PretenurePolicy

	// Pooled per-collection scratch (see evacuator.begin): the evacuator
	// itself, the sorted dirty-card ids, and the expanded card field
	// addresses. Reused so steady-state minor collections allocate
	// nothing on the Go heap.
	ev      evacuator
	cardBuf []uint64
	cardFAs []mem.Addr

	// tally shards parallel-phase cycles over simulated workers (nil for
	// W <= 1; see costmodel.WorkerTally).
	tally *costmodel.WorkerTally

	// threads, when non-nil, is the simulated mutator thread set: every
	// live thread's stack is a root source (each with its own scanner and
	// markers), pointer stores route through the current thread's barrier
	// state, and every thread's barrier state — dead threads' included —
	// is drained at each collection. Nil is the single-thread collector,
	// byte-identical to pre-thread builds.
	threads   *rt.ThreadSet
	tscanners []*StackScanner // per-thread scanners, indexed by thread id

	stats GCStats
}

// NewGenerational creates a generational collector over its own heap.
//
//gc:nocharge construction builds the heap before the simulated clock starts; the paper's cost model charges mutator and GC work, not arena setup
func NewGenerational(stack *rt.Stack, meter *costmodel.Meter, prof Profiler, cfg GenConfig) *Generational {
	cfg.setDefaults()
	heap := mem.NewHeap()
	c := &Generational{cfg: cfg, heap: heap, stack: stack, meter: meter, prof: prof, tr: cfg.Trace}
	c.scanner = NewStackScanner(stack, meter, &c.stats, cfg.MarkerN)
	c.scanner.SetMarkerPolicy(cfg.MarkerPolicy)
	c.los = NewLOS(heap, meter, &c.stats)
	if cfg.UseCardTable {
		c.cards = rt.NewCardTable(meter, cfg.CardShift)
	} else {
		c.ssb = rt.NewSSB(meter)
	}
	c.pretenureOn = cfg.Pretenure.Len() > 0
	if cfg.Advisor != nil {
		c.advPolicy = NewPretenurePolicy(nil)
	}
	if cfg.Workers > 1 {
		c.tally = costmodel.NewWorkerTally(meter, cfg.Workers)
		c.scanner.SetTally(c.tally)
	}
	c.nursery = heap.AddSpace(cfg.NurseryWords)
	c.tenCap = c.initialTenCap()
	// The tenured arena starts small and grows on demand (GrowSpace
	// preserves offsets, so addresses stay valid); the logical threshold
	// tenCap is what triggers major collections.
	initial := 4*cfg.NurseryWords + 1024
	if initial > c.tenCap+cfg.NurseryWords+1024 {
		initial = c.tenCap + cfg.NurseryWords + 1024
	}
	a := heap.AddSpace(initial)
	b := heap.AddSpace(0)
	c.idA, c.idB = a.ID(), b.ID()
	c.ten = a
	if cfg.OldCollector != OldCopy {
		// Non-moving old generation: idA is the permanent tenured space
		// (idB stays a zero-capacity reservation, never materialized).
		c.old = newOldSpace(heap, c.idA)
	}
	if cfg.AgingMinors > 0 {
		ag := heap.AddSpace(cfg.NurseryWords + 64)
		agb := heap.AddSpace(0)
		c.agA, c.agB = ag.ID(), agb.ID()
		c.aging = ag
		// Without immediate promotion, frames cached by the stack
		// scanner can hold aging-space pointers, so minor scans must
		// revisit cached roots rather than skip frames.
		c.scanner.SetRevisitOnMinor(true)
	}
	return c
}

// AttachThreads connects the simulated thread set: each existing and
// future thread is equipped with its own barrier state (a private SSB,
// or a private dirty-card stage over the shared card table), and root
// scanning covers every live thread's stack. Must be called before the
// first collection; thread 0 must wrap the collector's primary stack.
func (c *Generational) AttachThreads(ts *rt.ThreadSet) {
	if c.stats.NumGC > 0 {
		panic("core: AttachThreads after a collection")
	}
	if ts.Thread(0).Stack() != c.stack {
		panic("core: thread 0 does not own the collector's stack")
	}
	c.threads = ts
	equip := func(t *rt.Thread) {
		if c.cards != nil {
			t.SetStage(rt.NewCardStage(c.cards))
		} else if t.Stack() == c.stack {
			t.SetSSB(c.ssb)
		} else {
			t.SetSSB(rt.NewSSB(c.meter))
		}
	}
	for _, t := range ts.Threads() {
		equip(t)
	}
	ts.OnSpawn(equip)
}

// threadScanner returns (creating on first use) the stack scanner for
// one thread. Thread 0 reuses the primary scanner so its marker cache is
// continuous with the pre-attach state.
func (c *Generational) threadScanner(t *rt.Thread) *StackScanner {
	id := t.ID()
	for len(c.tscanners) <= id {
		c.tscanners = append(c.tscanners, nil)
	}
	if c.tscanners[id] == nil {
		if t.Stack() == c.stack {
			c.tscanners[id] = c.scanner
		} else {
			sc := NewStackScanner(t.Stack(), c.meter, &c.stats, c.cfg.MarkerN)
			sc.SetMarkerPolicy(c.cfg.MarkerPolicy)
			sc.SetTally(c.tally)
			if c.cfg.AgingMinors > 0 {
				sc.SetRevisitOnMinor(true)
			}
			c.tscanners[id] = sc
		}
	}
	return c.tscanners[id]
}

// noteCollection runs the per-collection scanner bookkeeping over every
// live thread (depth statistics accumulate across threads).
func (c *Generational) noteCollection() {
	if c.threads == nil {
		c.scanner.NoteCollection()
		return
	}
	for _, t := range c.threads.Threads() {
		if t.Dead() {
			continue
		}
		c.threadScanner(t).NoteCollection()
	}
}

// scanRoots scans every live thread's stack in thread-id order (just the
// primary stack when no thread set is attached). Dead threads' stacks
// are skipped: a joined thread's frames no longer keep anything alive.
func (c *Generational) scanRoots(ev *evacuator, minor bool) {
	if c.threads == nil {
		c.scanner.Scan(minor, func(loc RootLoc) { c.forwardRootOn(ev, c.stack, loc) })
		return
	}
	for _, t := range c.threads.Threads() {
		if t.Dead() {
			continue
		}
		st := t.Stack()
		c.threadScanner(t).Scan(minor, func(loc RootLoc) { c.forwardRootOn(ev, st, loc) })
	}
}

// isYoung reports whether space id is collected at every minor GC (the
// nursery and, when aging is enabled, both aging semispaces — their ids
// are stable across cycles).
func (c *Generational) isYoung(id mem.SpaceID) bool {
	if id == c.nursery.ID() {
		return true
	}
	return c.aging != nil && (id == c.agA || id == c.agB)
}

// initialTenCap derives the tenured threshold from the budget: nursery +
// two tenured spaces must fit (the to-space is materialized only during a
// major collection, but the paper's accounting reserves it).
func (c *Generational) initialTenCap() uint64 {
	if c.cfg.BudgetWords <= c.cfg.NurseryWords+1024 {
		return 1024
	}
	avail := c.cfg.BudgetWords - c.cfg.NurseryWords
	if c.cfg.OldCollector != OldCopy {
		// The non-moving collectors need no copy reserve: the whole tenured
		// share of the budget is usable live space — their footprint
		// advantage over the copying old generation.
		return avail
	}
	return avail / 2
}

// Name implements Collector.
func (c *Generational) Name() string {
	n := "generational"
	if c.cfg.OldCollector != OldCopy {
		n += "+" + c.cfg.OldCollector.String()
	}
	if c.cfg.MarkerN > 0 {
		n += "+markers"
	}
	if c.cfg.Pretenure.Len() > 0 {
		n += "+pretenure"
		if c.cfg.ScanElision {
			n += "+elide"
		}
	}
	if c.cfg.Advisor != nil {
		n += "+adapt"
	}
	if c.cfg.UseCardTable {
		n += "+cards"
	}
	if c.cfg.AgingMinors > 0 {
		n += fmt.Sprintf("+aging%d", c.cfg.AgingMinors)
	}
	if c.cfg.Workers > 1 {
		n += fmt.Sprintf("+gcw%d", c.cfg.Workers)
	}
	return n
}

// beginQ/endQ bracket one unit of parallel-phase work on the collector
// side (remembered-set entries, pretenured-region objects); no-ops with
// a nil tally.
func (c *Generational) beginQ() {
	if c.tally != nil {
		c.tally.BeginQuantum()
	}
}

func (c *Generational) endQ() {
	if c.tally != nil {
		c.tally.EndQuantum()
	}
}

// chargeOverhead charges the fixed per-collection overhead: serially for
// a single worker, split across workers otherwise — entering a parallel
// collection forks the space preparation and bookkeeping across the
// worker team, so the fixed cost genuinely shrinks on the wall clock
// while the charged total is preserved exactly.
func (c *Generational) chargeOverhead() {
	if c.tally == nil {
		c.meter.Charge(costmodel.GCCopy, costmodel.GCOverhead)
		return
	}
	c.tally.ChargeSplit(costmodel.GCCopy, costmodel.GCOverhead)
}

// endParallelPhase closes a phase whose work is distributed over the
// simulated workers: the tally's overlap is credited back to the meter
// first (shrinking the phase's wall-clock delta to the critical path),
// then the phase-end event records the per-worker tallies. Serial
// collectors (nil tally) emit a plain phase end.
func (c *Generational) endParallelPhase(p trace.Phase) {
	if c.tally == nil {
		c.tr.EndPhase(p)
		return
	}
	workers := c.tally.ClosePhase()
	c.tr.EndPhaseWorkers(p, workers)
}

// Heap implements Collector.
func (c *Generational) Heap() *mem.Heap { return c.heap }

// Stats implements Collector.
func (c *Generational) Stats() *GCStats { return &c.stats }

// PointerUpdates returns the lifetime count of barriered pointer stores
// (across every thread: card stages update the shared table's count, SSB
// counts are summed per thread).
func (c *Generational) PointerUpdates() uint64 {
	if c.cards != nil {
		return c.cards.TotalRecorded()
	}
	if c.threads == nil {
		return c.ssb.TotalRecorded()
	}
	var n uint64
	for _, t := range c.threads.Threads() {
		n += t.SSB().TotalRecorded()
	}
	return n
}

// Alloc implements Collector. The common case — a small object from an
// unpretenured site landing in a nursery with room — runs straight through
// the bump allocation: records can never be large, so they skip the LOS
// threshold compare, and the per-site pretenure probe only happens when
// the policy selects at least one site.
func (c *Generational) Alloc(k obj.Kind, length uint64, site obj.SiteID, mask uint64) mem.Addr {
	size := obj.SizeWords(k, length)
	c.chargeAlloc(k, size)
	c.noteOldMutation()

	// Large arrays bypass the nursery into the mark-sweep space (§2.1).
	if k != obj.Record && length >= c.cfg.LargeObjectWords {
		return c.allocLarge(k, length, site, mask, size)
	}

	// Profile-selected sites allocate directly into the old generation.
	if c.pretenureOn {
		if _, ok := c.cfg.Pretenure.Lookup(site); ok {
			return c.allocPretenured(k, length, site, mask, size)
		}
	}
	// The online advisor (§9) decides per allocation; its answers change
	// at collection boundaries as sites are promoted and demoted.
	if c.cfg.Advisor != nil && c.cfg.Advisor.ShouldPretenure(site) {
		c.advPolicy.sites[site] = PretenureDecision{}
		return c.allocPretenured(k, length, site, mask, size)
	}

	a, ok := obj.Alloc(c.heap, c.nursery, k, length, site, mask)
	if !ok {
		a = c.allocNurserySlow(k, length, site, mask, size)
	}
	c.tr.AllocSite(site, size, false)
	if c.prof != nil {
		c.prof.OnAlloc(a, site, k, size, false)
	}
	return a
}

// allocLarge is the LOS allocation path, collecting first when the
// large-object share of the budget is exhausted.
func (c *Generational) allocLarge(k obj.Kind, length uint64, site obj.SiteID, mask uint64, size uint64) mem.Addr {
	if c.los.UsedWords()+size > c.losLimit() {
		c.Collect(true)
	}
	a := c.los.Alloc(k, length, site, mask)
	c.tr.AllocSite(site, size, false)
	if c.prof != nil {
		c.prof.OnAlloc(a, site, k, size, false)
	}
	return a
}

// allocNurserySlow collects the nursery and retries the bump allocation.
func (c *Generational) allocNurserySlow(k obj.Kind, length uint64, site obj.SiteID, mask uint64, size uint64) mem.Addr {
	c.Collect(false)
	a, ok := obj.Alloc(c.heap, c.nursery, k, length, site, mask)
	if !ok {
		panic(fmt.Sprintf("core: object of %d words exceeds nursery (%d words)",
			size, c.cfg.NurseryWords))
	}
	return a
}

// ensureTenured grows the tenured arena's physical capacity so at least
// extra more words fit, bounded by the logical threshold plus promotion
// slack. Growth preserves offsets; no object moves.
func (c *Generational) ensureTenured(extra uint64) {
	if c.ten.Free() >= extra {
		return
	}
	newCap := c.ten.Capacity() * 2
	if newCap < c.ten.Used()+extra {
		newCap = c.ten.Used() + extra
	}
	limit := c.tenCap + c.cfg.NurseryWords + 1024
	if newCap > limit {
		newCap = limit
	}
	if newCap < c.ten.Used()+extra {
		newCap = c.ten.Used() + extra // emergency: logical cap exceeded
	}
	c.ten = c.heap.GrowSpace(c.ten.ID(), newCap)
}

// allocPretenured performs the longer allocation sequence into the
// tenured generation and remembers the region for the next minor scan.
func (c *Generational) allocPretenured(k obj.Kind, length uint64, site obj.SiteID, mask uint64, size uint64) mem.Addr {
	c.meter.Charge(costmodel.Client, costmodel.AllocPretenure)
	// The trigger compares occupancy, not the raw frontier: under the
	// non-moving collectors ten.Used() includes free-list words that are
	// reusable space, not pressure (tenLive == Used under copying).
	if c.tenLive()+size > c.tenCap {
		c.Collect(true)
	}
	if c.old != nil {
		if a, ok := c.old.allocObject(k, length, site, mask); ok {
			c.pretenured.add(a.Space(), a.Offset(), size)
			c.stats.Pretenured++
			c.tr.AllocSite(site, size, true)
			if c.prof != nil {
				c.prof.OnAlloc(a, site, k, size, true)
			}
			return a
		}
	}
	c.ensureTenured(size)
	a, ok := obj.Alloc(c.heap, c.ten, k, length, site, mask)
	if !ok {
		panic("core: tenured space physical overflow on pretenured allocation")
	}
	if c.old != nil {
		// Bump-allocated into the non-moving space: set the allocation bits
		// the free-list path sets in allocObject.
		c.old.setRange(a.Offset(), size)
		c.old.marksFresh = false
	}
	c.pretenured.add(a.Space(), a.Offset(), size)
	c.stats.Pretenured++
	c.tr.AllocSite(site, size, true)
	if c.prof != nil {
		c.prof.OnAlloc(a, site, k, size, true)
	}
	return a
}

func (c *Generational) chargeAlloc(k obj.Kind, size uint64) {
	c.meter.Charge(costmodel.Client, costmodel.AllocObject)
	c.meter.ChargeN(costmodel.Client, costmodel.AllocWord, size)
	c.stats.BytesAllocated += size * mem.WordSize
	c.stats.ObjectsAllocated++
	if k == obj.Record {
		c.stats.RecordBytes += size * mem.WordSize
	} else {
		c.stats.ArrayBytes += size * mem.WordSize
	}
}

// losLimit is the large-object share of the budget: up to half the total
// (tenured sizing adapts to the live LOS share after each major).
func (c *Generational) losLimit() uint64 {
	return c.cfg.BudgetWords / 2
}

// LoadField implements Collector.
func (c *Generational) LoadField(a mem.Addr, i uint64) uint64 {
	c.meter.Charge(costmodel.Client, costmodel.MutatorLoad)
	return obj.Field(c.heap, a, i)
}

// StoreField implements Collector: pointer stores pass through the write
// barrier, which records the mutated field's address.
func (c *Generational) StoreField(a mem.Addr, i uint64, v uint64, isPtr bool) {
	c.meter.Charge(costmodel.Client, costmodel.MutatorStore)
	c.noteOldMutation()
	fa := obj.FieldAddr(c.heap, a, i)
	c.heap.Store(fa, v)
	if isPtr {
		if c.threads != nil {
			// Stores route through the running thread's private barrier
			// state; the collector gathers every thread's state at the
			// next collection.
			t := c.threads.Current()
			if c.cards != nil {
				t.Stage().Record(fa)
			} else {
				t.SSB().Record(fa)
			}
		} else if c.cards != nil {
			c.cards.Record(fa)
		} else {
			c.ssb.Record(fa)
		}
	}
}

// InitField implements Collector: initializing stores are not pointer
// updates and skip the barrier.
//
//gc:nobarrier initializing stores skip the barrier by design (§6): nursery objects are scanned at the next minor GC anyway, and pretenured objects are covered by the allocated-into region rescan
func (c *Generational) InitField(a mem.Addr, i uint64, v uint64) {
	c.meter.Charge(costmodel.Client, costmodel.MutatorStore)
	obj.SetField(c.heap, a, i, v)
}

// evacuator returns the collector's pooled evacuator, or a fresh one per
// collection under the reference kernels (the pre-optimization behaviour,
// preserved for equivalence tests and benchmark comparison).
func (c *Generational) evacuator() *evacuator {
	if refKernels {
		return new(evacuator)
	}
	return &c.ev
}

// Collect implements Collector.
func (c *Generational) Collect(major bool) {
	if c.inGC {
		panic("core: reentrant collection")
	}
	// Any collection invalidates mark freshness up front: a minor promotes
	// into the old generation without re-tracing it, and the mutator may
	// have dropped stack roots since the last major — a write the
	// collector never sees — so the bitmap can be a strict superset of
	// what this collection finds reachable. A non-moving major re-traces
	// and re-establishes freshness at its end.
	c.noteOldMutation()
	if major || c.pendingMajor {
		c.pendingMajor = false
		c.majorGC()
	} else {
		c.minorGC()
	}
}

// minorGC promotes every live nursery object into the tenured generation.
func (c *Generational) minorGC() {
	c.inGC = true
	defer func() { c.inGC = false }()
	c.tr.BeginGC(false)
	statsBefore := c.stats
	pauseStart := c.meter.GC()
	// The deferred close covers an escalated major too: its phases are
	// emitted inside this still-open collection span.
	defer func() {
		c.recordPause(pauseStart)
		c.sampleHeap()
		c.tr.EndGC(gcCounters(&statsBefore, &c.stats))
	}()
	c.stats.NumGC++
	c.tr.BeginPhase(trace.PhaseSetup)
	c.chargeOverhead()
	c.noteCollection()
	c.ensureTenured(c.nursery.Used() + c.agingUsed() + 64)

	var condemned [2]mem.SpaceID
	condemned[0] = c.nursery.ID()
	ncond := 1
	var agingTo *mem.Space
	if c.aging != nil {
		condemned[1] = c.aging.ID()
		ncond = 2
		toID := c.agA
		if c.aging.ID() == toID {
			toID = c.agB
		}
		agingTo = c.heap.ReplaceSpace(toID, c.nursery.Used()+c.aging.Used()+64)
	}
	ev := c.evacuator()
	ev.begin(c.heap, c.meter, &c.stats, c.prof, condemned[:ncond], c.ten, c.los)
	ev.tr = c.tr
	ev.tenuredID = c.ten.ID()
	ev.tally = c.tally
	// Non-moving old generation: promotions reuse free-list spans and set
	// allocation bits (oldMark stays false — minors leave tenured pointers
	// untouched, exactly like the copying collector).
	ev.old = c.old
	var oldSticky []mem.Addr
	if agingTo != nil {
		ev.addDest(agingTo)
		oldSticky = c.sticky
		c.sticky = c.stickySpare[:0]
		ev.isYoung = c.isYoung
		ev.sticky = &c.sticky
		threshold := uint8(min(c.cfg.AgingMinors, 250))
		ev.route = func(o obj.Object) *mem.Space {
			if obj.Age(c.heap, o.Addr) >= threshold {
				return c.ten
			}
			return agingTo
		}
		ev.postCopy = func(dst mem.Addr, o obj.Object) {
			if dst.Space() == agingTo.ID() {
				obj.SetAge(c.heap, dst, obj.Age(c.heap, dst)+1)
			}
		}
	}

	c.endParallelPhase(trace.PhaseSetup)

	// Roots: the (possibly cached) stack scan, the remembered set from
	// the write barrier, the sticky old-to-aging set, the pretenured
	// regions, and fresh large objects. With workers, the stack scan
	// shards per frame (the scanner brackets each frame as one quantum):
	// the register-status chain a frame inherits is the per-stacklet
	// entry state §5's markers already cache, so frames scan
	// independently once it is known.
	c.tr.BeginPhase(trace.PhaseRoots)
	c.scanRoots(ev, true)
	c.endParallelPhase(trace.PhaseRoots)
	c.tr.BeginPhase(trace.PhaseRemSet)
	for _, fa := range oldSticky {
		c.beginQ()
		c.meter.Charge(costmodel.GCCopy, costmodel.SSBEntry)
		c.forwardIfYoung(ev, fa, c.nursery.ID())
		c.endQ()
	}
	c.processBarrier(ev)
	c.endParallelPhase(trace.PhaseRemSet)
	c.tr.BeginPhase(trace.PhasePretenured)
	c.scanPretenuredRegions(ev)
	for _, a := range c.los.Fresh() {
		c.beginQ()
		c.scanForYoung(ev, a)
		c.endQ()
	}
	c.los.TakeFresh()
	c.endParallelPhase(trace.PhasePretenured)

	c.tr.BeginPhase(trace.PhaseCopy)
	ev.drain()
	c.endParallelPhase(trace.PhaseCopy)
	if c.prof != nil {
		c.prof.OnSpaceCondemned(c.nursery.ID())
		c.prof.OnGCEnd()
	}
	c.nursery.Reset()
	if agingTo != nil {
		c.heap.ReplaceSpace(c.aging.ID(), 0)
		c.aging = agingTo
		// The drained buffer becomes next cycle's spare, so the two sticky
		// buffers ping-pong without reallocating.
		c.stickySpare = oldSticky[:0]
	}

	if c.tenLive() > c.tenCap {
		if c.cfg.DeferMajor {
			// Bounded-pause mode: resume the mutator now; the major runs
			// as its own pause at the next trigger (a major collects the
			// nursery too, so the triggering allocation still succeeds).
			c.pendingMajor = true
		} else {
			c.majorGC()
		}
	}
}

// agingUsed returns the words held by the aging space (0 when disabled).
func (c *Generational) agingUsed() uint64 {
	if c.aging == nil {
		return 0
	}
	return c.aging.Used()
}

// processBarrier drains the write barrier, forwarding any nursery pointer
// stored into an older object. Every entry is examined (the SSB records
// duplicates — the Peg overhead); the card table examines dirty cards'
// words instead.
func (c *Generational) processBarrier(ev *evacuator) {
	if refKernels {
		c.refProcessBarrier(ev)
		return
	}
	nid := c.nursery.ID()
	if c.cards != nil {
		// The field-address list is materialized in full before any
		// forwarding: promotions move the tenured frontier mid-drain, and
		// interleaving the layout walk with copies would let a card
		// spanning the frontier pick up newly promoted fields.
		c.flushStages()
		c.collectCardFieldAddrs()
		for _, fa := range c.cardFAs {
			c.beginQ()
			c.forwardIfYoung(ev, fa, nid)
			c.endQ()
		}
		c.cards.Drain()
		return
	}
	cb := func(fa mem.Addr) {
		c.beginQ()
		c.meter.Charge(costmodel.GCCopy, costmodel.SSBEntry)
		c.stats.SSBProcessed++
		if !c.isYoung(fa.Space()) {
			// A young-space update needs no forwarding: the object's copy
			// (if live) is fully scanned during evacuation anyway.
			c.forwardIfYoung(ev, fa, nid)
		}
		c.endQ()
	}
	if c.threads == nil {
		c.ssb.DrainTo(cb)
		return
	}
	// Every thread's buffer drains in thread-id order, dead threads'
	// included: their stores were real pointer updates.
	for _, t := range c.threads.Threads() {
		t.SSB().DrainTo(cb)
	}
}

// flushStages merges every thread's staged dirty cards into the shared
// card table (no-op without threads: stores dirtied the table directly).
func (c *Generational) flushStages() {
	if c.threads == nil {
		return
	}
	for _, t := range c.threads.Threads() {
		t.Stage().Flush()
	}
}

// dropBarrier discards all remembered-set state — every thread's — after
// a major collection: no old-to-young pointers survive a full copy.
func (c *Generational) dropBarrier() {
	if c.cards != nil {
		c.flushStages()
		c.cards.Drain()
		return
	}
	if c.threads == nil {
		c.ssb.Drain()
		return
	}
	for _, t := range c.threads.Threads() {
		t.SSB().Drain()
	}
}

// collectCardFieldAddrs expands dirty cards to the pointer-field
// addresses they cover, filling the pooled cardBuf/cardFAs buffers (no
// per-collection allocation at steady state). Expansion is
// object-precise: each card is resolved against the object layout of
// its space, so only genuine pointer fields are materialized. The
// previous word-blind expansion treated every allocated word under a
// dirty card as a candidate pointer; a raw field whose bits happened to
// spell a young-space address would be "forwarded" — decoding garbage
// as an object header (crash) or silently rewriting client data (found
// by differential fuzzing, seeds 3892 and 29187; pinned in
// internal/fuzz/corpus). The cost model is unchanged: ScanPtrTest per
// allocated word under a dirty card, the price of examining the card.
func (c *Generational) collectCardFieldAddrs() {
	c.cardBuf = c.cards.AppendCards(c.cardBuf[:0])
	c.cardFAs = c.cardFAs[:0]
	for i, j := 0, 0; i < len(c.cardBuf); i = j {
		first, _ := c.cards.CardBounds(c.cardBuf[i])
		spid := first.Space()
		for j = i + 1; j < len(c.cardBuf); j++ {
			if s, _ := c.cards.CardBounds(c.cardBuf[j]); s.Space() != spid {
				break
			}
		}
		c.cardFAs = c.appendSpaceCardFAs(c.cardFAs, spid, c.cardBuf[i:j])
	}
}

// appendSpaceCardFAs resolves one space's dirty cards (ascending) into
// the pointer-field addresses they cover, appending to fas. Young
// spaces are skipped — their survivors are fully scanned during
// evacuation — as are spaces freed since the recording store (dead
// large objects).
func (c *Generational) appendSpaceCardFAs(fas []mem.Addr, spid mem.SpaceID, cards []uint64) []mem.Addr {
	if c.isYoung(spid) {
		return fas
	}
	sp := c.heap.Space(spid)
	if sp == nil {
		return fas
	}
	top := sp.Used() + 1 // offsets [1, top) are allocated
	for _, id := range cards {
		start, n := c.cards.CardBounds(id)
		lo, hi := max(start.Offset(), 1), start.Offset()+n
		if hi > top {
			hi = top
		}
		if hi > lo {
			// One quantum per dirty card: card examination parallelizes
			// card-by-card across the simulated workers.
			c.beginQ()
			c.meter.ChargeN(costmodel.GCCopy, costmodel.ScanPtrTest, hi-lo)
			c.endQ()
		}
	}
	if la, ok := c.los.ObjectIn(spid); ok {
		return c.appendObjectCardFAs(fas, obj.Decode(c.heap, la), cards)
	}
	// Bump-allocated spaces hold contiguous objects in [1, Used()]; walk
	// them in address order, advancing the card cursor alongside so the
	// walk stops once the dirty window is exhausted.
	k := 0
	for off := uint64(1); off < top && k < len(cards); {
		o := obj.Decode(c.heap, mem.MakeAddr(spid, off))
		end := off + o.SizeWords()
		for k < len(cards) {
			s, n := c.cards.CardBounds(cards[k])
			if s.Offset()+n <= off {
				k++ // card wholly before this object
				continue
			}
			break
		}
		if k < len(cards) {
			if s, _ := c.cards.CardBounds(cards[k]); s.Offset() < end {
				fas = c.appendObjectCardFAs(fas, o, cards[k:])
			}
		}
		off = end
	}
	return fas
}

// appendObjectCardFAs appends o's pointer-field addresses that fall
// inside the dirty cards (ascending), stopping at the first card past
// the object's payload.
func (c *Generational) appendObjectCardFAs(fas []mem.Addr, o obj.Object, cards []uint64) []mem.Addr {
	if o.Kind == obj.RawArray || o.Len == 0 {
		return fas
	}
	p0 := o.PayloadAddr(0).Offset()
	p1 := p0 + o.Len
	for _, id := range cards {
		start, n := c.cards.CardBounds(id)
		lo, hi := start.Offset(), start.Offset()+n
		if lo >= p1 {
			break
		}
		if hi <= p0 {
			continue
		}
		lo, hi = max(lo, p0), min(hi, p1)
		for w := lo; w < hi; w++ {
			if o.IsPtrField(w - p0) {
				fas = append(fas, o.PayloadAddr(w-p0))
			}
		}
	}
	return fas
}

// forwardIfYoung forwards the value at field address fa when it points
// into the nursery.
//
//gc:nobarrier collector-internal forwarding during a stop-the-world minor GC: the slot it rewrites is exactly the remembered-set entry being consumed
func (c *Generational) forwardIfYoung(ev *evacuator, fa mem.Addr, nursery mem.SpaceID) {
	sp := c.heap.Space(fa.Space())
	if sp == nil || !sp.Contains(fa) {
		return // stale entry into space that has since been freed/reset
	}
	v := c.heap.Load(fa)
	if !c.isYoung(mem.Addr(v).Space()) {
		return
	}
	nv := ev.forward(v)
	if nv != v {
		c.heap.Store(fa, nv)
	}
	// Without immediate promotion the target may still be young after
	// evacuation; keep the field in the sticky set.
	if c.aging != nil && nv != 0 && c.isYoung(mem.Addr(nv).Space()) {
		c.sticky = append(c.sticky, fa)
	}
}

// scanPretenuredRegions scans the tenured regions allocated into directly
// since the last collection, forwarding nursery references out of them.
// This is a scan, not a copy — the reason pretenuring's GC-time win is
// smaller than its copy reduction (§6). With ScanElision, objects whose
// site is flagged OnlyOldRefs are skipped (§7.2).
func (c *Generational) scanPretenuredRegions(ev *evacuator) {
	for _, r := range c.pretenured.regions {
		off := r.start
		for off < r.end {
			a := mem.MakeAddr(r.space, off)
			o := obj.Decode(c.heap, a)
			c.beginQ()
			if d, ok := c.cfg.Pretenure.Lookup(o.Site); ok && d.OnlyOldRefs && c.cfg.ScanElision {
				c.meter.Charge(costmodel.GCCopy, costmodel.ScanPtrTest)
			} else {
				c.scanForYoungObject(ev, o)
			}
			c.endQ()
			off += o.SizeWords()
		}
	}
	c.pretenured.clear()
}

// scanForYoung scans the object at a for nursery references.
func (c *Generational) scanForYoung(ev *evacuator, a mem.Addr) {
	c.scanForYoungObject(ev, obj.Decode(c.heap, a))
}

//gc:nobarrier minor-GC scan kernel: pointer rewrites happen while the world is stopped, on objects the scan itself is enumerating
func (c *Generational) scanForYoungObject(ev *evacuator, o obj.Object) {
	c.meter.ChargeN(costmodel.GCCopy, costmodel.ScanWord, o.SizeWords())
	c.stats.BytesScanned += o.SizeWords() * mem.WordSize
	if o.Kind == obj.RawArray {
		return
	}
	for i := uint64(0); i < o.Len; i++ {
		if !o.IsPtrField(i) {
			continue
		}
		fa := o.PayloadAddr(i)
		v := c.heap.Load(fa)
		nv := ev.forward(v)
		if nv != v {
			c.heap.Store(fa, nv)
		}
		if c.aging != nil && nv != 0 && c.isYoung(mem.Addr(nv).Space()) {
			c.sticky = append(c.sticky, fa)
		}
	}
}

// majorGC collects both generations: nursery and tenured survivors are
// evacuated into a fresh tenured space, the large-object space is swept,
// and the tenured threshold is re-derived from the observed liveness.
func (c *Generational) majorGC() {
	wasInGC := c.inGC
	c.inGC = true
	defer func() { c.inGC = wasInGC }()
	if !wasInGC {
		c.tr.BeginGC(true)
		statsBefore := c.stats
		pauseStart := c.meter.GC()
		defer func() {
			c.recordPause(pauseStart)
			c.sampleHeap()
			c.tr.EndGC(gcCounters(&statsBefore, &c.stats))
		}()
		c.stats.NumGC++
		c.tr.BeginPhase(trace.PhaseSetup)
		c.chargeOverhead()
		c.noteCollection()
		c.endParallelPhase(trace.PhaseSetup)
	}
	c.stats.NumMajor++
	switch c.cfg.OldCollector {
	case OldMarkSweep:
		c.majorMarkSweep()
	case OldMarkCompact:
		c.majorMarkCompact()
	default:
		c.majorCopy()
	}
}

// majorCopy is the paper's copying major collection: nursery and tenured
// survivors are evacuated into a fresh tenured semispace.
func (c *Generational) majorCopy() {
	fromID, toID := c.idA, c.idB
	if c.ten.ID() != fromID {
		fromID, toID = toID, fromID
	}
	c.los.ClearMarks()
	to := c.heap.ReplaceSpace(toID, c.ten.Used()+c.nursery.Used()+c.agingUsed())
	var condemned [3]mem.SpaceID
	condemned[0], condemned[1] = c.nursery.ID(), fromID
	ncond := 2
	if c.aging != nil {
		condemned[2] = c.aging.ID()
		ncond = 3
	}
	ev := c.evacuator()
	ev.begin(c.heap, c.meter, &c.stats, c.prof, condemned[:ncond], to, c.los)
	ev.tr = c.tr
	ev.tenuredID = toID
	ev.tally = c.tally
	ev.oldFromID = fromID

	c.tr.BeginPhase(trace.PhaseRoots)
	c.scanRoots(ev, false)
	c.endParallelPhase(trace.PhaseRoots)
	c.tr.BeginPhase(trace.PhaseCopy)
	ev.drain()
	c.endParallelPhase(trace.PhaseCopy)
	c.tr.BeginPhase(trace.PhaseSweep)
	c.los.Sweep(c.prof)
	c.tr.EndPhase(trace.PhaseSweep)
	c.los.TakeFresh()
	if c.prof != nil {
		c.prof.OnSpaceCondemned(c.nursery.ID())
		c.prof.OnSpaceCondemned(fromID)
		if c.aging != nil {
			c.prof.OnSpaceCondemned(c.aging.ID())
		}
		c.prof.OnGCEnd()
	}
	c.nursery.Reset()
	if c.aging != nil {
		c.aging = c.heap.ReplaceSpace(c.aging.ID(), c.cfg.NurseryWords+64)
	}
	c.sticky = c.sticky[:0] // no old-to-young refs survive a full collection
	// The barrier's remembered set and the pretenured regions are stale
	// and unnecessary: there are no old-to-young pointers after a full
	// collection.
	c.dropBarrier()
	c.pretenured.clear()

	live := to.Used()
	// Tenured resize: target liveness 0.3 within the budget share.
	newCap := uint64(float64(live) / c.cfg.TargetTenuredLiveness)
	maxCap := c.initialTenCap()
	if losWords := c.los.UsedWords(); 2*losWords < c.cfg.BudgetWords-c.cfg.NurseryWords {
		maxCap = (c.cfg.BudgetWords - c.cfg.NurseryWords - losWords) / 2
	}
	if newCap > maxCap {
		newCap = maxCap
	}
	minCap := live + c.cfg.NurseryWords/4 + 256
	if newCap < minCap {
		newCap = minCap // budget-starved: keep limping with minimum headroom
	}
	c.tenCap = newCap
	// Physical capacity grows lazily toward the logical threshold; just
	// leave room for the next nursery promotion.
	need := live + c.cfg.NurseryWords + 1024
	if c.heap.Space(toID).Capacity() < need {
		c.ten = c.heap.GrowSpace(toID, need)
	} else {
		c.ten = c.heap.Space(toID)
	}
	c.heap.ReplaceSpace(fromID, 0)
	c.updateMaxLive()
}

// beginNonmovingMajor is the shared front half of the two non-moving
// majors: clear the LOS marks and the tenured bitmap (the trace rebuilds
// it as the live set), make room for the worst-case promotion, and rearm
// the evacuator in marking mode — nursery (and aging) spaces are
// condemned and evacuated into the tenured space as usual, but tenured
// pointers mark in place instead of copying.
func (c *Generational) beginNonmovingMajor() *evacuator {
	c.los.ClearMarks()
	c.old.clearBitmap()
	c.ensureTenured(c.nursery.Used() + c.agingUsed() + 64)
	var condemned [2]mem.SpaceID
	condemned[0] = c.nursery.ID()
	ncond := 1
	if c.aging != nil {
		condemned[1] = c.aging.ID()
		ncond = 2
	}
	ev := c.evacuator()
	ev.begin(c.heap, c.meter, &c.stats, c.prof, condemned[:ncond], c.ten, c.los)
	ev.tr = c.tr
	ev.tenuredID = c.ten.ID()
	ev.tally = c.tally
	ev.old = c.old
	ev.oldMark = true
	return ev
}

// majorMarkSweep is the bitmap mark-sweep major: trace in place, then
// sweep dead tenured runs into the free lists. No tenured object moves.
func (c *Generational) majorMarkSweep() {
	ev := c.beginNonmovingMajor()

	c.tr.BeginPhase(trace.PhaseRoots)
	c.scanRoots(ev, false)
	c.endParallelPhase(trace.PhaseRoots)
	c.tr.BeginPhase(trace.PhaseMark)
	ev.drain()
	c.endParallelPhase(trace.PhaseMark)
	c.tr.BeginPhase(trace.PhaseSweep)
	c.sweepOld()
	c.los.SweepWith(c.prof, c.beginQ, c.endQ)
	c.endParallelPhase(trace.PhaseSweep)

	c.finishNonmovingMajor()
}

// majorMarkCompact is the sliding mark-compact major: trace in place,
// slide the live tenured objects toward the space base (preserving
// allocation order), then sweep the LOS. Stack roots into the tenured
// space are captured during the root scan and rewritten by the
// compaction's fixup pass.
func (c *Generational) majorMarkCompact() {
	ev := c.beginNonmovingMajor()

	c.compactCapture = true
	c.rootFix = c.rootFix[:0]
	c.tr.BeginPhase(trace.PhaseRoots)
	c.scanRoots(ev, false)
	c.endParallelPhase(trace.PhaseRoots)
	c.compactCapture = false
	c.tr.BeginPhase(trace.PhaseMark)
	ev.drain()
	c.endParallelPhase(trace.PhaseMark)
	c.tr.BeginPhase(trace.PhaseCompact)
	c.compactOld()
	c.endParallelPhase(trace.PhaseCompact)
	c.tr.BeginPhase(trace.PhaseSweep)
	c.los.SweepWith(c.prof, c.beginQ, c.endQ)
	c.endParallelPhase(trace.PhaseSweep)

	c.finishNonmovingMajor()
}

// finishNonmovingMajor is the shared back half of the non-moving majors:
// the same epilogue as the copying major (fresh-list, profiler, space
// resets, remembered-set drop) with the tenured resize driven by
// occupancy rather than a new semispace's frontier, and no from-space to
// release.
func (c *Generational) finishNonmovingMajor() {
	c.los.TakeFresh()
	if c.prof != nil {
		c.prof.OnSpaceCondemned(c.nursery.ID())
		if c.aging != nil {
			c.prof.OnSpaceCondemned(c.aging.ID())
		}
		c.prof.OnGCEnd()
	}
	c.nursery.Reset()
	if c.aging != nil {
		c.aging = c.heap.ReplaceSpace(c.aging.ID(), c.cfg.NurseryWords+64)
	}
	c.sticky = c.sticky[:0] // no old-to-young refs survive a full collection
	c.dropBarrier()
	c.pretenured.clear()

	live := c.tenLive()
	// Tenured resize: target liveness within the budget share. Without a
	// copy reserve the whole non-LOS remainder of the budget is usable.
	newCap := uint64(float64(live) / c.cfg.TargetTenuredLiveness)
	maxCap := c.initialTenCap()
	if c.cfg.BudgetWords > c.cfg.NurseryWords {
		if avail := c.cfg.BudgetWords - c.cfg.NurseryWords; c.los.UsedWords() < avail {
			maxCap = avail - c.los.UsedWords()
		}
	}
	if newCap > maxCap {
		newCap = maxCap
	}
	minCap := live + c.cfg.NurseryWords/4 + 256
	if newCap < minCap {
		newCap = minCap // budget-starved: keep limping with minimum headroom
	}
	c.tenCap = newCap
	// The bitmap now coincides with the traced reachable set; any mutator
	// allocation or store invalidates that reading (noteOldMutation).
	c.old.marksFresh = true
	c.updateMaxLive()
}

// updateMaxLive records the live-set high-water mark. It is only called
// after a major collection, when the tenured space holds exactly the live
// data; between majors ten.Used() also counts promoted-but-dead objects
// and would wildly overestimate (the calibration pass forces frequent
// majors to sample tightly).
func (c *Generational) updateMaxLive() {
	liveBytes := (c.tenLive() + c.los.UsedWords()) * mem.WordSize
	if liveBytes > c.stats.MaxLiveBytes {
		c.stats.MaxLiveBytes = liveBytes
	}
}

// recordPause accumulates pause statistics for one collection event and
// refreshes the lifetime parallel-work counters from the tally.
func (c *Generational) recordPause(start costmodel.Cycles) {
	pause := uint64(c.meter.GC() - start)
	c.stats.SumPauseCycles += pause
	if pause > c.stats.MaxPauseCycles {
		c.stats.MaxPauseCycles = pause
	}
	if c.tally != nil {
		c.stats.ParallelQuanta = c.tally.Quanta()
		c.stats.WorkSteals = c.tally.Steals()
	}
}

// forwardRootOn forwards the pointer at a root location of one thread's
// stack.
func (c *Generational) forwardRootOn(ev *evacuator, st *rt.Stack, loc RootLoc) {
	c.stats.RootsFound++
	if loc.IsReg {
		v := st.Reg(loc.Index)
		nv := ev.forward(v)
		if nv != v {
			st.SetReg(loc.Index, nv)
		}
		c.captureRoot(st, loc, nv)
		return
	}
	v := st.RawSlot(loc.Index)
	nv := ev.forward(v)
	if nv != v {
		st.SetRawSlot(loc.Index, nv)
	}
	c.captureRoot(st, loc, nv)
}

// captureRoot records a root location left holding a tenured pointer
// during a compacting major's root scan; the compaction fixup revisits
// exactly these locations once slide destinations are known. No-op
// outside the capture window.
func (c *Generational) captureRoot(st *rt.Stack, loc RootLoc, v uint64) {
	if !c.compactCapture {
		return
	}
	if a := mem.Addr(v); !a.IsNil() && a.Space() == c.old.id {
		c.rootFix = append(c.rootFix, rootFixEntry{st: st, loc: loc})
	}
}
