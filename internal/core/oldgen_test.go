package core

import (
	"slices"
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/trace"
)

func TestParseOldCollector(t *testing.T) {
	cases := []struct {
		in   string
		want OldCollector
		ok   bool
	}{
		{"", OldCopy, true},
		{"copy", OldCopy, true},
		{"marksweep", OldMarkSweep, true},
		{"markcompact", OldMarkCompact, true},
		{"scavenge", OldCopy, false},
	}
	for _, tc := range cases {
		got, ok := ParseOldCollector(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseOldCollector(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	for _, oc := range []OldCollector{OldCopy, OldMarkSweep, OldMarkCompact} {
		back, ok := ParseOldCollector(oc.String())
		if !ok || back != oc {
			t.Errorf("round trip %v -> %q -> %v, %v", oc, oc.String(), back, ok)
		}
	}
}

// clientView is everything a mutator program can observe about its own
// execution: the cycles charged to its bucket, its allocation statistics,
// and the pointer-free contents of the structures it kept alive. GC
// collection counts, pauses, and copy/mark/sweep volumes are excluded —
// those legitimately differ across old-generation collectors (the
// non-moving collectors run with a larger tenured budget because they
// need no reserve semispace).
type clientView struct {
	client costmodel.Cycles
	bytes  uint64
	objs   uint64
	rec    uint64
	arr    uint64
	pret   uint64
	vals   []uint64
}

// oldgenClientView runs the kernel workload under the given old-generation
// collector and captures the client-observable outcome.
func oldgenClientView(t *testing.T, oc OldCollector, extra func(*GenConfig)) clientView {
	t.Helper()
	e := newEnv(4)
	cfg := GenConfig{BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, OldCollector: oc}
	if extra != nil {
		extra(&cfg)
	}
	c := newGen(e, cfg)
	driveKernelWorkload(t, c, e)
	st := c.Stats()
	v := clientView{
		client: e.meter.Snapshot().Client,
		bytes:  st.BytesAllocated,
		objs:   st.ObjectsAllocated,
		rec:    st.RecordBytes,
		arr:    st.ArrayBytes,
		pret:   st.Pretenured,
	}
	for a := mem.Addr(e.stack.Slot(1)); !a.IsNil(); a = mem.Addr(c.LoadField(a, 1)) {
		v.vals = append(v.vals, c.LoadField(a, 0))
	}
	return v
}

// TestOldCollectorClientDifferential is the cross-collector oracle: the
// same mutator program must be client-indistinguishable under the
// copying, mark-sweep, and mark-compact old generations — identical
// client cycle counts, identical allocation statistics, and identical
// surviving data.
func TestOldCollectorClientDifferential(t *testing.T) {
	variants := []struct {
		name  string
		extra func(*GenConfig)
	}{
		{"plain", nil},
		{"markers+pretenure", func(cfg *GenConfig) {
			cfg.MarkerN = 5
			cfg.Pretenure = NewPretenurePolicy(map[obj.SiteID]PretenureDecision{
				12: {},
				50: {OnlyOldRefs: true},
			})
		}},
		{"aging", func(cfg *GenConfig) { cfg.AgingMinors = 2 }},
		{"workers", func(cfg *GenConfig) { cfg.Workers = 3 }},
	}
	for _, vr := range variants {
		t.Run(vr.name, func(t *testing.T) {
			base := oldgenClientView(t, OldCopy, vr.extra)
			for _, oc := range []OldCollector{OldMarkSweep, OldMarkCompact} {
				got := oldgenClientView(t, oc, vr.extra)
				if got.client != base.client {
					t.Errorf("%v: client cycles = %d, copy = %d", oc, got.client, base.client)
				}
				if got.bytes != base.bytes || got.objs != base.objs ||
					got.rec != base.rec || got.arr != base.arr || got.pret != base.pret {
					t.Errorf("%v: alloc stats diverge from copy:\n got  %+v\n copy %+v", oc, got, base)
				}
				if !slices.Equal(got.vals, base.vals) {
					t.Errorf("%v: surviving list contents diverge from copy", oc)
				}
			}
		})
	}
}

// TestNonmovingEliminatesOldCopying pins the headline property: the
// copying old generation re-copies tenured data at every major while the
// non-moving collectors drive old-generation copying to zero, reclaiming
// in place (mark-sweep) or sliding (mark-compact) instead.
func TestNonmovingEliminatesOldCopying(t *testing.T) {
	run := func(oc OldCollector) GCStats {
		e := newEnv(4)
		c := newGen(e, GenConfig{BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, OldCollector: oc})
		driveKernelWorkload(t, c, e)
		return *c.Stats()
	}

	cp := run(OldCopy)
	if cp.OldBytesCopied == 0 {
		t.Error("copy: OldBytesCopied = 0, want > 0 (majors must evacuate the old generation)")
	}
	if cp.WordsMarked != 0 || cp.WordsSwept != 0 || cp.WordsSlid != 0 {
		t.Errorf("copy: non-moving counters nonzero: marked=%d swept=%d slid=%d",
			cp.WordsMarked, cp.WordsSwept, cp.WordsSlid)
	}

	ms := run(OldMarkSweep)
	if ms.OldBytesCopied != 0 {
		t.Errorf("marksweep: OldBytesCopied = %d, want 0", ms.OldBytesCopied)
	}
	if ms.ObjectsMarked == 0 || ms.WordsMarked == 0 {
		t.Errorf("marksweep: nothing marked (objects=%d words=%d)", ms.ObjectsMarked, ms.WordsMarked)
	}
	if ms.WordsSwept == 0 {
		t.Error("marksweep: WordsSwept = 0, want > 0 (dead tenured arrays must be reclaimed)")
	}
	if ms.WordsSlid != 0 {
		t.Errorf("marksweep: WordsSlid = %d, want 0", ms.WordsSlid)
	}

	mc := run(OldMarkCompact)
	if mc.OldBytesCopied != 0 {
		t.Errorf("markcompact: OldBytesCopied = %d, want 0", mc.OldBytesCopied)
	}
	if mc.ObjectsMarked == 0 || mc.WordsMarked == 0 {
		t.Errorf("markcompact: nothing marked (objects=%d words=%d)", mc.ObjectsMarked, mc.WordsMarked)
	}
	if mc.WordsSlid == 0 {
		t.Error("markcompact: WordsSlid = 0, want > 0 (live data above holes must slide down)")
	}
	if mc.WordsSwept != 0 {
		t.Errorf("markcompact: WordsSwept = %d, want 0 (compaction leaves no free runs)", mc.WordsSwept)
	}
}

// tenuredGarbageCycle tenures a list, drops it, and forces a major: the
// non-moving old generation is left holding reclaimable space.
func tenuredGarbageCycle(t *testing.T, c *Generational, e *testEnv) {
	t.Helper()
	consList(t, c, e, 1, 400, 3)
	c.Collect(true) // tenure the list
	consList(t, c, e, 2, 100, 3)
	c.Collect(true) // tenure the survivor; slot-1 list still live
	e.stack.SetSlot(1, uint64(mem.Nil))
	c.Collect(true) // slot-1 list dies in the old generation
}

// TestMarkSweepFreeListReuse proves in-place reclamation round-trips:
// a dead tenured list becomes free spans, and subsequent pretenured
// allocation is served from those spans without moving the frontier.
func TestMarkSweepFreeListReuse(t *testing.T) {
	e := newEnv(4)
	pol := NewPretenurePolicy(map[obj.SiteID]PretenureDecision{12: {}})
	c := newGen(e, GenConfig{
		BudgetWords: 64 * 1024, NurseryWords: 4 * 1024,
		OldCollector: OldMarkSweep, Pretenure: pol,
	})
	tenuredGarbageCycle(t, c, e)

	in := c.Inspect()
	if in.OldCollector != OldMarkSweep {
		t.Fatalf("Inspect().OldCollector = %v", in.OldCollector)
	}
	if in.OldFreeWords == 0 || len(in.OldFreeSpans) == 0 {
		t.Fatalf("no free spans after sweeping a dead tenured list (freeWords=%d, spans=%d)",
			in.OldFreeWords, len(in.OldFreeSpans))
	}
	var sum uint64
	for _, s := range in.OldFreeSpans {
		sum += s.Size
	}
	if sum != in.OldFreeWords {
		t.Fatalf("free spans sum to %d words, counter says %d", sum, in.OldFreeWords)
	}
	if !in.OldMarksFresh {
		t.Error("OldMarksFresh = false immediately after a major with no mutator activity")
	}

	frontier := c.heap.Space(c.ten.ID()).Used()
	before := c.old.freeWords
	a := c.Alloc(obj.Record, 2, 12, 0b10) // pretenured via the policy
	if a.Space() != c.ten.ID() {
		t.Fatalf("pretenured allocation landed in space %d, want tenured %d", a.Space(), c.ten.ID())
	}
	if c.old.freeWords >= before {
		t.Errorf("free list not consumed: freeWords %d -> %d", before, c.old.freeWords)
	}
	if got := c.heap.Space(c.ten.ID()).Used(); got != frontier {
		t.Errorf("bump frontier moved %d -> %d; pretenure should reuse a free span", frontier, got)
	}
	if c.old.marksFresh {
		t.Error("marksFresh survived a mutator allocation")
	}
}

// TestMarkCompactLeavesNoHoles proves the slide achieves perfect density:
// after a major, the old generation has no free spans and the frontier
// equals the live volume.
func TestMarkCompactLeavesNoHoles(t *testing.T) {
	e := newEnv(4)
	c := newGen(e, GenConfig{
		BudgetWords: 64 * 1024, NurseryWords: 4 * 1024, OldCollector: OldMarkCompact,
	})
	tenuredGarbageCycle(t, c, e)
	if c.Stats().WordsSlid == 0 {
		t.Fatal("WordsSlid = 0: the surviving list should have slid over the dead one")
	}
	in := c.Inspect()
	if in.OldFreeWords != 0 || len(in.OldFreeSpans) != 0 {
		t.Errorf("compacted old generation has free spans (freeWords=%d, spans=%d)",
			in.OldFreeWords, len(in.OldFreeSpans))
	}
	if live, used := c.tenLive(), c.heap.Space(c.ten.ID()).Used(); live != used {
		t.Errorf("tenLive = %d, frontier = %d; compaction should make them equal", live, used)
	}
	checkConsList(t, c, e, 2, 100)
}

// TestNonmovingTraceReconciles attaches a trace recorder and checks that
// every cycle charged during non-moving majors is tiled by phase spans
// and worker quanta (trace.Reconcile), and that the new mark, sweep, and
// compact phases actually appear in the event stream.
func TestNonmovingTraceReconciles(t *testing.T) {
	type tc struct {
		oc      OldCollector
		workers int
	}
	var cases []tc
	for _, oc := range []OldCollector{OldMarkSweep, OldMarkCompact} {
		for _, w := range []int{1, 2, 3} {
			cases = append(cases, tc{oc, w})
		}
	}
	for _, c := range cases {
		t.Run(c.oc.String()+"/w"+string(rune('0'+c.workers)), func(t *testing.T) {
			e := newEnv(4)
			rec := trace.NewRecorder(e.meter)
			g := newGen(e, GenConfig{
				BudgetWords: 64 * 1024, NurseryWords: 4 * 1024,
				OldCollector: c.oc, Workers: c.workers, Trace: rec,
			})
			driveKernelWorkload(t, g, e)
			rec.Finish()
			if err := rec.VerifyReconciled(); err != nil {
				t.Fatalf("trace does not reconcile: %v", err)
			}
			seen := map[trace.Phase]bool{}
			for _, ev := range rec.Events() {
				if ev.Kind == trace.EvPhaseBegin {
					seen[ev.Phase] = true
				}
			}
			if !seen[trace.PhaseMark] {
				t.Error("no mark phase span recorded")
			}
			switch c.oc {
			case OldMarkSweep:
				if !seen[trace.PhaseSweep] {
					t.Error("no sweep phase span recorded")
				}
			case OldMarkCompact:
				if !seen[trace.PhaseCompact] {
					t.Error("no compact phase span recorded")
				}
			}
		})
	}
}

// TestNonmovingParallelMatchesSerial pins W-independence for the new
// kernels: parallel copying plus non-moving majors must leave the same
// heap image and stats as the serial collector.
func TestNonmovingParallelMatchesSerial(t *testing.T) {
	for _, oc := range []OldCollector{OldMarkSweep, OldMarkCompact} {
		t.Run(oc.String(), func(t *testing.T) {
			run := func(w int) ([]uint64, GCStats) {
				e := newEnv(4)
				c := newGen(e, GenConfig{
					BudgetWords: 64 * 1024, NurseryWords: 4 * 1024,
					OldCollector: oc, Workers: w,
				})
				driveKernelWorkload(t, c, e)
				c.Collect(true)
				return heapImage(c), *c.Stats()
			}
			serImg, serStats := run(1)
			parImg, parStats := run(3)
			if parStats.ParallelQuanta == 0 || parStats.WorkSteals == 0 {
				t.Errorf("quanta=%d steals=%d; worker accounting never engaged",
					parStats.ParallelQuanta, parStats.WorkSteals)
			}
			if parStats.MaxPauseCycles > serStats.MaxPauseCycles {
				t.Errorf("parallel max pause %d exceeds serial %d",
					parStats.MaxPauseCycles, serStats.MaxPauseCycles)
			}
			// Pause and worker-tally fields legitimately move with W; every
			// schedule- and heap-shape field must not.
			mask := func(st GCStats) GCStats {
				st.MaxPauseCycles, st.SumPauseCycles = 0, 0
				st.ParallelQuanta, st.WorkSteals = 0, 0
				return st
			}
			if mask(serStats) != mask(parStats) {
				t.Errorf("stats diverge:\n serial %+v\n parallel %+v", serStats, parStats)
			}
			if !slices.Equal(serImg, parImg) {
				t.Error("heap images diverge between serial and parallel runs")
			}
		})
	}
}
