package core

import (
	"slices"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/rt"
)

// PretenuredRegion is a read-only view of one tenured region allocated
// into directly since the last minor collection.
type PretenuredRegion struct {
	Space mem.SpaceID
	Start uint64 // first word offset
	End   uint64 // one past the last word offset
}

// OldFreeSpan is a read-only view of one free-list span of the
// non-moving tenured space: words [Start, Start+Size) hold a filler.
type OldFreeSpan struct {
	Start uint64
	Size  uint64
}

// Inspection is a read-only snapshot of a collector's structural state,
// taken between collections. Integrity checkers (internal/sanitize) use it
// to walk the heap independently of the collector's own machinery; nothing
// in an Inspection may be mutated, and slices are defensive copies so
// holding one across a collection cannot corrupt the collector.
type Inspection struct {
	Heap  *mem.Heap
	Stack *rt.Stack
	Meter *costmodel.Meter
	Stats *GCStats

	// Space classification. YoungSpaces are collected at every minor GC
	// (nursery plus, under aging, both aging semispaces); OldSpaces hold
	// tenured data; LOSSpaces each hold one large object. Ids absent from
	// all three sets must hold no live objects.
	YoungSpaces []mem.SpaceID
	OldSpaces   []mem.SpaceID
	LOSSpaces   []mem.SpaceID

	// Generational reports whether old-to-young invariants apply.
	Generational bool
	// Exactly one of SSB/Cards is non-nil for generational collectors.
	SSB   *rt.SSB
	Cards *rt.CardTable
	// Sticky are old-space field addresses known to point into the aging
	// space (empty under immediate promotion).
	Sticky []mem.Addr
	// FreshLOS are large objects allocated since the last collection
	// (their initializing stores bypass the barrier).
	FreshLOS []mem.Addr
	// PretenuredRegions are tenured ranges allocated into directly since
	// the last minor collection; Policy names the sites allowed there.
	PretenuredRegions []PretenuredRegion
	Policy            *PretenurePolicy
	ScanElision       bool

	LargeObjectWords uint64
	MarkerN          int

	// Non-moving old-generation state (OldCollector != OldCopy only).
	// OldBitmap is a defensive copy of the mark/allocation bitmap (bit
	// off-1 ⇔ tenured word offset off); OldFreeSpans are the free-list
	// spans in ascending offset order; OldFreeWords is the collector's
	// free-word counter (checked against the spans); OldMarksFresh reports
	// that no mutator activity has occurred since the last non-moving
	// major, so the bitmap must still equal the reachable set.
	OldCollector  OldCollector
	OldBitmap     []uint64
	OldFreeSpans  []OldFreeSpan
	OldFreeWords  uint64
	OldMarksFresh bool

	// Threads, when the run is multi-threaded, is the simulated thread
	// set: every live thread's stack is a root source, and every thread's
	// private barrier state (SSB or staged cards) is part of the
	// remembered set. Nil for single-thread runs, where Stack/SSB/Cards
	// carry the whole state.
	Threads *rt.ThreadSet
	// GCWorkers is the configured parallel-copy worker count (0 or 1
	// means the serial collector: no overlap, no worker tallies).
	GCWorkers int
}

// Inspectable is implemented by collectors that can expose their
// structural state for integrity checking.
type Inspectable interface {
	Inspect() Inspection
}

// Inspect implements Inspectable.
func (c *Generational) Inspect() Inspection {
	in := Inspection{
		Heap:  c.heap,
		Stack: c.stack,
		Meter: c.meter,
		Stats: &c.stats,

		YoungSpaces: []mem.SpaceID{c.nursery.ID()},
		OldSpaces:   []mem.SpaceID{c.ten.ID()},
		LOSSpaces:   c.los.SpaceIDs(),

		Generational: true,
		SSB:          c.ssb,
		Cards:        c.cards,
		Sticky:       slices.Clone(c.sticky),
		FreshLOS:     slices.Clone(c.los.Fresh()),
		Policy:       mergePolicies(c.cfg.Pretenure, c.advPolicy),
		ScanElision:  c.cfg.ScanElision,

		LargeObjectWords: c.cfg.LargeObjectWords,
		MarkerN:          c.cfg.MarkerN,

		Threads:   c.threads,
		GCWorkers: c.cfg.Workers,
	}
	if c.aging != nil {
		in.YoungSpaces = append(in.YoungSpaces, c.agA, c.agB)
	}
	if c.old != nil {
		in.OldCollector = c.cfg.OldCollector
		in.OldBitmap = slices.Clone(c.old.bitmap)
		in.OldFreeWords = c.old.freeWords
		in.OldMarksFresh = c.old.marksFresh
		for _, s := range c.old.freeSpans() {
			in.OldFreeSpans = append(in.OldFreeSpans, OldFreeSpan{Start: s.off, Size: s.size})
		}
	}
	for _, r := range c.pretenured.regions {
		in.PretenuredRegions = append(in.PretenuredRegions,
			PretenuredRegion{Space: r.space, Start: r.start, End: r.end})
	}
	return in
}

// Inspect implements Inspectable. The semispace collector has a single
// generation: its current allocation space is reported as "old" and the
// generational invariants (remembered sets, pretenured regions) are vacuous.
func (c *Semispace) Inspect() Inspection {
	return Inspection{
		Heap:  c.heap,
		Stack: c.stack,
		Meter: c.meter,
		Stats: &c.stats,

		OldSpaces: []mem.SpaceID{c.cur.ID()},
		LOSSpaces: c.los.SpaceIDs(),

		FreshLOS: slices.Clone(c.los.Fresh()),

		LargeObjectWords: c.cfg.LargeObjectWords,
		MarkerN:          c.cfg.MarkerN,

		Threads:   c.threads,
		GCWorkers: c.cfg.Workers,
	}
}
