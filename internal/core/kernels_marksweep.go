package core

import (
	"math/bits"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// The tenured bitmap sweep of the non-moving mark-sweep old generation
// (GenConfig.OldCollector == OldMarkSweep). The mark phase (the evacuator
// drain with oldMark set) has rebuilt the bitmap as the live set; the
// sweep walks the space once, charges the bitmap examination per 64-word
// stripe, reclaims every unmarked object, and rebuilds the free lists
// from the coalesced free runs — dead objects and pre-existing fillers
// merge into a single filler per run, exactly the coalescing the LOS
// sweep performs at arena granularity.
//
// Optimized and reference kernels issue identical charges, identical
// quantum brackets, identical profiler deaths, and identical free-list
// mutations, in the same ascending-offset order; they differ only in how
// live objects are skipped — the optimized kernel strides over live runs
// with a trailing-zeros scan of the inverted bitmap words (never
// decoding a live header), the reference kernel decodes every object.

// sweepOld reclaims every unmarked tenured object into the free lists.
func (c *Generational) sweepOld() {
	if refKernels {
		c.refSweepOld()
		return
	}
	c.sweepOldOpt()
}

// sweepOldStripes charges the bitmap examination: one SweepWordTest per
// 64-word stripe of the used region, each bracketed as one parallel work
// quantum.
func (c *Generational) sweepOldStripes(used uint64) {
	for n := (used + 63) / 64; n > 0; n-- {
		c.beginQ()
		c.meter.Charge(costmodel.GCCopy, costmodel.SweepWordTest)
		c.endQ()
	}
}

// sweepOldDead accounts one dead tenured object: the per-object sweep
// charge, the reclaimed words, and the profiler death (the profiler
// classifies the death from its own record, so tenured and large-object
// deaths share the callback).
func (c *Generational) sweepOldDead(off, size uint64) {
	c.beginQ()
	c.meter.Charge(costmodel.GCCopy, costmodel.SweepObject)
	c.stats.WordsSwept += size
	if c.prof != nil {
		c.prof.OnLOSDead(mem.MakeAddr(c.old.id, off))
	}
	c.endQ()
}

// sweepOldOpt is the optimized sweep: live runs are skipped via the
// bitmap without touching their headers; only dead objects (clear bits
// off the free-span cursor) are decoded, from a raw header read.
//
//gc:nobarrier sweep kernel: it rewrites dead storage into pointer-free fillers while the world is stopped
func (c *Generational) sweepOldOpt() {
	os := c.old
	sp := c.heap.Space(os.id)
	used := sp.Used()
	os.ensureBitmap(used)
	c.sweepOldStripes(used)
	spans := os.freeSpans()
	os.resetFree()
	w := sp.Raw()
	k := 0
	var runOff, runLen uint64
	off := uint64(1)
	for off <= used {
		if k < len(spans) && spans[k].off == off {
			// Pre-existing filler: already free, no sweep charge — it
			// joins the current run so adjacent holes coalesce.
			if runLen == 0 {
				runOff = off
			}
			runLen += spans[k].size
			off += spans[k].size
			k++
			continue
		}
		if os.bitSet(off) {
			os.emitFreeRun(runOff, runLen)
			runLen = 0
			off = os.nextClearOffset(off, used)
			continue
		}
		hd := w[off]
		size := obj.SizeWords(obj.HeaderKind(hd), obj.HeaderLen(hd))
		c.sweepOldDead(off, size)
		if runLen == 0 {
			runOff = off
		}
		runLen += size
		off += size
	}
	os.emitFreeRun(runOff, runLen)
}

// refSweepOld is the reference sweep: every object — live, dead, or
// filler-adjacent — is decoded through the checked interface and stepped
// over individually (filler rewrites happen inside emitFreeRun, which
// carries its own barrier justification).
func (c *Generational) refSweepOld() {
	os := c.old
	sp := c.heap.Space(os.id)
	used := sp.Used()
	os.ensureBitmap(used)
	c.sweepOldStripes(used)
	spans := os.freeSpans()
	os.resetFree()
	k := 0
	var runOff, runLen uint64
	off := uint64(1)
	for off <= used {
		if k < len(spans) && spans[k].off == off {
			if runLen == 0 {
				runOff = off
			}
			runLen += spans[k].size
			off += spans[k].size
			k++
			continue
		}
		size := obj.Decode(c.heap, mem.MakeAddr(os.id, off)).SizeWords()
		if os.bitSet(off) {
			os.emitFreeRun(runOff, runLen)
			runLen = 0
			off += size
			continue
		}
		c.sweepOldDead(off, size)
		if runLen == 0 {
			runOff = off
		}
		runLen += size
		off += size
	}
	os.emitFreeRun(runOff, runLen)
}

// nextClearOffset returns the first offset >= off whose bitmap bit is
// clear, capped at used+1 — the optimized kernels' live-run stride, a
// trailing-zeros scan over inverted bitmap words (the same technique the
// Cheney frontier scan uses on record pointer masks).
func (os *oldSpace) nextClearOffset(off, used uint64) uint64 {
	first := (off - 1) >> 6
	for w := first; w < uint64(len(os.bitmap)); w++ {
		inv := ^os.bitmap[w]
		if w == first {
			inv &= ^uint64(0) << ((off - 1) & 63)
		}
		if inv != 0 {
			j := w<<6 + uint64(bits.TrailingZeros64(inv))
			if j >= used {
				return used + 1
			}
			return j + 1
		}
	}
	return used + 1
}
