package core

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/rt"
)

// This file preserves the first-draft ("reference") copy/scan kernels
// verbatim. They are never used in production — SetReferenceKernels
// selects them so that the kernel-equivalence tests can prove the
// optimized kernels observationally identical, and so gcbench -bench can
// measure the speedup on the same machine. Every meter charge here is
// issued in exactly the same order and amount as the optimized kernels.

// refDrain is the reference Cheney scan: like drain, but each gray object
// is decoded twice (once to scan, once to advance the frontier).
func (e *evacuator) refDrain() {
	for {
		progressed := false
		for i := range e.scans {
			s := &e.scans[i]
			for s.next <= s.space.Used() {
				a := mem.MakeAddr(s.space.ID(), s.next)
				e.refScanObject(a)
				s.next += obj.Decode(e.heap, a).SizeWords()
				progressed = true
			}
		}
		for len(e.losQueue) > 0 {
			a := e.losQueue[len(e.losQueue)-1]
			e.losQueue = e.losQueue[:len(e.losQueue)-1]
			e.refScanObject(a)
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// refEvacuate is the reference copy kernel: it re-reads the header through
// Heap.Load once for the forwarding check and again to decode, and
// allocates the destination span zeroed (Alloc) before immediately
// overwriting every word with the copy.
//
//gc:nobarrier reference copy kernel: stores land in to-space, which is scanned in full before the mutator resumes
func (e *evacuator) refEvacuate(a mem.Addr) mem.Addr {
	if obj.IsForwarded(e.heap, a) {
		return obj.Forwarding(e.heap, a)
	}
	o := obj.Decode(e.heap, a)
	size := o.SizeWords()
	target := e.to
	if e.route != nil {
		target = e.route(o)
	}
	if e.old != nil && target.ID() == e.old.id {
		if fa := e.old.alloc(size); !fa.IsNil() {
			// Same free-list promotion as the optimized kernel, through the
			// checked heap interface; the destination sits below the Cheney
			// frontier, so it grays itself onto the losQueue.
			e.heap.Copy(fa, a, size)
			obj.SetForward(e.heap, a, fa)
			e.finishCopy(fa, o, size)
			e.losQueue = append(e.losQueue, fa)
			return fa
		}
	}
	dst, ok := target.Alloc(size)
	if !ok {
		panic(fmt.Sprintf("core: to-space %d overflow evacuating %d words (used %d / cap %d)",
			target.ID(), size, target.Used(), target.Capacity()))
	}
	e.heap.Copy(dst, a, size)
	// Same claim-arbitration contract as claimForward in the optimized
	// kernel: the serial order's single install is the lowest-address
	// winner of the conceptual per-worker CAS race.
	obj.SetForward(e.heap, a, dst)
	e.finishCopy(dst, o, size)
	return dst
}

// refScanObject is the reference field scan: records walk every bit of the
// pointer mask with a shift loop, visiting set bits in the same ascending
// order as the optimized trailing-zeros scan. Quantum placement — one for
// the scan charge, one per pointer field — mirrors scanAt/scanDecoded
// exactly, so the simulated worker schedule is kernel-independent.
func (e *evacuator) refScanObject(a mem.Addr) {
	o := obj.Decode(e.heap, a)
	e.beginQ()
	e.meter.ChargeN(costmodel.GCCopy, costmodel.ScanWord, o.SizeWords())
	e.endQ()
	switch o.Kind {
	case obj.RawArray:
		return
	case obj.PtrArray:
		for i := uint64(0); i < o.Len; i++ {
			e.beginQ()
			e.forwardField(o.PayloadAddr(i))
			e.endQ()
		}
	case obj.Record:
		mask := o.Mask
		for i := uint64(0); mask != 0; i++ {
			if mask&1 == 1 {
				e.beginQ()
				e.forwardField(o.PayloadAddr(i))
				e.endQ()
			}
			mask >>= 1
		}
	default:
		panic(fmt.Sprintf("core: scanning %v object at %v", o.Kind, a))
	}
}

// refProcessBarrier is the reference remembered-set drain: the SSB path
// clones the buffer (Entries) and the card path materializes fresh id and
// field-address slices per collection.
func (c *Generational) refProcessBarrier(ev *evacuator) {
	nid := c.nursery.ID()
	if c.cards != nil {
		c.flushStages()
		for _, fa := range c.refCardFieldAddrs() {
			c.beginQ()
			c.forwardIfYoung(ev, fa, nid)
			c.endQ()
		}
		c.cards.Drain()
		return
	}
	drain := func(b *rt.SSB) {
		for _, fa := range b.Entries() {
			c.beginQ()
			c.meter.Charge(costmodel.GCCopy, costmodel.SSBEntry)
			c.stats.SSBProcessed++
			if !c.isYoung(fa.Space()) {
				// A young-space update needs no forwarding: the object's copy
				// (if live) is fully scanned during evacuation anyway.
				c.forwardIfYoung(ev, fa, nid)
			}
			c.endQ()
		}
		b.Drain()
	}
	if c.threads == nil {
		drain(c.ssb)
		return
	}
	// Thread-id order, dead threads included — same contract as the
	// optimized drain.
	for _, t := range c.threads.Threads() {
		drain(t.SSB())
	}
}

// refCardFieldAddrs expands dirty cards to the pointer-field addresses
// they cover, as a freshly allocated slice per collection. It shares the
// object-precise per-space resolution with the optimized kernel: card
// expansion must consult object layout in both, or a raw word aliasing
// a young address would be treated as a pointer (the seed 3892/29187
// corpus pins).
func (c *Generational) refCardFieldAddrs() []mem.Addr {
	var out []mem.Addr
	cards := c.cards.Cards()
	for i, j := 0, 0; i < len(cards); i = j {
		first, _ := c.cards.CardBounds(cards[i])
		spid := first.Space()
		for j = i + 1; j < len(cards); j++ {
			if s, _ := c.cards.CardBounds(cards[j]); s.Space() != spid {
				break
			}
		}
		out = c.appendSpaceCardFAs(out, spid, cards[i:j])
	}
	return out
}
