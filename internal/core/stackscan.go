package core

import (
	"fmt"

	"tilgc/internal/costmodel"
	"tilgc/internal/rt"
)

// MarkerPolicy selects how stack markers are placed (§7.1 notes "the
// placement policy of stack markers presented above is just one of
// several possible choices ... a more dynamic policy of marker placement
// may achieve better performance with fewer markers").
type MarkerPolicy uint8

const (
	// MarkerFixed places a marker on every n-th frame plus the top frame
	// — the paper's policy (n = 25 in its experiments).
	MarkerFixed MarkerPolicy = iota
	// MarkerExponential places markers at exponentially growing distances
	// from the top of the stack (1, 2, 4, 8, ... frames down): O(log
	// depth) markers, with the guarantee that after popping k frames a
	// surviving marker lies within k frames of the new top, so rescans
	// stay proportional to the actual churn.
	MarkerExponential
)

// StackScanner performs the paper's two-pass stack-root scan (§2.3) and,
// when markerN > 0, the generational stack collection of §5: after every
// scan it installs stack markers, and on the next scan it reuses the
// cached decode results for every frame strictly below the shallowest
// surviving marker.
//
// Pass 1 walks the stack newest→oldest, recovering each frame's layout
// from the return key stored in the frame above it (the trace-table
// lookup). Pass 2 walks oldest→newest maintaining the pointer status of
// the register set, resolving CALLEE-SAVE slots from that status and
// COMPUTE slots from runtime type values, and emitting root locations.
type StackScanner struct {
	stack *rt.Stack
	meter *costmodel.Meter
	stats *GCStats

	// markerN is the paper's n: a marker is placed on every n-th frame
	// (plus the top frame). Zero disables generational stack collection.
	markerN int
	policy  MarkerPolicy
	// revisitOnMinor makes minor scans re-trace cached root locations
	// instead of skipping reused frames outright. Required when survivors
	// are not promoted immediately (the aging configuration): cached
	// frames may hold pointers into the still-collected aging space. This
	// is the paper's weaker-but-still-profitable mode: "it is still
	// advantageous to have amortized the cost of decoding the stack
	// frames by storing the decoded results".
	revisitOnMinor bool

	// tally, when non-nil (W ≥ 2), brackets each frame's scan — decode,
	// root visits, and any evacuations they trigger — as one parallel
	// work quantum. The scan still executes in the canonical serial
	// order; only the cycle accounting is sharded. The frame is the
	// natural unit: the register-status chain each frame inherits is
	// exactly the per-frame entry state a parallel collector caches at
	// stacklet boundaries (the markers of §5), so frames scan
	// independently once that state is known.
	tally *costmodel.WorkerTally

	cache       []frameCache
	keyBuf      []rt.RetKey // pass-1 scratch, pooled across scans
	lastPushCnt uint64      // stack.FramePushes() at the previous scan
}

// frameCache holds the decoded results for one frame: the discovered root
// slot locations and the register pointer-status after the frame's
// register traces were applied — "the register state and root list" the
// paper stores.
type frameCache struct {
	serial    uint64
	base      int
	key       rt.RetKey
	roots     []int // absolute slot indices holding pointers
	regStatus uint32
}

// NewStackScanner creates a scanner over stack. markerN = 0 disables
// stack markers (the baseline configuration).
func NewStackScanner(stack *rt.Stack, meter *costmodel.Meter, stats *GCStats, markerN int) *StackScanner {
	return &StackScanner{stack: stack, meter: meter, stats: stats, markerN: markerN}
}

// SetTally attaches the parallel-worker tally (nil for the serial
// collector). With a tally, every meter charge the scan issues lands
// inside a quantum, so the roots phase reconciles as a parallel phase.
func (sc *StackScanner) SetTally(t *costmodel.WorkerTally) { sc.tally = t }

// beginQ/endQ bracket one unit of parallel root-scan work; no-ops with a
// nil tally.
func (sc *StackScanner) beginQ() {
	if sc.tally != nil {
		sc.tally.BeginQuantum()
	}
}

func (sc *StackScanner) endQ() {
	if sc.tally != nil {
		sc.tally.EndQuantum()
	}
}

// NoteCollection records the Table 2 depth and new-frame statistics for
// one collection event. Collectors call it exactly once per collection,
// even when a minor collection escalates to a major one (which scans the
// stack a second time).
func (sc *StackScanner) NoteCollection() {
	depth := sc.stack.FrameCount()
	sc.stats.DepthSum += uint64(depth)
	if uint64(depth) > sc.stats.MaxDepthAtGC {
		sc.stats.MaxDepthAtGC = uint64(depth)
	}
	newFrames := 0
	for i := depth - 1; i >= 0; i-- {
		if sc.stack.FrameSerial(i) < sc.lastPushCnt {
			break
		}
		newFrames++
	}
	sc.stats.NewFrames += uint64(newFrames)
	sc.lastPushCnt = sc.stack.FramePushes()
}

// Scan discovers the root set and calls visit for every root location.
//
// For a minor collection under immediate promotion, frames below the
// reuse boundary cannot reference the nursery (their pointers were
// forwarded to the old generation at the previous collection and the
// frames have not been touched since), so they are skipped outright. For
// a major collection their cached root locations are re-visited without
// re-decoding the frames.
func (sc *StackScanner) Scan(minor bool, visit func(RootLoc)) {
	depth := sc.stack.FrameCount()

	// Determine the reusable prefix [0, reuse).
	reuse := 0
	if sc.markerN > 0 {
		sc.beginQ()
		sc.meter.Charge(costmodel.GCStack, costmodel.WatermarkCheck)
		sc.endQ()
		b := sc.stack.ReuseBoundary()
		reuse = b // frames 0..b-1 are unchanged
		if reuse < 0 {
			reuse = 0
		}
		if reuse > len(sc.cache) {
			// Cache is shorter than the boundary (should not happen: the
			// boundary only covers frames scanned before). Be safe.
			reuse = len(sc.cache)
		}
		if reuse > depth {
			reuse = depth
		}
		sc.validateCache(reuse)
	}

	var regStatus uint32
	if reuse > 0 {
		regStatus = sc.cache[reuse-1].regStatus
		sc.stats.FramesReused += uint64(reuse)
		if minor && !sc.revisitOnMinor {
			// Immediate promotion: reused frames contribute no nursery
			// roots at a minor collection.
			sc.beginQ()
			sc.meter.ChargeN(costmodel.GCStack, costmodel.FrameReuse, uint64(reuse))
			sc.endQ()
		} else {
			// Major collection: re-trace the cached root locations, one
			// quantum per reused frame.
			for i := 0; i < reuse; i++ {
				sc.beginQ()
				sc.meter.Charge(costmodel.GCStack, costmodel.FrameReuse)
				for _, idx := range sc.cache[i].roots {
					sc.meter.Charge(costmodel.GCStack, costmodel.CachedRoot)
					visit(RootLoc{Index: idx})
				}
				sc.endQ()
			}
		}
	}

	// Pass 1: decode layouts for frames [reuse, depth) newest→oldest by
	// following the return-key chain from the current execution point.
	// The key buffer is pooled: at steady state this allocates nothing.
	// (The reference kernels keep the pre-pooling per-scan allocation.)
	var keys []rt.RetKey
	if refKernels {
		keys = make([]rt.RetKey, depth)
	} else {
		if cap(sc.keyBuf) < depth {
			sc.keyBuf = make([]rt.RetKey, depth)
		}
		keys = sc.keyBuf[:depth]
	}
	if depth > 0 {
		keys[depth-1] = sc.stack.CurrentKey()
		for i := depth - 1; i > reuse; i-- {
			keys[i-1] = sc.stack.StoredRetKey(i)
		}
	}

	// Pass 2: oldest→newest over the non-reused suffix, one quantum per
	// decoded frame (the decode, its root visits, and the evacuations
	// those visits trigger all belong to the frame's worker).
	sc.cache = sc.cache[:reuse]
	for i := reuse; i < depth; i++ {
		sc.beginQ()
		regStatus = sc.decodeFrame(i, keys[i], regStatus, visit)
		sc.endQ()
	}

	// Registers of the current execution point are always roots when the
	// trace information says so.
	table := sc.stack.Table()
	if depth > 0 {
		sc.beginQ()
		fi := table.Lookup(sc.stack.CurrentKey())
		for r := 0; r < rt.NumRegs; r++ {
			sc.meter.Charge(costmodel.GCStack, costmodel.SlotTrace)
			if sc.resolveRegTrace(fi, r, regStatus) {
				sc.meter.Charge(costmodel.GCStack, costmodel.RootProcess)
				visit(RootLoc{IsReg: true, Index: r})
			}
		}
		sc.endQ()
	}

	// Place markers for the next collection.
	if sc.markerN > 0 {
		switch sc.policy {
		case MarkerFixed:
			// Every markerN-th frame plus the top frame (maximizing
			// reuse for stacks that stay deep).
			for i := sc.markerN - 1; i < depth; i += sc.markerN {
				sc.placeMarker(i)
			}
			if depth > 0 {
				sc.placeMarker(depth - 1)
			}
		case MarkerExponential:
			// Only above the reuse boundary: frames below it still carry
			// the valid markers that established the boundary.
			for d := 1; depth-d >= reuse; d *= 2 {
				sc.placeMarker(depth - d)
			}
			if depth > 0 && reuse == 0 {
				sc.placeMarker(0)
			}
		}
		sc.stack.ResetEpoch()
	}
}

// SetMarkerPolicy selects the marker placement policy (default
// MarkerFixed, the paper's).
func (sc *StackScanner) SetMarkerPolicy(p MarkerPolicy) { sc.policy = p }

// SetRevisitOnMinor switches minor scans from frame skipping to
// cached-root revisiting (required without immediate promotion).
func (sc *StackScanner) SetRevisitOnMinor(v bool) { sc.revisitOnMinor = v }

func (sc *StackScanner) placeMarker(i int) {
	if sc.stack.PlaceMarker(i) {
		sc.beginQ()
		sc.meter.Charge(costmodel.GCStack, costmodel.MarkerPlace)
		sc.endQ()
		sc.stats.MarkersPlaced++
	}
}

// validateCache asserts that the reusable cache prefix still describes the
// live frames; a mismatch means the marker bookkeeping is unsound.
func (sc *StackScanner) validateCache(reuse int) {
	for i := 0; i < reuse; i++ {
		c := sc.cache[i]
		if c.serial != sc.stack.FrameSerial(i) || c.base != sc.stack.FrameBase(i) ||
			c.key != sc.stack.FrameKey(i) {
			panic(fmt.Sprintf("core: stale frame cache at index %d", i))
		}
	}
}

// decodeFrame fully decodes frame i (layout key) in pass-2 order, emits
// its roots, records its cache entry, and returns the register status
// after applying the frame's register traces.
func (sc *StackScanner) decodeFrame(i int, key rt.RetKey, regStatus uint32, visit func(RootLoc)) uint32 {
	sc.meter.Charge(costmodel.GCStack, costmodel.FrameDecode)
	sc.stats.FramesDecoded++
	table := sc.stack.Table()
	fi := table.Lookup(key)
	if fi == nil {
		panic(fmt.Sprintf("core: frame %d has no layout (key %d)", i, key))
	}
	base := sc.stack.FrameBase(i)
	isTop := i == sc.stack.FrameCount()-1

	// Recycle the roots slice left behind at this index by a previous
	// scan's truncated cache entry, so re-decoding a frame at a depth the
	// scanner has visited before allocates nothing. (The reference kernels
	// build a fresh slice per frame, the pre-pooling behaviour.)
	var roots []int
	if n := len(sc.cache); !refKernels && n < cap(sc.cache) {
		roots = sc.cache[:n+1][n].roots[:0]
	}
	for j := 1; j < fi.Size; j++ {
		sc.meter.Charge(costmodel.GCStack, costmodel.SlotTrace)
		if sc.resolveSlotTrace(fi, j, base, regStatus, isTop) {
			idx := base + j
			roots = append(roots, idx)
			sc.meter.Charge(costmodel.GCStack, costmodel.RootProcess)
			visit(RootLoc{Index: idx})
		}
	}

	newStatus := regStatus
	for r := 0; r < rt.NumRegs; r++ {
		if sc.applyRegTrace(fi, r, base, regStatus, isTop) {
			newStatus |= 1 << r
		} else {
			newStatus &^= 1 << r
		}
	}

	sc.cache = append(sc.cache, frameCache{
		serial:    sc.stack.FrameSerial(i),
		base:      base,
		key:       key,
		roots:     roots,
		regStatus: newStatus,
	})
	return newStatus
}

// resolveSlotTrace reports whether slot j of the frame at base holds a
// pointer, given the register status inherited from the caller chain.
func (sc *StackScanner) resolveSlotTrace(fi *rt.FrameInfo, j, base int, regStatus uint32, isTop bool) bool {
	tr := fi.Slots[j]
	switch tr.Kind {
	case rt.TracePointer:
		return true
	case rt.TraceNonPointer:
		return false
	case rt.TraceCalleeSave:
		return regStatus>>tr.Arg&1 == 1
	case rt.TraceCompute:
		sc.meter.Charge(costmodel.GCStack, costmodel.ComputeTrace)
		return sc.typeValue(tr, base, isTop) == rt.TypePointer
	}
	panic("core: unknown slot trace")
}

// applyRegTrace reports whether register r holds a pointer at the call
// point in this frame, per the frame's register trace information.
func (sc *StackScanner) applyRegTrace(fi *rt.FrameInfo, r, base int, regStatus uint32, isTop bool) bool {
	tr := fi.Regs[r]
	switch tr.Kind {
	case rt.TracePointer:
		return true
	case rt.TraceNonPointer:
		return false
	case rt.TraceCalleeSave:
		// Register preserved from the caller: status unchanged.
		return regStatus>>r&1 == 1
	case rt.TraceCompute:
		sc.meter.Charge(costmodel.GCStack, costmodel.ComputeTrace)
		return sc.typeValue(tr, base, isTop) == rt.TypePointer
	}
	panic("core: unknown register trace")
}

// resolveRegTrace decides pointer-ness of live register r for the top
// frame, whose register contents are current.
func (sc *StackScanner) resolveRegTrace(fi *rt.FrameInfo, r int, regStatus uint32) bool {
	return sc.applyRegTrace(fi, r, sc.stack.FrameBase(sc.stack.FrameCount()-1), regStatus, true)
}

// typeValue loads the runtime type a COMPUTE trace points at: a slot of
// the same frame, or a register (valid only for the top frame, whose
// register contents are live).
func (sc *StackScanner) typeValue(tr rt.SlotTrace, base int, isTop bool) uint64 {
	if tr.ArgIsReg {
		if !isTop {
			panic("core: COMPUTE-from-register trace in a suspended frame")
		}
		return sc.stack.Reg(int(tr.Arg))
	}
	return sc.stack.RawSlot(base + int(tr.Arg))
}

// InvalidateCache discards all cached scan results (used by tests and when
// reconfiguring a collector).
func (sc *StackScanner) InvalidateCache() {
	sc.cache = sc.cache[:0]
}

// CacheLen returns the number of cached frame entries.
func (sc *StackScanner) CacheLen() int { return len(sc.cache) }
