package core

import (
	"sort"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
)

// This file holds the non-moving old generation's shared bookkeeping: the
// per-word mark/allocation bitmap, the size-segregated free lists, and
// the filler objects that keep the tenured space decodable. Like
// finishCopy and claimForward it is deliberately common to both kernel
// sets — the optimized and reference sweep/compact kernels (see
// kernels_marksweep.go, kernels_markcompact.go) mutate this state through
// the same operations in the same order, so the cross-kernel equivalence
// tests compare identical structures. It sits inside the kernel seam
// because free spans are tiled with raw-encoded filler headers and direct
// free-list allocation writes object headers into reused storage.

// oldMaxClass is the largest exact-size free-list class in words; spans
// above it go to the sorted big-span list (first-fit).
const oldMaxClass = 32

// freeSpan is one free run of the tenured space: words
// [off, off+size) hold a single raw-array filler object.
type freeSpan struct {
	off  uint64
	size uint64
}

// oldSpace is the non-moving tenured space's side state. The space
// itself (heap space id) is the ordinary bump arena the copying
// collector uses; oldSpace adds the mark/allocation bitmap and the free
// lists that let objects be reclaimed and reallocated in place. The
// tenured space is never replaced: its id is stable for the life of the
// collector (the copying collector's second semispace stays an unused
// zero-capacity reservation).
type oldSpace struct {
	heap *mem.Heap
	id   mem.SpaceID

	// bitmap holds one bit per word of the space: bit off-1 of the flat
	// array corresponds to word offset off (offsets are 1-based). Between
	// collections it is the allocation bitmap — set exactly on words
	// inside allocated objects, clear on filler (free) words. During a
	// non-moving major it is cleared and rebuilt as the mark bitmap; the
	// sweep (or slide) restores the allocation reading automatically.
	bitmap []uint64

	// classes[k] holds the offsets of free spans of exactly k+1 words,
	// popped LIFO. big holds larger spans in ascending offset order,
	// allocated first-fit.
	classes   [oldMaxClass][]uint64
	big       []freeSpan
	freeWords uint64

	// marksFresh is set at the end of a non-moving major collection —
	// the bitmap then equals the just-traced reachable set — and cleared
	// on the first mutator allocation or store, standing the sanitizer's
	// reachability cross-check down (see Generational.noteOldMutation).
	marksFresh bool
}

// newOldSpace creates the side state for the tenured space id.
func newOldSpace(heap *mem.Heap, id mem.SpaceID) *oldSpace {
	return &oldSpace{heap: heap, id: id}
}

// ensureBitmap grows the bitmap to cover word offsets [1, words].
func (os *oldSpace) ensureBitmap(words uint64) {
	need := int((words + 63) / 64)
	for len(os.bitmap) < need {
		os.bitmap = append(os.bitmap, 0)
	}
}

// clearBitmap zeroes every bit and extends coverage to the current
// allocation frontier (a non-moving major starts here, then marking
// rebuilds the live set).
func (os *oldSpace) clearBitmap() {
	clear(os.bitmap)
	os.ensureBitmap(os.heap.Space(os.id).Used())
}

// bitSet reports whether the bit for word offset off is set.
func (os *oldSpace) bitSet(off uint64) bool {
	i := off - 1
	w := i >> 6
	if w >= uint64(len(os.bitmap)) {
		return false
	}
	return os.bitmap[w]>>(i&63)&1 == 1
}

// setRange sets the bits for word offsets [off, off+n).
func (os *oldSpace) setRange(off, n uint64) {
	os.ensureBitmap(off + n - 1)
	for i := off - 1; i < off-1+n; i++ {
		os.bitmap[i>>6] |= 1 << (i & 63)
	}
}

// flipBit inverts one bit (fault injection only).
func (os *oldSpace) flipBit(off uint64) {
	os.ensureBitmap(off)
	i := off - 1
	os.bitmap[i>>6] ^= 1 << (i & 63)
}

// writeFiller tiles the free span [off, off+size) with one decodable
// object: a raw array of size-1 payload words from the reserved site 0.
// Fillers keep the space a gap-free tiling — heap walks (card scans, the
// sanitizer, the sweep itself) decode them like any object and skip them
// as pointer-free.
//
//gc:nobarrier filler headers describe dead storage; they carry no pointer payload, so no remembered-set entry can arise
func (os *oldSpace) writeFiller(off, size uint64) {
	os.heap.Store(mem.MakeAddr(os.id, off), obj.PackHeader(obj.RawArray, size-1, 0))
}

// insertFree adds the span to the matching free list and the free-word
// count. The span must already be tiled by a filler.
func (os *oldSpace) insertFree(off, size uint64) {
	os.freeWords += size
	if size <= oldMaxClass {
		os.classes[size-1] = append(os.classes[size-1], off)
		return
	}
	i := sort.Search(len(os.big), func(i int) bool { return os.big[i].off >= off })
	os.big = append(os.big, freeSpan{})
	copy(os.big[i+1:], os.big[i:])
	os.big[i] = freeSpan{off: off, size: size}
}

// alloc carves size words out of the free lists, returning mem.Nil when
// no span fits (the caller then bump-allocates). The smallest exact
// class that fits is tried first, then the big list first-fit; a larger
// span is split, with the remainder re-tiled as a filler and re-listed.
// The allocated range's bits are set (free-list allocation happens both
// at mutator time — pretenuring — and during collection — promotion —
// and the allocation-bitmap invariant must hold in both). Free-list
// probing charges nothing: the cost model prices allocation by the
// AllocObject/AllocWord/AllocPretenure constants the collector entry
// points already charge, identically across old-generation collectors.
func (os *oldSpace) alloc(size uint64) mem.Addr {
	if size <= oldMaxClass {
		for c := size; c <= oldMaxClass; c++ {
			lst := os.classes[c-1]
			if n := len(lst); n > 0 {
				off := lst[n-1]
				os.classes[c-1] = lst[:n-1]
				os.take(off, c, size)
				return mem.MakeAddr(os.id, off)
			}
		}
	}
	for i := range os.big {
		if os.big[i].size >= size {
			s := os.big[i]
			os.big = append(os.big[:i], os.big[i+1:]...)
			os.take(s.off, s.size, size)
			return mem.MakeAddr(os.id, s.off)
		}
	}
	return mem.Nil
}

// take splits the chosen span (off, have words) into the allocation
// [off, off+size) and a re-listed filler remainder.
func (os *oldSpace) take(off, have, size uint64) {
	os.freeWords -= have
	if rem := have - size; rem > 0 {
		os.writeFiller(off+size, rem)
		os.insertFree(off+size, rem)
	}
	os.setRange(off, size)
}

// allocObject allocates an object into a free-list span, zeroing the
// span's stale words before writing the header (free spans hold old
// filler and dead-object bytes; Space.Alloc's lazy zeroing only covers
// the bump frontier). Returns false when no span fits.
//
//gc:nobarrier header and mask initialization of a just-carved span; the payload is zeroed and no pointer is stored
func (os *oldSpace) allocObject(k obj.Kind, length uint64, site obj.SiteID, mask uint64) (mem.Addr, bool) {
	size := obj.SizeWords(k, length)
	a := os.alloc(size)
	if a.IsNil() {
		return mem.Nil, false
	}
	os.marksFresh = false
	w := os.heap.Space(os.id).Raw()
	off := a.Offset()
	clear(w[off : off+size])
	w[off] = obj.PackHeader(k, length, site)
	if k == obj.Record {
		w[off+1] = mask
	}
	return a, true
}

// emitFreeRun tiles one coalesced free run with a single filler and
// lists it (no-op for an empty run) — the sweep kernels' run sink.
func (os *oldSpace) emitFreeRun(off, n uint64) {
	if n == 0 {
		return
	}
	os.writeFiller(off, n)
	os.insertFree(off, n)
}

// freeSpans returns every free span in ascending offset order — the
// deterministic pre-sweep cursor the sweep kernels and the sanitizer
// walk.
func (os *oldSpace) freeSpans() []freeSpan {
	out := make([]freeSpan, 0, len(os.big))
	for c := uint64(1); c <= oldMaxClass; c++ {
		for _, off := range os.classes[c-1] {
			out = append(out, freeSpan{off: off, size: c})
		}
	}
	out = append(out, os.big...)
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	return out
}

// resetFree empties every free list (the sweep rebuilds them from
// scratch; the compaction slide leaves no holes at all).
func (os *oldSpace) resetFree() {
	for c := range os.classes {
		os.classes[c] = os.classes[c][:0]
	}
	os.big = os.big[:0]
	os.freeWords = 0
}
