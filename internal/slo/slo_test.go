package slo

import (
	"bytes"
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/trace"
)

// synthRun builds a reconciling RunData whose collections occupy the
// given [start, end) intervals on the total-cycle timeline of a T-cycle
// run. Pause cost is charged to GCCopy inside a single copy phase, client
// cycles fill the gaps, so Summarize/Reconcile accept it.
func synthRun(t uint64, pauses [][2]uint64) *trace.RunData {
	d := &trace.RunData{Label: "synth"}
	var mass uint64
	for i, p := range pauses {
		s, e := p[0], p[1]
		begin := costmodel.Breakdown{Client: costmodel.Cycles(s - mass), GCCopy: costmodel.Cycles(mass)}
		mass += e - s
		end := costmodel.Breakdown{Client: begin.Client, GCCopy: costmodel.Cycles(mass)}
		seq := uint64(i + 1)
		cc := trace.GCCounters{}
		d.Events = append(d.Events,
			trace.Event{Kind: trace.EvGCBegin, Seq: seq, Break: begin},
			trace.Event{Kind: trace.EvPhaseBegin, Seq: seq, Phase: trace.PhaseCopy, Break: begin},
			trace.Event{Kind: trace.EvPhaseEnd, Seq: seq, Phase: trace.PhaseCopy, Break: end},
			trace.Event{Kind: trace.EvGCEnd, Seq: seq, Break: end, Counters: &cc},
		)
	}
	d.Final = costmodel.Breakdown{Client: costmodel.Cycles(t - mass), GCCopy: costmodel.Cycles(mass)}
	return d
}

// TestPercentileEdgeCases pins the nearest-rank definition on the empty,
// singleton, and tied inputs the SLO tables must not misreport.
func TestPercentileEdgeCases(t *testing.T) {
	if _, ok := trace.Percentile(nil, 500000); ok {
		t.Fatal("empty input reported a percentile")
	}
	one := []uint64{42}
	for _, ppm := range []uint64{0, 1, 500000, 999000, 1000000} {
		if v, ok := trace.Percentile(one, ppm); !ok || v != 42 {
			t.Fatalf("singleton percentile %d: got %d, %v", ppm, v, ok)
		}
	}
	// Ties: the nearest-rank value is an element, and runs of equal values
	// absorb the percentiles whose ranks land inside the run.
	ties := []uint64{1, 5, 5, 5, 9}
	cases := map[uint64]uint64{0: 1, 200000: 1, 200001: 5, 600000: 5, 800000: 5, 800001: 9, 1000000: 9}
	for ppm, want := range cases {
		if v, _ := trace.Percentile(ties, ppm); v != want {
			t.Errorf("percentile %d of %v: got %d, want %d", ppm, ties, v, want)
		}
	}
	// p50 of an even run is the lower middle (rank ceil(n/2)).
	if v, _ := trace.Percentile([]uint64{1, 2, 3, 4}, 500000); v != 2 {
		t.Errorf("p50 of 1..4: got %d, want 2", v)
	}
}

// TestMMUHandOracle pins the sweep math on a run small enough to verify
// by hand: T=100 with one 10-cycle pause at [10,20).
func TestMMUHandOracle(t *testing.T) {
	d := synthRun(100, [][2]uint64{{10, 20}})
	rr, err := Compute(d, []uint64{5, 20, 200})
	if err != nil {
		t.Fatal(err)
	}
	// w=5: the window fits inside the pause, so the worst window is fully
	// paused and MMU is 0.
	w5 := rr.Windows[0]
	if w5.MMUppm != 0 || w5.WorstPause != 5 {
		t.Errorf("w=5: got MMU %d ppm, worst pause %d; want 0, 5", w5.MMUppm, w5.WorstPause)
	}
	// w=20: worst windows hold the whole 10-cycle pause -> MMU 50%. The
	// mean overlap is 150/80 (10 cycles for starts 0..10, ramping to 0 by
	// start 20), so AMU = 1 - 150/1600 = 90.625%.
	w20 := rr.Windows[1]
	if w20.MMUppm != 500000 {
		t.Errorf("w=20: MMU %d ppm, want 500000", w20.MMUppm)
	}
	if w20.AMUppm != 906250 {
		t.Errorf("w=20: AMU %d ppm, want 906250", w20.AMUppm)
	}
	if w20.WorstStart != 0 || w20.WorstPause != 10 {
		t.Errorf("w=20: worst window (%d, pause %d), want (0, 10)", w20.WorstStart, w20.WorstPause)
	}
	// w=200 > T: a single whole-run placement; both curves collapse to
	// whole-run utilization 90%.
	w200 := rr.Windows[2]
	if w200.MMUppm != 900000 || w200.AMUppm != 900000 {
		t.Errorf("w=200: got MMU %d / AMU %d ppm, want 900000 / 900000", w200.MMUppm, w200.AMUppm)
	}
	if w200.WorstPause != 10 {
		t.Errorf("w=200: worst pause %d, want 10 (total pause mass)", w200.WorstPause)
	}
	if rr.Pauses.Count != 1 || rr.Pauses.Max != 10 || rr.Pauses.P50 != 10 {
		t.Errorf("pause stats: %+v", rr.Pauses)
	}
}

// bruteWindow recomputes one sweep point by brute force: overlap is
// evaluated at every integer start (its breakpoints are integers, so the
// true minimum is at an integer), and the continuous mean via the exact
// trapezoid sum over unit steps.
func bruteWindow(pauses [][2]uint64, T, w uint64) (mmu, amu uint64) {
	ov := func(t uint64) uint64 {
		var m uint64
		for _, p := range pauses {
			lo, hi := max64(t, p[0]), min64(t+w, p[1])
			if hi > lo {
				m += hi - lo
			}
		}
		return m
	}
	if w >= T {
		return mulDiv(T-ov(0), 1e6, T), mulDiv(T-ov(0), 1e6, T)
	}
	maxOv := uint64(0)
	var twoI uint64
	for t := uint64(0); t <= T-w; t++ {
		o := ov(t)
		if o > maxOv {
			maxOv = o
		}
		if t < T-w {
			twoI += o + ov(t+1)
		}
	}
	twoD := 2 * (T - w) * w
	return mulDiv(w-maxOv, 1e6, w), mulDiv(twoD-twoI, 1e6, twoD)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TestMMUAgainstBruteForce cross-checks the closed-form sweep against the
// brute-force evaluation on several pause layouts, including degenerate
// windows (larger than the run, smaller than the shortest pause,
// exactly the run length).
func TestMMUAgainstBruteForce(t *testing.T) {
	layouts := [][][2]uint64{
		{},
		{{10, 20}},
		{{0, 7}},                                // pause at the very start
		{{93, 100}},                             // pause at the very end
		{{5, 10}, {40, 60}, {61, 62}},           // clustered + isolated
		{{0, 3}, {20, 23}, {40, 43}, {97, 100}}, // periodic-ish
	}
	windows := []uint64{1, 2, 5, 13, 20, 50, 99, 100, 101, 250}
	for li, pauses := range layouts {
		d := synthRun(100, pauses)
		rr, err := Compute(d, windows)
		if err != nil {
			t.Fatal(err)
		}
		for wi, w := range windows {
			wantMMU, wantAMU := bruteWindow(pauses, 100, w)
			got := rr.Windows[wi]
			if got.MMUppm != wantMMU {
				t.Errorf("layout %d w=%d: MMU %d ppm, brute force says %d", li, w, got.MMUppm, wantMMU)
			}
			if got.AMUppm != wantAMU {
				t.Errorf("layout %d w=%d: AMU %d ppm, brute force says %d", li, w, got.AMUppm, wantAMU)
			}
			if got.MMUppm > got.AMUppm {
				t.Errorf("layout %d w=%d: MMU %d above AMU %d", li, w, got.MMUppm, got.AMUppm)
			}
		}
	}
}

// TestComputeDegenerate covers the empty run: no collections, zero-length
// timeline.
func TestComputeDegenerate(t *testing.T) {
	rr, err := Compute(&trace.RunData{Label: "empty"}, []uint64{10})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Pauses.Count != 0 || rr.Pauses.Max != 0 {
		t.Errorf("empty run pause stats: %+v", rr.Pauses)
	}
	if rr.Windows[0].MMUppm != 1e6 || rr.Windows[0].AMUppm != 1e6 {
		t.Errorf("empty run utilization: %+v", rr.Windows[0])
	}
	if _, err := Compute(&trace.RunData{}, nil); err == nil {
		t.Error("empty window sweep accepted")
	}
	if _, err := Compute(&trace.RunData{}, []uint64{5, 5}); err == nil {
		t.Error("non-ascending window sweep accepted")
	}
	if _, err := Compute(&trace.RunData{}, []uint64{0, 5}); err == nil {
		t.Error("zero window accepted")
	}
}

// TestRequestAttribution checks the request-latency stats, including the
// pause-inside-request attribution read off the span breakdowns.
func TestRequestAttribution(t *testing.T) {
	d := synthRun(1000, [][2]uint64{{100, 200}})
	bd := func(client, gc uint64) costmodel.Breakdown {
		return costmodel.Breakdown{Client: costmodel.Cycles(client), GCCopy: costmodel.Cycles(gc)}
	}
	d.Reqs = []trace.RequestSpan{
		{ID: 0, Begin: bd(10, 0), End: bd(50, 0)},       // latency 40, no GC
		{ID: 1, Begin: bd(90, 0), End: bd(110, 100)},    // latency 120, the full pause inside
		{ID: 2, Begin: bd(300, 100), End: bd(340, 100)}, // latency 40, no GC
	}
	rr, err := Compute(d, []uint64{100})
	if err != nil {
		t.Fatal(err)
	}
	q := rr.Requests
	if q == nil {
		t.Fatal("no request stats")
	}
	if q.Count != 3 || q.Max != 120 || q.P50 != 40 || q.P999 != 120 {
		t.Errorf("request stats: %+v", *q)
	}
	if q.GC != 100 || q.GCHit != 1 {
		t.Errorf("attribution: %d cycles across %d requests, want 100 across 1", q.GC, q.GCHit)
	}
	// A batch run reports no request section at all.
	if rr2, _ := Compute(synthRun(1000, nil), []uint64{100}); rr2.Requests != nil {
		t.Error("batch run grew a request section")
	}
}

// TestReportRoundTrip: write -> read -> write is byte-identical, the read
// report validates, and corrupted streams are rejected.
func TestReportRoundTrip(t *testing.T) {
	d := synthRun(1000, [][2]uint64{{100, 200}, {500, 530}})
	d.Reqs = []trace.RequestSpan{{ID: 7,
		Begin: costmodel.Breakdown{Client: 50},
		End:   costmodel.Breakdown{Client: 120, GCCopy: 30}}}
	rr, err := Compute(d, DefaultWindows)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(DefaultWindows, rr)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	var a bytes.Buffer
	if err := rep.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := back.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("read -> write is not byte-identical")
	}

	for name, mangle := range map[string]func(*Report){
		"bad schema":       func(r *Report) { r.Schema = 99 },
		"descending sweep": func(r *Report) { r.Windows = []uint64{10, 5} },
		"mmu above amu":    func(r *Report) { r.Runs[0].Windows[0].MMUppm = r.Runs[0].Windows[0].AMUppm + 1 },
		"ppm above 1e6":    func(r *Report) { r.Runs[0].Windows[0].AMUppm = 1e6 + 1 },
		"percentile order": func(r *Report) { r.Runs[0].Pauses.P50 = r.Runs[0].Pauses.Max + 1 },
		"gc above total":   func(r *Report) { r.Runs[0].GC = r.Runs[0].Total + 1 },
		"gc hits above n":  func(r *Report) { r.Runs[0].Requests.GCHit = r.Runs[0].Requests.Count + 1 },
	} {
		broken, err := ReadJSONL(bytes.NewReader(a.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		mangle(broken)
		if err := broken.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}

	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"t":"slo_run","run":0}`))); err == nil {
		t.Error("run record before header accepted")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte("{\"t\":\"slo_header\",\"schema\":1,\"clock_hz\":1,\"windows\":[1],\"runs\":0}\n{\"t\":\"bogus\",\"run\":0}\n"))); err == nil {
		t.Error("unknown record type accepted")
	}
}
