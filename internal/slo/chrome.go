package slo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome counter-track sink for utilization curves: each run becomes one
// thread carrying "mmu" / "amu" counter ("C") events whose timestamp is
// the window size in cycles and whose values are the stored ppm
// integers. Loaded in Perfetto, the counter chart plots utilization
// against window size — the paper-standard MMU curve — with no floats in
// the file, so the output is byte-identical everywhere.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeCounters writes the report's MMU/AMU curves as Chrome
// trace-event JSON counter tracks.
func (r *Report) WriteChromeCounters(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "gcsim slo"}}); err != nil {
		return err
	}
	for tid, rr := range r.Runs {
		label := rr.Label
		if label == "" {
			label = fmt.Sprintf("run %d", tid)
		}
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": label}}); err != nil {
			return err
		}
		for _, ws := range rr.Windows {
			if err := emit(chromeEvent{Name: "mmu", Ph: "C", Pid: 0, Tid: tid, Ts: ws.Window,
				Args: map[string]any{"ppm": ws.MMUppm}}); err != nil {
				return err
			}
			if err := emit(chromeEvent{Name: "amu", Ph: "C", Pid: 0, Tid: tid, Ts: ws.Window,
				Args: map[string]any{"ppm": ws.AMUppm}}); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMMUTable renders the utilization curves as a compact table: one
// row per run, one column per sweep window, MMU then AMU blocks.
// Percentages are derived from the stored ppm values only at render time.
func (r *Report) WriteMMUTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeBlock := func(title string, pick func(WindowStats) uint64) {
		fmt.Fprintln(bw, title)
		fmt.Fprintf(bw, "%-44s", "window (cycles):")
		for _, win := range r.Windows {
			fmt.Fprintf(bw, " %9d", win)
		}
		fmt.Fprintln(bw)
		for i, rr := range r.Runs {
			label := rr.Label
			if label == "" {
				label = fmt.Sprintf("run %d", i)
			}
			fmt.Fprintf(bw, "%-44s", label)
			for _, ws := range rr.Windows {
				fmt.Fprintf(bw, " %8.2f%%", float64(pick(ws))/1e4)
			}
			fmt.Fprintln(bw)
		}
	}
	writeBlock("MMU (minimum mutator utilization over any window of w cycles)",
		func(ws WindowStats) uint64 { return ws.MMUppm })
	fmt.Fprintln(bw)
	writeBlock("AMU (average mutator utilization over all windows of w cycles)",
		func(ws WindowStats) uint64 { return ws.AMUppm })
	return bw.Flush()
}
