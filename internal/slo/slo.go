// Package slo is the deterministic latency-analytics layer: it turns a
// run's frozen trace (internal/trace RunData) into the numbers a latency
// SLO is written against — exact pause percentiles, minimum- and
// average-mutator-utilization curves over a sweep of window sizes,
// max-pause-density windows, and request-latency percentiles for
// workloads that serve requests.
//
// Everything here is a pure function of the trace stream, computed in
// integer arithmetic on the simulated-cycle timeline (ratios are held as
// parts per million, and the one computation whose intermediates exceed
// 64 bits — the AMU integral — runs in math/big). No floats enter any
// stored quantity, so a report is byte-identical across runs, machines,
// and harness parallelism levels, like the trace it was computed from.
//
// Timeline conventions: a collection's interval on the run timeline is
// [gc_begin.Total(), gc_end.Total()] — everything the mutator could not
// run during. Pause *percentiles* use the GC-component cycles of each
// collection (the collector's own work, matching the trace layer's Pause
// records); utilization *curves* use the total-timeline intervals, since
// utilization asks "what fraction of this wall window did the mutator
// own". A request's latency is End.Total()-Begin.Total() of its span, and
// the GC share inside it is End.GC()-Begin.GC() — the attribution rule:
// whatever collector work the meter accumulated between arrival and
// completion landed inside that request.
package slo

import (
	"fmt"
	"math/big"
	"math/bits"
	"sort"

	"tilgc/internal/costmodel"
	"tilgc/internal/trace"
)

// SchemaVersion is the SLO-report format version. Bump when record shapes
// or metric definitions change incompatibly.
const SchemaVersion = 1

// DefaultWindows is the standard MMU window sweep, in simulated cycles.
var DefaultWindows = []uint64{1_000, 10_000, 100_000, 1_000_000}

// Report is a schema-versioned SLO report: one RunReport per traced run,
// all computed over the same window sweep.
type Report struct {
	Schema  int
	ClockHz uint64
	Windows []uint64
	Runs    []*RunReport
}

// NewReport wraps run reports computed with windows in a current-schema
// report.
func NewReport(windows []uint64, runs ...*RunReport) *Report {
	return &Report{Schema: SchemaVersion, ClockHz: uint64(costmodel.ClockHz), Windows: windows, Runs: runs}
}

// RunReport is one run's SLO view.
type RunReport struct {
	Label       string
	Total       uint64 // run length in simulated cycles (final meter total)
	GC          uint64 // collector cycles (final meter GC total)
	Collections uint64
	Majors      uint64
	Pauses      PauseStats
	Windows     []WindowStats
	// Requests is nil when the run recorded no request spans (batch
	// workloads); server workloads always produce it.
	Requests *RequestStats
}

// PauseStats are exact nearest-rank percentiles over the run's
// per-collection pause costs (GC-component cycles).
type PauseStats struct {
	Count uint64
	Total uint64
	P50   uint64
	P90   uint64
	P99   uint64
	P999  uint64
	Max   uint64
}

// WindowStats is one point on the utilization curves: for sliding windows
// of Window cycles, the minimum (MMU) and average (AMU) fraction of the
// window the mutator owned, in parts per million, plus the
// max-pause-density window realizing the minimum — where an SLO would
// have been violated hardest.
type WindowStats struct {
	Window     uint64
	MMUppm     uint64
	AMUppm     uint64
	WorstStart uint64 // start cycle of the worst window
	WorstPause uint64 // pause cycles inside the worst window
}

// RequestStats are exact nearest-rank percentiles over request latencies,
// plus the pause attribution: how many collector cycles landed inside
// requests, and how many requests absorbed at least one.
type RequestStats struct {
	Count uint64
	P50   uint64
	P90   uint64
	P99   uint64
	P999  uint64
	Max   uint64
	GC    uint64 // collector cycles that landed inside requests
	GCHit uint64 // requests with at least one collector cycle inside
}

// interval is one collection's span on the total-cycle timeline.
type interval struct{ s, e uint64 }

// Compute derives a run's SLO report from its frozen trace. windows must
// be ascending, unique, and nonzero.
func Compute(d *trace.RunData, windows []uint64) (*RunReport, error) {
	if err := checkWindows(windows); err != nil {
		return nil, err
	}
	s := d.Summarize()
	if s.ReconcileErr != nil {
		return nil, fmt.Errorf("slo: trace does not reconcile: %w", s.ReconcileErr)
	}
	r := &RunReport{
		Label:       d.Label,
		Total:       uint64(d.Final.Total()),
		GC:          uint64(d.Final.GC()),
		Collections: s.GCs,
		Majors:      s.Majors,
	}

	pc := s.PauseCycles()
	r.Pauses.Count = uint64(len(pc))
	for _, c := range pc {
		r.Pauses.Total += c
	}
	r.Pauses.P50, _ = trace.Percentile(pc, 500000)
	r.Pauses.P90, _ = trace.Percentile(pc, 900000)
	r.Pauses.P99, _ = trace.Percentile(pc, 990000)
	r.Pauses.P999, _ = trace.Percentile(pc, 999000)
	if n := len(pc); n > 0 {
		r.Pauses.Max = pc[n-1]
	}

	iv := pauseIntervals(d)
	for _, w := range windows {
		r.Windows = append(r.Windows, utilizationWindow(iv, r.Total, w))
	}

	if len(d.Reqs) > 0 {
		rs := &RequestStats{Count: uint64(len(d.Reqs))}
		lat := make([]uint64, len(d.Reqs))
		for i, q := range d.Reqs {
			lat[i] = uint64(q.Latency())
			gc := uint64(q.GCCycles())
			rs.GC += gc
			if gc > 0 {
				rs.GCHit++
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rs.P50, _ = trace.Percentile(lat, 500000)
		rs.P90, _ = trace.Percentile(lat, 900000)
		rs.P99, _ = trace.Percentile(lat, 990000)
		rs.P999, _ = trace.Percentile(lat, 999000)
		rs.Max = lat[len(lat)-1]
		r.Requests = rs
	}
	return r, nil
}

// ComputeFile derives the SLO report for every run of a trace file.
func ComputeFile(f *trace.File, windows []uint64) (*Report, error) {
	rep := NewReport(windows)
	for i, d := range f.Runs {
		rr, err := Compute(d, windows)
		if err != nil {
			return nil, fmt.Errorf("run %d (%s): %w", i, d.Label, err)
		}
		rep.Runs = append(rep.Runs, rr)
	}
	return rep, nil
}

func checkWindows(windows []uint64) error {
	if len(windows) == 0 {
		return fmt.Errorf("slo: empty window sweep")
	}
	for i, w := range windows {
		if w == 0 {
			return fmt.Errorf("slo: window %d is zero", i)
		}
		if i > 0 && windows[i-1] >= w {
			return fmt.Errorf("slo: windows not strictly ascending at %d", i)
		}
	}
	return nil
}

// pauseIntervals extracts the collection spans on the total-cycle
// timeline. Collection spans never overlap and events are in emission
// order, so the result is sorted and disjoint.
func pauseIntervals(d *trace.RunData) []interval {
	var iv []interval
	var begin uint64
	for _, e := range d.Events {
		switch e.Kind {
		case trace.EvGCBegin:
			begin = uint64(e.At())
		case trace.EvGCEnd:
			iv = append(iv, interval{s: begin, e: uint64(e.At())})
		}
	}
	return iv
}

// utilizationWindow computes one sweep point: MMU, AMU, and the worst
// window for sliding windows of w cycles over a run of T cycles with the
// given pause intervals.
//
// MMU: the minimum over all placements t in [0, T-w] of
// (w - pause mass in [t, t+w]) / w. The overlap function is piecewise
// linear in t with slope changes only where a window edge crosses a pause
// boundary, so its maximum is attained with an edge aligned to a
// boundary; evaluating the aligned candidates (clamped into range) is
// exact, not an approximation.
//
// AMU: the mean over the same placements, from the closed form
// integral(overlap) = sum over pauses of integral over x in [s,e) of
// m(x), where m(x) = min(x, w, T-w, T-x) is the measure of windows
// covering cycle x. m simplifies to min(min(x, T-x), c) with
// c = min(w, T-w), and its antiderivative is piecewise quadratic —
// evaluated exactly in math/big since the squares overflow 64 bits.
//
// Degeneracies: w >= T means a single whole-run placement, so MMU = AMU =
// whole-run utilization; T == 0 reports full utilization.
func utilizationWindow(iv []interval, T, w uint64) WindowStats {
	ws := WindowStats{Window: w}
	if T == 0 {
		ws.MMUppm, ws.AMUppm = 1e6, 1e6
		return ws
	}
	var totalPause uint64
	for _, p := range iv {
		totalPause += p.e - p.s
	}
	if w >= T {
		// One placement: the whole run.
		util := mulDiv(T-totalPause, 1e6, T)
		ws.MMUppm, ws.AMUppm = util, util
		ws.WorstStart, ws.WorstPause = 0, totalPause
		return ws
	}

	// Prefix pause mass: cum[i] = mass of intervals 0..i-1.
	cum := make([]uint64, len(iv)+1)
	for i, p := range iv {
		cum[i+1] = cum[i] + (p.e - p.s)
	}
	// mass(t) = pause mass in [0, t].
	mass := func(t uint64) uint64 {
		// First interval whose end reaches past t.
		i := sort.Search(len(iv), func(i int) bool { return iv[i].e >= t })
		m := cum[i]
		if i < len(iv) && iv[i].s < t {
			m += t - iv[i].s
		}
		return m
	}

	// Candidate starts: window left edge at a pause start, or right edge
	// at a pause end, clamped into [0, T-w].
	cand := make([]uint64, 0, 2*len(iv)+1)
	cand = append(cand, 0)
	for _, p := range iv {
		if p.s <= T-w {
			cand = append(cand, p.s)
		} else {
			cand = append(cand, T-w)
		}
		if p.e >= w {
			cand = append(cand, p.e-w)
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	var maxOv, worstStart uint64
	for i, t := range cand {
		if i > 0 && t == cand[i-1] {
			continue
		}
		if ov := mass(t+w) - mass(t); ov > maxOv {
			maxOv, worstStart = ov, t
		}
	}
	ws.MMUppm = mulDiv(w-maxOv, 1e6, w)
	ws.WorstStart, ws.WorstPause = worstStart, maxOv

	// AMU: 2*integral(overlap) summed exactly, then
	// AMU = (D - I) / D with D = (T-w)*w.
	c := w // min(w, T-w); w < T here
	if T-w < c {
		c = T - w
	}
	twoI := new(big.Int)
	for _, p := range iv {
		twoI.Add(twoI, new(big.Int).Sub(twoF(p.e, T, c), twoF(p.s, T, c)))
	}
	twoD := new(big.Int).Mul(new(big.Int).SetUint64(T-w), new(big.Int).SetUint64(w))
	twoD.Lsh(twoD, 1)
	num := new(big.Int).Sub(twoD, twoI)
	num.Mul(num, big.NewInt(1e6))
	num.Quo(num, twoD)
	ws.AMUppm = num.Uint64()
	return ws
}

// twoF returns twice the antiderivative of m(t) = min(min(t, T-t), c)
// evaluated at x, exactly: 2F(x) = x^2 for x <= c; c^2 + 2c(x-c) on the
// plateau; and c^2 + 2c(T-2c) + c^2 - (T-x)^2 on the falling ramp.
func twoF(x, T, c uint64) *big.Int {
	bx := new(big.Int).SetUint64(x)
	bc := new(big.Int).SetUint64(c)
	switch {
	case x <= c:
		return bx.Mul(bx, bx)
	case x <= T-c:
		out := new(big.Int).Mul(bc, bc)
		ramp := new(big.Int).SetUint64(x - c)
		ramp.Mul(ramp, bc).Lsh(ramp, 1)
		return out.Add(out, ramp)
	default:
		out := new(big.Int).Mul(bc, bc)
		plateau := new(big.Int).SetUint64(T - 2*c)
		plateau.Mul(plateau, bc).Lsh(plateau, 1)
		out.Add(out, plateau)
		out.Add(out, new(big.Int).Mul(bc, bc))
		tail := new(big.Int).SetUint64(T - x)
		tail.Mul(tail, tail)
		return out.Sub(out, tail)
	}
}

// mulDiv returns a*b/c with a 128-bit intermediate. Callers guarantee the
// quotient fits in 64 bits (here a <= c, so the quotient is at most b).
func mulDiv(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	q, _ := bits.Div64(hi, lo, c)
	return q
}
