package slo

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"tilgc/internal/costmodel"
)

// JSONL report sink, mirroring the trace sink's contract: one record per
// line, schema-versioned, strict reader (unknown record types and fields
// rejected), and read -> write byte-identity. Record kinds, in stream
// order:
//
//	{"t":"slo_header","schema":1,"clock_hz":150000000,"windows":[...],"runs":N}
//	{"t":"slo_run","run":i,"label":..,"total":..,"gc":..,"collections":..,"majors":..}
//	{"t":"slo_pauses","run":i,"count":..,"total":..,"p50":..,"p90":..,"p99":..,"p999":..,"max":..}
//	{"t":"slo_window","run":i,"window":..,"mmu_ppm":..,"amu_ppm":..,"worst_start":..,"worst_pause":..}
//	{"t":"slo_requests","run":i,"count":..,...}   request-serving runs only
//
// All quantities are integers (cycles or ppm); the stream contains no
// floats and no wall-clock values.

type recHeader struct {
	T       string   `json:"t"`
	Schema  int      `json:"schema"`
	ClockHz uint64   `json:"clock_hz"`
	Windows []uint64 `json:"windows"`
	Runs    int      `json:"runs"`
}

type recRun struct {
	T           string `json:"t"`
	Run         int    `json:"run"`
	Label       string `json:"label"`
	Total       uint64 `json:"total"`
	GC          uint64 `json:"gc"`
	Collections uint64 `json:"collections"`
	Majors      uint64 `json:"majors"`
}

type recPauses struct {
	T     string `json:"t"`
	Run   int    `json:"run"`
	Count uint64 `json:"count"`
	Total uint64 `json:"total"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
	Max   uint64 `json:"max"`
}

type recWindow struct {
	T          string `json:"t"`
	Run        int    `json:"run"`
	Window     uint64 `json:"window"`
	MMUppm     uint64 `json:"mmu_ppm"`
	AMUppm     uint64 `json:"amu_ppm"`
	WorstStart uint64 `json:"worst_start"`
	WorstPause uint64 `json:"worst_pause"`
}

type recRequests struct {
	T     string `json:"t"`
	Run   int    `json:"run"`
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	P999  uint64 `json:"p999"`
	Max   uint64 `json:"max"`
	GC    uint64 `json:"gc"`
	GCHit uint64 `json:"gc_hit"`
}

// WriteJSONL writes the report as schema-versioned JSONL.
func (r *Report) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(recHeader{T: "slo_header", Schema: r.Schema, ClockHz: r.ClockHz,
		Windows: r.Windows, Runs: len(r.Runs)}); err != nil {
		return err
	}
	for i, rr := range r.Runs {
		if err := enc.Encode(recRun{T: "slo_run", Run: i, Label: rr.Label,
			Total: rr.Total, GC: rr.GC, Collections: rr.Collections, Majors: rr.Majors}); err != nil {
			return err
		}
		p := rr.Pauses
		if err := enc.Encode(recPauses{T: "slo_pauses", Run: i, Count: p.Count, Total: p.Total,
			P50: p.P50, P90: p.P90, P99: p.P99, P999: p.P999, Max: p.Max}); err != nil {
			return err
		}
		for _, ws := range rr.Windows {
			if err := enc.Encode(recWindow{T: "slo_window", Run: i, Window: ws.Window,
				MMUppm: ws.MMUppm, AMUppm: ws.AMUppm,
				WorstStart: ws.WorstStart, WorstPause: ws.WorstPause}); err != nil {
				return err
			}
		}
		if q := rr.Requests; q != nil {
			if err := enc.Encode(recRequests{T: "slo_requests", Run: i, Count: q.Count,
				P50: q.P50, P90: q.P90, P99: q.P99, P999: q.P999, Max: q.Max,
				GC: q.GC, GCHit: q.GCHit}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL report, rejecting unknown record types,
// unknown fields, out-of-order run records, and unknown schema versions.
func ReadJSONL(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var rep *Report
	var cur *RunReport
	lineNo := 0
	strict := func(line []byte, into any) error {
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		return dec.Decode(into)
	}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			T   string `json:"t"`
			Run int    `json:"run"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("slo: line %d: %v", lineNo, err)
		}
		if probe.T == "slo_header" {
			if rep != nil {
				return nil, fmt.Errorf("slo: line %d: duplicate header", lineNo)
			}
			var h recHeader
			if err := strict(line, &h); err != nil {
				return nil, fmt.Errorf("slo: line %d: %v", lineNo, err)
			}
			if h.Schema != SchemaVersion {
				return nil, fmt.Errorf("slo: line %d: schema %d, this build reads schema %d", lineNo, h.Schema, SchemaVersion)
			}
			rep = &Report{Schema: h.Schema, ClockHz: h.ClockHz, Windows: h.Windows}
			continue
		}
		if rep == nil {
			return nil, fmt.Errorf("slo: line %d: %q record before header", lineNo, probe.T)
		}
		if probe.T == "slo_run" {
			var rr recRun
			if err := strict(line, &rr); err != nil {
				return nil, fmt.Errorf("slo: line %d: %v", lineNo, err)
			}
			if rr.Run != len(rep.Runs) {
				return nil, fmt.Errorf("slo: line %d: run %d out of order (expected %d)", lineNo, rr.Run, len(rep.Runs))
			}
			cur = &RunReport{Label: rr.Label, Total: rr.Total, GC: rr.GC,
				Collections: rr.Collections, Majors: rr.Majors}
			rep.Runs = append(rep.Runs, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("slo: line %d: %q record before any run record", lineNo, probe.T)
		}
		if probe.Run != len(rep.Runs)-1 {
			return nil, fmt.Errorf("slo: line %d: %q record for run %d inside run %d", lineNo, probe.T, probe.Run, len(rep.Runs)-1)
		}
		switch probe.T {
		case "slo_pauses":
			var rp recPauses
			if err := strict(line, &rp); err != nil {
				return nil, fmt.Errorf("slo: line %d: %v", lineNo, err)
			}
			cur.Pauses = PauseStats{Count: rp.Count, Total: rp.Total,
				P50: rp.P50, P90: rp.P90, P99: rp.P99, P999: rp.P999, Max: rp.Max}
		case "slo_window":
			var rw recWindow
			if err := strict(line, &rw); err != nil {
				return nil, fmt.Errorf("slo: line %d: %v", lineNo, err)
			}
			cur.Windows = append(cur.Windows, WindowStats{Window: rw.Window,
				MMUppm: rw.MMUppm, AMUppm: rw.AMUppm,
				WorstStart: rw.WorstStart, WorstPause: rw.WorstPause})
		case "slo_requests":
			var rq recRequests
			if err := strict(line, &rq); err != nil {
				return nil, fmt.Errorf("slo: line %d: %v", lineNo, err)
			}
			cur.Requests = &RequestStats{Count: rq.Count,
				P50: rq.P50, P90: rq.P90, P99: rq.P99, P999: rq.P999, Max: rq.Max,
				GC: rq.GC, GCHit: rq.GCHit}
		default:
			return nil, fmt.Errorf("slo: line %d: unknown record type %q", lineNo, probe.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("slo: empty input (no header record)")
	}
	return rep, nil
}

// Validate checks the report's structural invariants: current schema, a
// strictly ascending nonzero window sweep shared by every run, percentile
// monotonicity, ppm bounds, and request-stat consistency.
func (r *Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("slo: schema %d, want %d", r.Schema, SchemaVersion)
	}
	if err := checkWindows(r.Windows); err != nil {
		return err
	}
	for i, rr := range r.Runs {
		if err := rr.validate(r.Windows); err != nil {
			return fmt.Errorf("run %d (%s): %w", i, rr.Label, err)
		}
	}
	return nil
}

func monotone(vals ...uint64) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return false
		}
	}
	return true
}

func (rr *RunReport) validate(windows []uint64) error {
	if rr.GC > rr.Total {
		return fmt.Errorf("gc cycles %d exceed run total %d", rr.GC, rr.Total)
	}
	p := rr.Pauses
	if !monotone(p.P50, p.P90, p.P99, p.P999, p.Max) {
		return fmt.Errorf("pause percentiles not monotone: %+v", p)
	}
	if p.Count == 0 && (p.Total != 0 || p.Max != 0) {
		return fmt.Errorf("pause stats nonzero with zero collections")
	}
	if len(rr.Windows) != len(windows) {
		return fmt.Errorf("%d window stats, sweep has %d windows", len(rr.Windows), len(windows))
	}
	for i, ws := range rr.Windows {
		if ws.Window != windows[i] {
			return fmt.Errorf("window %d is %d cycles, sweep says %d", i, ws.Window, windows[i])
		}
		if ws.MMUppm > 1e6 || ws.AMUppm > 1e6 {
			return fmt.Errorf("window %d: utilization above 1e6 ppm", i)
		}
		if ws.MMUppm > ws.AMUppm {
			return fmt.Errorf("window %d: MMU %d ppm above AMU %d ppm", i, ws.MMUppm, ws.AMUppm)
		}
		if ws.WorstPause > ws.Window && ws.WorstPause > rr.Total {
			return fmt.Errorf("window %d: worst pause mass %d exceeds both window and run", i, ws.WorstPause)
		}
	}
	if q := rr.Requests; q != nil {
		if !monotone(q.P50, q.P90, q.P99, q.P999, q.Max) {
			return fmt.Errorf("request percentiles not monotone: %+v", *q)
		}
		if q.GCHit > q.Count {
			return fmt.Errorf("requests hit by GC (%d) exceed request count (%d)", q.GCHit, q.Count)
		}
		if q.GC > rr.GC {
			return fmt.Errorf("gc cycles inside requests (%d) exceed run gc total (%d)", q.GC, rr.GC)
		}
	}
	return nil
}

// WriteTable renders the report for humans: per run, the pause and
// request percentile lines and the utilization curve. Percentages are
// derived from the stored ppm values only at render time.
func (r *Report) WriteTable(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hz := float64(r.ClockHz)
	if hz == 0 {
		hz = costmodel.ClockHz
	}
	ms := func(c uint64) float64 { return float64(c) / hz * 1e3 }
	pct := func(ppm uint64) float64 { return float64(ppm) / 1e4 }
	for i, rr := range r.Runs {
		label := rr.Label
		if label == "" {
			label = fmt.Sprintf("run %d", i)
		}
		fmt.Fprintf(bw, "== %s ==\n", label)
		fmt.Fprintf(bw, "cycles: total=%d gc=%d (%d collections, %d major)\n",
			rr.Total, rr.GC, rr.Collections, rr.Majors)
		p := rr.Pauses
		fmt.Fprintf(bw, "pauses:   n=%-6d p50=%-10d p90=%-10d p99=%-10d p99.9=%-10d max=%d (%.4f ms)\n",
			p.Count, p.P50, p.P90, p.P99, p.P999, p.Max, ms(p.Max))
		if q := rr.Requests; q != nil {
			fmt.Fprintf(bw, "requests: n=%-6d p50=%-10d p90=%-10d p99=%-10d p99.9=%-10d max=%d (%.4f ms)\n",
				q.Count, q.P50, q.P90, q.P99, q.P999, q.Max, ms(q.Max))
			fmt.Fprintf(bw, "          gc inside requests: %d cycles across %d/%d requests\n",
				q.GC, q.GCHit, q.Count)
		}
		fmt.Fprintf(bw, "utilization:\n")
		fmt.Fprintf(bw, "  %12s %9s %9s %14s %14s\n", "window", "MMU", "AMU", "worst@", "pause-in-window")
		for _, ws := range rr.Windows {
			fmt.Fprintf(bw, "  %12d %8.2f%% %8.2f%% %14d %14d\n",
				ws.Window, pct(ws.MMUppm), pct(ws.AMUppm), ws.WorstStart, ws.WorstPause)
		}
		if i < len(r.Runs)-1 {
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
