//go:build race

package harness

// raceEnabled reports whether this test binary was built with the race
// detector. The paper-effect tests that run benchmarks at near-paper
// scale (deep Knuth-Bendix stacks, full table sweeps) are 5-10x slower
// under the detector and blow the package test timeout, so they skip
// themselves; the concurrency-focused tests (RunAll determinism,
// calibration singleflight, parallel-vs-serial table identity) run at
// reduced scale and provide the race coverage.
const raceEnabled = true
