package harness

import (
	"bytes"
	"reflect"
	"testing"

	"tilgc/internal/adapt"
	"tilgc/internal/obj"
	"tilgc/internal/trace"
	"tilgc/internal/workload"
)

// psNodeSite is PhaseShift's phase-shifting record site (psSiteNode in
// internal/workload/phaseshift.go): ~100% survival in phase 1, instant
// death in phase 2.
const psNodeSite obj.SiteID = 1200

// psAdaptCfg is the reference adaptive phase-shift run the hysteresis and
// ablation tests pin against.
func psAdaptCfg() RunConfig {
	return RunConfig{
		Workload: "PhaseShift", Scale: workload.Scale{Repeat: 0.1},
		Kind: KindGenerational, K: 1.5, Adapt: true,
	}
}

// TestAdaptPhaseShiftHysteresis pins the §9 decision sequence on the
// phase-shift workload: the node site is promoted exactly once (on the
// phase-1 survival evidence) and demoted exactly once (at the major
// collection its own tenured garbage forces in phase 2), at these exact
// simulated-cycle timestamps. The pins are golden values: any change to
// the cost model, the advisor's thresholds, or the workload moves them
// and must be reviewed deliberately.
func TestAdaptPhaseShiftHysteresis(t *testing.T) {
	r, err := Run(psAdaptCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Adapt == nil {
		t.Fatal("adaptive run returned no advisor snapshot")
	}
	var node []adapt.Decision
	for _, d := range r.Adapt.Decisions {
		if d.Site == psNodeSite {
			node = append(node, d)
		}
	}
	if len(node) != 2 {
		t.Fatalf("node-site decisions = %+v, want exactly promote+demote", node)
	}
	prom, dem := node[0], node[1]
	if prom.Verb != trace.AdaptPromote || dem.Verb != trace.AdaptDemote {
		t.Fatalf("decision verbs %q,%q, want promote,demote", prom.Verb, dem.Verb)
	}
	if prom.Epoch != 1 || prom.Cycles != 283189 {
		t.Errorf("promotion at epoch %d cycle %d, want epoch 1 cycle 283189", prom.Epoch, prom.Cycles)
	}
	if prom.SurvivalPPM != 1_000_000 || prom.SampleWords != 17080 {
		t.Errorf("promotion evidence surv=%d mass=%d, want 1000000/17080", prom.SurvivalPPM, prom.SampleWords)
	}
	if dem.Epoch != 2 || dem.Cycles != 392859 {
		t.Errorf("demotion at epoch %d cycle %d, want epoch 2 cycle 392859", dem.Epoch, dem.Cycles)
	}
	if dem.GarbagePPM != 1_000_000 {
		t.Errorf("demotion garbage = %d ppm, want 1000000 (every placed word died)", dem.GarbagePPM)
	}
	// The site must end the run demoted with the full episode history.
	for _, s := range r.Adapt.Sites {
		if s.Site != psNodeSite {
			continue
		}
		if s.Pretenured || s.Promotions != 1 || s.Demotions != 1 {
			t.Fatalf("node site end state: %+v", s)
		}
	}
}

// TestAdaptDemotionReclaimsTenuredGarbage is the ablation acceptance
// check: with demotion disabled, the mistrained site keeps pouring
// garbage into the tenured generation — visibly more pretenured
// placements, more forced major collections, more collector cycles. The
// demotion machinery must claw all three back.
func TestAdaptDemotionReclaimsTenuredGarbage(t *testing.T) {
	withDem, err := Run(psAdaptCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := psAdaptCfg()
	cfg.AdaptNoDemote = true
	noDem, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if noDem.Adapt.Demotions != 0 {
		t.Fatalf("AdaptNoDemote run demoted %d times", noDem.Adapt.Demotions)
	}
	if withDem.Adapt.Demotions == 0 {
		t.Fatal("demotion-enabled run never demoted")
	}
	if 2*withDem.Stats.Pretenured >= noDem.Stats.Pretenured {
		t.Errorf("pretenured placements %d vs %d without demotion — demotion did not stop the garbage",
			withDem.Stats.Pretenured, noDem.Stats.Pretenured)
	}
	if withDem.Stats.NumMajor >= noDem.Stats.NumMajor {
		t.Errorf("majors %d vs %d without demotion — tenured-garbage growth not reclaimed",
			withDem.Stats.NumMajor, noDem.Stats.NumMajor)
	}
	if withDem.Times.GC() >= noDem.Times.GC() {
		t.Errorf("GC cycles %d vs %d without demotion", withDem.Times.GC(), noDem.Times.GC())
	}
}

// TestAdaptColdStartRecovery is the headline acceptance criterion: on a
// standard long-lived workload (Simple, one of the paper's four
// pretenuring winners), the online advisor starting cold must recover at
// least half of the copy-cost reduction that offline (train == test)
// pretenuring achieves over no pretenuring.
func TestAdaptColdStartRecovery(t *testing.T) {
	scale := workload.Scale{Repeat: 0.02, Depth: 0.3}
	none, err := Run(RunConfig{Workload: "Simple", Scale: scale, Kind: KindGenerational})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(RunConfig{Workload: "Simple", Scale: scale, Kind: KindGenPretenure})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(RunConfig{Workload: "Simple", Scale: scale, Kind: KindGenerational, Adapt: true})
	if err != nil {
		t.Fatal(err)
	}
	offline := int64(none.Stats.BytesCopied) - int64(oracle.Stats.BytesCopied)
	online := int64(none.Stats.BytesCopied) - int64(cold.Stats.BytesCopied)
	if offline <= 0 {
		t.Fatalf("offline pretenuring saves no copying on Simple (%d vs %d) — acceptance baseline gone",
			none.Stats.BytesCopied, oracle.Stats.BytesCopied)
	}
	if 2*online < offline {
		t.Errorf("cold-start recovery %d of %d copied bytes (%.0f%%), want at least half",
			online, offline, 100*float64(online)/float64(offline))
	}
}

// TestAdaptWarmStartFromStore: a profile stored by one run warm-starts
// the next, the warm promotion lands at epoch 0 (before any collection),
// and the warm run copies no more than the cold run.
func TestAdaptWarmStartFromStore(t *testing.T) {
	scale := workload.Scale{Repeat: 0.02, Depth: 0.3}
	cfg := RunConfig{Workload: "Simple", Scale: scale, Kind: KindGenerational, Adapt: true}
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.AdaptProfile == nil {
		t.Fatal("adaptive run produced no store profile")
	}
	// Round-trip the profile through store bytes, as gcbench would.
	var buf bytes.Buffer
	if err := (&adapt.Store{Profiles: []*adapt.RunProfile{cold.AdaptProfile}}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	store, err := adapt.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.AdaptWarm = store.Find("Simple")
	if warmCfg.AdaptWarm == nil {
		t.Fatal("stored profile not found by workload name")
	}
	warm, err := Run(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Adapt.Decisions) == 0 || warm.Adapt.Decisions[0].Verb != trace.AdaptWarm ||
		warm.Adapt.Decisions[0].Epoch != 0 {
		t.Fatalf("first warm-run decision = %+v, want warm at epoch 0", warm.Adapt.Decisions)
	}
	if warm.Stats.BytesCopied > cold.Stats.BytesCopied {
		t.Errorf("warm start copied %d > cold %d", warm.Stats.BytesCopied, cold.Stats.BytesCopied)
	}
}

// adaptStoreBytes assembles profiles into store bytes the way gcbench's
// -adapt-store flag does.
func adaptStoreBytes(t *testing.T, profiles []*adapt.RunProfile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := (&adapt.Store{Profiles: profiles}).WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdaptRunDeterministic: the full adaptive result — measurements,
// decision list, site states, and the store bytes — is identical when the
// run repeats.
func TestAdaptRunDeterministic(t *testing.T) {
	cfg := psAdaptCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, a, b)
	if !reflect.DeepEqual(a.Adapt, b.Adapt) {
		t.Error("advisor snapshots differ between identical runs")
	}
	sa := adaptStoreBytes(t, []*adapt.RunProfile{a.AdaptProfile})
	sb := adaptStoreBytes(t, []*adapt.RunProfile{b.AdaptProfile})
	if !bytes.Equal(sa, sb) {
		t.Errorf("store bytes differ between identical runs:\n%s\nvs\n%s", sa, sb)
	}
}

// TestAdaptParallelMatchesSerial: an adaptive sweep assembled through
// RunAll's AdaptSink produces byte-identical store files (and identical
// snapshots) at parallelism 1 and 8 — the ISSUE's serial-vs-parallel
// acceptance bar extended to the store.
func TestAdaptParallelMatchesSerial(t *testing.T) {
	cfgs := []RunConfig{
		{Workload: "PhaseShift", Scale: workload.Scale{Repeat: 0.1}, Kind: KindGenerational, K: 1.5},
		{Workload: "Life", Scale: tiny, Kind: KindGenerational, K: 2},
		{Workload: "Nqueen", Scale: tiny, Kind: KindSemispace, K: 4}, // advisor skips semispace
		{Workload: "Simple", Scale: tiny, Kind: KindGenMarkers, K: 2},
	}
	run := func(par int) ([]byte, []*RunResult) {
		var profiles []*adapt.RunProfile
		rs, err := RunAll(cfgs, Options{
			Parallelism: par,
			AdaptSink:   func(ps []*adapt.RunProfile) { profiles = append(profiles, ps...) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return adaptStoreBytes(t, profiles), rs
	}
	serialStore, serialRs := run(1)
	ClearCalibrationCache()
	parStore, parRs := run(8)
	if !bytes.Equal(serialStore, parStore) {
		t.Errorf("assembled store differs serial vs parallel:\n%s\nvs\n%s", serialStore, parStore)
	}
	for i := range serialRs {
		sameResult(t, serialRs[i], parRs[i])
		if !reflect.DeepEqual(serialRs[i].Adapt, parRs[i].Adapt) {
			t.Errorf("slot %d advisor snapshot differs serial vs parallel", i)
		}
	}
	if serialRs[2].Adapt != nil {
		t.Error("semispace run grew an advisor snapshot")
	}
	if serialRs[0].Adapt == nil || serialRs[1].Adapt == nil {
		t.Error("generational runs missing advisor snapshots")
	}
}

// TestAdaptTraceRoundTrip: an adaptive traced run's JSONL — including the
// new adapt decision records and the adapt meter column — survives a
// write→read→write round trip byte-identically.
func TestAdaptTraceRoundTrip(t *testing.T) {
	cfg := psAdaptCfg()
	cfg.Trace = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := r.Trace.Data(cfg.Label())
	if len(data.Adapt) == 0 {
		t.Fatal("adaptive traced run emitted no adapt records")
	}
	var a bytes.Buffer
	if err := trace.NewFile(data).WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	f, err := trace.ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := f.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("adaptive trace JSONL round trip not byte-identical")
	}
}

// TestAdaptSanitized: the heap-integrity sanitizer must accept
// advisor-pretenured objects (its pretenure pass checks every pretenured-
// region object against the reported policy, which for adaptive runs is
// the accumulated advisor policy), and sanitizing must not perturb the
// measurements.
func TestAdaptSanitized(t *testing.T) {
	plain, err := Run(psAdaptCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := psAdaptCfg()
	cfg.Sanitize = true
	sane, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Check != sane.Check || plain.Times != sane.Times {
		t.Error("sanitizer perturbed the adaptive run")
	}
}

// TestAdaptSemispaceRejected: the advisor needs a tenured generation.
func TestAdaptSemispaceRejected(t *testing.T) {
	_, err := Run(RunConfig{Workload: "Life", Scale: tiny, Kind: KindSemispace, K: 4, Adapt: true})
	if err == nil {
		t.Fatal("semispace adaptive run accepted")
	}
}
