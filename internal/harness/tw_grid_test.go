package harness

import (
	"bytes"
	"fmt"
	"testing"

	"tilgc/internal/adapt"
	"tilgc/internal/core"
	"tilgc/internal/slo"
	"tilgc/internal/trace"
	"tilgc/internal/workload"
)

// gridTW is the thread/worker axis of the determinism grid: serial, and
// the two sharded configurations the acceptance gates compare.
var gridTW = []int{1, 2, 4}

// gridConfig is one cell of the T×W grid: the steady server mix (the one
// workload family that actually schedules requests across threads) under
// gen+markers with the online advisor attached, traced so the cell's
// trace stream, SLO report, and adapt profile can all be compared
// byte-for-byte.
func gridConfig(threads, workers int) RunConfig {
	return RunConfig{
		Workload:  "ServerSteady",
		Scale:     workload.Scale{Repeat: 0.004},
		Kind:      KindGenMarkers,
		K:         2,
		Adapt:     true,
		Threads:   threads,
		GCWorkers: workers,
		Trace:     true,
	}
}

// sloJSONL renders a traced run's JSONL SLO report bytes.
func sloJSONL(t *testing.T, r *RunResult) []byte {
	t.Helper()
	f := trace.NewFile(r.Trace.Data(r.Config.Label()))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := slo.ComputeFile(f, slo.DefaultWindows)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// adaptJSONL renders a run's adapt profile as profile-store bytes.
func adaptJSONL(t *testing.T, r *RunResult) []byte {
	t.Helper()
	if r.AdaptProfile == nil {
		t.Fatalf("%s: no adapt profile", r.Config.Label())
	}
	var buf bytes.Buffer
	s := adapt.Store{Profiles: []*adapt.RunProfile{r.AdaptProfile}}
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTWGridDeterministic runs every cell of the T∈{1,2,4} × W∈{1,2,4}
// grid twice and demands the two runs agree byte-for-byte on every
// artifact: measurements, the full JSONL trace stream, the derived SLO
// report, and the adapt profile-store bytes. It then checks the two
// structural identities of the parallel design against the W=1 column:
//
//   - Worker invariance: for a fixed thread count, the heap schedule is
//     identical at every W — checksum, mutator cycles, GC counts, roots,
//     and barrier work do not move; only pause accounting does.
//   - Cost conservation: wall GC cycles plus the overlap credited back by
//     the worker tallies equals the serial run's GC cycles exactly, and
//     pause ceilings never rise with more workers.
func TestTWGridDeterministic(t *testing.T) {
	results := map[[2]int]*RunResult{}
	for _, T := range gridTW {
		for _, W := range gridTW {
			name := fmt.Sprintf("T=%d/W=%d", T, W)
			cfg := gridConfig(T, W)
			a, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sameResult(t, a, b)
			if !bytes.Equal(runJSONL(t, a), runJSONL(t, b)) {
				t.Errorf("%s: JSONL traces differ between identical runs", name)
			}
			if !bytes.Equal(sloJSONL(t, a), sloJSONL(t, b)) {
				t.Errorf("%s: SLO reports differ between identical runs", name)
			}
			if !bytes.Equal(adaptJSONL(t, a), adaptJSONL(t, b)) {
				t.Errorf("%s: adapt store bytes differ between identical runs", name)
			}
			results[[2]int{T, W}] = a
		}
	}

	for _, T := range gridTW {
		serial := results[[2]int{T, 1}]
		serialOverlap := serial.Trace.Data(serial.Config.Label()).Overlap
		if serialOverlap != 0 {
			t.Errorf("T=%d/W=1: serial run reports overlap %d, want 0", T, serialOverlap)
		}
		for _, W := range gridTW[1:] {
			name := fmt.Sprintf("T=%d/W=%d", T, W)
			par := results[[2]int{T, W}]
			if par.Check != serial.Check {
				t.Errorf("%s: checksum %#x != W=1's %#x — heap schedule moved with workers",
					name, par.Check, serial.Check)
			}
			if par.Times.Client != serial.Times.Client || par.Times.Adapt != serial.Times.Adapt {
				t.Errorf("%s: mutator/advisor cycles moved with workers: %+v vs %+v",
					name, par.Times, serial.Times)
			}
			ps, ss := par.Stats, serial.Stats
			if ps.NumGC != ss.NumGC || ps.NumMajor != ss.NumMajor ||
				ps.RootsFound != ss.RootsFound || ps.SSBProcessed != ss.SSBProcessed ||
				ps.MaxLiveBytes != ss.MaxLiveBytes || par.Updates != serial.Updates {
				t.Errorf("%s: GC schedule moved with workers:\n  W=%d: %+v\n  W=1: %+v",
					name, W, ps, ss)
			}
			overlap := par.Trace.Data(par.Config.Label()).Overlap
			if got, want := par.Times.GC()+overlap, serial.Times.GC(); got != want {
				t.Errorf("%s: wall GC %d + overlap %d = %d, want serial GC %d — cycles leaked",
					name, par.Times.GC(), overlap, got, want)
			}
			if overlap == 0 {
				t.Errorf("%s: no overlap credited; the parallel phases never sharded", name)
			}
			if ps.MaxPauseCycles > ss.MaxPauseCycles {
				t.Errorf("%s: max pause %d exceeds serial %d", name, ps.MaxPauseCycles, ss.MaxPauseCycles)
			}
			if ps.ParallelQuanta == 0 || ps.WorkSteals == 0 {
				t.Errorf("%s: quanta=%d steals=%d; worker accounting never engaged",
					name, ps.ParallelQuanta, ps.WorkSteals)
			}
		}
	}
}

// TestTWGridSpecialCase pins the T=1 special case: explicitly requesting
// one thread and one worker takes the exact pre-thread code paths, so the
// trace stream is byte-identical to the zero-value config.
func TestTWGridSpecialCase(t *testing.T) {
	explicit := gridConfig(1, 1)
	zero := explicit
	zero.Threads, zero.GCWorkers = 0, 0
	a, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(zero)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, a, b)
	if !bytes.Equal(runJSONL(t, a), runJSONL(t, b)) {
		t.Error("T=1/W=1 trace differs from the zero-value config — the special case is not special")
	}
}

// TestReferenceKernelsParallelWorkers extends the kernel-equivalence
// proof across the worker axis: at every W the optimized and reference
// kernels must place their quanta identically, so the simulated worker
// schedule — per-phase worker tallies, overlap, steals, and therefore
// every trace byte — is kernel-independent. W=1 is covered by
// TestReferenceKernelsObservationallyIdentical.
func TestReferenceKernelsParallelWorkers(t *testing.T) {
	cfgs := []RunConfig{
		{Workload: "ServerSteady", Scale: workload.Scale{Repeat: 0.004},
			Kind: KindGenMarkers, K: 2, DeferMajor: true, Trace: true, Sanitize: true},
		{Workload: "Life", Scale: tiny, Kind: KindGenCards, K: 1.5, Trace: true},
		{Workload: "Nqueen", Scale: tiny, Kind: KindSemispace, K: 4, Trace: true},
	}
	for _, w := range gridTW[1:] {
		for _, cfg := range cfgs {
			cfg.GCWorkers = w
			opt, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			core.SetReferenceKernels(true)
			ref, runErr := Run(cfg)
			core.SetReferenceKernels(false)
			if runErr != nil {
				t.Fatal(runErr)
			}
			sameResult(t, opt, ref)
			if !bytes.Equal(runJSONL(t, opt), runJSONL(t, ref)) {
				t.Errorf("%s: JSONL traces diverge between optimized and reference kernels", cfg.Label())
			}
		}
	}
}

// TestDeferMajorMovesPauseBoundariesOnly: deferring over-threshold majors
// must not change what the program computes — only when the collector
// stops the world. The deferred run performs its majors as separate
// pauses (more, shorter stops), so its worst pause is strictly smaller
// on a workload whose majors otherwise escalate out of minors.
func TestDeferMajorMovesPauseBoundariesOnly(t *testing.T) {
	cfg := RunConfig{
		Workload: "ServerSteady", Scale: workload.Scale{Repeat: 0.01},
		Kind: KindGenMarkers, K: 2,
	}
	esc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DeferMajor = true
	def, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if esc.Check != def.Check {
		t.Errorf("checksum moved with pause policy: %#x vs %#x", esc.Check, def.Check)
	}
	if esc.Times.Client != def.Times.Client {
		t.Errorf("mutator cycles moved with pause policy: %d vs %d",
			esc.Times.Client, def.Times.Client)
	}
	if esc.Stats.NumMajor == 0 {
		t.Fatal("baseline run performed no majors; the fixture is vacuous")
	}
	if def.Stats.NumMajor == 0 {
		t.Error("deferred run performed no majors")
	}
	if def.Stats.MaxPauseCycles >= esc.Stats.MaxPauseCycles {
		t.Errorf("deferred max pause %d did not drop below escalated %d",
			def.Stats.MaxPauseCycles, esc.Stats.MaxPauseCycles)
	}
}
