package harness

import (
	"fmt"
	"io"

	"tilgc/internal/core"
	"tilgc/internal/mem"
	"tilgc/internal/prof"
	"tilgc/internal/slo"
	"tilgc/internal/trace"
	"tilgc/internal/workload"
)

// PaperOrder lists the benchmarks in the order the paper's tables use.
var PaperOrder = []string{
	"Checksum", "Color", "FFT", "Grobner", "Knuth-Bendix",
	"Lexgen", "Life", "Nqueen", "Peg", "PIA", "Simple",
}

// PaperKs are the memory multiples the paper sweeps.
var PaperKs = []float64{1.5, 2.0, 4.0}

// PretenureTargets are the four benchmarks the heap profiles select for
// pretenuring (§6).
var PretenureTargets = []string{"Knuth-Bendix", "Lexgen", "Nqueen", "Simple"}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n================ %s ================\n", title)
}

// Table1 renders the benchmark descriptions.
func Table1(w io.Writer) error {
	header(w, "Table 1: Benchmark programs")
	for _, name := range PaperOrder {
		wl, err := workload.Get(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-13s %s\n", wl.Name(), wl.Description())
	}
	return nil
}

// Table2 renders the allocation characteristics of the benchmarks.
func Table2(w io.Writer, scale workload.Scale, opts Options) error {
	var cfgs []RunConfig
	for _, name := range PaperOrder {
		cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: KindGenerational})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Table 2: Allocation characteristics of benchmarks")
	fmt.Fprintf(w, "%-13s %9s %9s %9s %9s %14s %10s %10s\n",
		"Program", "Total", "Max Live", "Records", "Arrays",
		"Max(Avg)Frames", "New Frames", "Ptr Updates")
	for i, name := range PaperOrder {
		r := rs[i]
		cal, err := Calibrate(name, scale, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-13s %8.1fMB %8.0fKB %8.1fMB %8.1fMB %7d(%6.1f) %10.1f %10d\n",
			name,
			mb(r.Stats.BytesAllocated), kb(cal.maxLiveWords*8),
			mb(r.Stats.RecordBytes), mb(r.Stats.ArrayBytes),
			r.Stats.MaxDepthAtGC, r.Stats.AvgDepthAtGC(),
			r.Stats.AvgNewFrames(), r.Updates)
	}
	return nil
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }
func kb(b uint64) float64 { return float64(b) / (1 << 10) }

// sweepConfigs builds the workload-major × PaperKs run matrix, so row i
// of a sweep renders from results[i*len(PaperKs) : (i+1)*len(PaperKs)].
func sweepConfigs(names []string, scale workload.Scale, kind CollectorKind) []RunConfig {
	var cfgs []RunConfig
	for _, name := range names {
		for _, k := range PaperKs {
			cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: kind, K: k})
		}
	}
	return cfgs
}

// sweepTable renders the Table 3/4 layout for a collector kind.
func sweepTable(w io.Writer, scale workload.Scale, kind CollectorKind, withDepth bool, opts Options) error {
	all, err := RunAll(sweepConfigs(PaperOrder, scale, kind), opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-13s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"", "Total", "Total", "Total", "GC", "GC", "GC", "Client", "Client", "Client")
	fmt.Fprintf(w, "%-13s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n",
		"Program", "k=1.5", "k=2.0", "k=4.0", "k=1.5", "k=2.0", "k=4.0", "k=1.5", "k=2.0", "k=4.0")
	for i, name := range PaperOrder {
		rs := all[i*len(PaperKs) : (i+1)*len(PaperKs)]
		fmt.Fprintf(w, "%-13s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f\n",
			name,
			rs[0].Total(), rs[1].Total(), rs[2].Total(),
			rs[0].GC(), rs[1].GC(), rs[2].GC(),
			rs[0].Client(), rs[1].Client(), rs[2].Client())
	}
	fmt.Fprintln(w)
	if withDepth {
		fmt.Fprintf(w, "%-13s | %8s %8s %8s | %12s %12s %12s | %9s\n",
			"Program", "GCs@1.5", "GCs@2.0", "GCs@4.0",
			"copied@1.5", "copied@2.0", "copied@4.0", "AvgFrames")
	} else {
		fmt.Fprintf(w, "%-13s | %8s %8s %8s | %12s %12s %12s\n",
			"Program", "GCs@1.5", "GCs@2.0", "GCs@4.0",
			"copied@1.5", "copied@2.0", "copied@4.0")
	}
	for i, name := range PaperOrder {
		rs := all[i*len(PaperKs) : (i+1)*len(PaperKs)]
		if withDepth {
			fmt.Fprintf(w, "%-13s | %8d %8d %8d | %12d %12d %12d | %9.1f\n",
				name, rs[0].Stats.NumGC, rs[1].Stats.NumGC, rs[2].Stats.NumGC,
				rs[0].Stats.BytesCopied, rs[1].Stats.BytesCopied, rs[2].Stats.BytesCopied,
				rs[2].Stats.AvgDepthAtGC())
		} else {
			fmt.Fprintf(w, "%-13s | %8d %8d %8d | %12d %12d %12d\n",
				name, rs[0].Stats.NumGC, rs[1].Stats.NumGC, rs[2].Stats.NumGC,
				rs[0].Stats.BytesCopied, rs[1].Stats.BytesCopied, rs[2].Stats.BytesCopied)
		}
	}
	return nil
}

// Table3 renders the semispace collector sweep.
func Table3(w io.Writer, scale workload.Scale, opts Options) error {
	header(w, "Table 3: Time and space usage for semispace collector (pseudo-seconds)")
	return sweepTable(w, scale, KindSemispace, false, opts)
}

// Table4 renders the generational collector sweep.
func Table4(w io.Writer, scale workload.Scale, opts Options) error {
	header(w, "Table 4: Time and space usage for generational collector (pseudo-seconds)")
	return sweepTable(w, scale, KindGenerational, true, opts)
}

// Table5 renders the GC-cost breakdown without and with stack markers at
// k = 4.
func Table5(w io.Writer, scale workload.Scale, opts Options) error {
	var cfgs []RunConfig
	for _, name := range PaperOrder {
		cfgs = append(cfgs,
			RunConfig{Workload: name, Scale: scale, Kind: KindGenerational, K: 4},
			RunConfig{Workload: name, Scale: scale, Kind: KindGenMarkers, K: 4})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Table 5: Breakdown of GC cost at k=4 without and with stack markers")
	fmt.Fprintf(w, "%-13s | %7s %7s %7s %7s | %7s %7s %7s %7s | %9s\n",
		"", "-----", "without", "markers", "-----", "-----", "with", "markers", "-----", "GC%")
	fmt.Fprintf(w, "%-13s | %7s %7s %7s %7s | %7s %7s %7s %7s | %9s\n",
		"Program", "GC", "stack", "copy", "stack%", "GC", "stack", "copy", "stack%", "decreased")
	for i, name := range PaperOrder {
		bs, ms := rs[2*i].Times, rs[2*i+1].Times
		dec := 100 * (1 - float64(ms.GC())/float64(max(bs.GC(), 1)))
		fmt.Fprintf(w, "%-13s | %7.3f %7.3f %7.3f %6.1f%% | %7.3f %7.3f %7.3f %6.1f%% | %8.1f%%\n",
			name,
			bs.GC().Seconds(), bs.GCStack.Seconds(), bs.GCCopy.Seconds(),
			100*float64(bs.GCStack)/float64(max(bs.GC(), 1)),
			ms.GC().Seconds(), ms.GCStack.Seconds(), ms.GCCopy.Seconds(),
			100*float64(ms.GCStack)/float64(max(ms.GC(), 1)),
			dec)
	}
	return nil
}

// Table6 renders the pretenuring results for the profile-selected targets.
func Table6(w io.Writer, scale workload.Scale, opts Options) error {
	// Per target: the three pretenure k-sweep runs, then the gen+markers
	// k=4 baseline the % columns compare against.
	stride := len(PaperKs) + 1
	var cfgs []RunConfig
	for _, name := range PretenureTargets {
		for _, k := range PaperKs {
			cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: KindGenMarkersPretenure, K: k})
		}
		cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: KindGenMarkers, K: 4})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Table 6: Generational collector with stack markers and pretenuring")
	fmt.Fprintf(w, "%-13s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s | %6s %7s %6s\n",
		"Program", "Tot@1.5", "Tot@2.0", "Tot@4.0",
		"GC@1.5", "GC@2.0", "GC@4.0",
		"Cl@1.5", "Cl@2.0", "Cl@4.0", "GC%", "Client%", "Tot%")
	for i, name := range PretenureTargets {
		pre, base := rs[i*stride:i*stride+len(PaperKs)], rs[i*stride+len(PaperKs)]
		p4 := pre[2]
		gcDec := 100 * (1 - p4.GC()/maxf(base.GC(), 1e-9))
		clDec := 100 * (1 - p4.Client()/maxf(base.Client(), 1e-9))
		totDec := 100 * (1 - p4.Total()/maxf(base.Total(), 1e-9))
		fmt.Fprintf(w, "%-13s | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f | %8.3f %8.3f %8.3f | %5.0f%% %6.0f%% %5.0f%%\n",
			name,
			pre[0].Total(), pre[1].Total(), pre[2].Total(),
			pre[0].GC(), pre[1].GC(), pre[2].GC(),
			pre[0].Client(), pre[1].Client(), pre[2].Client(),
			gcDec, clDec, totDec)
	}
	fmt.Fprintf(w, "\n%-13s | %8s %8s %8s | %12s %12s %12s | %14s\n",
		"Program", "GCs@1.5", "GCs@2.0", "GCs@4.0",
		"copied@1.5", "copied@2.0", "copied@4.0", "copied vs base")
	for i, name := range PretenureTargets {
		pre, base := rs[i*stride:i*stride+len(PaperKs)], rs[i*stride+len(PaperKs)]
		copyDec := 100 * (1 - float64(pre[2].Stats.BytesCopied)/maxf(float64(base.Stats.BytesCopied), 1))
		fmt.Fprintf(w, "%-13s | %8d %8d %8d | %12d %12d %12d | %12.0f%%↓\n",
			name, pre[0].Stats.NumGC, pre[1].Stats.NumGC, pre[2].Stats.NumGC,
			pre[0].Stats.BytesCopied, pre[1].Stats.BytesCopied, pre[2].Stats.BytesCopied,
			copyDec)
	}
	fmt.Fprintln(w, "\n(% decrease columns compare against gen+markers at k=4)")
	return nil
}

// Table7 renders the relative GC times at k = 4 across the four
// configurations, normalized to the semispace collector (the paper's bar
// chart, as text).
func Table7(w io.Writer, scale workload.Scale, opts Options) error {
	kinds := []CollectorKind{
		KindSemispace, KindGenerational, KindGenMarkers, KindGenMarkersPretenure,
	}
	var cfgs []RunConfig
	for _, name := range PaperOrder {
		for _, kind := range kinds {
			cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: kind, K: 4})
		}
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Table 7: Relative GC time at k=4.0 (semispace = 100%)")
	fmt.Fprintf(w, "%-13s %12s %12s %12s %12s\n",
		"Program", "semispace", "gen", "+markers", "+pretenure")
	for i, name := range PaperOrder {
		var gcs []float64
		for j := range kinds {
			gcs = append(gcs, rs[i*len(kinds)+j].GC())
		}
		base := maxf(gcs[0], 1e-9)
		fmt.Fprintf(w, "%-13s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			name, 100.0, 100*gcs[1]/base, 100*gcs[2]/base, 100*gcs[3]/base)
	}
	return nil
}

// Figure2 renders the heap-profile reports for Knuth-Bendix and Nqueen.
func Figure2(w io.Writer, scale workload.Scale, opts Options) error {
	return Profiles(w, scale, []string{"Knuth-Bendix", "Nqueen"}, opts)
}

// Profiles renders Figure 2-style heap profiles for the named benchmarks.
func Profiles(w io.Writer, scale workload.Scale, names []string, opts Options) error {
	var cfgs []RunConfig
	for _, name := range names {
		cfgs = append(cfgs, RunConfig{
			Workload: name, Scale: scale, Kind: KindGenerational, Profile: true,
		})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	for i, name := range names {
		rs[i].Profiler.WriteReport(w, prof.DefaultReportOptions(name))
		fmt.Fprintln(w)
	}
	return nil
}

// ExtensionElide renders the §7.2 scan-elision experiment: Nqueen with
// pretenuring, without and with the dataflow-driven scan elision.
func ExtensionElide(w io.Writer, scale workload.Scale, opts Options) error {
	names := []string{"Nqueen", "Knuth-Bendix"}
	var cfgs []RunConfig
	for _, name := range names {
		cfgs = append(cfgs,
			RunConfig{Workload: name, Scale: scale, Kind: KindGenMarkersPretenure, K: 4},
			RunConfig{Workload: name, Scale: scale, Kind: KindGenMarkersPretenureElide, K: 4})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Extension (§7.2): pretenure-region scan elision on Nqueen")
	for i, name := range names {
		pre, el := rs[2*i], rs[2*i+1]
		dec := 100 * (1 - el.GC()/maxf(pre.GC(), 1e-9))
		fmt.Fprintf(w, "%-13s GC %8.3fs -> %8.3fs (%.1f%% decrease); scanned %d -> %d bytes\n",
			name, pre.GC(), el.GC(), dec, pre.Stats.BytesScanned, el.Stats.BytesScanned)
	}
	return nil
}

// ExtensionAging renders the §7.2 aging experiment: without immediate
// promotion, objects bound for the tenured generation are copied several
// times, so pretenuring saves proportionally more — the paper's
// prediction, measured.
func ExtensionAging(w io.Writer, scale workload.Scale, opts Options) error {
	kinds := []CollectorKind{
		KindGenMarkers, KindGenMarkersPretenure, KindGenAging, KindGenAgingPretenure,
	}
	var cfgs []RunConfig
	for _, name := range PretenureTargets {
		for _, kind := range kinds {
			cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: kind, K: 4})
		}
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Extension (§7.2): pretenuring under aging (non-immediate promotion)")
	fmt.Fprintf(w, "%-13s %28s %29s %14s\n",
		"", "immediate promotion", "aging (3 minors)", "benefit ratio")
	fmt.Fprintf(w, "%-13s %13s %14s %14s %14s\n",
		"Program", "copied(base)", "copied(pre)", "copied(base)", "copied(pre)")
	for i, name := range PretenureTargets {
		var copied [4]uint64
		for j := range kinds {
			copied[j] = rs[i*len(kinds)+j].Stats.BytesCopied
		}
		savedImm := int64(copied[0]) - int64(copied[1])
		savedAge := int64(copied[2]) - int64(copied[3])
		ratio := 0.0
		if savedImm > 0 {
			ratio = float64(savedAge) / float64(savedImm)
		}
		fmt.Fprintf(w, "%-13s %13d %14d %14d %14d %13.1fx\n",
			name, copied[0], copied[1], copied[2], copied[3], ratio)
	}
	return nil
}

// ExtensionBarrier renders the §4 write-barrier ablation: Peg with the
// sequential store buffer versus card marking.
func ExtensionBarrier(w io.Writer, scale workload.Scale, opts Options) error {
	names := []string{"Peg", "Life"}
	var cfgs []RunConfig
	for _, name := range names {
		cfgs = append(cfgs,
			RunConfig{Workload: name, Scale: scale, Kind: KindGenerational, K: 4},
			RunConfig{Workload: name, Scale: scale, Kind: KindGenCards, K: 4})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Extension (§4): SSB versus card-marking write barrier")
	for i, name := range names {
		ssb, cards := rs[2*i], rs[2*i+1]
		fmt.Fprintf(w, "%-13s SSB: GC %8.3fs (%d entries processed)  cards: GC %8.3fs\n",
			name, ssb.GC(), ssb.Stats.SSBProcessed, cards.GC())
	}
	return nil
}

// MarkerSweep renders an ablation over the marker spacing n (§5 notes n
// balances reuse against bookkeeping; the paper uses n = 25).
func MarkerSweep(w io.Writer, scale workload.Scale, names []string, ns []int, opts Options) error {
	var cfgs []RunConfig
	for _, name := range names {
		for _, n := range ns {
			cfgs = append(cfgs, RunConfig{Workload: name, Scale: scale, Kind: KindGenMarkers, K: 4, MarkerN: n})
		}
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}
	header(w, "Ablation: stack-marker spacing n")
	for i, name := range names {
		fmt.Fprintf(w, "%-13s:", name)
		for j, n := range ns {
			fmt.Fprintf(w, "  n=%-3d %7.3fs", n, rs[i*len(ns)+j].GC())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AdaptTargets pairs the long-lived benchmarks the adaptive experiment
// measures with the memory multiple each is measured at. Simple runs
// unconstrained (k = 0): under a tight budget its pretenured bumps force
// extra majors and pretenuring is a net loss, which is exactly the regime
// the §9 demotion ablation covers separately.
var AdaptTargets = []struct {
	Name string
	K    float64
}{
	{"Simple", 0},
	{"Nqueen", 4},
}

// ExperimentAdapt renders the §9 adaptive-pretenuring evaluation: copied
// bytes under no pretenuring, offline profile-driven pretenuring (trained
// at half scale, the paper's train-on-one-input methodology), an oracle
// offline policy (train == measure), and the online advisor starting cold
// and warm — then the PhaseShift mistrain ablation with and without
// demotion.
func ExperimentAdapt(w io.Writer, scale workload.Scale, opts Options) error {
	// Offline training input: the same workload at half the repetitions.
	train := scale.Canon()
	train.Repeat /= 2

	// Batch 1: everything except the warm-started runs, which need the
	// cold runs' stored profiles first.
	const perTarget = 4 // none, offline, oracle, adapt-cold
	var cfgs []RunConfig
	for _, tgt := range AdaptTargets {
		cfgs = append(cfgs,
			RunConfig{Workload: tgt.Name, Scale: scale, Kind: KindGenerational, K: tgt.K},
			RunConfig{Workload: tgt.Name, Scale: scale, Kind: KindGenPretenure, K: tgt.K, TrainScale: train},
			RunConfig{Workload: tgt.Name, Scale: scale, Kind: KindGenPretenure, K: tgt.K},
			RunConfig{Workload: tgt.Name, Scale: scale, Kind: KindGenerational, K: tgt.K, Adapt: true})
	}
	psBase := len(cfgs)
	cfgs = append(cfgs,
		RunConfig{Workload: "PhaseShift", Scale: scale, Kind: KindGenerational, K: 1.5},
		RunConfig{Workload: "PhaseShift", Scale: scale, Kind: KindGenerational, K: 1.5, Adapt: true},
		RunConfig{Workload: "PhaseShift", Scale: scale, Kind: KindGenerational, K: 1.5, Adapt: true, AdaptNoDemote: true})
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}

	// Batch 2: re-run the adaptive configuration seeded with the profile
	// the cold run just stored.
	var warmCfgs []RunConfig
	for i, tgt := range AdaptTargets {
		warmCfgs = append(warmCfgs, RunConfig{
			Workload: tgt.Name, Scale: scale, Kind: KindGenerational, K: tgt.K,
			Adapt: true, AdaptWarm: rs[i*perTarget+3].AdaptProfile,
		})
	}
	warm, err := RunAll(warmCfgs, opts)
	if err != nil {
		return err
	}

	header(w, "Extension (§9): online adaptive pretenuring")
	fmt.Fprintln(w, "Copied bytes; recovery% = share of the oracle's copy-cost reduction the advisor achieves")
	fmt.Fprintf(w, "%-13s | %12s %12s %12s | %12s %12s | %6s %6s\n",
		"Program", "none", "offline", "oracle", "adapt-cold", "adapt-warm", "cold%", "warm%")
	for i, tgt := range AdaptTargets {
		none := rs[i*perTarget].Stats.BytesCopied
		off := rs[i*perTarget+1].Stats.BytesCopied
		oracle := rs[i*perTarget+2].Stats.BytesCopied
		cold := rs[i*perTarget+3].Stats.BytesCopied
		warmed := warm[i].Stats.BytesCopied
		recovered := func(copied uint64) float64 {
			saved := float64(none) - float64(oracle)
			if saved <= 0 {
				return 0
			}
			return 100 * (float64(none) - float64(copied)) / saved
		}
		fmt.Fprintf(w, "%-13s | %12d %12d %12d | %12d %12d | %5.1f%% %5.1f%%\n",
			tgt.Name, none, off, oracle, cold, warmed, recovered(cold), recovered(warmed))
	}

	fmt.Fprintln(w, "\nPhaseShift mistrain ablation (k=1.5): the node site earns promotion in")
	fmt.Fprintln(w, "phase 1 and turns to garbage in phase 2; demotion must reclaim the mistake.")
	fmt.Fprintf(w, "%-30s | %8s %8s | %10s %7s %9s\n",
		"Config", "promote", "demote", "pretenured", "majors", "GC(s)")
	for _, r := range rs[psBase:] {
		label := r.Config.Kind.String()
		var proms, demos uint64
		if r.Config.Adapt {
			label += "+adapt"
			proms, demos = r.Adapt.Promotions, r.Adapt.Demotions
		}
		if r.Config.AdaptNoDemote {
			label += " (no demote)"
		}
		fmt.Fprintf(w, "%-30s | %8d %8d | %10d %7d %9.3f\n",
			label, proms, demos, r.Stats.Pretenured, r.Stats.NumMajor, r.GC())
	}
	return nil
}

// SLOMixes lists the server traffic mixes the latency-SLO experiment
// sweeps: steady traffic, the bursty fan-in adversary, and the
// cache-churn adversary that mistrains survival profiles.
var SLOMixes = []string{"ServerSteady", "ServerBurst", "ServerChurn"}

// ExperimentSLO renders the latency-SLO evaluation: each server traffic
// mix runs under no pretenuring, offline profile-driven pretenuring
// (trained at half scale, the paper's methodology), and the online
// advisor starting cold and warm. Every run is traced, and the table is
// computed from the trace by internal/slo: exact nearest-rank pause and
// request-latency percentiles plus minimum mutator utilization at the
// default window sweep. All quantities are pure functions of the
// simulated-cycle event stream, so the table is byte-identical at every
// parallelism level and across runs.
func ExperimentSLO(w io.Writer, scale workload.Scale, opts Options) error {
	// Offline training input: the same mix at half the repetitions.
	train := scale.Canon()
	train.Repeat /= 2

	// A tight budget keeps collections frequent enough that pauses shape
	// the latency tail — the regime an SLO report exists for.
	const sloK = 2
	const perMix = 3 // none, offline, adapt-cold
	var cfgs []RunConfig
	for _, name := range SLOMixes {
		cfgs = append(cfgs,
			RunConfig{Workload: name, Scale: scale, Kind: KindGenerational, K: sloK, Trace: true},
			RunConfig{Workload: name, Scale: scale, Kind: KindGenPretenure, K: sloK, TrainScale: train, Trace: true},
			RunConfig{Workload: name, Scale: scale, Kind: KindGenerational, K: sloK, Adapt: true, Trace: true})
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}

	// Warm batch: the adaptive configuration again, seeded with the
	// profile the cold run just stored (ExperimentAdapt's two-batch
	// pattern).
	var warmCfgs []RunConfig
	for i, name := range SLOMixes {
		warmCfgs = append(warmCfgs, RunConfig{
			Workload: name, Scale: scale, Kind: KindGenerational, K: sloK,
			Adapt: true, AdaptWarm: rs[i*perMix+2].AdaptProfile, Trace: true,
		})
	}
	warm, err := RunAll(warmCfgs, opts)
	if err != nil {
		return err
	}

	header(w, "Experiment: latency SLO (pause/request percentiles, MMU)")
	fmt.Fprintln(w, "Exact nearest-rank percentiles over per-collection pauses and per-request")
	fmt.Fprintln(w, "latencies (simulated cycles); MMU@w = minimum mutator utilization over every")
	fmt.Fprintln(w, "window of w cycles (100% = no pause touches any such window).")
	fmt.Fprintf(w, "%-24s | %7s %7s %7s | %8s %8s %8s %8s | %6s %6s %6s %6s\n",
		"Mix/config", "p50", "p99", "p99.9", "req p50", "req p99", "p99.9", "max",
		"MMU@1k", "@10k", "@100k", "@1M")
	row := func(mix, config string, r *RunResult) error {
		rep, err := slo.Compute(r.Trace.Data(r.Config.Label()), slo.DefaultWindows)
		if err != nil {
			return fmt.Errorf("harness: slo report for %s: %w", r.Config.Label(), err)
		}
		var rq slo.RequestStats
		if rep.Requests != nil {
			rq = *rep.Requests
		}
		fmt.Fprintf(w, "%-24s | %7d %7d %7d | %8d %8d %8d %8d |",
			mix+"/"+config,
			rep.Pauses.P50, rep.Pauses.P99, rep.Pauses.P999,
			rq.P50, rq.P99, rq.P999, rq.Max)
		for _, ws := range rep.Windows {
			fmt.Fprintf(w, " %5.1f%%", float64(ws.MMUppm)/1e4)
		}
		fmt.Fprintln(w)
		return nil
	}
	for i, mix := range SLOMixes {
		configs := []struct {
			name string
			r    *RunResult
		}{
			{"none", rs[i*perMix]},
			{"offline", rs[i*perMix+1]},
			{"adapt-cold", rs[i*perMix+2]},
			{"adapt-warm", warm[i]},
		}
		for _, c := range configs {
			if err := row(mix, c.name, c.r); err != nil {
				return err
			}
		}
	}

	// Parallel copying sweep: every mix under gen+markers at W simulated
	// copy workers. Work sharding is deterministic — the heap image and
	// the request stream are identical at every W — so the only thing that
	// moves is pause wall time, shrunk to the critical path
	// (max-of-workers). Small-window MMU is where that shows: windows that
	// a serial pause blacked out entirely recover utilization as W grows.
	var wcfgs []RunConfig
	for _, name := range SLOMixes {
		for _, wk := range SLOWorkers {
			// DeferMajor at every W (including the serial baseline, so the
			// comparison is policy-for-policy): an over-threshold major runs
			// as its own pause instead of extending the minor that crossed
			// the threshold, which is what a latency-SLO deployment would
			// configure — a combined minor+major pause blacks out small MMU
			// windows at any worker count.
			wcfgs = append(wcfgs, RunConfig{
				Workload: name, Scale: scale, Kind: KindGenMarkers, K: sloK,
				GCWorkers: wk, DeferMajor: true, Trace: true,
			})
		}
	}
	wrs, err := RunAll(wcfgs, opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nParallel copying (gen+markers, W simulated copy workers): identical heap")
	fmt.Fprintln(w, "images and request streams at every W; pause wall time shrinks to the")
	fmt.Fprintln(w, "critical path, so pause percentiles fall and small-window MMU rises.")
	fmt.Fprintf(w, "%-24s | %7s %7s %7s | %8s %8s %8s %8s | %6s %6s %6s %6s\n",
		"Mix/workers", "p50", "p99", "p99.9", "req p50", "req p99", "p99.9", "max",
		"MMU@1k", "@10k", "@100k", "@1M")
	for i, mix := range SLOMixes {
		for j, wk := range SLOWorkers {
			if err := row(mix, fmt.Sprintf("W=%d", wk), wrs[i*len(SLOWorkers)+j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SLOWorkers is the parallel-copy worker sweep the SLO experiment appends:
// serial, and the two sharded configurations the acceptance gates compare.
var SLOWorkers = []int{1, 2, 4}

// OldgenSuite lists the workloads the old-generation collector comparison
// sweeps: the four pretenure targets (the paper benchmarks that tenure
// the most data, so the old-generation algorithm dominates their GC
// cost) plus the server adversaries that stress the old generation under
// request traffic — cache churn (tenured garbage), drip-leak (monotone
// tenured growth), and their combination (the fragmentation mix).
var OldgenSuite = []string{
	"Knuth-Bendix", "Lexgen", "Nqueen", "Simple",
	"ServerChurn", "ServerDrip", "ServerDripChurn",
}

// OldgenCollectors is the collector axis of the oldgen experiment.
var OldgenCollectors = []core.OldCollector{
	core.OldCopy, core.OldMarkSweep, core.OldMarkCompact,
}

// ExperimentOldgen renders the copy-vs-mark comparison over the old
// generation: every OldgenSuite workload under gen+markers+pretenure at a
// tight memory multiple (frequent majors — the regime where the
// old-generation algorithm dominates GC cost), across the three
// old-generation collectors. Client results are byte-identical across the
// collector axis — the experiment verifies that per workload and fails
// loudly if the differential oracle is violated — so the table isolates
// pure GC-side differences: old-generation words copied (zero under the
// non-moving collectors) versus marked/swept/slid, pause percentiles,
// MMU@10k, and peak committed heap footprint (mark-sweep trades copy cost
// for fragmentation-driven footprint; mark-compact trades it for slide
// cost). Every quantity is a pure function of the simulated-cycle event
// stream, so the rendered table is byte-identical at every parallelism.
func ExperimentOldgen(w io.Writer, scale workload.Scale, opts Options) error {
	// The paper's tight multiple: majors frequent enough that old-gen
	// policy is the first-order GC cost (the SLO experiment's regime).
	const oldgenK = 2
	var cfgs []RunConfig
	for _, name := range OldgenSuite {
		for _, oc := range OldgenCollectors {
			cfgs = append(cfgs, RunConfig{
				Workload: name, Scale: scale, Kind: KindGenMarkersPretenure,
				K: oldgenK, OldCollector: oc, Trace: true, TraceHeap: true,
			})
		}
	}
	rs, err := RunAll(cfgs, opts)
	if err != nil {
		return err
	}

	header(w, "Experiment: old-generation collectors (copy vs mark-sweep vs mark-compact)")
	fmt.Fprintln(w, "gen+markers+pretenure at k=2. Client results are identical across collectors")
	fmt.Fprintln(w, "(verified per row group); only GC cost, pause shape, and footprint move.")
	fmt.Fprintln(w, "Counts are heap words; footprint is the peak committed heap across")
	fmt.Fprintln(w, "end-of-collection samples; MMU@10k = minimum mutator utilization over every")
	fmt.Fprintln(w, "10k-cycle window.")
	fmt.Fprintf(w, "%-28s | %10s %10s %10s %10s | %7s %8s | %7s | %10s\n",
		"Workload/old", "old-copied", "marked", "swept", "slid",
		"p50", "p99", "MMU@10k", "footprint")
	for i, name := range OldgenSuite {
		base := rs[i*len(OldgenCollectors)]
		for j, oc := range OldgenCollectors {
			r := rs[i*len(OldgenCollectors)+j]
			if r.Check != base.Check {
				return fmt.Errorf("harness: oldgen differential violated: %s check %#x under old=%s, %#x under old=%s",
					name, r.Check, oc, base.Check, OldgenCollectors[0])
			}
			data := r.Trace.Data(r.Config.Label())
			rep, err := slo.Compute(data, slo.DefaultWindows)
			if err != nil {
				return fmt.Errorf("harness: slo report for %s: %w", r.Config.Label(), err)
			}
			var mmu10k float64
			for _, ws := range rep.Windows {
				if ws.Window == 10_000 {
					mmu10k = float64(ws.MMUppm) / 1e4
				}
			}
			fmt.Fprintf(w, "%-28s | %10d %10d %10d %10d | %7d %8d | %6.1f%% | %8dKB\n",
				name+"/"+oc.String(),
				r.Stats.OldBytesCopied/mem.WordSize,
				r.Stats.WordsMarked, r.Stats.WordsSwept, r.Stats.WordsSlid,
				rep.Pauses.P50, rep.Pauses.P99, mmu10k,
				peakCommittedWords(data)*mem.WordSize/1024)
		}
	}
	return nil
}

// peakCommittedWords returns the largest total committed heap (in words)
// across a run's end-of-collection occupancy samples.
func peakCommittedWords(data *trace.RunData) uint64 {
	var peak uint64
	for _, hs := range data.Heap {
		var total uint64
		for _, sp := range hs.Spaces {
			total += sp.Committed
		}
		if total > peak {
			peak = total
		}
	}
	return peak
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
