package harness

import (
	"strings"
	"testing"

	"tilgc/internal/workload"
)

// allKinds is every collector configuration the harness can build.
var allKinds = []CollectorKind{
	KindSemispace, KindGenerational, KindGenMarkers,
	KindGenMarkersPretenure, KindGenMarkersPretenureElide, KindGenCards,
	KindGenPretenure, KindGenAging, KindGenAgingPretenure,
}

// TestSanitizedSweepAllKinds runs every collector configuration on a real
// workload with the sanitizer checking every collection. Run panics (and
// the test fails) on any invariant violation, so a green run certifies
// zero violations across the full configuration matrix.
func TestSanitizedSweepAllKinds(t *testing.T) {
	for _, kind := range allKinds {
		t.Run(kind.String(), func(t *testing.T) {
			r, err := Run(RunConfig{Workload: "Life", Scale: tiny, Kind: kind, K: 2, Sanitize: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Stats.NumGC == 0 {
				t.Fatal("run performed no collections; the sanitizer never engaged")
			}
		})
	}
}

// TestSanitizeDoesNotChangeResults verifies the wrapper's transparency
// contract: a sanitized run must produce exactly the results — statistics,
// meter charges, heap check word — of an unsanitized one.
func TestSanitizeDoesNotChangeResults(t *testing.T) {
	for _, kind := range []CollectorKind{KindSemispace, KindGenMarkersPretenure, KindGenCards} {
		t.Run(kind.String(), func(t *testing.T) {
			plain, err := Run(RunConfig{Workload: "Nqueen", Scale: tiny, Kind: kind, K: 3})
			if err != nil {
				t.Fatal(err)
			}
			checked, err := Run(RunConfig{Workload: "Nqueen", Scale: tiny, Kind: kind, K: 3, Sanitize: true})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Check != checked.Check {
				t.Errorf("check word changed: %#x vs %#x", plain.Check, checked.Check)
			}
			if plain.Stats != checked.Stats {
				t.Errorf("stats changed:\n  plain:   %+v\n  checked: %+v", plain.Stats, checked.Stats)
			}
			if plain.Times != checked.Times {
				t.Errorf("cost breakdown changed: %+v vs %+v", plain.Times, checked.Times)
			}
		})
	}
}

// TestRunAllSanitizedParallel exercises the sanitizer inside the parallel
// worker pool (this is the -race coverage for internal/sanitize): several
// sanitized runs of different configurations execute concurrently, and
// the assembled results must match a serial sanitized batch.
func TestRunAllSanitizedParallel(t *testing.T) {
	var cfgs []RunConfig
	for _, kind := range []CollectorKind{KindGenerational, KindGenMarkers, KindGenCards, KindGenAgingPretenure} {
		cfgs = append(cfgs, RunConfig{Workload: "Life", Scale: tiny, Kind: kind, K: 2})
	}
	serial, err := RunAll(cfgs, Options{Parallelism: 1, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(cfgs, Options{Parallelism: 4, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if serial[i].Check != parallel[i].Check || serial[i].Stats != parallel[i].Stats {
			t.Errorf("%s: parallel sanitized run diverged from serial", cfgs[i].Kind)
		}
	}
}

// TestSanitizeOptionDoesNotMutateInput verifies RunAll's Sanitize option
// leaves the caller's config slice untouched (it copies before setting).
func TestSanitizeOptionDoesNotMutateInput(t *testing.T) {
	cfgs := []RunConfig{{Workload: "Life", Scale: tiny, Kind: KindSemispace, K: 2}}
	if _, err := RunAll(cfgs, Options{Parallelism: 1, Sanitize: true}); err != nil {
		t.Fatal(err)
	}
	if cfgs[0].Sanitize {
		t.Fatal("RunAll mutated the caller's RunConfig")
	}
}

// TestSanitizedTableByteIdentical renders one table with and without the
// sanitizer and compares bytes — the contract gcbench -sanitize documents.
func TestSanitizedTableByteIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("full table render; too slow under the race detector")
	}
	scale := workload.Scale{Repeat: 0.002, Depth: 0.3}
	plain := renderTable(t, scale, Options{Parallelism: 2})
	checked := renderTable(t, scale, Options{Parallelism: 2, Sanitize: true})
	if plain != checked {
		t.Errorf("sanitized table differs from plain table:\n--- plain ---\n%s\n--- sanitized ---\n%s", plain, checked)
	}
}

func renderTable(t *testing.T, scale workload.Scale, opts Options) string {
	t.Helper()
	var buf strings.Builder
	if err := Table4(&buf, scale, opts); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
