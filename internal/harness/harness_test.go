package harness

import (
	"strings"
	"testing"

	"tilgc/internal/workload"
)

// tiny keeps harness tests fast.
var tiny = workload.Scale{Repeat: 0.002, Depth: 0.3}

func TestCalibrateCachesAndMeasures(t *testing.T) {
	ClearCalibrationCache()
	c1, err := Calibrate("Nqueen", tiny, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c1.maxLiveWords == 0 {
		t.Fatal("calibration measured zero live data")
	}
	c2, _ := Calibrate("Nqueen", tiny, 0)
	if c1 != c2 {
		t.Fatal("calibration not cached")
	}
	// An explicit cutoff equal to the default shares the cache entry.
	c3, _ := Calibrate("Nqueen", tiny, DefaultPretenureCutoff)
	if c1 != c3 {
		t.Fatal("default cutoff not normalized in the cache key")
	}
	// Scale{Depth: 0} documents zero as meaning 1.0, so it must share a
	// cache entry with the explicit Depth 1.0.
	cz, _ := Calibrate("Nqueen", workload.Scale{Repeat: tiny.Repeat}, 0)
	co, _ := Calibrate("Nqueen", workload.Scale{Repeat: tiny.Repeat, Depth: 1.0}, 0)
	if cz != co {
		t.Fatal("Scale{Depth: 0} and Scale{Depth: 1} calibrated separately")
	}
}

func TestCalibrationPolicySelectsLongLivedSites(t *testing.T) {
	ClearCalibrationCache()
	c, err := Calibrate("Nqueen", workload.Scale{Repeat: 0.005}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.policy.Len() == 0 {
		t.Fatal("Nqueen policy selected no sites; profile-driven pretenuring impossible")
	}
}

func TestRunProducesConsistentChecks(t *testing.T) {
	kinds := []CollectorKind{
		KindSemispace, KindGenerational, KindGenMarkers,
		KindGenMarkersPretenure, KindGenMarkersPretenureElide, KindGenCards,
	}
	var ref uint64
	for i, kind := range kinds {
		r, err := Run(RunConfig{Workload: "Life", Scale: tiny, Kind: kind, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = r.Check
		} else if r.Check != ref {
			t.Fatalf("%v check %#x, want %#x", kind, r.Check, ref)
		}
		if r.Times.Total() == 0 {
			t.Fatalf("%v charged no time", kind)
		}
	}
}

func TestBudgetAffectsGCCount(t *testing.T) {
	small, err := Run(RunConfig{Workload: "Life", Scale: tiny, Kind: KindSemispace, K: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(RunConfig{Workload: "Life", Scale: tiny, Kind: KindSemispace, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.NumGC <= large.Stats.NumGC {
		t.Fatalf("k=1.5 ran %d GCs, k=4 ran %d; smaller budgets must collect more",
			small.Stats.NumGC, large.Stats.NumGC)
	}
}

func TestMarkersReduceKBGCStackCost(t *testing.T) {
	if raceEnabled {
		t.Skip("near-paper-scale Knuth-Bendix run; too slow under the race detector")
	}
	scale := workload.Scale{Repeat: 0.004, Depth: 1}
	base, err := Run(RunConfig{Workload: "Knuth-Bendix", Scale: scale, Kind: KindGenerational, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	mk, err := Run(RunConfig{Workload: "Knuth-Bendix", Scale: scale, Kind: KindGenMarkers, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mk.Check != base.Check {
		t.Fatal("markers changed the computation")
	}
	if mk.Times.GCStack*2 > base.Times.GCStack {
		t.Fatalf("markers did not halve KB stack cost: %d vs %d",
			mk.Times.GCStack, base.Times.GCStack)
	}
}

func TestPretenuringReducesNqueenCopying(t *testing.T) {
	scale := workload.Scale{Repeat: 0.01}
	base, err := Run(RunConfig{Workload: "Nqueen", Scale: scale, Kind: KindGenMarkers, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(RunConfig{Workload: "Nqueen", Scale: scale, Kind: KindGenMarkersPretenure, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Check != base.Check {
		t.Fatal("pretenuring changed the computation")
	}
	if pre.Stats.BytesCopied >= base.Stats.BytesCopied {
		t.Fatalf("pretenuring did not reduce copying: %d vs %d",
			pre.Stats.BytesCopied, base.Stats.BytesCopied)
	}
}

func TestProfileRunAttachesProfiler(t *testing.T) {
	r, err := Run(RunConfig{Workload: "Nqueen", Scale: tiny, Kind: KindGenerational, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Profiler == nil || r.Profiler.TotalAllocated() == 0 {
		t.Fatal("profiler missing or empty")
	}
}

func TestTableRenderersProduceOutput(t *testing.T) {
	if raceEnabled {
		t.Skip("profiling and k=4 sweeps; too slow under the race detector")
	}
	par := Options{Parallelism: 4}
	cases := map[string]func(*strings.Builder) error{
		"table1":  func(b *strings.Builder) error { return Table1(b) },
		"figure2": func(b *strings.Builder) error { return Figure2(b, tiny, par) },
		"elide":   func(b *strings.Builder) error { return ExtensionElide(b, tiny, par) },
		"barrier": func(b *strings.Builder) error { return ExtensionBarrier(b, tiny, par) },
	}
	for name, fn := range cases {
		var b strings.Builder
		if err := fn(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Len() < 100 {
			t.Fatalf("%s output suspiciously short:\n%s", name, b.String())
		}
	}
}

func TestTable5SmallScale(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("table sweep")
	}
	var b strings.Builder
	if err := Table5(&b, workload.Scale{Repeat: 0.002, Depth: 0.5}, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Knuth-Bendix") || !strings.Contains(out, "decreased") {
		t.Fatalf("table 5 malformed:\n%s", out)
	}
}

func TestNurseryFor(t *testing.T) {
	if nurseryFor(1<<24) != 64*1024 {
		t.Error("big budget should give the 512KB nursery")
	}
	if n := nurseryFor(8 * 1024); n != 2*1024 {
		t.Errorf("small budget nursery = %d", n)
	}
	if n := nurseryFor(100); n != 1024 {
		t.Errorf("floor nursery = %d", n)
	}
}

func TestCollectorKindStrings(t *testing.T) {
	for k := KindSemispace; k <= KindGenPretenure; k++ {
		if strings.Contains(k.String(), "CollectorKind") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// TestAllTableRenderers exercises every table renderer end to end at a
// tiny scale (slow: a full k-sweep per table).
func TestAllTableRenderers(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("full table sweeps")
	}
	scale := workload.Scale{Repeat: 0.001, Depth: 0.15}
	par := Options{Parallelism: 4}
	renderers := map[string]func(*strings.Builder) error{
		"table2": func(b *strings.Builder) error { return Table2(b, scale, par) },
		"table3": func(b *strings.Builder) error { return Table3(b, scale, par) },
		"table4": func(b *strings.Builder) error { return Table4(b, scale, par) },
		"table6": func(b *strings.Builder) error { return Table6(b, scale, par) },
		"table7": func(b *strings.Builder) error { return Table7(b, scale, par) },
		"aging":  func(b *strings.Builder) error { return ExtensionAging(b, scale, par) },
		"msweep": func(b *strings.Builder) error {
			return MarkerSweep(b, scale, []string{"Color"}, []int{5, 50}, par)
		},
	}
	for name, fn := range renderers {
		var b strings.Builder
		if err := fn(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := b.String()
		if !strings.Contains(out, "Knuth-Bendix") && !strings.Contains(out, "Color") {
			t.Fatalf("%s output missing benchmarks:\n%s", name, out)
		}
	}
}

func TestAgingKindsRunCorrectly(t *testing.T) {
	var ref uint64
	for i, kind := range []CollectorKind{KindGenerational, KindGenAging, KindGenAgingPretenure} {
		r, err := Run(RunConfig{Workload: "Nqueen", Scale: tiny, Kind: kind, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = r.Check
		} else if r.Check != ref {
			t.Fatalf("%v check mismatch", kind)
		}
	}
}
