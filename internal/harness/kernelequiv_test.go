package harness

import (
	"bytes"
	"testing"

	"tilgc/internal/core"
	"tilgc/internal/trace"
)

// runJSONL renders a traced run's full event stream as JSONL bytes.
func runJSONL(t *testing.T, r *RunResult) []byte {
	t.Helper()
	f := trace.NewFile(r.Trace.Data(r.Config.Label()))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReferenceKernelsObservationallyIdentical is the end-to-end kernel
// equivalence proof: real paper workloads run under the optimized kernels
// and the preserved reference kernels must measure bit-identically —
// checksums, cycle breakdowns, GC stats, barrier counts, and the entire
// JSONL trace stream (every phase-boundary cycle stamp and per-site
// counter). A pair of configs also runs under the heap-integrity
// sanitizer, so a kernel bug that leaves the heap subtly inconsistent
// without changing the measurements still fails loudly.
func TestReferenceKernelsObservationallyIdentical(t *testing.T) {
	cfgs := detConfigs()
	for i := range cfgs {
		cfgs[i].Trace = true
		cfgs[i].Sanitize = i%3 == 0
	}
	for _, cfg := range cfgs {
		opt, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		core.SetReferenceKernels(true)
		ref, runErr := Run(cfg)
		core.SetReferenceKernels(false)
		if runErr != nil {
			t.Fatal(runErr)
		}
		sameResult(t, opt, ref)
		if !bytes.Equal(runJSONL(t, opt), runJSONL(t, ref)) {
			t.Errorf("%s: JSONL traces diverge between optimized and reference kernels", cfg.Label())
		}
	}
}
