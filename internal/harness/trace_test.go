package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"tilgc/internal/trace"
)

// traceFile assembles the per-run recorders of a RunAll batch (in input
// order) into one trace file, the way cmd/gcbench does.
func traceFile(t *testing.T, results []*RunResult) *trace.File {
	t.Helper()
	runs := make([]*trace.RunData, len(results))
	for i, r := range results {
		if r.Trace == nil {
			t.Fatalf("run %d has no trace recorder", i)
		}
		runs[i] = r.Trace.Data(r.Config.Label())
	}
	return trace.NewFile(runs...)
}

// renderBoth serializes a file to both sink formats.
func renderBoth(t *testing.T, f *trace.File) (jsonl, chrome []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := f.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestTraceDoesNotPerturbMeasurements: a traced run must measure exactly
// what the untraced run measures — tracing charges nothing to the meter.
func TestTraceDoesNotPerturbMeasurements(t *testing.T) {
	for _, cfg := range detConfigs() {
		plain, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Trace = true
		traced, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Check != traced.Check || plain.Times != traced.Times || plain.Stats != traced.Stats {
			t.Errorf("%s: traced run measured differently from untraced:\nplain:  %+v\ntraced: %+v",
				cfg.Label(), plain.Times, traced.Times)
		}
	}
}

// TestTraceReconcilesAndValidates: every traced config produces a
// structurally sound trace whose per-phase GC cycles tile the collection
// spans and the final meter exactly, and whose per-GC counters sum to the
// run's end-of-run stats.
func TestTraceReconcilesAndValidates(t *testing.T) {
	for _, cfg := range detConfigs() {
		cfg.Trace = true
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d := r.Trace.Data(cfg.Label())
		if len(d.Events) == 0 {
			t.Fatalf("%s: traced run recorded no events (GCs=%d)", cfg.Label(), r.Stats.NumGC)
		}
		f := trace.NewFile(d)
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Label(), err)
		}
		s := d.Summarize()
		if s.GCs != r.Stats.NumGC {
			t.Errorf("%s: trace saw %d collections, stats say %d", cfg.Label(), s.GCs, r.Stats.NumGC)
		}
		if s.Majors != r.Stats.NumMajor {
			t.Errorf("%s: trace saw %d majors, stats say %d", cfg.Label(), s.Majors, r.Stats.NumMajor)
		}
		if s.FramesDecoded != r.Stats.FramesDecoded || s.FramesReused != r.Stats.FramesReused {
			t.Errorf("%s: trace frame counters %d/%d, stats %d/%d", cfg.Label(),
				s.FramesDecoded, s.FramesReused, r.Stats.FramesDecoded, r.Stats.FramesReused)
		}
		if s.Final.Total() != r.Times.Total() {
			t.Errorf("%s: trace final %d cycles, meter %d", cfg.Label(), s.Final.Total(), r.Times.Total())
		}
	}
}

// TestTraceRunTwiceByteIdentical: both sink formats are byte-identical
// across two independent executions of the same batch.
func TestTraceRunTwiceByteIdentical(t *testing.T) {
	cfgs := detConfigs()[:3]
	opts := Options{Parallelism: 1, Trace: true}
	first, err := RunAll(cfgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, c1 := renderBoth(t, traceFile(t, first))
	second, err := RunAll(cfgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	j2, c2 := renderBoth(t, traceFile(t, second))
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL trace differs between two identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("Chrome trace differs between two identical runs")
	}
}

// TestTraceParallelMatchesSerial: the assembled trace file is
// byte-identical at every parallelism level, for both formats — the
// ISSUE's parallel==serial acceptance criterion.
func TestTraceParallelMatchesSerial(t *testing.T) {
	cfgs := detConfigs()
	serial, err := RunAll(cfgs, Options{Parallelism: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	js, cs := renderBoth(t, traceFile(t, serial))
	ClearCalibrationCache()
	parallel, err := RunAll(cfgs, Options{Parallelism: 8, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	jp, cp := renderBoth(t, traceFile(t, parallel))
	if !bytes.Equal(js, jp) {
		t.Error("JSONL trace differs between serial and parallel execution")
	}
	if !bytes.Equal(cs, cp) {
		t.Error("Chrome trace differs between serial and parallel execution")
	}
}

// TestTraceJSONLRoundTrip: parsing a written stream and re-writing it
// reproduces the original bytes, and the parsed file validates.
func TestTraceJSONLRoundTrip(t *testing.T) {
	cfg := detConfigs()[0]
	cfg.Trace = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := trace.NewFile(r.Trace.Data(cfg.Label()))
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := parsed.Validate(); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := parsed.WriteJSONL(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("JSONL round-trip is not byte-identical")
	}
}

// TestTraceChromeIsValidJSON: the Perfetto sink emits well-formed JSON
// with the traceEvents array shape.
func TestTraceChromeIsValidJSON(t *testing.T) {
	cfg := detConfigs()[0]
	cfg.Trace = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, chrome := renderBoth(t, traceFile(t, []*RunResult{r}))
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome output has no trace events")
	}
}

// TestTraceStubReturnCounter: a marker configuration that reuses frames
// must count mutator returns through marker stubs.
func TestTraceStubReturnCounter(t *testing.T) {
	cfg := RunConfig{Workload: "Life", Scale: tiny, Kind: KindGenMarkers, K: 2, Trace: true}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Trace.Metrics().Lookup(trace.MetricStubReturns)
	if !ok {
		t.Fatal("stub-return metric missing")
	}
	if r.Stats.MarkersPlaced > 0 && m.Value == 0 {
		t.Errorf("markers were placed (%d) but no stub returns were counted", r.Stats.MarkersPlaced)
	}
}
