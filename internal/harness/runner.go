package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tilgc/internal/adapt"
	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/trace"
)

// EventKind distinguishes the progress events RunAll emits.
type EventKind int

const (
	// EventRunStarted fires when a worker picks a run off the queue.
	EventRunStarted EventKind = iota
	// EventRunFinished fires when a run completes (or fails).
	EventRunFinished
)

// Event is one progress notification from RunAll. Finished events carry
// the run's headline measurements (collection count, longest pause,
// simulated total) so long sweeps are observable before the assembled
// table renders.
type Event struct {
	Kind   EventKind
	Index  int // position of the run in the RunAll input slice
	Total  int // number of runs in the batch
	Config RunConfig

	// The fields below are populated on EventRunFinished only.
	Err         error
	GCs         uint64  // collections the run performed
	MaxPauseSec float64 // longest single collection, simulated seconds
	TotalSec    float64 // simulated mutator+collector seconds
	// Times is the run's full cycle breakdown (client / gc-stack /
	// gc-copy), so sweeps expose where the cycles went per run, not just
	// the total.
	Times costmodel.Breakdown
}

// Options configures RunAll.
type Options struct {
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	// Parallelism 1 is the serial path: runs execute one at a time in
	// input order.
	Parallelism int
	// Events, when non-nil, receives progress notifications. Calls are
	// serialized (never concurrent), but arrive in completion order —
	// not input order — when Parallelism > 1. The hook runs on worker
	// goroutines and delays run dispatch while it executes, so it
	// should be cheap.
	Events func(Event)
	// Sanitize enables the heap-integrity sanitizer on every run in the
	// batch (see RunConfig.Sanitize).
	Sanitize bool
	// Trace attaches a telemetry recorder to every run in the batch (see
	// RunConfig.Trace). Recorders ride back on RunResult.Trace in input
	// order, so trace files assembled from the results are byte-identical
	// at every parallelism level.
	Trace bool
	// TraceHeap enables per-space heap-occupancy sampling on every traced
	// run in the batch (see RunConfig.TraceHeap).
	TraceHeap bool
	// TraceSink, when non-nil, implies Trace and receives each batch's
	// per-run trace data after the batch assembles — in input order,
	// whatever the parallelism, with failed runs skipped. The experiment
	// renderers call RunAll internally without surfacing RunResults, so
	// this is how callers like gcbench capture traces of a whole sweep;
	// batches arrive in the order the experiment issues them.
	TraceSink func([]*trace.RunData)
	// Adapt attaches the online pretenuring advisor to every generational
	// run in the batch (see RunConfig.Adapt). Semispace runs are left
	// unchanged: the advisor has no tenured generation to steer there.
	Adapt bool
	// AdaptWarm, when non-nil, warm-starts each adaptive run from the
	// store's most recent profile for its workload (no-op for workloads
	// the store has never seen).
	AdaptWarm *adapt.Store
	// AdaptSink, when non-nil, implies Adapt and receives each batch's
	// storable advisor profiles after the batch assembles — in input
	// order, whatever the parallelism, with failed and non-adaptive runs
	// skipped. Like TraceSink, this is how sweep callers (gcbench
	// -adapt-store) persist a whole sweep's advisor state byte-identically
	// at any parallelism.
	AdaptSink func([]*adapt.RunProfile)
	// Threads, when > 1, runs every config in the batch that does not set
	// its own thread count over this many simulated mutator threads (see
	// RunConfig.Threads). Simulated results are thread-count-dependent
	// only for workloads that schedule across threads.
	Threads int
	// GCWorkers, when > 1, enables the deterministic parallel copying
	// phases on every config that does not set its own worker count (see
	// RunConfig.GCWorkers). Heap contents and client results are
	// identical at every worker count; only pause accounting shards.
	GCWorkers int
	// OldCollector, when not OldCopy, selects the non-moving
	// old-generation collector for every generational config in the
	// batch that does not set its own (see RunConfig.OldCollector).
	// Semispace runs are left on the copying default — they have no old
	// generation. Client results are identical across old-generation
	// collectors; only GC cost, pause shape, and footprint move.
	OldCollector core.OldCollector
}

// workers resolves the pool size for a batch of n runs.
func (o Options) workers(n int) int { return poolSize(n, o.Parallelism) }

// poolSize is the single pool-sizing resolver for every fan-out path in
// the harness (RunAll batches and ParallelEach loops): parallelism <= 0
// means GOMAXPROCS, and the pool never exceeds the n work items. The
// GOMAXPROCS read is deliberately confined here — it sizes only the
// goroutine pool, never what any run computes; input-order assembly
// keeps batch output byte-identical at every pool size, which CI
// enforces by comparing serial against parallel output.
func poolSize(n, parallelism int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	return parallelism
}

// ParallelEach runs fn(i) for every i in [0, n) across a bounded worker
// pool and returns when all calls complete. parallelism <= 0 means
// GOMAXPROCS; parallelism 1 is the serial path, executing indices in
// order. Work is claimed off a shared atomic counter, so callers that
// write fn's results into out[i] get input-order-deterministic output at
// any parallelism — the same discipline RunAll uses for run batches, and
// what the fuzz driver fans seed ranges over.
func ParallelEach(n, parallelism int, fn func(i int)) {
	if n <= 0 {
		return
	}
	parallelism = poolSize(n, parallelism)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := parallelism; w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunAll executes every config, fanning the runs out across a bounded
// worker pool, and assembles the results in input order: out[i] is
// Run(cfgs[i]). Because runs are deterministic and share no mutable
// state beyond the singleflight calibration cache (see the package
// comment), the assembled slice — and any table rendered from it — is
// identical at every parallelism level, including the serial
// Parallelism-1 path.
//
// All runs are attempted even when some fail; the returned error is the
// first failure in input order, and failed slots are nil.
func RunAll(cfgs []RunConfig, opts Options) ([]*RunResult, error) {
	results := make([]*RunResult, len(cfgs))
	errs := make([]error, len(cfgs))

	var evMu sync.Mutex
	emit := func(e Event) {
		if opts.Events == nil {
			return
		}
		evMu.Lock()
		defer evMu.Unlock()
		opts.Events(e)
	}

	ParallelEach(len(cfgs), opts.workers(len(cfgs)), func(i int) {
		emit(Event{Kind: EventRunStarted, Index: i, Total: len(cfgs), Config: cfgs[i]})
		cfg := cfgs[i]
		if opts.Sanitize {
			cfg.Sanitize = true
		}
		if opts.Trace || opts.TraceSink != nil {
			cfg.Trace = true
		}
		if opts.TraceHeap {
			cfg.TraceHeap = true
		}
		if (opts.Adapt || opts.AdaptSink != nil) && cfg.Kind != KindSemispace {
			cfg.Adapt = true
		}
		if opts.Threads > 1 && cfg.Threads == 0 {
			cfg.Threads = opts.Threads
		}
		if opts.GCWorkers > 1 && cfg.GCWorkers == 0 {
			cfg.GCWorkers = opts.GCWorkers
		}
		if opts.OldCollector != core.OldCopy && cfg.Kind != KindSemispace && cfg.OldCollector == core.OldCopy {
			cfg.OldCollector = opts.OldCollector
		}
		if cfg.Adapt && cfg.AdaptWarm == nil {
			cfg.AdaptWarm = opts.AdaptWarm.Find(cfg.Workload)
		}
		r, err := Run(cfg)
		results[i], errs[i] = r, err
		done := Event{Kind: EventRunFinished, Index: i, Total: len(cfgs), Config: cfgs[i], Err: err}
		if r != nil {
			done.GCs = r.Stats.NumGC
			done.MaxPauseSec = costmodel.Cycles(r.Stats.MaxPauseCycles).Seconds()
			done.TotalSec = r.Total()
			done.Times = r.Times
		}
		emit(done)
	})

	if opts.TraceSink != nil {
		batch := make([]*trace.RunData, 0, len(results))
		for _, r := range results {
			if r != nil && r.Trace != nil {
				batch = append(batch, r.Trace.Data(r.Config.Label()))
			}
		}
		opts.TraceSink(batch)
	}
	if opts.AdaptSink != nil {
		batch := make([]*adapt.RunProfile, 0, len(results))
		for _, r := range results {
			if r != nil && r.AdaptProfile != nil {
				batch = append(batch, r.AdaptProfile)
			}
		}
		opts.AdaptSink(batch)
	}

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
