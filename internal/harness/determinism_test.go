package harness

import (
	"strings"
	"sync"
	"testing"

	"tilgc/internal/workload"
)

// detConfigs is a small matrix that crosses collector kinds (including
// KindGenCards, whose barrier processing once depended on map iteration
// order) with budgets, for determinism checks.
func detConfigs() []RunConfig {
	return []RunConfig{
		{Workload: "Life", Scale: tiny, Kind: KindGenCards, K: 1.5},
		{Workload: "Life", Scale: tiny, Kind: KindGenerational, K: 2},
		{Workload: "Peg", Scale: tiny, Kind: KindGenCards, K: 2},
		{Workload: "Nqueen", Scale: tiny, Kind: KindGenMarkersPretenure, K: 2},
		{Workload: "Nqueen", Scale: tiny, Kind: KindSemispace, K: 4},
		{Workload: "Color", Scale: tiny, Kind: KindGenMarkers, K: 4},
		{Workload: "PhaseShift", Scale: tiny, Kind: KindGenerational, K: 2, Adapt: true},
	}
}

// sameResult asserts two runs of the same config measured identically,
// bit for bit.
func sameResult(t *testing.T, a, b *RunResult) {
	t.Helper()
	if a.Check != b.Check {
		t.Errorf("%s/%v: checksum %#x != %#x", a.Config.Workload, a.Config.Kind, a.Check, b.Check)
	}
	if a.Times != b.Times {
		t.Errorf("%s/%v: cost breakdown %+v != %+v", a.Config.Workload, a.Config.Kind, a.Times, b.Times)
	}
	if a.Stats != b.Stats {
		t.Errorf("%s/%v: GC stats %+v != %+v", a.Config.Workload, a.Config.Kind, a.Stats, b.Stats)
	}
	if a.Updates != b.Updates || a.MaxDepth != b.MaxDepth {
		t.Errorf("%s/%v: updates/depth %d/%d != %d/%d", a.Config.Workload, a.Config.Kind,
			a.Updates, a.MaxDepth, b.Updates, b.MaxDepth)
	}
}

// TestRunDeterministic runs every config twice and demands bit-identical
// measurements — DESIGN.md's reproducibility guarantee, and the property
// that makes parallel assembly safe.
func TestRunDeterministic(t *testing.T) {
	for _, cfg := range detConfigs() {
		first, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		second, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, first, second)
	}
}

// TestRunAllParallelMatchesSerial asserts the parallel runner assembles
// exactly the serial baseline, element for element, even with a cold
// calibration cache (so calibrations themselves race through the
// singleflight path).
func TestRunAllParallelMatchesSerial(t *testing.T) {
	cfgs := detConfigs()
	serial, err := RunAll(cfgs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ClearCalibrationCache()
	parallel, err := RunAll(cfgs, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if parallel[i].Config != cfgs[i] {
			t.Errorf("slot %d holds config %+v, want input-order %+v", i, parallel[i].Config, cfgs[i])
		}
		sameResult(t, serial[i], parallel[i])
	}
}

// TestRunAllEvents checks the progress hook fires a serialized
// started/finished pair for every run with the measurements attached.
func TestRunAllEvents(t *testing.T) {
	cfgs := detConfigs()[:3]
	started := map[int]int{}
	finished := map[int]int{}
	inHook := false
	opts := Options{
		Parallelism: 4,
		Events: func(e Event) {
			if inHook {
				t.Error("event hook invoked concurrently")
			}
			inHook = true
			defer func() { inHook = false }()
			if e.Total != len(cfgs) {
				t.Errorf("event total %d, want %d", e.Total, len(cfgs))
			}
			switch e.Kind {
			case EventRunStarted:
				started[e.Index]++
			case EventRunFinished:
				finished[e.Index]++
				if e.Err != nil {
					t.Errorf("run %d failed: %v", e.Index, e.Err)
				}
				if e.GCs == 0 || e.TotalSec == 0 || e.MaxPauseSec == 0 {
					t.Errorf("run %d finished without measurements: %+v", e.Index, e)
				}
			}
		},
	}
	if _, err := RunAll(cfgs, opts); err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if started[i] != 1 || finished[i] != 1 {
			t.Errorf("run %d saw %d started / %d finished events, want 1/1",
				i, started[i], finished[i])
		}
	}
}

// TestRunAllError: a bad config fails its slot but the rest of the batch
// still runs, and the first input-order error is reported.
func TestRunAllError(t *testing.T) {
	cfgs := []RunConfig{
		{Workload: "Life", Scale: tiny, Kind: KindGenerational, K: 2},
		{Workload: "NoSuchBenchmark", Scale: tiny, Kind: KindGenerational, K: 2},
		{Workload: "Peg", Scale: tiny, Kind: KindGenerational, K: 2},
	}
	rs, err := RunAll(cfgs, Options{Parallelism: 2})
	if err == nil || !strings.Contains(err.Error(), "NoSuchBenchmark") {
		t.Fatalf("error = %v, want unknown-benchmark failure", err)
	}
	if rs[0] == nil || rs[2] == nil {
		t.Error("healthy runs were dropped alongside the failed one")
	}
	if rs[1] != nil {
		t.Error("failed run produced a result")
	}
}

// TestRunAllEmpty: a zero-length batch completes without spawning work.
func TestRunAllEmpty(t *testing.T) {
	rs, err := RunAll(nil, Options{})
	if err != nil || len(rs) != 0 {
		t.Fatalf("RunAll(nil) = %v, %v", rs, err)
	}
}

// TestCalibrateSingleflight hammers one cold key from many goroutines and
// requires every caller to observe the same calibration object.
func TestCalibrateSingleflight(t *testing.T) {
	ClearCalibrationCache()
	const goroutines = 8
	cals := make([]*calibration, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Calibrate("Life", tiny, 0)
			if err != nil {
				t.Error(err)
				return
			}
			cals[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if cals[i] != cals[0] {
			t.Fatalf("goroutine %d calibrated separately", i)
		}
	}
}

// TestPretenureCutoffIsThreaded: the documented RunConfig.PretenureCutoff
// override must actually reach policy derivation. A cutoff above 100
// selects no sites (old% can't exceed 100), so pretenuring degenerates to
// the gen+markers baseline; the default cutoff selects sites on Nqueen.
func TestPretenureCutoffIsThreaded(t *testing.T) {
	scale := workload.Scale{Repeat: 0.005}
	def, err := Calibrate("Nqueen", scale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if def.policy.Len() == 0 {
		t.Fatal("default cutoff selected no Nqueen sites")
	}
	none, err := Calibrate("Nqueen", scale, 101)
	if err != nil {
		t.Fatal(err)
	}
	if none.policy.Len() != 0 {
		t.Fatalf("cutoff 101 selected %d sites, want 0", none.policy.Len())
	}
	r, err := Run(RunConfig{
		Workload: "Nqueen", Scale: scale, Kind: KindGenMarkersPretenure, K: 4,
		PretenureCutoff: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Pretenured != 0 {
		t.Fatalf("cutoff-101 run pretenured %d objects, want 0", r.Stats.Pretenured)
	}
	base, err := Run(RunConfig{
		Workload: "Nqueen", Scale: scale, Kind: KindGenMarkersPretenure, K: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.Pretenured == 0 {
		t.Fatal("default-cutoff run pretenured nothing; override test is vacuous")
	}
}

// TestParallelTableIdenticalToSerial renders Table 5 serially and with 8
// workers and demands byte-identical output — the acceptance criterion
// behind `gcbench -table 5 -parallel 8`.
func TestParallelTableIdenticalToSerial(t *testing.T) {
	scale := workload.Scale{Repeat: 0.001, Depth: 0.15}
	var serial, parallel strings.Builder
	if err := Table5(&serial, scale, Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	ClearCalibrationCache()
	if err := Table5(&parallel, scale, Options{Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel Table 5 differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}
