package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tilgc/internal/trace"
	"tilgc/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/trace_golden.jsonl from the current collector")

// goldenConfig is the small fixed workload whose trace is pinned: a
// marker-enabled generational run tight enough to collect a handful of
// times, exercising minor collections, marker reuse, and promotion.
func goldenConfig() RunConfig {
	return RunConfig{
		Workload: "Life",
		Scale:    workload.Scale{Repeat: 0.001, Depth: 0.3},
		Kind:     KindGenMarkers,
		K:        2,
		Trace:    true,
	}
}

const goldenPath = "testdata/trace_golden.jsonl"

// TestTraceGolden pins the exact JSONL trace of one small fixed workload:
// every phase span boundary, marker hit/miss count, and per-site counter.
// A collector refactor that silently changes phase accounting — moving a
// charge across a phase boundary, dropping a span, reordering counters —
// fails this test loudly. Refresh intentionally with:
//
//	go test ./internal/harness -run TestTraceGolden -update-golden
func TestTraceGolden(t *testing.T) {
	cfg := goldenConfig()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := trace.NewFile(r.Trace.Data(cfg.Label()))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s — phase accounting changed.\n"+
			"If intentional, refresh with: go test ./internal/harness -run TestTraceGolden -update-golden\n%s",
			goldenPath, diffHint(want, buf.Bytes()))
	}

	// Sanity-pin the quantities the golden file encodes, so a failure
	// message points at what moved even without a line diff.
	s := r.Trace.Data(cfg.Label()).Summarize()
	if s.GCs == 0 {
		t.Fatal("golden workload performed no collections; the fixture is vacuous")
	}
	if s.FramesReused == 0 {
		t.Error("golden workload reused no frames; marker coverage is vacuous")
	}
}

// diffHint locates the first differing line of two JSONL payloads.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := min(len(wl), len(gl))
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s",
				i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
