// Package harness runs the paper's experiments: it executes benchmark
// workloads under configured collectors with the paper's k·Min memory
// budgets (Min = twice the maximum live data, measured by a calibration
// run), gathers the measurements the tables report, derives pretenuring
// policies from profiling runs, and renders Tables 2-7 and Figure 2.
//
// # Concurrency contract
//
// Run is safe to call from multiple goroutines, and RunAll fans a batch
// of runs out across a bounded worker pool. The contract:
//
//   - Per-run state (heap, stack, trace table, meter, mutator, profiler)
//     is constructed fresh inside Run and never shared, so concurrent
//     runs cannot observe each other.
//   - Workload implementations are stateless singletons (Run receives
//     all mutable state through its Mutator) and the workload registry
//     is immutable after package init.
//   - The only shared mutable state is the calibration cache. It is
//     keyed per (workload, canonical scale, pretenure cutoff) with
//     per-key singleflight: calibrations for distinct keys run
//     concurrently, while two runs needing the same key block on a
//     single calibration pass. ClearCalibrationCache must not be called
//     concurrently with runs.
//   - Every run is deterministic (simulated cost model, no wall-clock
//     or map-order dependence), so RunAll's input-order assembly is
//     byte-for-byte identical to the serial path at any parallelism.
package harness

import (
	"fmt"
	"sync"

	"tilgc/internal/adapt"
	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
	"tilgc/internal/rt"
	"tilgc/internal/sanitize"
	"tilgc/internal/trace"
	"tilgc/internal/workload"
)

// CollectorKind selects one of the paper's four configurations (§3), plus
// the ablations.
type CollectorKind int

const (
	// KindSemispace is the §2.1 semispace baseline.
	KindSemispace CollectorKind = iota
	// KindGenerational is the two-generation collector.
	KindGenerational
	// KindGenMarkers adds generational stack collection (§5).
	KindGenMarkers
	// KindGenMarkersPretenure adds profile-driven pretenuring (§6).
	KindGenMarkersPretenure
	// KindGenMarkersPretenureElide adds §7.2 scan elision.
	KindGenMarkersPretenureElide
	// KindGenCards swaps the SSB for card marking (§4 ablation).
	KindGenCards
	// KindGenPretenure is pretenuring without stack markers (ablation).
	KindGenPretenure
	// KindGenAging disables immediate promotion: survivors age through an
	// intermediate space for 3 minor collections before tenuring (§7.2).
	KindGenAging
	// KindGenAgingPretenure adds profile-driven pretenuring on top of
	// aging — the configuration §7.2 predicts benefits most.
	KindGenAgingPretenure
)

// String names the configuration as the tables label it.
func (k CollectorKind) String() string {
	switch k {
	case KindSemispace:
		return "semispace"
	case KindGenerational:
		return "generational"
	case KindGenMarkers:
		return "gen+markers"
	case KindGenMarkersPretenure:
		return "gen+markers+pretenure"
	case KindGenMarkersPretenureElide:
		return "gen+markers+pretenure+elide"
	case KindGenCards:
		return "gen+cards"
	case KindGenPretenure:
		return "gen+pretenure"
	case KindGenAging:
		return "gen+aging"
	case KindGenAgingPretenure:
		return "gen+aging+pretenure"
	}
	return fmt.Sprintf("CollectorKind(%d)", int(k))
}

// RunConfig describes one experiment run.
type RunConfig struct {
	Workload string
	Scale    workload.Scale
	Kind     CollectorKind
	// K is the memory multiple of Min = 2·max-live; 0 means unconstrained.
	K float64
	// MarkerN overrides the stack-marker spacing (default 25, the paper's n).
	MarkerN int
	// Profile attaches the heap profiler to this run.
	Profile bool
	// PretenureCutoff overrides the old% cutoff (default 80).
	PretenureCutoff float64
	// Sanitize wraps the collector with the heap-integrity sanitizer
	// (internal/sanitize): every invariant pass runs after every
	// collection and a violation panics. Results are byte-identical to an
	// unsanitized run; only wall-clock time changes.
	Sanitize bool
	// Trace attaches a telemetry recorder (internal/trace) to this run:
	// phase spans, pause histograms, and per-site counters, exposed as
	// RunResult.Trace. Tracing charges nothing to the meter, so a traced
	// run measures exactly the same simulated times as an untraced one.
	Trace bool
	// TraceHeap additionally samples per-space occupancy (live and
	// committed words for every space) at the end of each collection,
	// emitted as gated heap records in the trace stream. Implies nothing
	// without Trace; sampling is guarded so untraced runs allocate nothing.
	TraceHeap bool
	// Adapt attaches the online pretenuring advisor (internal/adapt, §9)
	// to a generational run: per-site survival statistics accumulate
	// on-line and sites are promoted to (and demoted from) pretenured
	// allocation mid-run. Unlike tracing, the advisor charges its probe,
	// sample, and decision work to the meter's Adapt component. Requires a
	// generational kind; combining Adapt with KindSemispace is an error.
	Adapt bool
	// AdaptNoDemote disables the advisor's mistrain demotion (ablation:
	// the phase-shift experiment runs with and without it).
	AdaptNoDemote bool
	// AdaptWarm, when non-nil, seeds the advisor from a prior run's stored
	// profile before the first allocation (§9 warm start).
	AdaptWarm *adapt.RunProfile
	// TrainScale, when nonzero, derives the offline pretenuring policy
	// from a calibration at this scale instead of Scale — modelling the
	// paper's train-on-one-input, measure-on-another methodology. It only
	// affects kinds that consult the offline policy; the memory budget
	// still calibrates at Scale.
	TrainScale workload.Scale
	// Threads runs the workload over this many simulated mutator threads
	// (a round-robin scheduler in the workload layer; the server family
	// serves request r on thread r mod Threads). 0 or 1 is the
	// single-thread run, byte-identical to pre-thread builds. Calibration
	// always runs single-threaded: the live-set bound and site profile
	// are schedule-independent.
	Threads int
	// GCWorkers enables the deterministic parallel copying phases with
	// this many simulated workers (see core.GenConfig.Workers): identical
	// heap images at every W, pause wall time shrunk to the critical
	// path. 0 or 1 is the serial collector.
	GCWorkers int
	// DeferMajor runs over-threshold major collections as their own pause
	// at the next GC trigger instead of inside the minor that crossed the
	// threshold (see core.GenConfig.DeferMajor). Same collections, moved
	// pause boundaries; bounds the worst pause a latency window absorbs.
	DeferMajor bool
	// OldCollector selects the tenured-generation algorithm for
	// generational kinds: OldCopy (the zero value, the paper's copying
	// old generation), OldMarkSweep, or OldMarkCompact. Client results
	// are byte-identical across all three — only GC cost, pause shape,
	// and heap footprint move. Combining it with KindSemispace is an
	// error: the semispace baseline has no old generation.
	OldCollector core.OldCollector
}

// Label names the run for trace output and progress lines.
func (c RunConfig) Label() string {
	kind := c.Kind.String()
	if c.Adapt {
		kind += "+adapt"
	}
	s := fmt.Sprintf("%s/%s", c.Workload, kind)
	if c.OldCollector != core.OldCopy {
		s += " old=" + c.OldCollector.String()
	}
	if c.K > 0 {
		s += fmt.Sprintf(" k=%g", c.K)
	}
	if c.Threads > 1 {
		s += fmt.Sprintf(" t=%d", c.Threads)
	}
	if c.GCWorkers > 1 {
		s += fmt.Sprintf(" w=%d", c.GCWorkers)
	}
	if c.DeferMajor {
		s += " defer"
	}
	return s
}

// RunResult carries everything the tables need from one run.
type RunResult struct {
	Config   RunConfig
	Check    uint64
	Times    costmodel.Breakdown
	Stats    core.GCStats
	Updates  uint64 // barriered pointer updates (Table 2)
	MaxDepth int
	Profiler *prof.Profiler  // non-nil when Config.Profile
	Trace    *trace.Recorder // non-nil when Config.Trace; sealed by Finish
	Policy   *core.PretenurePolicy
	// Adapt is the advisor's frozen end-of-run state (non-nil when
	// Config.Adapt): decisions in emission order and per-site statistics.
	Adapt *adapt.Snapshot
	// AdaptProfile is the advisor's state packaged for the cross-run
	// profile store (non-nil when Config.Adapt).
	AdaptProfile *adapt.RunProfile
}

// Total returns total pseudo-seconds.
func (r *RunResult) Total() float64 { return r.Times.Total().Seconds() }

// GC returns collector pseudo-seconds.
func (r *RunResult) GC() float64 { return r.Times.GC().Seconds() }

// Client returns mutator pseudo-seconds.
func (r *RunResult) Client() float64 { return r.Times.Client.Seconds() }

// DefaultPretenureCutoff is the paper's old% cutoff for selecting
// pretenured sites (§6).
const DefaultPretenureCutoff = 80

// calibration caches per-workload measurements that experiments share.
type calibration struct {
	maxLiveWords uint64
	policy       *core.PretenurePolicy
	profiler     *prof.Profiler
}

// calEntry is one singleflight slot in the calibration cache: the first
// goroutine to claim a key runs the calibration inside the entry's Once
// while later arrivals block on it, so the same workload never calibrates
// twice, and distinct workloads calibrate concurrently.
type calEntry struct {
	once sync.Once
	cal  *calibration
	err  error
}

var (
	calMu    sync.Mutex
	calCache = map[string]*calEntry{}
)

// calKey keys the calibration cache. The scale is canonicalized first
// (Scale documents zero Depth as meaning 1.0) so equal scales never
// calibrate twice, and the cutoff participates because the derived policy
// depends on it.
func calKey(name string, s workload.Scale, cutoffPct float64) string {
	s = s.Canon()
	return fmt.Sprintf("%s/%g/%g/%g", name, s.Repeat, s.Depth, cutoffPct)
}

// Calibrate measures a workload's maximum live data and heap profile with
// an instrumented, generously-budgeted generational run, and derives the
// pretenuring policy using the given old% cutoff (0 means the paper's
// default, 80). Results are cached per (workload, canonical scale,
// cutoff) with per-key singleflight.
func Calibrate(name string, scale workload.Scale, cutoffPct float64) (*calibration, error) {
	if cutoffPct == 0 {
		cutoffPct = DefaultPretenureCutoff
	}
	key := calKey(name, scale, cutoffPct)
	calMu.Lock()
	e, ok := calCache[key]
	if !ok {
		e = &calEntry{}
		calCache[key] = e
	}
	calMu.Unlock()
	e.once.Do(func() { e.cal, e.err = calibrate(name, scale, cutoffPct) })
	return e.cal, e.err
}

// calibrate performs the two calibration passes for Calibrate.
func calibrate(name string, scale workload.Scale, cutoffPct float64) (*calibration, error) {
	w, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	// Pass 1: rough live estimate with a generous budget (major
	// collections are rare, so the high-water mark may be loose). The
	// profile for pretenuring comes from this pass.
	runPass := func(budget uint64, profiler *prof.Profiler) *core.Generational {
		table := rt.NewTraceTable()
		meter := costmodel.NewMeter()
		stack := rt.NewStack(table, meter)
		var hook core.Profiler
		if profiler != nil {
			hook = profiler
		}
		// Small nursery: frequent live-set samples for a tight estimate.
		col := core.NewGenerational(stack, meter, hook, core.GenConfig{
			BudgetWords:  budget,
			NurseryWords: 4 * 1024,
		})
		m := workload.NewMutator(col, stack, table, meter)
		w.Run(m, scale)
		col.Collect(true) // final major: exact live floor
		return col
	}
	profiler := prof.New(w.Sites())
	rough := runPass(1<<24, profiler)
	profiler.Finalize()
	// Pass 2: a tight budget (a few multiples of the rough maximum)
	// forces frequent major collections, sampling the true live-set peak
	// closely. Max live only moves up, so the rough value is the floor.
	tightBudget := 6 * rough.Stats().MaxLiveBytes / mem.WordSize
	if tightBudget < 64*1024 {
		tightBudget = 64 * 1024
	}
	tight := runPass(tightBudget, nil)
	maxLive := max(rough.Stats().MaxLiveBytes, tight.Stats().MaxLiveBytes)

	policy := profiler.Policy(cutoffPct, 32)
	// Attach the §7.2 manual-dataflow flags to the policy sites.
	onlyOld := map[obj.SiteID]bool{}
	for _, s := range w.OnlyOldSites() {
		onlyOld[s] = true
	}
	sites := map[obj.SiteID]core.PretenureDecision{}
	for _, id := range policy.Sites() {
		sites[id] = core.PretenureDecision{OnlyOldRefs: onlyOld[id]}
	}
	c := &calibration{
		maxLiveWords: maxLive / mem.WordSize,
		policy:       core.NewPretenurePolicy(sites),
		profiler:     profiler,
	}
	if c.maxLiveWords < 256 {
		c.maxLiveWords = 256
	}
	return c, nil
}

// ClearCalibrationCache drops cached calibrations (tests). It must not
// run concurrently with Run or Calibrate.
func ClearCalibrationCache() {
	calMu.Lock()
	defer calMu.Unlock()
	calCache = map[string]*calEntry{}
}

// Run executes one experiment.
func Run(cfg RunConfig) (*RunResult, error) {
	w, err := workload.Get(cfg.Workload)
	if err != nil {
		return nil, err
	}
	cal, err := Calibrate(cfg.Workload, cfg.Scale, cfg.PretenureCutoff)
	if err != nil {
		return nil, err
	}
	// The offline policy normally comes from the same calibration as the
	// budget; TrainScale splits them so experiments can train the policy
	// on a different input than they measure (§6's methodology, and the
	// handicap the online advisor is compared against).
	polCal := cal
	if cfg.TrainScale != (workload.Scale{}) {
		polCal, err = Calibrate(cfg.Workload, cfg.TrainScale, cfg.PretenureCutoff)
		if err != nil {
			return nil, err
		}
	}

	// The paper's budget: k · Min, Min = 2 · max live.
	budget := uint64(1) << 24 // unconstrained default
	if cfg.K > 0 {
		budget = uint64(cfg.K * 2 * float64(cal.maxLiveWords))
	}
	markerN := cfg.MarkerN
	if markerN == 0 {
		markerN = 25
	}

	table := rt.NewTraceTable()
	meter := costmodel.NewMeter()
	stack := rt.NewStack(table, meter)
	var profiler *prof.Profiler
	var profHook core.Profiler
	if cfg.Profile || cfg.Trace || cfg.Adapt {
		// Traced runs borrow the profiler's shadow tables for per-site
		// death accounting; the profiler charges nothing to the meter, so
		// attaching it does not perturb the simulated measurements.
		// Adaptive runs need it too: its lifetime event stream is the
		// advisor's stat feed.
		profiler = prof.New(w.Sites())
		profHook = profiler
	}
	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.NewRecorder(meter)
		rec.SetSiteNames(w.Sites())
		if cfg.TraceHeap {
			rec.EnableHeapSampling()
		}
		stack.SetTracer(rec)
		profiler.SetDeathSink(func(site obj.SiteID, bytes uint64) {
			rec.DeadSite(site, bytes/mem.WordSize)
		})
	}
	var engine *adapt.Engine
	if cfg.Adapt {
		if cfg.Kind == KindSemispace {
			return nil, fmt.Errorf("harness: %s: the adaptive advisor requires a generational collector", cfg.Label())
		}
		cutoff := cfg.PretenureCutoff
		if cutoff == 0 {
			cutoff = DefaultPretenureCutoff
		}
		engine = adapt.New(meter, rec, adapt.Params{
			PromotePPM:      uint64(cutoff * 10_000), // old% cutoff → ppm
			DisableDemotion: cfg.AdaptNoDemote,
		})
		profiler.SetObserver(engine)
		engine.WarmStart(cfg.AdaptWarm)
	}

	var col core.Collector
	var updates func() uint64
	var attachThreads func(*rt.ThreadSet)
	switch cfg.Kind {
	case KindSemispace:
		if cfg.OldCollector != core.OldCopy {
			return nil, fmt.Errorf("harness: %s: OldCollector %s requires a generational collector", cfg.Label(), cfg.OldCollector)
		}
		s := core.NewSemispace(stack, meter, profHook, core.SemispaceConfig{
			BudgetWords: budget,
			Workers:     cfg.GCWorkers,
			Trace:       rec,
		})
		col = s
		attachThreads = s.AttachThreads
		updates = func() uint64 { return 0 }
	default:
		gcfg := core.GenConfig{
			BudgetWords:  budget,
			NurseryWords: nurseryFor(budget),
			Workers:      cfg.GCWorkers,
			DeferMajor:   cfg.DeferMajor,
			OldCollector: cfg.OldCollector,
			Trace:        rec,
		}
		if cfg.Profile && cfg.K == 0 {
			// Unconstrained profiling runs (Figure 2) use a small nursery
			// so object lifetimes are sampled frequently.
			gcfg.NurseryWords = 4 * 1024
		}
		if engine != nil {
			gcfg.Advisor = engine
		}
		switch cfg.Kind {
		case KindGenerational:
		case KindGenMarkers:
			gcfg.MarkerN = markerN
		case KindGenMarkersPretenure:
			gcfg.MarkerN = markerN
			gcfg.Pretenure = polCal.policy
		case KindGenMarkersPretenureElide:
			gcfg.MarkerN = markerN
			gcfg.Pretenure = polCal.policy
			gcfg.ScanElision = true
		case KindGenCards:
			gcfg.UseCardTable = true
		case KindGenPretenure:
			gcfg.Pretenure = polCal.policy
		case KindGenAging:
			gcfg.AgingMinors = 3
		case KindGenAgingPretenure:
			gcfg.AgingMinors = 3
			gcfg.Pretenure = polCal.policy
		default:
			return nil, fmt.Errorf("harness: unknown collector kind %v", cfg.Kind)
		}
		g := core.NewGenerational(stack, meter, profHook, gcfg)
		col = g
		attachThreads = g.AttachThreads
		updates = g.PointerUpdates
	}
	// The thread set is created — and the collector told about it — only
	// for T > 1, so single-thread runs execute the exact pre-thread code
	// paths (byte-identical traces).
	var threads *rt.ThreadSet
	if cfg.Threads > 1 {
		threads = rt.NewThreadSet(stack, meter)
		attachThreads(threads)
		for i := 1; i < cfg.Threads; i++ {
			threads.Spawn()
		}
	}
	if cfg.Sanitize {
		col = sanitize.Wrap(col, sanitize.Options{})
	}

	m := workload.NewMutator(col, stack, table, meter)
	m.Threads = threads
	// Traced runs record request spans: workloads that bracket work with
	// Mutator.Request (the server family) feed the internal/slo latency
	// report. Untraced runs leave Rec nil and Request degrades to a plain
	// call, so the simulated times are identical either way.
	m.Rec = rec
	res := w.Run(m, cfg.Scale)
	if profiler != nil {
		profiler.Finalize()
	}
	var adaptSnap *adapt.Snapshot
	var adaptProfile *adapt.RunProfile
	if engine != nil {
		// Seal after Finalize so the profiler's end-of-run deaths fold
		// into the stored survival state without triggering decisions.
		engine.Seal()
		adaptSnap = engine.Snapshot()
		adaptProfile = engine.StoreProfile(cfg.Label(), cfg.Workload, w.Sites())
	}
	if rec != nil {
		rec.Finish()
		if err := rec.VerifyReconciled(); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", cfg.Label(), err)
		}
	}
	resultProf := profiler
	if !cfg.Profile {
		resultProf = nil // trace-only and adapt-only runs keep the profiler internal
	}
	return &RunResult{
		Config:       cfg,
		Check:        res.Check,
		Times:        meter.Snapshot(),
		Stats:        *col.Stats(),
		Updates:      updates(),
		MaxDepth:     stack.MaxDepth(),
		Profiler:     resultProf,
		Trace:        rec,
		Policy:       polCal.policy,
		Adapt:        adaptSnap,
		AdaptProfile: adaptProfile,
	}, nil
}

// nurseryFor sizes the nursery: the paper's 512KB cache-sized nursery,
// shrunk when the total budget is small ("for benchmarking reasons, the
// nursery is sometimes made significantly smaller").
func nurseryFor(budgetWords uint64) uint64 {
	n := uint64(64 * 1024) // 512KB
	if n > budgetWords/4 {
		n = budgetWords / 4
	}
	if n < 1024 {
		n = 1024
	}
	return n
}
