package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tilgc/internal/slo"
	"tilgc/internal/trace"
	"tilgc/internal/workload"
)

// sloGoldenConfig is the fixed request-serving run whose SLO report is
// pinned: the steady server mix, traced with heap sampling, tight enough
// to collect while serving.
func sloGoldenConfig() RunConfig {
	return RunConfig{
		Workload:  "ServerSteady",
		Scale:     workload.Scale{Repeat: 0.004},
		Kind:      KindGenerational,
		K:         2,
		Trace:     true,
		TraceHeap: true,
	}
}

const sloGoldenPath = "testdata/slo_golden.jsonl"

// TestSLOGolden pins the exact JSONL SLO report of one small fixed
// server run: every percentile, every MMU/AMU sweep point, the worst
// windows, and the request attribution. Anything that moves a pause or a
// request boundary — collector changes, cost-model changes, workload
// schedule changes — fails this test loudly. Refresh intentionally with:
//
//	go test ./internal/harness -run TestSLOGolden -update-golden
func TestSLOGolden(t *testing.T) {
	cfg := sloGoldenConfig()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := trace.NewFile(r.Trace.Data(cfg.Label()))
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := slo.ComputeFile(f, slo.DefaultWindows)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(sloGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sloGoldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", sloGoldenPath, buf.Len())
		return
	}
	want, err := os.ReadFile(sloGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SLO report differs from %s — latency accounting changed.\n"+
			"If intentional, refresh with: go test ./internal/harness -run TestSLOGolden -update-golden\n%s",
			sloGoldenPath, diffHint(want, buf.Bytes()))
	}

	// The fixture must exercise every report section: collections happened,
	// requests were recorded, and at least one request absorbed a pause.
	rr := rep.Runs[0]
	if rr.Pauses.Count == 0 {
		t.Fatal("golden server run performed no collections; the fixture is vacuous")
	}
	if rr.Requests == nil || rr.Requests.Count == 0 {
		t.Fatal("golden server run recorded no request spans")
	}
	if rr.Requests.GCHit == 0 {
		t.Error("no request absorbed a pause; the attribution fixture is vacuous")
	}
}

// TestSummaryPercentilesGolden pins the exact percentile line WriteSummary
// prints for the golden trace. Nearest-rank over the 3 recorded pauses:
// rank ceil(0.5*3) = 2 for p50 and rank 3 for everything above.
func TestSummaryPercentilesGolden(t *testing.T) {
	in, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("%v (run TestTraceGolden with -update-golden to create it)", err)
	}
	defer in.Close()
	f, err := trace.ReadJSONL(in)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Runs[0].Summarize()
	pc := s.PauseCycles()
	if len(pc) != 3 {
		t.Fatalf("golden trace has %d pauses, the pinned percentiles assume 3", len(pc))
	}
	checks := []struct {
		ppm  uint64
		want uint64
	}{
		{500000, 9604}, {900000, 13255}, {990000, 13255}, {999000, 13255},
	}
	for _, c := range checks {
		got, ok := trace.Percentile(pc, c.ppm)
		if !ok || got != c.want {
			t.Errorf("Percentile(%d ppm) = %d, %v; want %d", c.ppm, got, ok, c.want)
		}
	}
	var buf bytes.Buffer
	if err := f.WriteSummary(&buf, 3); err != nil {
		t.Fatal(err)
	}
	const wantLine = "pause percentiles (cycles, exact): p50=9604 p90=13255 p99=13255 p99.9=13255 max=13255"
	if !strings.Contains(buf.String(), wantLine) {
		t.Errorf("summary missing exact percentile line %q in:\n%s", wantLine, buf.String())
	}
	if !strings.Contains(buf.String(), "pause histogram (cycles, log2 buckets):") {
		t.Error("summary lost the pause histogram line")
	}
}
