package adapt

import (
	"bytes"
	"strings"
	"testing"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
)

func testStore() *Store {
	return &Store{Profiles: []*RunProfile{
		{Label: "PhaseShift/generational+adapt", Workload: "PhaseShift", Sites: []SiteSeed{
			{Site: 1200, Name: "node", SurvWords: 900, DeadWords: 100,
				AgeBytes: 4096, AgeSamples: 12, Pretenured: true},
			{Site: 1201, SurvWords: 10, DeadWords: 990, PretPlaced: 64, PretDied: 32},
		}},
		{Label: "Simple/generational+adapt", Workload: "Simple", Sites: []SiteSeed{
			{Site: 1100, Name: "row", SurvWords: 5000, DeadWords: 20, Pretenured: true},
		}},
	}}
}

func TestStoreRoundTripByteIdentical(t *testing.T) {
	s := testStore()
	var a bytes.Buffer
	if err := s.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	read, err := ReadJSONL(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := read.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("read→write not byte-identical:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

func TestStoreSchemaMismatchError(t *testing.T) {
	in := `{"t":"header","schema":99,"profiles":0}` + "\n"
	_, err := ReadJSONL(strings.NewReader(in))
	if err == nil {
		t.Fatal("schema-99 store accepted")
	}
	if !strings.Contains(err.Error(), "schema 99") || !strings.Contains(err.Error(), "schema 1") {
		t.Fatalf("unhelpful schema error: %v", err)
	}
}

func TestStoreRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":        `{"t":"profile","profile":0,"label":"x","workload":"y","sites":0}`,
		"unknown type":     "{\"t\":\"header\",\"schema\":1,\"profiles\":0}\n{\"t\":\"bogus\"}",
		"unknown field":    "{\"t\":\"header\",\"schema\":1,\"profiles\":0,\"extra\":1}",
		"profile disorder": "{\"t\":\"header\",\"schema\":1,\"profiles\":2}\n{\"t\":\"profile\",\"profile\":1,\"label\":\"x\",\"workload\":\"y\",\"sites\":0}",
		"orphan site":      "{\"t\":\"header\",\"schema\":1,\"profiles\":0}\n{\"t\":\"site\",\"profile\":0,\"site\":1,\"surv_words\":0,\"dead_words\":0,\"age_bytes\":0,\"age_samples\":0,\"pret_placed\":0,\"pret_died\":0,\"pretenured\":false}",
		"empty":            "",
		"site disorder": "{\"t\":\"header\",\"schema\":1,\"profiles\":1}\n" +
			"{\"t\":\"profile\",\"profile\":0,\"label\":\"x\",\"workload\":\"y\",\"sites\":2}\n" +
			"{\"t\":\"site\",\"profile\":0,\"site\":5,\"surv_words\":0,\"dead_words\":0,\"age_bytes\":0,\"age_samples\":0,\"pret_placed\":0,\"pret_died\":0,\"pretenured\":false}\n" +
			"{\"t\":\"site\",\"profile\":0,\"site\":3,\"surv_words\":0,\"dead_words\":0,\"age_bytes\":0,\"age_samples\":0,\"pret_placed\":0,\"pret_died\":0,\"pretenured\":false}",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestStoreFindLastWins(t *testing.T) {
	s := testStore()
	s.Profiles = append(s.Profiles, &RunProfile{Label: "newer", Workload: "PhaseShift"})
	if got := s.Find("PhaseShift"); got == nil || got.Label != "newer" {
		t.Fatalf("Find = %+v, want the newer profile", got)
	}
	if s.Find("nope") != nil {
		t.Fatal("Find invented a profile")
	}
	var nilStore *Store
	if nilStore.Find("PhaseShift") != nil {
		t.Fatal("nil store found a profile")
	}
}

func TestFromProfile(t *testing.T) {
	p := prof.New(map[obj.SiteID]string{7: "keeper", 9: "churner"})
	// Site 7: 10 four-word records, 9 survive their first collection.
	for i := 0; i < 10; i++ {
		a := mem.MakeAddr(1, uint64(1+i*8))
		p.OnAlloc(a, 7, obj.Record, 4, false)
		if i != 0 {
			p.OnMove(a, mem.MakeAddr(2, uint64(1+i*8)))
		}
	}
	p.OnGCEnd()
	// Site 9: 10 records, none survive.
	for i := 0; i < 10; i++ {
		p.OnAlloc(mem.MakeAddr(3, uint64(1+i*8)), 9, obj.Record, 4, false)
	}
	p.OnSpaceCondemned(1)
	p.OnSpaceCondemned(3)
	p.OnGCEnd()
	p.Finalize()

	rp := FromProfile(p, "train", "X", 80, 5)
	if rp.Label != "train" || rp.Workload != "X" {
		t.Fatalf("metadata: %+v", rp)
	}
	if len(rp.Sites) != 2 {
		t.Fatalf("sites = %+v", rp.Sites)
	}
	if rp.Sites[0].Site != 7 || rp.Sites[1].Site != 9 {
		t.Fatalf("sites not ascending: %+v", rp.Sites)
	}
	keeper, churner := rp.Sites[0], rp.Sites[1]
	if !keeper.Pretenured || keeper.SurvWords != 9*4 || keeper.DeadWords != 1*4 {
		t.Fatalf("keeper seed: %+v", keeper)
	}
	if churner.Pretenured || churner.SurvWords != 0 || churner.DeadWords != 10*4 {
		t.Fatalf("churner seed: %+v", churner)
	}

	// The conversion must seed an engine that pretenures the keeper from
	// the first allocation.
	e := newTestEngine(Params{})
	e.WarmStart(rp)
	if !e.ShouldPretenure(7) || e.ShouldPretenure(9) {
		t.Fatal("warm start from converted profile wrong")
	}
}
