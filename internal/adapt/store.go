package adapt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"tilgc/internal/mem"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
)

// Cross-run profile store: schema-versioned JSONL, one record per line,
// read→write byte-identical like the trace sink. Record kinds, in stream
// order:
//
//	{"t":"header","schema":1,"profiles":N}
//	{"t":"profile","profile":i,"label":..,"workload":..,"sites":K}   per profile, then:
//	{"t":"site","profile":i,"site":..,"name":..,"surv_words":..,...} sorted by site id
//
// All quantities are integers (words/bytes/counts) — no floats, no
// wall-clock values, no map-ordered output — so a store written by one
// sweep byte-compares equal at any parallelism and across machines.

// StoreSchemaVersion is the profile-store format version. Bump when the
// record shapes change incompatibly; readers reject other versions
// outright rather than decoding garbage.
const StoreSchemaVersion = 1

// SiteSeed is one site's stored statistics: the engine's decayed survival
// state plus the end-of-run pretenuring verdict.
type SiteSeed struct {
	Site       obj.SiteID
	Name       string
	SurvWords  uint64
	DeadWords  uint64
	AgeBytes   uint64
	AgeSamples uint64
	PretPlaced uint64
	PretDied   uint64
	Pretenured bool
}

// RunProfile is one run's stored advisor state, keyed by workload name for
// warm-start lookup. Sites are sorted by id.
type RunProfile struct {
	Label    string
	Workload string
	Sites    []SiteSeed
}

// Store is an ordered collection of run profiles.
type Store struct {
	Profiles []*RunProfile
}

// Find returns the last profile stored for the workload, or nil. Last
// wins so appending a fresh sweep to an existing store supersedes it.
func (s *Store) Find(workload string) *RunProfile {
	if s == nil {
		return nil
	}
	for i := len(s.Profiles) - 1; i >= 0; i-- {
		if s.Profiles[i].Workload == workload {
			return s.Profiles[i]
		}
	}
	return nil
}

type storeHeader struct {
	T        string `json:"t"`
	Schema   int    `json:"schema"`
	Profiles int    `json:"profiles"`
}

type storeProfile struct {
	T        string `json:"t"`
	Profile  int    `json:"profile"`
	Label    string `json:"label"`
	Workload string `json:"workload"`
	Sites    int    `json:"sites"`
}

type storeSite struct {
	T          string `json:"t"`
	Profile    int    `json:"profile"`
	Site       uint16 `json:"site"`
	Name       string `json:"name,omitempty"`
	SurvWords  uint64 `json:"surv_words"`
	DeadWords  uint64 `json:"dead_words"`
	AgeBytes   uint64 `json:"age_bytes"`
	AgeSamples uint64 `json:"age_samples"`
	PretPlaced uint64 `json:"pret_placed"`
	PretDied   uint64 `json:"pret_died"`
	Pretenured bool   `json:"pretenured"`
}

// WriteJSONL writes the store as schema-versioned JSONL.
func (s *Store) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(storeHeader{T: "header", Schema: StoreSchemaVersion, Profiles: len(s.Profiles)}); err != nil {
		return err
	}
	for i, p := range s.Profiles {
		if err := enc.Encode(storeProfile{T: "profile", Profile: i,
			Label: p.Label, Workload: p.Workload, Sites: len(p.Sites)}); err != nil {
			return err
		}
		for _, seed := range p.Sites {
			if err := enc.Encode(storeSite{T: "site", Profile: i,
				Site: uint16(seed.Site), Name: seed.Name,
				SurvWords: seed.SurvWords, DeadWords: seed.DeadWords,
				AgeBytes: seed.AgeBytes, AgeSamples: seed.AgeSamples,
				PretPlaced: seed.PretPlaced, PretDied: seed.PretDied,
				Pretenured: seed.Pretenured}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a profile store, rejecting unknown record types,
// unknown fields, out-of-order profile records, and — before anything
// else is decoded — schema versions this build does not understand.
func ReadJSONL(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var s *Store
	var cur *RunProfile
	lineNo := 0
	strict := func(line []byte, into any) error {
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		return dec.Decode(into)
	}
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			T       string `json:"t"`
			Profile int    `json:"profile"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("adapt: store line %d: %v", lineNo, err)
		}
		if probe.T == "header" {
			if s != nil {
				return nil, fmt.Errorf("adapt: store line %d: duplicate header", lineNo)
			}
			var h storeHeader
			if err := strict(line, &h); err != nil {
				return nil, fmt.Errorf("adapt: store line %d: %v", lineNo, err)
			}
			if h.Schema != StoreSchemaVersion {
				return nil, fmt.Errorf("adapt: store line %d: schema %d, this build reads schema %d",
					lineNo, h.Schema, StoreSchemaVersion)
			}
			s = &Store{}
			continue
		}
		if s == nil {
			return nil, fmt.Errorf("adapt: store line %d: %q record before header", lineNo, probe.T)
		}
		switch probe.T {
		case "profile":
			var rp storeProfile
			if err := strict(line, &rp); err != nil {
				return nil, fmt.Errorf("adapt: store line %d: %v", lineNo, err)
			}
			if rp.Profile != len(s.Profiles) {
				return nil, fmt.Errorf("adapt: store line %d: profile %d out of order (expected %d)",
					lineNo, rp.Profile, len(s.Profiles))
			}
			cur = &RunProfile{Label: rp.Label, Workload: rp.Workload}
			s.Profiles = append(s.Profiles, cur)
		case "site":
			if cur == nil {
				return nil, fmt.Errorf("adapt: store line %d: site record before any profile record", lineNo)
			}
			if probe.Profile != len(s.Profiles)-1 {
				return nil, fmt.Errorf("adapt: store line %d: site record for profile %d inside profile %d",
					lineNo, probe.Profile, len(s.Profiles)-1)
			}
			var rs storeSite
			if err := strict(line, &rs); err != nil {
				return nil, fmt.Errorf("adapt: store line %d: %v", lineNo, err)
			}
			if n := len(cur.Sites); n > 0 && cur.Sites[n-1].Site >= obj.SiteID(rs.Site) {
				return nil, fmt.Errorf("adapt: store line %d: site %d out of order", lineNo, rs.Site)
			}
			cur.Sites = append(cur.Sites, SiteSeed{
				Site: obj.SiteID(rs.Site), Name: rs.Name,
				SurvWords: rs.SurvWords, DeadWords: rs.DeadWords,
				AgeBytes: rs.AgeBytes, AgeSamples: rs.AgeSamples,
				PretPlaced: rs.PretPlaced, PretDied: rs.PretDied,
				Pretenured: rs.Pretenured,
			})
		default:
			return nil, fmt.Errorf("adapt: store line %d: unknown record type %q", lineNo, probe.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("adapt: empty store (no header record)")
	}
	return s, nil
}

// FromProfile converts an offline heap profile (internal/prof) into a
// storable run profile, so existing train-run profiles can warm-start the
// advisor. Word counts are reconstructed from per-site averages (the
// offline profiler tracks object counts, not per-fate words); the
// pretenured verdict applies the paper's rule — old% at least cutoffPct
// with at least minObjects allocations. Integer arithmetic only, so the
// conversion is deterministic.
func FromProfile(p *prof.Profiler, label, workload string, cutoffPct float64, minObjects uint64) *RunProfile {
	rp := &RunProfile{Label: label, Workload: workload}
	sites := p.Sites()
	// p.Sites sorts by descending allocation; the store wants ascending id.
	byID := make([]*prof.SiteStats, len(sites))
	copy(byID, sites)
	for i := 1; i < len(byID); i++ {
		for j := i; j > 0 && byID[j-1].Site > byID[j].Site; j-- {
			byID[j-1], byID[j] = byID[j], byID[j-1]
		}
	}
	for _, s := range byID {
		if s.AllocCount == 0 {
			continue // death-only site: no survival evidence to seed
		}
		avgWords := s.AllocBytes / mem.WordSize / s.AllocCount
		if avgWords == 0 {
			avgWords = 1
		}
		seed := SiteSeed{
			Site:      s.Site,
			Name:      s.Name,
			SurvWords: s.SurvivedFirst * avgWords,
			DeadWords: (s.AllocCount - s.SurvivedFirst) * avgWords,
		}
		seed.Pretenured = s.AllocCount >= minObjects && s.OldPct() >= cutoffPct
		rp.Sites = append(rp.Sites, seed)
	}
	return rp
}
