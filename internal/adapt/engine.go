// Package adapt implements online adaptive pretenuring (§9): an advisor
// that runs inside a single simulation and makes the §6 pretenuring
// decision — allocate this site directly into the tenured generation —
// from survival statistics gathered on-line, instead of from a separate
// offline training run.
//
// The engine consumes the profiler's lifetime event stream (prof.Observer):
// per-site words surviving their first collection versus dying young feed a
// decayed (EWMA-like) survival estimate; once a site's estimate crosses the
// promotion cutoff with sufficient sample mass, the advisor answers true on
// the collector's allocation-path probe (core.SiteAdvisor) and the site is
// pretenured from then on. Crucially, the decision is reversible: a
// promoted site's tenured garbage — words placed directly in the old
// generation that then die there — is tracked per promotion episode, and a
// site whose garbage fraction crosses the demotion threshold is demoted,
// its survival statistics reset (the evidence that justified promotion is
// exactly what the phase shift invalidated) and a cooldown imposed so it
// must re-earn promotion. This is the feedback loop NG2C-style systems use
// to survive phase-shifted workloads.
//
// Everything is deterministic: decisions are made only at collection
// boundaries, over sites visited in sorted order, with pure integer
// (parts-per-million) arithmetic; timestamps come from the cost meter. The
// engine charges its own overhead — allocation-path probes, per-event
// samples, per-site decision folds — to the meter's Adapt component, so
// adaptive-vs-offline comparisons account for the advisor's cost.
package adapt

import (
	"sort"

	"tilgc/internal/costmodel"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
	"tilgc/internal/trace"
)

// Params tunes the decision engine. The zero value selects defaults
// matching the paper's offline rule (80% survival cutoff).
type Params struct {
	// PromotePPM is the survival-fraction estimate, in parts per million,
	// at or above which a site is promoted. Default 800000 (the paper's
	// 80% old cutoff).
	PromotePPM uint64
	// DemotePPM is the tenured-garbage fraction (pretenured words that
	// died in the old generation / pretenured words placed, this
	// promotion episode) at or above which a site is demoted. Default
	// 500000: demote once half the words the decision placed are garbage.
	DemotePPM uint64
	// MinSampleWords is the decayed sample mass (survived + died-young
	// words) required before the survival estimate is trusted. Default 256.
	MinSampleWords uint64
	// MinOldWords is the pretenured placement mass required before the
	// garbage fraction is judged. Default 256.
	MinOldWords uint64
	// DecayDen is the per-epoch decay denominator: at each collection a
	// touched site's accumulators lose a 1/DecayDen share before the
	// epoch's deltas are added, an integer EWMA. Default 8.
	DecayDen uint64
	// CooldownEpochs is how many collections a demoted site must wait
	// before it may be promoted again (hysteresis). Default 8.
	CooldownEpochs uint64
	// DisableDemotion turns the mistrain correction off (for ablation:
	// the phase-shift experiment runs with and without it).
	DisableDemotion bool
}

func (p *Params) setDefaults() {
	if p.PromotePPM == 0 {
		p.PromotePPM = 800_000
	}
	if p.DemotePPM == 0 {
		p.DemotePPM = 500_000
	}
	if p.MinSampleWords == 0 {
		p.MinSampleWords = 256
	}
	if p.MinOldWords == 0 {
		p.MinOldWords = 256
	}
	if p.DecayDen == 0 {
		p.DecayDen = 8
	}
	if p.CooldownEpochs == 0 {
		p.CooldownEpochs = 8
	}
}

// siteState is the engine's per-site record.
type siteState struct {
	site obj.SiteID

	// Decayed survival accumulators (words), the EWMA state. Only nursery
	// allocations feed them: survWords counts words surviving their first
	// collection, deadWords words dying young.
	survWords uint64
	deadWords uint64
	// Decayed tenure-age accumulators: bytes allocated between an
	// object's birth and its first survival, summed (ageBytes) over
	// ageSamples surviving objects.
	ageBytes   uint64
	ageSamples uint64

	// Raw deltas accumulated since the last collection boundary; folded
	// into the decayed state at fold().
	epochSurv uint64
	epochDead uint64
	epochAge  uint64
	epochAgeN uint64

	// Promotion-episode accounting: words placed directly into the old
	// generation and the subset observed dead there, both reset when a
	// new episode begins. oldDied additionally counts survived-then-died
	// words (lifetime, informational).
	pretPlaced uint64
	pretDied   uint64
	oldDied    uint64

	pretenured    bool
	cooldownUntil uint64 // epoch before which promotion is barred
	promotions    uint64
	demotions     uint64
	touched       bool
}

// Decision is one promotion/demotion/warm-start event, timestamped in the
// run's simulated cycles and its collection count.
type Decision struct {
	Epoch       uint64           // collections completed when decided (0 = warm start)
	Cycles      costmodel.Cycles // meter total at decision time
	Site        obj.SiteID
	Verb        string // trace.AdaptPromote | trace.AdaptDemote | trace.AdaptWarm
	SurvivalPPM uint64
	GarbagePPM  uint64
	SampleWords uint64
}

// Engine is the online advisor. It implements prof.Observer (the stat
// feed) and core.SiteAdvisor (the allocation-path probe). One engine
// serves one run; it is single-goroutine state like the meter it charges.
type Engine struct {
	params Params
	meter  *costmodel.Meter
	tr     *trace.Recorder // nil-safe, like every recorder call site

	sites   map[obj.SiteID]*siteState
	touched []obj.SiteID // sites with epoch deltas, deduped via touched flag

	epoch      uint64
	samples    uint64
	promotions uint64
	demotions  uint64
	decisions  []Decision
	sealed     bool
}

// New creates an engine charging meter's Adapt component and (optionally)
// emitting decisions and counters into tr.
func New(meter *costmodel.Meter, tr *trace.Recorder, params Params) *Engine {
	params.setDefaults()
	return &Engine{
		params: params,
		meter:  meter,
		tr:     tr,
		sites:  make(map[obj.SiteID]*siteState),
	}
}

func (e *Engine) state(site obj.SiteID) *siteState {
	st, ok := e.sites[site]
	if !ok {
		st = &siteState{site: site}
		e.sites[site] = st
	}
	return st
}

func (e *Engine) touch(st *siteState) {
	if !st.touched {
		st.touched = true
		e.touched = append(e.touched, st.site)
	}
}

func (e *Engine) sample() {
	e.meter.Charge(costmodel.Adapt, costmodel.AdaptSample)
	e.samples++
	e.tr.CountAdaptSamples(1)
}

// ShouldPretenure implements core.SiteAdvisor: the collector's per-
// allocation probe. The probe cost is charged here so the allocation path
// pays for the advisor even when the answer is no.
func (e *Engine) ShouldPretenure(site obj.SiteID) bool {
	e.meter.Charge(costmodel.Adapt, costmodel.AdaptProbe)
	st := e.sites[site]
	return st != nil && st.pretenured
}

// ObserveAlloc implements prof.Observer. Only pretenured placements are
// sampled: nursery allocations are judged by their collection fate
// (ObserveSurvive / ObserveDeath), which already covers every one of them.
func (e *Engine) ObserveAlloc(site obj.SiteID, words uint64, pretenured bool) {
	if e.sealed || !pretenured {
		return
	}
	e.sample()
	st := e.state(site)
	st.pretPlaced += words
	e.touch(st)
}

// ObserveSurvive implements prof.Observer: words of site survived their
// first collection, ageBytes of allocation after their birth.
func (e *Engine) ObserveSurvive(site obj.SiteID, words uint64, ageBytes uint64) {
	if e.sealed {
		return
	}
	e.sample()
	st := e.state(site)
	st.epochSurv += words
	st.epochAge += ageBytes
	st.epochAgeN++
	e.touch(st)
}

// ObserveDeath implements prof.Observer.
func (e *Engine) ObserveDeath(site obj.SiteID, words uint64, class prof.DeathClass) {
	if e.sealed {
		return
	}
	e.sample()
	st := e.state(site)
	switch class {
	case prof.DeathYoung:
		st.epochDead += words
	case prof.DeathPretenured:
		st.pretDied += words
		st.oldDied += words
	case prof.DeathOld:
		st.oldDied += words
	}
	e.touch(st)
}

// ObserveGCEnd implements prof.Observer: a collection boundary. All
// decisions happen here, over the epoch's touched sites in sorted order.
func (e *Engine) ObserveGCEnd() {
	if e.sealed {
		return
	}
	e.fold(true)
}

// fold absorbs the epoch's raw deltas into the decayed accumulators and
// (when decide is set) re-evaluates promotion and demotion for every
// touched site. Sites are visited in ascending id order so the decision
// sequence — and therefore every downstream trace and store byte — is
// independent of map iteration order.
func (e *Engine) fold(decide bool) {
	if decide {
		e.epoch++
	}
	if len(e.touched) == 0 {
		return
	}
	sort.Slice(e.touched, func(i, j int) bool { return e.touched[i] < e.touched[j] })
	for _, id := range e.touched {
		st := e.sites[id]
		st.touched = false
		e.meter.Charge(costmodel.Adapt, costmodel.AdaptEpochSite)

		st.survWords -= st.survWords / e.params.DecayDen
		st.deadWords -= st.deadWords / e.params.DecayDen
		st.ageBytes -= st.ageBytes / e.params.DecayDen
		st.ageSamples -= st.ageSamples / e.params.DecayDen
		st.survWords += st.epochSurv
		st.deadWords += st.epochDead
		st.ageBytes += st.epochAge
		st.ageSamples += st.epochAgeN
		st.epochSurv, st.epochDead, st.epochAge, st.epochAgeN = 0, 0, 0, 0

		if !decide {
			continue
		}
		if !st.pretenured {
			mass := st.survWords + st.deadWords
			if e.epoch > st.cooldownUntil && mass >= e.params.MinSampleWords {
				if ppm := st.survWords * 1_000_000 / mass; ppm >= e.params.PromotePPM {
					e.promote(st, ppm, mass)
				}
			}
		} else if !e.params.DisableDemotion && st.pretPlaced >= e.params.MinOldWords {
			if gppm := st.pretDied * 1_000_000 / st.pretPlaced; gppm >= e.params.DemotePPM {
				e.demote(st, gppm)
			}
		}
	}
	e.touched = e.touched[:0]
}

// promote begins a pretenuring episode for the site.
func (e *Engine) promote(st *siteState, survivalPPM, mass uint64) {
	st.pretenured = true
	st.pretPlaced, st.pretDied = 0, 0
	st.promotions++
	e.promotions++
	e.record(Decision{
		Epoch: e.epoch, Cycles: e.meter.Total(),
		Site: st.site, Verb: trace.AdaptPromote,
		SurvivalPPM: survivalPPM, SampleWords: mass,
	})
}

// demote ends a mistrained episode: the site goes back to nursery
// allocation, its survival evidence is discarded (the phase shift
// invalidated it), and promotion is barred for the cooldown.
func (e *Engine) demote(st *siteState, garbagePPM uint64) {
	st.pretenured = false
	st.survWords, st.deadWords = 0, 0
	st.ageBytes, st.ageSamples = 0, 0
	st.pretPlaced, st.pretDied = 0, 0
	st.cooldownUntil = e.epoch + e.params.CooldownEpochs
	st.demotions++
	e.demotions++
	e.record(Decision{
		Epoch: e.epoch, Cycles: e.meter.Total(),
		Site: st.site, Verb: trace.AdaptDemote,
		GarbagePPM: garbagePPM,
	})
}

func (e *Engine) record(d Decision) {
	e.decisions = append(e.decisions, d)
	e.tr.AdaptDecision(d.Site, d.Verb, d.SurvivalPPM, d.GarbagePPM, d.SampleWords)
}

// WarmStart seeds the engine from a prior run's stored profile, before the
// run begins: survival statistics are adopted as the decayed state, and
// sites that ended the prior run pretenured start this run pretenured,
// each recorded as a warm decision at epoch 0. The normal demotion
// machinery applies from the first collection, so a stale warm start
// self-corrects exactly like a mistrained promotion.
func (e *Engine) WarmStart(rp *RunProfile) {
	if rp == nil {
		return
	}
	for _, s := range rp.Sites {
		e.meter.Charge(costmodel.Adapt, costmodel.AdaptEpochSite)
		st := e.state(s.Site)
		st.survWords = s.SurvWords
		st.deadWords = s.DeadWords
		st.ageBytes = s.AgeBytes
		st.ageSamples = s.AgeSamples
		if s.Pretenured {
			st.pretenured = true
			st.promotions++
			e.promotions++
			mass := st.survWords + st.deadWords
			var ppm uint64
			if mass > 0 {
				ppm = st.survWords * 1_000_000 / mass
			}
			e.record(Decision{
				Epoch: 0, Cycles: e.meter.Total(),
				Site: st.site, Verb: trace.AdaptWarm,
				SurvivalPPM: ppm, SampleWords: mass,
			})
		}
	}
}

// Seal folds any tail-of-run deltas (the profiler's Finalize fires
// end-of-run deaths after the last collection) into the decayed state
// without making further decisions, and freezes the engine. Call once,
// after prof.Profiler.Finalize.
func (e *Engine) Seal() {
	if e.sealed {
		return
	}
	e.fold(false)
	e.sealed = true
}

// SiteState is the frozen per-site view exported by Snapshot.
type SiteState struct {
	Site       obj.SiteID
	Pretenured bool
	SurvWords  uint64
	DeadWords  uint64
	AgeBytes   uint64
	AgeSamples uint64
	PretPlaced uint64
	PretDied   uint64
	OldDied    uint64
	Promotions uint64
	Demotions  uint64
}

// SurvivalPPM returns the site's survival estimate in parts per million.
func (s SiteState) SurvivalPPM() uint64 {
	mass := s.SurvWords + s.DeadWords
	if mass == 0 {
		return 0
	}
	return s.SurvWords * 1_000_000 / mass
}

// Snapshot is the engine's frozen end-of-run state: integer-only, sites
// sorted by id, decisions in emission order — byte-stable across runs.
type Snapshot struct {
	Promotions uint64
	Demotions  uint64
	Samples    uint64
	Decisions  []Decision
	Sites      []SiteState
}

// Snapshot freezes the engine's state.
func (e *Engine) Snapshot() *Snapshot {
	ids := make([]obj.SiteID, 0, len(e.sites))
	for id := range e.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sites := make([]SiteState, 0, len(ids))
	for _, id := range ids {
		st := e.sites[id]
		sites = append(sites, SiteState{
			Site: st.site, Pretenured: st.pretenured,
			SurvWords: st.survWords, DeadWords: st.deadWords,
			AgeBytes: st.ageBytes, AgeSamples: st.ageSamples,
			PretPlaced: st.pretPlaced, PretDied: st.pretDied, OldDied: st.oldDied,
			Promotions: st.promotions, Demotions: st.demotions,
		})
	}
	ds := make([]Decision, len(e.decisions))
	copy(ds, e.decisions)
	return &Snapshot{
		Promotions: e.promotions,
		Demotions:  e.demotions,
		Samples:    e.samples,
		Decisions:  ds,
		Sites:      sites,
	}
}

// StoreProfile converts the engine's end-of-run state into a storable
// profile for warm-starting later runs. siteNames is optional
// documentation (may be nil).
func (e *Engine) StoreProfile(label, workload string, siteNames map[obj.SiteID]string) *RunProfile {
	snap := e.Snapshot()
	rp := &RunProfile{Label: label, Workload: workload}
	for _, s := range snap.Sites {
		rp.Sites = append(rp.Sites, SiteSeed{
			Site: s.Site, Name: siteNames[s.Site],
			SurvWords: s.SurvWords, DeadWords: s.DeadWords,
			AgeBytes: s.AgeBytes, AgeSamples: s.AgeSamples,
			PretPlaced: s.PretPlaced, PretDied: s.PretDied,
			Pretenured: s.Pretenured,
		})
	}
	return rp
}
