package adapt

import (
	"reflect"
	"testing"

	"tilgc/internal/costmodel"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
	"tilgc/internal/trace"
)

func newTestEngine(p Params) *Engine {
	return New(costmodel.NewMeter(), nil, p)
}

func TestPromotionRequiresMassAndCutoff(t *testing.T) {
	e := newTestEngine(Params{})

	// Epoch 1: plenty of survival but below the sample-mass floor.
	e.ObserveSurvive(1, 100, 0)
	e.ObserveGCEnd()
	if e.ShouldPretenure(1) {
		t.Fatal("promoted below MinSampleWords")
	}

	// Epoch 2: mass now sufficient, survival 100%.
	e.ObserveSurvive(1, 200, 0)
	e.ObserveGCEnd()
	if !e.ShouldPretenure(1) {
		t.Fatal("high-survival site with sample mass not promoted")
	}

	snap := e.Snapshot()
	if snap.Promotions != 1 || len(snap.Decisions) != 1 {
		t.Fatalf("promotions=%d decisions=%d", snap.Promotions, len(snap.Decisions))
	}
	d := snap.Decisions[0]
	if d.Verb != trace.AdaptPromote || d.Site != 1 || d.Epoch != 2 {
		t.Fatalf("decision = %+v", d)
	}
	if d.SurvivalPPM < 800_000 {
		t.Fatalf("survival ppm = %d", d.SurvivalPPM)
	}
}

func TestLowSurvivalNeverPromotes(t *testing.T) {
	e := newTestEngine(Params{})
	for i := 0; i < 10; i++ {
		e.ObserveSurvive(1, 50, 0)
		e.ObserveDeath(1, 50, prof.DeathYoung) // 50% survival
		e.ObserveGCEnd()
	}
	if e.ShouldPretenure(1) {
		t.Fatal("half-survival site promoted at an 80 percent cutoff")
	}
	if n := len(e.Snapshot().Decisions); n != 0 {
		t.Fatalf("decisions = %d, want 0", n)
	}
}

// promoteSite drives site 1 over the promotion threshold.
func promoteSite(e *Engine) {
	e.ObserveSurvive(1, 400, 0)
	e.ObserveGCEnd()
	if !e.ShouldPretenure(1) {
		panic("setup: site did not promote")
	}
}

func TestDemotionOnTenuredGarbage(t *testing.T) {
	e := newTestEngine(Params{})
	promoteSite(e)

	// The promoted site's placements turn out to be garbage: 300 of the
	// 400 pretenured words die in the old generation.
	e.ObserveAlloc(1, 400, true)
	e.ObserveDeath(1, 300, prof.DeathPretenured)
	e.ObserveGCEnd()
	if e.ShouldPretenure(1) {
		t.Fatal("mistrained site not demoted")
	}

	snap := e.Snapshot()
	if snap.Demotions != 1 {
		t.Fatalf("demotions = %d", snap.Demotions)
	}
	d := snap.Decisions[len(snap.Decisions)-1]
	if d.Verb != trace.AdaptDemote || d.Site != 1 {
		t.Fatalf("decision = %+v", d)
	}
	if d.GarbagePPM != 750_000 {
		t.Fatalf("garbage ppm = %d, want 750000", d.GarbagePPM)
	}

	// Demotion wipes the survival evidence and starts the cooldown: the
	// same survival stream that promoted the site must not re-promote it
	// until CooldownEpochs have passed.
	st := snap.Sites[0]
	if st.SurvWords != 0 || st.DeadWords != 0 {
		t.Fatalf("survival state not reset: %+v", st)
	}
	for i := uint64(0); i < e.params.CooldownEpochs-1; i++ {
		e.ObserveSurvive(1, 400, 0)
		e.ObserveGCEnd()
		if e.ShouldPretenure(1) {
			t.Fatalf("re-promoted during cooldown (epoch %d)", e.epoch)
		}
	}
	e.ObserveSurvive(1, 400, 0)
	e.ObserveGCEnd()
	e.ObserveSurvive(1, 400, 0)
	e.ObserveGCEnd()
	if !e.ShouldPretenure(1) {
		t.Fatal("site never re-earned promotion after cooldown")
	}
}

func TestDisableDemotion(t *testing.T) {
	e := newTestEngine(Params{DisableDemotion: true})
	promoteSite(e)
	e.ObserveAlloc(1, 1000, true)
	e.ObserveDeath(1, 1000, prof.DeathPretenured)
	e.ObserveGCEnd()
	if !e.ShouldPretenure(1) {
		t.Fatal("demotion fired with DisableDemotion set")
	}
}

func TestDecayForgetsOldEvidence(t *testing.T) {
	e := newTestEngine(Params{})
	// Build up strong survival, then feed pure deaths; the decayed
	// estimate must fall below the cutoff within a few epochs.
	e.ObserveSurvive(1, 1000, 0)
	e.ObserveGCEnd()
	for i := 0; i < 6; i++ {
		e.ObserveDeath(1, 1000, prof.DeathYoung)
		e.ObserveGCEnd()
	}
	var st SiteState
	for _, s := range e.Snapshot().Sites {
		if s.Site == 1 {
			st = s
		}
	}
	if ppm := st.SurvivalPPM(); ppm >= 200_000 {
		t.Fatalf("survival estimate %d ppm did not decay", ppm)
	}
}

func TestDecisionsSortedWithinEpoch(t *testing.T) {
	e := newTestEngine(Params{})
	// Touch sites in descending order; decisions must come out ascending.
	for _, site := range []obj.SiteID{9, 5, 2, 7} {
		e.ObserveSurvive(site, 400, 0)
	}
	e.ObserveGCEnd()
	snap := e.Snapshot()
	if len(snap.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(snap.Decisions))
	}
	for i := 1; i < len(snap.Decisions); i++ {
		if snap.Decisions[i-1].Site >= snap.Decisions[i].Site {
			t.Fatalf("decisions not in site order: %+v", snap.Decisions)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	feed := func(e *Engine) *Snapshot {
		for epoch := 0; epoch < 20; epoch++ {
			for site := obj.SiteID(1); site <= 40; site++ {
				words := uint64(site) * 7
				if epoch%3 == 0 {
					e.ObserveSurvive(site, words, words*2)
				} else {
					e.ObserveDeath(site, words, prof.DeathYoung)
				}
				if e.ShouldPretenure(site) {
					e.ObserveAlloc(site, words, true)
					e.ObserveDeath(site, words/2, prof.DeathPretenured)
				}
			}
			e.ObserveGCEnd()
		}
		e.Seal()
		return e.Snapshot()
	}
	a := feed(newTestEngine(Params{}))
	b := feed(newTestEngine(Params{}))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical feeds produced different snapshots")
	}
}

func TestSealFreezesEngine(t *testing.T) {
	e := newTestEngine(Params{})
	e.ObserveSurvive(1, 400, 0)
	e.Seal()
	// Post-seal events are ignored; the pre-seal epoch deltas were folded
	// into the decayed state without a decision.
	e.ObserveSurvive(1, 4000, 0)
	e.ObserveGCEnd()
	snap := e.Snapshot()
	if len(snap.Decisions) != 0 {
		t.Fatalf("sealed engine made decisions: %+v", snap.Decisions)
	}
	if snap.Sites[0].SurvWords != 400 {
		t.Fatalf("pre-seal deltas lost or post-seal deltas absorbed: %+v", snap.Sites[0])
	}
}

func TestWarmStart(t *testing.T) {
	e := newTestEngine(Params{})
	e.WarmStart(&RunProfile{Workload: "X", Sites: []SiteSeed{
		{Site: 3, SurvWords: 900, DeadWords: 100, Pretenured: true},
		{Site: 4, SurvWords: 10, DeadWords: 990},
	}})
	if !e.ShouldPretenure(3) {
		t.Fatal("stored pretenured site not warm-started")
	}
	if e.ShouldPretenure(4) {
		t.Fatal("low-survival seed pretenured")
	}
	snap := e.Snapshot()
	if len(snap.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1 warm", len(snap.Decisions))
	}
	d := snap.Decisions[0]
	if d.Verb != trace.AdaptWarm || d.Epoch != 0 || d.Site != 3 {
		t.Fatalf("warm decision = %+v", d)
	}
	// A stale warm start demotes through the normal machinery.
	e.ObserveAlloc(3, 1000, true)
	e.ObserveDeath(3, 900, prof.DeathPretenured)
	e.ObserveGCEnd()
	if e.ShouldPretenure(3) {
		t.Fatal("stale warm start did not self-correct")
	}
}

func TestEngineChargesAdaptComponent(t *testing.T) {
	meter := costmodel.NewMeter()
	e := New(meter, nil, Params{})
	e.ShouldPretenure(1)
	e.ObserveSurvive(1, 400, 0)
	e.ObserveGCEnd()
	snap := meter.Snapshot()
	want := costmodel.AdaptProbe + costmodel.AdaptSample + costmodel.AdaptEpochSite
	if snap.Adapt != want {
		t.Fatalf("adapt cycles = %d, want %d", snap.Adapt, want)
	}
	if snap.Client != 0 || snap.GC() != 0 {
		t.Fatalf("advisor charged outside the Adapt component: %+v", snap)
	}
}

func TestAdaptDecisionsReachTrace(t *testing.T) {
	meter := costmodel.NewMeter()
	rec := trace.NewRecorder(meter)
	e := New(meter, rec, Params{})
	promoteSite(e)
	e.ObserveAlloc(1, 400, true)
	e.ObserveDeath(1, 400, prof.DeathPretenured)
	e.ObserveGCEnd()
	rec.Finish()
	data := rec.Data("t")
	if len(data.Adapt) != 2 {
		t.Fatalf("trace decisions = %d, want 2", len(data.Adapt))
	}
	if data.Adapt[0].Verb != trace.AdaptPromote || data.Adapt[1].Verb != trace.AdaptDemote {
		t.Fatalf("trace verbs: %+v", data.Adapt)
	}
	var proms, demos, samples uint64
	for _, m := range data.Metrics {
		switch m.Name {
		case trace.MetricAdaptPromotions:
			proms = m.Value
		case trace.MetricAdaptDemotions:
			demos = m.Value
		case trace.MetricAdaptSamples:
			samples = m.Value
		}
	}
	if proms != 1 || demos != 1 || samples == 0 {
		t.Fatalf("metrics: proms=%d demos=%d samples=%d", proms, demos, samples)
	}
}
