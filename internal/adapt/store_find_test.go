package adapt

import (
	"bytes"
	"testing"
)

// TestStoreFindDuplicatesRoundTrip extends the last-wins pin to the disk
// format: a store holding several profiles for the same workload (the
// append-a-sweep-to-an-existing-file pattern) must keep every duplicate
// through a write/read cycle, resolve Find to the newest one after
// rereading, and rewrite byte-identically — otherwise appending a sweep
// would silently rewrite history on the next save.
func TestStoreFindDuplicatesRoundTrip(t *testing.T) {
	s := &Store{Profiles: []*RunProfile{
		{Label: "sweep1", Workload: "Nqueen", Sites: []SiteSeed{{Site: 1, SurvWords: 10}}},
		{Label: "sweep1", Workload: "Peg", Sites: []SiteSeed{{Site: 2, SurvWords: 20}}},
		{Label: "sweep2", Workload: "Nqueen", Sites: []SiteSeed{{Site: 1, SurvWords: 99}}},
	}}

	if got := s.Find("Nqueen"); got == nil || got.Label != "sweep2" || got.Sites[0].SurvWords != 99 {
		t.Fatalf("Find(Nqueen) = %+v, want the sweep2 profile (last wins)", got)
	}

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Profiles) != 3 {
		t.Fatalf("round-trip kept %d profiles, want 3 (duplicates preserved)", len(back.Profiles))
	}
	if p := back.Find("Nqueen"); p == nil || p.Label != "sweep2" || p.Sites[0].SurvWords != 99 {
		t.Fatalf("reread Find(Nqueen) = %+v, want sweep2/99", p)
	}
	if p := back.Find("Peg"); p == nil || p.Label != "sweep1" {
		t.Fatalf("reread Find(Peg) = %+v, want the only Peg profile", p)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("write-read-write is not byte-identical for a duplicate-workload store")
	}
}
