// Package costmodel provides the deterministic time accounting that stands
// in for the paper's UNIX virtual timers on the DEC 3000/500 Alpha.
//
// Every operation of the simulated runtime and collectors charges cycles to
// a Meter. Costs are split the way the paper reports them: mutator (client)
// work versus collector work, and collector work further into stack-root
// processing versus heap scanning/copying (the paper's Table 5 breakdown).
// Because all charges are deterministic functions of the workload and the
// collector configuration, every table in this repository reproduces
// bit-for-bit across runs and machines.
//
// The constants are calibrated to the relative magnitudes the 21064-era
// runtime exhibits — copying a word is a handful of cycles, decoding a
// stack slot's trace entry costs more than reusing a cached root, a GC
// invocation has a fixed overhead (signal/flag handling, space setup) that
// dominates tiny collections — not to its absolute timings. EXPERIMENTS.md
// records where the paper's conclusions depend only on these ratios.
package costmodel

// Cycles is the unit of simulated time.
type Cycles uint64

// ClockHz converts cycles to pseudo-seconds for table rendering. The DEC
// 3000/500's 21064 ran at 150 MHz; we keep that scale so rendered tables
// have magnitudes comparable to the paper's.
const ClockHz = 150e6

// Seconds converts a cycle count to pseudo-seconds.
func (c Cycles) Seconds() float64 { return float64(c) / ClockHz }

// Cost constants, in cycles. See the package comment for calibration notes.
const (
	// Mutator-side costs.
	AllocWord      Cycles = 2  // bump-allocate and initialize one word
	AllocObject    Cycles = 4  // per-object allocation overhead (header setup)
	AllocPretenure Cycles = 10 // extra per-object cost of the longer pretenured-allocation sequence (§6)
	MutatorLoad    Cycles = 1  // heap/stack read
	MutatorStore   Cycles = 1  // heap/stack write
	WriteBarrier   Cycles = 4  // SSB append on a pointer store
	CallFrame      Cycles = 5  // push an activation record
	ReturnFrame    Cycles = 3  // pop an activation record
	StubReturn     Cycles = 30 // return through a stack-marker stub (table lookup, restore)
	RaiseHandler   Cycles = 40 // raise an exception and unwind to a handler
	ClientWork     Cycles = 1  // one abstract unit of computation

	// Collector-side costs: heap processing.
	GCOverhead  Cycles = 8000 // fixed cost of entering/leaving a collection
	CopyWord    Cycles = 4    // evacuate one word
	CopyObject  Cycles = 10   // per-object evacuation overhead (forwarding, header)
	ScanWord    Cycles = 2    // Cheney-scan one word of gray object
	ScanPtrTest Cycles = 1    // examine one slot for pointer-ness
	SSBEntry    Cycles = 6    // process one sequential-store-buffer entry
	SweepObject Cycles = 8    // mark-sweep large-object space, per object
	ResizeWord  Cycles = 0    // space management is charged via GCOverhead

	// Non-moving old-generation costs (bitmap mark-sweep / mark-compact).
	// Marking tests-and-sets a header bit per visited tenured pointer;
	// sweeping walks the mark bitmap one 64-bit word at a time; compaction
	// additionally slides each live word once (cheaper than CopyWord: no
	// cross-space transfer, no forwarding-pointer installation).
	MarkTest      Cycles = 1 // test-and-set one object's mark bit
	SweepWordTest Cycles = 1 // examine one 64-word stripe of the mark bitmap
	SlideWordTest Cycles = 2 // slide one live word during compaction

	// Collector-side costs: stack-root processing. Decoding is expensive
	// (trace-table lookup, callee-save and COMPUTE resolution — the reason
	// TIL stack scans can dominate GC); reuse of cached results is cheap.
	FrameDecode    Cycles = 40 // decode one frame via the trace table (pass 1 + bookkeeping)
	SlotTrace      Cycles = 6  // classify one slot or register (pass 2)
	ComputeTrace   Cycles = 14 // extra cost of resolving a COMPUTE trace from a runtime type
	RootProcess    Cycles = 8  // record/forward one discovered root
	FrameReuse     Cycles = 3  // reuse a cached frame's results (minor GC skip)
	CachedRoot     Cycles = 4  // re-trace one cached root location (major GC)
	MarkerPlace    Cycles = 25 // install one stack marker (stub + table entry)
	WatermarkCheck Cycles = 60 // per-GC marker-table/watermark maintenance

	// Adaptive-pretenuring advisor costs (§9). The advisor is charged
	// separately from client and collector work so the adaptive-vs-offline
	// comparison stays honest: its probes, per-event sampling, and
	// per-collection decision folds appear in their own meter bucket.
	AdaptProbe     Cycles = 1 // allocation-path advisor lookup (cached-set probe)
	AdaptSample    Cycles = 2 // record one survival/death sample into site state
	AdaptEpochSite Cycles = 4 // per-site decision-fold work at a collection boundary
)

// Component names a bucket of charged cycles.
type Component uint8

const (
	// Client is mutator work (the paper's "Client" column).
	Client Component = iota
	// GCStack is collector time spent processing stack roots ("GC-stack").
	GCStack
	// GCCopy is collector time spent scanning and copying the heap
	// ("GC-copy"), including SSB processing and large-object sweeping.
	GCCopy
	// Adapt is time spent by the online pretenuring advisor (§9):
	// allocation-path probes, survival sampling, and decision folds. It is
	// outside GC() so the paper's Table 5 breakdown is unchanged, but
	// inside Total() so adaptive overhead is never free.
	Adapt
	numComponents
)

// String returns the component name.
func (c Component) String() string {
	switch c {
	case Client:
		return "client"
	case GCStack:
		return "gc-stack"
	case GCCopy:
		return "gc-copy"
	case Adapt:
		return "adapt"
	}
	return "unknown"
}

// Meter accumulates charged cycles by component.
//
// The buckets hold *wall-clock* cycles: when a parallel collection phase
// overlaps worker cycles (see WorkerTally), the hidden cycles are moved
// out of the GC buckets into the overlap counter, so GC() and Total()
// read as elapsed simulated time while Total()+Overlap() remains the
// honest sum-of-all-workers cost. With one worker the overlap counter
// stays zero and the meter behaves exactly as before.
type Meter struct {
	buckets [numComponents]Cycles
	overlap Cycles
}

// NewMeter returns a zeroed meter.
func NewMeter() *Meter { return &Meter{} }

// Charge adds n cycles to component c.
func (m *Meter) Charge(c Component, n Cycles) { m.buckets[c] += n }

// ChargeN adds n×unit cycles to component c.
func (m *Meter) ChargeN(c Component, unit Cycles, n uint64) {
	m.buckets[c] += unit * Cycles(n)
}

// Get returns the cycles charged to component c.
func (m *Meter) Get(c Component) Cycles { return m.buckets[c] }

// GC returns total collector cycles (stack + copy).
func (m *Meter) GC() Cycles { return m.buckets[GCStack] + m.buckets[GCCopy] }

// Total returns all charged cycles.
func (m *Meter) Total() Cycles { return m.buckets[Client] + m.GC() + m.buckets[Adapt] }

// Overlap returns the collector cycles hidden by parallel workers: work
// that was charged to the GC buckets but executed concurrently with the
// critical path, so it does not appear in GC()/Total() wall time. The
// honest total cost of a run is Total()+Overlap(). Always zero for
// single-worker collections.
func (m *Meter) Overlap() Cycles { return m.overlap }

// creditOverlap moves cycles out of the wall-clock GC buckets into the
// overlap counter. Callers (WorkerTally.ClosePhase) guarantee the
// deducted amounts were charged within the same phase, so the buckets
// never go below any previously snapshotted value.
func (m *Meter) creditOverlap(stack, copied Cycles) {
	m.buckets[GCStack] -= stack
	m.buckets[GCCopy] -= copied
	m.overlap += stack + copied
}

// Reset zeroes the meter.
func (m *Meter) Reset() { m.buckets = [numComponents]Cycles{}; m.overlap = 0 }

// Snapshot returns a copy of the current bucket values.
func (m *Meter) Snapshot() Breakdown {
	return Breakdown{
		Client:  m.buckets[Client],
		GCStack: m.buckets[GCStack],
		GCCopy:  m.buckets[GCCopy],
		Adapt:   m.buckets[Adapt],
	}
}

// Breakdown is an immutable view of a meter.
type Breakdown struct {
	Client  Cycles
	GCStack Cycles
	GCCopy  Cycles
	Adapt   Cycles
}

// GC returns total collector cycles in the breakdown.
func (b Breakdown) GC() Cycles { return b.GCStack + b.GCCopy }

// Total returns all cycles in the breakdown.
func (b Breakdown) Total() Cycles { return b.Client + b.GC() + b.Adapt }

// Sub returns the component-wise difference b - other.
func (b Breakdown) Sub(other Breakdown) Breakdown {
	return Breakdown{
		Client:  b.Client - other.Client,
		GCStack: b.GCStack - other.GCStack,
		GCCopy:  b.GCCopy - other.GCCopy,
		Adapt:   b.Adapt - other.Adapt,
	}
}
