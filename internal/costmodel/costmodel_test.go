package costmodel

import (
	"testing"
	"testing/quick"
)

func TestMeterChargeAndTotals(t *testing.T) {
	m := NewMeter()
	m.Charge(Client, 100)
	m.Charge(GCStack, 30)
	m.Charge(GCCopy, 70)
	if m.Get(Client) != 100 {
		t.Errorf("Client = %d", m.Get(Client))
	}
	if m.GC() != 100 {
		t.Errorf("GC = %d", m.GC())
	}
	if m.Total() != 200 {
		t.Errorf("Total = %d", m.Total())
	}
}

func TestMeterChargeN(t *testing.T) {
	m := NewMeter()
	m.ChargeN(GCCopy, CopyWord, 25)
	if m.Get(GCCopy) != 25*CopyWord {
		t.Errorf("ChargeN = %d", m.Get(GCCopy))
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.Charge(Client, 5)
	m.Reset()
	if m.Total() != 0 {
		t.Error("reset did not zero meter")
	}
}

func TestSnapshotAndSub(t *testing.T) {
	m := NewMeter()
	m.Charge(Client, 10)
	before := m.Snapshot()
	m.Charge(Client, 7)
	m.Charge(GCStack, 3)
	delta := m.Snapshot().Sub(before)
	if delta.Client != 7 || delta.GCStack != 3 || delta.GCCopy != 0 {
		t.Errorf("delta = %+v", delta)
	}
	if delta.Total() != 10 || delta.GC() != 3 {
		t.Errorf("delta totals: %d %d", delta.Total(), delta.GC())
	}
}

func TestSeconds(t *testing.T) {
	c := Cycles(ClockHz)
	if s := c.Seconds(); s != 1.0 {
		t.Errorf("1 clock-second = %g", s)
	}
}

func TestComponentStrings(t *testing.T) {
	if Client.String() != "client" || GCStack.String() != "gc-stack" || GCCopy.String() != "gc-copy" {
		t.Error("component names wrong")
	}
	if Component(99).String() != "unknown" {
		t.Error("unknown component name wrong")
	}
}

func TestMeterAdditivityProperty(t *testing.T) {
	// Charges accumulate additively regardless of interleaving.
	f := func(charges []uint16) bool {
		m := NewMeter()
		var want [3]Cycles
		for i, c := range charges {
			comp := Component(i % 3)
			m.Charge(comp, Cycles(c))
			want[comp] += Cycles(c)
		}
		return m.Get(Client) == want[0] && m.Get(GCStack) == want[1] &&
			m.Get(GCCopy) == want[2] &&
			m.Total() == want[0]+want[1]+want[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
