package costmodel

// WorkerTally is the deterministic accounting core of the parallel
// collection phases. The collector still *executes* its work stream in
// the canonical serial order — heap images are byte-identical at every
// worker count — but each unit of parallel-phase work (a "quantum") is
// bracketed by BeginQuantum/EndQuantum, and its measured cycle delta is
// assigned to the currently least-loaded simulated worker (ties resolved
// by lowest worker rank). That greedy schedule is exactly the idealized
// work-stealing execution: a worker that runs dry immediately steals the
// next quantum from the shared frontier.
//
// When a phase closes, the wall-clock cost of the phase is the maximum
// worker tally and the total cost is the sum; the difference (the cycles
// that ran concurrently with the critical path) is credited back to the
// meter's overlap counter, so pause cycles genuinely shrink with workers
// while the sum-of-workers cost stays fully accounted.
//
// A nil *WorkerTally is the single-worker case: collectors skip all
// bracketing, no cycles move, and every trace byte is identical to the
// pre-parallel collector.
type WorkerTally struct {
	meter  *Meter
	cycles []Cycles // per-worker tally within the current phase

	openStack Cycles // meter GCStack at BeginQuantum
	openCopy  Cycles // meter GCCopy at BeginQuantum
	inQuantum bool

	phaseStack Cycles // GCStack charged inside quanta this phase
	phaseCopy  Cycles // GCCopy charged inside quanta this phase

	last   int    // worker assigned the previous quantum (steal detection)
	quanta uint64 // lifetime quantum count
	steals uint64 // lifetime count of quanta claimed by a different worker
}

// NewWorkerTally creates a tally over the given meter for workers ≥ 2
// simulated collector workers. Callers model W=1 as a nil tally.
func NewWorkerTally(meter *Meter, workers int) *WorkerTally {
	if workers < 2 {
		panic("costmodel: WorkerTally needs at least 2 workers; use nil for 1")
	}
	return &WorkerTally{meter: meter, cycles: make([]Cycles, workers)}
}

// Workers returns the simulated worker count.
func (t *WorkerTally) Workers() int { return len(t.cycles) }

// Quanta returns the lifetime number of closed quanta.
func (t *WorkerTally) Quanta() uint64 { return t.quanta }

// Steals returns the lifetime number of quanta that were claimed by a
// different worker than the previous quantum — the simulated steal count
// of the idealized work-stealing schedule.
func (t *WorkerTally) Steals() uint64 { return t.steals }

// BeginQuantum opens a unit of parallel-phase work; all GC cycles
// charged until the matching EndQuantum belong to one worker.
func (t *WorkerTally) BeginQuantum() {
	if t.inQuantum {
		panic("costmodel: nested WorkerTally quantum")
	}
	t.inQuantum = true
	t.openStack = t.meter.Get(GCStack)
	t.openCopy = t.meter.Get(GCCopy)
}

// EndQuantum closes the open quantum and assigns its cycle delta to the
// least-loaded worker (lowest rank on ties) — the deterministic claim
// arbitration of the simulated steal.
func (t *WorkerTally) EndQuantum() {
	if !t.inQuantum {
		panic("costmodel: EndQuantum without BeginQuantum")
	}
	t.inQuantum = false
	dStack := t.meter.Get(GCStack) - t.openStack
	dCopy := t.meter.Get(GCCopy) - t.openCopy
	t.phaseStack += dStack
	t.phaseCopy += dCopy
	w := 0
	for i := 1; i < len(t.cycles); i++ {
		if t.cycles[i] < t.cycles[w] {
			w = i
		}
	}
	t.cycles[w] += dStack + dCopy
	t.quanta++
	if w != t.last {
		t.steals++
		t.last = w
	}
}

// ChargeSplit charges total cycles to component c as one quantum per
// worker (remainder cycles go to the lowest ranks), so fixed
// per-collection overheads shrink with workers on the wall clock while
// the charged total is preserved exactly at every worker count.
func (t *WorkerTally) ChargeSplit(c Component, total Cycles) {
	w := Cycles(len(t.cycles))
	base, rem := total/w, total%w
	for i := Cycles(0); i < w; i++ {
		n := base
		if i < rem {
			n++
		}
		if n == 0 {
			continue
		}
		t.BeginQuantum()
		t.meter.Charge(c, n)
		t.EndQuantum()
	}
}

// ClosePhase ends the current parallel phase: the cycles hidden behind
// the critical path (sum of workers minus max) are credited back to the
// meter's overlap counter, and the per-worker tallies are returned for
// trace emission. The returned slice is freshly allocated; the tally is
// reset for the next phase. Callers must invoke ClosePhase before the
// phase-end trace snapshot so the phase's wall-clock GC delta equals
// exactly the maximum worker tally.
func (t *WorkerTally) ClosePhase() []Cycles {
	if t.inQuantum {
		panic("costmodel: ClosePhase with open quantum")
	}
	out := make([]Cycles, len(t.cycles))
	copy(out, t.cycles)
	var sum, max Cycles
	for _, c := range t.cycles {
		sum += c
		if c > max {
			max = c
		}
	}
	overlap := sum - max
	if overlap > 0 {
		fromCopy := overlap
		if fromCopy > t.phaseCopy {
			fromCopy = t.phaseCopy
		}
		t.meter.creditOverlap(overlap-fromCopy, fromCopy)
	}
	for i := range t.cycles {
		t.cycles[i] = 0
	}
	t.phaseStack, t.phaseCopy = 0, 0
	return out
}
